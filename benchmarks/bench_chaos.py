"""Chaos & supervision acceptance bench (ISSUE-7).

Four scenarios against the supervised serve tier, all on the same
per-vertex Landau solve jobs:

1. **reference** — fault-free threaded drain: the golden results and the
   no-chaos throughput baseline.
2. **chaos** — ``executor="process"`` under a declarative
   :class:`~repro.resilience.FaultPlan` that crashes a worker mid-run
   and hangs another (caught by the batch deadline): every job must
   complete and every result must be **bitwise identical** to the
   reference (availability 1.0, recovery time measured).
3. **restart storm** — a worker that crashes on every incarnation's
   first batch: the circuit breaker must trip and the run completes on
   the degraded in-parent tier; measures degraded-mode throughput.
4. **kill + resume** — a checkpointing service is SIGKILLed mid-drain in
   a child process; a fresh service restores from the checkpoint and
   finishes only the unfinished jobs (job-id accounting: no overlap,
   full union; leaked ``/dev/shm`` segments swept).

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py \
        [--smoke] [--jobs N] [--out BENCH_chaos.json]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import signal
import time

import numpy as np

from repro.amr import landau_mesh
from repro.core import SpeciesSet, electron
from repro.core.maxwellian import maxwellian_rz
from repro.fem import FunctionSpace
from repro.resilience import FaultPlan, SupervisorOptions
from repro.serve import (
    CollisionSolveService,
    ServeOptions,
    SolvePlan,
    checkpoint_path,
    load_service_checkpoint,
)

DT = 0.25
RTOL = 1e-10


def _setup(order: int):
    spc = SpeciesSet([electron()])
    fs = FunctionSpace(landau_mesh([electron().thermal_velocity]), order=order)
    return fs, spc


def _make_states(fs, n_jobs: int) -> list[np.ndarray]:
    rng = np.random.default_rng(13)
    states = []
    for _ in range(n_jobs):
        vth = 0.886 * rng.uniform(0.8, 1.1)
        drift = rng.uniform(-0.12, 0.12)
        states.append(
            fs.interpolate(
                lambda r, z: maxwellian_rz(r, z - drift, 1.0, vth)
            )[None, :]
        )
    return states


def _supervision(batch_deadline_s: float = 0.0) -> SupervisorOptions:
    return SupervisorOptions(
        batch_deadline_s=batch_deadline_s,
        breaker_threshold=2,
        breaker_cooldown=2,
        breaker_max_cooldown=8,
        restart_backoff_s=0.01,
        restart_backoff_max_s=0.1,
    )


def _drain_run(options: ServeOptions, plan, states, fault_plan=None):
    svc = CollisionSolveService(options, fault_plan=fault_plan)
    try:
        t0 = time.perf_counter()
        results = svc.solve_many(plan, states, timeout=600.0)
        elapsed = time.perf_counter() - t0
        snap = svc.snapshot()
    finally:
        svc.close()
    return results, elapsed, snap


# ----------------------------------------------------------------------
# scenario 2: worker-crash and worker-hang chaos, bitwise vs the reference.
# Fault-plan batch indices count per worker *incarnation* (they reset
# when a crashed/killed worker is replaced), so each sub-run exercises
# one failure kind on a clean schedule: ``crash_batches=(1,)`` crashes
# every incarnation's second batch, ``hang_batches=(1,)`` hangs it.
def _chaos_run(
    plan, states, ref_results, max_batch: int, fault_plan, deadline_s: float
) -> dict:
    options = ServeOptions(
        executor="process",
        num_shards=1,
        max_batch=max_batch,
        supervision=_supervision(batch_deadline_s=deadline_s),
    )
    results, elapsed, snap = _drain_run(
        options, plan, states, fault_plan=fault_plan
    )
    ok = sum(r.ok for r in results)
    max_abs_diff = max(
        float(np.abs(r.state - ref.state).max())
        for r, ref in zip(results, ref_results)
    )
    fails = snap["failures"]
    return {
        "fault_plan": json.loads(fault_plan.to_json()),
        "jobs": len(states),
        "jobs_ok": ok,
        "availability": ok / len(states),
        "elapsed_s": elapsed,
        "jobs_per_s": len(states) / elapsed,
        "max_abs_diff_vs_reference": max_abs_diff,
        "bitwise_equal": max_abs_diff == 0.0,
        "worker_crashes": fails["worker_crashes"],
        "worker_hangs": fails["worker_hangs"],
        "deadline_timeouts": fails["deadline_timeouts"],
        "worker_restarts": snap["jobs"]["worker_restarts"],
        "mean_recovery_s": snap["shards"][0]["mean_recovery_s"],
        "restart_backoff_sleep_s": snap["shards"][0]["restart_backoff_sleep_s"],
    }


def run_chaos(plan, states, ref_results, max_batch: int) -> dict:
    crash = _chaos_run(
        plan,
        states,
        ref_results,
        max_batch,
        FaultPlan(crash_batches=(1,)),
        deadline_s=0.0,
    )
    # the hang sub-run is bounded to two batches: each detection costs a
    # full batch deadline of wall clock
    n_hang = min(len(states), 2 * max_batch)
    hang = _chaos_run(
        plan,
        states[:n_hang],
        ref_results[:n_hang],
        max_batch,
        FaultPlan(hang_batches=(1,), hang_s=120.0),
        deadline_s=15.0,
    )
    return {"crash": crash, "hang": hang}


# ----------------------------------------------------------------------
# scenario 3: restart storm -> breaker trip -> degraded throughput
def run_restart_storm(plan, states, max_batch: int) -> dict:
    options = ServeOptions(
        executor="process",
        num_shards=1,
        max_batch=max_batch,
        supervision=_supervision(),
    )
    results, elapsed, snap = _drain_run(
        options, plan, states, fault_plan=FaultPlan(crash_batches=(0,))
    )
    ok = sum(r.ok for r in results)
    shard0 = snap["shards"][0]
    return {
        "jobs": len(states),
        "jobs_ok": ok,
        "availability": ok / len(states),
        "elapsed_s": elapsed,
        "degraded_jobs_per_s": len(states) / elapsed,
        "breaker_trips": shard0["breaker_trips"],
        "breaker_state_final": shard0["breaker"]["state"],
        "degraded_batches": shard0["degraded_batches"],
        "degraded_jobs": shard0["degraded_jobs"],
        "worker_crashes": shard0["worker_crashes"],
        "worker_restarts": snap["jobs"]["worker_restarts"],
    }


# ----------------------------------------------------------------------
# scenario 4: SIGKILL mid-drain, restore, finish only unfinished jobs
def _victim(ckpt_dir: str, order: int, n_jobs: int, max_batch: int, kill_after: int):
    """Child process: drain ``kill_after`` batches with checkpointing on,
    then die the hard way (no atexit, no cleanup) mid-run."""
    fs, spc = _setup(order)
    states = _make_states(fs, n_jobs)
    plan = SolvePlan(fs=fs, species=spc, dt=DT, rtol=RTOL)
    svc = CollisionSolveService(
        ServeOptions(
            executor="process",
            num_shards=1,
            max_batch=max_batch,
            checkpoint_dir=ckpt_dir,
            supervision=_supervision(),
        )
    )
    for i, s in enumerate(states):
        svc.submit(plan, s, job_id=f"job-k{i}")
    svc.drain(max_batches=kill_after)
    os.kill(os.getpid(), signal.SIGKILL)


def run_kill_resume(
    fs, spc, states, ckpt_dir: str, order: int, max_batch: int
) -> dict:
    n_jobs = len(states)
    kill_after = max(1, (n_jobs // max_batch) // 2)
    ctx = mp.get_context("spawn")  # a clean victim, like a fresh driver
    child = ctx.Process(
        target=_victim, args=(ckpt_dir, order, n_jobs, max_batch, kill_after)
    )
    t0 = time.perf_counter()
    child.start()
    child.join(timeout=600.0)
    assert child.exitcode == -signal.SIGKILL, child.exitcode

    ckpt = load_service_checkpoint(checkpoint_path(ckpt_dir))
    completed_before = set(ckpt.completed)
    all_ids = {f"job-k{i}" for i in range(n_jobs)}

    plan = SolvePlan(fs=fs, species=spc, dt=DT, rtol=RTOL)
    svc = CollisionSolveService(
        ServeOptions(
            executor="process",
            num_shards=1,
            max_batch=max_batch,
            checkpoint_dir=ckpt_dir,
            supervision=_supervision(),
        )
    )
    try:
        handles = svc.restore()
        svc.drain()
        resumed = [h.result(600.0) for h in handles]
        resume_info = svc.snapshot()["checkpoint"]["resume"]
    finally:
        svc.close()
    elapsed = time.perf_counter() - t0
    rerun_ids = {r.job_id for r in resumed}
    return {
        "jobs": n_jobs,
        "killed_after_batches": kill_after,
        "completed_before_kill": len(completed_before),
        "resumed_jobs": len(rerun_ids),
        "resumed_ok": sum(r.ok for r in resumed),
        "rerun_overlap": len(rerun_ids & completed_before),
        "union_covers_all_jobs": (rerun_ids | completed_before) == all_ids,
        "swept_shm_segments": resume_info["swept_shm_segments"],
        "recovery_wall_s": elapsed,
    }


# ----------------------------------------------------------------------
def run_bench(smoke: bool, n_jobs: int | None, ckpt_dir: str) -> dict:
    order = 2 if smoke else 3
    if n_jobs is None:
        n_jobs = 16 if smoke else 48
    max_batch = 4 if smoke else 8
    fs, spc = _setup(order)
    states = _make_states(fs, n_jobs)
    plan = SolvePlan(fs=fs, species=spc, dt=DT, rtol=RTOL)

    ref_results, ref_s, _ = _drain_run(
        ServeOptions(executor="thread", num_shards=1, max_batch=max_batch),
        plan,
        states,
    )
    assert all(r.ok for r in ref_results)

    return {
        "jobs": n_jobs,
        "max_batch": max_batch,
        "mesh": {"ndofs": int(fs.ndofs), "order": order},
        "dt": DT,
        "rtol": RTOL,
        "reference": {
            "elapsed_s": ref_s,
            "jobs_per_s": n_jobs / ref_s,
        },
        "chaos": run_chaos(plan, states, ref_results, max_batch),
        "restart_storm": run_restart_storm(plan, states, max_batch),
        "kill_resume": run_kill_resume(
            fs, spc, states, ckpt_dir, order, max_batch
        ),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: few jobs, coarse mesh",
    )
    ap.add_argument("--jobs", type=int, default=None)
    ap.add_argument("--out", default="BENCH_chaos.json")
    args = ap.parse_args(argv)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-chaos-ckpt-") as d:
        result = run_bench(smoke=args.smoke, n_jobs=args.jobs, ckpt_dir=d)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)

    st, kr = result["restart_storm"], result["kill_resume"]
    for kind in ("crash", "hang"):
        ch = result["chaos"][kind]
        print(
            f"chaos/{kind}: availability {ch['availability']:.3f}  "
            f"bitwise_equal={ch['bitwise_equal']}  "
            f"crashes={ch['worker_crashes']} hangs={ch['worker_hangs']}  "
            f"mean recovery {ch['mean_recovery_s'] * 1e3:.1f} ms"
        )
    print(
        f"storm:    availability {st['availability']:.3f}  "
        f"breaker trips={st['breaker_trips']}  "
        f"degraded {st['degraded_jobs_per_s']:.1f} jobs/s "
        f"(reference {result['reference']['jobs_per_s']:.1f})"
    )
    print(
        f"resume:   {kr['completed_before_kill']} done pre-kill, "
        f"{kr['resumed_jobs']} resumed, overlap={kr['rerun_overlap']}, "
        f"union_ok={kr['union_covers_all_jobs']}, "
        f"swept {kr['swept_shm_segments']} shm segments"
    )

    failures = []
    for kind in ("crash", "hang"):
        ch = result["chaos"][kind]
        if ch["availability"] != 1.0:
            failures.append(f"{kind} chaos run dropped jobs")
        if not ch["bitwise_equal"]:
            failures.append(
                f"{kind} chaos results diverge (max abs diff "
                f"{ch['max_abs_diff_vs_reference']:.3e})"
            )
    ch = result["chaos"]["crash"]
    if ch["worker_crashes"] < 1:
        failures.append("crash chaos run never crashed a worker")
    if result["chaos"]["hang"]["worker_hangs"] < 1:
        failures.append("hang chaos run never hung a worker")
    if st["availability"] != 1.0:
        failures.append("restart storm dropped jobs")
    if st["breaker_trips"] < 1:
        failures.append("restart storm never tripped the breaker")
    if kr["rerun_overlap"] != 0:
        failures.append("resume re-ran already-completed jobs")
    if not kr["union_covers_all_jobs"]:
        failures.append("resume lost jobs")
    if kr["resumed_ok"] != kr["resumed_jobs"]:
        failures.append("resumed jobs failed")
    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
