"""Ablation: batched vertex solves vs per-vertex dispatch (section VI).

"The solver and vector operations would benefit from the batching of
multiple spatial points, to augment or replace the existing asynchronous
(MPI) thread dispatch, to reduce the number of kernel launches."  This
bench measures our Python realization of both dispatch styles on the same
work and reports the launch-equivalent reduction.
"""

import numpy as np

from repro.core import ImplicitLandauSolver, LandauOperator, SpeciesSet, electron
from repro.core.batch import BatchedVertexSolver
from repro.core.maxwellian import maxwellian_rz
from repro.amr import landau_mesh
from repro.fem import FunctionSpace

B = 6  # vertices in the batch


def _setup():
    spc = SpeciesSet([electron()])
    fs = FunctionSpace(landau_mesh([electron().thermal_velocity]), order=3)
    rng = np.random.default_rng(3)
    states = np.stack(
        [
            fs.interpolate(
                lambda r, z, d=rng.uniform(-0.15, 0.15), v=rng.uniform(0.7, 1.1): maxwellian_rz(
                    r, z - d, 1.0, 0.886 * v
                )
            )[None, :]
            for _ in range(B)
        ]
    )
    return fs, spc, states


def test_batched_dispatch(benchmark):
    fs, spc, states = _setup()
    solver = BatchedVertexSolver(fs, spc, rtol=1e-7)

    out = benchmark.pedantic(solver.step, args=(states, 0.4), rounds=2, iterations=1)
    assert out.shape == states.shape
    print(
        f"\nbatched: {solver.stats.field_launches} field launches for "
        f"{solver.stats.equivalent_unbatched_launches} launch-equivalents "
        f"(reduction {solver.stats.launch_reduction:.1f}x)"
    )
    assert solver.stats.launch_reduction > 2.0


def test_per_vertex_dispatch(benchmark):
    fs, spc, states = _setup()
    op = LandauOperator(fs, spc)

    def run():
        solver = ImplicitLandauSolver(op, rtol=1e-7)
        return [solver.step([states[b, 0]], 0.4)[0] for b in range(B)]

    out = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(out) == B
