"""Shared benchmark fixtures.

The paper's 10-species/80-cell workload profile is expensive to build (a
full functional simulation of the Jacobian and mass kernels), so it is
session-scoped.  Benchmarks print the same rows/series the paper's tables
and figures report; run with ``pytest benchmarks/ --benchmark-only -s`` to
see them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import landau_mesh
from repro.core import LandauOperator, SpeciesSet, deuterium, electron
from repro.core.maxwellian import species_maxwellian
from repro.fem import FunctionSpace
from repro.perf import build_paper_workload


@pytest.fixture(scope="session")
def workload():
    return build_paper_workload()


@pytest.fixture(scope="session")
def ed_system():
    """Electron-deuterium system on the production-like mesh."""
    spc = SpeciesSet([electron(), deuterium()])
    mesh = landau_mesh([s.thermal_velocity for s in spc])
    fs = FunctionSpace(mesh, order=3)
    op = LandauOperator(fs, spc)
    fields = [fs.interpolate(species_maxwellian(s)) for s in spc]
    return fs, spc, op, fields


def pytest_configure(config):
    config.addinivalue_line("markers", "benchmark: benchmark tests")
