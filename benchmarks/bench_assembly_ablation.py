"""Assembly-path ablation (section III-F).

Three contention-resolution strategies for GPU finite element assembly —
atomics, graph coloring, domain decomposition — plus PETSc's two-phase
MatSetValues and the preallocated COO path.  This bench measures our
implementations of the first two and both insertion interfaces, and checks
they all produce the same matrix.
"""

import numpy as np
import scipy.sparse as sp

from repro.fem.assembly import assemble_mass, element_mass_blocks
from repro.sparse import CooAssembler, PetscLikeMat, colored_assembly_plan


def _element_blocks(fs):
    return element_mass_blocks(fs)


def test_matsetvalues_two_phase(benchmark, ed_system):
    """Phase-2 (pattern frozen) reassembly — the amortized GPU path."""
    fs, spc, op, fields = ed_system
    blocks = _element_blocks(fs)
    nodes = fs.dofmap.cell_nodes
    M = PetscLikeMat(fs.dofmap.n_full)
    for e in range(fs.nelem):
        M.set_values(nodes[e], nodes[e], blocks[e])
    M.assemble()  # CPU first pass freezes the pattern

    def reassemble():
        M.zero_entries()
        for e in range(fs.nelem):
            M.set_values(nodes[e], nodes[e], blocks[e])
        return M.assemble()

    A = benchmark(reassemble)
    ref = assemble_mass(fs)
    assert abs(fs.dofmap.reduce_matrix(A) - ref).max() < 1e-12


def test_coo_preallocated(benchmark, ed_system):
    """The COO path: no CPU pattern pass, value scatter + reduce-by-key."""
    fs, spc, op, fields = ed_system
    blocks = _element_blocks(fs)
    coo = CooAssembler.from_element_blocks(fs.dofmap.n_full, fs.dofmap.cell_nodes)
    A = benchmark(coo.assemble, blocks)
    ref = assemble_mass(fs)
    assert abs(fs.dofmap.reduce_matrix(A) - ref).max() < 1e-12


def test_atomic_scatter(benchmark, ed_system):
    """Atomic adds into a dense global matrix (the released PETSc path)."""
    fs, spc, op, fields = ed_system
    blocks = _element_blocks(fs)
    nodes = fs.dofmap.cell_nodes
    n = fs.dofmap.n_full

    def scatter():
        out = np.zeros((n, n))
        for e in range(fs.nelem):
            np.add.at(out, np.ix_(nodes[e], nodes[e]), blocks[e])
        return out

    A = benchmark(scatter)
    ref = assemble_mass(fs)
    assert abs(fs.dofmap.reduce_matrix(sp.csr_matrix(A)) - ref).max() < 1e-12


def test_colored_assembly(benchmark, ed_system):
    """Graph-coloring batches: contention-free scatter, one pass per color."""
    fs, spc, op, fields = ed_system
    blocks = _element_blocks(fs)
    nodes = fs.dofmap.cell_nodes
    n = fs.dofmap.n_full
    plan = colored_assembly_plan(nodes)

    def scatter():
        out = np.zeros((n, n))
        for batch in plan:
            # within a color no two elements share a node: plain adds
            for e in batch:
                out[np.ix_(nodes[e], nodes[e])] += blocks[e]
        return out

    A = benchmark(scatter)
    ref = assemble_mass(fs)
    assert abs(fs.dofmap.reduce_matrix(sp.csr_matrix(A)) - ref).max() < 1e-12
    print(f"\ncolors used: {len(plan)} for {fs.nelem} elements")
