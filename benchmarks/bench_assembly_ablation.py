"""Assembly-path ablation (section III-F).

Three contention-resolution strategies for GPU finite element assembly —
atomics, graph coloring, domain decomposition — plus PETSc's two-phase
MatSetValues and the preallocated COO path.  This bench measures our
implementations of the first two and both insertion interfaces, and checks
they all produce the same matrix.

Run as a script for the old-vs-new operator-assembly ablation
(structure caching + packed pair tables against the seed's per-build
COO scatter + strided table views)::

    PYTHONPATH=src python benchmarks/bench_assembly_ablation.py \
        [--tiny] [--repeats N] [--out BENCH_assembly.json]

The full run asserts the >= 2x repeated-``jacobian()`` speedup and the
1e-12 agreement between the two paths; ``--tiny`` (the CI smoke mode)
only checks agreement and JSON well-formedness.
"""

import argparse
import json
import time

import numpy as np
import scipy.sparse as sp

from repro.core import AssemblyOptions, LandauOperator, SpeciesSet, deuterium, electron
from repro.core.maxwellian import species_maxwellian
from repro.fem import FunctionSpace, Mesh
from repro.fem.assembly import assemble_mass, element_mass_blocks
from repro.sparse import CooAssembler, PetscLikeMat, colored_assembly_plan


def _element_blocks(fs):
    return element_mass_blocks(fs)


def test_matsetvalues_two_phase(benchmark, ed_system):
    """Phase-2 (pattern frozen) reassembly — the amortized GPU path."""
    fs, spc, op, fields = ed_system
    blocks = _element_blocks(fs)
    nodes = fs.dofmap.cell_nodes
    M = PetscLikeMat(fs.dofmap.n_full)
    for e in range(fs.nelem):
        M.set_values(nodes[e], nodes[e], blocks[e])
    M.assemble()  # CPU first pass freezes the pattern

    def reassemble():
        M.zero_entries()
        for e in range(fs.nelem):
            M.set_values(nodes[e], nodes[e], blocks[e])
        return M.assemble()

    A = benchmark(reassemble)
    ref = assemble_mass(fs)
    assert abs(fs.dofmap.reduce_matrix(A) - ref).max() < 1e-12


def test_coo_preallocated(benchmark, ed_system):
    """The COO path: no CPU pattern pass, value scatter + reduce-by-key."""
    fs, spc, op, fields = ed_system
    blocks = _element_blocks(fs)
    coo = CooAssembler.from_element_blocks(fs.dofmap.n_full, fs.dofmap.cell_nodes)
    A = benchmark(coo.assemble, blocks)
    ref = assemble_mass(fs)
    assert abs(fs.dofmap.reduce_matrix(A) - ref).max() < 1e-12


def test_atomic_scatter(benchmark, ed_system):
    """Atomic adds into a dense global matrix (the released PETSc path)."""
    fs, spc, op, fields = ed_system
    blocks = _element_blocks(fs)
    nodes = fs.dofmap.cell_nodes
    n = fs.dofmap.n_full

    def scatter():
        out = np.zeros((n, n))
        for e in range(fs.nelem):
            np.add.at(out, np.ix_(nodes[e], nodes[e]), blocks[e])
        return out

    A = benchmark(scatter)
    ref = assemble_mass(fs)
    assert abs(fs.dofmap.reduce_matrix(sp.csr_matrix(A)) - ref).max() < 1e-12


def test_colored_assembly(benchmark, ed_system):
    """Graph-coloring batches: contention-free scatter, one pass per color."""
    fs, spc, op, fields = ed_system
    blocks = _element_blocks(fs)
    nodes = fs.dofmap.cell_nodes
    n = fs.dofmap.n_full
    plan = colored_assembly_plan(nodes)

    def scatter():
        out = np.zeros((n, n))
        for batch in plan:
            # within a color no two elements share a node: plain adds
            for e in batch:
                out[np.ix_(nodes[e], nodes[e])] += blocks[e]
        return out

    A = benchmark(scatter)
    ref = assemble_mass(fs)
    assert abs(fs.dofmap.reduce_matrix(sp.csr_matrix(A)) - ref).max() < 1e-12
    print(f"\ncolors used: {len(plan)} for {fs.nelem} elements")


# ----------------------------------------------------------------------
# old-vs-new operator assembly ablation (structure caching + packed tables)


def _ablation_system(tiny: bool):
    spc = SpeciesSet([electron(), deuterium()])
    if tiny:
        vmax = 3.0 * max(s.thermal_velocity for s in spc)
        mesh = Mesh.structured(2, 2, r_max=vmax, z_min=-vmax, z_max=vmax)
        fs = FunctionSpace(mesh, order=2)
    else:
        from repro.amr import landau_mesh

        mesh = landau_mesh([s.thermal_velocity for s in spc])
        fs = FunctionSpace(mesh, order=3)
    fields = [fs.interpolate(species_maxwellian(s)) for s in spc]
    return fs, spc, fields


def _time_jacobian(op, fields, repeats: int) -> float:
    """Mean seconds per repeated ``jacobian()`` build (post-warmup)."""
    op.jacobian(fields)  # warmup: builds tables / structures once
    t0 = time.perf_counter()
    for _ in range(repeats):
        op.jacobian(fields)
    return (time.perf_counter() - t0) / repeats


def _max_rel_diff(J_a, J_b) -> float:
    worst = 0.0
    for a, b in zip(J_a, J_b):
        scale = max(abs(b).max(), 1e-300)
        worst = max(worst, abs(a - b).max() / scale)
    return float(worst)


def run_ablation(tiny: bool = False, repeats: int = 10) -> dict:
    """Old (seed-equivalent) vs new (cached/packed) repeated jacobian builds."""
    fs, spc, fields = _ablation_system(tiny)
    op_old = LandauOperator(fs, spc, options=AssemblyOptions.legacy())
    op_new = LandauOperator(fs, spc)  # defaults: structure cache + packed tables

    max_rel_diff = _max_rel_diff(op_new.jacobian(fields), op_old.jacobian(fields))
    t_old = _time_jacobian(op_old, fields, repeats)
    t_new = _time_jacobian(op_new, fields, repeats)

    return {
        "benchmark": "assembly_ablation",
        "tiny": bool(tiny),
        "mesh": {
            "cells": int(fs.nelem),
            "integration_points": int(fs.n_integration_points),
            "ndofs": int(fs.ndofs),
            "species": len(spc),
        },
        "repeats": int(repeats),
        "old": {
            "label": "legacy: per-build COO scatter + strided table views",
            "jacobian_seconds": t_old,
        },
        "new": {
            "label": "cached structure + packed pair tables",
            "jacobian_seconds": t_new,
            "structure_reuses": op_new.counters["structure_reuses"],
        },
        "speedup": t_old / t_new if t_new > 0 else float("inf"),
        "max_rel_diff": max_rel_diff,
        "options": {
            "old": "AssemblyOptions.legacy()",
            "new": "AssemblyOptions.from_env()",
        },
    }


def test_jacobian_legacy(benchmark, ed_system):
    """Seed-equivalent repeated jacobian: COO scatter + strided views."""
    fs, spc, op, fields = ed_system
    op_old = LandauOperator(fs, spc, options=AssemblyOptions.legacy())
    op_old.jacobian(fields)
    benchmark(op_old.jacobian, fields)


def test_jacobian_structure_cached(benchmark, ed_system):
    """Cached-structure/packed-table repeated jacobian (the new default)."""
    fs, spc, op, fields = ed_system
    op_new = LandauOperator(fs, spc)
    op_new.jacobian(fields)
    benchmark(op_new.jacobian, fields)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--tiny", action="store_true", help="CI smoke mode: tiny mesh, no speedup assertion")
    ap.add_argument("--repeats", type=int, default=10)
    ap.add_argument("--out", default="BENCH_assembly.json")
    args = ap.parse_args(argv)

    result = run_ablation(tiny=args.tiny, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    if result["max_rel_diff"] > 1e-12:
        print(f"FAIL: paths disagree (max rel diff {result['max_rel_diff']:.3e})")
        return 1
    if not args.tiny and result["speedup"] < 2.0:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the 2x acceptance bar")
        return 1
    print(f"OK: speedup {result['speedup']:.2f}x, max rel diff {result['max_rel_diff']:.3e}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
