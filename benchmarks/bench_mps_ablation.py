"""Ablation: MPS on vs off (section V-D1).

"Note, we have informally observed a throughput speedup, on a typical high
throughput case in Table II, of about 3x with the use of MPS."  The
pipeline model reproduces this: without MPS, kernels from different ranks
serialize on the device and the high-rank cells collapse.
"""

import pytest

from repro.gpu.device import V100
from repro.perf import SUMMIT, MpsPipelineModel

#: the paper's measured per-iteration split on Summit/CUDA: ~5.7 ms CPU
#: (factor + solve + metadata + other) and ~1.4 ms GPU kernel per Newton
#: iteration (Table VII / Table II derivation); used for the demonstration
#: because our own workload is factor-dominated (larger band width), which
#: makes GPU scheduling almost irrelevant to its throughput.
PAPER_T_CPU = 5.66e-3
PAPER_T_GPU = 1.41e-3


def _models(_wl=None):
    with_mps = MpsPipelineModel(SUMMIT, t_gpu=PAPER_T_GPU, t_cpu_base=PAPER_T_CPU)
    return with_mps, with_mps.without_mps()


def test_mps_speedup_on_high_rank_case(benchmark):
    with_mps, without = benchmark.pedantic(_models, rounds=1, iterations=1)
    # the typical high-throughput case: 7 cores/GPU x 2 procs/core
    r_on = with_mps.node_rate(7, 2)
    r_off = without.node_rate(7, 2)
    print(
        f"\n14 ranks/GPU: MPS on {r_on:,.0f} its/s, off {r_off:,.0f} its/s "
        f"(speedup {r_on / r_off:.2f}x; paper: ~3x observed)"
    )
    assert 2.0 <= r_on / r_off <= 4.5

    # single-rank case is insensitive to MPS
    assert with_mps.node_rate(1, 1) == pytest.approx(
        without.node_rate(1, 1), rel=0.05
    )


def test_our_workload_insensitive_to_mps(workload):
    """On our factor-heavy workload the GPU is never the bottleneck, so the
    scheduler barely matters — an honest difference from the paper's
    regime, recorded in EXPERIMENTS.md."""
    t_gpu = workload.kernel_time(V100)
    t_cpu = workload.cpu_time(SUMMIT.core)
    m = MpsPipelineModel(SUMMIT, t_gpu=t_gpu, t_cpu_base=t_cpu)
    r_on = m.node_rate(7, 2)
    r_off = m.without_mps().node_rate(7, 2)
    assert r_on / r_off < 1.5
