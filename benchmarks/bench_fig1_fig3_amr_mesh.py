"""Figures 1 & 3: the AMR velocity-space meshes.

Fig. 3: "Maxwellian with 20 cells and domain size 5 v_th" — our mesh
generator reproduces exactly 20 cells / 193 free vertices.  Fig. 1 is the
electron-deuterium shared grid (refined to the deuterium thermal scale near
the origin).
"""

import numpy as np

from repro.amr import landau_mesh
from repro.core import deuterium, electron
from repro.fem import FunctionSpace
from repro.report import format_table

VE = electron().thermal_velocity


def _mesh_stats(vths, order=3):
    mesh = landau_mesh(vths)
    fs = FunctionSpace(mesh, order=order)
    levels = sorted(set(np.round(np.log2(mesh.size[:, 0].max() / mesh.size[:, 0])).astype(int)))
    return {
        "cells": mesh.nelem,
        "free_vertices": fs.ndofs,
        "constrained": fs.dofmap.n_constrained,
        "ips": fs.n_integration_points,
        "min_cell": float(mesh.size.min()),
        "max_cell": float(mesh.size.max()),
        "levels": len(levels),
    }


def test_fig3_single_species_mesh(benchmark):
    stats = benchmark.pedantic(
        _mesh_stats, args=([VE],), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            list(stats.keys()),
            [list(stats.values())],
            title="Fig. 3 mesh — single-species Maxwellian, domain 5 v_th "
            "(paper: 20 cells, 193 vertices, 16 IPs/cell)",
        )
    )
    assert stats["cells"] == 20
    assert stats["free_vertices"] == 193
    assert stats["ips"] == 320


def test_fig1_electron_deuterium_mesh(benchmark):
    vths = [VE, deuterium().thermal_velocity]
    stats = benchmark.pedantic(_mesh_stats, args=(vths,), rounds=1, iterations=1)
    print()
    print(
        format_table(
            list(stats.keys()),
            [list(stats.values())],
            title="Fig. 1 mesh — electron-deuterium shared grid",
        )
    )
    # deuterium refinement: min cell resolves v_th,D; several levels deep
    assert stats["min_cell"] <= 1.3 * deuterium().thermal_velocity
    assert stats["levels"] >= 5
    assert stats["constrained"] > 0  # non-conforming


def test_mesh_ascii_rendering():
    """Visual check artifact: cell-size histogram along the z = 0+ strip."""
    mesh = landau_mesh([VE, deuterium().thermal_velocity])
    # cells sitting directly on the axis from above: lower_z == 0
    on_axis = np.abs(mesh.lower[:, 1]) < 1e-12
    strip = mesh.lower[on_axis]
    sizes = mesh.size[on_axis, 0]
    order = np.argsort(strip[:, 0])
    print("\ncells on the z=0+ strip, by r (left = origin):")
    print(" ".join(f"{s:.3g}" for s in sizes[order]))
    # the origin cell is the finest on the grid, and sizes grow outward
    assert sizes[order][0] == mesh.size.min()
    assert np.all(np.diff(sizes[order]) >= -1e-12)
