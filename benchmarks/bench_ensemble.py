"""Ensemble campaign acceptance bench: UQ distributions over the serve tier.

Runs a seeded stochastic quench ensemble (see ``repro.ensemble``) through
the batched collision-solve service and reports:

* quench-time / post-quench-resistivity / runaway-fraction distributions
  (quantiles + bootstrap CIs) over the members;
* campaign throughput in members/hour against the honest sequential
  baseline (same members, one job per batch, single shard);
* the plan-cache hit rate across members sharing a species signature
  (members differ in Maxwellian parameters, not plan identity, so the
  warm cache is hit across the whole campaign);
* determinism evidence: a shuffled-submission re-run must be bitwise
  identical, and — where the process executor is available — the
  thread- and process-executor campaigns must match bitwise too;
* resume correctness: a partially-run campaign restarted from its
  ``RPROCKSUM1`` ledger finishes with ``rerun_overlap == 0``.

Usage::

    PYTHONPATH=src python benchmarks/bench_ensemble.py \
        [--smoke] [--members N] [--out BENCH_ensemble.json]

``--smoke`` runs a small member count on a coarse mesh (CI); the full
mode sizes the campaign at >= 32 members.
"""

from __future__ import annotations

import argparse
import tempfile
import time

from repro.ensemble import (
    CampaignDriver,
    CampaignOptions,
    ScenarioDesign,
    campaign_report,
    sample_scenarios,
    write_campaign_json,
)
from repro.ensemble.campaign import _MemberRun
from repro.serve import CollisionSolveService, ServeOptions

SEED = 20260808


def make_design(members: int) -> ScenarioDesign:
    return ScenarioDesign(members=members, seed=SEED, Z_choices=(1.0, 2.0))


def make_options(smoke: bool, **overrides) -> CampaignOptions:
    base = dict(
        dt=0.5,
        max_steps=6 if smoke else 12,
        post_steps=2,
        order=2,
        mesh_kwargs={"h_factor": 1.6} if smoke else None,
        quench_threshold=0.8,
    )
    base.update(overrides)
    return CampaignOptions.from_env(**base)


def run_campaign(
    design: ScenarioDesign,
    options: CampaignOptions,
    serve_options: ServeOptions | None = None,
    scenarios=None,
):
    """One timed campaign; returns (results, elapsed_s, driver, serve snapshot)."""
    service = CollisionSolveService(
        serve_options or ServeOptions(num_shards=2, max_batch=64)
    )
    driver = CampaignDriver(
        design, options, service=service, scenarios=scenarios
    )
    t0 = time.perf_counter()
    try:
        results = driver.run()
        elapsed = time.perf_counter() - t0
        snapshot = service.snapshot()
    finally:
        service.close()
    return results, elapsed, driver, snapshot


def run_resume_probe(design: ScenarioDesign, options_kwargs: dict) -> dict:
    """Crash a campaign after a few ledgered rounds, resume, report overlap."""
    with tempfile.TemporaryDirectory(prefix="bench_ensemble_") as ckpt:
        opts = CampaignOptions(checkpoint_dir=ckpt, **options_kwargs)
        partial = CampaignDriver(design, opts)
        for sc in sorted(partial.scenarios, key=lambda s: s.member_key):
            partial.active[sc.member_key] = _MemberRun(sc, partial)
        crash_rounds = 3
        for _ in range(crash_rounds):
            partial._round()
        partial.write_ledger()
        partial.service.close()  # the "SIGKILL"

        resumed = CampaignDriver(design, CampaignOptions(checkpoint_dir=ckpt, **options_kwargs))
        results = resumed.run(resume=True)
        return {
            "crash_rounds": crash_rounds,
            "resumed_members": resumed.resumed_members,
            "rerun_overlap": resumed.rerun_overlap,
            "completed": sum(1 for r in results if r.status == "ok"),
            "state_sha256": [r.state_sha256 for r in results],
        }


def run_bench(smoke: bool, members: int | None) -> tuple[dict, dict, dict, str]:
    if members is None:
        members = 8 if smoke else 32
    design = make_design(members)
    options = make_options(smoke)
    opt_kwargs = dict(
        dt=options.dt,
        max_steps=options.max_steps,
        post_steps=options.post_steps,
        order=options.order,
        mesh_kwargs=options.mesh_kwargs,
        quench_threshold=options.quench_threshold,
        max_inflight=options.max_inflight,
    )

    # --- the measured campaign (micro-batched serve tier) ---------------
    results, batched_s, driver, serve_snap = run_campaign(design, options)
    assert all(r.status == "ok" for r in results), [
        r.index for r in results if r.status != "ok"
    ]
    hashes = [r.state_sha256 for r in results]

    # --- sequential baseline: same members, no batching, one shard ------
    _, seq_s, _, _ = run_campaign(
        design,
        CampaignOptions(**opt_kwargs),
        serve_options=ServeOptions(num_shards=1, max_batch=1),
    )

    # --- determinism: shuffled submission must be bitwise identical -----
    scenarios = sample_scenarios(design)
    shuffled = list(reversed(scenarios))
    shuf_results, _, _, _ = run_campaign(
        design, CampaignOptions(**opt_kwargs), scenarios=shuffled
    )
    shuffled_equal = [r.state_sha256 for r in shuf_results] == hashes

    # --- thread vs process executor (where available) -------------------
    process_equal = None
    process_error = ""
    try:
        proc_results, _, _, _ = run_campaign(
            design,
            CampaignOptions(**opt_kwargs),
            serve_options=ServeOptions(
                num_shards=2, max_batch=64, executor="process"
            ),
        )
        process_equal = [r.state_sha256 for r in proc_results] == hashes
    except Exception as exc:  # pragma: no cover - platform dependent
        process_error = f"{type(exc).__name__}: {exc}"

    # --- resume correctness ---------------------------------------------
    resume = run_resume_probe(design, opt_kwargs)
    resume["matches_uninterrupted"] = resume.pop("state_sha256") == hashes

    stats = driver.statistics(n_boot=400)
    pc = serve_snap["plan_cache"]
    extra = {
        "members": members,
        "seed": SEED,
        "mesh": {"ndofs": int(driver.fs.ndofs), "order": options.order},
        "dt": options.dt,
        "throughput": {
            "batched_s": batched_s,
            "sequential_s": seq_s,
            "batched_members_per_hour": members / batched_s * 3600.0,
            "sequential_members_per_hour": members / seq_s * 3600.0,
            "speedup": seq_s / batched_s,
        },
        "plan_cache_hit_rate": pc["hit_rate"],
        "determinism": {
            "shuffled_bitwise_equal": shuffled_equal,
            "process_bitwise_equal": process_equal,
            "process_error": process_error,
        },
        "resume": resume,
    }
    report = campaign_report(driver.snapshot(), stats, serve_snap)
    return driver.snapshot(), stats, {"serve": serve_snap, "extra": extra}, report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: few members, coarse mesh",
    )
    ap.add_argument("--members", type=int, default=None)
    ap.add_argument("--out", default="BENCH_ensemble.json")
    args = ap.parse_args(argv)

    snapshot, stats, aux, report = run_bench(args.smoke, args.members)
    write_campaign_json(
        args.out, snapshot, stats, aux["serve"], extra=aux["extra"]
    )
    extra = aux["extra"]
    print(report)
    print()
    th = extra["throughput"]
    det = extra["determinism"]
    print(
        f"batched: {th['batched_members_per_hour']:.0f} members/h   "
        f"sequential: {th['sequential_members_per_hour']:.0f} members/h   "
        f"speedup: {th['speedup']:.2f}x   "
        f"plan-cache hit rate: {extra['plan_cache_hit_rate']:.2f}"
    )
    proc = (
        "n/a" if det["process_bitwise_equal"] is None
        else str(det["process_bitwise_equal"]).lower()
    )
    print(
        f"shuffled bitwise: {str(det['shuffled_bitwise_equal']).lower()}   "
        f"process bitwise: {proc}   "
        f"resume overlap: {extra['resume']['rerun_overlap']}"
    )

    ok = True
    if not det["shuffled_bitwise_equal"]:
        print("FAIL: shuffled-submission campaign diverged (determinism broken)")
        ok = False
    if det["process_bitwise_equal"] is False:
        print("FAIL: process-executor campaign diverged from thread executor")
        ok = False
    if extra["resume"]["rerun_overlap"] != 0:
        print(f"FAIL: resume re-ran {extra['resume']['rerun_overlap']} ledgered jobs")
        ok = False
    if not extra["resume"]["matches_uninterrupted"]:
        print("FAIL: resumed campaign states diverge from uninterrupted run")
        ok = False
    if extra["plan_cache_hit_rate"] <= 0.5:
        print(f"FAIL: plan-cache hit rate {extra['plan_cache_hit_rate']:.2f} <= 0.5")
        ok = False
    print("OK" if ok else "BENCH FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
