"""Serve-layer acceptance bench: batched service vs sequential solves.

Measures end-to-end throughput (jobs/s) of the collision solve service —
micro-batching + plan cache + sharded dispatch — against the honest
sequential baseline (a warm ``LandauOperator`` reused by one
``ImplicitLandauSolver``, one vertex at a time), on the same per-vertex
jobs sharing one plan.  The acceptance bar (ISSUE PR 4): >= 3x throughput
at >= 64 concurrent jobs, per-job results matching sequential to <= 1e-10.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        [--smoke] [--jobs N] [--out BENCH_serve.json]

``--smoke`` runs a tiny job count on a coarse mesh with no speedup
assertion (CI); the full mode enforces the acceptance criteria.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.amr import landau_mesh
from repro.core import ImplicitLandauSolver, LandauOperator, SpeciesSet, electron
from repro.core.maxwellian import maxwellian_rz
from repro.fem import FunctionSpace
from repro.report import serve_summary
from repro.serve import CollisionSolveService, ServeOptions, SolvePlan

RTOL = 1e-11  # tight shared tolerance so both paths land on the same fixed point
DT = 0.2


def _setup(order: int):
    spc = SpeciesSet([electron()])
    fs = FunctionSpace(landau_mesh([electron().thermal_velocity]), order=order)
    return fs, spc


def _make_states(fs, n_jobs: int) -> list[np.ndarray]:
    """Perturbed near-Maxwellian vertex states (cool/warm/drifting mix)."""
    rng = np.random.default_rng(11)
    states = []
    for _ in range(n_jobs):
        vth = 0.886 * rng.uniform(0.75, 1.15)
        drift = rng.uniform(-0.15, 0.15)
        states.append(
            fs.interpolate(
                lambda r, z: maxwellian_rz(r, z - drift, 1.0, vth)
            )[None, :]
        )
    return states


def _sequential(fs, spc, states) -> tuple[list[np.ndarray], float]:
    """Warm-operator sequential baseline: the pre-service serving story."""
    op = LandauOperator(fs, spc)
    solver = ImplicitLandauSolver(op, rtol=RTOL, max_newton=50)
    solver.step([states[0][0].copy()], DT)  # warm pair tables + structure
    t0 = time.perf_counter()
    out = [np.stack(solver.step([s[0].copy()], DT)) for s in states]
    return out, time.perf_counter() - t0


def _served(fs, spc, states, options: ServeOptions):
    # deeper Anderson window than the default: at 64-vertex batches the
    # extra normal-equation cost is negligible next to the sweeps it saves
    plan = SolvePlan(fs=fs, species=spc, dt=DT, rtol=RTOL, accel_m=3)
    svc = CollisionSolveService(options)
    # warm the plan runtime (pair tables, scatter, band symbolics) so both
    # paths are measured with hot caches, like a long-running service
    svc.solve_many(plan, states[:1])
    t0 = time.perf_counter()
    results = svc.solve_many(plan, states)
    elapsed = time.perf_counter() - t0
    return results, elapsed, svc.snapshot()


def run_bench(smoke: bool, n_jobs: int | None) -> dict:
    order = 2 if smoke else 3
    if n_jobs is None:
        n_jobs = 8 if smoke else 64
    fs, spc = _setup(order)
    states = _make_states(fs, n_jobs)
    # the acceptance scenario is >= 64 concurrent same-plan jobs: size the
    # micro-batch window to the offered concurrency
    options = ServeOptions.from_env(
        num_shards=1 if smoke else 2, max_batch=max(n_jobs, 32)
    )

    seq_out, seq_s = _sequential(fs, spc, states)
    results, serve_s, snapshot = _served(fs, spc, states, options)

    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    max_rel_diff = max(
        float(np.abs(r.state - ref).max() / np.abs(ref).max())
        for r, ref in zip(results, seq_out)
    )
    latencies = sorted(r.latency_s for r in results)
    shards = snapshot["shards"]
    return {
        "jobs": n_jobs,
        "mesh": {"ndofs": int(fs.ndofs), "order": order},
        "dt": DT,
        "rtol": RTOL,
        "sequential_s": seq_s,
        "serve_s": serve_s,
        "sequential_jobs_per_s": n_jobs / seq_s,
        "serve_jobs_per_s": n_jobs / serve_s,
        "speedup": seq_s / serve_s,
        "max_rel_diff": max_rel_diff,
        "batch_size_hist": snapshot["batch_size_hist"],
        "plan_cache": snapshot["plan_cache"],
        "launch_reduction": snapshot["solver"]["launch_reduction"],
        "latency_ms": {
            "p50": float(np.percentile(latencies, 50)) * 1e3,
            "p99": float(np.percentile(latencies, 99)) * 1e3,
        },
        "per_shard": [
            {
                "shard": s["shard"],
                "jobs": s["jobs_ok"] + s["jobs_failed"] + s["jobs_shed"],
                "batches": s["batches"],
                "p50_ms": s["latency"]["p50_ms"],
                "p99_ms": s["latency"]["p99_ms"],
            }
            for s in shards
        ],
        "snapshot": snapshot,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: few jobs, coarse mesh, no speedup assertion",
    )
    ap.add_argument("--jobs", type=int, default=None)
    ap.add_argument("--out", default="BENCH_serve.json")
    args = ap.parse_args(argv)

    result = run_bench(smoke=args.smoke, n_jobs=args.jobs)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)

    print(serve_summary(result["snapshot"]))
    print()
    print(
        f"sequential: {result['sequential_jobs_per_s']:.1f} jobs/s   "
        f"served: {result['serve_jobs_per_s']:.1f} jobs/s   "
        f"speedup: {result['speedup']:.2f}x   "
        f"max rel diff: {result['max_rel_diff']:.2e}"
    )

    if result["max_rel_diff"] > 1e-10:
        print(f"FAIL: served results diverge from sequential ({result['max_rel_diff']:.3e} > 1e-10)")
        return 1
    if not args.smoke and result["speedup"] < 3.0:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the 3x acceptance bar")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
