"""Table I: cost of the Landau operator with 10 species vs number of grids.

Paper rows (for comparison):

    # grids   N IPs   # Landau tensors   n equations
          1   1,184          1.4M              8,050
          3     960          0.9M              1,930
         10   3,200         10.2M              1,930
"""

from repro.core import grid_cost_table, plan_grids
from repro.perf.workload import build_paper_species
from repro.report import format_table


def _plans(species):
    return [
        [list(range(len(species)))],
        plan_grids(species),
        [[i] for i in range(len(species))],
    ]


def test_table1_grid_costs(benchmark):
    species = build_paper_species()
    plans = _plans(species)
    rows = benchmark.pedantic(
        grid_cost_table, args=(species, plans), kwargs={"order": 3}, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["# grids", "cells", "N IPs", "# Landau tensors", "n equations"],
            [
                [
                    r["grids"],
                    r["cells"],
                    r["integration_points"],
                    r["landau_tensors"],
                    r["equations"],
                ]
                for r in rows
            ],
            title="Table I — cost vs number of grids (10 species: e, D, 8x W)",
        )
    )
    one, three, ten = rows
    # the paper's qualitative conclusions
    assert one["equations"] > 3 * three["equations"]
    assert ten["landau_tensors"] > 5 * three["landau_tensors"]
    assert three["integration_points"] <= one["integration_points"]
