"""Ablation: the custom GPU band LU vs the CPU band LU (conclusion §VI).

"Though a custom GPU LU solver is available in PETSc, it is no faster than
the CPU solver reported here."  On the model: the GPU factorization's
critical path is one grid-wide group synchronization per elimination step
— ~n sync latencies — which dwarfs its (tiny) arithmetic at Landau sizes.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gpu import V100
from repro.perf.nodes import POWER9
from repro.sparse import BandSolver, GpuBandSolver


@pytest.fixture(scope="module")
def system(ed_system):
    fs, spc, op, fields = ed_system
    L = op.jacobian(fields)
    A = sp.block_diag([(op.mass_matrix - 0.1 * l).tocsr() for l in L]).tocsr()
    rng = np.random.default_rng(1)
    return A, rng.normal(size=A.shape[0])


def test_gpu_band_factor(benchmark, system):
    A, b = system
    solver = benchmark.pedantic(GpuBandSolver, args=(A,), rounds=2, iterations=1)
    x = solver(b)
    assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-9

    prof = solver.profile
    t_gpu = prof.predicted_time(V100)
    # CPU model time for the same factorization work
    counter: dict = {}
    BandSolver(A, work_counter=counter)
    t_cpu = counter["flops"] / (POWER9.effective_gflops * 1e9)
    print(
        f"\npredicted V100 factor time {t_gpu*1e3:.2f} ms "
        f"(sync chain: {prof.steps} steps x 1.5 us = {prof.steps*1.5e-3:.2f} ms) "
        f"vs POWER9 model {t_cpu*1e3:.2f} ms"
    )
    # the paper's finding: the GPU solver is NOT faster at these sizes
    assert t_gpu > 0.25 * t_cpu


def test_cpu_band_factor(benchmark, system):
    A, b = system
    solver = benchmark.pedantic(BandSolver, args=(A,), rounds=2, iterations=1)
    x = solver(b)
    assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-9
