"""Ablation: direct (band/SuperLU) vs the custom iterative solver (§VI).

"In particular, the linear solves and vector operations need attention ...
A custom GPU iterative solver is under development to address this
problem."  This bench runs our block-Jacobi GMRES against the direct
solvers on the real two-species Landau system and reports iteration
counts — the quantities that decide whether an iterative solver can beat
the O(n B^2) factorization.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.sparse import BandSolver, BlockJacobiPreconditioner, gmres


@pytest.fixture(scope="module")
def system(ed_system):
    fs, spc, op, fields = ed_system
    L = op.jacobian(fields)
    A = sp.block_diag([(op.mass_matrix - 0.1 * l).tocsr() for l in L]).tocsr()
    rng = np.random.default_rng(1)
    return A, rng.normal(size=A.shape[0])


def test_gmres_block_jacobi(benchmark, system):
    A, b = system
    M = BlockJacobiPreconditioner.from_bandwidth_slices(A, 64)

    def run():
        return gmres(A, b, M=M, restart=40, rtol=1e-9, max_restarts=50)

    x, stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.converged
    assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-8
    print(
        f"\nGMRES(40)+BJ(64): {stats.iterations} iterations, "
        f"{stats.matvecs} matvecs, {stats.restarts} restarts"
    )


def test_gmres_setup_plus_solve(benchmark, system):
    """Including the preconditioner setup (amortized over Newton sweeps in
    practice, charged fully here)."""
    A, b = system

    def run():
        M = BlockJacobiPreconditioner.from_bandwidth_slices(A, 64)
        return gmres(A, b, M=M, restart=40, rtol=1e-9, max_restarts=50)

    x, stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.converged


def test_direct_band(benchmark, system):
    A, b = system

    def run():
        return BandSolver(A).solve(b)

    x = benchmark.pedantic(run, rounds=2, iterations=1)
    assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-9


def test_direct_superlu(benchmark, system):
    A, b = system

    def run():
        return spla.splu(A.tocsc()).solve(b)

    x = benchmark.pedantic(run, rounds=2, iterations=1)
    assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-10
