"""Honest wall-clock benchmarks of our Python kernels (Algorithm 1 paths).

These are *measured* times of this reproduction's NumPy implementation —
reported as such, never conflated with the modelled device times.  They are
the numbers a user of this library actually experiences:

* pair-table construction (the O(N^2) elliptic-integral tensors),
* the D/K field computation (seven dense matvecs on cached tables),
* the per-species Jacobian assembly,
* the full CUDA-model kernel (recomputes tensors on the fly + counters),
* one implicit time step.
"""

import numpy as np

from repro.core import ImplicitLandauSolver, LandauOperator
from repro.core.kernel_cuda import CudaLandauJacobian
from repro.gpu import CudaMachine


def test_pair_table_build(benchmark, ed_system):
    fs, spc, op, fields = ed_system
    result = benchmark(lambda: LandauOperator(fs, spc, cache_pair_tables=True))
    assert result.pair_tables_cached


def test_field_computation(benchmark, ed_system):
    fs, spc, op, fields = ed_system
    G_D, G_K = benchmark(op.fields, fields)
    assert G_D.shape == (fs.n_integration_points, 2, 2)


def test_jacobian_build(benchmark, ed_system):
    fs, spc, op, fields = ed_system
    blocks = benchmark(op.jacobian, fields)
    assert len(blocks) == len(spc)


def test_cuda_model_kernel(benchmark, ed_system):
    """The instrumented Algorithm 1 — slower than the cached CPU path by
    design (it recomputes the tensors on the fly, as the GPU does)."""
    fs, spc, op, fields = ed_system
    ck = CudaLandauJacobian(fs, spc, machine=CudaMachine())
    J = benchmark.pedantic(ck.build, args=(fields,), rounds=2, iterations=1)
    assert np.isfinite(J).all()


def test_implicit_step(benchmark, ed_system):
    fs, spc, op, fields = ed_system
    solver = ImplicitLandauSolver(op, rtol=1e-6)
    out = benchmark.pedantic(
        solver.step, args=(fields, 0.5), kwargs={"efield": 0.01}, rounds=2, iterations=1
    )
    assert len(out) == len(spc)
