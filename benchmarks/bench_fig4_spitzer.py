"""Figure 4: calculated eta = E/J vs Spitzer eta as a function of Z.

The paper's qualitative verification: the FP-Landau resistivity tracks the
Spitzer curve across effective ionizations (their Z = 128 point was not
fully converged).  Appendix B quantifies the deuterium case at ~1% below
Spitzer — our converged Q3 runs land 1-3% below (see EXPERIMENTS.md for the
long-run value).

This bench runs short (partially settled) sweeps at a few Z to keep the
runtime modest; the trend and normalization are what is checked.
"""

import pytest

from repro.quench import measure_resistivity
from repro.report import ascii_plot, format_table

ZS = [1.0, 2.0, 4.0]


def _sweep():
    return [
        measure_resistivity(Z=Z, dt=0.5, max_steps=24, settle_tol=0.005, order=3)
        for Z in ZS
    ]


def test_fig4_spitzer_vs_Z(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["Z", "eta = E/J", "eta_Spitzer", "ratio", "steps", "Newton its"],
            [
                [r["Z"], r["eta"], r["eta_spitzer"], r["ratio"], r["steps"], r["newton_iterations"]]
                for r in rows
            ],
            title="Fig. 4 — calculated vs Spitzer resistivity (code units)",
        )
    )
    print(
        ascii_plot(
            [r["Z"] for r in rows],
            {
                "eta=E/J": [r["eta"] for r in rows],
                "Spitzer": [r["eta_spitzer"] for r in rows],
            },
            width=48,
            height=10,
            title="Fig. 4 (ASCII)",
        )
    )
    # the computed resistivity tracks Spitzer at every Z
    for r in rows:
        assert r["ratio"] == pytest.approx(1.0, abs=0.10)
    # and eta increases with Z (Z F(Z) grows)
    etas = [r["eta"] for r in rows]
    assert etas[0] < etas[1] < etas[2]
