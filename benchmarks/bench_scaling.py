"""Weak/strong scaling study of the process-pool backend.

Measures warm ``BatchedVertexSolver.step`` throughput (jobs/s, one job =
one vertex state advanced by one implicit step) for the ``numpy``,
``threaded`` and ``process`` backends across three sweeps:

* **batch sweep** — fixed worker count, batch sizes into the hundreds:
  does the GIL-free executor keep scaling where the thread pool
  saturates?
* **strong scaling** — fixed total batch, growing worker count: time to
  solve a fixed problem vs workers.
* **weak scaling** — fixed batch *per worker*: throughput with the
  problem growing alongside the workers.

Every configuration is checked against the serial numpy reference to
1e-12, and the process backend's IPC counters are recorded so the
zero-copy contract is visible: per-batch pickled traffic must stay
O(state vectors), not O(warm plan state).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_scaling.py \
        [--smoke] [--repeats N] [--out BENCH_scaling.json]

The full run asserts the >= 2x process-over-threaded throughput bar at
batch >= 64 *when the host has at least four CPUs* (fewer cannot
demonstrate a multi-process win over a thread pool; the bar is recorded
as waived); ``--smoke`` (the CI mode) uses a tiny mesh and checks only
agreement and JSON well-formedness.
"""

import argparse
import json
import os
import time

import numpy as np

from repro.backend import get_backend
from repro.core import AssemblyOptions, SpeciesSet, deuterium, electron
from repro.core.batch import BatchedVertexSolver
from repro.core.maxwellian import maxwellian_rz, species_maxwellian
from repro.fem import FunctionSpace, Mesh

# dt sits inside the Picard contraction region for this mesh: every
# vertex converges in ~5 sweeps, so backends are compared at the fixed
# point rather than on truncated (chaotic) iteration-50 iterates
DT = 0.01
ACCEPT_SPEEDUP = 2.0
ACCEPT_BATCH = 64
MIN_CPUS_FOR_BAR = 4


def _system(smoke: bool):
    spc = SpeciesSet([electron(), deuterium()])
    vmax = 3.0 * max(s.thermal_velocity for s in spc)
    cells = 2 if smoke else 4
    mesh = Mesh.structured(cells, cells, r_max=vmax, z_min=-vmax, z_max=vmax)
    fs = FunctionSpace(mesh, order=2 if smoke else 3)
    return fs, spc


def _states(fs, spc, batch: int) -> np.ndarray:
    """``(batch, species, n)`` stack of perturbed near-Maxwellian states."""
    rng = np.random.default_rng(7)
    base = np.stack([fs.interpolate(species_maxwellian(s)) for s in spc])
    e = spc[0]
    out = np.empty((batch,) + base.shape)
    for b in range(batch):
        vth = e.thermal_velocity * rng.uniform(0.7, 1.0)
        drift = rng.uniform(-0.1, 0.1)
        fe = fs.interpolate(
            lambda r, z, v=vth, d=drift: maxwellian_rz(r, z - d, 1.0, v)
        )
        out[b] = base
        out[b, 0] = fe
    return out


def _solver(fs, spc, backend: str, workers: int) -> BatchedVertexSolver:
    return BatchedVertexSolver(
        fs,
        spc,
        options=AssemblyOptions.from_env(
            backend=backend, num_threads=0 if backend == "numpy" else workers
        ),
        rtol=1e-9,
    )


def _ipc_snapshot(solver) -> dict | None:
    backend = solver.op.backend
    return backend.ipc_counters() if hasattr(backend, "ipc_counters") else None


def _measure(solver, states: np.ndarray, repeats: int) -> dict:
    """Warm throughput of one config: jobs/s plus IPC deltas per step."""
    solver.step(states, DT)  # warmup: pools forked, plans/factors warm
    ipc0 = _ipc_snapshot(solver)
    t0 = time.perf_counter()
    for _ in range(repeats):
        out = solver.step(states, DT)
    seconds = (time.perf_counter() - t0) / repeats
    batch = states.shape[0]
    rec = {
        "batch": int(batch),
        "seconds_per_step": seconds,
        "jobs_per_s": batch / seconds if seconds > 0 else float("inf"),
        "converged": bool(np.all(solver.last_converged)),
    }
    ipc1 = _ipc_snapshot(solver)
    if ipc0 is not None:
        sent = (ipc1["ipc_bytes_sent"] - ipc0["ipc_bytes_sent"]) / repeats
        saved = (ipc1["ipc_bytes_saved"] - ipc0["ipc_bytes_saved"]) / repeats
        state_bytes = states.nbytes
        rec["ipc"] = {
            "bytes_sent_per_step": sent,
            "bytes_saved_per_step": saved,
            # the zero-copy contract: per-batch pickle traffic is a small
            # multiple of the state stack (rhs blocks + band data), never
            # the warm plan tensors
            "sent_over_state_bytes": sent / state_bytes if state_bytes else 0.0,
            "shm_fallbacks": ipc1["shm_fallbacks"] - ipc0["shm_fallbacks"],
        }
    return rec, out


def _rel_diff(a: np.ndarray, b: np.ndarray) -> float:
    scale = max(np.abs(b).max(), 1e-300)
    return float(np.abs(a - b).max() / scale)


def run_bench(smoke: bool = False, repeats: int = 2) -> dict:
    fs, spc = _system(smoke)
    cpus = os.cpu_count() or 1
    if smoke:
        batches = [4, 8]
        worker_sweep = [1, 2]
        fixed_workers = 2
        strong_batch = 8
        weak_per_worker = 4
    else:
        batches = [16, 64, 128, 256]
        worker_sweep = [w for w in (1, 2, 4, 8) if w <= max(2, cpus)]
        fixed_workers = max(2, min(8, cpus))
        strong_batch = 128
        weak_per_worker = 32

    # serial references, one per batch size used anywhere
    all_batches = sorted(
        set(batches)
        | {strong_batch}
        | {weak_per_worker * w for w in worker_sweep}
    )
    ref_solver = _solver(fs, spc, "numpy", 1)
    refs = {}
    for b in all_batches:
        refs[b] = ref_solver.step(_states(fs, spc, b), DT)

    max_diff = 0.0

    def measure(backend: str, workers: int, batch: int) -> dict:
        nonlocal max_diff
        solver = _solver(fs, spc, backend, workers)
        rec, out = _measure(solver, _states(fs, spc, batch), repeats)
        rec["workers"] = int(workers)
        rec["rel_diff_vs_numpy"] = _rel_diff(out, refs[batch])
        max_diff = max(max_diff, rec["rel_diff_vs_numpy"])
        return rec

    batch_sweep = {
        name: [measure(name, 1 if name == "numpy" else fixed_workers, b) for b in batches]
        for name in ("numpy", "threaded", "process")
    }
    strong = {
        name: [measure(name, w, strong_batch) for w in worker_sweep]
        for name in ("threaded", "process")
    }
    weak = {
        name: [measure(name, w, weak_per_worker * w) for w in worker_sweep]
        for name in ("threaded", "process")
    }

    # process-over-threaded throughput at batch >= ACCEPT_BATCH
    speedups = {}
    for rec_p, rec_t in zip(batch_sweep["process"], batch_sweep["threaded"]):
        if rec_p["batch"] >= ACCEPT_BATCH:
            speedups[rec_p["batch"]] = rec_p["jobs_per_s"] / rec_t["jobs_per_s"]
    best_speedup = max(speedups.values()) if speedups else None

    backend = get_backend("process", fixed_workers)
    return {
        "benchmark": "process_scaling",
        "smoke": bool(smoke),
        "repeats": int(repeats),
        "cpus": int(cpus),
        "dt": DT,
        "mesh": {
            "cells": int(fs.nelem),
            "ndofs": int(fs.ndofs),
            "species": len(spc),
        },
        "batch_sweep": batch_sweep,
        "strong_scaling": {"batch": strong_batch, "results": strong},
        "weak_scaling": {"per_worker": weak_per_worker, "results": weak},
        "process_ipc_totals": backend.ipc_counters(),
        "max_rel_diff": max_diff,
        "process_over_threaded": {
            "by_batch": {str(k): v for k, v in sorted(speedups.items())},
            "best": best_speedup,
            "bar": ACCEPT_SPEEDUP,
            "bar_waived": cpus < MIN_CPUS_FOR_BAR,
        },
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny mesh, agreement checks only, no speedup bar",
    )
    ap.add_argument("--repeats", type=int, default=2)
    ap.add_argument("--out", default="BENCH_scaling.json")
    args = ap.parse_args(argv)

    result = run_bench(smoke=args.smoke, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    unconverged = [
        (name, rec["batch"], rec["workers"])
        for sweep in (
            result["batch_sweep"],
            result["strong_scaling"]["results"],
            result["weak_scaling"]["results"],
        )
        for name, recs in sweep.items()
        for rec in recs
        if not rec["converged"]
    ]
    if unconverged:
        print(f"FAIL: unconverged configurations {unconverged}")
        return 1
    if result["max_rel_diff"] > 1e-12:
        print(
            f"FAIL: backends disagree (max rel diff {result['max_rel_diff']:.3e})"
        )
        return 1
    bar = result["process_over_threaded"]
    if not args.smoke and not bar["bar_waived"]:
        if bar["best"] is None or bar["best"] < bar["bar"]:
            print(
                f"FAIL: process-over-threaded throughput {bar['best']} below "
                f"the {bar['bar']}x bar at batch >= {ACCEPT_BATCH}"
            )
            return 1
    note = (
        ""
        if not bar["bar_waived"]
        else f" ({result['cpus']} CPU(s): speedup bar waived)"
    )
    best = f"{bar['best']:.2f}x" if bar["best"] is not None else "n/a"
    print(
        f"OK: process-over-threaded best {best} at batch >= {ACCEPT_BATCH}, "
        f"max rel diff {result['max_rel_diff']:.3e}{note}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
