"""Table VIII: throughput and normalized kernel-performance summary.

Paper values:

    Machine / language     N/sec   hardware            kernel (% CUDA)
    Summit / CUDA          7,005   6 V100 + 42 P9               100
    Summit / Kokkos-CUDA   6,193   6 V100 + 42 P9                90
    Spock / Kokkos-HIP       353   4 MI100 + 32 EPYC             20
    Fugaku / Kokkos-OMP       39   NA + 32 A64FX                 12
"""

from repro.perf.summary import format_summary_table, summary_table


def test_table8_summary(benchmark, workload):
    rows = benchmark.pedantic(
        summary_table, args=(workload,), rounds=1, iterations=1
    )
    print()
    print("Table VIII — " + "\n" + format_summary_table(rows))
    # throughput ladder as in the paper
    assert rows[0].throughput >= rows[1].throughput
    assert rows[1].throughput > rows[2].throughput
    assert rows[2].throughput > rows[3].throughput
    # normalized kernel efficiency ladder
    pct = [r.kernel_pct_cuda for r in rows]
    assert pct[0] == 100.0
    assert 80.0 <= pct[1] <= 95.0  # paper: 90
    assert 5.0 <= pct[2] <= 35.0  # paper: 20
    assert 2.0 <= pct[3] <= 25.0  # paper: 12
