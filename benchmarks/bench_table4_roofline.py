"""Table IV: roofline data for the Jacobian and mass kernels on V100.

Paper values:

              AI   % roofline   Bottleneck (utilization)
    Jacobian  15.8     53%      FP64 pipe (66.4%)
    Mass       1.8     17%      L1 cache  (27%)

The counters come from the functional CUDA-model simulation of the actual
10-species problem; the percentages from the calibrated device model.
The paper gathered these on a 320-cell problem for full occupancy — AI and
the bottleneck classification are insensitive to the cell count.
"""

from repro.gpu import V100, profile_kernel, roofline_report


def _profiles(workload):
    pj = profile_kernel("Jacobian", workload.jacobian_counters, V100, launches=1)
    pm = profile_kernel("Mass", workload.mass_counters, V100, launches=1)
    return pj, pm


def test_table4_roofline(benchmark, workload):
    pj, pm = benchmark.pedantic(_profiles, args=(workload,), rounds=1, iterations=1)
    print()
    print("Table IV — " + roofline_report([pj, pm]))
    print(
        f"DFMA fraction: {workload.jacobian_counters.dfma_fraction:.2f} "
        f"(paper: 0.64); roofline knee: {V100.roofline_knee:.1f} (paper: 8.8)"
    )
    # the paper's qualitative claims
    assert pj.arithmetic_intensity > V100.roofline_knee  # compute bound
    assert pj.bottleneck == "FP64 pipe"
    assert pm.arithmetic_intensity < V100.roofline_knee
    assert pm.bottleneck in ("L1 cache", "DRAM")
    assert 10.0 <= pj.arithmetic_intensity <= 22.0  # paper: 15.8
    assert pm.arithmetic_intensity <= 4.0  # paper: 1.8


def test_mass_fraction_of_construction(workload):
    """'About 8% of the total matrix construction time is from the mass'
    — ours lands in the same regime."""
    pj, pm = _profiles(workload)
    frac = pm.time_s / (pm.time_s + pj.time_s)
    print(f"\nmass fraction of matrix construction: {frac:.2%} (paper: ~8%)")
    assert 0.02 <= frac <= 0.30
