"""JIT row-block assembly benchmark: numba kernels vs threaded numpy.

Times the three Algorithm-1 hot paths the numba backend lowers to
``nopython`` kernels — the packed pair-table build, the on-the-fly
row-block field integral at batch >= 64, and the element-Jacobian
contraction — against the threaded numpy-slice execution of the same
stages, and checks agreement to 1e-12.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_jit.py \
        [--smoke] [--batch 64] [--repeats N] [--out BENCH_jit.json]

The acceptance bar is a >= 2x numba-over-threaded speedup on the
combined row-block assembly (pair build + field rows) at batch >= 64.
Where numba is not installed (this container's default) the bar is
recorded as ``bar_waived`` with the reason, the threaded/numpy legs
still run, and the exit stays 0 — CI legs with numba installed enforce
the bar for real.
"""

import argparse
import json
import os
import time

import numpy as np

from repro.backend import NumbaBackend, available_backends, get_backend
from repro.core import AssemblyOptions, LandauOperator, SpeciesSet, deuterium, electron
from repro.core.maxwellian import species_maxwellian
from repro.fem import FunctionSpace, Mesh

PHASES = ("pair_build", "field_rows", "element_contract")
SPEC_D = "eq,eqad,xeqdc,eqbc->xeab"
SPEC_K = "eq,eqad,xeqd,qb->xeab"
BAR = 2.0


def _system(smoke: bool):
    spc = SpeciesSet([electron(), deuterium()])
    vmax = 3.0 * max(s.thermal_velocity for s in spc)
    cells = 2 if smoke else 4
    mesh = Mesh.structured(cells, cells, r_max=vmax, z_min=-vmax, z_max=vmax)
    fs = FunctionSpace(mesh, order=2 if smoke else 3)
    fields = [fs.interpolate(species_maxwellian(s)) for s in spc]
    return fs, spc, fields


def _batch_sources(op, fields, batch: int):
    rng = np.random.default_rng(42)
    T_D, T_K = op.beta_sums(fields)
    scale = 1.0 + 0.05 * rng.standard_normal((batch, 1))
    w = op.w[None]
    return (
        scale * (w * T_D[None]),
        scale * (w * T_K[0][None]),
        scale * (w * T_K[1][None]),
    )


def _time(fn, repeats: int) -> float:
    fn()  # warmup (thread pools, caches, numba JIT)
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - t0) / repeats


def _rel_diff(a, b) -> float:
    scale = max(np.abs(b).max(), 1e-300)
    return float(np.abs(np.asarray(a) - np.asarray(b)).max() / scale)


def _bench_backend(name, fs, spc, fields, batch, repeats, threads):
    opts = AssemblyOptions.from_env(
        backend=name, num_threads=0 if name == "numpy" else threads
    )
    op = LandauOperator(fs, spc, options=opts)
    backend = op.backend
    backend.warmup()
    N = op.N
    r, z = op.r, op.z
    wTD, wTKr, wTKz = _batch_sources(op, fields, batch)
    # column-major sources, as the on-the-fly field path feeds them
    cTD = np.ascontiguousarray(wTD.T)
    cTKr = np.ascontiguousarray(wTKr.T)
    cTKz = np.ascontiguousarray(wTKz.T)

    # phase 1: packed pair-table build over all N rows
    table = np.empty((5, N, N))

    def pair_build():
        backend.parallel_for(
            backend.batch_blocks(N),
            lambda i0, i1: backend.pair_table_rows(table, r, z, i0, i1),
        )

    t_pair = _time(pair_build, repeats)

    # phase 2: Algorithm-1 on-the-fly row-block field integral, batch B
    G_D = np.zeros((batch, N, 2, 2))
    G_K = np.zeros((batch, N, 2))

    def field_rows():
        G_D[...] = 0.0
        G_K[...] = 0.0
        backend.parallel_for(
            backend.batch_blocks(N),
            lambda i0, i1: backend.field_rows(
                G_D, G_K, r, z, cTD, cTKr, cTKz, i0, i1
            ),
        )

    t_field = _time(field_rows, repeats)
    field_rows()

    # phase 3: element-Jacobian contraction of the batch-B fields
    from repro.fem.assembly import get_scatter_map

    sm = get_scatter_map(fs)
    w_q = fs.qweights
    gphys = sm.gphys
    Bq = fs.B
    D_q = G_D.reshape((batch,) + w_q.shape + (2, 2))
    K_q = G_K.reshape((batch,) + w_q.shape + (2,))

    def element_contract():
        Ce = backend.contract(SPEC_D, w_q, gphys, D_q, gphys)
        Ce = Ce + backend.contract(SPEC_K, w_q, gphys, K_q, Bq)
        return backend.scatter_apply(sm.T, Ce.reshape(batch, -1))

    t_elem = _time(element_contract, repeats)
    data = element_contract()

    return {
        "workers": backend.workers,
        "seconds": {
            "pair_build": t_pair,
            "field_rows": t_field,
            "element_contract": t_elem,
        },
    }, (table, G_D, data)


def run_bench(smoke: bool = False, batch: int = 64, repeats: int = 3) -> dict:
    fs, spc, fields = _system(smoke)
    threads = max(1, os.cpu_count() or 1)
    names = [n for n in ("numpy", "threaded", "numba") if n in available_backends()]
    results: dict[str, dict] = {}
    outputs: dict[str, tuple] = {}
    for name in names:
        results[name], outputs[name] = _bench_backend(
            name, fs, spc, fields, batch, repeats, threads
        )
        diffs = {}
        for key, got, ref in zip(PHASES, outputs[name], outputs["numpy"]):
            diffs[key] = 0.0 if name == "numpy" else _rel_diff(got, ref)
        results[name]["max_rel_diff"] = diffs

    thr = results["threaded"]["seconds"]
    for name, res in results.items():
        s = res["seconds"]
        res["speedup_vs_threaded"] = {
            p: thr[p] / s[p] if s[p] > 0 else float("inf") for p in PHASES
        }
        rb = s["pair_build"] + s["field_rows"]
        rb_thr = thr["pair_build"] + thr["field_rows"]
        res["row_block_speedup_vs_threaded"] = (
            rb_thr / rb if rb > 0 else float("inf")
        )

    have_numba = NumbaBackend.available()
    report = {
        "benchmark": "jit_row_block_assembly",
        "smoke": bool(smoke),
        "batch": int(batch),
        "repeats": int(repeats),
        "cpus": threads,
        "bar": BAR,
        "mesh": {
            "integration_points": int(fs.n_integration_points),
            "ndofs": int(fs.ndofs),
            "species": len(spc),
        },
        "backends": results,
    }
    if have_numba:
        report["bar_waived"] = False
        report["row_block_speedup"] = results["numba"][
            "row_block_speedup_vs_threaded"
        ]
    else:
        report["bar_waived"] = True
        report["bar_waived_reason"] = (
            "numba is not installed in this container; the >= 2x row-block "
            "bar is enforced only on CI legs that install the pinned numba"
        )
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny mesh, agreement checks only, no speedup bar",
    )
    ap.add_argument("--batch", type=int, default=64)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--out", default="BENCH_jit.json")
    args = ap.parse_args(argv)
    if args.batch < 64:
        ap.error("--batch must be >= 64 (the bar is defined at batch >= 64)")

    result = run_bench(smoke=args.smoke, batch=args.batch, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    worst = max(
        d
        for r in result["backends"].values()
        for d in r["max_rel_diff"].values()
    )
    if worst > 1e-12:
        print(f"FAIL: backends disagree (max rel diff {worst:.3e})")
        return 1
    if result["bar_waived"]:
        print(f"OK: agreement {worst:.3e}; {result['bar_waived_reason']}")
        return 0
    speedup = result["row_block_speedup"]
    if not args.smoke and result["cpus"] >= 2 and speedup < BAR:
        print(
            f"FAIL: numba row-block assembly speedup {speedup:.2f}x below "
            f"the {BAR:.0f}x acceptance bar at batch {result['batch']}"
        )
        return 1
    note = "" if result["cpus"] >= 2 else " (single CPU: bar waived)"
    print(
        f"OK: numba row-block assembly {speedup:.2f}x vs threaded at "
        f"batch {result['batch']}, max rel diff {worst:.3e}{note}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
