"""Table VII: component times per machine/language for the full run.

Paper values (seconds):

    Device                Total  Landau  (Kernel)  factor  solve
    CUDA                   14.3     3.3       2.9     8.4    0.8
    Kokkos-CUDA            15.4     4.1       3.2     8.7    0.8
    Kokkos-HIP             23.1    10.9      10.2     5.9    0.5
    Fugaku (normalized)   250.7   215.1     209.5    16.1    1.5

Known deviation: our AMR mesh factors with a larger RCM bandwidth than the
paper's grid appears to, so the factor component is relatively heavier here
(documented in EXPERIMENTS.md); all orderings and the kernel-time ladder
(CUDA < Kokkos-CUDA < HIP << Fugaku) reproduce.
"""

from repro.perf.components import component_table, format_component_table


def test_table7_components(benchmark, workload):
    rows = benchmark.pedantic(
        component_table, args=(workload,), rounds=1, iterations=1
    )
    print()
    print("Table VII — component times (s) for the 100-step run")
    print(format_component_table(rows))
    by = {r.label: r for r in rows}
    assert by["CUDA"].kernel < by["Kokkos-CUDA"].kernel < by["Kokkos-HIP"].kernel
    assert by["Kokkos-HIP"].kernel < by["Fugaku (normalized)"].kernel
    # the paper: EPYC beats POWER9 on factor/solve
    assert by["Kokkos-HIP"].factor < by["CUDA"].factor
    # Fugaku dominated by the (unvectorized) Landau kernel
    f = by["Fugaku (normalized)"]
    assert f.landau / f.total > 0.5  # paper: ~86%
    # CUDA: kernel is a minor share of the total (solver dominates)
    cu = by["CUDA"]
    assert cu.kernel / cu.total < 0.5  # paper: ~20%


def test_band_factor_flops_counted(workload):
    """The factor cost comes from the real band factorization of the real
    Jacobian — sanity-check its magnitude: ~2 n B^2 per species block."""
    n = workload.fs.ndofs
    B = workload.band_width
    S = len(workload.species)
    expect = 2.0 * n * B * B * S
    print(
        f"\nfactor flops/iteration: {workload.factor_flops/1e6:.1f}M "
        f"(2nB^2 S = {expect/1e6:.1f}M, B={B}, n={n})"
    )
    assert 0.2 * expect <= workload.factor_flops <= 1.5 * expect
