"""Table VI: Jacobian construction and total time on one Fugaku node
(A64FX, Kokkos-OpenMP), 10-step problem.

Paper values (seconds; diagonal = 32 cores):

    #procs \\ threads      8      4      2      1    Total
         4             (19.3)  38.1   75.3   150     25.1
         8                    (38.1)               45.9
        16                           (75.5)        87.0
        32                                  (150) 169.4

plus "a throughput of 39 Newton iterations/second in the four process,
eight threads per process case".  The kernel thread-scales ideally; the
serial solver part spoils the total-time scaling — both reproduced here.
"""

from repro.perf import fugaku_table


def test_table6_fugaku(benchmark, workload):
    table = benchmark.pedantic(
        fugaku_table, args=(workload,), rounds=1, iterations=1
    )
    print()
    print("Table VI — " + table.format())
    j = table.jacobian_seconds
    # ideal thread scaling of the Jacobian construction (top row)
    assert j[(4, 4)] / j[(4, 8)] == 2.0
    assert j[(4, 1)] / j[(4, 8)] == 8.0
    # diagonal throughput nearly constant; total not ideal
    rates = [p / table.total_seconds[p] for p in (4, 8, 16, 32)]
    assert max(rates) / min(rates) < 2.0
    totals = [table.total_seconds[p] for p in (4, 8, 16, 32)]
    assert totals[-1] / totals[0] > 3.0  # grows (not flat): serial part
    print(f"best throughput: {table.throughput_best:.1f} its/s (paper: 39)")
