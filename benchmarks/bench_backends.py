"""Execution-backend benchmark: one kernel spec, several executors.

Times the three backend-dispatched hot paths of a batched collision solve
at batch 64 — field construction (``fields_batch``), operator assembly
(``species_data_batch``) and the banded factor+solve
(``CachedBandSolverFactory.factor_batch`` / ``solve_many``) — for every
execution backend available in the container (``numpy`` always,
``threaded`` always, ``numba`` when installed), and checks they agree
with the numpy reference to 1e-12.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_backends.py \
        [--smoke] [--batch 64] [--repeats N] [--out BENCH_backends.json]

The full run asserts the >= 1.5x threaded-over-numpy speedup on the
combined assembly+solve phases *when the host has at least two CPUs*
(single-CPU runners can't demonstrate a thread-pool win); ``--smoke``
(the CI mode) uses a tiny mesh and only checks agreement and JSON
well-formedness.
"""

import argparse
import json
import os
import time

import numpy as np

from repro.backend import available_backends, get_backend
from repro.core import AssemblyOptions, LandauOperator, SpeciesSet, deuterium, electron
from repro.core.maxwellian import species_maxwellian
from repro.fem import FunctionSpace, Mesh
from repro.sparse.band import CachedBandSolverFactory

PHASES = ("fields", "assembly", "factor_solve")


def _system(smoke: bool):
    spc = SpeciesSet([electron(), deuterium()])
    vmax = 3.0 * max(s.thermal_velocity for s in spc)
    cells = 2 if smoke else 4
    mesh = Mesh.structured(cells, cells, r_max=vmax, z_min=-vmax, z_max=vmax)
    fs = FunctionSpace(mesh, order=2 if smoke else 3)
    fields = [fs.interpolate(species_maxwellian(s)) for s in spc]
    return fs, spc, fields


def _batch_sources(op, fields, batch: int):
    """Weighted beta-term sources for ``batch`` perturbed vertex states."""
    rng = np.random.default_rng(42)
    T_D, T_K = op.beta_sums(fields)
    scale = 1.0 + 0.05 * rng.standard_normal((batch, 1))
    w = op.w[None]
    return (
        scale * (w * T_D[None]),
        scale * (w * T_K[0][None]),
        scale * (w * T_K[1][None]),
    )


def _time(fn, repeats: int) -> float:
    fn()  # warmup (pools, caches, numba JIT)
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - t0) / repeats


def _rel_diff(a, b) -> float:
    scale = max(np.abs(b).max(), 1e-300)
    return float(np.abs(np.asarray(a) - np.asarray(b)).max() / scale)


def run_bench(smoke: bool = False, batch: int = 64, repeats: int = 3) -> dict:
    fs, spc, fields = _system(smoke)
    threads = max(1, os.cpu_count() or 1)
    results: dict[str, dict] = {}
    reference: dict[str, np.ndarray] = {}

    for name in available_backends():
        opts = AssemblyOptions.from_env(
            backend=name, num_threads=0 if name == "numpy" else threads
        )
        op = LandauOperator(fs, spc, options=opts)
        backend = op.backend
        wTD, wTKr, wTKz = _batch_sources(op, fields, batch)

        # phase 1: batched field construction
        t_fields = _time(lambda: op.fields_batch(wTD, wTKr, wTKz), repeats)
        G_D, G_K = op.fields_batch(wTD, wTKr, wTKz)

        # phase 2: batched operator assembly
        t_asm = _time(lambda: op.species_data_batch(G_D, G_K), repeats)
        data = op.species_data_batch(G_D, G_K)

        # phase 3: batched band factor + solve over all (species, vertex)
        M = op.mass_matrix.tocsr()
        lhs = (M.data[None, None, :] - 0.05 * data).reshape(
            len(spc) * batch, -1
        )
        rhs = np.tile(np.stack(fields), (batch, 1))

        def factor_solve():
            solver = CachedBandSolverFactory().factor_batch(
                M, lhs, backend=backend
            )
            return solver.solve_many(rhs)

        t_fac = _time(factor_solve, repeats)
        solved = factor_solve()

        diffs = {}
        for key, val in (("fields", G_D), ("assembly", data), ("factor_solve", solved)):
            if name == "numpy":
                reference[key] = val
                diffs[key] = 0.0
            else:
                diffs[key] = _rel_diff(val, reference[key])

        results[name] = {
            "workers": backend.workers,
            "seconds": {
                "fields": t_fields,
                "assembly": t_asm,
                "factor_solve": t_fac,
            },
            "max_rel_diff": diffs,
        }

    ref_s = results["numpy"]["seconds"]
    for name, r in results.items():
        r["speedup_vs_numpy"] = {
            p: ref_s[p] / r["seconds"][p] if r["seconds"][p] > 0 else float("inf")
            for p in PHASES
        }
        asm_solve = r["seconds"]["assembly"] + r["seconds"]["factor_solve"]
        ref_asm_solve = ref_s["assembly"] + ref_s["factor_solve"]
        r["assembly_solve_speedup"] = (
            ref_asm_solve / asm_solve if asm_solve > 0 else float("inf")
        )

    return {
        "benchmark": "execution_backends",
        "smoke": bool(smoke),
        "batch": int(batch),
        "repeats": int(repeats),
        "cpus": threads,
        "mesh": {
            "cells": int(fs.nelem),
            "integration_points": int(fs.n_integration_points),
            "ndofs": int(fs.ndofs),
            "species": len(spc),
        },
        "backends": results,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny mesh, agreement checks only, no speedup bar",
    )
    ap.add_argument("--batch", type=int, default=64)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--out", default="BENCH_backends.json")
    args = ap.parse_args(argv)

    result = run_bench(smoke=args.smoke, batch=args.batch, repeats=args.repeats)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    worst = max(
        d
        for r in result["backends"].values()
        for d in r["max_rel_diff"].values()
    )
    if worst > 1e-12:
        print(f"FAIL: backends disagree (max rel diff {worst:.3e})")
        return 1
    speedup = result["backends"]["threaded"]["assembly_solve_speedup"]
    if not args.smoke and result["cpus"] >= 2 and speedup < 1.5:
        print(
            f"FAIL: threaded assembly+solve speedup {speedup:.2f}x below the "
            "1.5x acceptance bar"
        )
        return 1
    note = "" if result["cpus"] >= 2 else " (single CPU: speedup bar waived)"
    print(
        f"OK: threaded assembly+solve {speedup:.2f}x vs numpy, "
        f"max rel diff {worst:.3e}{note}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
