"""The custom band solver (section III-G) vs general sparse LU, and the
batched per-species (block-diagonal) factorization of the artifact repo.

The paper's motivation: SuperLU/MUMPS "did not perform well" at Landau
sizes, so a custom band LU with RCM ordering was written.  Here we compare
our band LU against scipy's SuperLU on the *real* multi-species Landau
Jacobian.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.sparse.band import BandSolver, BlockDiagonalBandSolver, bandwidth, rcm_permutation


@pytest.fixture(scope="module")
def landau_system(ed_system):
    fs, spc, op, fields = ed_system
    L = op.jacobian(fields)
    M = op.mass_matrix
    blocks = [(M - 0.1 * Ls).tocsr() for Ls in L]
    A = sp.block_diag(blocks).tocsr()
    rng = np.random.default_rng(0)
    b = rng.normal(size=A.shape[0])
    return A, b


def test_band_factor_and_solve(benchmark, landau_system):
    A, b = landau_system

    def run():
        return BandSolver(A).solve(b)

    x = benchmark.pedantic(run, rounds=2, iterations=1)
    assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-9


def test_batched_blockdiag_factor_and_solve(benchmark, landau_system):
    """Exploiting I_S (x) A_1: factor each species block separately."""
    A, b = landau_system

    def run():
        return BlockDiagonalBandSolver(A).solve(b)

    x = benchmark.pedantic(run, rounds=2, iterations=1)
    assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-9
    solver = BlockDiagonalBandSolver(A)
    print(f"\nspecies blocks discovered: {solver.nblocks}")
    assert solver.nblocks >= 2


def test_scipy_superlu(benchmark, landau_system):
    A, b = landau_system

    def run():
        return spla.splu(A.tocsc()).solve(b)

    x = benchmark.pedantic(run, rounds=2, iterations=1)
    assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-10


def test_rcm_blockdiagonalizes_multispecies(landau_system):
    """'RCM ... naturally produced a block diagonal matrix in multi-species
    problems': after RCM the two species blocks do not interleave."""
    A, _ = landau_system
    p = rcm_permutation(A)
    Ap = A[p][:, p]
    n = A.shape[0] // 2
    # the permuted matrix has no entries coupling the two halves
    coupling = Ap[:n, n:]
    assert coupling.nnz == 0
    print(f"\nRCM bandwidth: {bandwidth(Ap)} (raw: {bandwidth(A)})")
