"""Figure 5: thermal quench profiles — n_e, J, E, T_e vs time.

Paper behaviour: the prescribed sinusoidal density ramp is conserved
exactly (5x injected mass); the electron temperature collapses during the
cold pulse; E (= eta_Spitzer J) rises as the plasma cools; the current
decays during the quench and then slowly *rises* from field acceleration.

This bench runs a reduced configuration (shorter pulse, looser Newton
tolerance) of the full experiment recorded in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.quench import ThermalQuenchModel
from repro.quench.source import ColdPlasmaSource
from repro.report import ascii_plot


def _run():
    model = ThermalQuenchModel(dt=0.5, rtol=1e-5)
    model.source.duration = 6.0
    model._source_shapes = model.source.shape_vectors(model.fs)
    hist = model.run(ramp_steps=10, quench_steps=12, post_steps=4)
    return model, hist


def test_fig5_quench_profiles(benchmark):
    model, hist = benchmark.pedantic(_run, rounds=1, iterations=1)
    a = hist.as_arrays()
    print()
    norm = {
        "n_e/6": a["n_e"] / 6.0,
        "T_e": a["T_e"],
        "J/J0": a["J"] / max(abs(a["J"]).max(), 1e-30),
        "E/Emax": a["E"] / max(abs(a["E"]).max(), 1e-30),
    }
    print(
        ascii_plot(
            a["t"],
            norm,
            width=64,
            height=14,
            title="Fig. 5 — thermal quench profiles (normalized)",
        )
    )
    i_q = hist.phase.index("quench")

    # density: prescribed sinusoidal ramp, total 5x injected
    assert a["n_e"][0] == pytest.approx(1.0, abs=0.02)
    assert a["n_e"][-1] == pytest.approx(6.0, abs=0.1)
    mid = a["n_e"][(i_q + len(a["t"])) // 2]
    assert 1.0 < mid < 6.0  # smooth ramp, not a jump

    # temperature collapse
    assert a["T_e"][i_q - 1] > 0.9
    assert a["T_e"][-1] < 0.45

    # E rises in magnitude as the plasma cools (eta ~ T^-3/2)
    assert abs(a["E"][-1]) > abs(a["E"][i_q])

    # J decays during the quench but never reverses sign
    J_ramp = a["J"][i_q - 1]
    assert a["J"][-1] < J_ramp
    assert np.all(a["J"][1:] > -0.15 * abs(J_ramp))

    # the initial field is 0.5 E_c
    assert a["E"][0] == pytest.approx(0.5 * model.E_c)


def test_density_conservation_against_source(benchmark):
    """'The electron density is conserved exactly and thus ... the profile
    n_e is the prescribed sinusoidal source function' — measured density
    equals initial + analytic injected integral at every sample."""
    model, hist = _run()
    a = hist.as_arrays()
    src = model.source
    for t, n in zip(a["t"], a["n_e"]):
        expect = 1.0 + src.injected_by(t)
        assert n == pytest.approx(expect, abs=0.03)
