"""Table II: CUDA / V100 throughput (Newton iterations/sec) on one Summit
node vs cores-per-GPU and processes-per-core.

Paper values for comparison:

    procs/core \\ cores/GPU     1      2      3      5      7
                        1    849  1,683  2,487  4,044  5,504
                        2  1,102  2,142  3,177  5,094  6,838
                        3  1,096  2,189  3,252  5,239  7,005

Our model reproduces the *shape* (near-linear core scaling, ~20% gain from
the second hardware thread, small gain from the third); absolute numbers
differ because our AMR mesh yields a larger band factorization (see
EXPERIMENTS.md).
"""

from repro.perf import summit_cuda_table


def test_table2_cuda_throughput(benchmark, workload):
    table = benchmark.pedantic(
        summit_cuda_table, args=(workload,), rounds=1, iterations=1
    )
    print()
    print("Table II — " + table.format())
    v = table.values
    for row in v:
        assert all(row[i] < row[i + 1] for i in range(len(row) - 1))
    assert all(v[1][c] > v[0][c] for c in range(5))
    assert 5.5 <= v[0][4] / v[0][0] <= 7.0
