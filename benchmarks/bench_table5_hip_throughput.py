"""Table V: Kokkos-HIP / MI100 throughput on one Spock node.

Paper values:

    procs/core \\ cores/GPU     1      2      4      8
                        1     88    169    281    353
                        2    154    272    341    241

The signature behaviour: good scaling to 8 cores/GPU at one process per
core, then throughput *rolls over* with 16 processes per GPU ("the AMD
equivalent to MPS is not functioning well").
"""

from repro.perf import spock_hip_table


def test_table5_hip_throughput(benchmark, workload):
    table = benchmark.pedantic(
        spock_hip_table, args=(workload,), rounds=1, iterations=1
    )
    print()
    print("Table V — " + table.format())
    v = table.values
    # scaling at 1 proc/core
    assert v[0][3] > v[0][2] > v[0][1] > v[0][0]
    # the rollover at 16 ranks/GPU
    assert v[1][3] < v[0][3]
    print(
        f"rollover: 8 ranks/GPU -> {v[0][3]:,.0f} its/s; "
        f"16 ranks/GPU -> {v[1][3]:,.0f} its/s (paper: 353 -> 241)"
    )
