"""Table III: Kokkos-CUDA / V100 throughput on one Summit node.

Paper values:

    procs/core \\ cores/GPU     1      2      3      5      7
                        1    792  1,542  2,265  3,511  4,849
                        2    996  1,974  2,904  4,641  6,013
                        3  1,010  2,044  2,982  4,805  6,193

Kokkos-CUDA lands at ~88% of hand-written CUDA end-to-end (kernel ~10%
slower); the portable-language penalty is "not unexpected nor unreasonable".
"""

from repro.perf import summit_cuda_table, summit_kokkos_table


def test_table3_kokkos_cuda_throughput(benchmark, workload):
    table = benchmark.pedantic(
        summit_kokkos_table, args=(workload,), rounds=1, iterations=1
    )
    print()
    print("Table III — " + table.format())
    cuda = summit_cuda_table(workload)
    assert table.best <= cuda.best
    assert table.best >= 0.80 * cuda.best
    ratio = table.best / cuda.best
    print(f"Kokkos-CUDA / CUDA best-throughput ratio: {ratio:.2f} (paper: 0.88)")
