"""Setup shim: allows `python setup.py develop` on environments without the
`wheel` package (editable installs via pip need bdist_wheel)."""
from setuptools import setup

setup()
