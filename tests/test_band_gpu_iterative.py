"""The GPU-model band solver (sec. III-G, artifact repo) and the custom
iterative solver (sec. VI future work)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gpu import CudaMachine, V100
from repro.sparse import (
    BlockJacobiPreconditioner,
    GpuBandSolver,
    gmres,
    landau_iterative_solver_factory,
)
from tests.test_band import random_banded


@pytest.fixture(scope="module")
def landau_block_system(ed_operator, ed_maxwellians):
    op = ed_operator
    L = op.jacobian(ed_maxwellians)
    blocks = [(op.mass_matrix - 0.1 * Ls).tocsr() for Ls in L]
    A = sp.block_diag(blocks).tocsr()
    rng = np.random.default_rng(0)
    return A, rng.normal(size=A.shape[0])


class TestGpuBandSolver:
    def test_matches_direct(self, landau_block_system):
        A, b = landau_block_system
        solver = GpuBandSolver(A)
        x = solver(b)
        assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-9
        assert solver.nblocks == 2  # species blocks discovered

    def test_sync_chain_counted(self, landau_block_system):
        """One group sync per elimination step: the serial critical path."""
        A, b = landau_block_system
        m = CudaMachine(V100)
        solver = GpuBandSolver(A, machine=m)
        # n-1 factor steps per block
        expect = sum(bm.n - 1 for _, bm, _, _ in solver.blocks)
        assert solver.profile.steps == expect
        assert m.counters.syncthreads >= expect

    def test_gpu_no_faster_than_cpu_at_landau_sizes(self, landau_block_system):
        """The paper's finding: the custom GPU LU 'is no faster than the
        CPU solver'.  The sync chain dominates the predicted device time;
        it exceeds the pure-work time by a large factor."""
        A, b = landau_block_system
        solver = GpuBandSolver(A)
        prof = solver.profile
        t_pred = prof.predicted_time(V100)
        work_only = prof.counters.issue_slots / (
            V100.peak_issue_slots * V100.pipe_utilization
        )
        assert t_pred > 3.0 * work_only  # latency-bound, not work-bound
        # and the sync chain is the dominant term
        assert prof.steps * 1.5e-6 > 0.5 * t_pred

    def test_rhs_validation(self, landau_block_system):
        A, _ = landau_block_system
        with pytest.raises(ValueError):
            GpuBandSolver(A).solve(np.ones(3))

    def test_small_random_system(self):
        A = random_banded(40, 4, seed=3)
        rng = np.random.default_rng(4)
        b = rng.normal(size=40)
        x = GpuBandSolver(A)(b)
        assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-11


class TestGmres:
    def test_unpreconditioned_small(self):
        rng = np.random.default_rng(1)
        n = 40
        A = sp.csr_matrix(np.eye(n) * 4 + 0.4 * rng.normal(size=(n, n)))
        b = rng.normal(size=n)
        x, st = gmres(A, b, restart=50, rtol=1e-11)
        assert st.converged
        assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-10

    def test_restarted_converges(self):
        rng = np.random.default_rng(2)
        n = 60
        A = sp.csr_matrix(np.eye(n) * 5 + 0.3 * rng.normal(size=(n, n)))
        b = rng.normal(size=n)
        x, st = gmres(A, b, restart=8, rtol=1e-10, max_restarts=60)
        assert st.converged
        assert st.restarts > 1

    def test_true_residual_convergence_on_landau(self, landau_block_system):
        """The convergence claim holds in the *true* residual norm on the
        ill-conditioned Landau system (right preconditioning)."""
        A, b = landau_block_system
        M = BlockJacobiPreconditioner.from_bandwidth_slices(A, 64)
        x, st = gmres(A, b, M=M, restart=40, rtol=1e-9, max_restarts=60)
        assert st.converged
        assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-8

    def test_preconditioner_essential(self, landau_block_system):
        """Without preconditioning GMRES stalls on the Landau system."""
        A, b = landau_block_system
        _, st = gmres(A, b, restart=40, rtol=1e-9, max_restarts=5)
        assert not st.converged
        assert st.residual_history[-1] > 1e-3

    def test_zero_rhs(self):
        A = sp.eye(5).tocsr()
        x, st = gmres(A, np.zeros(5))
        assert st.converged
        assert np.allclose(x, 0.0)

    def test_partition_validation(self, landau_block_system):
        A, _ = landau_block_system
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(A, [np.arange(3)])

    def test_residual_history_monotone_overall(self, landau_block_system):
        A, b = landau_block_system
        M = BlockJacobiPreconditioner.from_bandwidth_slices(A, 64)
        _, st = gmres(A, b, M=M, restart=40, rtol=1e-9, max_restarts=60)
        # within-cycle estimates are monotone non-increasing
        assert st.residual_history[0] >= st.residual_history[-1]


class TestSolverPlug:
    def test_implicit_step_with_gmres(self, ed_operator, ed_maxwellians):
        from repro.core import ImplicitLandauSolver

        it = ImplicitLandauSolver(
            ed_operator,
            linear_solver=landau_iterative_solver_factory(rtol=1e-11),
            rtol=1e-7,
        )
        direct = ImplicitLandauSolver(ed_operator, rtol=1e-7)
        f1 = it.step(list(ed_maxwellians), 0.25)
        f2 = direct.step(list(ed_maxwellians), 0.25)
        for a, b in zip(f1, f2):
            assert np.allclose(a, b, atol=1e-6 * max(np.abs(b).max(), 1))
