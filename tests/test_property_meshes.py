"""Property-based tests over randomized mesh/refinement configurations:
the FEM + AMR + constraint machinery must hold its invariants for any
balanced forest, not just the curated fixtures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.forest_mesh import forest_to_mesh
from repro.amr.quadtree import QuadForest, Quadrant
from repro.fem import DofMap, FunctionSpace, assemble_mass
from repro.fem.reference import LagrangeQuad


def random_balanced_forest(seed: int, nref: int) -> QuadForest:
    """Refine random leaves nref times, then balance."""
    rng = np.random.default_rng(seed)
    f = QuadForest(0.0, 2.0, -2.0, 2.0, trees_x=1, trees_y=2, base_level=0)
    for _ in range(nref):
        leaves = sorted(f.leaves, key=lambda q: (q.level, q.i, q.j))
        q = leaves[rng.integers(len(leaves))]
        if q.level < 5:
            f.refine_once([q])
    f.balance()
    return f


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), nref=st.integers(1, 6))
def test_forest_partitions_domain(seed, nref):
    f = random_balanced_forest(seed, nref)
    assert f.is_balanced()
    mesh = forest_to_mesh(f)
    area = float(np.prod(mesh.size, axis=1).sum())
    assert area == pytest.approx(2.0 * 4.0)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), nref=st.integers(1, 5), order=st.sampled_from([1, 2, 3]))
def test_constraints_resolve_and_preserve_constants(seed, nref, order):
    """On any balanced random mesh: the prolongation rows sum to 1 (the
    constant function is in the constrained space), and the mass matrix
    integrates the cylindrical measure exactly."""
    mesh = forest_to_mesh(random_balanced_forest(seed, nref))
    dm = DofMap(mesh, LagrangeQuad(order))
    P = dm.P.toarray()
    assert np.allclose(P.sum(axis=1), 1.0, atol=1e-12)
    fs = FunctionSpace(mesh, order=order)
    M = assemble_mass(fs)
    ones = np.ones(fs.ndofs)
    r0, r1, z0, z1 = mesh.bounds
    exact = 0.5 * (r1**2 - r0**2) * (z1 - z0)
    assert ones @ M @ ones == pytest.approx(exact, rel=1e-12)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), nref=st.integers(1, 5))
def test_interpolation_continuity_on_random_mesh(seed, nref):
    """Expanded nodal fields are continuous at randomly chosen element
    corners shared across refinement levels (the hanging-node guarantee)."""
    mesh = forest_to_mesh(random_balanced_forest(seed, nref))
    fs = FunctionSpace(mesh, order=2)
    rng = np.random.default_rng(seed + 1)
    x = rng.normal(size=fs.ndofs)
    x_full = fs.dofmap.expand(x)
    # every full node's expanded value must equal the trace of some element
    # that merely *touches* the node (continuity across the interface)
    coords = fs.dofmap.node_coords
    for n in rng.choice(fs.dofmap.n_full, size=min(12, fs.dofmap.n_full), replace=False):
        p = coords[n]
        vals = []
        for e in range(mesh.nelem):
            lo = mesh.lower[e]
            hi = lo + mesh.size[e]
            if np.all(p >= lo - 1e-12) and np.all(p <= hi + 1e-12):
                ref = 2.0 * (p - lo) / mesh.size[e] - 1.0
                B, _ = fs.element.tabulate(ref[None])
                vals.append(float(B[0] @ x_full[fs.dofmap.cell_nodes[e]]))
        assert vals, "node not inside any element?"
        assert max(vals) - min(vals) < 1e-9


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    i=st.integers(0, 7),
    j=st.integers(0, 7),
)
def test_balance_after_point_refinement(seed, i, j):
    """Refining any single level-2 quadrant twice more and balancing
    leaves no >1-level edge jumps."""
    f = QuadForest(0.0, 1.0, 0.0, 1.0, base_level=2)
    q = Quadrant(2, i % 4, j % 4)
    f.refine_once([q])
    child = q.children()[seed % 4]
    f.refine_once([child])
    f.balance()
    assert f.is_balanced()
