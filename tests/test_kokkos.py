"""Kokkos API layer and the Kokkos version of the Landau kernel."""

import numpy as np
import pytest

from repro.core import LandauOperator, SpeciesSet, electron
from repro.core.kernel_kokkos import KokkosLandauJacobian
from repro.core.maxwellian import species_maxwellian
from repro.kokkos import (
    KOKKOS_CUDA,
    KOKKOS_HIP,
    KOKKOS_OPENMP,
    TeamPolicy,
    parallel_for,
    parallel_reduce,
)
from repro.kokkos.backends import fresh_backend


class TestApi:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TeamPolicy(0, 4)

    def test_parallel_for_visits_league(self):
        bk = fresh_backend(KOKKOS_CUDA)
        seen = []
        parallel_for(TeamPolicy(6, 4, 8), lambda m: seen.append(m.league_rank), bk)
        assert seen == list(range(6))
        assert bk.counters.blocks_executed == 6

    def test_parallel_reduce(self):
        bk = fresh_backend(KOKKOS_CUDA)
        total = parallel_reduce(
            TeamPolicy(10, 2, 2), lambda m: float(m.league_rank), bk
        )
        assert total == pytest.approx(45.0)

    def test_scratch_and_barrier(self):
        bk = fresh_backend(KOKKOS_CUDA)

        def functor(m):
            pad = m.team_scratch(3, 5)
            assert pad.shape == (3, 5)
            m.team_barrier()

        parallel_for(TeamPolicy(2, 4, 4), functor, bk)
        assert bk.counters.syncthreads == 2

    def test_vector_reduce_counts_shuffles(self):
        bk = fresh_backend(KOKKOS_CUDA)

        def functor(m):
            out = m.vector_reduce(np.ones((3, 8)), axis=1)
            assert np.allclose(out, 8.0)

        parallel_for(TeamPolicy(1, 4, 8), functor, bk)
        assert bk.counters.warp_shuffles == 3 * 3  # log2(8)=3 rounds x 3 items


class TestBackends:
    def test_backend_devices(self):
        assert KOKKOS_CUDA.device.name == "V100"
        assert KOKKOS_HIP.device.name == "MI100"
        assert KOKKOS_OPENMP.device.name == "A64FX"
        assert not KOKKOS_OPENMP.maps_to_blocks

    def test_portability_overhead(self):
        """Kokkos-CUDA kernel ~10% slower than CUDA (Table VII ratio)."""
        assert 1.05 <= KOKKOS_CUDA.kernel_overhead <= 1.2

    def test_fresh_backend_isolated(self):
        bk = fresh_backend(KOKKOS_CUDA)
        parallel_for(TeamPolicy(1, 1, 1), lambda m: m.tb.count(fma=1), bk)
        assert bk.counters.fma == 1
        bk2 = fresh_backend(KOKKOS_CUDA)
        assert bk2.counters.fma == 0


class TestKokkosKernel:
    @pytest.fixture(scope="class")
    def setup(self, fs_q3, electron_species):
        op = LandauOperator(fs_q3, electron_species)
        f = [fs_q3.interpolate(species_maxwellian(electron_species[0]))]
        return fs_q3, electron_species, op, f

    def test_matches_reference(self, setup):
        fs, spc, op, fields = setup
        ref = op.jacobian(fields)[0].toarray()
        bk = fresh_backend(KOKKOS_CUDA)
        J = KokkosLandauJacobian(fs, spc, backend=bk).build(fields)
        assert np.allclose(J[0], ref, atol=1e-12 * max(np.abs(ref).max(), 1))

    def test_matches_cuda_kernel(self, setup):
        from repro.core.kernel_cuda import CudaLandauJacobian

        fs, spc, op, fields = setup
        J_cuda = CudaLandauJacobian(fs, spc).build(fields)
        bk = fresh_backend(KOKKOS_CUDA)
        J_kk = KokkosLandauJacobian(fs, spc, backend=bk).build(fields)
        assert np.allclose(J_cuda, J_kk, atol=1e-12)

    def test_openmp_backend_vector_length(self, setup):
        """On the OpenMP space vector length maps to SIMD lanes (8)."""
        fs, spc, op, fields = setup
        bk = fresh_backend(KOKKOS_OPENMP)
        kk = KokkosLandauJacobian(fs, spc, backend=bk)
        assert kk.policy.vector_length == 8
        J = kk.build(fields)
        ref = op.jacobian(fields)[0].toarray()
        assert np.allclose(J[0], ref, atol=1e-12 * max(np.abs(ref).max(), 1))

    def test_same_flop_counts_as_cuda(self, setup):
        """Kokkos hides the reduction machinery but does the same math: the
        FP64 instruction counts match the CUDA kernel's (the performance
        difference is the calibrated overhead, not extra flops)."""
        from repro.core.kernel_cuda import CudaLandauJacobian
        from repro.gpu import CudaMachine

        fs, spc, op, fields = setup
        m = CudaMachine()
        CudaLandauJacobian(fs, spc, machine=m, block_x=16).build(fields)
        bk = fresh_backend(KOKKOS_CUDA)
        KokkosLandauJacobian(fs, spc, backend=bk, vector_length=16).build(fields)
        assert bk.counters.fma == m.counters.fma
        assert bk.counters.mul == m.counters.mul
        assert bk.counters.special == m.counters.special
