"""Landau tensors: 3D definition, elliptic-integral axisymmetric reduction.

The key property test checks the closed-form U^D/U^K against direct
numerical quadrature of the 3D tensor over the source azimuth.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.integrate import quad

from repro.core.landau_tensor import (
    azimuthal_integrals,
    landau_tensor_3d,
    landau_tensors_cyl,
)

coords = st.floats(min_value=0.05, max_value=3.0)
zcoords = st.floats(min_value=-3.0, max_value=3.0)


class TestTensor3D:
    def test_projects_out_u(self):
        """U . u = 0: the tensor projects onto the plane normal to u."""
        rng = np.random.default_rng(0)
        v = rng.normal(size=3)
        vp = rng.normal(size=3)
        U = landau_tensor_3d(v, vp)
        assert np.allclose(U @ (v - vp), 0.0, atol=1e-12)

    def test_symmetric_and_psd(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            v, vp = rng.normal(size=3), rng.normal(size=3)
            U = landau_tensor_3d(v, vp)
            assert np.allclose(U, U.T)
            assert np.linalg.eigvalsh(U).min() >= -1e-14

    def test_trace(self):
        """tr U = 2/|u|."""
        v = np.array([1.0, 0.0, 0.5])
        vp = np.array([0.0, 1.0, -0.5])
        U = landau_tensor_3d(v, vp)
        assert np.trace(U) == pytest.approx(2.0 / np.linalg.norm(v - vp))

    def test_exchange_symmetry(self):
        rng = np.random.default_rng(2)
        v, vp = rng.normal(size=3), rng.normal(size=3)
        assert np.allclose(landau_tensor_3d(v, vp), landau_tensor_3d(vp, v))

    def test_singular_raises(self):
        v = np.array([1.0, 2.0, 3.0])
        with pytest.raises(ZeroDivisionError):
            landau_tensor_3d(v, v)


class TestAzimuthalIntegrals:
    @settings(max_examples=25, deadline=None)
    @given(A=st.floats(min_value=0.1, max_value=10.0), frac=st.floats(min_value=0.0, max_value=0.95))
    def test_against_quadrature(self, A, frac):
        B = frac * A
        I10, I11, I30, I31, I32 = (
            float(v) for v in azimuthal_integrals(np.array(A), np.array(B))
        )

        def num(n, p):
            return quad(
                lambda phi: np.cos(phi) ** n / (A - B * np.cos(phi)) ** (p / 2.0),
                0.0,
                2.0 * np.pi,
                limit=200,
            )[0]

        # rel 1e-7 (not tighter): at small B/A the adaptive quadrature
        # reference itself only agrees with the elliptic-integral forms to
        # a few 1e-8 relative (hypothesis finds frac ~ 1e-3 cases)
        assert I10 == pytest.approx(num(0, 1), rel=1e-9, abs=1e-12)
        assert I11 == pytest.approx(num(1, 1), rel=1e-7, abs=1e-9)
        assert I30 == pytest.approx(num(0, 3), rel=1e-9, abs=1e-12)
        assert I31 == pytest.approx(num(1, 3), rel=1e-7, abs=1e-9)
        assert I32 == pytest.approx(num(2, 3), rel=1e-7, abs=1e-9)

    def test_B_zero_limits(self):
        """On-axis: cos-weighted integrals vanish, others are elementary."""
        A = np.array(2.0)
        I10, I11, I30, I31, I32 = azimuthal_integrals(A, np.array(0.0))
        assert I10 == pytest.approx(2 * np.pi / np.sqrt(2.0))
        assert I11 == pytest.approx(0.0, abs=1e-14)
        assert I30 == pytest.approx(2 * np.pi / 2.0**1.5)
        assert I31 == pytest.approx(0.0, abs=1e-14)
        assert I32 == pytest.approx(np.pi / 2.0**1.5)

    def test_series_branch_continuity(self):
        """The small-m series and the direct formula join smoothly at the
        2e-3 switch: a 0.1% step in m moves every integral by < 0.5%."""
        A = np.ones(2) * 3.0
        m = np.array([1.999e-3, 2.001e-3])  # straddles the branch switch
        B = m * 3.0 / (2 - m)
        out = azimuthal_integrals(A, B)
        for comp in out:
            base = max(abs(comp[0]), 1e-30)
            assert abs(comp[0] - comp[1]) / base < 5e-3


class TestCylindricalTensors:
    def _numeric(self, r, z, rp, zp):
        basis0 = [np.array([1.0, 0.0, 0.0]), np.array([0.0, 0.0, 1.0])]

        def u(phi):
            return np.array([r - rp * np.cos(phi), -rp * np.sin(phi), z - zp])

        def bj(j, phi):
            if j == 0:
                return np.array([np.cos(phi), np.sin(phi), 0.0])
            return np.array([0.0, 0.0, 1.0])

        UD = np.zeros((2, 2))
        UK = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                UD[i, j] = quad(
                    lambda phi: (basis0[i] @ basis0[j]) / np.linalg.norm(u(phi))
                    - (u(phi) @ basis0[i]) * (u(phi) @ basis0[j]) / np.linalg.norm(u(phi)) ** 3,
                    0,
                    2 * np.pi,
                    limit=200,
                )[0]
                UK[i, j] = quad(
                    lambda phi: (basis0[i] @ bj(j, phi)) / np.linalg.norm(u(phi))
                    - (u(phi) @ basis0[i]) * (u(phi) @ bj(j, phi)) / np.linalg.norm(u(phi)) ** 3,
                    0,
                    2 * np.pi,
                    limit=200,
                )[0]
        return UD, UK

    @settings(max_examples=10, deadline=None)
    @given(r=coords, z=zcoords, rp=coords, zp=zcoords)
    def test_against_3d_quadrature(self, r, z, rp, zp):
        if (r - rp) ** 2 + (z - zp) ** 2 < 1e-4:
            return  # skip near-coincident pairs (masked in production)
        UDn, UKn = self._numeric(r, z, rp, zp)
        UDa, UKa = landau_tensors_cyl(r, z, rp, zp)
        scale = max(np.abs(UDn).max(), 1.0)
        assert np.allclose(UDa, UDn, atol=1e-7 * scale)
        assert np.allclose(UKa, UKn, atol=1e-7 * scale)

    def test_on_axis_field_point(self):
        UDn, UKn = self._numeric(0.0, 0.5, 1.0, -0.3)
        UDa, UKa = landau_tensors_cyl(0.0, 0.5, 1.0, -0.3)
        assert np.allclose(UDa, UDn, atol=1e-10)
        assert np.allclose(UKa, UKn, atol=1e-10)

    def test_on_axis_source_point(self):
        UDn, UKn = self._numeric(1.0, 0.5, 0.0, -0.3)
        UDa, UKa = landau_tensors_cyl(1.0, 0.5, 0.0, -0.3)
        assert np.allclose(UDa, UDn, atol=1e-10)
        assert np.allclose(UKa, UKn, atol=1e-10)

    def test_UD_symmetric(self):
        UD, _ = landau_tensors_cyl(1.2, 0.3, 0.7, -0.8)
        assert UD[0, 1] == UD[1, 0]

    def test_coincident_masked(self):
        UD, UK = landau_tensors_cyl(1.0, 0.5, 1.0, 0.5)
        assert np.all(UD == 0.0)
        assert np.all(UK == 0.0)

    def test_coincident_raises_when_unmasked(self):
        with pytest.raises(ZeroDivisionError):
            landau_tensors_cyl(1.0, 0.5, 1.0, 0.5, mask_singular=False)

    def test_broadcasting(self):
        r = np.linspace(0.1, 2.0, 4)[:, None]
        rp = np.linspace(0.2, 1.5, 3)[None, :]
        UD, UK = landau_tensors_cyl(r, 0.0 * r, rp, 0.0 * rp + 1.0)
        assert UD.shape == (4, 3, 2, 2)
        assert UK.shape == (4, 3, 2, 2)

    def test_exchange_symmetry_of_D(self):
        """U^D(x, x') = U^D(x', x) with indices at their own frames: the
        (rr, zz) components are exchange-symmetric, (rz) flips with dz."""
        UD1, _ = landau_tensors_cyl(1.2, 0.4, 0.6, -0.2)
        UD2, _ = landau_tensors_cyl(0.6, -0.2, 1.2, 0.4)
        assert UD1[1, 1] == pytest.approx(UD2[1, 1], rel=1e-12)
