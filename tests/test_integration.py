"""End-to-end integration tests: small but complete physics scenarios
exercising the full public API path (mesh -> space -> operator -> solver ->
moments), plus electron-ion temperature equilibration direction and the
GPU-kernel-in-the-loop solve.
"""

import numpy as np
import pytest

from repro.amr import landau_mesh
from repro.core import (
    ImplicitLandauSolver,
    LandauOperator,
    Moments,
    SpeciesSet,
    electron,
)
from repro.core.maxwellian import shifted_maxwellian_rz, species_maxwellian
from repro.core.species import Species
from repro.fem import FunctionSpace


class TestTwoSpeciesRelaxation:
    @pytest.fixture(scope="class")
    def system(self):
        """Electrons + a light 'ion' (mass 25) so equilibration is fast
        enough to observe in a few collision times."""
        ion = Species("i", charge=1.0, mass=25.0, temperature=0.25)
        spc = SpeciesSet([electron(), ion])
        mesh = landau_mesh([s.thermal_velocity for s in spc])
        fs = FunctionSpace(mesh, order=3)
        op = LandauOperator(fs, spc)
        return fs, spc, op

    def test_temperature_equilibration_direction(self, system):
        """Hot electrons + cold ions: T_e falls, T_i rises, total energy
        conserved."""
        fs, spc, op = system
        mom = Moments(fs, spc)
        fields = [fs.interpolate(species_maxwellian(s)) for s in spc]
        Te0 = mom.species_moments(0, fields[0]).temperature
        Ti0 = mom.species_moments(1, fields[1]).temperature
        E0 = mom.total_energy(fields)
        solver = ImplicitLandauSolver(op, rtol=1e-7)
        fields = solver.integrate(fields, dt=1.0, nsteps=6)
        Te1 = mom.species_moments(0, fields[0]).temperature
        Ti1 = mom.species_moments(1, fields[1]).temperature
        assert Te1 < Te0
        assert Ti1 > Ti0
        assert mom.total_energy(fields) == pytest.approx(E0, rel=1e-5)

    def test_drift_friction_direction(self, system):
        """A drifting electron population slows against stationary ions;
        total momentum is conserved (ions pick it up)."""
        fs, spc, op = system
        mom = Moments(fs, spc)
        vth_e = spc[0].thermal_velocity
        f_e = fs.interpolate(
            lambda r, z: shifted_maxwellian_rz(r, z, 1.0, vth_e, drift_z=0.1)
        )
        f_i = fs.interpolate(species_maxwellian(spc[1]))
        p0 = mom.total_momentum_z([f_e, f_i])
        ue0 = mom.species_moments(0, f_e).drift_z
        solver = ImplicitLandauSolver(op, rtol=1e-7)
        fields = solver.integrate([f_e, f_i], dt=0.5, nsteps=5)
        ue1 = mom.species_moments(0, fields[0]).drift_z
        ui1 = mom.species_moments(1, fields[1]).drift_z
        assert 0 < ue1 < ue0  # electron drift decays
        assert ui1 > 0  # ions dragged along
        assert mom.total_momentum_z(fields) == pytest.approx(p0, abs=2e-4)


class TestGpuKernelInTheLoop:
    def test_solver_with_gpu_built_jacobian(self, fs_q3, electron_species):
        """A time step whose Jacobian comes from the simulated CUDA kernel
        gives the same state as the reference path."""
        import scipy.sparse as sp

        from repro.core.kernel_cuda import CudaLandauJacobian

        op = LandauOperator(fs_q3, electron_species)
        ck = CudaLandauJacobian(fs_q3, electron_species)
        f0 = fs_q3.interpolate(
            lambda r, z: shifted_maxwellian_rz(r, z, 1.0, 0.8, drift_z=0.1)
        )
        dt = 0.25
        M = op.mass_matrix

        # reference quasi-Newton step
        ref = ImplicitLandauSolver(op, rtol=1e-10)
        f_ref = ref.step([f0], dt)[0]

        # manual quasi-Newton sweep with the CUDA-model Jacobian
        fk = f0.copy()
        for _ in range(60):
            L = sp.csr_matrix(ck.build([fk])[0])
            from scipy.sparse.linalg import spsolve

            fk1 = spsolve((M - dt * L).tocsc(), M @ f0)
            if np.linalg.norm(fk1 - fk) < 1e-10 * np.linalg.norm(f0):
                fk = fk1
                break
            fk = fk1
        assert np.allclose(fk, f_ref, atol=1e-8)


class TestIsotropization:
    def test_entropy_increases(self, electron_operator, fs_q3):
        """Discrete H-theorem behaviour: -int r f log f grows during
        relaxation of an anisotropic state."""

        def aniso(r, z):
            vr, vz = 0.65, 1.15
            return np.exp(-((r / vr) ** 2) - (z / vz) ** 2) / (
                np.pi**1.5 * vr * vr * vz
            )

        f = fs_q3.interpolate(aniso)
        solver = ImplicitLandauSolver(electron_operator, rtol=1e-8)

        def entropy(x):
            fq = np.maximum(fs_q3.eval(x), 1e-300)
            return -fs_q3.integrate(fq * np.log(fq))

        s0 = entropy(f)
        f1 = solver.integrate([f], dt=0.5, nsteps=4)
        s1 = entropy(f1[0])
        f2 = solver.integrate(f1, dt=0.5, nsteps=4)
        s2 = entropy(f2[0])
        assert s1 > s0 + 0.01  # strong growth during relaxation
        # near equilibrium the discrete entropy plateaus (up to quadrature
        # noise from tiny negative undershoots); it must not decrease
        # appreciably
        assert s2 > s1 - 1e-3
