"""The Landau operator: conservation laws, equilibrium, H-theorem behaviour.

These are the discretization's headline properties (Hirvijoki & Adams):
density conserved to round-off by construction; momentum and energy to
quadrature/projection accuracy for Q2+; Maxwellians are (approximate) fixed
points; anisotropic distributions relax.
"""

import numpy as np
import pytest

from repro.core import LandauOperator, Moments, SpeciesSet, electron
from repro.core.maxwellian import maxwellian_rz, species_maxwellian


class TestStructure:
    def test_pair_table_caching_flag(self, electron_operator):
        assert electron_operator.pair_tables_cached

    def test_uncached_path_matches(self, fs_q3, electron_species, electron_maxwellian):
        op1 = LandauOperator(fs_q3, electron_species, cache_pair_tables=True)
        op2 = LandauOperator(fs_q3, electron_species, cache_pair_tables=False)
        G1 = op1.fields([electron_maxwellian])
        G2 = op2.fields([electron_maxwellian])
        assert np.allclose(G1[0], G2[0], atol=1e-12)
        assert np.allclose(G1[1], G2[1], atol=1e-12)

    def test_species_count_checked(self, electron_operator):
        with pytest.raises(ValueError):
            electron_operator.beta_sums([])

    def test_jacobian_block_diagonal_structure(self, ed_operator, ed_maxwellians):
        """S species -> S independent blocks with a common pattern
        (the I_S (x) A_1 nonzero structure)."""
        blocks = ed_operator.jacobian(ed_maxwellians)
        assert len(blocks) == 2
        p0 = set(zip(*blocks[0].nonzero()))
        p1 = set(zip(*blocks[1].nonzero()))
        # patterns agree up to entries that cancel numerically
        assert len(p0 ^ p1) <= 0.05 * len(p0)

    def test_apply_matches_matrix(self, electron_operator, electron_maxwellian):
        op = electron_operator
        L = op.jacobian([electron_maxwellian])[0]
        C = op.apply([electron_maxwellian])[0]
        assert np.allclose(C, L @ electron_maxwellian)


class TestConservation:
    def _weak_moment(self, fs, weight, vec):
        """psi-weighted weak moment: int r * weight(r,z) * (C f) via duality."""
        return weight @ vec

    def test_density_conserved_to_roundoff(self, electron_operator, fs_q3, electron_maxwellian):
        """Test function 1: grad(1)=0 kills both terms exactly."""
        op = electron_operator
        C = op.apply([electron_maxwellian])[0]
        ones = np.ones(fs_q3.ndofs)
        scale = np.abs(op.mass_matrix @ electron_maxwellian).max()
        assert abs(ones @ C) < 1e-12 * max(scale, 1.0) * fs_q3.ndofs

    def test_density_conserved_anisotropic(self, electron_operator, fs_q3):
        def aniso(r, z):
            return np.exp(-(r / 0.7) ** 2 - (z / 1.2) ** 2)

        f = fs_q3.interpolate(aniso)
        C = electron_operator.apply([f])[0]
        ones = np.ones(fs_q3.ndofs)
        assert abs(ones @ C) < 1e-10

    def test_momentum_energy_conserved_single_species(
        self, electron_operator, fs_q3
    ):
        """z-momentum and energy weak moments of C(f) vanish to
        discretization accuracy for a shifted/heated state."""

        def state(r, z):
            return maxwellian_rz(r, z, 1.0, 0.9) + 0.3 * maxwellian_rz(
                r, z - 0.4, 0.5, 0.6
            )

        f = fs_q3.interpolate(state)
        C = electron_operator.apply([f])[0]
        psi_z = fs_q3.interpolate(lambda r, z: z)
        psi_e = fs_q3.interpolate(lambda r, z: r * r + z * z)
        # normalize by the operator magnitude
        scale = np.abs(C).sum()
        assert abs(psi_z @ C) < 1e-6 * scale
        assert abs(psi_e @ C) < 1e-5 * scale

    def test_cross_species_momentum_exchange_cancels(
        self, ed_operator, ed_fs, ed_species
    ):
        """Sum over species of the momentum moment (with mass weights)
        vanishes: what electrons lose, deuterium gains."""
        f_e = ed_fs.interpolate(
            lambda r, z: maxwellian_rz(r, z - 0.05, 1.0, ed_species[0].thermal_velocity)
        )
        f_d = ed_fs.interpolate(species_maxwellian(ed_species[1]))
        C = ed_operator.apply([f_e, f_d])
        psi_z = ed_fs.interpolate(lambda r, z: z)
        p_dot = sum(
            s.mass * (psi_z @ C[a]) for a, s in enumerate(ed_species)
        )
        individual = max(abs(s.mass * (psi_z @ C[a])) for a, s in enumerate(ed_species))
        assert individual > 0  # there IS momentum exchange
        assert abs(p_dot) < 1e-4 * individual


class TestEquilibrium:
    def test_maxwellian_near_fixed_point(self, electron_operator, electron_maxwellian):
        """C(f_M) ~ 0 relative to a genuinely non-equilibrium (anisotropic)
        state; any isotropic Maxwellian is itself near-stationary, so the
        comparison state must be anisotropic."""
        op = electron_operator

        def aniso(r, z):
            vr, vz = 0.6, 1.2
            return np.exp(-((r / vr) ** 2) - (z / vz) ** 2) / (
                np.pi**1.5 * vr * vr * vz
            )

        C_eq = op.apply([electron_maxwellian])[0]
        C_ne = op.apply([op.fs.interpolate(aniso)])[0]
        assert np.linalg.norm(C_eq) < 0.05 * np.linalg.norm(C_ne)

    def test_G_fields_isotropic_at_origin(self, electron_operator, electron_maxwellian):
        """For an isotropic f, G_K at the origin-adjacent IPs points along
        -v (friction toward the origin): z-component changes sign with z."""
        G_D, G_K = electron_operator.fields([electron_maxwellian])
        z = electron_operator.z
        corr = np.sum(G_K[:, 1] * z)
        assert corr < 0.0  # friction opposes velocity

    def test_D_positive_semidefinite_on_maxwellian(
        self, electron_operator, electron_maxwellian
    ):
        G_D, _ = electron_operator.fields([electron_maxwellian])
        tr = G_D[:, 0, 0] + G_D[:, 1, 1]
        det = G_D[:, 0, 0] * G_D[:, 1, 1] - G_D[:, 0, 1] ** 2
        assert np.all(tr > -1e-12)
        assert np.all(det > -1e-10 * np.maximum(tr, 1.0) ** 2)


class TestMultiSpecies:
    def test_charge_scaling_of_nu(self, fs_q2):
        """Doubling a species' charge quadruples its self-collision matrix."""
        s1 = SpeciesSet([electron()])
        from repro.core.species import Species

        s2 = SpeciesSet([Species("e2", charge=-2.0, mass=1.0)])
        op1 = LandauOperator(fs_q2, s1)
        op2 = LandauOperator(fs_q2, s2)
        f = fs_q2.interpolate(lambda r, z: np.exp(-(r**2) - z**2))
        L1 = op1.jacobian([f])[0]
        L2 = op2.jacobian([f])[0]
        # nu ~ z_a^2 z_b^2 -> factor 16
        assert abs(L2 - 16.0 * L1).max() < 1e-8 * abs(L1).max() * 16
