"""Shared-memory arena lifecycle and the process-pool backend.

Covers the ISSUE-6 tentpole contracts: segment ownership (create /
attach / unlink, no orphans in ``/dev/shm``), zero-copy operand shipping
with IPC accounting, worker-resident band factors, and the serial
fallback.  All multi-process tests pin ``workers=2`` explicitly — the
CI box may have a single CPU and the default would degenerate to the
serial path.
"""

import gc
import glob
import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backend import NumpyBackend, SharedArena, ShmBudgetExceeded
from repro.backend.process_pool import ProcessPoolBackend, _RemoteFactors
from repro.backend.shm import attach_array, attach_copy
from repro.sparse.band import CachedBandSolverFactory

TOL = 1e-12


def _own_segments() -> set[str]:
    """This process's arena segments currently visible in /dev/shm.

    Compared as before/after deltas, never against emptiness: backends
    cached in the registry by other test modules legitimately keep
    published segments alive for the life of the session.
    """
    return set(glob.glob(f"/dev/shm/rpro-{os.getpid()}-*"))


@pytest.fixture
def backend():
    before = _own_segments()
    be = ProcessPoolBackend(num_threads=2)
    yield be
    be.close()
    assert _own_segments() <= before, "backend close left orphaned segments"


class TestSharedArena:
    def test_alloc_and_handle_roundtrip(self):
        before = _own_segments()
        arena = SharedArena(tag="t")
        try:
            arr = arena.alloc((4, 6))
            arr[...] = np.arange(24.0).reshape(4, 6)
            h = arena.handle_of(arr)
            assert h is not None and h.offset == 0
            assert np.array_equal(attach_array(h), arr)
            assert np.array_equal(attach_copy(h), arr)
        finally:
            arena.close()
        assert _own_segments() <= before

    def test_handle_of_resolves_contiguous_views(self):
        arena = SharedArena(tag="t")
        try:
            arr = arena.alloc((5, 3, 3))
            arr[...] = np.arange(45.0).reshape(5, 3, 3)
            # a component plane of the packed pair tables is exactly this
            plane = arr[2]
            h = arena.handle_of(plane)
            assert h is not None and h.offset == 2 * 9 * 8
            assert np.array_equal(attach_copy(h), plane)
            # non-contiguous views do not resolve
            assert arena.handle_of(arr[:, :, 0]) is None
        finally:
            arena.close()

    def test_publish_is_idempotent_for_arena_backed(self):
        arena = SharedArena(tag="t")
        try:
            arr = arena.alloc((8,))
            arr[...] = 1.0
            h1 = arena.publish(arr)
            assert h1.name in {s.split("/")[-1] for s in _own_segments()}
            assert arena.created_segments == 1  # no second copy
            outside = np.full(8, 2.0)
            h2 = arena.publish(outside)
            assert h2.name != h1.name
            assert np.array_equal(attach_copy(h2), outside)
        finally:
            arena.close()

    def test_free_is_idempotent_and_close_is_double_safe(self):
        before = _own_segments()
        arena = SharedArena(tag="t")
        arr = arena.alloc((16,))
        h = arena.handle_of(arr)
        arena.free(h.name)
        arena.free(h.name)  # second free is a no-op
        assert arena.freed_segments == 1
        arena.close()
        arena.close()  # double close is safe
        assert _own_segments() <= before
        with pytest.raises(RuntimeError, match="closed"):
            arena.alloc((4,))

    def test_budget_exceeded_raises(self):
        arena = SharedArena(tag="t", budget=1024)
        try:
            with pytest.raises(ShmBudgetExceeded, match="REPRO_SHM_BUDGET"):
                arena.alloc((1024,))  # 8 KiB > 1 KiB budget
            small = arena.alloc((64,))  # within budget still works
            assert small.nbytes == 512
        finally:
            arena.close()

    def test_budget_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_BUDGET", "2048")
        arena = SharedArena(tag="t")
        try:
            assert arena.budget == 2048
        finally:
            arena.close()
        monkeypatch.setenv("REPRO_SHM_BUDGET", "lots")
        with pytest.raises(ValueError, match="REPRO_SHM_BUDGET"):
            SharedArena(tag="t")

    def test_dead_owner_segments_reclaimed(self):
        """A SIGKILLed owner never runs its atexit unlink; the next arena
        construction sweeps its leftovers out of /dev/shm."""
        import multiprocessing as mp

        child = mp.get_context("fork").Process(target=lambda: None)
        child.start()
        child.join()
        dead_pid = child.pid
        leftover = f"/dev/shm/rpro-{dead_pid}-g0-0"
        with open(leftover, "wb") as fh:
            fh.write(b"\0" * 8)
        try:
            arena = SharedArena(tag="t")
            arena.close()
            assert not os.path.exists(leftover)
        finally:
            with pytest.raises(FileNotFoundError):
                os.unlink(leftover)

    def test_generation_tags_keep_names_unique(self):
        a1 = SharedArena(tag="t")
        a2 = SharedArena(tag="t")
        try:
            n1 = a1.handle_of(a1.alloc((2,))).name
            n2 = a2.handle_of(a2.alloc((2,))).name
            assert n1 != n2
        finally:
            a1.close()
            a2.close()


class TestProcessBackendPrimitives:
    def test_matmul_contract_scatter_match_numpy(self, backend):
        ref = NumpyBackend()
        rng = np.random.default_rng(7)
        A = rng.normal(size=(33, 21))
        Bm = rng.normal(size=(21, 29))
        assert np.abs(backend.matmul(A, Bm) - ref.matmul(A, Bm)).max() <= TOL
        X = rng.normal(size=(6, 9, 4))
        Y = rng.normal(size=(9, 4))
        assert (
            np.abs(
                backend.contract("bij,ij->bi", X, Y)
                - ref.contract("bij,ij->bi", X, Y)
            ).max()
            <= TOL
        )
        T = sp.random(31, 17, density=0.3, random_state=3, format="csr")
        flat = rng.normal(size=(8, 17))
        assert (
            np.abs(backend.scatter_apply(T, flat) - ref.scatter_apply(T, flat)).max()
            <= TOL
        )

    def test_registered_operand_ships_by_handle(self, backend):
        rng = np.random.default_rng(11)
        big = rng.normal(size=(6, 9, 4))
        backend.register_shared(big)
        saved0 = backend.ipc_bytes_saved
        Y = rng.normal(size=(9, 4))
        out = backend.contract("bij,ij->bi", big, Y)
        assert backend.ipc_bytes_saved > saved0, "published operand was re-pickled"
        assert np.abs(out - NumpyBackend().contract("bij,ij->bi", big, Y)).max() <= TOL
        # second registration is a no-op (same segment, one copy)
        created = backend._arena.created_segments
        backend.register_shared(big)
        assert backend._arena.created_segments == created

    def test_alloc_shared_is_worker_visible(self, backend):
        arr = backend.alloc_shared((5, 4, 4))
        rng = np.random.default_rng(13)
        arr[...] = rng.normal(size=arr.shape)
        saved0 = backend.ipc_bytes_saved
        # component planes (views) must resolve through the arena
        out = backend.contract("ij,jk->ik", arr[1], np.eye(4))
        assert np.abs(out - arr[1]).max() <= TOL
        assert backend.ipc_bytes_saved > saved0

    def test_alloc_shared_segment_freed_on_gc(self, backend):
        arr = backend.alloc_shared((256,))
        name = backend._arena.handle_of(arr).name
        assert any(name in s for s in _own_segments())
        del arr
        gc.collect()
        assert not any(name in s for s in _own_segments())

    def test_band_factors_stay_worker_resident(self, backend):
        n = 40
        rng = np.random.default_rng(17)
        main = 4.0 + rng.random(n)
        off = rng.random(n - 1)
        template = sp.diags(
            [off, main, off], offsets=(-1, 0, 1), format="csr"
        )
        X = 6
        data = np.stack([template.data * (1.0 + 0.05 * x) for x in range(X)])
        rhs = rng.normal(size=(X, n))

        ref = CachedBandSolverFactory().factor_batch(
            template, data, backend=NumpyBackend()
        )
        solver = CachedBandSolverFactory().factor_batch(
            template, data, backend=backend
        )
        assert isinstance(solver._factors, _RemoteFactors)
        out_ref = ref.solve_many(rhs)
        out = solver.solve_many(rhs)
        scale = np.abs(out_ref).max()
        assert np.abs(out - out_ref).max() <= TOL * scale
        one = solver.solve(X - 1, rhs[X - 1])
        assert np.abs(one - out_ref[X - 1]).max() <= TOL * scale

    def test_ipc_counters_shape(self, backend):
        counters = backend.ipc_counters()
        assert set(counters) == {
            "ipc_bytes_sent",
            "ipc_bytes_saved",
            "shm_fallbacks",
            "pool_restarts",
        }

    def test_budget_fallback_still_correct(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_BUDGET", "64")  # nothing fits
        before = _own_segments()
        be = ProcessPoolBackend(num_threads=2)
        try:
            rng = np.random.default_rng(19)
            A = rng.normal(size=(20, 12))
            Bm = rng.normal(size=(12, 18))
            out = be.matmul(A, Bm)
            assert np.abs(out - A @ Bm).max() <= TOL
            assert be.shm_fallbacks >= 1
        finally:
            be.close()
        assert _own_segments() <= before


class TestSerialFallback:
    def test_workers_one_never_spawns(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "1")
        be = ProcessPoolBackend()
        try:
            assert be.workers == 1
            rng = np.random.default_rng(23)
            X = rng.normal(size=(4, 5, 3))
            Y = rng.normal(size=(5, 3))
            ref = NumpyBackend()
            assert np.array_equal(
                be.contract("bij,ij->bi", X, Y), ref.contract("bij,ij->bi", X, Y)
            )
            arr = be.alloc_shared((8,))
            assert isinstance(arr, np.ndarray)
            be.register_shared(arr)  # no-op, no arena
            assert be._pools is None and be._arena is None
        finally:
            be.close()

    def test_bad_worker_env_is_actionable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_PROCESS_WORKERS"):
            ProcessPoolBackend()

    def test_bad_start_method_is_actionable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_START", "teleport")
        be = ProcessPoolBackend(num_threads=2)
        try:
            with pytest.raises(ValueError, match="REPRO_PROCESS_START"):
                be._get_pools()
        finally:
            be.close()
