"""Discretization convergence: interpolation/projection rates and the
accuracy claims behind the paper's high-order element choice.

"This cost is a function of the desired accuracy.  High accuracy and large
domain size benefit more from mesh adaptivity" — these tests verify the
machinery delivers the formal orders that make Q3 worthwhile.
"""

import numpy as np
import pytest

from repro.core.maxwellian import maxwellian_rz
from repro.fem import FunctionSpace, Mesh, assemble_mass


def l2_error_of_interpolant(nr, nz, order, func):
    mesh = Mesh.structured(nr, nz, 3.0, -3.0, 3.0)
    fs = FunctionSpace(mesh, order=order)
    x = fs.interpolate(func)
    vals = fs.eval(x)
    exact = func(fs.qpoints[:, :, 0], fs.qpoints[:, :, 1])
    return float(np.sqrt(fs.integrate((vals - exact) ** 2)))


def maxwellian(r, z):
    return maxwellian_rz(r, z, 1.0, 1.0)


class TestHConvergence:
    @pytest.mark.parametrize("order,expected_rate", [(1, 2.0), (2, 3.0), (3, 4.0)])
    def test_interpolation_rate(self, order, expected_rate):
        """L2 interpolation error of a smooth function is O(h^{k+1})."""
        e1 = l2_error_of_interpolant(4, 8, order, maxwellian)
        e2 = l2_error_of_interpolant(8, 16, order, maxwellian)
        rate = np.log2(e1 / e2)
        assert rate == pytest.approx(expected_rate, abs=0.6)

    def test_q3_beats_q1_at_same_dofs(self):
        """The high-order-elements argument: at comparable dof counts Q3 is
        far more accurate than Q1."""
        # Q1 on 12x24 ~ 325 dofs; Q3 on 4x8 ~ 325 dofs
        e_q1 = l2_error_of_interpolant(12, 24, 1, maxwellian)
        e_q3 = l2_error_of_interpolant(4, 8, 3, maxwellian)
        assert e_q3 < 0.1 * e_q1


class TestEnergyAccuracy:
    def test_five_digits_on_paper_grid(self):
        """'128 integration points in a radius of a bit over one thermal
        radii, which resolves the total energy of the Maxwellian with about
        five digits of accuracy' — check the adapted 20-cell Q3 grid."""
        from repro.amr import landau_mesh
        from repro.core import electron

        vth = electron().thermal_velocity
        fs = FunctionSpace(landau_mesh([vth]), order=3)
        x = fs.project(lambda r, z: maxwellian_rz(r, z, 1.0, vth))
        vals = fs.eval(x)
        r, z = fs.qpoints[:, :, 0], fs.qpoints[:, :, 1]
        energy = 2 * np.pi * 0.5 * fs.integrate((r**2 + z**2) * vals)
        exact = 1.5 * vth**2 / 2.0 * 1.0  # (3/2) n (vth^2/2) for this norm
        # exact energy: (3/4) vth^2 * n  (since <v^2> = (3/2) vth^2)
        exact = 0.75 * vth**2
        rel = abs(energy - exact) / exact
        assert rel < 5e-4  # ~3.5+ digits on the 20-cell grid

    def test_energy_improves_with_refinement(self):
        from repro.amr import landau_mesh
        from repro.core import electron

        vth = electron().thermal_velocity
        errs = []
        for hf in (2.5, 1.25, 0.625):
            fs = FunctionSpace(landau_mesh([vth], h_factor=hf), order=3)
            x = fs.project(lambda r, z: maxwellian_rz(r, z, 1.0, vth))
            vals = fs.eval(x)
            r, z = fs.qpoints[:, :, 0], fs.qpoints[:, :, 1]
            energy = 2 * np.pi * 0.5 * fs.integrate((r**2 + z**2) * vals)
            errs.append(abs(energy - 0.75 * vth**2) / (0.75 * vth**2))
        assert errs[2] < errs[0]


class TestMassMatrixConditioning:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_gll_mass_well_conditioned(self, order):
        """GLL nodal bases keep the (r-weighted) mass matrix invertible
        with a moderate condition number per fixed mesh."""
        mesh = Mesh.structured(3, 6, 2.0, -2.0, 2.0)
        fs = FunctionSpace(mesh, order=order)
        M = assemble_mass(fs).toarray()
        ev = np.linalg.eigvalsh(M)
        assert ev.min() > 0
        assert ev.max() / ev.min() < 1e7
