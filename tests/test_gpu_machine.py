"""The CUDA-model simulator: counters, blocks, warp reductions, atomics."""

import numpy as np
import pytest

from repro.gpu import A64FX, MI100, V100, Counters, CudaMachine
from repro.gpu.machine import ThreadBlock


class TestCounters:
    def test_flops_weighting(self):
        c = Counters(fma=10, mul=5, add=3, special=2)
        assert c.flops == 2 * 10 + 5 + 3 + 2
        assert c.fp64_instructions == 20
        assert c.dfma_fraction == pytest.approx(0.5)

    def test_issue_slots_weight_specials(self):
        c = Counters(fma=10, special=2)
        assert c.issue_slots == 10 + 8.0

    def test_arithmetic_intensity(self):
        c = Counters(fma=100, dram_read_bytes=50, dram_write_bytes=50)
        assert c.arithmetic_intensity == pytest.approx(2.0)
        assert Counters(fma=1).arithmetic_intensity == float("inf")

    def test_snapshot_diff_merge(self):
        c = Counters(fma=5, atomic_adds=2)
        snap = c.snapshot()
        c.fma += 3
        d = c.diff(snap)
        assert d.fma == 3 and d.atomic_adds == 0
        snap.merge(d)
        assert snap.fma == c.fma
        c.reset()
        assert c.flops == 0


class TestDevices:
    def test_v100_roofline_knee(self):
        """Paper: 'the AI roofline turning point is at 8.8' on V100."""
        assert V100.roofline_knee == pytest.approx(8.8, abs=0.05)

    def test_v100_specs(self):
        assert V100.sm_count == 80
        assert V100.peak_fp64_tflops == 7.8
        assert V100.pipe_utilization == pytest.approx(0.664)

    def test_mi100_no_fp64_atomics(self):
        assert not MI100.fp64_global_atomics
        assert MI100.peak_fp64_tflops == 11.5

    def test_a64fx_vector_lanes(self):
        assert A64FX.warp_size == 8
        assert A64FX.software_efficiency == pytest.approx(1 / 8.5)


class TestMachine:
    def test_launch_runs_all_blocks(self):
        m = CudaMachine(V100)
        seen = []

        def kernel(tb, b):
            seen.append(b)
            tb.count(fma=1)

        m.launch(kernel, 5, (4, 4))
        assert seen == list(range(5))
        assert m.counters.blocks_executed == 5
        assert m.counters.kernel_launches == 1
        assert m.counters.fma == 5

    def test_block_size_limit(self):
        m = CudaMachine(V100)
        with pytest.raises(ValueError):
            m.launch(lambda tb, b: None, 1, (64, 64))

    def test_invalid_grid(self):
        m = CudaMachine(V100)
        with pytest.raises(ValueError):
            m.launch(lambda tb, b: None, 0, (4, 4))

    def test_memory_counters(self):
        m = CudaMachine(V100)

        def kernel(tb, b):
            tb.global_read(10)
            tb.global_write(5)
            tb.shared_write(3)
            tb.shared_read(3)

        m.launch(kernel, 2, (4, 4))
        assert m.counters.dram_read_bytes == 2 * 10 * 8
        assert m.counters.dram_write_bytes == 2 * 5 * 8
        assert m.counters.shared_bytes == 2 * 6 * 8

    def test_warp_shuffle_reduce(self):
        c = Counters()
        tb = ThreadBlock(0, 16, 16, c, V100)
        vals = np.arange(32.0).reshape(2, 16)
        out = tb.warp_shuffle_reduce(vals, axis=1)
        assert np.allclose(out, vals.sum(axis=1))
        # log2(16) = 4 rounds over 2 outputs
        assert c.warp_shuffles == 4 * 2

    def test_atomic_add_correct_and_counted(self):
        c = Counters()
        tb = ThreadBlock(0, 16, 16, c, V100)
        target = np.zeros(4)
        tb.atomic_add(target, np.array([0, 1, 1]), np.array([1.0, 2.0, 3.0]))
        assert np.allclose(target, [1.0, 5.0, 0.0, 0.0])
        assert c.atomic_adds == 3

    def test_shared_allocation_tracked(self):
        c = Counters()
        tb = ThreadBlock(0, 8, 8, c, V100)
        arr = tb.shared(4, 4)
        assert arr.shape == (4, 4)
        assert tb.shared_bytes_allocated == 16 * 8
