"""Performance models: MPS pipeline shapes, node specs, table generators.

The workload fixture is session-scoped (one functional kernel simulation of
the 9-species/80-cell problem per test run).
"""

import pytest

from repro.gpu.device import MI100, V100
from repro.perf import (
    FUGAKU,
    SPOCK,
    SUMMIT,
    MpsPipelineModel,
    build_paper_workload,
    component_table,
    fugaku_table,
    spock_hip_table,
    summit_cuda_table,
    summit_kokkos_table,
)
from repro.perf.summary import summary_table


@pytest.fixture(scope="session")
def workload():
    return build_paper_workload()


class TestNodes:
    def test_summit_layout(self):
        assert SUMMIT.gpus == 6
        assert SUMMIT.cores_per_gpu == 7
        assert SUMMIT.core.smt_levels == 4

    def test_spock_layout(self):
        assert SPOCK.gpus == 4
        assert SPOCK.device.name == "MI100"
        assert SPOCK.mps_contention > SUMMIT.mps_contention

    def test_smt_slowdown_monotone(self):
        s = SUMMIT.core
        vals = [s.slowdown(k) for k in range(1, 5)]
        assert all(vals[i] < vals[i + 1] for i in range(3))
        with pytest.raises(ValueError):
            s.slowdown(5)


class TestWorkload:
    def test_problem_size_matches_paper(self, workload):
        """10 species (e + D + 8 W), ~80 Q3 elements."""
        assert len(workload.species) == 10
        assert 70 <= workload.fs.nelem <= 96
        assert workload.species.quasineutral()

    def test_kernel_time_ordering(self, workload):
        """V100 < MI100 < host-OpenMP kernel time per iteration."""
        t_v = workload.kernel_time(V100)
        t_m = workload.kernel_time(MI100, overhead=1.10)
        t_f = workload.host_kernel_time(FUGAKU.core, 8, FUGAKU.device)
        assert t_v < t_m < t_f

    def test_mi100_vs_v100_ratio(self, workload):
        """Paper: MI100 kernel ~3.5x slower than V100 (10.2 s vs 2.9 s)."""
        ratio = workload.kernel_time(MI100, overhead=1.10) / workload.kernel_time(V100)
        assert 2.0 <= ratio <= 9.0

    def test_host_kernel_thread_scaling_ideal(self, workload):
        """Table VI top row: time inversely proportional to threads."""
        t1 = workload.host_kernel_time(FUGAKU.core, 1, FUGAKU.device)
        t8 = workload.host_kernel_time(FUGAKU.core, 8, FUGAKU.device)
        assert t1 / t8 == pytest.approx(8.0)

    def test_factor_dominates_cpu(self, workload):
        """Table VII: the factorization is the dominant CPU component."""
        core = SUMMIT.core
        assert workload.factor_time(core) > workload.solve_time(core)
        assert workload.factor_time(core) > workload.metadata_time(core)


class TestPipeline:
    def test_rank_scaling_linear_until_saturation(self, workload):
        m = MpsPipelineModel(SUMMIT, t_gpu=1e-3, t_cpu_base=5e-3)
        r1 = m.per_gpu_rate(1, 1)
        r7 = m.per_gpu_rate(7, 1)
        assert 5.0 <= r7 / r1 <= 7.0

    def test_second_thread_gains(self, workload):
        m = MpsPipelineModel(SUMMIT, t_gpu=1e-3, t_cpu_base=5e-3)
        r1 = m.per_gpu_rate(7, 1)
        r2 = m.per_gpu_rate(7, 2)
        r3 = m.per_gpu_rate(7, 3)
        assert 1.1 <= r2 / r1 <= 1.3  # paper: ~+24%
        assert 1.0 <= r3 / r2 <= 1.1  # paper: ~+2-3%

    def test_gpu_cap_binds_for_gpu_heavy_workload(self):
        m = MpsPipelineModel(SUMMIT, t_gpu=5e-3, t_cpu_base=1e-3)
        r = m.per_gpu_rate(7, 3)
        assert r <= SUMMIT.gpu_concurrency / 5e-3 + 1e-9

    def test_validation(self):
        m = MpsPipelineModel(SUMMIT, t_gpu=1e-3, t_cpu_base=1e-3)
        with pytest.raises(ValueError):
            m.per_gpu_rate(0, 1)
        with pytest.raises(ValueError):
            m.per_gpu_rate(9, 1)  # > cores per GPU


class TestTables:
    def test_table2_shape(self, workload):
        t = summit_cuda_table(workload)
        v = t.values
        # monotone in cores at fixed procs/core
        for row in v:
            assert all(row[i] < row[i + 1] for i in range(len(row) - 1))
        # second thread helps at every core count; third helps slightly
        assert all(v[1][c] > v[0][c] for c in range(5))
        assert all(v[2][c] >= 0.97 * v[1][c] for c in range(5))
        # near-linear scaling 1 -> 7 cores (paper: 849 -> 5504, i.e. 6.5x)
        assert 5.5 <= v[0][4] / v[0][0] <= 7.0

    def test_table3_kokkos_slightly_slower(self, workload):
        t2 = summit_cuda_table(workload)
        t3 = summit_kokkos_table(workload)
        assert t3.best <= t2.best
        assert t3.best >= 0.80 * t2.best  # paper: 6193/7005 = 88%

    def test_table5_rollover(self, workload):
        """Paper: Spock throughput 'rolls over with 16 processes per GPU'."""
        t = spock_hip_table(workload)
        v = t.values
        # 1 proc/core row grows through 8 cores
        assert v[0][3] > v[0][2] > v[0][1] > v[0][0]
        # 16 ranks (8 cores x 2) is WORSE than 8 ranks (8 cores x 1)
        assert v[1][3] < v[0][3]

    def test_table6_structure(self, workload):
        t = fugaku_table(workload)
        # top row: jacobian time doubles as threads halve
        j = t.jacobian_seconds
        assert j[(4, 4)] / j[(4, 8)] == pytest.approx(2.0)
        assert j[(4, 1)] / j[(4, 8)] == pytest.approx(8.0)
        # diagonal throughput ~ constant: total grows ~linearly with procs
        totals = [t.total_seconds[p] for p in (4, 8, 16, 32)]
        assert all(totals[i] < totals[i + 1] for i in range(3))
        rates = [p / t.total_seconds[p] for p in (4, 8, 16, 32)]
        assert max(rates) / min(rates) < 2.0

    def test_table7_orderings(self, workload):
        rows = component_table(workload)
        by = {r.label: r for r in rows}
        # CUDA kernel fastest; HIP kernel slower; Fugaku slowest
        assert by["CUDA"].kernel < by["Kokkos-CUDA"].kernel
        assert by["Kokkos-CUDA"].kernel < by["Kokkos-HIP"].kernel
        assert by["Kokkos-HIP"].kernel < by["Fugaku (normalized)"].kernel
        # Landau includes kernel + metadata
        for r in rows:
            assert r.landau >= r.kernel
            assert r.total > r.landau + r.factor

    def test_table8_summary(self, workload):
        rows = summary_table(workload)
        assert [r.machine_language for r in rows] == [
            "Summit / CUDA",
            "Summit / Kokkos-CUDA",
            "Spock / Kokkos-HIP",
            "Fugaku / Kokkos-OMP",
        ]
        assert rows[0].kernel_pct_cuda == 100.0
        # ordering of normalized kernel efficiency: CUDA > Kokkos-CUDA > HIP
        assert rows[0].kernel_pct_cuda > rows[1].kernel_pct_cuda
        assert rows[1].kernel_pct_cuda > rows[2].kernel_pct_cuda
        # throughputs ordered like the paper's 7005 > 6193 > 353 > 39
        assert rows[0].throughput >= rows[1].throughput
        assert rows[1].throughput > rows[2].throughput
        assert rows[2].throughput > rows[3].throughput
