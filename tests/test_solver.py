"""Implicit quasi-Newton integrator: conservation over steps, convergence,
linear-solver equivalence, advection, sources."""

import numpy as np
import pytest

from repro.core import ImplicitLandauSolver, Moments, NewtonStats
from repro.core.maxwellian import maxwellian_rz


class TestNewtonStatsMerge:
    def test_merge_sums_counters(self):
        a = NewtonStats(time_steps=1, newton_iterations=5, jacobian_builds=5,
                        factorizations=5, solves=5)
        b = NewtonStats(time_steps=2, newton_iterations=7, jacobian_builds=7,
                        factorizations=6, solves=6)
        a.merge(b)
        assert (a.time_steps, a.newton_iterations, a.jacobian_builds,
                a.factorizations, a.solves) == (3, 12, 12, 11, 11)

    def test_merge_keeps_convergence_flag_and_history(self):
        """Regression: merge used to drop converged_last and
        residual_history entirely — a failed partial solve merged into an
        aggregate looked converged and lost its residual trace."""
        ok = NewtonStats(converged_last=True, residual_history=[1e-3, 1e-6])
        bad = NewtonStats(converged_last=False, residual_history=[1e-2])
        ok.merge(bad)
        assert ok.converged_last is False
        assert ok.residual_history == [1e-3, 1e-6, 1e-2]
        # merging a converged run into a failed one must not clear the flag
        bad2 = NewtonStats(converged_last=False)
        bad2.merge(NewtonStats(converged_last=True))
        assert bad2.converged_last is False

    def test_merge_resilience_counters(self):
        a = NewtonStats(step_rejections=1, dt_backoffs=1,
                        backend_solves={"band": 2})
        b = NewtonStats(step_rejections=2, dt_backoffs=3,
                        backend_solves={"band": 1, "splu": 4})
        b.record_event("linear_fallback", backend="band")
        a.merge(b)
        assert a.step_rejections == 3 and a.dt_backoffs == 4
        assert a.backend_solves == {"band": 3, "splu": 4}
        assert a.events == [{"kind": "linear_fallback", "backend": "band"}]


@pytest.fixture()
def aniso_state(fs_q3):
    def aniso(r, z):
        vr, vz = 0.6, 1.2
        return np.exp(-((r / vr) ** 2) - (z / vz) ** 2) / (np.pi**1.5 * vr * vr * vz)

    return fs_q3.interpolate(aniso)


class TestStep:
    def test_conservation_over_step(
        self, electron_operator, electron_moments, aniso_state
    ):
        solver = ImplicitLandauSolver(electron_operator, rtol=1e-10)
        m0 = electron_moments.summary([aniso_state])
        f1 = solver.step([aniso_state], dt=0.5)
        m1 = electron_moments.summary(f1)
        assert m1["n_e"] == pytest.approx(m0["n_e"], rel=1e-12)
        assert m1["p_z"] == pytest.approx(m0["p_z"], abs=1e-8)
        assert m1["energy"] == pytest.approx(m0["energy"], rel=1e-7)

    def test_anisotropy_relaxes(self, electron_operator, fs_q3, aniso_state):
        solver = ImplicitLandauSolver(electron_operator, rtol=1e-8)
        f = [aniso_state]
        r, z = fs_q3.qpoints[:, :, 0], fs_q3.qpoints[:, :, 1]

        def anisotropy(x):
            fq = fs_q3.eval(x)
            Tr = fs_q3.integrate(r**2 * fq) / 2.0
            Tz = fs_q3.integrate(z**2 * fq)
            return abs(Tr - Tz) / (Tr + Tz)

        a0 = anisotropy(f[0])
        f = solver.integrate(f, dt=0.5, nsteps=8)
        a1 = anisotropy(f[0])
        assert a1 < 0.35 * a0

    def test_converges_flag_and_stats(self, electron_operator, aniso_state):
        solver = ImplicitLandauSolver(electron_operator, rtol=1e-8)
        solver.step([aniso_state], dt=0.25)
        st = solver.stats
        assert st.converged_last
        assert st.time_steps == 1
        assert st.newton_iterations >= 2
        assert st.factorizations == st.solves
        assert st.residual_history[-1] < 1e-8

    def test_quasi_newton_linear_convergence(self, electron_operator, aniso_state):
        """Residual history decays geometrically (linear convergence)."""
        solver = ImplicitLandauSolver(electron_operator, rtol=1e-12, max_newton=40)
        solver.step([aniso_state], dt=0.5)
        hist = solver.stats.residual_history
        assert len(hist) >= 4
        ratios = [hist[k + 1] / hist[k] for k in range(1, min(len(hist), 8) - 1)]
        assert all(r < 0.9 for r in ratios)

    def test_band_solver_matches_splu(self, electron_operator, aniso_state):
        s1 = ImplicitLandauSolver(electron_operator, rtol=1e-9)
        s2 = ImplicitLandauSolver(electron_operator, linear_solver="band", rtol=1e-9)
        f1 = s1.step([aniso_state], dt=0.5)
        f2 = s2.step([aniso_state], dt=0.5)
        assert np.allclose(f1[0], f2[0], atol=1e-11)

    def test_invalid_inputs(self, electron_operator, aniso_state):
        solver = ImplicitLandauSolver(electron_operator)
        with pytest.raises(ValueError):
            solver.step([aniso_state], dt=-0.1)
        with pytest.raises(ValueError):
            solver.step([aniso_state, aniso_state], dt=0.1)
        with pytest.raises(ValueError):
            ImplicitLandauSolver(electron_operator, theta=0.0)
        with pytest.raises(ValueError):
            ImplicitLandauSolver(electron_operator, linear_solver="magic")

    def test_crank_nicolson_more_accurate(self, electron_operator, aniso_state):
        """The midpoint-linearized theta=0.5 scheme beats backward Euler at
        the same (moderate) step size."""
        ref = ImplicitLandauSolver(electron_operator, rtol=1e-11, max_newton=60)
        f_ref = ref.integrate([aniso_state], dt=0.0125, nsteps=32)
        be = ImplicitLandauSolver(electron_operator, rtol=1e-11, max_newton=60)
        f_be = be.integrate([aniso_state], dt=0.2, nsteps=2)
        cn = ImplicitLandauSolver(
            electron_operator, theta=0.5, rtol=1e-11, max_newton=60
        )
        f_cn = cn.integrate([aniso_state], dt=0.2, nsteps=2)
        err_be = np.linalg.norm(f_be[0] - f_ref[0])
        err_cn = np.linalg.norm(f_cn[0] - f_ref[0])
        assert err_cn < 0.6 * err_be


class TestEfieldAndSources:
    def test_efield_drives_current(
        self, electron_operator, electron_moments, electron_maxwellian
    ):
        solver = ImplicitLandauSolver(electron_operator, rtol=1e-8)
        f = solver.integrate([electron_maxwellian], dt=0.5, nsteps=3, efield=0.05)
        J = electron_moments.current_z(f)
        assert J > 1e-4  # electrons accelerate against -z, J_z > 0

    def test_efield_sign(self, electron_operator, electron_moments, electron_maxwellian):
        solver = ImplicitLandauSolver(electron_operator, rtol=1e-8)
        f = solver.integrate([electron_maxwellian], dt=0.5, nsteps=3, efield=-0.05)
        assert electron_moments.current_z(f) < -1e-4

    def test_source_injects_density(
        self, electron_operator, fs_q3, electron_moments, electron_maxwellian
    ):
        solver = ImplicitLandauSolver(electron_operator, rtol=1e-8)
        # weak source vector for a unit-density-rate Maxwellian
        vals = maxwellian_rz(fs_q3.qpoints[:, :, 0], fs_q3.qpoints[:, :, 1], 1.0, 0.8)
        b_full = np.zeros(fs_q3.dofmap.n_full)
        np.add.at(
            b_full,
            fs_q3.dofmap.cell_nodes,
            np.einsum("eq,qb->eb", fs_q3.qweights * vals, fs_q3.B),
        )
        b = fs_q3.dofmap.reduce_vector(b_full)
        n0 = electron_moments.summary([electron_maxwellian])["n_e"]
        f1 = solver.step([electron_maxwellian], dt=0.5, sources=[b])
        n1 = electron_moments.summary(f1)["n_e"]
        # dn/dt = source rate = 1 (up to interpolation error of the shape)
        assert n1 - n0 == pytest.approx(0.5, rel=2e-2)
