"""Resilience layer unit tests: guards, controller, fallback chain,
fault injection, checkpoint round-trips, and the adaptive advance loop."""

import numpy as np
import pytest

from repro.core import ImplicitLandauSolver, Moments, NewtonStats
from repro.core.solver import _splu_factory
from repro.report import resilience_summary, solver_stats_table
from repro.resilience import (
    DEFAULT_BACKENDS,
    CheckpointError,
    FallbackSolverChain,
    FaultInjector,
    GuardConfig,
    InjectedFault,
    SolveFailure,
    StepGuard,
    StepRejected,
    TimeStepController,
    load_checkpoint,
    save_checkpoint,
)


@pytest.fixture()
def aniso_state(fs_q3):
    def aniso(r, z):
        vr, vz = 0.6, 1.2
        return np.exp(-((r / vr) ** 2) - (z / vz) ** 2) / (np.pi**1.5 * vr * vr * vz)

    return fs_q3.interpolate(aniso)


class TestExceptions:
    def test_diagnostics_payload(self):
        err = StepRejected("bad step", diagnostics={"guard": "finite", "species": 1})
        assert err.diagnostics["guard"] == "finite"
        assert "finite" in str(err)

    def test_injected_fault_is_solve_failure(self):
        assert issubclass(InjectedFault, SolveFailure)


class TestStepGuard:
    def test_clean_state_passes(self, electron_moments, electron_maxwellian):
        guard = StepGuard(electron_moments)
        ref = guard.reference([electron_maxwellian])
        guard.check([electron_maxwellian], ref, dt=0.5)
        assert guard.trips == 0

    def test_nan_trips(self, electron_moments, electron_maxwellian):
        guard = StepGuard(electron_moments)
        bad = electron_maxwellian.copy()
        bad[3] = np.nan
        with pytest.raises(StepRejected) as exc:
            guard.check([bad])
        assert exc.value.diagnostics["guard"] == "finite"
        assert guard.trips == 1

    def test_negative_density_trips(self, electron_moments, electron_maxwellian):
        guard = StepGuard(electron_moments)
        with pytest.raises(StepRejected) as exc:
            guard.check([-electron_maxwellian])
        assert exc.value.diagnostics["guard"] == "positivity"

    def test_density_drift_trips(self, electron_moments, electron_maxwellian):
        guard = StepGuard(electron_moments, GuardConfig(density_rtol=1e-6))
        ref = guard.reference([electron_maxwellian])
        with pytest.raises(StepRejected) as exc:
            guard.check([1.01 * electron_maxwellian], ref)
        assert exc.value.diagnostics["guard"] == "density"

    def test_density_drift_skipped_with_sources(
        self, electron_moments, electron_maxwellian
    ):
        guard = StepGuard(electron_moments)
        ref = guard.reference([electron_maxwellian])
        guard.check([1.01 * electron_maxwellian], ref, has_sources=True)

    def test_energy_drift_only_without_drive(
        self, electron_moments, electron_maxwellian
    ):
        """A uniform rescale conserves nothing; with the E-field on, only
        density (checked via a density-preserving perturbation) matters."""
        guard = StepGuard(electron_moments, GuardConfig(energy_rtol=1e-6))
        ref = guard.reference([electron_maxwellian])
        # zero-density, energy-carrying perturbation: scale is too small to
        # move density materially but the check must fire without drive
        with pytest.raises(StepRejected):
            guard.check([1.0001 * electron_maxwellian], ref, efield=0.0)
        # same state passes when the field does work (density still ok at
        # loose tolerance)
        guard2 = StepGuard(
            electron_moments, GuardConfig(density_rtol=1e-2, energy_rtol=1e-6)
        )
        guard2.check([1.0001 * electron_maxwellian], ref, efield=0.1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GuardConfig(density_rtol=0.0)
        with pytest.raises(ValueError):
            GuardConfig(energy_rtol=float("nan"))


class TestTimeStepController:
    def test_backoff_sequence(self):
        c = TimeStepController(dt_init=1.0, dt_min=1.0 / 16)
        assert c.on_reject() == 0.5
        assert c.on_reject() == 0.25
        assert c.total_backoffs == 2

    def test_dt_min_floor_raises(self):
        c = TimeStepController(dt_init=1.0, dt_min=0.25)
        c.on_reject()
        c.on_reject()
        with pytest.raises(SolveFailure) as exc:
            c.on_reject()
        assert exc.value.diagnostics["dt_min"] == 0.25

    def test_retry_budget_raises(self):
        c = TimeStepController(dt_init=1.0, dt_min=1e-12, max_retries=3)
        for _ in range(3):
            c.on_reject()
        with pytest.raises(SolveFailure) as exc:
            c.on_reject()
        assert exc.value.diagnostics["max_retries"] == 3

    def test_accept_resets_retry_budget(self):
        c = TimeStepController(dt_init=1.0, dt_min=1e-12, max_retries=2)
        c.on_reject()
        c.on_reject()
        c.on_accept(5)
        c.on_reject()  # budget is per-step, so this is fine again

    def test_regrowth_after_easy_streak(self):
        c = TimeStepController(
            dt_init=1.0, dt_min=1e-3, dt_max=1.0, growth_streak=2, easy_newton=10
        )
        c.on_reject()  # dt = 0.5
        c.on_accept(3)
        assert c.dt == 0.5
        c.on_accept(3)
        assert c.dt == 1.0  # grew back after the streak
        c.on_accept(3)
        c.on_accept(3)
        assert c.dt == 1.0  # capped at dt_max

    def test_hard_steps_do_not_grow(self):
        c = TimeStepController(dt_init=1.0, growth_streak=2, easy_newton=4)
        c.on_reject()
        for _ in range(5):
            c.on_accept(40)  # hard converges: streak never builds
        assert c.dt == 0.5

    def test_state_roundtrip(self):
        c = TimeStepController(dt_init=1.0, dt_min=1e-3)
        c.on_reject()
        c.on_accept(3)
        vec = c.state_vector()
        c2 = TimeStepController(dt_init=1.0, dt_min=1e-3)
        c2.load_state_vector(vec)
        assert c2.state_dict() == c.state_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeStepController(dt_init=0.0)
        with pytest.raises(ValueError):
            TimeStepController(dt_init=1.0, backoff=1.5)
        with pytest.raises(ValueError):
            TimeStepController(dt_init=1.0, dt_min=2.0)
        with pytest.raises(ValueError):
            TimeStepController(dt_init=1.0, growth=0.9)


class TestFallbackChain:
    def test_primary_serves_when_healthy(self, electron_operator, aniso_state):
        solver = ImplicitLandauSolver(
            electron_operator, linear_solver="fallback", rtol=1e-9
        )
        solver.step([aniso_state], dt=0.5)
        assert set(solver.stats.backend_solves) == {"band"}
        assert solver.stats.backend_solves["band"] == solver.stats.solves

    def test_matches_splu(self, electron_operator, aniso_state):
        s1 = ImplicitLandauSolver(electron_operator, rtol=1e-9)
        s2 = ImplicitLandauSolver(electron_operator, linear_solver="fallback", rtol=1e-9)
        f1 = s1.step([aniso_state], dt=0.5)
        f2 = s2.step([aniso_state], dt=0.5)
        assert np.allclose(f1[0], f2[0], atol=1e-11)

    def test_falls_back_on_failure(self, electron_operator, aniso_state):
        def broken(A):
            raise np.linalg.LinAlgError("injected: factorization refused")

        chain = FallbackSolverChain(
            [("broken", broken)] + list(DEFAULT_BACKENDS)
        )
        solver = ImplicitLandauSolver(electron_operator, linear_solver=chain, rtol=1e-9)
        solver.step([aniso_state], dt=0.5)
        assert "broken" not in solver.stats.backend_solves
        assert solver.stats.backend_solves["band"] == solver.stats.solves
        kinds = {e["kind"] for e in solver.stats.events}
        assert "linear_fallback" in kinds

    def test_nan_solution_rejected(self):
        """A backend returning NaN counts as failed, not served."""
        A = __import__("scipy.sparse", fromlist=["sparse"]).eye(4, format="csr")

        def nan_backend(A):
            return lambda b: np.full_like(np.asarray(b, float), np.nan)

        stats = NewtonStats()
        chain = FallbackSolverChain(
            [("nan", nan_backend), ("splu", lambda A: _splu_factory(A))], stats=stats
        )
        x = chain(A)(np.ones(4))
        assert np.allclose(x, 1.0)
        assert stats.backend_solves == {"splu": 1}

    def test_all_fail_raises_solve_failure(self):
        import scipy.sparse as sp

        def broken(A):
            raise RuntimeError("no")

        chain = FallbackSolverChain([("b1", broken), ("b2", broken)])
        solve = chain(sp.eye(3, format="csr"))
        with pytest.raises(SolveFailure) as exc:
            solve(np.ones(3))
        assert len(exc.value.diagnostics["errors"]) == 2

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FallbackSolverChain([])


class TestFaultInjector:
    def test_fail_first_solves_then_recover(self):
        import scipy.sparse as sp

        inj = FaultInjector(fail_first_solves=2)
        factory = inj.wrap_factory(_splu_factory)
        solve = factory(sp.eye(3, format="csr").tocsr())
        with pytest.raises(InjectedFault):
            solve(np.ones(3))
        with pytest.raises(InjectedFault):
            solve(np.ones(3))
        assert np.allclose(solve(np.ones(3)), 1.0)
        assert inj.n_injected == 2

    def test_factorization_failure_indices(self):
        import scipy.sparse as sp

        inj = FaultInjector(factorization_failures=(1,))
        factory = inj.wrap_factory(_splu_factory)
        factory(sp.eye(2, format="csr"))  # index 0: fine
        with pytest.raises(InjectedFault):
            factory(sp.eye(2, format="csr"))  # index 1: injected
        factory(sp.eye(2, format="csr"))  # index 2: fine again

    def test_nan_corruption_deterministic(self):
        import scipy.sparse as sp

        inj = FaultInjector(nan_solve_indices=(0,))
        solve = inj.wrap_factory(_splu_factory)(sp.eye(4, format="csr"))
        assert np.any(np.isnan(solve(np.ones(4))))
        assert not np.any(np.isnan(solve(np.ones(4))))
        inj.reset()
        solve = inj.wrap_factory(_splu_factory)(sp.eye(4, format="csr"))
        assert np.any(np.isnan(solve(np.ones(4))))

    def test_seeded_random_corruption_reproducible(self):
        import scipy.sparse as sp

        def run(seed):
            inj = FaultInjector(nan_probability=0.5, seed=seed)
            solve = inj.wrap_factory(_splu_factory)(sp.eye(2, format="csr"))
            return [bool(np.any(np.isnan(solve(np.ones(2))))) for _ in range(16)]

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide

    def test_wrap_backends_only(self):
        inj = FaultInjector(fail_first_solves=1)
        wrapped = inj.wrap_backends(DEFAULT_BACKENDS, only="band")
        names = [n for n, _ in wrapped]
        assert names == [n for n, _ in DEFAULT_BACKENDS]
        # non-wrapped backends are the original factories
        assert wrapped[1][1] is DEFAULT_BACKENDS[1][1]
        assert wrapped[0][1] is not DEFAULT_BACKENDS[0][1]

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(nan_probability=1.5)


class TestAdvance:
    def test_huge_dt_backs_off_and_conserves(
        self, electron_operator, electron_moments, aniso_state
    ):
        """A dt far beyond the quasi-Newton convergence horizon must back
        off (not diverge, not silently accept) and the accepted trajectory
        must still conserve the collision invariants."""
        solver = ImplicitLandauSolver(electron_operator, rtol=1e-8, max_newton=50)
        ctrl = TimeStepController(dt_init=5.0, dt_min=0.05)
        guard = StepGuard(electron_moments)
        m0 = electron_moments.summary([aniso_state])
        f, t = solver.advance([aniso_state], 5.0, ctrl, guard=guard)
        assert t == pytest.approx(5.0)
        assert ctrl.total_backoffs >= 2
        assert solver.stats.step_rejections >= 2
        assert solver.stats.dt_backoffs == ctrl.total_backoffs
        assert solver.stats.converged_last
        m1 = electron_moments.summary(f)
        assert m1["n_e"] == pytest.approx(m0["n_e"], rel=1e-8)
        assert m1["p_z"] == pytest.approx(m0["p_z"], abs=1e-6)
        assert m1["energy"] == pytest.approx(m0["energy"], rel=1e-5)

    def test_nan_fault_recovers(self, electron_operator, electron_moments, aniso_state):
        """Injected NaN solves poison the residual; the guard/controller
        must restore the pre-step state and the retry must succeed."""
        inj = FaultInjector(nan_solve_indices=(0,))
        solver = ImplicitLandauSolver(
            electron_operator, linear_solver=inj.wrap_factory(_splu_factory), rtol=1e-8
        )
        ctrl = TimeStepController(dt_init=0.5)
        f, _ = solver.advance(
            [aniso_state], 0.5, ctrl, guard=StepGuard(electron_moments)
        )
        assert inj.n_injected == 1
        assert solver.stats.step_rejections == 1
        assert np.all(np.isfinite(f[0]))
        assert solver.stats.converged_last

    def test_budget_exhaustion_propagates(self, electron_operator, aniso_state):
        inj = FaultInjector(fail_first_solves=10**9)
        solver = ImplicitLandauSolver(
            electron_operator, linear_solver=inj.wrap_factory(_splu_factory)
        )
        ctrl = TimeStepController(dt_init=0.5, max_retries=3)
        with pytest.raises(SolveFailure):
            solver.advance([aniso_state], 0.5, ctrl)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "state.ckpt.npz")
        fields = [np.linspace(0, 1, 7), np.linspace(1, 2, 7) ** 2]
        ctrl = TimeStepController(dt_init=0.5)
        ctrl.on_reject()
        save_checkpoint(
            path,
            fields=fields,
            t=1.25,
            controller=ctrl,
            extra={"stage": "quench", "k": 3, "E": 0.1},
        )
        ckpt = load_checkpoint(path)
        assert ckpt.t == 1.25
        for a, b in zip(ckpt.fields, fields):
            assert np.array_equal(a, b)
        assert ckpt.extra["stage"] == "quench"
        ctrl2 = TimeStepController(dt_init=0.5)
        ctrl2.load_state_vector(ckpt.controller_state)
        assert ctrl2.dt == ctrl.dt == 0.25

    def test_history_roundtrip(self, tmp_path):
        from repro.quench import QuenchHistory

        hist = QuenchHistory()
        hist.record(0.0, 1.0, 0.1, 0.01, 1.0, "ramp")
        hist.record(0.5, 1.0, 0.2, 0.01, 0.9, "quench")
        path = str(tmp_path / "h.ckpt.npz")
        save_checkpoint(path, fields=[np.ones(3)], t=0.5, history=hist)
        ckpt = load_checkpoint(path)
        assert ckpt.history.phase == ["ramp", "quench"]
        for col in ("t", "n_e", "J", "E", "T_e"):
            assert getattr(ckpt.history, col) == getattr(hist, col)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.npz"))

    def test_corrupt_file(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        with open(path, "wb") as fh:
            fh.write(b"not an npz archive")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestReporting:
    def test_tables_render(self):
        stats = NewtonStats(
            time_steps=3,
            newton_iterations=40,
            solves=40,
            step_rejections=1,
            dt_backoffs=1,
            backend_solves={"band": 30, "splu": 10},
        )
        stats.record_event("linear_fallback", backend="band", error="LinAlgError: x")
        stats.record_event("step_rejected", t=0.5, dt=0.25, reason="StepRejected: y")
        out = resilience_summary(stats)
        assert "band" in out and "splu" in out
        assert "linear_fallback" in out and "step_rejected" in out
        assert "backoffs" in solver_stats_table(stats)
