"""Cross-backend conformance matrix for the JIT'd Algorithm-1 hot path.

Every registered backend is exercised against the numpy reference on a
two-species quench vertex, stage by stage: packed pair-table build,
on-the-fly row-block field tensors, the two batched element-contraction
specs, the CSR scatter-apply, and the banded factor/solve — each to
<= 1e-12 (relative to the stage's max magnitude).  The numba legs are
*explicit skip-marked parameters* when numba is absent, so a container
without numba reports visible skips instead of silently shrinking the
matrix.

The ``nopython`` kernel *math* (AGM elliptic integrals, the scalar
pair-component transliteration, the element-block loops) is additionally
unit-tested as plain python — numba_kernels imports cleanly without
numba — so the kernel numerics are pinned even on hosts that can never
run the compiled legs.

The ``numba.cuda.jit`` element-Jacobian kernel is conformance-tested
against the instruction-counting simulator driver (same launch geometry,
identical launch counters, <= 1e-12 values) wherever the CUDA simulator
or a real device is usable.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backend import (
    BackendUnavailable,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    get_backend,
)
from repro.backend import numba_kernels as nk
from repro.backend.cuda_jit import CudaJitLandauJacobian, cuda_jit_available
from repro.backend.kernel_spec import DeviceKernelData, KernelData
from repro.core import LandauOperator
from repro.core import landau_tensor as lt
from repro.core.maxwellian import maxwellian_rz, species_maxwellian
from repro.core.options import AssemblyOptions
from repro.fem.assembly import assemble_coefficient_operator, get_scatter_map
from repro.sparse.band import CachedBandSolverFactory

TOL = 1e-12

#: the assembly contraction specs every backend must reproduce
SPEC_D = "eq,eqad,xeqdc,eqbc->xeab"
SPEC_K = "eq,eqad,xeqd,qb->xeab"

needs_numba = pytest.mark.skipif(
    not NumbaBackend.available(),
    reason="numba is not installed in this container",
)
needs_cuda_jit = pytest.mark.skipif(
    not cuda_jit_available(),
    reason="needs numba plus a CUDA device or NUMBA_ENABLE_CUDASIM=1",
)

#: every backend appears in the matrix; unavailable ones are *visible*
#: skips, never silently dropped
BACKEND_PARAMS = [
    pytest.param("numpy", id="numpy"),
    pytest.param("threaded", id="threaded"),
    pytest.param("process", id="process"),
    pytest.param("numba", id="numba", marks=needs_numba),
]


def _assert_close(got, ref, label):
    scale = max(np.abs(ref).max(), 1e-300)
    err = np.abs(np.asarray(got) - np.asarray(ref)).max() / scale
    assert err <= TOL, f"{label}: max scaled error {err:.3e} > {TOL}"


@pytest.fixture(scope="module")
def quench_fields(ed_fs, ed_species):
    """Thermal-quench vertex: cooled, slightly drifting electrons over an
    unperturbed cold deuterium bulk."""
    e, d = ed_species[0], ed_species[1]
    fe = ed_fs.interpolate(
        lambda r, z: maxwellian_rz(r, z - 0.1, 1.0, 0.7 * e.thermal_velocity)
    )
    fd = ed_fs.interpolate(species_maxwellian(d))
    return [fe, fd]


@pytest.fixture(scope="module")
def quench_op(ed_fs, ed_species):
    """A numpy-reference operator on the quench discretization, used only
    as a source of geometry (r, z, beta sums, scatter structure)."""
    return LandauOperator(
        ed_fs, ed_species, options=AssemblyOptions.from_env(backend="numpy")
    )


def _backend(name):
    return get_backend(name, num_threads=2 if name != "numpy" else 0)


class TestStageConformance:
    """Backend x stage matrix on the two-species quench vertex."""

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_pair_table_build(self, quench_op, name):
        N = quench_op.N
        r, z = quench_op.r, quench_op.z
        ref = np.empty((5, N, N))
        NumpyBackend().pair_table_rows(ref, r, z, 0, N)
        out = np.empty((5, N, N))
        be = _backend(name)
        # fill through the same disjoint row blocks the operator uses
        for i0, i1 in be.batch_blocks(N):
            be.pair_table_rows(out, r, z, i0, i1)
        _assert_close(out, ref, f"{name} pair tables")

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_field_row_blocks(self, quench_op, quench_fields, name):
        op = quench_op
        T_D, T_K = op.beta_sums(quench_fields)
        cTD = (op.w * T_D)[:, None]
        cTKr = (op.w * T_K[0])[:, None]
        cTKz = (op.w * T_K[1])[:, None]
        N = op.N
        ref_D = np.zeros((1, N, 2, 2))
        ref_K = np.zeros((1, N, 2))
        NumpyBackend().field_rows(
            ref_D, ref_K, op.r, op.z, cTD, cTKr, cTKz, 0, N
        )
        out_D = np.zeros((1, N, 2, 2))
        out_K = np.zeros((1, N, 2))
        be = _backend(name)
        for i0, i1 in be.batch_blocks(N):
            be.field_rows(out_D, out_K, op.r, op.z, cTD, cTKr, cTKz, i0, i1)
        _assert_close(out_D, ref_D, f"{name} field G_D rows")
        _assert_close(out_K, ref_K, f"{name} field G_K rows")

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_element_contraction_specs(self, ed_fs, name):
        sm = get_scatter_map(ed_fs)
        w = ed_fs.qweights
        gphys = sm.gphys
        ne, nq = w.shape
        rng = np.random.default_rng(17)
        X = 3
        GD = rng.standard_normal((X, ne, nq, 2, 2))
        GD = GD + np.swapaxes(GD, -1, -2)  # symmetric like the real D_q
        GK = rng.standard_normal((X, ne, nq, 2))
        ref = NumpyBackend()
        be = _backend(name)
        _assert_close(
            be.contract(SPEC_D, w, gphys, GD, gphys),
            ref.contract(SPEC_D, w, gphys, GD, gphys),
            f"{name} D-spec contraction",
        )
        _assert_close(
            be.contract(SPEC_K, w, gphys, GK, ed_fs.B),
            ref.contract(SPEC_K, w, gphys, GK, ed_fs.B),
            f"{name} K-spec contraction",
        )

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_scatter_apply(self, ed_fs, name):
        sm = get_scatter_map(ed_fs)
        rng = np.random.default_rng(23)
        flat = rng.standard_normal((4, sm.T.shape[1]))
        ref = NumpyBackend().scatter_apply(sm.T, flat)
        out = _backend(name).scatter_apply(sm.T, flat)
        _assert_close(out, ref, f"{name} scatter-apply")

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_element_jacobian_assembly(
        self, ed_fs, ed_species, quench_op, quench_fields, name
    ):
        """The full coefficient-operator assembly routed through the
        backend seam matches the inline-einsum reference."""
        G_D, G_K = quench_op.fields(quench_fields)
        D_q = G_D.reshape(ed_fs.qweights.shape + (2, 2))
        K_q = G_K.reshape(ed_fs.qweights.shape + (2,))
        sm = get_scatter_map(ed_fs)
        ref = assemble_coefficient_operator(ed_fs, D_q, K_q, structure=sm)
        got = assemble_coefficient_operator(
            ed_fs, D_q, K_q, structure=sm, backend=_backend(name)
        )
        _assert_close(
            got.toarray(), ref.toarray(), f"{name} element Jacobian"
        )

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_band_factor_solve(self, quench_op, quench_fields, name):
        M = quench_op.mass_matrix.tocsr()
        L = quench_op.jacobian(quench_fields)[0].tocsr()
        template = (M - 0.05 * L).tocsr()
        X = 3
        data = np.stack(
            [template.data * (1.0 + 0.01 * x) for x in range(X)]
        )
        rng = np.random.default_rng(3)
        rhs = rng.standard_normal((X, template.shape[0]))
        ref = CachedBandSolverFactory().factor_batch(
            template, data, backend=NumpyBackend()
        )
        got = CachedBandSolverFactory().factor_batch(
            template, data, backend=_backend(name)
        )
        out_ref = ref.solve_many(rhs)
        _assert_close(got.solve_many(rhs), out_ref, f"{name} band solve_many")
        _assert_close(got.solve(1, rhs[1]), out_ref[1], f"{name} band solve")

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_full_jacobian(self, ed_fs, ed_species, quench_fields, name):
        """End-to-end: the whole Jacobian build on each backend."""
        ref_op = LandauOperator(
            ed_fs,
            ed_species,
            options=AssemblyOptions.from_env(backend="numpy"),
        )
        op = LandauOperator(
            ed_fs,
            ed_species,
            options=AssemblyOptions.from_env(backend=name, num_threads=2),
        )
        J_ref = ref_op.jacobian(quench_fields)
        J = op.jacobian(quench_fields)
        for a in range(len(ed_species)):
            _assert_close(
                J[a].toarray(),
                J_ref[a].toarray(),
                f"{name} Jacobian species {a}",
            )


class TestKernelMathPython:
    """The nopython kernels run (slowly) as plain python without numba;
    their numerics are pinned here against the vectorized references."""

    @pytest.fixture(scope="class")
    def points(self):
        rng = np.random.default_rng(20260808)
        N = 48
        r = rng.uniform(0.01, 3.0, N)
        z = rng.uniform(-2.0, 2.0, N)
        # exercise the coincident mask and a near-coincident pair
        r[5], z[5] = r[3], z[3]
        r[7], z[7] = r[6] * (1 + 1e-16), z[6]
        return r, z

    def test_agm_elliptic_vs_scipy(self):
        from scipy.special import ellipe, ellipk

        ms = np.concatenate(
            [np.linspace(1e-12, 2.5e-3, 40), np.linspace(2.5e-3, 0.999, 200)]
        )
        for m in ms:
            K, E = nk.ellip_ke(m)
            assert abs(K - ellipk(m)) <= 1e-13 * ellipk(m)
            assert abs(E - ellipe(m)) <= 1e-13 * ellipe(m)
        K0, E0 = nk.ellip_ke(0.0)
        assert K0 == E0 == 0.5 * np.pi

    def test_pair_rows_matches_reference(self, points):
        r, z = points
        N = r.size
        ref = np.empty((5, N, N))
        lt.packed_pair_rows(ref, r, z, 0, N)
        out = np.empty((5, N, N))
        nk.pair_rows(out, r, z, 0, N)
        for c in range(5):
            _assert_close(out[c], ref[c], f"pair component {c}")

    def test_pair_rows_series_crossover(self):
        """Pairs engineered around the m = 2e-3 series switch — the
        regime where the T1/T2 cancellations are worst."""
        rng = np.random.default_rng(1)
        N = 50
        rs, zs = [], []
        for _ in range(N):
            m_t = 10 ** rng.uniform(-3.4, -1.0)
            ri = rng.uniform(0.05, 2.0)
            rj = rng.uniform(0.05, 2.0)
            B = 2 * ri * rj
            dz2 = 2 * B / m_t - B - ri * ri - rj * rj
            rs.append(ri)
            zs.append(np.sqrt(max(dz2, 0.01)))
        r, z = np.array(rs), np.array(zs)
        ref = np.empty((5, N, N))
        lt.packed_pair_rows(ref, r, z, 0, N)
        out = np.empty((5, N, N))
        nk.pair_rows(out, r, z, 0, N)
        for c in range(5):
            _assert_close(out[c], ref[c], f"crossover component {c}")

    def test_field_rows_matches_reference(self, points):
        r, z = points
        N, S = r.size, 3
        rng = np.random.default_rng(2)
        cTD = rng.standard_normal((N, S))
        cTKr = rng.standard_normal((N, S))
        cTKz = rng.standard_normal((N, S))
        ref_D = np.zeros((S, N, 2, 2))
        ref_K = np.zeros((S, N, 2))
        lt.field_rows(ref_D, ref_K, r, z, cTD, cTKr, cTKz, 0, N)
        out_D = np.zeros((S, N, 2, 2))
        out_K = np.zeros((S, N, 2))
        nk.field_rows(out_D, out_K, r, z, cTD, cTKr, cTKz, 0, N)
        _assert_close(out_D, ref_D, "field G_D")
        _assert_close(out_K, ref_K, "field G_K")
        assert np.array_equal(out_D[:, :, 1, 0], out_D[:, :, 0, 1])

    def test_element_blocks_vs_einsum(self):
        rng = np.random.default_rng(7)
        ne, nq, nb, X = 6, 4, 5, 3
        w = rng.standard_normal((ne, nq))
        g = rng.standard_normal((ne, nq, nb, 2))
        GD = rng.standard_normal((X, ne, nq, 2, 2))
        GK = rng.standard_normal((X, ne, nq, 2))
        Bq = rng.standard_normal((nq, nb))
        refD = np.einsum(SPEC_D, w, g, GD, g, optimize=True)
        outD = np.zeros((X, ne, nb, nb))
        nk.element_blocks_D(w, g, GD, outD, 0, X)
        _assert_close(outD, refD, "element D blocks")
        refK = np.einsum(SPEC_K, w, g, GK, Bq, optimize=True)
        outK = np.zeros((X, ne, nb, nb))
        nk.element_blocks_K(w, g, GK, Bq, outK, 0, X)
        _assert_close(outK, refK, "element K blocks")

    def test_csr_scatter_rows(self):
        rng = np.random.default_rng(9)
        T = sp.random(60, 90, density=0.15, random_state=0, format="csr")
        flat = rng.standard_normal((4, 90))
        ref = (T @ flat.T).T
        out = np.zeros((4, 60))
        nk.csr_scatter_rows(T.indptr, T.indices, T.data, flat, out, 0, 4)
        _assert_close(out, ref, "csr scatter rows")

    def test_constants_stay_in_sync(self):
        """The scalar kernels hard-code the mask/crossover constants
        (numba constant-folds literals); they must track the reference."""
        assert nk.SINGULAR_REL_TOL == lt.SINGULAR_REL_TOL == 1e-14
        assert nk.SMALL_M == 2.0e-3

    def test_warm_all_runs_every_kernel(self):
        # plain-python smoke of the compile-warming entry point
        nk.warm_all()


class TestDeviceKernelData:
    """The CSR-style flattening the cuda.jit kernel consumes."""

    def test_pack_roundtrip(self, ed_fs, ed_species):
        kd = KernelData.build(ed_fs, ed_species)
        dev = DeviceKernelData.pack(kd)
        nelem = kd.nelem
        assert dev.targets_off.shape == (nelem + 1,)
        assert dev.P_off.shape == (nelem + 1,)
        for e in range(nelem):
            tgt = kd.elem_targets[e]
            k0, k1 = dev.targets_off[e], dev.targets_off[e + 1]
            assert np.array_equal(dev.targets_flat[k0:k1], tgt)
            Pe = kd.elem_P[e]
            p0, p1 = dev.P_off[e], dev.P_off[e + 1]
            assert np.array_equal(
                dev.P_flat[p0:p1].reshape(kd.nb, tgt.size), Pe
            )


@needs_cuda_jit
class TestCudaJitConformance:
    """Compiled numba.cuda kernel vs the counting-simulator driver."""

    @pytest.fixture(scope="class")
    def small_problem(self, ed_species):
        from repro.fem.function_space import FunctionSpace
        from repro.fem.mesh import Mesh

        fs = FunctionSpace(Mesh.structured(2, 3, 1.6, -1.6, 1.6), order=2)
        e, d = ed_species[0], ed_species[1]
        fields = [
            fs.interpolate(
                lambda r, z: maxwellian_rz(
                    r, z - 0.1, 1.0, 0.7 * e.thermal_velocity
                )
            ),
            fs.interpolate(species_maxwellian(d)),
        ]
        return fs, fields

    def test_matches_simulator_driver(self, ed_species, small_problem):
        from repro.core.kernel_cuda import CudaLandauJacobian

        fs, fields = small_problem
        sim = CudaLandauJacobian(fs, ed_species)
        jit = CudaJitLandauJacobian(fs, ed_species)
        assert jit.block == sim.block
        assert jit.grid == sim.kd.nelem
        J_sim = sim.build(fields)
        J_jit = jit.build(fields)
        _assert_close(J_jit, J_sim, "cuda.jit element Jacobian")
        # identical launch accounting: one launch per build on both paths
        assert jit.counters["kernel_launches"] == 1
        assert sim.machine.counters.kernel_launches == 1
        jit.build(fields)
        assert jit.counters["kernel_launches"] == 2


class TestUnavailableGuards:
    @pytest.mark.skipif(
        NumbaBackend.available(), reason="numba installed in this container"
    )
    def test_numba_backend_refuses_construction(self):
        with pytest.raises(BackendUnavailable, match="numba"):
            NumbaBackend()

    @pytest.mark.skipif(
        cuda_jit_available(), reason="cuda.jit usable in this container"
    )
    def test_cuda_jit_refuses_construction(self, ed_fs, ed_species):
        with pytest.raises(BackendUnavailable, match="CUDA"):
            CudaJitLandauJacobian(ed_fs, ed_species)

    def test_matrix_lists_every_backend(self):
        """The conformance matrix must always contain all four backends —
        a skipped numba leg is visible, never silently dropped."""
        ids = {p.id for p in BACKEND_PARAMS}
        assert ids == {"numpy", "threaded", "numba", "process"}
        assert set(available_backends()) <= {
            "numpy",
            "threaded",
            "numba",
            "process",
        }
