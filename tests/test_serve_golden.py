"""Golden-trace regression for the serve tier across execution backends.

A fixed, seeded drain workload is hashed bitwise per backend and pinned
in ``tests/golden/serve_trace.json``:

* ``numpy`` and ``threaded`` hashes must stay **bitwise-unchanged** —
  the backend seam refactors (pair-table hooks, contraction dispatch)
  must never perturb the interpreted paths.  The two hashes are stored
  *separately*: the threaded backend's block-split contractions may
  legally reassociate floating-point sums, so numpy == threaded bitwise
  is not asserted (only recorded).
* the ``numba`` leg (skip-marked where numba is absent) records its hash
  plus a measured relative-deviation band against numpy, and asserts the
  band stays within the documented JIT tolerance.

Golden hashes are keyed to a platform fingerprint (arch + numpy
version): on a different platform the recorded-hash comparison is
replaced by a run-to-run determinism assertion (two drains, identical
bytes).  Re-record with ``REPRO_GOLDEN_UPDATE=1``; a missing golden file
self-records on first run.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
from pathlib import Path

import numpy as np
import pytest

from repro.backend import NumbaBackend
from repro.core.maxwellian import maxwellian_rz
from repro.core.options import AssemblyOptions
from repro.serve import CollisionSolveService, ServeOptions, SolvePlan
from repro.serve.jobs import STATUS_OK

GOLDEN_PATH = Path(__file__).parent / "golden" / "serve_trace.json"

#: documented tolerance band for the numba leg's deviation from numpy
#: (Newton rtol=1e-9 dominates; the kernels themselves agree to ~1e-13)
NUMBA_BAND = 1e-8

needs_numba = pytest.mark.skipif(
    not NumbaBackend.available(),
    reason="numba is not installed in this container",
)


def _fingerprint() -> str:
    return f"{platform.machine()}:numpy-{np.__version__}"


def _load_golden() -> dict:
    if GOLDEN_PATH.exists():
        return json.loads(GOLDEN_PATH.read_text())
    return {}


def _store_golden(golden: dict) -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def workload(fs_q2):
    """Deterministic seeded drain workload: 8 perturbed Maxwellians."""
    rng = np.random.default_rng(20260808)
    states = []
    for _ in range(8):
        vth = 0.886 * rng.uniform(0.8, 1.1)
        drift = rng.uniform(-0.1, 0.1)
        states.append(
            fs_q2.interpolate(
                lambda r, z, v=vth, d=drift: maxwellian_rz(r, z - d, 1.0, v)
            )[None, :]
        )
    return states


def _drain(fs, species, states, backend_name):
    """Run the workload through a synchronous drain on one backend;
    returns (sha256 hex digest, stacked result states)."""
    plan = SolvePlan(
        fs=fs,
        species=species,
        dt=0.3,
        options=AssemblyOptions.from_env(
            backend=backend_name,
            num_threads=2 if backend_name != "numpy" else 0,
        ),
    )
    with CollisionSolveService(
        ServeOptions(executor="thread", num_shards=2, max_batch=4)
    ) as svc:
        results = svc.solve_many(plan, states)
    h = hashlib.sha256()
    out = []
    for r in results:
        assert r.status == STATUS_OK
        h.update(np.ascontiguousarray(r.state).tobytes())
        out.append(r.state)
    return h.hexdigest(), np.stack(out)


def _check_or_record(name: str, digest: str) -> None:
    """Compare against the recorded hash for this platform; self-record
    when missing or when REPRO_GOLDEN_UPDATE=1."""
    golden = _load_golden()
    fp = _fingerprint()
    entry = golden.get(name)
    update = os.environ.get("REPRO_GOLDEN_UPDATE", "0") not in ("0", "")
    if entry is None or entry.get("fingerprint") != fp or update:
        if entry is not None and entry.get("fingerprint") != fp and not update:
            # foreign platform: determinism was already asserted by the
            # caller; do not overwrite the recording platform's hash
            return
        golden[name] = {"fingerprint": fp, "sha256": digest}
        _store_golden(golden)
        return
    assert entry["sha256"] == digest, (
        f"golden serve trace for backend {name!r} changed on the recording "
        f"platform ({fp}); if intentional, re-record with "
        "REPRO_GOLDEN_UPDATE=1"
    )


class TestGoldenTrace:
    @pytest.mark.parametrize("name", ["numpy", "threaded"])
    def test_backend_trace_bitwise_stable(
        self, fs_q2, electron_species, workload, name
    ):
        d1, s1 = _drain(fs_q2, electron_species, workload, name)
        d2, s2 = _drain(fs_q2, electron_species, workload, name)
        # run-to-run determinism holds on every platform
        assert d1 == d2 and np.array_equal(s1, s2)
        _check_or_record(name, d1)

    @needs_numba
    def test_numba_trace_recorded_with_band(
        self, fs_q2, electron_species, workload
    ):
        """The numba leg pins its own hash and measures its deviation
        from numpy, which must stay inside the documented band."""
        d_ref, s_ref = _drain(fs_q2, electron_species, workload, "numpy")
        d1, s1 = _drain(fs_q2, electron_species, workload, "numba")
        d2, s2 = _drain(fs_q2, electron_species, workload, "numba")
        assert d1 == d2 and np.array_equal(s1, s2)
        band = float(
            np.abs(s1 - s_ref).max() / max(np.abs(s_ref).max(), 1e-300)
        )
        assert band <= NUMBA_BAND
        golden = _load_golden()
        fp = _fingerprint()
        entry = golden.get("numba")
        update = os.environ.get("REPRO_GOLDEN_UPDATE", "0") not in ("0", "")
        if entry is None or entry.get("fingerprint") != fp or update:
            if entry is None or entry.get("fingerprint") == fp or update:
                golden["numba"] = {
                    "fingerprint": fp,
                    "sha256": d1,
                    "band_vs_numpy": band,
                }
                _store_golden(golden)
            return
        assert entry["sha256"] == d1

    def test_golden_file_is_wellformed(self):
        golden = _load_golden()
        # the numpy/threaded entries exist after the suite has run once
        for name in ("numpy", "threaded"):
            if name in golden:
                assert set(golden[name]) >= {"fingerprint", "sha256"}
                assert len(golden[name]["sha256"]) == 64
