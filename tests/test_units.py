"""Unit system: Appendix A nondimensionalization round-trips and anchors."""

import math

import pytest

from repro import constants as c
from repro.units import DEFAULT_UNITS, UnitSystem


class TestAnchors:
    def test_v0_definition(self):
        u = UnitSystem(T0_ev=1000.0)
        expect = math.sqrt(8 * 1000.0 * c.EV / (math.pi * c.ELECTRON_MASS))
        assert u.v0 == pytest.approx(expect)

    def test_t0_makes_nu_ee_unity(self):
        """t0 is defined so the e-e collision frequency is 1 in code units:
        t0 * nu_phys(n0) with the paper's prefactor equals 1."""
        u = DEFAULT_UNITS
        nu = c.collision_frequency_prefactor() * u.n0 / u.v0**3
        assert nu * u.t0 == pytest.approx(1.0)

    def test_kT0(self):
        u = UnitSystem(T0_ev=500.0)
        assert u.kT0 == pytest.approx(500.0 * c.EV)
        # kT0 = (pi/8) m0 v0^2
        assert u.kT0 == pytest.approx(math.pi / 8 * c.ELECTRON_MASS * u.v0**2)

    def test_c_code_scaling(self):
        u1 = UnitSystem(T0_ev=1000.0)
        u2 = UnitSystem(T0_ev=4000.0)
        assert u1.c_code / u2.c_code == pytest.approx(2.0)

    def test_temperature_scaling_of_t0(self):
        """t0 ~ v0^3 ~ T^(3/2): hotter plasmas are less collisional."""
        u1 = UnitSystem(T0_ev=1000.0)
        u2 = UnitSystem(T0_ev=4000.0)
        assert u2.t0 / u1.t0 == pytest.approx(8.0)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "to_code,to_si",
        [
            ("velocity_to_code", "velocity_to_si"),
            ("time_to_code", "time_to_si"),
            ("efield_to_code", "efield_to_si"),
            ("resistivity_to_code", "resistivity_to_si"),
        ],
    )
    def test_inverse_pairs(self, to_code, to_si):
        u = DEFAULT_UNITS
        x = 123.456
        assert getattr(u, to_si)(getattr(u, to_code)(x)) == pytest.approx(x)

    def test_efield_acceleration_consistency(self):
        """eE/m_e in SI equals E~ * v0/t0 in code units."""
        u = DEFAULT_UNITS
        E_si = 100.0  # V/m
        a_si = c.ELECTRON_CHARGE * E_si / c.ELECTRON_MASS
        E_code = u.efield_to_code(E_si)
        assert E_code * u.v0 / u.t0 == pytest.approx(a_si)

    def test_resistivity_scale(self):
        """eta~ = eta_si * n0 e^2 t0 / m0."""
        u = DEFAULT_UNITS
        eta_si = 1e-7
        expect = eta_si * u.n0 * c.ELECTRON_CHARGE**2 * u.t0 / c.ELECTRON_MASS
        assert u.resistivity_to_code(eta_si) == pytest.approx(expect)


class TestConstants:
    def test_thermal_speed_validation(self):
        with pytest.raises(ValueError):
            c.thermal_speed(-1.0, c.ELECTRON_MASS)
        with pytest.raises(ValueError):
            c.thermal_speed(1.0, 0.0)

    def test_mass_ratios(self):
        assert c.DEUTERIUM_MASS_RATIO == pytest.approx(3670.5, rel=1e-3)
        assert c.PROTON_MASS_RATIO == pytest.approx(1836.15, rel=1e-4)
        assert c.TUNGSTEN_MASS_RATIO == pytest.approx(184 * 1836, rel=2e-2)
