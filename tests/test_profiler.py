"""Roofline profiler: Table IV quantities from counted work."""

import numpy as np
import pytest

from repro.gpu import Counters, V100, MI100, profile_kernel, roofline_report
from repro.gpu.device import DeviceSpec


def compute_bound_counters() -> Counters:
    """A kernel shaped like the Landau Jacobian: high AI, FMA-heavy."""
    return Counters(
        fma=int(6e7),
        mul=int(3e7),
        add=int(2e7),
        special=int(4e6),
        dram_read_bytes=int(1e7),
        dram_write_bytes=int(1e6),
        shared_read_bytes=int(4e7),
        shared_write_bytes=int(1e6),
        kernel_launches=1,
    )


def memory_bound_counters() -> Counters:
    """A kernel shaped like the mass/assembly pass: low AI, L1-heavy."""
    return Counters(
        fma=int(1e6),
        dram_read_bytes=int(3e6),
        dram_write_bytes=int(3e6),
        shared_read_bytes=int(6e7),
        atomic_adds=int(2e5),
        kernel_launches=1,
    )


class TestProfile:
    def test_compute_bound_identified(self):
        p = profile_kernel("jac", compute_bound_counters(), V100)
        assert p.bottleneck == "FP64 pipe"
        assert p.arithmetic_intensity > V100.roofline_knee
        assert 0.2 < p.roofline_fraction < 0.8

    def test_memory_bound_identified(self):
        p = profile_kernel("mass", memory_bound_counters(), V100)
        assert p.bottleneck == "L1 cache"
        assert p.arithmetic_intensity < V100.roofline_knee

    def test_time_components_positive(self):
        p = profile_kernel("jac", compute_bound_counters(), V100)
        assert p.time_s > 0
        assert p.t_compute > 0 and p.t_dram > 0

    def test_mi100_slower_normalized(self):
        """The same counted kernel runs slower on MI100 despite the higher
        peak (atomics + software efficiency), as the paper observed."""
        c = compute_bound_counters()
        c.atomic_adds = int(3e5)
        t_v = profile_kernel("jac", c, V100).time_s
        t_m = profile_kernel("jac", c, MI100).time_s
        assert t_m > t_v

    def test_pipe_utilization_bounded(self):
        p = profile_kernel("jac", compute_bound_counters(), V100)
        assert 0 < p.fp64_pipe_utilization <= V100.pipe_utilization + 1e-9

    def test_achieved_tflops_below_peak(self):
        p = profile_kernel("jac", compute_bound_counters(), V100)
        assert 0 < p.achieved_tflops < V100.peak_fp64_tflops

    def test_report_format(self):
        ps = [
            profile_kernel("Jacobian", compute_bound_counters(), V100),
            profile_kernel("Mass", memory_bound_counters(), V100),
        ]
        txt = roofline_report(ps)
        assert "Jacobian" in txt and "Mass" in txt
        assert "FP64 pipe" in txt and "L1 cache" in txt


class TestTable4EndToEnd:
    """The actual Table IV run: counted kernels on the 9-species problem."""

    @pytest.fixture(scope="class")
    def profiles(self):
        from repro.core.kernel_cuda import CudaLandauJacobian
        from repro.core.maxwellian import species_maxwellian
        from repro.gpu import CudaMachine
        from repro.perf.workload import build_paper_species
        from repro.amr import landau_mesh
        from repro.fem import FunctionSpace

        spc = build_paper_species()
        # a reduced (electron + D scale only) mesh keeps this test quick;
        # AI is insensitive to the cell count
        mesh = landau_mesh([spc[0].thermal_velocity, spc[1].thermal_velocity])
        fs = FunctionSpace(mesh, order=3)
        fields = [fs.interpolate(species_maxwellian(s)) for s in spc]
        mj = CudaMachine(V100)
        CudaLandauJacobian(fs, spc, machine=mj).build(fields)
        mm = CudaMachine(V100)
        CudaLandauJacobian(fs, spc, machine=mm).build_mass()
        return (
            profile_kernel("Jacobian", mj.counters, V100),
            profile_kernel("Mass", mm.counters, V100),
        )

    def test_jacobian_high_ai_compute_bound(self, profiles):
        """Paper: AI = 15.8, FP64-pipe bound."""
        pj, _ = profiles
        assert 10.0 <= pj.arithmetic_intensity <= 22.0
        assert pj.bottleneck == "FP64 pipe"

    def test_mass_low_ai_not_compute_bound(self, profiles):
        """Paper: AI = 1.8, L1-latency bound."""
        _, pm = profiles
        assert pm.arithmetic_intensity <= 4.0
        assert pm.bottleneck in ("L1 cache", "DRAM")

    def test_dfma_fraction_near_paper(self, profiles):
        """Paper: 64% of FP64 instructions were DFMA."""
        pj, _ = profiles
        assert 0.5 <= pj.counters.dfma_fraction <= 0.75

    def test_jacobian_roofline_fraction(self, profiles):
        """Paper: 53% of roofline; ours lands in the same regime."""
        pj, _ = profiles
        assert 0.25 <= pj.roofline_fraction <= 0.70
