"""Spitzer resistivity, runaway fields, the source, and the quench driver.

Heavy physics runs live in the benchmarks; here the model pieces are tested
on reduced configurations.
"""

import math

import numpy as np
import pytest

from repro import constants as c
from repro.quench import (
    ColdPlasmaSource,
    F_Z,
    connor_hastie_field_code,
    connor_hastie_field_si,
    dreicer_field_si,
    spitzer_eta_code,
    spitzer_eta_si,
    spitzer_table,
)
from repro.units import DEFAULT_UNITS, UnitSystem
from repro.core import SpeciesSet, deuterium, electron


class TestSpitzer:
    def test_F_Z_limits(self):
        """F(1) ~ 0.51; F -> 0.2948 as Z -> inf (Lorentz limit)."""
        assert F_Z(1.0) == pytest.approx(0.5128, abs=1e-3)
        assert F_Z(1e6) == pytest.approx(0.222 / 0.753, rel=1e-3)

    def test_eta_si_magnitude(self):
        """Z=1, T_e = 100 eV: eta ~ 5e-7 Ohm m (textbook value ~5.2e-7
        at ln(Lambda)=10)."""
        eta = spitzer_eta_si(100.0, 1.0)
        assert 3e-7 < eta < 8e-7

    def test_temperature_scaling(self):
        assert spitzer_eta_si(100.0, 1.0) / spitzer_eta_si(400.0, 1.0) == pytest.approx(
            8.0
        )

    def test_eta_code_independent_of_reference_T(self):
        """eta~ at T_e = T0 is a pure number independent of the anchor
        (the Coulomb log and density cancel)."""
        u1 = UnitSystem(T0_ev=1000.0)
        u2 = UnitSystem(T0_ev=250.0, n0=3e19)
        assert spitzer_eta_code(u1, 1.0, 1.0) == pytest.approx(
            spitzer_eta_code(u2, 1.0, 1.0), rel=1e-12
        )

    def test_eta_code_value(self):
        """The dimensionless Spitzer resistivity at T = T0, Z = 1 is
        ~1.108 (used as the Fig. 4 normalization)."""
        assert spitzer_eta_code(DEFAULT_UNITS, 1.0, 1.0) == pytest.approx(
            1.108, abs=0.01
        )

    def test_table(self):
        rows = spitzer_table(DEFAULT_UNITS, [1.0, 2.0, 4.0])
        assert len(rows) == 3
        assert rows[1]["eta_spitzer_code"] > rows[0]["eta_spitzer_code"]

    def test_invalid(self):
        with pytest.raises(ValueError):
            spitzer_eta_si(-1.0, 1.0)
        with pytest.raises(ValueError):
            F_Z(0.0)


class TestRunaway:
    def test_connor_hastie_magnitude(self):
        """n = 1e20: E_c ~ 0.1 V/m scale (standard tokamak number ~0.08)."""
        Ec = connor_hastie_field_si(1e20)
        assert 0.03 < Ec < 0.3

    def test_dreicer_much_larger(self):
        """E_D / E_c = c^2 / (kT/m) >> 1."""
        n = 1e20
        ratio = dreicer_field_si(n, 1000.0) / connor_hastie_field_si(n)
        expect = c.ELECTRON_MASS * c.SPEED_OF_LIGHT**2 / (1000.0 * c.EV)
        assert ratio == pytest.approx(expect, rel=1e-12)
        assert ratio > 100

    def test_code_units_scale_with_density(self):
        e1 = connor_hastie_field_code(DEFAULT_UNITS, 1.0)
        e2 = connor_hastie_field_code(DEFAULT_UNITS, 2.0)
        assert e2 == pytest.approx(2 * e1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            connor_hastie_field_si(-1.0)
        with pytest.raises(ValueError):
            dreicer_field_si(1e20, 0.0)


class TestSource:
    @pytest.fixture()
    def source(self):
        spc = SpeciesSet([electron(), deuterium()])
        return ColdPlasmaSource(spc, total_injected=5.0, duration=10.0)

    def test_rate_integrates_to_total(self, source):
        ts = np.linspace(0.0, 10.0, 4001)
        total = np.trapezoid([source.rate(t) for t in ts], ts)
        assert total == pytest.approx(5.0, rel=1e-5)

    def test_rate_zero_outside_pulse(self, source):
        assert source.rate(-0.1) == 0.0
        assert source.rate(10.1) == 0.0

    def test_injected_by_analytic(self, source):
        ts = np.linspace(0.0, 7.3, 2001)
        num = np.trapezoid([source.rate(t) for t in ts], ts)
        assert source.injected_by(7.3) == pytest.approx(num, rel=1e-4)
        assert source.injected_by(100.0) == pytest.approx(5.0)

    def test_shape_vectors_quasineutral(self, fs_q3):
        """Electron and Z * ion injection rates are charge balanced.

        Uses a light Z=2 'ion' so both cold Maxwellians are resolvable on
        the single-scale fixture mesh."""
        from repro.core.species import Species

        spc = SpeciesSet([electron(density=2.0), Species("He", 2.0, 4.0)])
        src = ColdPlasmaSource(spc, cold_temperature=0.5)
        shapes = src.shape_vectors(fs_q3)
        ones = np.ones(fs_q3.ndofs)
        n_e_rate = ones @ shapes[0]
        n_i_rate = ones @ shapes[1]
        assert spc[1].charge * n_i_rate == pytest.approx(n_e_rate, rel=5e-2)


class TestResistivityMeasurement:
    def test_deuterium_converges_near_spitzer(self):
        """Section IV-B / Appendix B: the FP-Landau resistivity lands about
        1% below Spitzer (we assert within 5% on this moderate run)."""
        from repro.quench import measure_resistivity

        res = measure_resistivity(
            Z=1.0, dt=0.5, max_steps=30, settle_tol=0.005, order=3
        )
        assert res["J"] > 0
        assert 0.90 <= res["ratio"] <= 1.08
