"""Ensemble subsystem: sampling determinism, streaming UQ estimators,
and the checkpointed campaign driver over the serve tier.

The two load-bearing guarantees exercised here:

* **bitwise reproducibility** — a seeded campaign produces identical
  member states regardless of scenario submission order or executor
  type (per-member spawned RNG streams + lock-step canonical rounds);
* **resume correctness** — a killed campaign re-run against its ledger
  re-executes only unfinished work (``rerun_overlap == 0``) and lands on
  bitwise-identical final states.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest

from repro.ensemble import (
    CampaignDriver,
    CampaignOptions,
    EnsembleAccumulator,
    GaussianRandomField1D,
    LEDGER_NAME,
    P2Quantile,
    ScalarReservoir,
    ScenarioDesign,
    StreamingMoments,
    bootstrap_ci,
    campaign_report,
    distribution_table,
    member_seed_sequences,
    oat_sensitivity,
    sample_scenarios,
    write_campaign_json,
)
from repro.ensemble.campaign import _MemberRun
from repro.report import serve_summary
from repro.serve.service import CollisionSolveService, ServeOptions

# test-sized campaign: tiny mesh, few steps, early quench threshold so
# the crossing lands inside the truncated trace
FAST = dict(
    dt=0.5,
    max_steps=6,
    post_steps=2,
    order=2,
    mesh_kwargs={"h_factor": 1.6},
    quench_threshold=0.8,
)


def fast_options(**overrides) -> CampaignOptions:
    return CampaignOptions(**{**FAST, **overrides})


# ----------------------------------------------------------------------
# sampling


class TestSampling:
    def test_design_validation_names_field(self):
        with pytest.raises(ValueError, match=r"ScenarioDesign\.members"):
            ScenarioDesign(members=0)
        with pytest.raises(ValueError, match=r"ScenarioDesign\.design"):
            ScenarioDesign(design="sobol")
        with pytest.raises(ValueError, match=r"ScenarioDesign\.Z_choices"):
            ScenarioDesign(Z_choices=(0.5,))
        with pytest.raises(ValueError, match=r"ScenarioDesign\.cold_temperature"):
            ScenarioDesign(cold_temperature=(0.3, 0.1))
        with pytest.raises(ValueError, match=r"ScenarioDesign\.kl_sigma_density"):
            ScenarioDesign(kl_sigma_density=-0.1)

    def test_sampling_is_deterministic(self):
        d = ScenarioDesign(members=8, seed=42)
        a = sample_scenarios(d)
        b = sample_scenarios(d)
        assert [s.member_key for s in a] == [s.member_key for s in b]
        assert [s.inputs for s in a] == [s.inputs for s in b]
        # a different seed moves every member
        c = sample_scenarios(ScenarioDesign(members=8, seed=43))
        assert {s.member_key for s in a}.isdisjoint(s.member_key for s in c)

    def test_member_keys_distinct(self):
        keys = {s.member_key for s in sample_scenarios(ScenarioDesign(members=16))}
        assert len(keys) == 16

    def test_mc_member_draws_independent_of_member_count(self):
        # a member's stream is a pure function of (seed, index): growing
        # the "mc" ensemble must not move the existing members
        a = sample_scenarios(ScenarioDesign(members=4, design="mc", seed=3))
        b = sample_scenarios(ScenarioDesign(members=8, design="mc", seed=3))
        assert [s.inputs for s in a] == [s.inputs for s in b[:4]]

    def test_lhs_stratification(self):
        d = ScenarioDesign(members=8, seed=11)
        scenarios = sample_scenarios(d)
        for name in (
            "E0_over_Ec",
            "injection_total",
            "injection_duration",
            "cold_temperature",
        ):
            lo, hi = getattr(d, name)
            bins = {
                min(int((s.inputs[name] - lo) / (hi - lo) * d.members), d.members - 1)
                for s in scenarios
            }
            assert bins == set(range(d.members)), name
        # the discrete Z column is stratified too: 8 members, 2 charges
        zs = [s.inputs["Z"] for s in scenarios]
        assert zs.count(1.0) == 4 and zs.count(2.0) == 4

    def test_seed_sequences_spawned_per_member(self):
        d = ScenarioDesign(members=5, seed=9)
        design_child, members = member_seed_sequences(d)
        assert len(members) == 5
        states = {tuple(m.generate_state(4)) for m in members}
        states.add(tuple(design_child.generate_state(4)))
        assert len(states) == 6  # all streams distinct

    def test_scenario_params_are_valid_and_in_range(self):
        d = ScenarioDesign(members=8, seed=1)
        for s in sample_scenarios(d):
            p = s.params
            assert p.Z in d.Z_choices
            assert d.E0_over_Ec[0] <= p.E0_over_Ec <= d.E0_over_Ec[1]
            assert p.density_factor > 0 and p.temperature_factor > 0
            assert 0.0 <= p.runaway_seed_fraction < 1.0


class TestGaussianRandomField:
    def test_eigenvalues_nonnegative_descending(self):
        g = GaussianRandomField1D(modes=6, length=0.25)
        lam = g.eigenvalues
        assert np.all(lam >= 0.0)
        assert np.all(np.diff(lam) <= 1e-12)

    def test_realization_shape_guard(self):
        g = GaussianRandomField1D(modes=4)
        with pytest.raises(ValueError):
            g.realize(np.zeros(3))

    def test_midpoint_variance_matches_kl_truncation(self):
        # Var[xi(x0)] = sum_k lambda_k phi_k(x0)^2 for the truncated KL
        g = GaussianRandomField1D(modes=4, length=0.3)
        mid = len(g.x) // 2
        expected = float(
            np.sum(g.eigenvalues * g.modes_on_grid[mid, :] ** 2)
        )
        rng = np.random.default_rng(0)
        samples = [
            g.midpoint(rng.standard_normal(4)) for _ in range(4000)
        ]
        assert np.var(samples) == pytest.approx(expected, rel=0.1)
        # and the truncation can't exceed the full marginal variance C(x,x)=1
        assert expected <= 1.0 + 1e-12

    def test_ctor_guards(self):
        with pytest.raises(ValueError):
            GaussianRandomField1D(modes=0)
        with pytest.raises(ValueError):
            GaussianRandomField1D(length=0.0)
        with pytest.raises(ValueError):
            GaussianRandomField1D(modes=8, grid=4)


# ----------------------------------------------------------------------
# streaming statistics


class TestStreamingStatistics:
    def test_welford_matches_numpy(self):
        rng = np.random.default_rng(5)
        xs = rng.normal(3.0, 2.0, size=257)
        m = StreamingMoments()
        for x in xs:
            m.add(x)
        assert m.count == 257
        assert m.mean == pytest.approx(float(np.mean(xs)), rel=1e-12)
        assert m.variance == pytest.approx(float(np.var(xs, ddof=1)), rel=1e-12)

    def test_welford_skips_nonfinite(self):
        m = StreamingMoments()
        for x in (1.0, float("nan"), 2.0, float("inf")):
            m.add(x)
        assert m.count == 2 and m.mean == pytest.approx(1.5)

    def test_p2_quantile_close_to_exact(self):
        rng = np.random.default_rng(17)
        xs = rng.normal(size=2000)
        for p in (0.05, 0.5, 0.95):
            est = P2Quantile(p)
            for x in xs:
                est.add(x)
            assert est.value == pytest.approx(
                float(np.quantile(xs, p)), abs=0.08
            )

    def test_p2_exact_fallback_below_five_samples(self):
        est = P2Quantile(0.5)
        assert np.isnan(est.value)
        for x in (3.0, 1.0, 2.0):
            est.add(x)
        assert est.value == pytest.approx(2.0)

    def test_p2_guard(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_reservoir_cap_and_dropped(self):
        r = ScalarReservoir(cap=4)
        for x in range(10):
            r.add(float(x))
        assert len(r.values) == 4 and r.dropped == 6 and r.seen == 10
        assert r.quantile(0.0) == 0.0

    def test_bootstrap_ci_deterministic_and_brackets_mean(self):
        rng = np.random.default_rng(2)
        xs = rng.normal(10.0, 1.0, size=64)
        a = bootstrap_ci(xs, n_boot=200, seed=7)
        b = bootstrap_ci(xs, n_boot=200, seed=7)
        assert a == b
        assert a[0] < float(np.mean(xs)) < a[1]
        assert bootstrap_ci([5.0]) == (5.0, 5.0)
        lo, hi = bootstrap_ci([])
        assert np.isnan(lo) and np.isnan(hi)

    def test_accumulator_summary(self):
        acc = EnsembleAccumulator("q", seed=3)
        for x in (1.0, 2.0, 3.0, 4.0, float("nan")):
            acc.add(x)
        s = acc.summary(n_boot=100)
        assert s["count"] == 4 and s["skipped"] == 1
        assert s["mean"] == pytest.approx(2.5)
        assert s["q50"] == pytest.approx(2.5)
        assert s["ci95_mean"][0] <= s["mean"] <= s["ci95_mean"][1]

    def test_oat_sensitivity_finds_the_driving_input(self):
        rng = np.random.default_rng(4)
        n = 64
        x1 = rng.uniform(0, 1, n)
        x2 = rng.uniform(0, 1, n)
        y = 5.0 * x1 + 0.1 * rng.normal(size=n)
        inputs = [{"x1": float(a), "x2": float(b)} for a, b in zip(x1, x2)]
        s = oat_sensitivity(inputs, list(y))
        assert s["x1"] > 0.6
        assert s["x2"] < s["x1"] / 2
        # degenerate cases: constant output or too few members -> empty
        assert oat_sensitivity(inputs, [1.0] * n) == {}
        assert oat_sensitivity(inputs[:3], list(y[:3])) == {}


# ----------------------------------------------------------------------
# campaign driver


def run_small_campaign(scenarios=None, checkpoint_dir=None, **opt_overrides):
    design = ScenarioDesign(members=4, seed=7)
    options = fast_options(checkpoint_dir=checkpoint_dir, **opt_overrides)
    driver = CampaignDriver(design, options, scenarios=scenarios)
    results = driver.run()
    return driver, results


class TestCampaignOptions:
    @pytest.mark.parametrize(
        "kwargs,needle",
        [
            (dict(dt=0.0), r"CampaignOptions\.dt"),
            (dict(max_steps=0), r"CampaignOptions\.max_steps"),
            (dict(post_steps=-1), r"CampaignOptions\.post_steps"),
            (dict(quench_threshold=1.5), r"CampaignOptions\.quench_threshold"),
            (dict(max_inflight=0), r"CampaignOptions\.max_inflight"),
            (dict(max_retries=-1), r"CampaignOptions\.max_retries"),
            (dict(seed_velocity_factor=0.0), r"CampaignOptions\.seed_velocity_factor"),
        ],
    )
    def test_validation_names_field(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            CampaignOptions(**kwargs)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENSEMBLE_DT", "0.25")
        monkeypatch.setenv("REPRO_ENSEMBLE_MAX_STEPS", "12")
        monkeypatch.setenv("REPRO_ENSEMBLE_CHECKPOINT_DIR", "/tmp/led")
        monkeypatch.setenv("REPRO_ENSEMBLE_MAX_INFLIGHT", "3")
        o = CampaignOptions.from_env()
        assert o.dt == 0.25 and o.max_steps == 12
        assert o.checkpoint_dir == "/tmp/led" and o.max_inflight == 3
        # explicit overrides beat the environment
        assert CampaignOptions.from_env(dt=1.0).dt == 1.0


class TestCampaignDriver:
    def test_rejects_started_service(self):
        svc = CollisionSolveService(ServeOptions(num_shards=1))
        svc.start()
        try:
            with pytest.raises(ValueError, match="non-started"):
                CampaignDriver(
                    ScenarioDesign(members=2), fast_options(), service=svc
                )
        finally:
            svc.close()

    def test_rejects_scenario_count_mismatch(self):
        d = ScenarioDesign(members=4)
        scenarios = sample_scenarios(d)[:2]
        with pytest.raises(ValueError, match="scenario count"):
            CampaignDriver(d, fast_options(), scenarios=scenarios)

    def test_campaign_completes_with_physical_outputs(self):
        driver, results = run_small_campaign()
        assert len(results) == 4
        assert all(r.status == "ok" for r in results)
        for r in results:
            # injection + collisions cool the bulk and leave a hot tail
            assert 0.0 < r.T_e_final < 1.5
            assert r.n_e_final > r.inputs["density_factor"] * 0.9
            assert r.eta_post > 0.0
            assert 0.0 <= r.runaway_fraction < 0.5
            assert len(r.state_sha256) == 64
        snap = driver.snapshot()
        assert snap["members"]["completed"] == 4
        assert snap["members"]["failed"] == 0
        assert snap["jobs"]["ok"] == snap["jobs"]["submitted"]
        assert snap["jobs"]["rerun_overlap"] == 0

    def test_shuffled_submission_is_bitwise_identical(self):
        """Satellite regression: member results must not depend on the
        order scenarios are handed to the campaign."""
        design = ScenarioDesign(members=4, seed=7)
        scenarios = sample_scenarios(design)
        shuffled = [scenarios[i] for i in (2, 0, 3, 1)]
        _, a = run_small_campaign(scenarios=scenarios)
        _, b = run_small_campaign(scenarios=shuffled)
        assert [r.state_sha256 for r in a] == [r.state_sha256 for r in b]
        # json round-trip so NaN quench times compare equal
        assert [json.dumps(r.to_dict(), sort_keys=True) for r in a] == [
            json.dumps(r.to_dict(), sort_keys=True) for r in b
        ]

    def test_max_inflight_is_part_of_determinism_envelope(self):
        # chunking changes batch composition and therefore BLAS reduction
        # order: not bitwise, but agreement to solver tolerance — and any
        # FIXED max_inflight is bitwise-reproducible (the shuffled test
        # covers order independence at fixed chunking)
        _, a = run_small_campaign(max_inflight=1)
        _, b = run_small_campaign(max_inflight=64)
        _, c = run_small_campaign(max_inflight=1)
        assert [r.state_sha256 for r in a] == [r.state_sha256 for r in c]
        for ra, rb in zip(a, b):
            assert ra.T_e_final == pytest.approx(rb.T_e_final, rel=1e-9)
            assert ra.eta_post == pytest.approx(rb.eta_post, rel=1e-9)

    def test_plan_cache_shared_across_members(self):
        svc = CollisionSolveService(ServeOptions(num_shards=2, max_batch=32))
        design = ScenarioDesign(members=4, seed=7)
        driver = CampaignDriver(design, fast_options(), service=svc)
        try:
            driver.run()
            pc = svc.snapshot()["plan_cache"]
            # 4 members but only 2 charge states: at most one cold plan
            # load per (shard, Z); every later batch is a warm-cache hit
            # (hits/misses count per-batch plan lookups, not per-job)
            n_z = len({s.params.Z for s in driver.scenarios})
            assert n_z == 2
            assert pc["misses"] <= 2 * n_z
            assert pc["hits"] > pc["misses"]
            assert pc["hit_rate"] > 0.5
        finally:
            svc.close()

    def test_tag_counters_and_campaign_rollup_in_serve_summary(self):
        svc = CollisionSolveService(ServeOptions(num_shards=2, max_batch=32))
        design = ScenarioDesign(members=4, seed=7)
        driver = CampaignDriver(design, fast_options(), service=svc)
        try:
            driver.run()
            snap = svc.snapshot()
            by_tag = snap["jobs"]["by_tag"]
            assert len(by_tag) == 4  # one tag per member
            assert all(t.startswith("ensemble:") for t in by_tag)
            assert sum(c["ok"] for c in by_tag.values()) == driver.jobs["ok"]
            text = serve_summary(snap, campaign=driver.snapshot())
            assert "ensemble campaign: ensemble" in text
            assert "jobs by tag" in text
        finally:
            svc.close()

    def test_statistics_and_report(self, tmp_path):
        driver, results = run_small_campaign()
        stats = driver.statistics(n_boot=100)
        dists = stats["distributions"]
        assert set(dists) == {
            "quench_time",
            "T_e_final",
            "eta_post",
            "runaway_fraction",
        }
        finite_qt = sum(
            1 for r in results if np.isfinite(r.quench_time)
        )
        assert dists["quench_time"]["count"] == finite_qt
        assert dists["eta_post"]["count"] == 4
        text = campaign_report(driver.snapshot(), stats)
        assert "ensemble distributions" in text
        assert "eta_post" in text
        assert distribution_table(stats).count("\n") >= 4
        path = write_campaign_json(
            str(tmp_path / "BENCH_ensemble.json"), driver.snapshot(), stats
        )
        payload = json.loads(open(path).read())
        assert payload["benchmark"] == "ensemble"
        assert payload["campaign"]["members"]["completed"] == 4
        assert "q50" in payload["statistics"]["distributions"]["eta_post"]

    def test_statistics_reproducible_across_runs(self):
        a = run_small_campaign()[0].statistics(n_boot=100)
        b = run_small_campaign()[0].statistics(n_boot=100)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestCampaignResume:
    def test_resume_after_partial_run_has_zero_overlap(self, tmp_path):
        design = ScenarioDesign(members=4, seed=7)
        ckpt = str(tmp_path / "camp")

        # the uninterrupted reference
        _, ref = run_small_campaign()

        # partial incarnation: three lock-step rounds, ledger, "crash"
        d1 = CampaignDriver(design, fast_options(checkpoint_dir=ckpt))
        for sc in sorted(d1.scenarios, key=lambda s: s.member_key):
            d1.active[sc.member_key] = _MemberRun(sc, d1)
        for _ in range(3):
            d1._round()
        d1.write_ledger()
        d1.service.close()
        assert os.path.exists(os.path.join(ckpt, LEDGER_NAME))

        # resumed incarnation
        d2 = CampaignDriver(design, fast_options(checkpoint_dir=ckpt))
        results = d2.run(resume=True)
        assert d2.rerun_overlap == 0
        assert d2.resumed_members == 4
        assert all(r.status == "ok" for r in results)
        # bitwise identical to the never-interrupted campaign
        assert [r.state_sha256 for r in results] == [
            r.state_sha256 for r in ref
        ]
        assert [json.dumps(r.to_dict(), sort_keys=True) for r in results] == [
            json.dumps(r.to_dict(), sort_keys=True) for r in ref
        ]

    def test_resume_requires_matching_fingerprint(self, tmp_path):
        from repro.resilience.checkpoint import CheckpointError

        ckpt = str(tmp_path / "camp")
        design = ScenarioDesign(members=2, seed=1)
        d1 = CampaignDriver(design, fast_options(checkpoint_dir=ckpt))
        d1.write_ledger()
        d1.service.close()
        other = CampaignDriver(
            ScenarioDesign(members=2, seed=2),
            fast_options(checkpoint_dir=ckpt),
        )
        try:
            with pytest.raises(CheckpointError, match="different design"):
                other.run(resume=True)
        finally:
            other.service.close()

    def test_resume_without_ledger_raises(self, tmp_path):
        from repro.resilience.checkpoint import CheckpointError

        d = CampaignDriver(
            ScenarioDesign(members=2, seed=1),
            fast_options(checkpoint_dir=str(tmp_path / "nope")),
        )
        try:
            with pytest.raises(CheckpointError, match="no campaign ledger"):
                d.run(resume=True)
        finally:
            d.service.close()


# ----------------------------------------------------------------------
# kill/resume smoke (the chaos-harness pattern: a real SIGKILL)

KILL_DESIGN = dict(members=6, seed=13)
KILL_OPTS = dict(
    dt=0.5,
    max_steps=12,
    post_steps=2,
    order=2,
    mesh_kwargs={"h_factor": 1.6},
    quench_threshold=0.8,
)


def _campaign_child(ckpt_dir: str) -> None:
    driver = CampaignDriver(
        ScenarioDesign(**KILL_DESIGN),
        CampaignOptions(checkpoint_dir=ckpt_dir, **KILL_OPTS),
    )
    driver.run()


class TestKillResumeSmoke:
    def test_sigkilled_campaign_resumes_cleanly(self, tmp_path):
        ckpt = str(tmp_path / "camp")
        ledger = os.path.join(ckpt, LEDGER_NAME)
        ctx = mp.get_context("spawn")
        proc = ctx.Process(target=_campaign_child, args=(ckpt,))
        proc.start()
        deadline = time.monotonic() + 60.0
        while not os.path.exists(ledger) and time.monotonic() < deadline:
            if not proc.is_alive():
                break
            time.sleep(0.05)
        if proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=30.0)
        assert os.path.exists(ledger), "child never wrote a ledger"

        driver = CampaignDriver(
            ScenarioDesign(**KILL_DESIGN),
            CampaignOptions(checkpoint_dir=ckpt, **KILL_OPTS),
        )
        results = driver.run(resume=True)
        assert len(results) == KILL_DESIGN["members"]
        assert all(r.status == "ok" for r in results)
        # the RPROCKSUM1 ledger is authoritative: no executed job is repeated
        assert driver.rerun_overlap == 0
        assert driver.snapshot()["members"]["pending"] == 0
