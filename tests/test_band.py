"""The custom RCM band LU solver (section III-G)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.band import (
    BandMatrix,
    BandSolver,
    BlockDiagonalBandSolver,
    band_factor,
    band_solve,
    bandwidth,
    rcm_permutation,
)


def random_banded(n: int, B: int, seed: int = 0) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    A = sp.lil_matrix((n, n))
    for i in range(n):
        for j in range(max(0, i - B), min(n, i + B + 1)):
            if rng.random() < 0.7 or i == j:
                A[i, j] = rng.normal()
    A = A.tocsr()
    return (A + A.T + sp.eye(n) * (2 * B + 5)).tocsr()


class TestBandStorage:
    def test_roundtrip(self):
        A = random_banded(20, 3)
        bm = BandMatrix.from_sparse(A)
        assert np.allclose(bm.to_dense(), A.toarray())

    def test_bandwidth(self):
        A = random_banded(20, 3)
        assert bandwidth(A) <= 3

    def test_outside_band_raises(self):
        A = sp.csr_matrix(np.eye(5))
        A = A.tolil()
        A[0, 4] = 1.0
        with pytest.raises(ValueError):
            BandMatrix.from_sparse(A.tocsr(), B=2)

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            BandMatrix.from_sparse(sp.csr_matrix(np.ones((2, 3))))


class TestFactorization:
    def test_matches_dense_lu(self):
        A = random_banded(25, 4, seed=1)
        bm = band_factor(BandMatrix.from_sparse(A))
        # reconstruct L and U from the band storage and compare products
        n, B = bm.n, bm.B
        dense = bm.to_dense()
        L = np.tril(dense, -1) + np.eye(n)
        U = np.triu(dense)
        assert np.allclose(L @ U, A.toarray(), atol=1e-10)

    def test_flop_counter(self):
        A = random_banded(30, 3, seed=2)
        counter: dict = {}
        band_factor(BandMatrix.from_sparse(A), counter)
        # 2 n B^2-ish
        assert 0 < counter["flops"] < 4 * 30 * 9 + 30 * 3 + 100

    def test_zero_pivot_raises(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ZeroDivisionError):
            band_factor(BandMatrix.from_sparse(A))

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=40),
        B=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_solve_property(self, n, B, seed):
        """A x = b round-trips for random diagonally dominant band systems."""
        A = random_banded(n, min(B, n - 1), seed=seed)
        rng = np.random.default_rng(seed + 1)
        x_true = rng.normal(size=n)
        b = A @ x_true
        bm = band_factor(BandMatrix.from_sparse(A))
        x = band_solve(bm, b)
        assert np.allclose(x, x_true, atol=1e-8)

    def test_rhs_size_checked(self):
        A = random_banded(10, 2)
        bm = band_factor(BandMatrix.from_sparse(A))
        with pytest.raises(ValueError):
            band_solve(bm, np.ones(5))


class TestRcmSolver:
    def test_rcm_reduces_bandwidth(self):
        rng = np.random.default_rng(4)
        n = 60
        perm0 = rng.permutation(n)
        A = random_banded(n, 2, seed=4)
        A_scrambled = A[perm0][:, perm0]
        p = rcm_permutation(A_scrambled)
        Ap = A_scrambled[p][:, p]
        assert bandwidth(Ap) < bandwidth(A_scrambled)

    def test_solver_correct(self):
        A = random_banded(80, 5, seed=6)
        rng = np.random.default_rng(7)
        perm = rng.permutation(80)
        A = A[perm][:, perm]
        b = rng.normal(size=80)
        x = BandSolver(A)(b)
        assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-10

    def test_on_landau_system(self, electron_operator, electron_maxwellian):
        """The band solver solves the real implicit Landau system."""
        op = electron_operator
        L = op.jacobian([electron_maxwellian])[0]
        A = (op.mass_matrix - 0.1 * L).tocsr()
        rng = np.random.default_rng(8)
        b = rng.normal(size=A.shape[0])
        x = BandSolver(A)(b)
        assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-9


class TestBlockDiagonal:
    def test_discovers_species_blocks(self):
        A = random_banded(30, 3, seed=9)
        big = sp.block_diag([A, 2.0 * A, 0.5 * A]).tocsr()
        solver = BlockDiagonalBandSolver(big)
        assert solver.nblocks == 3

    def test_solution_matches_monolithic(self):
        A = random_banded(25, 3, seed=10)
        big = sp.block_diag([A, 3.0 * A]).tocsr()
        rng = np.random.default_rng(11)
        b = rng.normal(size=50)
        x = BlockDiagonalBandSolver(big)(b)
        assert np.linalg.norm(big @ x - b) / np.linalg.norm(b) < 1e-10


class TestFactorMany:
    """Batched factorization against one shared symbolic setup (the
    batched-vertex / serve hot path)."""

    def _batch(self, n=40, B=3, X=5, seed=12):
        A = random_banded(n, B, seed=seed)
        rng = np.random.default_rng(seed + 1)
        data = np.stack(
            [A.data + 0.05 * rng.normal(size=A.nnz) for _ in range(X)]
        )
        # keep every member diagonally dominant like the template
        return A, data

    def test_matches_per_matrix_solves(self):
        from repro.sparse.band import CachedBandSolverFactory

        A, data = self._batch()
        factory = CachedBandSolverFactory()
        solver = factory.factor_batch(A, data)
        rng = np.random.default_rng(13)
        rhs = rng.normal(size=(data.shape[0], A.shape[0]))
        x = solver.solve_many(rhs)
        for k in range(data.shape[0]):
            Ak = sp.csr_matrix((data[k], A.indices, A.indptr), shape=A.shape)
            r = np.linalg.norm(Ak @ x[k] - rhs[k]) / np.linalg.norm(rhs[k])
            assert r < 1e-10
            xk = solver.solve(k, rhs[k])
            np.testing.assert_array_equal(xk, x[k])

    def test_one_symbolic_setup_per_pattern(self):
        from repro.sparse.band import CachedBandSolverFactory

        A, data = self._batch(X=6)
        factory = CachedBandSolverFactory()
        factory.factor_batch(A, data)
        assert factory.symbolic_setups == 1
        assert factory.symbolic_reuses == 5  # X - 1 within the batch
        factory.factor_batch(A, data)  # second batch reuses across calls
        assert factory.symbolic_setups == 1
        assert factory.symbolic_reuses == 11

    def test_nnz_mismatch_rejected(self):
        from repro.sparse.band import CachedBandSolverFactory

        A, data = self._batch()
        with pytest.raises(ValueError):
            CachedBandSolverFactory().factor_batch(A, data[:, :-1])
