"""JIT warmup protocol: compile time stays out of timed/deadline paths.

The numba backend pays a multi-second compilation cost on first call.
Three layers keep that cost off the clocks the supervisor watches:

* every backend exposes an idempotent :meth:`warmup` and the
  :class:`NumbaBackend` compiles its kernel suite there, at
  construction, before the backend is handed to anything timed;
* :class:`PlanRuntime` re-invokes ``warmup()`` during construction and
  records the seconds as ``warmup_s``;
* the process-executor service issues an explicit *warm* RPC per
  (worker incarnation, plan) under the separate ``warm_deadline_s``
  budget (untimed by default) before the first batch, so the per-batch
  ``batch_deadline_s`` never sees plan build + compile time and cold
  workers cannot raise spurious ``WorkerHang``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.backend import NumbaBackend, NumpyBackend, ThreadedBackend
from repro.core.maxwellian import maxwellian_rz
from repro.resilience.supervisor import SupervisorOptions
from repro.serve import CollisionSolveService, ServeOptions, SolvePlan
from repro.serve.jobs import STATUS_OK
from repro.serve.plan import PlanRuntime
from repro.serve.shard import ShardWorker

needs_numba = pytest.mark.skipif(
    not NumbaBackend.available(),
    reason="numba is not installed in this container",
)


@pytest.fixture
def plan(fs_q2, electron_species):
    return SolvePlan(fs=fs_q2, species=electron_species, dt=0.3)


@pytest.fixture(scope="module")
def states(request):
    fs = request.getfixturevalue("fs_q2")
    rng = np.random.default_rng(77)
    out = []
    for _ in range(8):
        vth = 0.886 * rng.uniform(0.8, 1.1)
        out.append(
            fs.interpolate(
                lambda r, z, v=vth: maxwellian_rz(r, z, 1.0, v)
            )[None, :]
        )
    return out


class TestBackendWarmup:
    @pytest.mark.parametrize("cls", [NumpyBackend, ThreadedBackend])
    def test_interpreted_warmup_is_free_and_idempotent(self, cls):
        be = cls()
        assert be.warmup() == 0.0
        assert be.warmed
        assert be.warmup() == 0.0  # second call is a no-op

    @needs_numba
    def test_numba_backend_warm_at_construction(self):
        """With REPRO_NUMBA_WARMUP on (the default) the backend compiles
        its kernels in __init__ — nothing timed ever sees a cold call."""
        be = NumbaBackend(num_threads=2)
        assert be.warmed
        assert be.warmup() == 0.0  # already compiled


class TestPlanRuntimeWarmup:
    def test_runtime_records_warmup_seconds(self, plan):
        rt = PlanRuntime(plan)
        assert rt.warmup_s >= 0.0
        assert rt.op.backend.warmed
        # construction already warmed the backend; re-warm is free
        assert rt.warmup() == 0.0

    def test_shard_worker_counts_warm_calls(self, plan, states):
        w = ShardWorker(shard_id=0)
        from repro.serve.jobs import SolveJob

        w.execute_batch(
            [SolveJob(job_id="j0", plan=plan, state=states[0])]
        )
        spent = w.warm_plan(plan)
        assert spent >= 0.0
        assert w.warm_calls == 1
        snap = w.snapshot()
        assert snap["warm_calls"] == 1
        assert snap["warm_seconds"] >= 0.0


class TestWarmDeadlineOptions:
    def test_negative_warm_deadline_rejected(self):
        with pytest.raises(ValueError, match="warm_deadline_s"):
            SupervisorOptions(warm_deadline_s=-1.0)

    def test_default_is_untimed(self):
        assert SupervisorOptions().warm_deadline_s == 0.0

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WARM_DEADLINE_S", "2.5")
        assert SupervisorOptions.from_env().warm_deadline_s == 2.5


class TestColdWorkerDeadlines:
    """Per-batch deadlines must not count first-call plan build/compile:
    the warm RPC pays it before the batch clock starts."""

    def test_cold_worker_batch_deadline_not_charged_for_warmup(
        self, plan, states
    ):
        # a deadline generous for *warm* execution; the worker is cold
        # (fresh process, no published plan) when the first batch lands
        sup = SupervisorOptions(batch_deadline_s=30.0)
        with CollisionSolveService(
            ServeOptions(
                executor="process",
                num_shards=1,
                max_batch=4,
                supervision=sup,
            )
        ) as svc:
            res = svc.solve_many(plan, states[:4])
            assert all(r.status == STATUS_OK for r in res)
            snap = svc.snapshot()
            shard0 = snap["shards"][0]
            # the warm RPC ran exactly once for the one plan...
            assert shard0["warm_calls"] == 1
            assert svc._warmed_plans[0] == {plan.key}
            # ...and no batch tripped the deadline or killed the worker
            assert shard0["deadline_timeouts"] == 0
            assert snap["jobs"]["worker_restarts"] == 0

    def test_restart_invalidates_warmed_set(self, plan, states):
        with CollisionSolveService(
            ServeOptions(executor="process", num_shards=1, max_batch=4)
        ) as svc:
            svc.solve_many(plan, states[:2])
            assert svc._warmed_plans[0] == {plan.key}
            with pytest.raises(Exception):
                svc._pools[0].submit(os._exit, 1).result()
            # the healed worker is cold again: the next drain must
            # re-publish AND re-warm before its first timed batch
            res = svc.solve_many(plan, states[2:6])
            assert all(r.status == STATUS_OK for r in res)
            assert svc._warmed_plans[0] == {plan.key}
            shard0 = svc.snapshot()["shards"][0]
            # worker-side counter reset with the process, then the
            # re-warm on the fresh incarnation brought it back to 1
            assert shard0["warm_calls"] == 1

    def test_warm_deadline_zero_means_no_clock(self, plan, states):
        """warm_deadline_s=0 (default) never times the warm call."""
        with CollisionSolveService(
            ServeOptions(
                executor="process",
                num_shards=1,
                max_batch=4,
                supervision=SupervisorOptions(warm_deadline_s=0.0),
            )
        ) as svc:
            res = svc.solve_many(plan, states[:2])
            assert all(r.status == STATUS_OK for r in res)
            assert svc.snapshot()["shards"][0]["warm_calls"] == 1
