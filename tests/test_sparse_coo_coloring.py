"""COO assembly path and graph-coloring assembly plan (section III-F)."""

import numpy as np
import pytest

from repro.sparse import CooAssembler, color_elements, colored_assembly_plan
from repro.sparse.coloring import verify_coloring


class TestCoo:
    def test_reduce_by_key(self):
        coo = CooAssembler(3, np.array([0, 0, 1]), np.array([1, 1, 2]))
        A = coo.assemble(np.array([1.0, 2.0, 5.0]))
        assert A[0, 1] == pytest.approx(3.0)
        assert A[1, 2] == pytest.approx(5.0)
        assert coo.nnz == 2
        assert coo.ncontrib == 3

    def test_repeated_assembly_independent(self):
        coo = CooAssembler(2, np.array([0, 1]), np.array([0, 1]))
        A1 = coo.assemble(np.array([1.0, 2.0]))
        A2 = coo.assemble(np.array([3.0, 4.0]))
        assert A1[0, 0] == 1.0 and A2[0, 0] == 3.0

    def test_from_element_blocks_matches_dense(self):
        rng = np.random.default_rng(5)
        nodes = np.array([[0, 1, 2], [2, 3, 4], [4, 0, 1]])
        coo = CooAssembler.from_element_blocks(5, nodes)
        blocks = rng.normal(size=(3, 3, 3))
        dense = np.zeros((5, 5))
        for e in range(3):
            dense[np.ix_(nodes[e], nodes[e])] += blocks[e]
        assert np.allclose(coo.assemble(blocks).toarray(), dense)

    def test_value_count_checked(self):
        coo = CooAssembler(3, np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            coo.assemble(np.array([1.0, 2.0]))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            CooAssembler(2, np.array([5]), np.array([0]))

    def test_matches_fem_reference(self, fs_q2):
        """COO assembly of element mass blocks equals the reference path."""
        from repro.fem.assembly import assemble_mass, element_mass_blocks

        fs = fs_q2
        blocks = element_mass_blocks(fs)
        coo = CooAssembler.from_element_blocks(
            fs.dofmap.n_full, fs.dofmap.cell_nodes
        )
        A_full = coo.assemble(blocks)
        A = fs.dofmap.reduce_matrix(A_full)
        assert abs(A - assemble_mass(fs)).max() < 1e-13


class TestColoring:
    def test_valid_on_amr_mesh(self, fs_q3):
        colors = color_elements(fs_q3.dofmap.cell_nodes)
        assert verify_coloring(fs_q3.dofmap.cell_nodes, colors)

    def test_color_count_reasonable(self, fs_q3):
        colors = color_elements(fs_q3.dofmap.cell_nodes)
        # 2D quad meshes color with a handful of colors
        assert 2 <= colors.max() + 1 <= 12

    def test_plan_partitions_elements(self, fs_q3):
        plan = colored_assembly_plan(fs_q3.dofmap.cell_nodes)
        all_elems = np.sort(np.concatenate(plan))
        assert np.array_equal(all_elems, np.arange(fs_q3.nelem))

    def test_same_color_no_shared_nodes(self, fs_q3):
        plan = colored_assembly_plan(fs_q3.dofmap.cell_nodes)
        nodes = fs_q3.dofmap.cell_nodes
        for batch in plan:
            seen: set[int] = set()
            for e in batch:
                s = set(nodes[e].tolist())
                assert not (seen & s)
                seen |= s

    def test_disjoint_elements_one_color(self):
        nodes = np.array([[0, 1], [2, 3], [4, 5]])
        colors = color_elements(nodes)
        assert colors.max() == 0
