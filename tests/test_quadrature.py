"""Gauss-Legendre quadrature: exactness, weights, tensor structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.quadrature import GaussLegendre1D, TensorQuadrature


class TestGaussLegendre1D:
    def test_weights_sum_to_interval_length(self):
        for n in range(1, 9):
            rule = GaussLegendre1D(n)
            assert rule.weights.sum() == pytest.approx(2.0)

    def test_points_inside_interval(self):
        for n in range(1, 9):
            pts = GaussLegendre1D(n).points
            assert np.all(pts > -1.0) and np.all(pts < 1.0)

    def test_points_sorted_and_symmetric(self):
        pts = GaussLegendre1D(6).points
        assert np.all(np.diff(pts) > 0)
        assert np.allclose(pts, -pts[::-1])

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_polynomial_exactness(self, n):
        """n-point Gauss is exact through degree 2n-1."""
        rule = GaussLegendre1D(n)
        for deg in range(2 * n):
            approx = np.sum(rule.weights * rule.points**deg)
            exact = 0.0 if deg % 2 else 2.0 / (deg + 1)
            assert approx == pytest.approx(exact, abs=1e-13)

    def test_degree_2n_not_exact(self):
        n = 3
        rule = GaussLegendre1D(n)
        approx = np.sum(rule.weights * rule.points ** (2 * n))
        exact = 2.0 / (2 * n + 1)
        assert abs(approx - exact) > 1e-6

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            GaussLegendre1D(0)


class TestTensorQuadrature:
    def test_weights_sum_to_area(self):
        q = TensorQuadrature(4)
        assert q.weights.sum() == pytest.approx(4.0)

    def test_npoints(self):
        assert TensorQuadrature(4).npoints == 16
        assert TensorQuadrature(3).npoints == 9

    def test_lexicographic_ordering_x_fastest(self):
        q = TensorQuadrature(3)
        # first three points share the y coordinate
        assert np.allclose(q.points[:3, 1], q.points[0, 1])
        assert np.all(np.diff(q.points[:3, 0]) > 0)

    @settings(max_examples=30, deadline=None)
    @given(
        i=st.integers(min_value=0, max_value=5),
        j=st.integers(min_value=0, max_value=5),
    )
    def test_2d_monomial_exactness(self, i, j):
        """Tensor 4-point rule integrates x^i y^j exactly for i,j <= 7."""
        q = TensorQuadrature(4)
        val = np.sum(q.weights * q.points[:, 0] ** i * q.points[:, 1] ** j)

        def mono(k):
            return 0.0 if k % 2 else 2.0 / (k + 1)

        assert val == pytest.approx(mono(i) * mono(j), abs=1e-12)

    def test_invalid(self):
        with pytest.raises(ValueError):
            TensorQuadrature(0)
