"""AMR criteria and landau_mesh: the paper's grid economics (sec. III-B/H)."""

import numpy as np
import pytest

from repro import constants as c
from repro.amr import landau_mesh, maxwellian_refine, thermal_radius_levels
from repro.amr.quadtree import QuadForest
from repro.core import deuterium, electron
from repro.fem import FunctionSpace

VE = electron().thermal_velocity


class TestThermalRadiusLevels:
    def test_coarse_species_needs_no_levels(self):
        assert thermal_radius_levels(5.0, 5.0) == 0

    def test_levels_grow_logarithmically(self):
        l1 = thermal_radius_levels(5.0, 0.1)
        l2 = thermal_radius_levels(5.0, 0.05)
        assert l2 == l1 + 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            thermal_radius_levels(5.0, 0.0)


class TestMaxwellianRefine:
    def test_refines_and_balances(self):
        f = QuadForest(0, 5 * VE, -5 * VE, 5 * VE, trees_x=1, trees_y=2)
        n = maxwellian_refine(f, [VE])
        assert n > 0
        assert f.is_balanced()

    def test_smaller_species_refines_more(self):
        f1 = QuadForest(0, 5 * VE, -5 * VE, 5 * VE, trees_x=1, trees_y=2)
        maxwellian_refine(f1, [VE])
        f2 = QuadForest(0, 5 * VE, -5 * VE, 5 * VE, trees_x=1, trees_y=2)
        maxwellian_refine(f2, [VE, VE / 60.0])
        assert f2.nleaves > f1.nleaves
        assert f2.max_level > f1.max_level

    def test_invalid_velocities(self):
        f = QuadForest(0, 1, -1, 1)
        with pytest.raises(ValueError):
            maxwellian_refine(f, [])
        with pytest.raises(ValueError):
            maxwellian_refine(f, [-1.0])


class TestLandauMesh:
    def test_paper_single_species_20_cells(self):
        """Fig. 3: 'Maxwellian with 20 cells and domain size 5 v_th'."""
        m = landau_mesh([VE])
        assert m.nelem == 20
        r0, r1, z0, z1 = m.bounds
        assert r1 == pytest.approx(5 * VE)
        assert z0 == pytest.approx(-5 * VE)

    def test_paper_ew_grid_near_74_cells(self):
        """Sec. III-H: e + tungsten shared grid 'requires about 74 cells'."""
        vw = VE / np.sqrt(c.TUNGSTEN_MASS_RATIO)
        m = landau_mesh([VE, vw])
        assert 64 <= m.nelem <= 96

    def test_paper_vertex_count_exact(self):
        """'The 20-cell grid generates 193 vertices' (Q3, constrained
        vertices excluded) — we match the paper exactly."""
        fs = FunctionSpace(landau_mesh([VE]), order=3)
        assert fs.ndofs == 193

    def test_resolution_where_it_matters(self):
        """Cells near the origin resolve the smallest thermal velocity."""
        vd = deuterium().thermal_velocity
        m = landau_mesh([VE, vd])
        near = m.size[np.hypot(m.lower[:, 0], np.abs(m.lower[:, 1])) < vd]
        assert near.size > 0
        assert near.max() <= 1.25 * vd * (1 + 1e-12)

    def test_domain_factor(self):
        m = landau_mesh([1.0], domain_factor=3.0)
        assert m.bounds[1] == pytest.approx(3.0)

    def test_cells_square(self):
        m = landau_mesh([VE])
        assert np.allclose(m.size[:, 0], m.size[:, 1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            landau_mesh([])

    def test_integration_points_concentrate_at_core(self):
        """'128 integration points in a radius of a bit over one thermal
        radii' — ours gives 124 within 1.4 v_th."""
        fs = FunctionSpace(landau_mesh([VE]), order=3)
        v = np.hypot(fs.qpoints[:, :, 0], fs.qpoints[:, :, 1])
        inside = int(np.sum(v <= 1.4 * VE))
        assert 110 <= inside <= 140
        # the origin cells are the smallest on the grid
        d = np.hypot(fs.mesh.lower[:, 0], np.abs(fs.mesh.lower[:, 1]))
        sizes = fs.mesh.size[:, 0]
        assert sizes[np.argmin(d)] == sizes.min()
