"""AssemblyOptions plumbing, the memory-budget guard, the cached scatter
structure, the cached band factory and the bounded NewtonStats rings."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    AssemblyOptions,
    ImplicitLandauSolver,
    LandauOperator,
    NewtonStats,
    PairTableMemoryError,
)
from repro.core.maxwellian import species_maxwellian
from repro.core.options import DEFAULT_MEMORY_BUDGET
from repro.fem.assembly import (
    ScatterMap,
    _scatter,
    element_mass_blocks,
    get_scatter_map,
)
from repro.sparse import BandSolver, CachedBandSolverFactory


class TestOptionsParsing:
    def test_defaults(self):
        o = AssemblyOptions()
        assert o.cache_structure and o.packed_tables
        assert o.num_threads == 0 and o.resolved_threads() == 1
        assert o.table_dtype == "float64"
        assert o.memory_budget == DEFAULT_MEMORY_BUDGET
        assert o.cache_pair_tables is None

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSEMBLY_CACHE_STRUCTURE", "0")
        monkeypatch.setenv("REPRO_ASSEMBLY_PACKED_TABLES", "off")
        monkeypatch.setenv("REPRO_ASSEMBLY_THREADS", "4")
        monkeypatch.setenv("REPRO_ASSEMBLY_TABLE_DTYPE", "float32")
        monkeypatch.setenv("REPRO_ASSEMBLY_MEMORY_BUDGET", "1e6")
        monkeypatch.setenv("REPRO_ASSEMBLY_CACHE_TABLES", "1")
        o = AssemblyOptions.from_env()
        assert not o.cache_structure and not o.packed_tables
        assert o.num_threads == 4 and o.resolved_threads() == 4
        assert o.table_dtype == "float32" and o.dtype == np.float32
        assert o.memory_budget == 1_000_000
        assert o.cache_pair_tables is True

    def test_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSEMBLY_THREADS", "4")
        assert AssemblyOptions.from_env(num_threads=2).num_threads == 2

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ValueError):
            AssemblyOptions(table_dtype="float16")
        with pytest.raises(ValueError):
            AssemblyOptions(num_threads=-1)
        with pytest.raises(ValueError):
            AssemblyOptions(memory_budget=0)
        monkeypatch.setenv("REPRO_ASSEMBLY_CACHE_TABLES", "maybe")
        with pytest.raises(ValueError):
            AssemblyOptions.from_env()
        monkeypatch.setenv("REPRO_ASSEMBLY_CACHE_TABLES", "auto")
        monkeypatch.setenv("REPRO_ASSEMBLY_PACKED_TABLES", "maybe")
        with pytest.raises(ValueError):
            AssemblyOptions.from_env()

    def test_legacy_is_seed_configuration(self):
        o = AssemblyOptions.legacy()
        assert not o.cache_structure and not o.packed_tables
        assert o.resolved_threads() == 1


class TestMemoryBudget:
    def test_forced_cache_over_budget_raises(self, fs_q3, electron_species):
        opts = AssemblyOptions(memory_budget=1024)
        with pytest.raises(PairTableMemoryError) as err:
            LandauOperator(fs_q3, electron_species, cache_pair_tables=True, options=opts)
        # the guard must be actionable, not a bare MemoryError
        assert "REPRO_ASSEMBLY_MEMORY_BUDGET" in str(err.value)

    def test_auto_falls_back_to_chunked(self, fs_q3, electron_species, electron_maxwellian):
        opts = AssemblyOptions(memory_budget=1024)
        op = LandauOperator(fs_q3, electron_species, options=opts)
        assert not op.pair_tables_cached
        ref = LandauOperator(fs_q3, electron_species).fields([electron_maxwellian])
        got = op.fields([electron_maxwellian])
        for a, b in zip(got, ref):
            assert np.allclose(a, b, atol=1e-12 * max(np.abs(b).max(), 1))

    def test_row_chunk_regression(self):
        """The chunk heuristic must scale with the budget and never hit 0
        (the seed's hard-coded ``5e7`` pair constant is gone)."""
        o = AssemblyOptions(memory_budget=1)
        assert o.row_chunk(10_000) == 1
        assert AssemblyOptions().row_chunk(896) > 896  # default: one block
        n = 896
        per_row_bytes = AssemblyOptions(memory_budget=10**6).row_chunk(n)
        assert 1 <= per_row_bytes < n

    def test_table_bytes_accounts_for_layout(self):
        n = 100
        packed = AssemblyOptions().table_bytes(n)
        legacy = AssemblyOptions(packed_tables=False).table_bytes(n)
        assert packed == 5 * n * n * 8
        assert legacy == 8 * n * n * 8  # strided views pin the full tensors
        assert AssemblyOptions(table_dtype="float32").table_bytes(n) == packed // 2


class TestScatterMap:
    def test_matches_coo_scatter(self, fs_q3):
        rng = np.random.default_rng(7)
        Ce = rng.standard_normal((fs_q3.nelem, fs_q3.nb, fs_q3.nb))
        ref = _scatter(fs_q3, Ce)
        sm = ScatterMap(fs_q3)
        got = sm.assemble(Ce)
        assert abs(got - ref).max() < 1e-13 * max(abs(ref).max(), 1)

    def test_structure_shared_between_builds(self, fs_q3):
        sm = ScatterMap(fs_q3)
        A = sm.assemble(element_mass_blocks(fs_q3))
        B = sm.assemble(2.0 * element_mass_blocks(fs_q3))
        assert np.shares_memory(A.indices, sm.indices)
        assert np.shares_memory(B.indices, sm.indices)
        assert abs(B - 2.0 * A).max() < 1e-14
        assert sm.builds == 2

    def test_get_scatter_map_is_cached_per_space(self, fs_q3):
        assert get_scatter_map(fs_q3) is get_scatter_map(fs_q3)


class TestCachedBandFactory:
    def _random_banded(self, n=40, seed=3):
        rng = np.random.default_rng(seed)
        A = sp.diags(
            [rng.uniform(1, 2, n), rng.standard_normal(n - 1) * 0.1,
             rng.standard_normal(n - 1) * 0.1],
            [0, 1, -1],
        ).tocsr()
        return A

    def test_matches_band_solver(self):
        A = self._random_banded()
        b = np.arange(A.shape[0], dtype=float)
        fac = CachedBandSolverFactory()
        x = fac(A)(b)
        ref = BandSolver(A)(b)
        assert np.allclose(x, ref, atol=1e-12)

    def test_symbolic_setup_reused_for_same_pattern(self):
        A = self._random_banded(seed=3)
        B = self._random_banded(seed=4)  # same pattern, different values
        fac = CachedBandSolverFactory()
        b = np.ones(A.shape[0])
        fac(A)(b)
        fac(B)(b)
        assert fac.symbolic_setups == 1
        assert fac.symbolic_reuses == 1
        assert np.allclose(fac(B)(b), BandSolver(B)(b), atol=1e-12)

    def test_pattern_change_triggers_new_setup(self):
        fac = CachedBandSolverFactory()
        b20 = np.ones(20)
        b30 = np.ones(30)
        fac(self._random_banded(n=20))(b20)
        fac(self._random_banded(n=30))(b30)
        assert fac.symbolic_setups == 2

    def test_used_by_solver_when_structure_cached(self, fs_q3, electron_species, electron_maxwellian):
        op = LandauOperator(fs_q3, electron_species)
        solver = ImplicitLandauSolver(op, linear_solver="band", rtol=1e-8)
        assert isinstance(solver._factor, CachedBandSolverFactory)
        f = solver.step([electron_maxwellian.copy()], 0.05)
        assert solver._factor.symbolic_setups == 1
        assert solver._factor.symbolic_reuses >= 1  # Newton refactorizations
        # same step with the uncached legacy factory gives the same answer
        op2 = LandauOperator(fs_q3, electron_species, options=AssemblyOptions.legacy())
        solver2 = ImplicitLandauSolver(op2, linear_solver="band", rtol=1e-8)
        assert not isinstance(solver2._factor, CachedBandSolverFactory)
        f2 = solver2.step([electron_maxwellian.copy()], 0.05)
        assert np.allclose(f[0], f2[0], atol=1e-10 * max(np.abs(f2[0]).max(), 1))


class TestBoundedNewtonStats:
    def test_events_ring_keeps_last_k(self):
        stats = NewtonStats(max_events=4)
        for i in range(10):
            stats.record_event("fallback", step=i)
        assert len(stats.events) == 4
        assert stats.events_dropped == 6
        assert [e["step"] for e in stats.events] == [6, 7, 8, 9]

    def test_residual_ring_keeps_last_k(self):
        stats = NewtonStats(max_residuals=3)
        for i in range(8):
            stats.record_residual(float(i))
        assert stats.residual_history == [5.0, 6.0, 7.0]
        assert stats.residuals_dropped == 5

    def test_merge_of_bounded_stats(self):
        a = NewtonStats(max_events=4, max_residuals=4)
        b = NewtonStats(max_events=4, max_residuals=4)
        for i in range(6):
            a.record_event("guard", step=i)
            b.record_event("retry", step=i)
            a.record_residual(float(i))
            b.record_residual(10.0 + i)
        a.structure_reuses, b.structure_reuses = 3, 4
        a.parallel_builds, b.parallel_builds = 1, 2
        dropped_before = a.events_dropped + b.events_dropped
        a.merge(b)
        assert len(a.events) == 4
        assert len(a.residual_history) == 4
        # everything that ever fell off either ring is accounted for
        assert a.events_dropped == 12 - 4
        assert a.residuals_dropped == 12 - 4
        assert a.events_dropped >= dropped_before
        assert a.structure_reuses == 7 and a.parallel_builds == 3
        # the survivors are the tail of the concatenation
        assert [e["kind"] for e in a.events] == ["retry"] * 4
        assert a.residual_history == [12.0, 13.0, 14.0, 15.0]

    def test_solver_surfaces_structure_counters(self, fs_q3, electron_species, electron_maxwellian):
        op = LandauOperator(fs_q3, electron_species)
        solver = ImplicitLandauSolver(op, rtol=1e-8)
        solver.step([electron_maxwellian.copy()], 0.05)
        assert solver.stats.structure_reuses > 0

    def test_report_shows_counters_and_drops(self):
        from repro.report import resilience_summary, solver_stats_table

        stats = NewtonStats(max_events=4, structure_reuses=5, parallel_builds=2)
        for i in range(10):
            stats.record_event("fallback", step=i)
        table = solver_stats_table(stats)
        assert "struct-reuse" in table and "par-builds" in table
        summary = resilience_summary(stats, max_events=2)
        assert "last 2 of 10" in summary
