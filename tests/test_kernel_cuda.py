"""Algorithm 1 on the simulated device: exactness vs the CPU reference,
block configuration, mass kernel, counters."""

import numpy as np
import pytest

from repro.core import LandauOperator, SpeciesSet, deuterium, electron
from repro.core.kernel_cuda import CudaLandauJacobian, KernelData
from repro.core.maxwellian import species_maxwellian
from repro.gpu import CudaMachine, V100


@pytest.fixture(scope="module")
def setup(ed_fs_module):
    fs, spc = ed_fs_module
    op = LandauOperator(fs, spc)
    fields = [fs.interpolate(species_maxwellian(s)) for s in spc]
    return fs, spc, op, fields


@pytest.fixture(scope="module")
def ed_fs_module():
    from repro.amr import landau_mesh
    from repro.fem import FunctionSpace

    spc = SpeciesSet([electron(), deuterium()])
    mesh = landau_mesh([s.thermal_velocity for s in spc])
    return FunctionSpace(mesh, order=3), spc


class TestBlockConfig:
    def test_paper_block_shape(self, ed_fs_module):
        """Q3: 16 integration points -> 16x16 = 256-thread blocks."""
        fs, spc = ed_fs_module
        ck = CudaLandauJacobian(fs, spc)
        assert ck.block == (16, 16)
        assert ck.block[0] * ck.block[1] <= 256

    def test_q2_block_shape(self, ed_fs_module):
        from repro.fem import FunctionSpace

        fs, spc = ed_fs_module
        fs2 = FunctionSpace(fs.mesh, order=2)
        ck = CudaLandauJacobian(fs2, spc)
        # 9 IPs; x chosen as power of two with total <= 256
        assert ck.block[1] == 9
        assert ck.block[0] & (ck.block[0] - 1) == 0
        assert ck.block[0] * ck.block[1] <= 256


class TestExactness:
    def test_jacobian_matches_reference(self, setup):
        fs, spc, op, fields = setup
        ref = op.jacobian(fields)
        J = CudaLandauJacobian(fs, spc, machine=CudaMachine(V100)).build(fields)
        for s in range(len(spc)):
            dense = ref[s].toarray()
            assert np.allclose(J[s], dense, atol=1e-12 * max(np.abs(dense).max(), 1))

    def test_chunk_width_does_not_change_result(self, setup):
        fs, spc, op, fields = setup
        J16 = CudaLandauJacobian(fs, spc, block_x=16).build(fields)
        J64 = CudaLandauJacobian(fs, spc, block_x=64).build(fields)
        assert np.allclose(J16, J64, atol=1e-11 * max(np.abs(J16).max(), 1))

    def test_mass_matches_reference(self, setup):
        fs, spc, op, fields = setup
        M = CudaLandauJacobian(fs, spc).build_mass(shift=1.0)
        ref = op.mass_matrix.toarray()
        for s in range(len(spc)):
            assert np.allclose(M[s], ref, atol=1e-13)

    def test_mass_shift(self, setup):
        fs, spc, op, fields = setup
        ck = CudaLandauJacobian(fs, spc)
        M1 = ck.build_mass(shift=1.0)
        M2 = ck.build_mass(shift=2.5)
        assert np.allclose(M2, 2.5 * M1, atol=1e-12)


class TestCounters:
    def test_tensor_count_scales_as_N_squared(self, setup):
        """The inner integral evaluates exactly N_q * N tensors per element:
        total FMA ~ N^2 (the O(N^2) complexity the paper mitigates)."""
        fs, spc, op, fields = setup
        m = CudaMachine(V100)
        CudaLandauJacobian(fs, spc, machine=m).build(fields)
        from repro.core.kernel_cuda import TENSOR_FMA

        N = fs.n_integration_points
        expected_tensor_fma = TENSOR_FMA * N * N
        assert m.counters.fma > expected_tensor_fma  # tensor + beta + accum
        assert m.counters.fma < 3 * expected_tensor_fma

    def test_atomics_counted(self, setup):
        fs, spc, op, fields = setup
        m = CudaMachine(V100)
        CudaLandauJacobian(fs, spc, machine=m).build(fields)
        kd = KernelData.build(fs, spc)
        expected = sum(
            len(spc) * len(t) ** 2 for t in kd.elem_targets
        )
        assert m.counters.atomic_adds == expected

    def test_launch_counted(self, setup):
        fs, spc, op, fields = setup
        m = CudaMachine(V100)
        ck = CudaLandauJacobian(fs, spc, machine=m)
        ck.build(fields)
        ck.build_mass()
        assert m.counters.kernel_launches == 2
        assert m.counters.blocks_executed == 2 * fs.nelem

    def test_dram_traffic_linear_in_N_per_block(self, setup):
        """SoA staging reads (3 + 3S) N doubles per block."""
        fs, spc, op, fields = setup
        m = CudaMachine(V100)
        CudaLandauJacobian(fs, spc, machine=m).build(fields)
        N, S, ne = fs.n_integration_points, len(spc), fs.nelem
        staged = ne * (3 + 3 * S) * N * 8
        assert m.counters.dram_read_bytes >= staged
        assert m.counters.dram_read_bytes < 2.0 * staged + ne * 16 * 200


class TestKernelData:
    def test_constraint_distribution_consistent(self, setup):
        """Per-element distribution matrices reproduce P restricted to the
        element's nodes."""
        fs, spc, op, fields = setup
        kd = KernelData.build(fs, spc)
        P = fs.dofmap.P.toarray()
        for e in [0, fs.nelem // 2, fs.nelem - 1]:
            nodes = fs.dofmap.cell_nodes[e]
            sub = P[nodes][:, kd.elem_targets[e]]
            assert np.allclose(sub, kd.elem_P[e])

    def test_soa_arrays(self, setup):
        fs, spc, op, fields = setup
        kd = KernelData.build(fs, spc)
        assert kd.r.shape == (fs.n_integration_points,)
        assert np.all(kd.w > 0)
        assert kd.charges.shape == (2,)
