"""Supervision subsystem (ISSUE-7): cross-process fault plans, the
watchdog/circuit-breaker/degraded tier, checksummed checkpoints, the
SIGTERM arena backstop, and crash-consistent service resume."""

from __future__ import annotations

import glob
import os
import pickle
import signal
import subprocess
import sys
import tempfile
import textwrap
import time
from contextlib import suppress

import numpy as np
import pytest

from repro.core.maxwellian import maxwellian_rz
from repro.resilience import (
    CheckpointError,
    CircuitBreaker,
    FaultPlan,
    FaultPlanState,
    RestartBackoff,
    ShardSupervisor,
    SupervisorOptions,
    load_checkpoint,
    read_checksummed,
    save_checkpoint,
    write_checksummed,
)
from repro.serve import (
    CollisionSolveService,
    PendingJob,
    ServeOptions,
    SolvePlan,
    load_service_checkpoint,
    save_service_checkpoint,
)
from repro.serve.jobs import STATUS_OK

DT = 0.3


@pytest.fixture
def plan(fs_q2, electron_species):
    return SolvePlan(fs=fs_q2, species=electron_species, dt=DT)


@pytest.fixture(scope="module")
def states(request):
    fs = request.getfixturevalue("fs_q2")
    rng = np.random.default_rng(77)
    out = []
    for _ in range(12):
        vth = 0.886 * rng.uniform(0.8, 1.1)
        drift = rng.uniform(-0.1, 0.1)
        out.append(
            fs.interpolate(
                lambda r, z, v=vth, d=drift: maxwellian_rz(r, z - d, 1.0, v)
            )[None, :]
        )
    return out


def _fast_supervision(**kw) -> SupervisorOptions:
    """Tight budgets so chaos tests never sit in real backoff sleeps."""
    base = dict(
        batch_deadline_s=0.0,
        breaker_threshold=3,
        breaker_cooldown=2,
        breaker_max_cooldown=8,
        restart_backoff_s=0.001,
        restart_backoff_max_s=0.01,
    )
    base.update(kw)
    return SupervisorOptions(**base)


# ----------------------------------------------------------------------
# FaultPlan
class TestFaultPlan:
    def test_json_round_trip(self):
        p = FaultPlan(
            fail_first_solves=2,
            crash_batches=(1, 3),
            hang_batches=(2,),
            hang_s=5.0,
            shm_attach_failures=(0,),
            shards=(1,),
            seed=9,
        )
        q = FaultPlan.from_json(p.to_json())
        assert q == p
        assert pickle.loads(pickle.dumps(p)) == p

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan fields"):
            FaultPlan.from_json('{"explode_batches": [1]}')

    def test_from_env_inline_and_path(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULT_PLAN", '{"crash_batches": [1]}')
        assert FaultPlan.from_env().crash_batches == (1,)
        f = tmp_path / "plan.json"
        f.write_text('{"hang_batches": [0], "hang_s": 2.5}')
        monkeypatch.setenv("REPRO_FAULT_PLAN", f"@{f}")
        p = FaultPlan.from_env()
        assert p.hang_batches == (0,) and p.hang_s == 2.5
        monkeypatch.setenv("REPRO_FAULT_PLAN", "{not json")
        with pytest.raises(ValueError, match="REPRO_FAULT_PLAN"):
            FaultPlan.from_env()

    def test_shard_scoping_and_injector(self):
        p = FaultPlan(fail_first_solves=1, shards=(0,))
        assert p.applies_to(0) and not p.applies_to(1)
        assert p.injector(0) is not None
        assert p.injector(1) is None
        assert FaultPlan(crash_batches=(0,)).injector(0) is None  # no solver faults

    def test_state_counts_per_incarnation(self):
        p = FaultPlan(shm_attach_failures=(1,))
        st = FaultPlanState(p, shard_id=0)
        st.on_dispatch("shm")  # batch 0: clean
        with pytest.raises(Exception, match="attach"):
            st.on_dispatch("shm")  # batch 1: injected
        # inline payloads never see shm faults
        st2 = FaultPlanState(p, shard_id=0)
        st2.on_dispatch("inline")
        st2.on_dispatch("inline")


# ----------------------------------------------------------------------
# breaker + backoff state machines
class TestCircuitBreaker:
    def test_trip_cooldown_probe_recover(self):
        br = CircuitBreaker(threshold=2, cooldown=2, max_cooldown=8)
        assert br.admit() == "primary"
        br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "open" and br.trips == 1
        assert br.admit() == "degraded"
        assert br.admit() == "degraded"
        assert br.admit() == "probe"  # half-open after the cooldown
        br.record_success()
        assert br.state == "closed"
        assert br.admit() == "primary"

    def test_failed_probe_doubles_cooldown_bounded(self):
        br = CircuitBreaker(threshold=1, cooldown=2, max_cooldown=4)
        br.record_failure()  # trip (cooldown 2)
        br.admit(), br.admit()
        assert br.admit() == "probe"
        br.record_failure()  # failed probe: cooldown 4
        assert [br.admit() for _ in range(4)] == ["degraded"] * 4
        assert br.admit() == "probe"
        br.record_failure()  # capped at max_cooldown
        assert [br.admit() for _ in range(4)] == ["degraded"] * 4
        assert br.admit() == "probe"
        br.record_success()
        # recovery resets the cooldown to its base
        br.record_failure()
        assert [br.admit() for _ in range(2)] == ["degraded"] * 2
        assert br.admit() == "probe"

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(threshold=3, cooldown=1, max_cooldown=2)
        br.record_failure(), br.record_failure()
        br.record_success()
        br.record_failure(), br.record_failure()
        assert br.state == "closed"  # never 3 consecutive


class TestRestartBackoff:
    def test_bounded_doubling_and_reset(self):
        b = RestartBackoff(base_s=0.5, max_s=2.0)
        assert [b.next_delay() for _ in range(4)] == [0.5, 1.0, 2.0, 2.0]
        b.reset()
        assert b.next_delay() == 0.5
        assert b.restarts == 5

    def test_supervisor_snapshot_shape(self):
        sup = ShardSupervisor(_fast_supervision())
        sup.record_failure("worker_crashes")
        snap = sup.snapshot()
        assert snap["worker_crashes"] == 1
        assert snap["breaker"]["state"] == "closed"
        assert snap["breaker_trips"] == 0


# ----------------------------------------------------------------------
# checksummed checkpoint envelope (satellite 3)
class TestChecksummedCheckpoints:
    def _write(self, tmp_path) -> tuple[str, np.ndarray]:
        path = str(tmp_path / "state.npz")
        f = np.linspace(0.0, 1.0, 64)
        save_checkpoint(path, fields=[f], t=2.5, extra={"step": 3})
        return path, f

    def test_round_trip(self, tmp_path):
        path, f = self._write(tmp_path)
        ck = load_checkpoint(path)
        np.testing.assert_array_equal(ck.fields[0], f)
        assert ck.t == 2.5 and ck.extra["step"] == 3

    def test_truncated_file_detected(self, tmp_path):
        path, _ = self._write(tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_bit_flip_detected(self, tmp_path):
        path, _ = self._write(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[-10] ^= 0x40  # flip one payload bit
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_legacy_bare_npz_still_loads(self, tmp_path):
        import io
        import json

        path = str(tmp_path / "legacy.npz")
        f = np.arange(6.0)
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            __version__=np.array(1),
            fields=np.stack([f]),
            t=np.array(0.5),
            extra_json=np.array(json.dumps({"old": True})),
        )
        open(path, "wb").write(buf.getvalue())  # no checksum envelope
        ck = load_checkpoint(path)
        np.testing.assert_array_equal(ck.fields[0], f)
        assert ck.extra["old"] is True

    def test_envelope_primitives(self, tmp_path):
        path = str(tmp_path / "raw.bin")
        write_checksummed(path, b"payload-bytes")
        assert read_checksummed(path) == b"payload-bytes"
        open(path, "wb").write(b"RPROCKSUM1 deadbeef\n")
        with pytest.raises(CheckpointError):
            read_checksummed(path)


# ----------------------------------------------------------------------
# service checkpoint format
class TestServiceCheckpointFormat:
    def test_round_trip(self, tmp_path, plan):
        path = str(tmp_path / "svc.ckpt")
        jobs = [
            PendingJob(plan.key, "job-a", np.zeros((1, plan.fs.ndofs)), 1.5),
            PendingJob(plan.key, "job-b", np.ones((1, plan.fs.ndofs)), None),
        ]
        save_service_checkpoint(
            path, pending=jobs, plans={plan.key: plan}, completed=["job-0"]
        )
        ckpt = load_service_checkpoint(path)
        assert ckpt.pending_ids == {"job-a", "job-b"}
        assert ckpt.completed == ("job-0",)
        assert ckpt.plans[plan.key].key == plan.key
        assert ckpt.pending[0].remaining_s == 1.5

    def test_missing_plan_rejected(self, tmp_path, plan):
        with pytest.raises(CheckpointError, match="plans absent"):
            save_service_checkpoint(
                str(tmp_path / "svc.ckpt"),
                pending=[
                    PendingJob(plan.key, "j", np.zeros((1, plan.fs.ndofs)))
                ],
                plans={},
                completed=[],
            )

    def test_corrupt_file_rejected(self, tmp_path, plan):
        path = str(tmp_path / "svc.ckpt")
        save_service_checkpoint(
            path, pending=[], plans={}, completed=["x"]
        )
        blob = bytearray(open(path, "rb").read())
        blob[-3] ^= 0x01
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError):
            load_service_checkpoint(path)


# ----------------------------------------------------------------------
# SIGTERM arena backstop (satellite 2)
class TestArenaSigtermCleanup:
    def test_sigterm_owner_leaves_no_orphans(self, tmp_path):
        script = textwrap.dedent(
            """
            import os, sys, time
            import numpy as np
            from repro.backend.shm import SharedArena

            arena = SharedArena(tag="sigterm-test")
            seg = arena.alloc((64, 64), np.float64)
            seg[...] = 1.0
            print(os.getpid(), flush=True)
            time.sleep(30)  # killed long before this returns
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            pid = int(proc.stdout.readline())
            # segments exist while the owner runs
            assert glob.glob(f"/dev/shm/rpro-{pid}-*")
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        # handler chained to default SIGTERM: died by the signal...
        assert proc.returncode == -signal.SIGTERM
        # ...and swept its own segments on the way out
        assert glob.glob(f"/dev/shm/rpro-{pid}-*") == []


# ----------------------------------------------------------------------
# process-tier chaos (the tentpole behaviors end to end)
class TestProcessChaos:
    def _service(self, fault_plan=None, supervision=None, **opts):
        return CollisionSolveService(
            ServeOptions(
                executor="process",
                num_shards=1,
                max_batch=4,
                supervision=supervision or _fast_supervision(),
                **opts,
            ),
            fault_plan=fault_plan,
        )

    def test_crash_chaos_is_bitwise_equal_to_fault_free(self, plan, states):
        """A worker crash mid-run must change nothing about the numbers:
        the batch is retried on a fresh worker with identical
        composition (the ISSUE-7 acceptance bar)."""
        with CollisionSolveService(
            ServeOptions(executor="thread", num_shards=1, max_batch=4)
        ) as ref_svc:
            ref = ref_svc.solve_many(plan, states[:8])
        with self._service(
            fault_plan=FaultPlan(crash_batches=(1,))
        ) as svc:
            out = svc.solve_many(plan, states[:8])
            snap = svc.snapshot()
        assert all(r.status == STATUS_OK for r in out)
        for a, b in zip(ref, out):
            np.testing.assert_array_equal(a.state, b.state)
        assert snap["failures"]["worker_crashes"] >= 1
        assert snap["jobs"]["worker_restarts"] >= 1

    def test_restart_storm_trips_breaker_and_degrades(self, plan, states):
        """crash_batches=(0,) kills every worker incarnation on its first
        batch: the breaker must trip within its threshold budget and the
        drain must complete on the degraded tier (satellite 4)."""
        sup = _fast_supervision(breaker_threshold=2, breaker_cooldown=2)
        with self._service(
            fault_plan=FaultPlan(crash_batches=(0,)), supervision=sup
        ) as svc:
            out = svc.solve_many(plan, states[:12])
            snap = svc.snapshot()
        assert all(r.status == STATUS_OK for r in out)
        shard0 = snap["shards"][0]
        assert shard0["breaker_trips"] >= 1
        assert shard0["degraded_batches"] >= 1
        assert shard0["worker_crashes"] >= 2
        assert snap["jobs"]["worker_restarts"] >= 2
        # every job is on the books exactly once
        assert snap["jobs"]["ok"] == 12

    def test_hang_is_detected_killed_and_retried(self, plan, states):
        """A hung worker raises nothing — only the batch deadline can see
        it.  The supervisor kills it and the retry completes."""
        sup = _fast_supervision(batch_deadline_s=3.0)
        with self._service(
            fault_plan=FaultPlan(hang_batches=(1,), hang_s=60.0),
            supervision=sup,
        ) as svc:
            warm = svc.solve_many(plan, states[:2])  # worker batch 0
            assert all(r.status == STATUS_OK for r in warm)
            t0 = time.monotonic()
            out = svc.solve_many(plan, states[2:6])  # batch 1 hangs
            detect_s = time.monotonic() - t0
            snap = svc.snapshot()
        assert all(r.status == STATUS_OK for r in out)
        assert detect_s < 30.0  # killed at the deadline, not hang_s
        shard0 = snap["shards"][0]
        assert shard0["worker_hangs"] >= 1
        assert shard0["deadline_timeouts"] >= 1
        assert snap["jobs"]["worker_restarts"] >= 1

    def test_shm_attach_fault_retries_inline(self, plan, states):
        with self._service(
            fault_plan=FaultPlan(shm_attach_failures=(0,))
        ) as svc:
            out = svc.solve_many(plan, states[:4])
            snap = svc.snapshot()
        assert all(r.status == STATUS_OK for r in out)
        assert snap["failures"]["shm_attach_faults"] == 1
        assert snap["failures"]["worker_crashes"] == 0

    def test_heartbeat_probe_replaces_stopped_worker(self, plan, states):
        """A SIGSTOPped worker answers no heartbeat: the probe must kill
        and replace it, and the next batch must succeed."""
        sup = _fast_supervision(heartbeat_s=1.0)
        with self._service(supervision=sup) as svc:
            out = svc.solve_many(plan, states[:2])
            assert all(r.status == STATUS_OK for r in out)
            pool = svc._pools[0]
            (worker_pid,) = list(pool._processes)
            os.kill(worker_pid, signal.SIGSTOP)
            try:
                svc._heartbeat_probe(0)
            finally:
                # unfreeze (SIGKILL already landed; a stopped process
                # dies on it regardless, this just avoids leaking one
                # if the probe failed before killing)
                with suppress(ProcessLookupError):
                    os.kill(worker_pid, signal.SIGCONT)
            out = svc.solve_many(plan, states[2:4])
            snap = svc.snapshot()
        assert all(r.status == STATUS_OK for r in out)
        shard0 = snap["shards"][0]
        assert shard0["heartbeat_misses"] == 1
        assert shard0["worker_hangs"] == 1
        assert snap["jobs"]["worker_restarts"] >= 1

    def test_watchdog_lifecycle(self, plan, states):
        sup = _fast_supervision(heartbeat_s=0.2)
        with self._service(supervision=sup) as svc:
            svc.start()
            assert svc._watchdog is not None and svc._watchdog.is_alive()
            h = svc.submit(plan, states[0])
            assert h.result(60.0).status == STATUS_OK
            svc.stop()
            assert svc._watchdog is None


# ----------------------------------------------------------------------
# crash-consistent service checkpoints + resume
class TestServiceResume:
    def test_killed_service_resumes_only_unfinished_jobs(
        self, plan, states, tmp_path
    ):
        """Drain half the jobs with checkpointing on, lose the service
        (simulated by abandoning it un-closed), and restore into a fresh
        one: only the unfinished jobs re-run, and together the two
        halves cover every job exactly once."""
        ckpt_dir = str(tmp_path / "ckpt")
        opts = dict(
            executor="process",
            num_shards=1,
            max_batch=2,
            checkpoint_dir=ckpt_dir,
            supervision=_fast_supervision(),
        )
        all_ids = [f"job-r{i}" for i in range(8)]
        svc1 = CollisionSolveService(ServeOptions(**opts))
        try:
            handles = [
                svc1.submit(plan, s, job_id=jid)
                for jid, s in zip(all_ids, states[:8])
            ]
            done = svc1.drain(max_batches=2)  # then "SIGKILL"
            assert done == 4
            first_half = [h.result(0.0).job_id for h in handles[:done]]
        finally:
            svc1.close()

        svc2 = CollisionSolveService(ServeOptions(**opts))
        try:
            resumed = svc2.restore()
            assert {h.job.job_id for h in resumed} == set(all_ids[4:])
            svc2.drain()
            results = [h.result(10.0) for h in resumed]
            snap = svc2.snapshot()
        finally:
            svc2.close()
        assert all(r.status == STATUS_OK for r in results)
        second_half = [r.job_id for r in results]
        assert set(first_half) | set(second_half) == set(all_ids)
        assert set(first_half) & set(second_half) == set()
        assert snap["checkpoint"]["resume"]["resumed_jobs"] == 4
        assert snap["checkpoint"]["resume"]["skipped_completed"] == 4

    def test_resumed_results_match_uninterrupted_run(self, plan, states):
        """Interrupted-then-resumed must be bitwise the uninterrupted
        run: same jobs, same batch composition, same kernels."""
        with CollisionSolveService(
            ServeOptions(executor="thread", num_shards=1, max_batch=2)
        ) as ref_svc:
            ref = ref_svc.solve_many(plan, states[:6])
        with tempfile.TemporaryDirectory() as d:
            opts = dict(
                executor="thread",
                num_shards=1,
                max_batch=2,
                checkpoint_dir=d,
            )
            ids = [f"job-m{i}" for i in range(6)]
            svc1 = CollisionSolveService(ServeOptions(**opts))
            handles1 = [
                svc1.submit(plan, s, job_id=jid)
                for jid, s in zip(ids, states[:6])
            ]
            svc1.drain(max_batches=1)
            svc1.close()
            svc2 = CollisionSolveService(ServeOptions(**opts))
            handles2 = svc2.restore()
            svc2.drain()
            by_id = {h.job.job_id: h.result(0.0) for h in handles1[:2]}
            by_id.update({h.job.job_id: h.result(0.0) for h in handles2})
            svc2.close()
        for jid, r in zip(ids, ref):
            np.testing.assert_array_equal(by_id[jid].state, r.state)

    def test_checkpoint_written_after_every_batch(self, plan, states, tmp_path):
        d = str(tmp_path / "ck")
        with CollisionSolveService(
            ServeOptions(
                executor="thread", num_shards=1, max_batch=4,
                checkpoint_dir=d,
            )
        ) as svc:
            svc.solve_many(plan, states[:4])
            ckpt = load_service_checkpoint(os.path.join(d, "service.ckpt"))
        assert ckpt.pending == []
        assert len(ckpt.completed) == 4

    def test_restore_requires_configuration(self):
        with CollisionSolveService(
            ServeOptions(executor="thread", num_shards=1)
        ) as svc:
            with pytest.raises(ValueError, match="REPRO_SERVE_CHECKPOINT_DIR"):
                svc.restore()
