"""Function space: evaluation, interpolation, projection, SoA packing."""

import numpy as np
import pytest

from repro.fem import FunctionSpace, Mesh


class TestEvaluation:
    def test_cylindrical_weights(self, structured_fs):
        """sum of qweights = int r dr dz over [0,2]x[-2,2] = 8."""
        assert structured_fs.qweights.sum() == pytest.approx(8.0)

    def test_interpolation_exact_cubic(self, structured_fs):
        fs = structured_fs

        def f(r, z):
            return r**3 - 2 * r * z**2 + z**3 + 1.0

        x = fs.interpolate(f)
        vals = fs.eval(x)
        exact = f(fs.qpoints[:, :, 0], fs.qpoints[:, :, 1])
        assert np.allclose(vals, exact, atol=1e-12)

    def test_gradient_exact_cubic(self, structured_fs):
        fs = structured_fs
        x = fs.interpolate(lambda r, z: r**3 - 2 * r * z**2 + z**3)
        g = fs.eval_grad(x)
        r, z = fs.qpoints[:, :, 0], fs.qpoints[:, :, 1]
        assert np.allclose(g[:, :, 0], 3 * r**2 - 2 * z**2, atol=1e-11)
        assert np.allclose(g[:, :, 1], -4 * r * z + 3 * z**2, atol=1e-11)

    def test_eval_at_points(self, structured_fs):
        fs = structured_fs
        x = fs.interpolate(lambda r, z: r * z + 2.0)
        pts = np.array([[0.3, 0.7], [1.9, -1.5]])
        assert np.allclose(fs.eval_at(x, pts), pts[:, 0] * pts[:, 1] + 2.0)

    def test_eval_at_outside_raises(self, structured_fs):
        with pytest.raises(ValueError):
            structured_fs.eval_at(
                np.zeros(structured_fs.ndofs), np.array([[10.0, 0.0]])
            )

    def test_integrate(self, structured_fs):
        fs = structured_fs
        ones = np.ones_like(fs.qweights)
        assert fs.integrate(ones) == pytest.approx(8.0)

    def test_projection_reproduces_polynomial(self, structured_fs):
        fs = structured_fs

        def f(r, z):
            return 2.0 * r**2 - z**3

        x = fs.project(f)
        pts = np.array([[0.5, 0.5], [1.2, -0.3]])
        assert np.allclose(fs.eval_at(x, pts), f(pts[:, 0], pts[:, 1]), atol=1e-9)


class TestSizes:
    def test_tensor_element_nq_equals_nb(self, fs_q3):
        """Q3 'tensor elements': 16 integration points = 16 basis fns."""
        assert fs_q3.nq == 16
        assert fs_q3.nb == 16
        assert fs_q3.n_integration_points == fs_q3.nelem * 16

    def test_custom_quadrature(self, small_mesh):
        fs = FunctionSpace(small_mesh, order=2, quad_order=5)
        assert fs.nq == 25
        assert fs.nb == 9


class TestPacking:
    def test_pack_shapes(self, fs_q3):
        x1 = fs_q3.interpolate(lambda r, z: np.exp(-(r**2) - z**2))
        x2 = fs_q3.interpolate(lambda r, z: r * 0 + 1.0)
        packed = fs_q3.pack_ip_data([x1, x2])
        N = fs_q3.n_integration_points
        assert packed["r"].shape == (N,)
        assert packed["w"].shape == (N,)
        assert packed["f"].shape == (2, N)
        assert packed["df"].shape == (2, 2, N)

    def test_pack_values_match_eval(self, fs_q3):
        x = fs_q3.interpolate(lambda r, z: r**2 + z)
        packed = fs_q3.pack_ip_data([x])
        assert np.allclose(packed["f"][0], fs_q3.eval(x).ravel())
        g = fs_q3.eval_grad(x)
        assert np.allclose(packed["df"][0, 0], g[:, :, 0].ravel())
        assert np.allclose(packed["df"][1, 0], g[:, :, 1].ravel())

    def test_weights_positive(self, fs_q3):
        assert np.all(fs_q3.qweights > 0)
