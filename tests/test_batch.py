"""Batched vertex solves (section VI future work): correctness vs the
per-vertex solver, early-exit masking, launch-reduction accounting."""

import numpy as np
import pytest

from repro.core import ImplicitLandauSolver, LandauOperator
from repro.core.batch import BatchedVertexSolver
from repro.core.maxwellian import maxwellian_rz


@pytest.fixture()
def batch_states(fs_q3):
    """Three vertex states: cool, reference, drifting."""
    def make(vth, drift):
        return fs_q3.interpolate(
            lambda r, z: maxwellian_rz(r, z - drift, 1.0, vth)
        )

    return np.stack(
        [
            make(0.7, 0.0)[None, :],
            make(0.886, 0.0)[None, :],
            make(0.886, 0.15)[None, :],
        ]
    )


class TestBatchedSolve:
    def test_matches_unbatched(self, fs_q3, electron_species, batch_states):
        bs = BatchedVertexSolver(fs_q3, electron_species, rtol=1e-9)
        out = bs.step(batch_states, dt=0.4)
        op = LandauOperator(fs_q3, electron_species)
        ref_solver = ImplicitLandauSolver(op, rtol=1e-9)
        for b in range(batch_states.shape[0]):
            ref = ref_solver.step([batch_states[b, 0]], 0.4)[0]
            assert np.allclose(out[b, 0], ref, atol=1e-7 * np.abs(ref).max())

    def test_launch_reduction(self, fs_q3, electron_species, batch_states):
        """B vertices share each G-field 'launch': the counter shows the
        B-fold reduction the paper's batching proposal targets."""
        bs = BatchedVertexSolver(fs_q3, electron_species, rtol=1e-7)
        bs.step(batch_states, dt=0.4)
        assert bs.stats.field_launches < bs.stats.equivalent_unbatched_launches
        assert bs.stats.launch_reduction > 1.5

    def test_early_exit(self, fs_q3, electron_species):
        """A vertex already at equilibrium converges in ~1 sweep and is
        masked out while others keep iterating."""
        eq = fs_q3.interpolate(lambda r, z: maxwellian_rz(r, z, 1.0, 0.886))
        far = fs_q3.interpolate(
            lambda r, z: maxwellian_rz(r, z - 0.4, 1.0, 0.6)
        )
        states = np.stack([eq[None, :], far[None, :]])
        bs = BatchedVertexSolver(fs_q3, electron_species, rtol=1e-8)
        bs.step(states, dt=0.5)
        # fewer factorization than 2 vertices x sweeps (the converged
        # vertex dropped out)
        assert bs.stats.factorizations < 2 * bs.stats.newton_sweeps

    def test_validation(self, fs_q3, electron_species, batch_states):
        bs = BatchedVertexSolver(fs_q3, electron_species)
        with pytest.raises(ValueError):
            bs.step(batch_states[:, 0], dt=0.1)  # missing species axis
        with pytest.raises(ValueError):
            bs.step(batch_states, dt=0.0)

    def test_batched_fields_match_single(self, fs_q3, electron_species, batch_states):
        bs = BatchedVertexSolver(fs_q3, electron_species)
        G_D, G_K = bs._batched_fields(batch_states)
        op = bs.op
        for b in range(batch_states.shape[0]):
            gd, gk = op.fields([batch_states[b, 0]])
            assert np.allclose(G_D[b], gd, atol=1e-12)
            assert np.allclose(G_K[b], gk, atol=1e-12)


class TestBatchStatsAccounting:
    """The work counters under partial convergence: launch-equivalents
    count only active vertices, and every factorization of a step rides
    one shared band symbolic setup."""

    def test_equivalent_launches_exclude_frozen_vertices(
        self, fs_q3, electron_species
    ):
        eq = fs_q3.interpolate(lambda r, z: maxwellian_rz(r, z, 1.0, 0.886))
        far = fs_q3.interpolate(
            lambda r, z: maxwellian_rz(r, z - 0.4, 1.0, 0.65)
        )
        states = np.stack([eq[None, :], eq[None, :], far[None, :]])
        bs = BatchedVertexSolver(fs_q3, electron_species, rtol=1e-9)
        bs.step(states, dt=0.5)
        st = bs.stats
        assert st.vertices == 3
        # one batched launch per sweep
        assert st.field_launches == st.newton_sweeps
        # partial convergence: equivalents are bounded by B * sweeps and,
        # since the two equilibrium vertices froze early, strictly below
        assert st.newton_sweeps < st.equivalent_unbatched_launches
        assert st.equivalent_unbatched_launches < 3 * st.newton_sweeps
        # sum over sweeps of the active count == sum of per-vertex sweeps
        assert st.equivalent_unbatched_launches == int(bs.last_sweeps.sum())
        assert 1.0 < st.launch_reduction <= 3.0

    def test_symbolic_setup_shared_across_batch(
        self, fs_q3, electron_species, batch_states
    ):
        bs = BatchedVertexSolver(fs_q3, electron_species, rtol=1e-8)
        bs.step(batch_states, dt=0.4)
        st = bs.stats
        assert st.symbolic_setups == 1
        # every factorization after the first reused the RCM/scatter setup
        assert st.symbolic_reuses == st.factorizations - 1
        assert st.factorizations > batch_states.shape[0]

    def test_counters_accumulate_across_steps(
        self, fs_q3, electron_species, batch_states
    ):
        bs = BatchedVertexSolver(fs_q3, electron_species, rtol=1e-7)
        bs.step(batch_states, dt=0.4)
        first = (bs.stats.newton_sweeps, bs.stats.factorizations)
        bs.step(batch_states, dt=0.4)
        assert bs.stats.newton_sweeps > first[0]
        assert bs.stats.factorizations > first[1]
        assert bs.stats.symbolic_setups == 1  # pattern unchanged
