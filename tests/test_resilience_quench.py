"""Resilience integration: fault-injected Spitzer ramps, checkpoint ->
restart bitwise reproducibility, and driver input validation.

The quench configurations here use a coarse mesh (``h_factor=1.6``) — the
physics is not under test, the recovery machinery is."""

import numpy as np
import pytest

from repro.quench import ThermalQuenchModel, measure_resistivity
from repro.report import resilience_summary
from repro.resilience import (
    DEFAULT_BACKENDS,
    CheckpointError,
    FallbackSolverChain,
    FaultInjector,
    TimeStepController,
)

QUICK = dict(dt=0.5, rtol=1e-6, mesh_kwargs={"h_factor": 1.6})


class TestFaultedSpitzerRamp:
    """Acceptance scenario: under injected faults the ramp completes,
    conserves density, and the recovery is visible in the stats."""

    def test_fallback_and_retry_under_faults(self):
        inj = FaultInjector(
            fail_first_solves=2,       # transient: first two solves die
            factorization_failures=(5,),
            nan_solve_indices=(8,),    # NaN residual mid-run
        )
        chain = FallbackSolverChain(inj.wrap_backends(DEFAULT_BACKENDS, only="band"))
        res = measure_resistivity(
            Z=1.0,
            dt=0.5,
            max_steps=8,
            settle_tol=0.005,
            mesh_kwargs={"h_factor": 1.6},
            linear_solver=chain,
        )
        stats = res["stats"]
        assert res["converged_last"]
        assert inj.n_injected >= 3
        # the faults were served by the fallback chain, not by retries alone:
        # band recovered after the transient, splu covered the outage
        assert stats.backend_solves.get("splu", 0) >= 2
        assert stats.backend_solves.get("band", 0) > 0
        kinds = [e["kind"] for e in stats.events]
        assert "linear_fallback" in kinds
        # the run still produced a physical resistivity
        assert np.isfinite(res["eta"]) and res["J"] > 0
        out = resilience_summary(stats)
        assert "splu" in out and "linear_fallback" in out

    def test_ramp_density_conserved_under_nan_retry(self):
        """A NaN corruption on the raw splu plug (no chain) must be caught
        by the guard and recovered by dt backoff; density — the only
        invariant under E-field drive — survives to guard tolerance."""
        from repro.core.solver import _splu_factory

        inj = FaultInjector(nan_solve_indices=(3,))
        res = measure_resistivity(
            Z=1.0,
            dt=0.5,
            max_steps=6,
            settle_tol=0.005,
            mesh_kwargs={"h_factor": 1.6},
            linear_solver=inj.wrap_factory(_splu_factory),
        )
        assert inj.n_injected == 1
        assert res["step_rejections"] >= 1
        assert res["converged_last"]
        assert np.isfinite(res["eta"])


class TestCheckpointRestart:
    def test_restart_bitwise_matches_uninterrupted(self, tmp_path):
        """Kill a quench run mid-flight (stop_after), resume from the
        checkpoint, and require the full QuenchHistory to bitwise-match an
        uninterrupted run — clock, moments, field, phases, everything."""
        loop = dict(ramp_steps=3, quench_steps=3, post_steps=2)
        full = ThermalQuenchModel(**QUICK).run(**loop)

        path = str(tmp_path / "quench.ckpt.npz")
        partial = ThermalQuenchModel(**QUICK).run(
            **loop, checkpoint_path=path, stop_after=4
        )
        assert len(partial.t) < len(full.t)

        resumed_model = ThermalQuenchModel(**QUICK)
        resumed = resumed_model.resume(path)
        a, b = full.as_arrays(), resumed.as_arrays()
        for col in a:
            assert np.array_equal(a[col], b[col]), f"column {col} diverged"
        assert full.phase == resumed.phase

    def test_periodic_checkpoints_resume_from_quench_phase(self, tmp_path):
        """checkpoint_every overwrites as the run progresses; the last one
        (written inside the quench phase) must resume cleanly, including
        the source turn-on time."""
        path = str(tmp_path / "periodic.ckpt.npz")
        loop = dict(ramp_steps=2, quench_steps=3, post_steps=1)
        m = ThermalQuenchModel(**QUICK)
        full = m.run(**loop, checkpoint_path=path, checkpoint_every=2, stop_after=5)
        resumed = ThermalQuenchModel(**QUICK).resume(path)
        assert resumed.t[: len(full.t)] == full.t
        assert len(resumed.t) == 1 + 2 + 3 + 1  # initial + all macro steps
        assert resumed.phase[0] == "ramp" and resumed.phase[-1] in ("quench", "post")

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "mismatch.ckpt.npz")
        ThermalQuenchModel(**QUICK).run(
            ramp_steps=1, quench_steps=1, post_steps=0,
            checkpoint_path=path, stop_after=1,
        )
        other = ThermalQuenchModel(dt=0.25, rtol=1e-6, mesh_kwargs={"h_factor": 1.6})
        with pytest.raises(CheckpointError) as exc:
            other.resume(path)
        assert "saved" in exc.value.diagnostics


class TestValidation:
    def test_measure_resistivity_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            measure_resistivity(dt=-0.5)
        with pytest.raises(ValueError):
            measure_resistivity(dt=float("nan"))
        with pytest.raises(ValueError):
            measure_resistivity(max_steps=0)
        with pytest.raises(ValueError):
            measure_resistivity(efield=float("inf"))
        with pytest.raises(ValueError):
            measure_resistivity(settle_tol=0.0)

    def test_quench_model_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ThermalQuenchModel(dt=0.0)
        with pytest.raises(ValueError):
            ThermalQuenchModel(dt=float("inf"))
        with pytest.raises(ValueError):
            ThermalQuenchModel(Z=0.5)
        with pytest.raises(ValueError):
            ThermalQuenchModel(E0_over_Ec=-1.0)
        with pytest.raises(ValueError):
            ThermalQuenchModel(settle_tol=-1e-3)
        with pytest.raises(ValueError):
            ThermalQuenchModel(order=0)

    def test_run_rejects_bad_loop_params(self):
        m = ThermalQuenchModel(**QUICK)
        with pytest.raises(ValueError):
            m.run(ramp_steps=0)
        with pytest.raises(ValueError):
            m.run(quench_steps=0)
        with pytest.raises(ValueError):
            m.run(post_steps=-1)

    def test_controller_dt_matches_model_dt(self):
        m = ThermalQuenchModel(**QUICK)
        assert m.controller.dt == m.dt
        custom = TimeStepController(dt_init=0.5, dt_min=0.01)
        m2 = ThermalQuenchModel(**QUICK, controller=custom)
        assert m2.controller is custom
