"""Workload model details: occupancy, species construction, scaling hooks."""

import pytest

from repro.gpu.device import A64FX, MI100, V100
from repro.perf.nodes import EPYC, POWER9
from repro.perf.workload import (
    BLOCKS_PER_SM_FOR_FULL_OCCUPANCY,
    build_paper_species,
)


class TestPaperSpecies:
    def test_composition(self):
        spc = build_paper_species()
        names = [s.name for s in spc]
        assert names[0] == "e" and names[1] == "D"
        assert sum(1 for n in names if n.startswith("W")) == 8

    def test_quasineutrality(self):
        spc = build_paper_species()
        assert spc.quasineutral()
        # electron density balances D + all tungsten charge
        zw = sum(s.charge * s.density for s in spc if s.name.startswith("W"))
        assert spc[0].density == pytest.approx(1.0 + zw)

    def test_thermal_velocity_separation(self):
        """e, D, W thermal velocities are 'well separated' (sec. III-H) —
        more than 2x apart between clusters, equal within the W cluster."""
        spc = build_paper_species()
        v = spc.thermal_velocities
        assert v[0] / v[1] > 2.0
        assert v[1] / v[2] > 2.0
        assert all(abs(v[i] - v[2]) < 1e-14 for i in range(2, 10))


class TestOccupancyModel:
    def test_occupancy_from_workload(self, shared_workload):
        wl = shared_workload
        occ_v = wl.occupancy(V100)
        occ_m = wl.occupancy(MI100)
        expected_v = wl.fs.nelem / (V100.sm_count * BLOCKS_PER_SM_FOR_FULL_OCCUPANCY)
        assert occ_v == pytest.approx(min(1.0, expected_v))
        # MI100 has more CUs -> lower occupancy from the same launch
        assert occ_m < occ_v

    def test_kernel_overhead_multiplies(self, shared_workload):
        wl = shared_workload
        t1 = wl.kernel_time(V100, overhead=1.0)
        t2 = wl.kernel_time(V100, overhead=1.10)
        # overhead applies to everything (body + atomics + launch)
        assert t2 == pytest.approx(1.10 * t1, rel=1e-12)

    def test_cpu_time_composition(self, shared_workload):
        wl = shared_workload
        total = wl.cpu_time(POWER9)
        parts = (
            wl.factor_time(POWER9)
            + wl.solve_time(POWER9)
            + wl.metadata_time(POWER9)
            + wl.other_time(POWER9)
        )
        assert total == pytest.approx(parts)

    def test_epyc_faster_than_p9(self, shared_workload):
        wl = shared_workload
        assert wl.factor_time(EPYC) < wl.factor_time(POWER9)

    def test_a64fx_host_kernel_uses_scalar_lanes(self, shared_workload):
        """The OpenMP host-kernel rate reflects scalar (1/warp_size) lanes
        times the toolchain efficiency."""
        wl = shared_workload
        t = wl.host_kernel_time(POWER9, 8, A64FX)
        slots = wl.jacobian_counters.issue_slots + wl.mass_counters.issue_slots
        per_core = (
            A64FX.peak_issue_slots
            / A64FX.sm_count
            / A64FX.warp_size
            * A64FX.software_efficiency
            * A64FX.pipe_utilization
        )
        assert t == pytest.approx(slots / (8 * per_core))


@pytest.fixture(scope="session")
def shared_workload():
    from repro.perf import build_paper_workload

    return build_paper_workload()
