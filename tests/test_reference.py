"""Lagrange Qk reference elements: nodal property, partition of unity,
polynomial reproduction, edge numbering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.reference import (
    LagrangeQuad,
    gauss_lobatto_points,
    lagrange_basis_1d,
    lagrange_deriv_1d,
)


class TestGLL:
    def test_endpoints(self):
        for n in range(2, 7):
            pts = gauss_lobatto_points(n)
            assert pts[0] == -1.0 and pts[-1] == 1.0
            assert len(pts) == n

    def test_symmetric_sorted(self):
        pts = gauss_lobatto_points(5)
        assert np.allclose(pts, -pts[::-1])
        assert np.all(np.diff(pts) > 0)

    def test_q2_midpoint(self):
        assert gauss_lobatto_points(3)[1] == pytest.approx(0.0, abs=1e-14)

    def test_q3_interior(self):
        # GLL(4) interior nodes at +-1/sqrt(5)
        pts = gauss_lobatto_points(4)
        assert pts[1] == pytest.approx(-1.0 / np.sqrt(5.0))
        assert pts[2] == pytest.approx(+1.0 / np.sqrt(5.0))

    def test_too_few(self):
        with pytest.raises(ValueError):
            gauss_lobatto_points(1)


class TestLagrange1D:
    def test_nodal_property(self):
        nodes = gauss_lobatto_points(4)
        vals = lagrange_basis_1d(nodes, nodes)
        assert np.allclose(vals, np.eye(4), atol=1e-13)

    def test_partition_of_unity(self):
        nodes = gauss_lobatto_points(5)
        x = np.linspace(-1, 1, 17)
        assert np.allclose(lagrange_basis_1d(nodes, x).sum(axis=1), 1.0)

    def test_derivative_sums_to_zero(self):
        nodes = gauss_lobatto_points(4)
        x = np.linspace(-1, 1, 9)
        assert np.allclose(lagrange_deriv_1d(nodes, x).sum(axis=1), 0.0, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(x=st.floats(min_value=-1.0, max_value=1.0))
    def test_derivative_matches_fd(self, x):
        nodes = gauss_lobatto_points(4)
        h = 1e-6
        d = lagrange_deriv_1d(nodes, np.array([x]))[0]
        fd = (
            lagrange_basis_1d(nodes, np.array([x + h]))[0]
            - lagrange_basis_1d(nodes, np.array([x - h]))[0]
        ) / (2 * h)
        assert np.allclose(d, fd, atol=1e-6)


class TestLagrangeQuad:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_counts(self, order):
        el = LagrangeQuad(order)
        assert el.nnodes == (order + 1) ** 2

    def test_nodal_property_2d(self):
        el = LagrangeQuad(3)
        B, _ = el.tabulate(el.nodes)
        assert np.allclose(B, np.eye(el.nnodes), atol=1e-12)

    def test_partition_of_unity_2d(self):
        el = LagrangeQuad(3)
        pts = np.random.default_rng(0).uniform(-1, 1, (20, 2))
        B, D = el.tabulate(pts)
        assert np.allclose(B.sum(axis=1), 1.0)
        assert np.allclose(D.sum(axis=1), 0.0, atol=1e-12)

    @pytest.mark.parametrize("order", [2, 3])
    def test_polynomial_reproduction(self, order):
        """Interpolating x^order * y^order is exact inside the element."""
        el = LagrangeQuad(order)
        coeffs = el.nodes[:, 0] ** order * el.nodes[:, 1] ** order
        pts = np.random.default_rng(1).uniform(-1, 1, (15, 2))
        B, D = el.tabulate(pts)
        vals = B @ coeffs
        exact = pts[:, 0] ** order * pts[:, 1] ** order
        assert np.allclose(vals, exact, atol=1e-12)
        # gradient too
        gx = D[:, :, 0] @ coeffs
        exact_gx = order * pts[:, 0] ** (order - 1) * pts[:, 1] ** order
        assert np.allclose(gx, exact_gx, atol=1e-11)

    def test_edge_nodes_geometry(self):
        el = LagrangeQuad(3)
        # bottom edge nodes lie at eta = -1
        for edge, (axis, val) in enumerate([(1, -1), (0, 1), (1, 1), (0, -1)]):
            idx = el.edge_nodes(edge)
            assert len(idx) == 4
            assert np.allclose(el.nodes[idx, axis], val)

    def test_edge_param_order(self):
        el = LagrangeQuad(2)
        idx = el.edge_nodes(0)
        assert np.all(np.diff(el.nodes[idx, 0]) > 0)
        idx = el.edge_nodes(3)
        assert np.all(np.diff(el.nodes[idx, 1]) > 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            LagrangeQuad(0)
        with pytest.raises(ValueError):
            LagrangeQuad(2).edge_nodes(4)
