"""PetscLikeMat: two-phase (CPU pattern, GPU value) assembly semantics."""

import numpy as np
import pytest

from repro.sparse import PetscLikeMat


def small_blocks():
    rows = [np.array([0, 1]), np.array([1, 2])]
    cols = [np.array([0, 1]), np.array([1, 2])]
    vals = [np.array([[1.0, 2.0], [3.0, 4.0]]), np.array([[1.0, 1.0], [1.0, 1.0]])]
    return rows, cols, vals


class TestPhase1:
    def test_assemble_sums_duplicates(self):
        M = PetscLikeMat(4)
        rows, cols, vals = small_blocks()
        for r, c, v in zip(rows, cols, vals):
            M.set_values(r, c, v)
        A = M.assemble()
        assert A[1, 1] == pytest.approx(4.0 + 1.0)
        assert A[0, 0] == pytest.approx(1.0)

    def test_block_shape_checked(self):
        M = PetscLikeMat(4)
        with pytest.raises(ValueError):
            M.set_values([0, 1], [0], np.ones((2, 2)))

    def test_empty_assemble(self):
        M = PetscLikeMat(3)
        A = M.assemble()
        assert A.nnz == 0


class TestPhase2:
    def test_frozen_reassembly_identical(self):
        M = PetscLikeMat(5)
        rows, cols, vals = small_blocks()
        for r, c, v in zip(rows, cols, vals):
            M.set_values(r, c, v)
        A1 = M.assemble().copy()
        assert M.frozen
        M.zero_entries()
        for r, c, v in zip(rows, cols, vals):
            M.set_values(r, c, v)
        A2 = M.assemble()
        assert abs(A1 - A2).max() == 0.0

    def test_frozen_scaled_values(self):
        M = PetscLikeMat(5)
        rows, cols, vals = small_blocks()
        for r, c, v in zip(rows, cols, vals):
            M.set_values(r, c, v)
        A1 = M.assemble().copy()
        M.zero_entries()
        for r, c, v in zip(rows, cols, vals):
            M.set_values(r, c, 2.0 * v)
        A2 = M.assemble()
        assert abs(A2 - 2.0 * A1).max() < 1e-14

    def test_outside_pattern_raises(self):
        M = PetscLikeMat(5)
        M.set_values([0], [0], np.array([[1.0]]))
        M.assemble()
        with pytest.raises(KeyError):
            M.set_values([4], [4], np.array([[1.0]]))

    def test_nnz(self):
        M = PetscLikeMat(5)
        rows, cols, vals = small_blocks()
        for r, c, v in zip(rows, cols, vals):
            M.set_values(r, c, v)
        M.assemble()
        assert M.nnz == 7  # 4 + 4 - 1 shared (1,1)

    def test_nnz_before_assemble_raises(self):
        with pytest.raises(RuntimeError):
            PetscLikeMat(3).nnz

    def test_call_counter(self):
        M = PetscLikeMat(5)
        rows, cols, vals = small_blocks()
        for r, c, v in zip(rows, cols, vals):
            M.set_values(r, c, v)
        assert M.set_values_calls == 2


class TestRandomized:
    def test_matches_direct_coo(self):
        rng = np.random.default_rng(11)
        n = 30
        M = PetscLikeMat(n)
        dense = np.zeros((n, n))
        blocks = []
        for _ in range(25):
            idx = rng.choice(n, size=4, replace=False)
            B = rng.normal(size=(4, 4))
            blocks.append((idx, B))
            M.set_values(idx, idx, B)
            dense[np.ix_(idx, idx)] += B
        A1 = M.assemble().toarray()
        assert np.allclose(A1, dense)
        # phase 2 replay with different values
        M.zero_entries()
        dense2 = np.zeros((n, n))
        for idx, B in blocks:
            M.set_values(idx, idx, -0.5 * B)
            dense2[np.ix_(idx, idx)] += -0.5 * B
        assert np.allclose(M.assemble().toarray(), dense2)
