"""Structural properties of the Landau tensors and the assembled fields.

These are the invariants the packed-table fast path relies on (shared
``Krz == Drz`` / ``Kzz == Dzz`` components, tensor symmetry), plus the
physical conservation laws of the weak-form operator and the equality of
the cached and chunked-on-the-fly field evaluations.
"""

import numpy as np
import pytest

from repro.backend import NumbaBackend, available_backends
from repro.core import (
    AssemblyOptions,
    LandauOperator,
    SpeciesSet,
    deuterium,
    electron,
)
from repro.core.landau_tensor import landau_tensors_cyl
from repro.core.maxwellian import maxwellian_rz, species_maxwellian


@pytest.fixture(scope="module")
def point_pairs():
    """A deterministic scatter of distinct (x, y) point pairs."""
    rng = np.random.default_rng(20260806)
    n = 40
    r1 = rng.uniform(0.05, 3.0, n)
    z1 = rng.uniform(-3.0, 3.0, n)
    r2 = rng.uniform(0.05, 3.0, n)
    z2 = rng.uniform(-3.0, 3.0, n)
    # keep the pairs clearly separated so no singular masking kicks in
    keep = (r1 - r2) ** 2 + (z1 - z2) ** 2 > 1e-4
    return r1[keep], z1[keep], r2[keep], z2[keep]


class TestTensorSymmetry:
    def test_ud_is_matrix_symmetric(self, point_pairs):
        r1, z1, r2, z2 = point_pairs
        UD, _ = landau_tensors_cyl(r1, z1, r2, z2)
        assert np.allclose(UD[..., 0, 1], UD[..., 1, 0], atol=1e-14)

    def test_shared_components_krz_drz_kzz_dzz(self, point_pairs):
        """The packed 5-table layout rests on these identities."""
        r1, z1, r2, z2 = point_pairs
        UD, UK = landau_tensors_cyl(r1, z1, r2, z2)
        assert np.allclose(UK[..., 0, 1], UD[..., 0, 1], atol=1e-14)
        assert np.allclose(UK[..., 1, 1], UD[..., 1, 1], atol=1e-14)

    def test_point_swap_transposes_uk(self, point_pairs):
        """U^K(x, y) == U^K(y, x)^T under swapping field/source points."""
        r1, z1, r2, z2 = point_pairs
        _, UK = landau_tensors_cyl(r1, z1, r2, z2)
        _, UK_swap = landau_tensors_cyl(r2, z2, r1, z1)
        assert np.allclose(UK, np.swapaxes(UK_swap, -1, -2), atol=1e-12)

    def test_point_swap_invariant_components(self, point_pairs):
        """``Dzz`` and ``Krr`` are unchanged under a point swap."""
        r1, z1, r2, z2 = point_pairs
        UD, UK = landau_tensors_cyl(r1, z1, r2, z2)
        UD_swap, UK_swap = landau_tensors_cyl(r2, z2, r1, z1)
        assert np.allclose(UD[..., 1, 1], UD_swap[..., 1, 1], atol=1e-12)
        assert np.allclose(UK[..., 0, 0], UK_swap[..., 0, 0], atol=1e-12)


@pytest.fixture(scope="module")
def shifted_state(ed_fs, ed_species):
    """A shifted/heated two-species state with nonzero flows."""
    return [
        ed_fs.interpolate(
            lambda r, z, s=s, a=0.1 * (i + 1): maxwellian_rz(
                r, z - a, s.density, s.thermal_velocity
            )
        )
        for i, s in enumerate(ed_species)
    ]


class TestFieldProperties:
    def test_gd_is_symmetric(self, ed_operator, shifted_state):
        G_D, _ = ed_operator.fields(shifted_state)
        assert np.array_equal(G_D[:, 0, 1], G_D[:, 1, 0])

    @pytest.mark.parametrize("budget", [50_000, 200_000, 1_000_000])
    def test_chunked_fields_match_cached(self, ed_fs, ed_species, ed_operator, shifted_state, budget):
        """On-the-fly evaluation must not depend on the row-chunk size."""
        G_D, G_K = ed_operator.fields(shifted_state)
        opts = AssemblyOptions(memory_budget=budget)
        op = LandauOperator(ed_fs, ed_species, options=opts)
        assert not op.pair_tables_cached  # budgets above force chunking
        G_D2, G_K2 = op.fields(shifted_state)
        assert np.allclose(G_D2, G_D, atol=1e-12 * max(np.abs(G_D).max(), 1))
        assert np.allclose(G_K2, G_K, atol=1e-12 * max(np.abs(G_K).max(), 1))

    def test_chunk_sizes_differ_across_budgets(self, ed_operator):
        N = ed_operator.N
        small = AssemblyOptions(memory_budget=50_000).row_chunk(N)
        large = AssemblyOptions(memory_budget=1_000_000).row_chunk(N)
        assert 1 <= small < large


class TestConservation:
    """Weak moments of ``apply()``: density exactly, momentum/energy to
    discretization accuracy (1, z, r^2+z^2 are in the Q3 space)."""

    def test_density_conserved_per_species(self, ed_fs, ed_operator, shifted_state):
        C = ed_operator.apply(shifted_state)
        ones = np.ones(ed_fs.ndofs)
        for a in range(len(C)):
            scale = max(np.abs(C[a]).sum(), 1e-300)
            assert abs(ones @ C[a]) < 1e-10 * scale

    def test_momentum_conserved_summed(self, ed_fs, ed_species, ed_operator, shifted_state):
        C = ed_operator.apply(shifted_state)
        psi_z = ed_fs.interpolate(lambda r, z: z)
        contributions = [
            s.mass * (psi_z @ C[a]) for a, s in enumerate(ed_species)
        ]
        individual = max(abs(c) for c in contributions)
        assert individual > 0  # momentum IS exchanged
        assert abs(sum(contributions)) < 1e-4 * individual

    def test_energy_conserved_summed(self, ed_fs, ed_species, ed_operator, shifted_state):
        C = ed_operator.apply(shifted_state)
        psi_e = ed_fs.interpolate(lambda r, z: r * r + z * z)
        contributions = [
            0.5 * s.mass * (psi_e @ C[a]) for a, s in enumerate(ed_species)
        ]
        scale = max(np.abs(C[a]).sum() for a in range(len(C)))
        assert abs(sum(contributions)) < 1e-4 * scale

    def test_maxwellian_equilibrium_is_stationary(self, ed_fs, ed_species):
        """Same-temperature Maxwellians are a fixed point of the operator."""
        op = LandauOperator(ed_fs, ed_species)
        # any isotropic Maxwellian is near-stationary, so the comparison
        # state must be anisotropic (T_perp != T_par)
        def aniso(s):
            vr, vz = 0.6 * s.thermal_velocity, 1.2 * s.thermal_velocity

            def f(r, z):
                return (
                    s.density
                    * np.exp(-((r / vr) ** 2) - (z / vz) ** 2)
                    / (np.pi**1.5 * vr * vr * vz)
                )

            return f

        f_eq = [ed_fs.interpolate(species_maxwellian(s)) for s in ed_species]
        f_ne = [ed_fs.interpolate(aniso(s)) for s in ed_species]
        C_eq = op.apply(f_eq)
        C_ne = op.apply(f_ne)
        drift = max(np.linalg.norm(c) for c in C_eq)
        drive = max(np.linalg.norm(c) for c in C_ne)
        assert drift < 0.05 * drive


# ----------------------------------------------------------------------
# Property-based randomized conservation: seeded Maxwellian mixtures, the
# same invariants on every execution backend, and cross-backend agreement
# of the moment residuals and the entropy-production sign.

#: explicit skip-marked params — a missing numba never silently shrinks
#: the property matrix
PROPERTY_BACKENDS = [
    pytest.param(
        n,
        id=n,
        marks=(
            []
            if n in available_backends()
            else [
                pytest.mark.skip(
                    reason=f"backend {n!r} unavailable in this container"
                )
            ]
        ),
    )
    for n in ("numpy", "threaded", "numba")
]

SEEDS = [0, 1, 2]


def _random_maxwellian_mix(fs, species, seed):
    """A seeded random multi-Maxwellian state per species: 1-3 shifted,
    heated/cooled components with random weights."""
    rng = np.random.default_rng(20260808 + 1000 * seed)
    fields = []
    for s in species:
        f = np.zeros(fs.ndofs)
        for _ in range(int(rng.integers(1, 4))):
            dens = float(rng.uniform(0.3, 1.2))
            vth = float(s.thermal_velocity * rng.uniform(0.6, 1.3))
            shift = float(rng.uniform(-0.25, 0.25))
            f = f + fs.interpolate(
                lambda r, z, d=dens, v=vth, a=shift: maxwellian_rz(
                    r, z - a, d, v
                )
            )
        fields.append(f)
    return fields


def _apply_on(fs, species, fields, backend_name):
    op = LandauOperator(
        fs,
        species,
        options=AssemblyOptions.from_env(
            backend=backend_name,
            num_threads=2 if backend_name != "numpy" else 0,
        ),
    )
    return op.apply(fields)


def _invariants(fs, species, fields, C):
    """(per-species density, summed momentum, summed energy, entropy
    production) weak moments of the collision output ``C``."""
    ones = np.ones(fs.ndofs)
    psi_z = fs.interpolate(lambda r, z: z)
    psi_e = fs.interpolate(lambda r, z: r * r + z * z)
    dens = np.array([ones @ C[a] for a in range(len(C))])
    mom = sum(s.mass * (psi_z @ C[a]) for a, s in enumerate(species))
    eng = sum(0.5 * s.mass * (psi_e @ C[a]) for a, s in enumerate(species))
    # Boltzmann H production: dH/dt = sum_a <log f_a, C_a> (<= 0 up to
    # discretization error); f is clipped away from zero under the log
    ent = sum(
        np.log(np.maximum(fields[a], 1e-300)) @ C[a] for a in range(len(C))
    )
    return dens, mom, eng, ent


class TestRandomizedConservation:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", PROPERTY_BACKENDS)
    def test_invariants_hold_per_backend(self, ed_fs, ed_species, seed, name):
        fields = _random_maxwellian_mix(ed_fs, ed_species, seed)
        C = _apply_on(ed_fs, ed_species, fields, name)
        dens, mom, eng, _ = _invariants(ed_fs, ed_species, fields, C)
        scale = max(np.abs(C[a]).sum() for a in range(len(C)))
        assert np.abs(dens).max() < 1e-10 * scale
        assert abs(mom) < 1e-4 * scale
        assert abs(eng) < 1e-4 * scale

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", PROPERTY_BACKENDS)
    def test_invariants_identical_to_numpy(
        self, ed_fs, ed_species, seed, name
    ):
        """Moment residuals and the entropy-production value (hence its
        sign) agree across backends to the conformance tolerance."""
        fields = _random_maxwellian_mix(ed_fs, ed_species, seed)
        C_ref = _apply_on(ed_fs, ed_species, fields, "numpy")
        C = _apply_on(ed_fs, ed_species, fields, name)
        ref = _invariants(ed_fs, ed_species, fields, C_ref)
        got = _invariants(ed_fs, ed_species, fields, C)
        scale = max(np.abs(C_ref[a]).sum() for a in range(len(C_ref)))
        assert np.abs(got[0] - ref[0]).max() <= 1e-12 * scale
        for g, r in zip(got[1:], ref[1:]):
            assert abs(g - r) <= 1e-12 * max(scale, abs(r))
        assert np.sign(got[3]) == np.sign(ref[3])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_entropy_production_sign(self, ed_fs, ed_species, seed):
        """H-theorem: clearly non-equilibrium mixtures produce entropy
        (negative dH/dt) on the reference backend."""
        fields = _random_maxwellian_mix(ed_fs, ed_species, seed)
        C = _apply_on(ed_fs, ed_species, fields, "numpy")
        _, _, _, ent = _invariants(ed_fs, ed_species, fields, C)
        scale = max(np.abs(C[a]).sum() for a in range(len(C)))
        assert ent < 1e-8 * scale  # <= 0 up to discretization noise
