"""ASCII reporting helpers."""

import pytest

from repro.report import ascii_plot, format_table


class TestTable:
    def test_basic(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.5" in out and "x" in out

    def test_alignment(self):
        out = format_table(["col"], [[1], [100]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # fixed width


class TestPlot:
    def test_series_rendered(self):
        x = list(range(10))
        out = ascii_plot(x, {"lin": [2 * v for v in x], "quad": [v * v for v in x]})
        assert "*" in out and "+" in out
        assert "lin" in out and "quad" in out

    def test_log_scale(self):
        x = [0, 1, 2, 3]
        out = ascii_plot(x, {"exp": [1.0, 10.0, 100.0, 1000.0]}, logy=True)
        assert "log10" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([1], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {})
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"a": [1.0]})

    def test_constant_series(self):
        out = ascii_plot([0, 1, 2], {"c": [5.0, 5.0, 5.0]})
        assert "c" in out
