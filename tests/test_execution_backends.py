"""The execution-backend layer: registry/env selection, cross-backend
numerical equivalence on a two-species quench vertex, the deprecation
shims, and the launch-reduction zero-launch regression."""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    BackendUnavailable,
    NumbaBackend,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    get_backend,
    resolve_backend_name,
)
from repro.core import LandauOperator
from repro.core.batch import BatchedVertexSolver, BatchStats
from repro.core.maxwellian import maxwellian_rz, species_maxwellian
from repro.core.options import AssemblyOptions
from repro.serve.shard import ShardWorker
from repro.sparse.band import CachedBandSolverFactory

TOL = 1e-12

#: backends exercised by the equivalence suite.  Every backend is always
#: parameterized; ones the container lacks (numba) carry an explicit skip
#: mark so the leg shows up as a *visible* skip instead of silently
#: vanishing from the matrix.
EQUIV_BACKENDS = [
    pytest.param(
        n,
        id=n,
        marks=(
            []
            if n in available_backends()
            else [
                pytest.mark.skip(
                    reason=f"backend {n!r} unavailable in this container"
                )
            ]
        ),
    )
    for n in ("numpy", "threaded", "numba", "process")
]


@pytest.fixture(scope="module")
def quench_fields(ed_fs, ed_species):
    """A thermal-quench vertex: electrons cooled to 70% of their thermal
    speed with a small flow, cold bulk deuterium unchanged."""
    e, d = ed_species[0], ed_species[1]
    fe = ed_fs.interpolate(
        lambda r, z: maxwellian_rz(r, z - 0.1, 1.0, 0.7 * e.thermal_velocity)
    )
    fd = ed_fs.interpolate(species_maxwellian(d))
    return [fe, fd]


def _operator(fs, species, backend_name):
    return LandauOperator(
        fs,
        species,
        options=AssemblyOptions.from_env(
            backend=backend_name,
            num_threads=2 if backend_name != "numpy" else 0,
        ),
    )


class TestRegistry:
    def test_auto_resolution(self):
        assert resolve_backend_name("auto", num_threads=1) == "numpy"
        assert resolve_backend_name("auto", num_threads=4) == "threaded"
        assert resolve_backend_name(None, num_threads=1) == "numpy"
        assert resolve_backend_name("", num_threads=2) == "threaded"

    def test_unknown_name_lists_valid_choices(self):
        with pytest.raises(
            ValueError, match="auto, numpy, threaded, numba, process"
        ):
            resolve_backend_name("cupy")
        assert set(BACKEND_NAMES) == {"numpy", "threaded", "numba", "process"}

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("threaded", num_threads=3) is get_backend(
            "threaded", num_threads=3
        )

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert "threaded" in available_backends()

    @pytest.mark.skipif(
        NumbaBackend.available(), reason="numba installed in this container"
    )
    def test_missing_numba_is_actionable(self):
        with pytest.raises(BackendUnavailable, match="numba"):
            get_backend("numba")

    def test_options_reject_bad_backend(self):
        with pytest.raises(ValueError, match="execution backend"):
            AssemblyOptions(backend="bogus")

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threaded")
        assert AssemblyOptions.from_env().backend == "threaded"
        monkeypatch.setenv("REPRO_BACKEND", "Numpy ")
        assert AssemblyOptions.from_env().resolved_backend() == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "cuda")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            AssemblyOptions.from_env()

    def test_process_backend_registered(self, monkeypatch):
        assert "process" in available_backends()
        assert resolve_backend_name("process", num_threads=1) == "process"
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert AssemblyOptions.from_env().resolved_backend() == "process"

    def test_process_serial_fallback_is_bitwise_numpy(self, monkeypatch):
        """workers == 1 never spawns processes and matches numpy bitwise."""
        from repro.backend.process_pool import ProcessPoolBackend

        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "1")
        pb = ProcessPoolBackend()
        try:
            assert pb.workers == 1 and pb._pools is None
            rng = np.random.default_rng(5)
            A = rng.normal(size=(19, 13))
            Bm = rng.normal(size=(13, 17))
            assert np.array_equal(pb.matmul(A, Bm), NumpyBackend().matmul(A, Bm))
            assert pb._pools is None  # still no worker processes
        finally:
            pb.close()


class TestBackendPrimitives:
    """The small ops every backend must reproduce from the reference."""

    @pytest.mark.parametrize("name", EQUIV_BACKENDS)
    def test_matmul_contract_scatter(self, name):
        ref = NumpyBackend()
        be = get_backend(name, num_threads=4)
        rng = np.random.default_rng(11)
        A = rng.normal(size=(37, 23))
        Bm = rng.normal(size=(23, 41))
        assert np.allclose(be.matmul(A, Bm), ref.matmul(A, Bm), atol=TOL)
        X = rng.normal(size=(5, 7, 3))
        Y = rng.normal(size=(7, 3))
        got = be.contract("bij,ij->bi", X, Y)
        assert np.allclose(got, ref.contract("bij,ij->bi", X, Y), atol=TOL)

    def test_parallel_for_covers_all_blocks(self):
        be = ThreadedBackend(num_threads=4)
        hits = np.zeros(97, dtype=int)

        def fill(i0, i1):
            hits[i0:i1] += 1

        be.parallel_for(be.batch_blocks(97), fill)
        assert np.all(hits == 1)


class TestQuenchEquivalence:
    """Every backend matches the numpy reference to <= 1e-12 on the
    two-species quench vertex: Jacobian, implicit step, band solves."""

    @pytest.mark.parametrize("name", EQUIV_BACKENDS)
    def test_jacobian_matches(self, ed_fs, ed_species, quench_fields, name):
        ref = _operator(ed_fs, ed_species, "numpy")
        op = _operator(ed_fs, ed_species, name)
        J_ref = ref.jacobian(quench_fields)
        J = op.jacobian(quench_fields)
        for a in range(len(ed_species)):
            scale = np.abs(J_ref[a].data).max()
            assert (
                np.abs((J[a] - J_ref[a]).toarray()).max() <= TOL * scale
            ), f"species {a} Jacobian diverges on backend {name}"

    @pytest.mark.parametrize("name", EQUIV_BACKENDS)
    def test_batched_step_matches(self, ed_fs, ed_species, quench_fields, name):
        states = np.stack(
            [
                np.stack(quench_fields),
                np.stack([0.9 * quench_fields[0], quench_fields[1]]),
            ]
        )
        kw = dict(rtol=1e-9)
        ref = BatchedVertexSolver(
            ed_fs,
            ed_species,
            options=AssemblyOptions.from_env(backend="numpy"),
            **kw,
        )
        bs = BatchedVertexSolver(
            ed_fs,
            ed_species,
            options=AssemblyOptions.from_env(backend=name, num_threads=2),
            **kw,
        )
        out_ref = ref.step(states, dt=0.05)
        out = bs.step(states, dt=0.05)
        assert np.all(bs.last_converged)
        scale = np.abs(out_ref).max()
        assert np.abs(out - out_ref).max() <= TOL * scale

    @pytest.mark.parametrize("name", EQUIV_BACKENDS)
    def test_batched_band_solve_matches(
        self, ed_fs, ed_species, quench_fields, name
    ):
        op = _operator(ed_fs, ed_species, "numpy")
        M = op.mass_matrix.tocsr()
        L = op.jacobian(quench_fields)[0].tocsr()
        template = (M - 0.05 * L).tocsr()
        rng = np.random.default_rng(3)
        X = 4
        data = np.stack(
            [template.data * (1.0 + 0.01 * x) for x in range(X)]
        )
        rhs = rng.normal(size=(X, template.shape[0]))

        ref_solver = CachedBandSolverFactory().factor_batch(
            template, data, backend=NumpyBackend()
        )
        solver = CachedBandSolverFactory().factor_batch(
            template, data, backend=get_backend(name, num_threads=2)
        )
        out_ref = ref_solver.solve_many(rhs)
        out = solver.solve_many(rhs)
        scale = np.abs(out_ref).max()
        assert np.abs(out - out_ref).max() <= TOL * scale
        one = solver.solve(2, rhs[2])
        assert np.abs(one - out_ref[2]).max() <= TOL * scale


class TestDeprecationShims:
    def test_batched_fields_shim(self, ed_fs, ed_species, quench_fields):
        op = _operator(ed_fs, ed_species, "numpy")
        T_D, T_K = op.beta_sums(quench_fields)
        args = (
            (op.w * T_D)[None],
            (op.w * T_K[0])[None],
            (op.w * T_K[1])[None],
        )
        G_D, G_K = op.fields_batch(*args)
        with pytest.warns(DeprecationWarning, match="fields_batch"):
            G_D2, G_K2 = op.batched_fields(*args)
        assert np.array_equal(G_D, G_D2) and np.array_equal(G_K, G_K2)

    def test_batched_species_data_shim(self, ed_fs, ed_species, quench_fields):
        op = _operator(ed_fs, ed_species, "numpy")
        G_D, G_K = op.fields(quench_fields)
        data = op.species_data_batch(G_D[None], G_K[None])
        with pytest.warns(DeprecationWarning, match="species_data_batch"):
            data2 = op.batched_species_data(G_D[None], G_K[None])
        assert np.array_equal(data, data2)

    def test_factor_many_shim(self, ed_fs, ed_species, quench_fields):
        op = _operator(ed_fs, ed_species, "numpy")
        template = op.mass_matrix.tocsr()
        data = np.stack([template.data, 2.0 * template.data])
        ref = CachedBandSolverFactory().factor_batch(template, data)
        factory = CachedBandSolverFactory()
        with pytest.warns(DeprecationWarning, match="factor_batch"):
            legacy = factory.factor_many(template, data)
        b = np.linspace(0.0, 1.0, template.shape[0])
        assert np.array_equal(legacy.solve(0, b), ref.solve(0, b))


class TestLaunchReductionRegression:
    """field_launches == 0 must report a reduction of 0.0, not divide."""

    def test_batch_stats_zero_launches(self):
        assert BatchStats().launch_reduction == 0.0
        st = BatchStats(field_launches=4, equivalent_unbatched_launches=12)
        assert st.launch_reduction == 3.0

    def test_shard_aggregate_zero_launches(self):
        agg = ShardWorker(shard_id=0).solver_counters()
        assert agg["field_launches"] == 0
        assert agg["launch_reduction"] == 0.0
