"""Collision solve service: plan keys, routing, admission control,
micro-batching, the operator-plan cache, and chaos behavior under
injected faults."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import ImplicitLandauSolver, LandauOperator
from repro.core.maxwellian import maxwellian_rz
from repro.core.options import AssemblyOptions
from repro.resilience import FaultInjector, ServiceOverloaded
from repro.serve import (
    CollisionSolveService,
    HashRing,
    JobHandle,
    JobResult,
    PlanCache,
    ServeOptions,
    SolveJob,
    SolvePlan,
)

DT = 0.3


@pytest.fixture(scope="module")
def serve_states(request):
    fs = request.getfixturevalue("fs_q2")
    rng = np.random.default_rng(21)

    def make(vth, drift):
        return fs.interpolate(
            lambda r, z: maxwellian_rz(r, z - drift, 1.0, vth)
        )[None, :]

    return [
        make(0.886 * rng.uniform(0.8, 1.1), rng.uniform(-0.1, 0.1))
        for _ in range(10)
    ]


class TestSolvePlan:
    def test_key_stable_across_instances(self, fs_q2, electron_species):
        p1 = SolvePlan(fs=fs_q2, species=electron_species, dt=DT)
        p2 = SolvePlan(fs=fs_q2, species=electron_species, dt=DT)
        assert p1.key == p2.key
        assert p1 == p2 and hash(p1) == hash(p2)

    def test_key_distinguishes_configuration(self, fs_q2, fs_q3, electron_species):
        base = SolvePlan(fs=fs_q2, species=electron_species, dt=DT)
        assert base.key != SolvePlan(fs=fs_q2, species=electron_species, dt=2 * DT).key
        assert base.key != SolvePlan(fs=fs_q2, species=electron_species, dt=DT, rtol=1e-6).key
        assert base.key != SolvePlan(fs=fs_q3, species=electron_species, dt=DT).key
        assert (
            base.key
            != SolvePlan(
                fs=fs_q2,
                species=electron_species,
                dt=DT,
                options=AssemblyOptions.legacy(),
            ).key
        )

    def test_validation(self, fs_q2, electron_species):
        with pytest.raises(ValueError):
            SolvePlan(fs=fs_q2, species=electron_species, dt=0.0)
        with pytest.raises(ValueError):
            SolvePlan(fs=fs_q2, species=electron_species, dt=DT, rtol=-1.0)


class TestHashRing:
    def test_routing_deterministic_and_in_range(self):
        ring = HashRing(4)
        keys = [f"plan-{i}" for i in range(200)]
        shards = [ring.route(k) for k in keys]
        assert shards == [ring.route(k) for k in keys]
        assert set(shards) <= set(range(4))

    def test_spreads_load(self):
        ring = HashRing(4, vnodes=64)
        counts = [0] * 4
        for i in range(400):
            counts[ring.route(f"plan-{i}")] += 1
        assert min(counts) > 0

    def test_adding_shard_remaps_bounded_fraction(self):
        keys = [f"plan-{i}" for i in range(300)]
        before = [HashRing(4, vnodes=64).route(k) for k in keys]
        after = [HashRing(5, vnodes=64).route(k) for k in keys]
        moved = sum(b != a for b, a in zip(before, after))
        # consistent hashing moves ~1/5 of the key space; a modulo scheme
        # would move ~4/5
        assert moved < len(keys) // 2


class TestJobHandle:
    def test_result_delivered_once(self, fs_q2, electron_species, serve_states):
        plan = SolvePlan(fs=fs_q2, species=electron_species, dt=DT)
        handle = JobHandle(SolveJob(plan=plan, state=serve_states[0]))
        res = JobResult(job_id=handle.job.job_id, status="ok")
        handle.set_result(res)
        with pytest.raises(RuntimeError):
            handle.set_result(res)
        assert handle.result(timeout=1.0) is res

    def test_state_shape_validated(self, fs_q2, electron_species):
        plan = SolvePlan(fs=fs_q2, species=electron_species, dt=DT)
        with pytest.raises(ValueError):
            SolveJob(plan=plan, state=np.zeros((2, 3)))


class TestPlanCache:
    def test_lru_eviction_under_budget(self, fs_q2, electron_species):
        p1 = SolvePlan(fs=fs_q2, species=electron_species, dt=DT)
        p2 = SolvePlan(fs=fs_q2, species=electron_species, dt=2 * DT)
        probe = PlanCache(budget=1 << 40)
        per_plan = probe.get(p1).bytes
        cache = PlanCache(budget=int(1.5 * per_plan))
        cache.get(p1)
        cache.get(p1)
        assert cache.counters()["hits"] == 1
        cache.get(p2)  # over budget: evicts p1
        assert cache.counters()["evictions"] == 1
        assert len(cache) == 1
        cache.get(p1)  # rebuilt: a miss
        c = cache.counters()
        assert (c["hits"], c["misses"], c["evictions"]) == (1, 3, 2)
        assert 0 < c["bytes"] <= cache.budget

    def test_single_over_budget_plan_still_served(self, fs_q2, electron_species):
        cache = PlanCache(budget=1)  # nothing fits
        rt = cache.get(SolvePlan(fs=fs_q2, species=electron_species, dt=DT))
        assert rt is not None and len(cache) == 1


class TestServeOptions:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "5")
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "7")
        monkeypatch.setenv("REPRO_SERVE_MAX_WAIT_MS", "9.5")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_BOUND", "11")
        opt = ServeOptions.from_env()
        assert (opt.num_shards, opt.max_batch, opt.max_wait_ms, opt.queue_bound) == (
            5,
            7,
            9.5,
            11,
        )
        assert ServeOptions.from_env(num_shards=2).num_shards == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeOptions(num_shards=0)
        with pytest.raises(ValueError):
            ServeOptions(executor="gpu")


class TestAdmissionControl:
    def test_overload_rejected(self, fs_q2, electron_species, serve_states):
        plan = SolvePlan(fs=fs_q2, species=electron_species, dt=DT)
        svc = CollisionSolveService(ServeOptions(num_shards=1, queue_bound=2))
        svc.submit(plan, serve_states[0])
        svc.submit(plan, serve_states[1])
        with pytest.raises(ServiceOverloaded):
            svc.submit(plan, serve_states[2])
        assert svc.snapshot()["jobs"]["rejected_submissions"] == 1
        assert svc.drain() == 2  # queued jobs still complete

    def test_deadline_shedding(self, fs_q2, electron_species, serve_states):
        plan = SolvePlan(fs=fs_q2, species=electron_species, dt=DT)
        svc = CollisionSolveService(ServeOptions(num_shards=1))
        shed = svc.submit(plan, serve_states[0], deadline_ms=0.01)
        kept = svc.submit(plan, serve_states[1])
        time.sleep(0.01)
        svc.drain()
        assert shed.result(1.0).status == "shed"
        assert kept.result(1.0).ok
        snap = svc.snapshot()
        assert snap["jobs"]["shed"] == 1 and snap["jobs"]["ok"] == 1


class TestService:
    def test_matches_sequential(self, fs_q2, electron_species, serve_states):
        plan = SolvePlan(fs=fs_q2, species=electron_species, dt=DT, rtol=1e-11)
        svc = CollisionSolveService(ServeOptions(num_shards=2, max_batch=8))
        results = svc.solve_many(plan, serve_states[:6])
        assert all(r.ok for r in results)
        op = LandauOperator(fs_q2, electron_species)
        seq = ImplicitLandauSolver(op, rtol=1e-11)
        for s, r in zip(serve_states[:6], results):
            ref = seq.step([s[0].copy()], DT)[0]
            assert np.abs(r.state[0] - ref).max() <= 1e-10 * np.abs(ref).max()

    def test_microbatch_coalesces_and_caches(
        self, fs_q2, electron_species, serve_states
    ):
        plan = SolvePlan(fs=fs_q2, species=electron_species, dt=DT)
        svc = CollisionSolveService(ServeOptions(num_shards=1, max_batch=8))
        svc.solve_many(plan, serve_states[:8])
        svc.solve_many(plan, serve_states[:8])
        snap = svc.snapshot()
        assert snap["batch_size_hist"] == {"8": 2}
        cache = snap["plan_cache"]
        assert (cache["misses"], cache["hits"]) == (1, 1)
        assert snap["solver"]["launch_reduction"] > 1.5

    def test_threaded_dispatch(self, fs_q2, electron_species, serve_states):
        plan = SolvePlan(fs=fs_q2, species=electron_species, dt=DT)
        with CollisionSolveService(
            ServeOptions(num_shards=2, max_batch=8, max_wait_ms=20.0)
        ) as svc:
            svc.start()
            handles = [svc.submit(plan, s) for s in serve_states]
            results = [h.result(120.0) for h in handles]
            svc.stop()
        assert all(r.ok for r in results)
        assert {r.job_id for r in results} == {h.job.job_id for h in handles}

    def test_drain_requires_stopped_service(self, fs_q2, electron_species):
        svc = CollisionSolveService(ServeOptions(num_shards=1))
        svc.start()
        try:
            with pytest.raises(RuntimeError):
                svc.drain()
        finally:
            svc.stop()


class TestChaos:
    """Fault injection through the delivery path: jobs are retried through
    the resilience backoff path, never lost, never executed twice, and the
    whole run is reproducible bit for bit."""

    def _run(self, fs, species, states):
        plan = SolvePlan(fs=fs, species=species, dt=DT, rtol=1e-10)
        injector = FaultInjector(
            fail_first_solves=2, nan_solve_indices=(4, 7), seed=3
        )
        svc = CollisionSolveService(
            ServeOptions(num_shards=2, max_batch=4), fault_injector=injector
        )
        handles = [svc.submit(plan, s) for s in states]
        svc.drain()
        return [h.result(1.0) for h in handles], svc.snapshot(), injector

    def test_no_job_lost_none_twice_bitwise_stable(
        self, fs_q2, electron_species, serve_states
    ):
        states = serve_states[:8]
        r1, snap1, inj1 = self._run(fs_q2, electron_species, states)
        r2, snap2, _ = self._run(fs_q2, electron_species, states)

        # every job answered exactly once (JobHandle raises on double set)
        assert len(r1) == len(states)
        assert len({r.job_id for r in r1}) == len(states)
        assert all(r.ok for r in r1)

        # the injector fired and its victims went through the retry path
        assert inj1.n_injected >= 4
        assert snap1["jobs"]["retried"] >= 4
        assert snap1["solver"]["retry_steps"] > 0

        # deterministic drain: same batches, same faults, same bits
        assert [r.status for r in r1] == [r.status for r in r2]
        assert [r.retried for r in r1] == [r.retried for r in r2]
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a.state, b.state)
        assert snap1["batch_size_hist"] == snap2["batch_size_hist"]

    def test_fault_injection_rejects_unpicklable_on_process_executor(self):
        # picklable injectors now ship to shard workers (ISSUE-7 lifted
        # the PR-6 blanket ban); only injector state that cannot cross
        # the fork is rejected — and the message must name both the
        # FaultPlan route and the env knob an operator would unset
        inj = FaultInjector(fail_first_solves=1)
        inj.callback = lambda: None
        with pytest.raises(
            ValueError, match="(?s)FaultPlan.*REPRO_SERVE_EXECUTOR"
        ):
            CollisionSolveService(
                ServeOptions(num_shards=1, executor="process"),
                fault_injector=inj,
            )
