"""Adaptive time stepping, conservative projection, and VTK output."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveLandauIntegrator
from repro.core.maxwellian import maxwellian_rz
from repro.core.projection import conservative_projection, moment_functionals
from repro.fem.vtk import field_to_vtk, mesh_to_vtk


@pytest.fixture()
def aniso(fs_q3):
    def f(r, z):
        vr, vz = 0.6, 1.2
        return np.exp(-((r / vr) ** 2) - (z / vz) ** 2) / (np.pi**1.5 * vr * vr * vz)

    return fs_q3.interpolate(f)


class TestAdaptive:
    def test_relaxation_with_step_control(self, electron_operator, aniso, electron_moments):
        integ = AdaptiveLandauIntegrator(electron_operator, tol=1e-3, dt_min=0.01)
        f0 = [aniso]
        m0 = electron_moments.summary(f0)
        f1 = integ.integrate(f0, t_final=2.0, dt0=0.1)
        m1 = electron_moments.summary(f1)
        assert integ.stats.steps_accepted >= 2
        assert m1["n_e"] == pytest.approx(m0["n_e"], rel=1e-10)
        assert m1["energy"] == pytest.approx(m0["energy"], rel=1e-5)

    def test_dt_grows_near_equilibrium(self, electron_operator, fs_q3):
        """At equilibrium the error is tiny, so the controller opens dt."""
        f_eq = fs_q3.interpolate(lambda r, z: maxwellian_rz(r, z, 1.0, 0.886))
        integ = AdaptiveLandauIntegrator(
            electron_operator, tol=1e-4, dt_min=0.01, dt_max=2.0
        )
        integ.integrate([f_eq], t_final=3.0, dt0=0.05)
        dts = integ.stats.dt_history
        assert dts[-1] > dts[0]

    def test_tight_tolerance_rejects_or_shrinks(self, electron_operator, aniso):
        loose = AdaptiveLandauIntegrator(electron_operator, tol=3e-3, dt_min=1e-3)
        tight = AdaptiveLandauIntegrator(electron_operator, tol=1e-6, dt_min=1e-3)
        loose.integrate([aniso], t_final=0.5, dt0=0.25)
        tight.integrate([aniso], t_final=0.5, dt0=0.25)
        assert tight.stats.steps_accepted > loose.stats.steps_accepted

    def test_validation(self, electron_operator, aniso):
        with pytest.raises(ValueError):
            AdaptiveLandauIntegrator(electron_operator, tol=-1.0)
        with pytest.raises(ValueError):
            AdaptiveLandauIntegrator(electron_operator, dt_min=1.0, dt_max=0.5)
        integ = AdaptiveLandauIntegrator(electron_operator)
        with pytest.raises(ValueError):
            integ.integrate([aniso], t_final=0.0)


class TestConservativeProjection:
    def test_identity_when_moments_match(self, fs_q3, aniso):
        f = conservative_projection(fs_q3, aniso)
        assert np.allclose(f, aniso, atol=1e-12)

    def test_enforces_target_moments(self, fs_q3, aniso):
        C = moment_functionals(fs_q3)
        target = C @ aniso * np.array([1.01, 1.0, 0.98])
        f = conservative_projection(fs_q3, aniso, target_moments=target)
        assert np.allclose(C @ f, target, rtol=1e-10)

    def test_minimal_perturbation(self, fs_q3, aniso):
        """The correction is small when the moment error is small."""
        C = moment_functionals(fs_q3)
        m = C @ aniso
        f = conservative_projection(fs_q3, aniso, target_moments=m * 1.001)
        rel = np.linalg.norm(f - aniso) / np.linalg.norm(aniso)
        assert rel < 0.05

    def test_repairs_interpolation_density_error(self, fs_q3, electron_moments):
        """Nodal interpolation of a Maxwellian misses density by ~1e-3;
        the conservative projection restores it exactly."""
        g = fs_q3.interpolate(lambda r, z: maxwellian_rz(r, z, 1.0, 0.886))
        n_raw = electron_moments.species_moments(0, g).density
        assert abs(n_raw - 1.0) > 1e-7  # there is an error to repair
        C = moment_functionals(fs_q3)
        m = C @ g
        m[0] = 1.0 / (2 * np.pi)  # exact density (C omits the 2 pi)
        f = conservative_projection(fs_q3, g, target_moments=m)
        n_fixed = electron_moments.species_moments(0, f).density
        assert n_fixed == pytest.approx(1.0, abs=1e-12)

    def test_validation(self, fs_q3, aniso):
        with pytest.raises(ValueError):
            conservative_projection(fs_q3, aniso[:-1])
        with pytest.raises(ValueError):
            conservative_projection(fs_q3, aniso, target_moments=np.ones(4))


class TestVtk:
    def test_mesh_roundtrip_header(self, small_mesh):
        txt = mesh_to_vtk(small_mesh)
        assert txt.startswith("# vtk DataFile")
        assert f"CELLS {small_mesh.nelem}" in txt
        assert txt.count("\n9") >= small_mesh.nelem - 1  # VTK_QUAD tags

    def test_mesh_cell_data(self, small_mesh):
        level = np.log2(small_mesh.size[:, 0].max() / small_mesh.size[:, 0])
        txt = mesh_to_vtk(small_mesh, {"level": level})
        assert "SCALARS level double 1" in txt
        with pytest.raises(ValueError):
            mesh_to_vtk(small_mesh, {"bad": np.ones(3)})

    def test_field_output_values(self, fs_q3, aniso):
        txt = field_to_vtk(fs_q3, {"f_e": aniso})
        assert "SCALARS f_e double 1" in txt
        # number of points: ne * (k+1)^2 with k = order
        npts = fs_q3.nelem * (fs_q3.element.order + 1) ** 2
        assert f"POINTS {npts} double" in txt

    def test_field_refine_validation(self, fs_q3, aniso):
        with pytest.raises(ValueError):
            field_to_vtk(fs_q3, {"f": aniso}, refine=0)
        with pytest.raises(ValueError):
            field_to_vtk(fs_q3, {"f": aniso[:-2]})
