"""Cross-backend equivalence: every execution path of the operator must
produce the same matrices and updates.

The CPU reference (``LandauOperator.jacobian``), the CUDA-sim kernel
(:class:`CudaLandauJacobian`), the Kokkos-sim kernel
(:class:`KokkosLandauJacobian`) and the batched per-vertex path
(:class:`BatchedVertexSolver`) are four implementations of the same
discrete operator; any drift between them is a bug.  The grid covers a
conforming structured mesh and the AMR mesh (hanging-node constraints),
with single- and two-species sets, plus every :class:`AssemblyOptions`
variant of the CPU path (structure caching, packed tables, thread counts
1 and 4).
"""

import numpy as np
import pytest

from repro.amr import landau_mesh
from repro.core import (
    AssemblyOptions,
    BatchedVertexSolver,
    ImplicitLandauSolver,
    LandauOperator,
    SpeciesSet,
    deuterium,
    electron,
)
from repro.core.kernel_cuda import CudaLandauJacobian
from repro.core.kernel_kokkos import KokkosLandauJacobian
from repro.core.maxwellian import maxwellian_rz, species_maxwellian
from repro.fem import FunctionSpace, Mesh
from repro.kokkos import KOKKOS_OPENMP
from repro.kokkos.backends import fresh_backend


def _make_fs(kind: str) -> FunctionSpace:
    if kind == "structured":
        return FunctionSpace(Mesh.structured(3, 3, 4.0, -4.0, 4.0), order=2)
    # the paper's AMR mesh: exercises hanging-node constraint folding
    return FunctionSpace(landau_mesh([electron().thermal_velocity]), order=3)


def _make_species(kind: str) -> SpeciesSet:
    if kind == "e":
        return SpeciesSet([electron()])
    return SpeciesSet([electron(), deuterium()])


@pytest.fixture(scope="module", params=["structured", "amr"])
def mesh_fs(request):
    return _make_fs(request.param)


@pytest.fixture(scope="module", params=["e", "ed"])
def system(mesh_fs, request):
    spc = _make_species(request.param)
    op = LandauOperator(mesh_fs, spc)
    # slightly perturbed states so cross-species terms are nonzero
    fields = [
        mesh_fs.interpolate(
            lambda r, z, s=s, a=0.05 * (i + 1): maxwellian_rz(
                r, z - a, s.density, s.thermal_velocity
            )
        )
        for i, s in enumerate(spc)
    ]
    return mesh_fs, spc, op, fields


def _assert_matches(dense_backend, ref_sparse, label):
    for s, ref in enumerate(ref_sparse):
        dense = ref.toarray()
        tol = 1e-12 * max(np.abs(dense).max(), 1.0)
        assert np.allclose(dense_backend[s], dense, atol=tol), (
            f"{label}: species {s} deviates by "
            f"{np.abs(dense_backend[s] - dense).max():.3e}"
        )


class TestKernelBackends:
    def test_cuda_matches_reference(self, system):
        fs, spc, op, fields = system
        ref = op.jacobian(fields)
        J = CudaLandauJacobian(fs, spc).build(fields)
        _assert_matches(J, ref, "cuda-sim")

    def test_kokkos_matches_reference(self, system):
        fs, spc, op, fields = system
        ref = op.jacobian(fields)
        bk = fresh_backend(KOKKOS_OPENMP)
        J = KokkosLandauJacobian(fs, spc, backend=bk).build(fields)
        _assert_matches(J, ref, "kokkos-sim")

    def test_cuda_matches_kokkos(self, system):
        fs, spc, op, fields = system
        J_cuda = CudaLandauJacobian(fs, spc).build(fields)
        bk = fresh_backend(KOKKOS_OPENMP)
        J_kk = KokkosLandauJacobian(fs, spc, backend=bk).build(fields)
        scale = max(np.abs(J_cuda).max(), 1.0)
        assert np.allclose(J_cuda, J_kk, atol=1e-12 * scale)


class TestBatchedVertexPath:
    def test_batched_fields_match_reference(self, system):
        fs, spc, op, fields = system
        G_D, G_K = op.fields(fields)
        bvs = BatchedVertexSolver(fs, spc)
        states = np.stack([np.stack(fields)] * 3)  # three identical vertices
        bG_D, bG_K = bvs._batched_fields(states)
        for b in range(3):
            assert np.allclose(bG_D[b], G_D, atol=1e-12 * max(np.abs(G_D).max(), 1))
            assert np.allclose(bG_K[b], G_K, atol=1e-12 * max(np.abs(G_K).max(), 1))

    def test_batched_matrices_match_reference(self, system):
        fs, spc, op, fields = system
        G_D, G_K = op.fields(fields)
        ref = [op.species_matrix(s, G_D, G_K) for s in range(len(spc))]
        bvs = BatchedVertexSolver(fs, spc)
        mats = bvs.op.species_matrices(G_D, G_K)
        for a, b in zip(mats, ref):
            scale = max(abs(b).max(), 1.0)
            assert abs(a - b).max() < 1e-12 * scale

    def test_batched_step_matches_implicit_solver(self, system):
        fs, spc, op, fields = system
        dt, rtol = 0.05, 1e-10
        solver = ImplicitLandauSolver(
            LandauOperator(fs, spc), rtol=rtol, max_newton=50
        )
        ref = solver.step([x.copy() for x in fields], dt)
        bvs = BatchedVertexSolver(fs, spc, rtol=rtol, max_newton=50)
        out = bvs.step(np.stack(fields)[None], dt)
        for s in range(len(spc)):
            scale = max(np.abs(ref[s]).max(), 1.0)
            assert np.allclose(out[0, s], ref[s], atol=1e-8 * scale)


# every AssemblyOptions variant must reproduce the seed (legacy) matrices
OPTION_VARIANTS = [
    pytest.param(AssemblyOptions.legacy(), id="legacy"),
    pytest.param(AssemblyOptions(cache_structure=True, packed_tables=False), id="cache-only"),
    pytest.param(AssemblyOptions(cache_structure=False, packed_tables=True), id="packed-only"),
    pytest.param(AssemblyOptions(num_threads=1), id="threads-1"),
    pytest.param(AssemblyOptions(num_threads=4), id="threads-4"),
    pytest.param(AssemblyOptions(), id="all-on"),
]


class TestOptionsEquivalence:
    @pytest.mark.parametrize("options", OPTION_VARIANTS)
    def test_jacobian_invariant_under_options(self, system, options):
        fs, spc, op, fields = system
        ref = op.jacobian(fields)
        J = LandauOperator(fs, spc, options=options).jacobian(fields)
        for a, b in zip(J, ref):
            scale = max(abs(b).max(), 1.0)
            assert abs(a - b).max() < 1e-12 * scale

    @pytest.mark.parametrize("threads", [1, 4])
    def test_uncached_chunked_fields_invariant(self, mesh_fs, threads):
        """The chunked on-the-fly fields path (tables too big to cache)
        must match the cached path, serial and threaded."""
        spc = _make_species("ed")
        fields = [mesh_fs.interpolate(species_maxwellian(s)) for s in spc]
        ref_op = LandauOperator(mesh_fs, spc)
        G_D, G_K = ref_op.fields(fields)
        opts = AssemblyOptions(num_threads=threads, memory_budget=200_000)
        op = LandauOperator(mesh_fs, spc, options=opts)
        assert not op.pair_tables_cached
        G_D2, G_K2 = op.fields(fields)
        assert np.allclose(G_D2, G_D, atol=1e-12 * max(np.abs(G_D).max(), 1))
        assert np.allclose(G_K2, G_K, atol=1e-12 * max(np.abs(G_K).max(), 1))
        if threads > 1:
            assert op.counters["parallel_builds"] >= 1
