"""Shared fixtures: small meshes/spaces/operators reused across the suite.

Session-scoped where construction is expensive (pair tables are O(N^2));
tests must not mutate fixture state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amr import landau_mesh
from repro.core import (
    ImplicitLandauSolver,
    LandauOperator,
    Moments,
    SpeciesSet,
    deuterium,
    electron,
)
from repro.core.maxwellian import species_maxwellian
from repro.fem import FunctionSpace, Mesh


@pytest.fixture(scope="session")
def electron_species() -> SpeciesSet:
    return SpeciesSet([electron()])


@pytest.fixture(scope="session")
def ed_species() -> SpeciesSet:
    return SpeciesSet([electron(), deuterium()])


@pytest.fixture(scope="session")
def small_mesh() -> Mesh:
    """The paper's 20-cell single-species AMR mesh."""
    return landau_mesh([electron().thermal_velocity])


@pytest.fixture(scope="session")
def fs_q3(small_mesh) -> FunctionSpace:
    return FunctionSpace(small_mesh, order=3)


@pytest.fixture(scope="session")
def fs_q2(small_mesh) -> FunctionSpace:
    return FunctionSpace(small_mesh, order=2)


@pytest.fixture(scope="session")
def structured_fs() -> FunctionSpace:
    """Conforming structured mesh (no hanging nodes)."""
    return FunctionSpace(Mesh.structured(3, 4, 2.0, -2.0, 2.0), order=3)


@pytest.fixture(scope="session")
def electron_operator(fs_q3, electron_species) -> LandauOperator:
    return LandauOperator(fs_q3, electron_species)


@pytest.fixture(scope="session")
def ed_fs() -> FunctionSpace:
    spc = SpeciesSet([electron(), deuterium()])
    mesh = landau_mesh([s.thermal_velocity for s in spc])
    return FunctionSpace(mesh, order=3)


@pytest.fixture(scope="session")
def ed_operator(ed_fs, ed_species) -> LandauOperator:
    return LandauOperator(ed_fs, ed_species)


@pytest.fixture(scope="session")
def ed_maxwellians(ed_fs, ed_species) -> list[np.ndarray]:
    return [ed_fs.interpolate(species_maxwellian(s)) for s in ed_species]


@pytest.fixture()
def electron_maxwellian(fs_q3, electron_species) -> np.ndarray:
    return fs_q3.interpolate(species_maxwellian(electron_species[0]))


@pytest.fixture(scope="session")
def electron_moments(fs_q3, electron_species) -> Moments:
    return Moments(fs_q3, electron_species)
