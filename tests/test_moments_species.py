"""Moments, species data and Maxwellians (code-unit consistency)."""

import math

import numpy as np
import pytest

from repro import constants as c
from repro.core import Moments, SpeciesSet, deuterium, electron
from repro.core.maxwellian import (
    maxwellian_rz,
    shifted_maxwellian_rz,
    species_maxwellian,
)
from repro.core.species import Species, hydrogenic, tungsten_states


class TestSpecies:
    def test_electron_thermal_velocity(self):
        """v_th(e, T0) = sqrt(2kT0/m_e)/v0 = sqrt(pi)/2."""
        assert electron().thermal_velocity == pytest.approx(math.sqrt(math.pi) / 2)

    def test_mass_scalings(self):
        assert deuterium().mass == pytest.approx(3670.48, rel=1e-3)
        w = tungsten_states()[0]
        assert w.mass == pytest.approx(c.TUNGSTEN_MASS_RATIO)

    def test_thermal_velocity_scalings(self):
        e, d = electron(), deuterium()
        assert e.thermal_velocity / d.thermal_velocity == pytest.approx(
            math.sqrt(d.mass), rel=1e-12
        )
        hot = e.with_temperature(4.0)
        assert hot.thermal_velocity == pytest.approx(2 * e.thermal_velocity)

    def test_validation(self):
        with pytest.raises(ValueError):
            Species("bad", charge=1.0, mass=-1.0)
        with pytest.raises(ValueError):
            Species("bad", charge=1.0, mass=1.0, temperature=0.0)
        with pytest.raises(ValueError):
            SpeciesSet([])
        with pytest.raises(ValueError):
            SpeciesSet([electron(), electron()])

    def test_validation_non_positive_density(self):
        with pytest.raises(ValueError):
            Species("bad", charge=1.0, mass=1.0, density=0.0)
        with pytest.raises(ValueError):
            Species("bad", charge=1.0, mass=1.0, density=-0.5)

    def test_validation_rejects_non_finite(self):
        """NaN slips through ordering comparisons; it must be caught
        explicitly rather than propagate into the operator assembly."""
        nan = float("nan")
        for kwargs in (
            {"mass": nan},
            {"density": nan},
            {"temperature": nan},
            {"temperature": float("inf")},
        ):
            with pytest.raises(ValueError):
                Species("bad", charge=1.0, **{"mass": 1.0, **kwargs})
        with pytest.raises(ValueError):
            Species("bad", charge=nan, mass=1.0)

    def test_quasineutral(self):
        assert SpeciesSet([electron(), deuterium()]).quasineutral()
        assert not SpeciesSet([electron(density=2.0), deuterium()]).quasineutral()
        z = hydrogenic(4.0, density=0.25)
        assert SpeciesSet([electron(), z]).quasineutral()

    def test_tungsten_defaults(self):
        ws = tungsten_states()
        assert len(ws) == 8
        assert len({w.charge for w in ws}) == 8
        assert all(w.mass == ws[0].mass for w in ws)

    def test_arrays(self):
        spc = SpeciesSet([electron(), deuterium()])
        assert np.allclose(spc.charges, [-1.0, 1.0])
        assert spc.masses[1] > 1000


class TestMaxwellian:
    def test_normalization(self, fs_q3, electron_species, electron_moments):
        """2 pi int r f = n to interpolation accuracy on the 20-cell grid."""
        f = fs_q3.interpolate(species_maxwellian(electron_species[0]))
        n = electron_moments.species_moments(0, f).density
        assert n == pytest.approx(1.0, abs=5e-3)

    def test_shift(self):
        v = shifted_maxwellian_rz(0.0, 0.3, 1.0, 1.0, drift_z=0.3)
        assert v == pytest.approx(maxwellian_rz(0.0, 0.0, 1.0, 1.0))

    def test_invalid_vth(self):
        with pytest.raises(ValueError):
            maxwellian_rz(0.0, 0.0, 1.0, 0.0)


class TestMoments:
    def test_temperature_of_reference_maxwellian(
        self, fs_q3, electron_species, electron_moments
    ):
        f = fs_q3.interpolate(species_maxwellian(electron_species[0]))
        m = electron_moments.species_moments(0, f)
        assert m.temperature == pytest.approx(1.0, abs=5e-3)
        assert m.drift_z == pytest.approx(0.0, abs=1e-6)

    def test_energy_of_maxwellian(self, fs_q3, electron_species, electron_moments):
        """W = (3/2) n k T = (3/2)(pi/8) in code units at T = T0."""
        f = fs_q3.interpolate(species_maxwellian(electron_species[0]))
        m = electron_moments.species_moments(0, f)
        assert m.energy == pytest.approx(1.5 * math.pi / 8.0, rel=5e-3)

    def test_current_sign_convention(self, fs_q3, electron_species, electron_moments):
        """Electrons drifting toward -z carry positive J_z."""
        f = fs_q3.interpolate(
            lambda r, z: shifted_maxwellian_rz(
                r, z, 1.0, electron_species[0].thermal_velocity, drift_z=-0.05
            )
        )
        assert electron_moments.current_z([f]) > 0

    def test_drifting_temperature_subtracts_drift(
        self, fs_q3, electron_species, electron_moments
    ):
        vth = electron_species[0].thermal_velocity
        f0 = fs_q3.interpolate(lambda r, z: shifted_maxwellian_rz(r, z, 1.0, vth))
        f1 = fs_q3.interpolate(
            lambda r, z: shifted_maxwellian_rz(r, z, 1.0, vth, drift_z=0.1)
        )
        t0 = electron_moments.species_moments(0, f0).temperature
        t1 = electron_moments.species_moments(0, f1).temperature
        assert t1 == pytest.approx(t0, rel=2e-3)

    def test_summary_keys(self, fs_q3, electron_moments, electron_maxwellian):
        s = electron_moments.summary([electron_maxwellian])
        assert set(s) == {"n_e", "J_z", "T_e", "p_z", "energy"}

    def test_multispecies_current(self, ed_fs, ed_species):
        mom = Moments(ed_fs, ed_species)
        vth_e = ed_species[0].thermal_velocity
        f_e = ed_fs.interpolate(
            lambda r, z: shifted_maxwellian_rz(r, z, 1.0, vth_e, drift_z=-0.02)
        )
        f_d = ed_fs.interpolate(species_maxwellian(ed_species[1]))
        J = mom.current_z([f_e, f_d])
        assert J == pytest.approx(0.02, rel=0.05)
