"""Hand-checked coverage for the quench-layer formulas the UQ reductions
lean on: Connor-Hastie / Dreicer critical fields, the runaway boundary,
Spitzer F(Z) limits, and the QuenchParameters scenario dataclass."""

import math

import numpy as np
import pytest

from repro.quench import (
    ColdPlasmaSource,
    F_Z,
    QuenchParameters,
    ThermalQuenchModel,
    connor_hastie_field_code,
    connor_hastie_field_si,
    dreicer_field_code,
    dreicer_field_si,
    runaway_critical_velocity_code,
    spitzer_eta_code,
    spitzer_eta_si,
)
from repro.units import DEFAULT_UNITS as U


class TestCriticalFields:
    def test_connor_hastie_hand_checked_si(self):
        # E_c = n e^3 lnL / (4 pi eps0^2 m_e c^2) evaluated by hand from
        # CODATA constants at n = 1e20 m^-3, lnL = 10
        assert connor_hastie_field_si(1.0e20, 10.0) == pytest.approx(
            0.05099099140550, rel=1e-10
        )

    def test_dreicer_hand_checked_si(self):
        # E_D = n e^3 lnL / (4 pi eps0^2 k T) at n = 1e20, T_e = 1 keV
        assert dreicer_field_si(1.0e20, 1000.0, 10.0) == pytest.approx(
            26.05634306747, rel=1e-10
        )

    def test_dreicer_over_connor_hastie_is_mc2_over_kT(self):
        # the two fields differ exactly by (c / v_te)^2-like factor
        # m_e c^2 / k T_e; at 1 keV that is ~511
        ratio = dreicer_field_si(1e20, 1000.0) / connor_hastie_field_si(1e20)
        assert ratio == pytest.approx(510.99895, rel=1e-5)

    def test_linearity_in_density_and_coulomb_log(self):
        assert connor_hastie_field_si(2e20, 10.0) == pytest.approx(
            2.0 * connor_hastie_field_si(1e20, 10.0), rel=1e-14
        )
        assert dreicer_field_si(1e20, 500.0, 20.0) == pytest.approx(
            2.0 * dreicer_field_si(1e20, 500.0, 10.0), rel=1e-14
        )
        # Dreicer falls as 1/T
        assert dreicer_field_si(1e20, 2000.0) == pytest.approx(
            0.5 * dreicer_field_si(1e20, 1000.0), rel=1e-14
        )

    def test_input_guards(self):
        with pytest.raises(ValueError):
            connor_hastie_field_si(0.0)
        with pytest.raises(ValueError):
            connor_hastie_field_si(-1e20)
        with pytest.raises(ValueError):
            dreicer_field_si(1e20, 0.0)
        with pytest.raises(ValueError):
            dreicer_field_si(1e20, -5.0)

    def test_code_unit_round_trip(self):
        # code-unit helpers are exactly efield_to_code of the SI values
        assert connor_hastie_field_code(U, 1.0) == pytest.approx(
            U.efield_to_code(connor_hastie_field_si(U.n0, U.coulomb_log)),
            rel=1e-14,
        )
        assert dreicer_field_code(U, 1.0, 1.0) == pytest.approx(
            U.efield_to_code(
                dreicer_field_si(U.n0, U.T0_ev, U.coulomb_log)
            ),
            rel=1e-14,
        )
        # the ratio survives the unit conversion (both are fields)
        assert dreicer_field_code(U) / connor_hastie_field_code(U) == (
            pytest.approx(510.99895, rel=1e-5)
        )


class TestRunawayBoundary:
    def test_no_field_no_runaways(self):
        assert runaway_critical_velocity_code(U, 0.0) == float("inf")
        assert runaway_critical_velocity_code(U, -1.0) == float("inf")

    def test_dreicer_field_puts_vc_at_vte(self):
        # drag balances the field at v_c/v_te = sqrt(E_D/E); at E = E_D
        # the boundary reaches the thermal bulk
        E_D = dreicer_field_code(U)
        v_te = math.sqrt(math.pi) / 2.0
        assert runaway_critical_velocity_code(U, E_D) == pytest.approx(
            v_te, rel=1e-12
        )

    def test_inverse_sqrt_field_scaling(self):
        E = 0.25 * dreicer_field_code(U)
        assert runaway_critical_velocity_code(U, E) == pytest.approx(
            2.0 * runaway_critical_velocity_code(U, 4.0 * E), rel=1e-12
        )

    def test_temperature_scaling(self):
        # v_c = v_te sqrt(E_D/E) with E_D ~ 1/T and v_te ~ sqrt(T): the
        # two cancel, so v_c is temperature-independent at fixed E
        E = 0.1 * dreicer_field_code(U)
        a = runaway_critical_velocity_code(U, E, Te_over_T0=1.0)
        b = runaway_critical_velocity_code(U, E, Te_over_T0=4.0)
        assert a == pytest.approx(b, rel=1e-12)


class TestSpitzer:
    def test_F_Z_hand_checked(self):
        # F(1) = (1 + 1.198 + 0.222) / (1 + 2.966 + 0.753) = 2.420/4.719
        assert F_Z(1.0) == pytest.approx(2.420 / 4.719, rel=1e-12)

    def test_F_Z_lorentz_limit(self):
        # Z -> infinity: F -> 0.222/0.753 (the Lorentz-gas limit)
        assert F_Z(1e9) == pytest.approx(0.222 / 0.753, rel=1e-6)

    def test_F_Z_monotone_decreasing(self):
        zs = [1.0, 2.0, 4.0, 8.0, 16.0, 64.0]
        vals = [F_Z(z) for z in zs]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_F_Z_guard(self):
        with pytest.raises(ValueError):
            F_Z(0.0)
        with pytest.raises(ValueError):
            F_Z(-1.0)

    def test_eta_temperature_scaling(self):
        # eta ~ T_e^(-3/2)
        assert spitzer_eta_si(250.0, 1.0) == pytest.approx(
            8.0 * spitzer_eta_si(1000.0, 1.0), rel=1e-12
        )

    def test_eta_Te_to_zero_guard(self):
        with pytest.raises(ValueError):
            spitzer_eta_si(0.0, 1.0)
        with pytest.raises(ValueError):
            spitzer_eta_si(-100.0, 1.0)
        with pytest.raises(ValueError):
            spitzer_eta_code(U, 0.0, 1.0)
        with pytest.raises(ValueError):
            spitzer_eta_code(U, -0.5, 1.0)

    def test_eta_code_unit_round_trip(self):
        eta_si = spitzer_eta_si(U.T0_ev, 2.0, U.coulomb_log)
        assert spitzer_eta_code(U, 1.0, 2.0) == pytest.approx(
            U.resistivity_to_code(eta_si), rel=1e-14
        )

    def test_eta_Z_dependence_increasing(self):
        # Z F(Z) grows with Z: higher charge means higher resistivity
        etas = [spitzer_eta_si(1000.0, z) for z in (1.0, 2.0, 8.0, 32.0)]
        assert all(a < b for a, b in zip(etas, etas[1:]))


class TestQuenchParameters:
    def test_defaults_valid(self):
        QuenchParameters()

    @pytest.mark.parametrize(
        "kwargs,needle",
        [
            (dict(Z=0.5), "QuenchParameters.Z"),
            (dict(Z=float("nan")), "QuenchParameters.Z"),
            (dict(E0_over_Ec=-0.1), "QuenchParameters.E0_over_Ec"),
            (dict(injection_total=-1.0), "QuenchParameters.injection_total"),
            (dict(injection_start=-0.5), "QuenchParameters.injection_start"),
            (dict(injection_duration=0.0), "QuenchParameters.injection_duration"),
            (dict(cold_temperature=0.0), "QuenchParameters.cold_temperature"),
            (dict(density_factor=0.0), "QuenchParameters.density_factor"),
            (dict(temperature_factor=-1.0), "QuenchParameters.temperature_factor"),
            (dict(runaway_seed_fraction=1.0), "QuenchParameters.runaway_seed_fraction"),
            (dict(runaway_seed_fraction=-0.1), "QuenchParameters.runaway_seed_fraction"),
            (dict(runaway_seed_drift=float("inf")), "QuenchParameters.runaway_seed_drift"),
        ],
    )
    def test_validation_names_offending_field(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle.replace(".", r"\.")):
            QuenchParameters(**kwargs)

    def test_round_trip_and_content_key(self):
        p = QuenchParameters(Z=2.0, injection_total=3.0, density_factor=1.1)
        q = QuenchParameters.from_dict(p.to_dict())
        assert p == q
        assert p.content_key() == q.content_key()
        assert p.content_key() != QuenchParameters().content_key()

    def test_species_quasineutral_with_factors(self):
        p = QuenchParameters(Z=2.0, density_factor=1.3, temperature_factor=0.8)
        spc = p.species()
        e, ion = spc[0], spc[1]
        assert e.charge == -1.0 and ion.charge == 2.0
        assert e.density == pytest.approx(ion.charge * ion.density)
        assert e.density == pytest.approx(1.3)
        assert e.temperature == pytest.approx(0.8)
        assert ion.temperature == pytest.approx(0.8)

    def test_source_carries_pulse_knobs(self):
        p = QuenchParameters(
            injection_total=3.5, injection_duration=7.0, cold_temperature=0.2
        )
        src = p.source(p.species())
        assert isinstance(src, ColdPlasmaSource)
        assert src.total_injected == 3.5
        assert src.duration == 7.0
        assert src.cold_temperature == 0.2

    def test_seed_tail_conserves_density(self, fs_q2):
        from repro.core.moments import Moments

        p0 = QuenchParameters()
        p1 = QuenchParameters(runaway_seed_fraction=0.05, runaway_seed_drift=1.5)
        spc = p1.species()
        mom = Moments(fs_q2, spc)
        f0 = p0.initial_fields(fs_q2, p0.species())[0]
        f1 = p1.initial_fields(fs_q2, spc)[0]
        n0 = mom.species_moments(0, f0).density
        n1 = mom.species_moments(0, f1).density
        # moving 5% of the density into a drifted tail must not change n
        assert n1 == pytest.approx(n0, rel=5e-3)
        # but it must carry momentum
        assert mom.species_moments(0, f1).momentum_z > (
            mom.species_moments(0, f0).momentum_z + 1e-4
        )

    def test_seed_free_fields_match_legacy_bitwise(self, fs_q2):
        from repro.core.maxwellian import species_maxwellian

        p = QuenchParameters(Z=2.0, temperature_factor=1.1)
        spc = p.species()
        fields = p.initial_fields(fs_q2, spc)
        legacy = [fs_q2.interpolate(species_maxwellian(s)) for s in spc]
        for a, b in zip(fields, legacy):
            assert np.array_equal(a, b)

    def test_model_accepts_params(self):
        p = QuenchParameters(Z=2.0, E0_over_Ec=0.4)
        m = ThermalQuenchModel(
            params=p, order=2, mesh_kwargs={"h_factor": 1.6}
        )
        assert m.Z == 2.0
        assert m.params is p
        assert m.E0 == pytest.approx(0.4 * m.E_c)
        assert "params" in m._fingerprint()

    def test_model_rejects_wrong_params_type(self):
        with pytest.raises(TypeError, match="QuenchParameters"):
            ThermalQuenchModel(params={"Z": 2.0})

    def test_model_legacy_kwargs_build_equivalent_params(self):
        m = ThermalQuenchModel(
            Z=2.0, E0_over_Ec=0.4, order=2, mesh_kwargs={"h_factor": 1.6}
        )
        assert m.params == QuenchParameters(Z=2.0, E0_over_Ec=0.4)
