"""Mesh geometry: structured constructor, affine maps, Jacobians."""

import numpy as np
import pytest

from repro.fem.mesh import Mesh


class TestStructured:
    def test_counts_and_bounds(self):
        m = Mesh.structured(3, 4, 2.0, -1.0, 1.0)
        assert m.nelem == 12
        assert m.bounds == (0.0, 2.0, -1.0, 1.0)

    def test_cell_sizes(self):
        m = Mesh.structured(4, 2, 2.0, 0.0, 1.0)
        assert np.allclose(m.size[:, 0], 0.5)
        assert np.allclose(m.size[:, 1], 0.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Mesh.structured(0, 1, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Mesh.structured(1, 1, -1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Mesh.structured(1, 1, 1.0, 2.0, 1.0)


class TestGeometry:
    def test_negative_r_rejected(self):
        with pytest.raises(ValueError):
            Mesh(np.array([[-0.5, 0.0]]), np.array([[1.0, 1.0]]))

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Mesh(np.array([[0.0, 0.0]]), np.array([[0.0, 1.0]]))

    def test_map_to_physical_corners(self):
        m = Mesh(np.array([[1.0, -2.0]]), np.array([[2.0, 4.0]]))
        ref = np.array([[-1.0, -1.0], [1.0, 1.0], [0.0, 0.0]])
        phys = m.map_to_physical(ref)
        assert np.allclose(phys[0, 0], [1.0, -2.0])
        assert np.allclose(phys[0, 1], [3.0, 2.0])
        assert np.allclose(phys[0, 2], [2.0, 0.0])

    def test_jacobians(self):
        m = Mesh(np.array([[0.0, 0.0]]), np.array([[2.0, 4.0]]))
        inv_jac, det = m.jacobians()
        assert np.allclose(inv_jac[0], [1.0, 0.5])
        assert det[0] == pytest.approx(2.0)

    def test_element_containing(self):
        m = Mesh.structured(2, 2, 2.0, 0.0, 2.0)
        e = m.element_containing(np.array([1.5, 0.5]))
        assert e >= 0
        assert np.all(m.lower[e] <= [1.5, 0.5])
        assert m.element_containing(np.array([5.0, 5.0])) == -1

    def test_area_consistency(self):
        m = Mesh.structured(3, 5, 1.5, -1.0, 2.0)
        _, det = m.jacobians()
        # sum of |J| * reference area (4) equals the domain area
        assert np.sum(det) * 4.0 == pytest.approx(1.5 * 3.0)
