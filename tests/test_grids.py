"""Grid-per-species-group machinery and the Table I cost accounting."""

import numpy as np
import pytest

from repro.core import SpeciesSet, deuterium, electron, grid_cost_table, plan_grids
from repro.core.grids import GridSet
from repro.core.maxwellian import species_maxwellian
from repro.core.species import tungsten_states


@pytest.fixture(scope="module")
def ten_species() -> SpeciesSet:
    w = tungsten_states()
    zw = sum(s.charge * s.density for s in w)
    return SpeciesSet([electron(density=1.0 + zw), deuterium()] + w)


class TestPlanGrids:
    def test_clusters_by_thermal_velocity(self, ten_species):
        groups = plan_grids(ten_species)
        # e, D and the 8 tungsten states have well-separated v_th:
        # 3 grids, tungsten states all share one
        assert len(groups) == 3
        assert groups[0] == [0]
        assert groups[1] == [1]
        assert sorted(groups[2]) == list(range(2, 10))

    def test_single_species(self):
        assert plan_grids(SpeciesSet([electron()])) == [[0]]

    def test_max_ratio_validation(self, ten_species):
        with pytest.raises(ValueError):
            plan_grids(ten_species, max_ratio=0.5)

    def test_loose_ratio_merges_everything(self, ten_species):
        groups = plan_grids(ten_species, max_ratio=1e6)
        assert len(groups) == 1


class TestGridSet:
    def test_table1_shape(self, ten_species):
        """Table I: 3 grids beat 1 grid on equations and 10 grids on
        Landau tensors."""
        plans = [
            [list(range(10))],  # 1 shared grid
            plan_grids(ten_species),  # 3 grids
            [[i] for i in range(10)],  # grid per species
        ]
        rows = grid_cost_table(ten_species, plans, order=3)
        one, three, ten = rows
        assert one["grids"] == 1 and three["grids"] == 3 and ten["grids"] == 10
        # equations: shared grid pays ~4x over the clustered plan
        assert one["equations"] > 3 * three["equations"]
        assert three["equations"] == ten["equations"]
        # tensors: per-species grids pay the most
        assert ten["landau_tensors"] > 5 * three["landau_tensors"]
        # the clustered plan has the fewest integration points
        assert three["integration_points"] <= one["integration_points"]

    def test_paper_magnitudes(self, ten_species):
        """Our Table I row magnitudes track the paper's (1184/960/3200 IPs,
        8050/1930/1930 equations) within a factor ~1.5."""
        plans = [
            [list(range(10))],
            plan_grids(ten_species),
            [[i] for i in range(10)],
        ]
        rows = grid_cost_table(ten_species, plans, order=3)
        assert 900 <= rows[0]["integration_points"] <= 1800
        assert 600 <= rows[1]["integration_points"] <= 1400
        assert 2200 <= rows[2]["integration_points"] <= 4800
        assert 5000 <= rows[0]["equations"] <= 12000
        assert 1300 <= rows[1]["equations"] <= 2900

    def test_groups_must_cover(self, ten_species):
        with pytest.raises(ValueError):
            GridSet(ten_species, groups=[[0, 1]])

    def test_cross_grid_jacobian_matches_single_grid(self):
        """A GridSet with one grid equals the plain LandauOperator."""
        from repro.amr import landau_mesh
        from repro.core import LandauOperator
        from repro.fem import FunctionSpace

        spc = SpeciesSet([electron()])
        gs = GridSet(spc, groups=[[0]], order=2)
        fields = {
            0: gs.grids[0].fs.interpolate(species_maxwellian(spc[0]))
        }
        J_multi = gs.jacobian(fields)
        op = LandauOperator(gs.grids[0].fs, spc)
        J_single = op.jacobian([fields[0]])
        assert np.allclose(
            J_multi[0].toarray(), J_single[0].toarray(), atol=1e-12
        )

    def test_two_grid_conservation(self):
        """Cross-grid collisions: total density of each species conserved
        (each grid's own collision matrix has zero column... row sums against
        the constant test function)."""
        spc = SpeciesSet([electron(), deuterium()])
        gs = GridSet(spc, order=2)
        assert gs.ngrids == 2
        fields = {
            i: gs.grids[gs.grid_of_species(i)].fs.interpolate(
                species_maxwellian(spc[i])
            )
            for i in range(2)
        }
        J = gs.jacobian(fields)
        for i in range(2):
            g = gs.grids[gs.grid_of_species(i)]
            ones = np.ones(g.fs.ndofs)
            Cf = J[i] @ fields[i]
            assert abs(ones @ Cf) < 1e-8 * np.abs(Cf).sum()

    def test_grid_of_species(self, ten_species):
        gs_groups = plan_grids(ten_species)
        gs = GridSet(ten_species, groups=gs_groups, order=2)
        assert gs.grid_of_species(0) == 0
        assert gs.grid_of_species(5) == 2
        with pytest.raises(KeyError):
            gs.grid_of_species(42)


class TestMultiGridSolver:
    def test_two_grid_equilibration(self):
        """Hot electrons + cold light ions on separate grids: temperatures
        converge, each species' density is conserved on its own grid."""
        import math

        from repro.core import Moments
        from repro.core.grids import MultiGridImplicitSolver
        from repro.core.species import Species

        ion = Species("i", charge=1.0, mass=49.0, temperature=0.25)
        spc = SpeciesSet([electron(), ion])
        gs = GridSet(spc, groups=[[0], [1]], order=2)
        assert gs.ngrids == 2
        fields = {
            i: gs.grids[gs.grid_of_species(i)].fs.interpolate(
                species_maxwellian(spc[i])
            )
            for i in range(2)
        }
        mom = [
            Moments(gs.grids[gs.grid_of_species(i)].fs, spc) for i in range(2)
        ]
        n0 = [
            2 * math.pi * mom[i].fs.integrate(mom[i].fs.eval(fields[i]))
            for i in range(2)
        ]

        def temp(i, x):
            fs = gs.grids[gs.grid_of_species(i)].fs
            fq = fs.eval(x)
            r, z = fs.qpoints[:, :, 0], fs.qpoints[:, :, 1]
            n = fs.integrate(fq)
            return spc[i].mass * fs.integrate((r**2 + z**2) * fq) / (3 * n)

        Te0, Ti0 = temp(0, fields[0]), temp(1, fields[1])
        solver = MultiGridImplicitSolver(gs, rtol=1e-6)
        fields = solver.integrate(fields, dt=1.0, nsteps=4)
        Te1, Ti1 = temp(0, fields[0]), temp(1, fields[1])
        assert Te1 < Te0  # electrons cool toward the cold ions
        assert Ti1 > Ti0  # ions heat
        for i in range(2):
            fs = gs.grids[gs.grid_of_species(i)].fs
            n1 = 2 * math.pi * fs.integrate(fs.eval(fields[i]))
            assert n1 == pytest.approx(n0[i], rel=1e-9)

    def test_matches_single_grid_dynamics(self):
        """A one-group GridSet solver step equals ImplicitLandauSolver."""
        import numpy as np

        from repro.core import ImplicitLandauSolver, LandauOperator
        from repro.core.grids import MultiGridImplicitSolver

        spc = SpeciesSet([electron()])
        gs = GridSet(spc, groups=[[0]], order=2)
        fs = gs.grids[0].fs
        f0 = fs.interpolate(
            lambda r, z: np.exp(-((r / 0.6) ** 2) - (z / 1.1) ** 2)
        )
        mg = MultiGridImplicitSolver(gs, rtol=1e-9)
        out = mg.step({0: f0}, 0.3)
        op = LandauOperator(fs, spc)
        ref = ImplicitLandauSolver(op, rtol=1e-9).step([f0], 0.3)[0]
        assert np.allclose(out[0], ref, atol=1e-9 * max(np.abs(ref).max(), 1))

    def test_dt_validation(self):
        from repro.core.grids import MultiGridImplicitSolver

        spc = SpeciesSet([electron()])
        gs = GridSet(spc, groups=[[0]], order=2)
        solver = MultiGridImplicitSolver(gs)
        with pytest.raises(ValueError):
            solver.step({0: gs.grids[0].fs.interpolate(lambda r, z: r * 0 + 1)}, -1.0)
