"""Process-executor serve tier: thread/process result equivalence, the
publish-once plan protocol, shared-memory state shipping, and the
BrokenProcessPool self-healing path (ISSUE-6 satellites)."""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.core.maxwellian import maxwellian_rz
from repro.serve import CollisionSolveService, ServeOptions, SolvePlan
from repro.serve.jobs import STATUS_OK

DT = 0.3


def _own_segments() -> set[str]:
    """Compared as before/after deltas: registry-cached backends from
    other test modules legitimately keep published segments alive."""
    return set(glob.glob(f"/dev/shm/rpro-{os.getpid()}-*"))


@pytest.fixture
def plan(fs_q2, electron_species):
    return SolvePlan(fs=fs_q2, species=electron_species, dt=DT)


@pytest.fixture(scope="module")
def states(request):
    fs = request.getfixturevalue("fs_q2")
    rng = np.random.default_rng(21)
    out = []
    for _ in range(10):
        vth = 0.886 * rng.uniform(0.8, 1.1)
        drift = rng.uniform(-0.1, 0.1)
        out.append(
            fs.interpolate(
                lambda r, z, v=vth, d=drift: maxwellian_rz(r, z - d, 1.0, v)
            )[None, :]
        )
    return out


class TestProcessExecutorEquivalence:
    def test_matches_thread_executor(self, plan, states):
        """Same jobs, same plan: the process executor returns the same
        states as the in-process thread path (the serve golden-hash
        contract — both sides run the identical numpy reference)."""
        opts = dict(num_shards=2, max_batch=4)
        with CollisionSolveService(
            ServeOptions(executor="thread", **opts)
        ) as svc_t:
            res_t = svc_t.solve_many(plan, states)
        with CollisionSolveService(
            ServeOptions(executor="process", **opts)
        ) as svc_p:
            res_p = svc_p.solve_many(plan, states)
        assert [r.status for r in res_p] == [r.status for r in res_t]
        for rt, rp in zip(res_t, res_p):
            assert rt.status == STATUS_OK
            scale = np.abs(rt.state).max()
            assert np.abs(rp.state - rt.state).max() <= 1e-12 * scale

    def test_plan_published_once_per_shard(self, plan, states):
        with CollisionSolveService(
            ServeOptions(executor="process", num_shards=1, max_batch=4)
        ) as svc:
            svc.solve_many(plan, states[:4])
            assert svc._published_plans[0] == {plan.key}
            svc.solve_many(plan, states[4:8])  # no re-publication
            assert svc._published_plans[0] == {plan.key}
            snap = svc.snapshot()
            assert snap["jobs"]["ok"] == 8
            # warm runtime reused in the worker: second batch hit the cache
            assert snap["plan_cache"]["hits"] >= 1

    def test_states_ship_via_shared_memory(self, plan, states):
        before = _own_segments()
        with CollisionSolveService(
            ServeOptions(executor="process", num_shards=1, max_batch=8)
        ) as svc:
            svc.solve_many(plan, states[:6])
            arena = svc._arena
            assert arena is not None
            # every per-batch state segment was created AND freed
            assert arena.created_segments >= 1
            assert arena.freed_segments == arena.created_segments
        assert _own_segments() <= before

    def test_no_orphan_segments_after_close(self, plan, states):
        before = _own_segments()
        svc = CollisionSolveService(
            ServeOptions(executor="process", num_shards=2, max_batch=4)
        )
        svc.solve_many(plan, states[:4])
        svc.close()
        assert _own_segments() <= before


class TestBrokenWorkerRecovery:
    def test_dead_worker_restarts_and_drain_survives(self, plan, states):
        before = _own_segments()
        with CollisionSolveService(
            ServeOptions(executor="process", num_shards=1, max_batch=4)
        ) as svc:
            # warm the worker, then kill it mid-life
            res = svc.solve_many(plan, states[:2])
            assert all(r.status == STATUS_OK for r in res)
            with pytest.raises(Exception):
                svc._pools[0].submit(os._exit, 1).result()
            # the next batch must heal the shard, not crash the drain
            res = svc.solve_many(plan, states[2:6])
            assert all(r.status == STATUS_OK for r in res)
            assert svc._restarts[0] == 1
            snap = svc.snapshot()
            assert snap["jobs"]["worker_restarts"] == 1
            shard0 = snap["shards"][0]
            assert shard0["worker_restarts"] == 1
        assert _own_segments() <= before

    def test_snapshot_survives_dead_worker(self, plan, states):
        with CollisionSolveService(
            ServeOptions(executor="process", num_shards=1, max_batch=4)
        ) as svc:
            svc.solve_many(plan, states[:2])
            with pytest.raises(Exception):
                svc._pools[0].submit(os._exit, 1).result()
            snap = svc.snapshot()  # restarts the worker under the hood
            assert snap["jobs"]["worker_restarts"] == 1


class TestNestedProcessBackendClamp:
    """REPRO_BACKEND=process + executor=process must not nest process
    pools: a ProcessPoolExecutor created inside a pool worker finishes
    its work but deadlocks the worker's interpreter shutdown, hanging
    service close.  Shard workers clamp the backend to threaded."""

    def test_runtime_clamps_process_to_threaded_in_worker(self, fs_q2, electron_species):
        from repro.core.options import AssemblyOptions
        from repro.serve import plan as plan_mod
        from repro.serve.plan import PlanRuntime

        p = SolvePlan(
            fs=fs_q2,
            species=electron_species,
            dt=DT,
            options=AssemblyOptions(backend="process", num_threads=2),
        )
        assert plan_mod.IN_PROCESS_WORKER is False
        plan_mod.IN_PROCESS_WORKER = True
        try:
            rt = PlanRuntime(p)
            assert rt.solver.op.backend.name == "threaded"
        finally:
            plan_mod.IN_PROCESS_WORKER = False
        # outside a worker the same plan keeps the process backend
        rt = PlanRuntime(p)
        assert rt.solver.op.backend.name == "process"

    def test_env_process_backend_and_executor_completes(
        self, plan, states, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        with CollisionSolveService(
            ServeOptions(executor="process", num_shards=1, max_batch=4)
        ) as svc:
            res = svc.solve_many(plan, states[:4])
        assert all(r.status == STATUS_OK for r in res)


class TestFaultInjectorConflict:
    def test_fail_fast_names_the_env_knob(self, monkeypatch):
        """An ad-hoc injector that cannot pickle (here: one carrying a
        lambda) must be rejected with pointers at both the FaultPlan
        route and the executor env knob."""
        from repro.resilience import FaultInjector

        inj = FaultInjector(fail_first_solves=1)
        inj.callback = lambda: None  # closures cannot cross the fork
        monkeypatch.setenv("REPRO_SERVE_EXECUTOR", "process")
        with pytest.raises(ValueError, match="REPRO_SERVE_EXECUTOR"):
            CollisionSolveService(
                ServeOptions.from_env(num_shards=1), fault_injector=inj
            )
        with pytest.raises(ValueError, match="FaultPlan"):
            CollisionSolveService(
                ServeOptions.from_env(num_shards=1), fault_injector=inj
            )

    def test_picklable_injector_rides_into_workers(self, plan, states):
        """PR-6 banned all injectors on executor='process'; a picklable
        schedule now ships to the workers and fires there (the retry
        path answers the job OK and counts the injection)."""
        from repro.resilience import FaultInjector

        with CollisionSolveService(
            ServeOptions(executor="process", num_shards=1, max_batch=4),
            fault_injector=FaultInjector(fail_first_solves=1),
        ) as svc:
            res = svc.solve_many(plan, states[:2])
            assert all(r.status == STATUS_OK for r in res)
            snap = svc.snapshot()
            assert snap["failures"]["injected_faults"] >= 1
            assert snap["jobs"]["retried"] >= 1

    def test_injector_plus_plan_is_rejected(self):
        from repro.resilience import FaultInjector, FaultPlan

        with pytest.raises(ValueError, match="not both"):
            CollisionSolveService(
                ServeOptions(num_shards=1),
                fault_injector=FaultInjector(fail_first_solves=1),
                fault_plan=FaultPlan(fail_first_solves=1),
            )
