"""Quadtree forest: refinement, 2:1 balance, geometry, export."""

import numpy as np
import pytest

from repro.amr.quadtree import QuadForest, Quadrant


class TestQuadrant:
    def test_children_cover_parent(self):
        q = Quadrant(2, 1, 3)
        kids = q.children()
        assert len(kids) == 4
        assert {(k.i, k.j) for k in kids} == {(2, 6), (3, 6), (2, 7), (3, 7)}
        assert all(k.level == 3 for k in kids)

    def test_parent_roundtrip(self):
        q = Quadrant(3, 5, 2)
        for k in q.children():
            assert k.parent() == q

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            Quadrant(0, 0, 0).parent()


class TestForest:
    def test_base_level(self):
        f = QuadForest(0, 1, 0, 1, base_level=2)
        assert f.nleaves == 16

    def test_macro_grid(self):
        f = QuadForest(0, 1, -1, 1, trees_x=1, trees_y=2)
        assert f.nleaves == 2
        # cells are squares
        for q in f.leaves:
            x0, y0, x1, y1 = f.quadrant_bounds(q)
            assert (x1 - x0) == pytest.approx(y1 - y0)

    def test_refine_predicate(self):
        f = QuadForest(0, 1, 0, 1)

        def near_origin(forest, q):
            x0, y0, x1, y1 = forest.quadrant_bounds(q)
            return x0 < 0.25 and y0 < 0.25 and (x1 - x0) > 0.2

        n = f.refine(near_origin)
        assert n >= 2
        assert f.nleaves > 1

    def test_max_level_cap(self):
        f = QuadForest(0, 1, 0, 1)
        f.refine(lambda forest, q: True, max_level=3)
        assert f.max_level == 3
        assert f.nleaves == 64

    def test_leaves_partition_area(self):
        f = QuadForest(0, 2, -1, 1, trees_x=1, trees_y=1)
        f.refine(
            lambda forest, q: forest.quadrant_bounds(q)[0] < 0.5
            and q.level < 3
        )
        area = sum(
            (b[2] - b[0]) * (b[3] - b[1])
            for b in (f.quadrant_bounds(q) for q in f.leaves)
        )
        assert area == pytest.approx(4.0)

    def test_balance(self):
        f = QuadForest(0, 1, 0, 1, base_level=1)
        # refine toward the domain center from one quadrant: the level-3
        # cell at the center shares an edge with level-1 neighbors
        f.refine_once([Quadrant(1, 0, 0)])
        f.refine_once([Quadrant(2, 1, 1)])
        assert not f.is_balanced()
        n = f.balance()
        assert n > 0
        assert f.is_balanced()

    def test_balance_idempotent(self):
        f = QuadForest(0, 1, 0, 1, base_level=1)
        f.refine_once([Quadrant(1, 0, 0)])
        f.balance()
        assert f.balance() == 0

    def test_to_arrays_deterministic(self):
        f = QuadForest(0, 1, 0, 1, base_level=1)
        f.refine_once([Quadrant(1, 1, 1)])
        lo1, sz1 = f.to_arrays()
        lo2, sz2 = f.to_arrays()
        assert np.array_equal(lo1, lo2)
        assert np.array_equal(sz1, sz2)
        assert lo1.shape == (f.nleaves, 2)

    def test_refine_nonleaf_raises(self):
        f = QuadForest(0, 1, 0, 1)
        with pytest.raises(ValueError):
            f.refine_once([Quadrant(5, 0, 0)])

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            QuadForest(1, 0, 0, 1)
