"""Weak-form assembly: mass, weighted mass, advection, coefficient operator."""

import numpy as np
import pytest

from repro.fem import (
    FunctionSpace,
    Mesh,
    assemble_coefficient_operator,
    assemble_mass,
    assemble_weighted_mass,
    assemble_z_advection,
)


class TestMass:
    def test_total_measure(self, structured_fs):
        M = assemble_mass(structured_fs)
        ones = np.ones(structured_fs.ndofs)
        assert ones @ M @ ones == pytest.approx(8.0)  # int r over [0,2]x[-2,2]

    def test_symmetric(self, fs_q3):
        M = assemble_mass(fs_q3)
        assert abs(M - M.T).max() < 1e-13

    def test_spd(self, fs_q2):
        M = assemble_mass(fs_q2).toarray()
        eig = np.linalg.eigvalsh(M)
        assert eig.min() > 0

    def test_polynomial_inner_product(self, structured_fs):
        """x^T M y = int r f g for polynomials within the quadrature degree."""
        fs = structured_fs
        M = assemble_mass(fs)
        x = fs.interpolate(lambda r, z: r)
        y = fs.interpolate(lambda r, z: z * z)
        # int_0^2 r^2 dr * int_{-2}^{2} z^2 dz = (8/3) * (16/3)
        assert x @ M @ y == pytest.approx((8.0 / 3.0) * (16.0 / 3.0))

    def test_hanging_mesh_mass_consistent(self, fs_q3):
        """On the AMR mesh the constrained mass still integrates exactly."""
        M = assemble_mass(fs_q3)
        ones = np.ones(fs_q3.ndofs)
        r0, r1, z0, z1 = fs_q3.mesh.bounds
        exact = 0.5 * (r1**2 - r0**2) * (z1 - z0)
        assert ones @ M @ ones == pytest.approx(exact)


class TestWeightedMass:
    def test_matches_plain_for_unit_weight(self, fs_q2):
        c = np.ones_like(fs_q2.qweights)
        assert abs(assemble_weighted_mass(fs_q2, c) - assemble_mass(fs_q2)).max() < 1e-14

    def test_shift_scaling(self, fs_q2):
        c = 2.5 * np.ones_like(fs_q2.qweights)
        W = assemble_weighted_mass(fs_q2, c)
        assert abs(W - 2.5 * assemble_mass(fs_q2)).max() < 1e-12


class TestAdvection:
    def test_constant_in_z_annihilated(self, structured_fs):
        A = assemble_z_advection(structured_fs)
        x = structured_fs.interpolate(lambda r, z: r**2 + 1.0)
        assert np.abs(A @ x).max() < 1e-11

    def test_exact_derivative_moment(self, structured_fs):
        fs = structured_fs
        A = assemble_z_advection(fs)
        psi = fs.interpolate(lambda r, z: z)
        f = fs.interpolate(lambda r, z: z**2)
        # int r * z * 2z over [0,2]x[-2,2] = 2 * (2 * 8 / 3) * 2 = 64/3
        assert psi @ A @ f == pytest.approx(2.0 * 2.0 * (2 * 8.0 / 3.0))

    def test_density_row_null(self, structured_fs):
        """Test function 1 gives the boundary flux; zero for interior f."""
        fs = structured_fs
        A = assemble_z_advection(fs)
        ones = np.ones(fs.ndofs)
        f = fs.interpolate(lambda r, z: z * (4.0 - z**2))  # vanishes at z=+-2
        # int r d/dz f = boundary term = 0
        assert ones @ A @ f == pytest.approx(0.0, abs=1e-10)


class TestCoefficientOperator:
    def test_laplacian_against_exact(self, structured_fs):
        """With D = -I, K = 0 the operator is the (negative) cylindrical
        stiffness matrix: psi^T C f = -int r grad psi . grad f."""
        fs = structured_fs
        ne, nq = fs.qweights.shape
        D = -np.broadcast_to(np.eye(2), (ne, nq, 2, 2)).copy()
        K = np.zeros((ne, nq, 2))
        C = assemble_coefficient_operator(fs, D, K)
        psi = fs.interpolate(lambda r, z: z)
        f = fs.interpolate(lambda r, z: z**2 + r**2)
        # -int r (0,1).(2r, 2z) -> -int r*2z = 0 by symmetry
        assert psi @ C @ f == pytest.approx(0.0, abs=1e-10)
        f2 = fs.interpolate(lambda r, z: z)
        # -int r * 1 = -8
        assert psi @ C @ f2 == pytest.approx(-8.0)

    def test_friction_term(self, structured_fs):
        """With D = 0, K = (0, 1): psi^T C f = int r dpsi/dz f."""
        fs = structured_fs
        ne, nq = fs.qweights.shape
        D = np.zeros((ne, nq, 2, 2))
        K = np.zeros((ne, nq, 2))
        K[:, :, 1] = 1.0
        C = assemble_coefficient_operator(fs, D, K)
        psi = fs.interpolate(lambda r, z: z**2)
        f = fs.interpolate(lambda r, z: r)
        # int r * 2z * r dz dr = 0 by z symmetry
        assert psi @ C @ f == pytest.approx(0.0, abs=1e-10)
        psi2 = fs.interpolate(lambda r, z: z)
        # int r * 1 * r = int_0^2 r^2 * 4 = 32/3
        assert psi2 @ C @ f == pytest.approx(32.0 / 3.0)

    def test_shape_validation(self, fs_q2):
        ne, nq = fs_q2.qweights.shape
        with pytest.raises(ValueError):
            assemble_coefficient_operator(
                fs_q2, np.zeros((ne, nq, 2, 2)), np.zeros((ne, nq, 3))
            )

    def test_symmetric_D_gives_symmetric_matrix(self, fs_q2):
        fs = fs_q2
        ne, nq = fs.qweights.shape
        rng = np.random.default_rng(7)
        diag = rng.uniform(0.5, 2.0, (ne, nq))
        D = np.zeros((ne, nq, 2, 2))
        D[:, :, 0, 0] = diag
        D[:, :, 1, 1] = diag
        C = assemble_coefficient_operator(fs, D, np.zeros((ne, nq, 2)))
        assert abs(C - C.T).max() < 1e-12
