"""Smoke tests: every example script imports and its fast path runs.

The heavy examples (full quench, Z sweeps) are exercised in reduced form;
the point is that the documented entry points stay runnable.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "spitzer_resistivity",
            "thermal_quench",
            "amr_meshes",
            "multigrid_species",
            "gpu_roofline",
            "performance_tables",
            "export_vtk",
            "ensemble_quench",
        ],
    )
    def test_import(self, name):
        mod = load(name)
        assert hasattr(mod, "main")


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load("quickstart").main()
        out = capsys.readouterr().out
        assert "conservation + relaxation" in out
        assert "anisotropy" in out

    def test_amr_meshes(self, capsys):
        load("amr_meshes").main()
        out = capsys.readouterr().out
        assert "Fig. 3" in out and "mesh inventory" in out

    def test_gpu_roofline(self, capsys):
        load("gpu_roofline").main()
        out = capsys.readouterr().out
        assert "Jacobian" in out and "roofline" in out.lower()

    def test_export_vtk(self, tmp_path, capsys):
        load("export_vtk").main(str(tmp_path / "vtk"))
        out = capsys.readouterr().out
        assert "mesh.vtk" in out
        assert (tmp_path / "vtk" / "driven.vtk").exists()

    def test_render_mesh_helper(self):
        amr = load("amr_meshes")
        from repro.amr import landau_mesh
        from repro.core import electron

        pic = amr.render_mesh(landau_mesh([electron().thermal_velocity]), 24, 12)
        assert len(pic.splitlines()) == 12
        # refinement depth shows up near the origin rows
        assert any(c in pic for c in "12")
