"""DoF maps: conforming numbering, hanging-node constraints, continuity."""

import numpy as np
import pytest

from repro.amr import landau_mesh
from repro.fem import DofMap, FunctionSpace, Mesh
from repro.fem.reference import LagrangeQuad


def two_level_mesh() -> Mesh:
    """One coarse cell next to two fine cells (a single hanging edge)."""
    lower = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 0.5]])
    size = np.array([[1.0, 1.0], [0.5, 0.5], [0.5, 0.5]])
    return Mesh(lower, size)


class TestConforming:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_structured_counts(self, order):
        m = Mesh.structured(3, 2, 3.0, 0.0, 2.0)
        dm = DofMap(m, LagrangeQuad(order))
        expected = (3 * order + 1) * (2 * order + 1)
        assert dm.n_full == expected
        assert dm.n_free == expected
        assert dm.n_constrained == 0

    def test_prolongation_is_identity(self):
        m = Mesh.structured(2, 2, 1.0, 0.0, 1.0)
        dm = DofMap(m, LagrangeQuad(2))
        P = dm.P.toarray()
        assert np.allclose(P, np.eye(dm.n_full))

    def test_shared_nodes_deduplicated(self):
        m = Mesh.structured(2, 1, 2.0, 0.0, 1.0)
        dm = DofMap(m, LagrangeQuad(3))
        shared = set(dm.cell_nodes[0]) & set(dm.cell_nodes[1])
        assert len(shared) == 4  # the common edge's 4 nodes


class TestHanging:
    @pytest.mark.parametrize("order,expected", [(1, 1), (2, 2), (3, 5)])
    def test_constraint_counts(self, order, expected):
        dm = DofMap(two_level_mesh(), LagrangeQuad(order))
        # fine-side interface nodes (2*order+1) minus the 2 coarse corners,
        # minus any fine node coinciding with a coarse GLL node (the Q2
        # midpoint of the coarse edge coincides with the fine corner).
        assert dm.n_constrained == expected

    def test_constraint_weights_sum_to_one(self):
        dm = DofMap(two_level_mesh(), LagrangeQuad(3))
        P = dm.P.toarray()
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_q3_constraints_have_four_targets(self):
        """'...interpolate each matrix value associated with a constrained
        degree of freedom to four degrees of freedom ... with Q3 elements'"""
        dm = DofMap(two_level_mesh(), LagrangeQuad(3))
        P = dm.P.tocsr()
        free_set = set(dm.free_nodes.tolist())
        for n in range(dm.n_full):
            nnz = P.indptr[n + 1] - P.indptr[n]
            if n in free_set:
                assert nnz == 1
            else:
                assert 1 <= nnz <= 4

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_continuity_across_interface(self, order):
        """A free-dof vector expands to a continuous function across the
        hanging edge: fine-side trace equals coarse polynomial."""
        mesh = two_level_mesh()
        fs = FunctionSpace(mesh, order=order)
        rng = np.random.default_rng(3)
        x = rng.normal(size=fs.ndofs)
        x_full = fs.dofmap.expand(x)
        # evaluate along the interface r=1 from both sides
        zs = np.linspace(0.51, 0.99, 7)
        el = fs.element
        for z in zs:
            # coarse element 0: ref coords of (1, z)
            ref0 = 2.0 * (np.array([1.0, z]) - mesh.lower[0]) / mesh.size[0] - 1.0
            B0, _ = el.tabulate(ref0[None])
            v0 = B0[0] @ x_full[fs.dofmap.cell_nodes[0]]
            e1 = 2 if z > 0.5 else 1
            ref1 = 2.0 * (np.array([1.0, z]) - mesh.lower[e1]) / mesh.size[e1] - 1.0
            B1, _ = el.tabulate(ref1[None])
            v1 = B1[0] @ x_full[fs.dofmap.cell_nodes[e1]]
            assert v0 == pytest.approx(v1, abs=1e-11)

    def test_interpolation_exact_for_polynomials(self):
        """Expanding the interpolant of a degree-k polynomial matches the
        polynomial at constrained nodes too."""
        mesh = two_level_mesh()
        fs = FunctionSpace(mesh, order=3)

        def f(r, z):
            return r**3 - r * z**2 + 2 * z**3 - z

        x = fs.interpolate(f)
        x_full = fs.dofmap.expand(x)
        xy = fs.dofmap.node_coords
        assert np.allclose(x_full, f(xy[:, 0], xy[:, 1]), atol=1e-11)


class TestAmrMesh:
    def test_paper_mesh_counts(self, small_mesh):
        """The single-species grid: 20 cells, ~193 free vertices (paper)."""
        dm = DofMap(small_mesh, LagrangeQuad(3))
        assert small_mesh.nelem == 20
        assert 180 <= dm.n_free <= 210
        assert dm.n_constrained > 0

    def test_deep_mesh_constraints_resolve(self):
        """Tungsten-scale refinement produces long constraint chains that
        must still resolve to free dofs."""
        ve = np.sqrt(np.pi) / 2
        mesh = landau_mesh([ve, ve / 600.0])
        dm = DofMap(mesh, LagrangeQuad(2))
        P = dm.P.toarray()
        assert np.allclose(P.sum(axis=1), 1.0)
        assert dm.n_free < dm.n_full
