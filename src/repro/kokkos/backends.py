"""Kokkos execution-space backends and their calibrated overheads.

Kokkos generates the CUDA programming model on GPUs and OpenMP + SIMD
lanes on manycore vector processors.  Portability is not free: the paper
measures CUDA about 15% faster than Kokkos-CUDA end-to-end ("not unexpected
nor unreasonable"), with the kernel itself ~10% slower (Table VII: 2.9 s vs
3.2 s).  ``kernel_overhead`` captures that multiplier; the A64FX backend's
poor auto-vectorization is carried by the device's ``software_efficiency``
instead (it is a property of the GNU toolchain on that hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.counters import Counters
from ..gpu.device import A64FX, MI100, V100, DeviceSpec
from ..gpu.machine import CudaMachine


@dataclass
class KokkosBackend:
    """One Kokkos execution space bound to a device model.

    Attributes
    ----------
    name:
        execution-space name (Kokkos-CUDA, Kokkos-HIP, Kokkos-OpenMP).
    device:
        the device the space executes on.
    kernel_overhead:
        multiplicative kernel-time penalty of the portable code path
        relative to hand-written CUDA (Table VII: ~1.10 on V100).
    maps_to_blocks:
        True when league members map to CUDA/HIP blocks; False for the
        OpenMP space, where league members map to host threads and vector
        ranges to SIMD lanes.
    """

    name: str
    device: DeviceSpec
    kernel_overhead: float = 1.10
    maps_to_blocks: bool = True
    counters: Counters = field(default_factory=Counters)

    def machine(self) -> CudaMachine:
        """A simulator machine accumulating into this backend's counters."""
        return CudaMachine(self.device, self.counters)

    def reset(self) -> None:
        self.counters.reset()


#: Kokkos-CUDA on V100 — league -> blocks, ThreadVectorRange -> x threads.
KOKKOS_CUDA = KokkosBackend(name="Kokkos-CUDA", device=V100, kernel_overhead=1.10)

#: Kokkos-HIP on MI100 (Spock) — same mapping via HIP.
KOKKOS_HIP = KokkosBackend(name="Kokkos-HIP", device=MI100, kernel_overhead=1.10)

#: Kokkos-OpenMP on A64FX (Fugaku) — league members -> OpenMP threads,
#: vector threads -> SVE lanes, two-level parallelism only.
KOKKOS_OPENMP = KokkosBackend(
    name="Kokkos-OpenMP", device=A64FX, kernel_overhead=1.0, maps_to_blocks=False
)


def fresh_backend(base: KokkosBackend) -> KokkosBackend:
    """An independent copy with zeroed counters (for isolated profiling)."""
    return KokkosBackend(
        name=base.name,
        device=base.device,
        kernel_overhead=base.kernel_overhead,
        maps_to_blocks=base.maps_to_blocks,
    )
