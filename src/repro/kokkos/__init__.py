"""A Kokkos-style hierarchical parallelism API over the simulated machine.

Kokkos implements the CUDA programming model portably: a *league* of team
members maps to the CUDA block grid (or OpenMP threads), a *team* maps to a
thread-block dimension, and *vector* ranges map to the remaining thread
dimension (or SIMD lanes on vector processors).  This subpackage provides
the TeamPolicy / parallel_for / parallel_reduce vocabulary used by the
Kokkos version of the Landau kernel, plus the execution-space backends
(Kokkos-CUDA, Kokkos-HIP, Kokkos-OpenMP) with their calibrated portability
overheads.
"""

from .api import TeamPolicy, TeamMember, parallel_for, parallel_reduce
from .backends import (
    KokkosBackend,
    KOKKOS_CUDA,
    KOKKOS_HIP,
    KOKKOS_OPENMP,
)

__all__ = [
    "TeamPolicy",
    "TeamMember",
    "parallel_for",
    "parallel_reduce",
    "KokkosBackend",
    "KOKKOS_CUDA",
    "KOKKOS_HIP",
    "KOKKOS_OPENMP",
]
