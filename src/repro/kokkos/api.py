"""Kokkos-style hierarchical parallel dispatch (league / team / vector).

The API mirrors the C++ vocabulary closely enough that the Kokkos version
of the Landau kernel reads like the original:

    policy = TeamPolicy(league_size=ne, team_size=nq, vector_length=16)
    parallel_for(policy, functor, backend)

``functor(member)`` receives a :class:`TeamMember` whose ``team_scratch``
is the shared-memory pad (Kokkos gives variable-length scratch arrays where
raw CUDA needs compile-time sizes — one of the differences section III-D
notes) and whose ``vector_reduce`` wraps the ``parallel_reduce`` over a
ThreadVectorRange, hiding the warp-shuffle machinery that the CUDA kernel
spells out by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..gpu.machine import ThreadBlock
from .backends import KokkosBackend, KOKKOS_CUDA


@dataclass(frozen=True)
class TeamPolicy:
    """Execution policy: league members x team threads x vector lanes."""

    league_size: int
    team_size: int
    vector_length: int = 1

    def __post_init__(self) -> None:
        if self.league_size <= 0 or self.team_size <= 0 or self.vector_length <= 0:
            raise ValueError(f"invalid TeamPolicy {self}")


class TeamMember:
    """One league member's execution handle (wraps a simulator ThreadBlock)."""

    def __init__(self, league_rank: int, policy: TeamPolicy, tb: ThreadBlock):
        self.league_rank = league_rank
        self.policy = policy
        self.tb = tb

    @property
    def team_size(self) -> int:
        return self.policy.team_size

    @property
    def vector_length(self) -> int:
        return self.policy.vector_length

    # --- scratch (shared) memory --------------------------------------------------
    def team_scratch(self, *shape: int) -> np.ndarray:
        """Variable-length team scratch array (Kokkos' shared memory)."""
        return self.tb.shared(*shape)

    def team_barrier(self) -> None:
        self.tb.syncthreads()

    # --- nested parallelism ---------------------------------------------------------
    def team_thread_range(self, n: int) -> range:
        """TeamThreadRange: iteration indices owned by this team.

        In the simulator the team dimension is vectorized by the kernels
        themselves; the range is provided for structural fidelity.
        """
        return range(n)

    def vector_reduce(self, values: np.ndarray, axis: int = -1) -> np.ndarray:
        """parallel_reduce over a ThreadVectorRange.

        Kokkos hides the warp-shuffle butterfly inside its reducer objects;
        the counted work is identical to the manual CUDA reduction.
        """
        return self.tb.warp_shuffle_reduce(values, axis=axis)


def parallel_for(
    policy: TeamPolicy,
    functor: Callable[[TeamMember], None],
    backend: KokkosBackend = KOKKOS_CUDA,
) -> None:
    """Dispatch ``functor`` over the league on the backend's machine."""
    machine = backend.machine()

    def kernel(tb: ThreadBlock, b: int) -> None:
        functor(TeamMember(b, policy, tb))

    machine.launch(
        kernel, policy.league_size, (policy.vector_length, policy.team_size)
    )


def parallel_reduce(
    policy: TeamPolicy,
    functor: Callable[[TeamMember], float],
    backend: KokkosBackend = KOKKOS_CUDA,
) -> float:
    """League-level sum reduction of ``functor`` results."""
    machine = backend.machine()
    acc = 0.0

    def kernel(tb: ThreadBlock, b: int) -> None:
        nonlocal acc
        acc += float(functor(TeamMember(b, policy, tb)))

    machine.launch(
        kernel, policy.league_size, (policy.vector_length, policy.team_size)
    )
    return acc
