"""The paper's performance test problem and its per-iteration work profile.

Section V: "The test problem is similar to the deuterium plasma ... but with
an additional eight species of Tungsten with different ionization states
... and with 80 Q3 elements, run for 100 time steps."  This module builds
exactly that problem, runs the functional kernel simulator once to obtain
the Jacobian/mass work counters, factors the real (block-diagonal) Jacobian
with the band solver to count factor/solve flops, and packages everything
as per-Newton-iteration work — the input to the node/pipeline models.

Calibration notes (documented deviations recorded in EXPERIMENTS.md):

* The production launch has only 80 blocks — one per V100 SM — so the
  kernel runs far from the full-occupancy throughput Table IV measures on
  the 320-cell problem.  ``BLOCKS_PER_SM_FOR_FULL_OCCUPANCY`` and
  ``SMALL_LAUNCH_LATENCY`` model that gap (together they land the V100
  Jacobian+mass near the paper's ~1.4 ms/iteration).
* Our AMR meshes give an RCM bandwidth of ~150-200 (the deep tungsten-scale
  refinement couples widely separated dofs), larger than the paper's grid
  appears to have; the factor-to-kernel time ratio is correspondingly
  larger here.  The flop counts are real, from our band factorization.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..amr import landau_mesh
from ..fem.function_space import FunctionSpace
from ..gpu.counters import Counters
from ..gpu.device import DeviceSpec
from ..gpu.machine import CudaMachine
from ..gpu.profiler import profile_kernel
from ..sparse.band import BandSolver
from .nodes import CoreSpec
from ..core.kernel_cuda import CudaLandauJacobian
from ..core.maxwellian import species_maxwellian
from ..core.operator import LandauOperator
from ..core.species import SpeciesSet, deuterium, electron, tungsten_states

#: measured share of the Landau matrix-construction time spent on CPU
#: metadata (Table VII: Landau 3.3 s vs kernel 2.9 s on Summit/CUDA);
#: modelled as work proportional to the matrix nonzeros.
METADATA_OPS_PER_NNZ = 16.0
#: non-Landau, non-solver work (vector ops, TS control) as a fraction of
#: the factor+solve time (Table VII: 14.3 - 3.3 - 8.4 - 0.8 = 1.8 s).
OTHER_FRACTION_OF_SOLVER = 0.20
#: blocks per SM needed to hide latency at full throughput.
BLOCKS_PER_SM_FOR_FULL_OCCUPANCY = 4
#: residual slowdown of a small, latency-exposed launch relative to the
#: occupancy-scaled roofline time (calibrated to the paper's per-iteration
#: kernel time on V100).
SMALL_LAUNCH_LATENCY = 2.25
#: Newton iterations per time step at production tolerances (the paper's
#: run performs ~2000 iterations in 100 steps).
DEFAULT_NEWTON_PER_STEP = 20


def build_paper_species() -> SpeciesSet:
    """e + D + eight tungsten charge states, quasineutral."""
    w_states = tungsten_states()
    zw = sum(s.charge * s.density for s in w_states)
    return SpeciesSet(
        [electron(density=1.0 + zw), deuterium(density=1.0)] + w_states
    )


@dataclass
class LandauWorkload:
    """Per-Newton-iteration work profile of one Landau vertex solve."""

    species: SpeciesSet
    fs: FunctionSpace
    jacobian_counters: Counters
    mass_counters: Counters
    factor_flops: float
    solve_flops: float
    metadata_flops: float
    band_width: int
    newton_per_step: int = DEFAULT_NEWTON_PER_STEP
    time_steps: int = 100

    @property
    def iterations_per_run(self) -> int:
        return self.newton_per_step * self.time_steps

    # --- GPU side ------------------------------------------------------------
    def occupancy(self, device: DeviceSpec) -> float:
        """Fraction of device throughput reachable at this launch size."""
        blocks = self.fs.nelem
        full = device.sm_count * BLOCKS_PER_SM_FOR_FULL_OCCUPANCY
        return min(1.0, blocks / full)

    def kernel_time(self, device: DeviceSpec, overhead: float = 1.0) -> float:
        """Jacobian + mass kernel time per Newton iteration on ``device``.

        Occupancy and small-launch latency scale the roofline *body* only;
        the atomic serialization tail and launch overheads do not shrink
        with occupancy.
        """
        occ = self.occupancy(device)
        t = 0.0
        for name, counters in (
            ("Jacobian", self.jacobian_counters),
            ("Mass", self.mass_counters),
        ):
            p = profile_kernel(name, counters, device, launches=1)
            body = max(p.t_compute, p.t_dram, p.t_l1)
            t += (
                body * SMALL_LAUNCH_LATENCY / occ + p.t_atomic
            ) / device.software_efficiency + device.kernel_launch_us * 1e-6
        return overhead * t

    def host_kernel_time(
        self, core: CoreSpec, nthreads: int, device: DeviceSpec
    ) -> float:
        """Kernel time on host cores (Kokkos-OpenMP on A64FX).

        League members map to OpenMP threads (ideal thread scaling, Table VI
        top row).  The GNU/Kokkos toolchain fails to engage the SVE lanes,
        so each core sustains the *scalar* slot rate — peak issue slots per
        core divided by the ``warp_size`` vector width — degraded further by
        the device's residual ``software_efficiency`` and pipe utilization.
        """
        c = self.jacobian_counters
        cm = self.mass_counters
        slots = c.issue_slots + cm.issue_slots
        per_core = (
            device.peak_issue_slots
            / device.sm_count
            / device.warp_size
            * device.software_efficiency
            * device.pipe_utilization
        )
        return slots / (nthreads * per_core)

    # --- CPU side ------------------------------------------------------------
    def factor_time(self, core: CoreSpec, threads_per_core: int = 1) -> float:
        return (
            self.factor_flops
            * core.slowdown(threads_per_core)
            / (core.effective_gflops * 1e9)
        )

    def solve_time(self, core: CoreSpec, threads_per_core: int = 1) -> float:
        return (
            self.solve_flops
            * core.slowdown(threads_per_core)
            / (core.effective_gflops * 1e9)
        )

    def metadata_time(self, core: CoreSpec, threads_per_core: int = 1) -> float:
        """CPU metadata share of the Landau matrix construction."""
        return (
            self.metadata_flops
            * core.slowdown(threads_per_core)
            / (core.effective_gflops * 1e9)
        )

    def other_time(self, core: CoreSpec, threads_per_core: int = 1) -> float:
        return OTHER_FRACTION_OF_SOLVER * (
            self.factor_time(core, threads_per_core)
            + self.solve_time(core, threads_per_core)
        )

    def cpu_time(self, core: CoreSpec, threads_per_core: int = 1) -> float:
        """All per-iteration CPU work: factor + solve + metadata + other."""
        return (
            self.factor_time(core, threads_per_core)
            + self.solve_time(core, threads_per_core)
            + self.metadata_time(core, threads_per_core)
            + self.other_time(core, threads_per_core)
        )


def build_paper_workload(
    newton_per_step: int = DEFAULT_NEWTON_PER_STEP,
    time_steps: int = 100,
    order: int = 3,
) -> LandauWorkload:
    """Build the 10-species / ~80-cell Q3 problem and profile one iteration."""
    species = build_paper_species()
    mesh = landau_mesh([s.thermal_velocity for s in species])
    fs = FunctionSpace(mesh, order=order)
    fields = [fs.interpolate(species_maxwellian(s)) for s in species]

    mach_j = CudaMachine()
    CudaLandauJacobian(fs, species, machine=mach_j).build(fields)
    mach_m = CudaMachine()
    CudaLandauJacobian(fs, species, machine=mach_m).build_mass(1.0)

    # real Jacobian -> band factor/solve flop counts (all S blocks share
    # the single-species pattern: the I_S (x) A_1 structure)
    op = LandauOperator(fs, species)
    L = op.species_matrix(0, *op.fields(fields))
    A = (op.mass_matrix - 0.1 * L).tocsr()
    counter: dict = {}
    solver = BandSolver(A, work_counter=counter)
    S = len(species)
    factor_flops = counter["flops"] * S
    solve_flops = S * 4.0 * A.shape[0] * (solver.B + 1)
    metadata_flops = METADATA_OPS_PER_NNZ * A.nnz * S

    return LandauWorkload(
        species=species,
        fs=fs,
        jacobian_counters=mach_j.counters,
        mass_counters=mach_m.counters,
        factor_flops=float(factor_flops),
        solve_flops=float(solve_flops),
        metadata_flops=float(metadata_flops),
        band_width=solver.B,
        newton_per_step=newton_per_step,
        time_steps=time_steps,
    )
