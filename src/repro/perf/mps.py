"""MPS-style pipeline model of many MPI ranks sharing one GPU.

The paper's harness runs one vertex solve per MPI rank, all ranks
asynchronously launching kernels on their GPU; "NVIDIA's Multi-Process
Service (MPS) system aids in scheduling the GPU with input from multiple
streams".  The steady-state throughput of that pipeline is

    rate(P) = min( P / (t_cpu(P) + t_gpu_eff(P)),  C / t_gpu_eff(P) )

where ``P`` ranks each alternate CPU work (factor, solve, metadata — run
on the rank's own core, inflated by the SMT slowdown when several ranks
share a core) and GPU work; the device co-schedules up to ``C`` kernels
(multiple 256-thread blocks fit per SM), and service degrades once more
than ``C`` ranks contend:

    t_gpu_eff(P) = t_gpu * (1 + contention * max(0, P - C)).

A healthy MPS has small contention (Summit); on Spock "the AMD equivalent
to MPS is not functioning well" — large contention reproduces the Table V
rollover at 16 processes per GPU.  The paper also notes ~3x throughput from
MPS itself; without MPS the model serializes kernels (C = 1, large
contention).
"""

from __future__ import annotations

from dataclasses import dataclass

from .nodes import NodeSpec


@dataclass
class MpsPipelineModel:
    """Throughput of one node running the asynchronous vertex-solve harness.

    Parameters
    ----------
    node:
        the machine (devices + cores + MPS behaviour).
    t_gpu:
        GPU kernel time per Newton iteration for a single rank (seconds).
    t_cpu_base:
        CPU time per Newton iteration at one thread per core (seconds).
    """

    node: NodeSpec
    t_gpu: float
    t_cpu_base: float

    def gpu_service_time(self, ranks_per_gpu: int) -> float:
        c = self.node.gpu_concurrency
        over = max(0, ranks_per_gpu - c)
        return self.t_gpu * (1.0 + self.node.mps_contention * over)

    def per_gpu_rate(self, cores_per_gpu: int, procs_per_core: int) -> float:
        """Newton iterations/second produced by one GPU's rank group."""
        if cores_per_gpu < 1 or procs_per_core < 1:
            raise ValueError("need at least one core and one process")
        if cores_per_gpu > self.node.cores_per_gpu:
            raise ValueError(
                f"{self.node.name} has only {self.node.cores_per_gpu} cores per GPU"
            )
        P = cores_per_gpu * procs_per_core
        t_cpu = self.t_cpu_base * self.node.core.slowdown(procs_per_core)
        t_gpu = self.gpu_service_time(P)
        pipeline = P / (t_cpu + t_gpu)
        gpu_cap = self.node.gpu_concurrency / t_gpu if t_gpu > 0 else float("inf")
        return min(pipeline, gpu_cap)

    def node_rate(self, cores_per_gpu: int, procs_per_core: int) -> float:
        """Whole-node Newton iterations/second (the tables' cell values)."""
        return self.node.gpus * self.per_gpu_rate(cores_per_gpu, procs_per_core)

    def table(
        self, cores_options: list[int], procs_options: list[int]
    ) -> list[list[float]]:
        """The Table II/III/V layout: rows = procs/core, cols = cores/GPU."""
        return [
            [self.node_rate(c, p) for c in cores_options] for p in procs_options
        ]

    def without_mps(self) -> "MpsPipelineModel":
        """The ablated scheduler: no MPS means each process gets a private,
        time-sliced context — kernels fully serialize and context switches
        add contention.  The paper informally observed "a throughput
        speedup ... of about 3x with the use of MPS" on high-rank cases.
        """
        from dataclasses import replace

        node = replace(
            self.node,
            gpu_concurrency=1,
            mps_contention=max(0.05, 2.0 * self.node.mps_contention),
        )
        return MpsPipelineModel(
            node=node, t_gpu=self.t_gpu, t_cpu_base=self.t_cpu_base
        )
