"""Throughput experiments: Tables II, III, V (GPU machines) and VI (Fugaku).

Each generator builds the per-iteration component times from the workload's
counters + the node model, feeds them to the MPS pipeline, and returns the
table in the paper's layout.  Throughput is the paper's figure of merit:
"total number of Newton iterations times the number of instances of the
problem run in parallel, divided by the simulation time".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import DeviceSpec
from .mps import MpsPipelineModel
from .nodes import FUGAKU, SPOCK, SUMMIT, NodeSpec
from .workload import LandauWorkload


@dataclass
class ThroughputTable:
    """One machine/language throughput table."""

    title: str
    cores_options: list[int]
    procs_options: list[int]
    values: list[list[float]]  # [proc_row][core_col], node its/sec

    @property
    def best(self) -> float:
        return max(max(row) for row in self.values)

    def format(self) -> str:
        head = "procs/core \\ cores/GPU " + "".join(
            f"{c:>9}" for c in self.cores_options
        )
        lines = [self.title, head]
        for p, row in zip(self.procs_options, self.values):
            lines.append(f"{p:>22} " + "".join(f"{v:>9,.0f}" for v in row))
        return "\n".join(lines)


def _cpu_time_per_iteration(wl: LandauWorkload, node: NodeSpec) -> float:
    """factor + solve + metadata + other, one thread per core."""
    return wl.cpu_time(node.core)


def throughput_table(
    wl: LandauWorkload,
    node: NodeSpec,
    title: str,
    cores_options: list[int],
    procs_options: list[int],
    kernel_overhead: float = 1.0,
) -> ThroughputTable:
    """Generic GPU-machine table (rows = procs/core, cols = cores/GPU)."""
    if node.device is None or node.gpus == 0:
        raise ValueError(f"{node.name} has no GPUs; use fugaku_table")
    t_gpu = wl.kernel_time(node.device, overhead=kernel_overhead)
    t_cpu = _cpu_time_per_iteration(wl, node)
    model = MpsPipelineModel(node=node, t_gpu=t_gpu, t_cpu_base=t_cpu)
    return ThroughputTable(
        title=title,
        cores_options=list(cores_options),
        procs_options=list(procs_options),
        values=model.table(list(cores_options), list(procs_options)),
    )


def summit_cuda_table(wl: LandauWorkload) -> ThroughputTable:
    """Table II: CUDA on Summit's V100s."""
    return throughput_table(
        wl, SUMMIT, "CUDA, V100 Newton iterations/sec", [1, 2, 3, 5, 7], [1, 2, 3]
    )


def summit_kokkos_table(wl: LandauWorkload) -> ThroughputTable:
    """Table III: Kokkos-CUDA on Summit (portable-path kernel overhead)."""
    return throughput_table(
        wl,
        SUMMIT,
        "Kokkos-CUDA, V100 Newton iterations/sec",
        [1, 2, 3, 5, 7],
        [1, 2, 3],
        kernel_overhead=1.10,
    )


def spock_hip_table(wl: LandauWorkload) -> ThroughputTable:
    """Table V: Kokkos-HIP on Spock's MI100s (rollover at 16 procs/GPU)."""
    return throughput_table(
        wl,
        SPOCK,
        "Kokkos-HIP, MI100 Newton iterations/sec",
        [1, 2, 4, 8],
        [1, 2],
        kernel_overhead=1.10,
    )


@dataclass
class FugakuTable:
    """Table VI: per-process Jacobian/total times on one A64FX node."""

    procs: list[int]
    threads: list[int]
    jacobian_seconds: dict[tuple[int, int], float]  # (procs, threads) -> sec
    total_seconds: dict[int, float]  # procs (diagonal, 32 cores) -> sec
    throughput_best: float  # its/sec at (4 procs, 8 threads)

    def format(self) -> str:
        head = "#procs \\ threads " + "".join(f"{t:>8}" for t in self.threads)
        lines = ["Fugaku A64FX, 10-step Jacobian construction / total (sec)", head]
        for p in self.procs:
            cells = []
            for t in self.threads:
                v = self.jacobian_seconds.get((p, t))
                cells.append(f"{v:>8.1f}" if v is not None else f"{'-':>8}")
            lines.append(f"{p:>16} " + "".join(cells) + f"  | total {self.total_seconds[p]:>7.1f}")
        lines.append(f"best throughput: {self.throughput_best:.1f} Newton its/sec")
        return "\n".join(lines)


def fugaku_table(
    wl: LandauWorkload,
    time_steps: int = 10,
    total_cores: int = 32,
) -> FugakuTable:
    """Table VI: Kokkos-OpenMP on one Fugaku node.

    Each MPI process runs the whole problem; its Jacobian construction
    thread-scales ideally over its OpenMP threads (vector lanes map to SVE),
    while the factor/solve/other work stays single-threaded per process.
    """
    node = FUGAKU
    its = wl.newton_per_step * time_steps
    procs = [4, 8, 16, 32]
    threads = [8, 4, 2, 1]
    jac: dict[tuple[int, int], float] = {}
    tot: dict[int, float] = {}
    t_rest = wl.cpu_time(node.core)
    for p in procs:
        for t in threads:
            if p * t <= total_cores:
                jac[(p, t)] = its * wl.host_kernel_time(node.core, t, node.device)
        t_diag = total_cores // p
        tot[p] = jac[(p, t_diag)] + its * t_rest
    best_p, best_t = 4, 8
    throughput = best_p * its / tot[best_p]
    return FugakuTable(
        procs=procs,
        threads=threads,
        jacobian_seconds=jac,
        total_seconds=tot,
        throughput_best=throughput,
    )
