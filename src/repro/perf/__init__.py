"""Performance experiments: node models, the MPS-style pipeline scheduler,
and the generators for the paper's throughput and component-time tables
(Tables II, III, V, VI, VII, VIII).

The flow is always: (1) run the *functional* kernel simulator on the actual
test problem to obtain exact work counters, (2) convert counters to device
times with the calibrated device model, (3) convert CPU-side work (band LU
factor/solve, metadata) to times with the node's core model, (4) feed the
per-iteration component times into the pipeline model of many MPI ranks
asynchronously sharing each GPU via MPS.  No table entry is hard-coded.
"""

from .nodes import NodeSpec, SUMMIT, SPOCK, FUGAKU, CoreSpec
from .mps import MpsPipelineModel
from .workload import LandauWorkload, build_paper_workload
from .throughput import (
    throughput_table,
    summit_cuda_table,
    summit_kokkos_table,
    spock_hip_table,
    fugaku_table,
)
from .components import component_times, component_table
from .summary import summary_table

__all__ = [
    "NodeSpec",
    "CoreSpec",
    "SUMMIT",
    "SPOCK",
    "FUGAKU",
    "MpsPipelineModel",
    "LandauWorkload",
    "build_paper_workload",
    "throughput_table",
    "summit_cuda_table",
    "summit_kokkos_table",
    "spock_hip_table",
    "fugaku_table",
    "component_times",
    "component_table",
    "summary_table",
]
