"""Table VII: component times per machine/language for one full run.

"Table VII reports timings for the single process per GPU case ... The
Landau matrix construction and the LU factorization and solve are the major
components to the total cost."  Components per run (iterations_per_run x
per-iteration time): Total, Landau (kernel + CPU metadata), (Kernel),
factor, solve.
"""

from __future__ import annotations

from dataclasses import dataclass

from .nodes import FUGAKU, SPOCK, SUMMIT, NodeSpec
from .workload import LandauWorkload


@dataclass
class ComponentRow:
    label: str
    total: float
    landau: float
    kernel: float
    factor: float
    solve: float

    def format(self) -> str:
        return (
            f"{self.label:<22} {self.total:>7.1f} {self.landau:>7.1f} "
            f"{self.kernel:>8.1f} {self.factor:>7.1f} {self.solve:>6.2f}"
        )


def component_times(
    wl: LandauWorkload,
    node: NodeSpec,
    label: str,
    kernel_overhead: float = 1.0,
    host_kernel_threads: int | None = None,
) -> ComponentRow:
    """One machine/language row (seconds for the whole run)."""
    its = wl.iterations_per_run
    if host_kernel_threads is None:
        t_kernel = wl.kernel_time(node.device, overhead=kernel_overhead)
    else:
        t_kernel = wl.host_kernel_time(node.core, host_kernel_threads, node.device)
    t_meta = wl.metadata_time(node.core)
    t_factor = wl.factor_time(node.core)
    t_solve = wl.solve_time(node.core)
    t_other = wl.other_time(node.core)
    total = its * (t_kernel + t_meta + t_factor + t_solve + t_other)
    return ComponentRow(
        label=label,
        total=total,
        landau=its * (t_kernel + t_meta),
        kernel=its * t_kernel,
        factor=its * t_factor,
        solve=its * t_solve,
    )


def component_table(wl: LandauWorkload) -> list[ComponentRow]:
    """All four rows of Table VII.

    The Fugaku row is normalized the way the paper normalizes it: measured
    on a 10-step run and scaled to the 100-step workload (x10).
    """
    rows = [
        component_times(wl, SUMMIT, "CUDA"),
        component_times(wl, SUMMIT, "Kokkos-CUDA", kernel_overhead=1.10),
        component_times(wl, SPOCK, "Kokkos-HIP", kernel_overhead=1.10),
        component_times(
            wl, FUGAKU, "Fugaku (normalized)", host_kernel_threads=8
        ),
    ]
    return rows


def format_component_table(rows: list[ComponentRow]) -> str:
    head = (
        f"{'Device':<22} {'Total':>7} {'Landau':>7} {'(Kernel)':>8} "
        f"{'factor':>7} {'solve':>6}"
    )
    return "\n".join([head] + [r.format() for r in rows])
