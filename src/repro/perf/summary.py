"""Table VIII: throughput and normalized kernel performance summary.

The "kernel (% CUDA)" column normalizes each machine's Landau kernel time
by its hardware peak relative to the V100:

    %CUDA = (t_kernel_CUDA / t_kernel_X) / (peak_X / peak_V100) * 100

so 100% means "as efficient as the hand-written CUDA kernel given the
hardware" — Kokkos-CUDA lands ~90%, Kokkos-HIP ~20% (immature ROCm + no
FP64 atomics), Kokkos-OpenMP ~low tens (no effective auto-vectorization).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import V100
from .nodes import FUGAKU, SPOCK, SUMMIT
from .throughput import (
    fugaku_table,
    spock_hip_table,
    summit_cuda_table,
    summit_kokkos_table,
)
from .workload import LandauWorkload


@dataclass
class SummaryRow:
    machine_language: str
    throughput: float
    hardware: str
    kernel_pct_cuda: float

    def format(self) -> str:
        return (
            f"{self.machine_language:<22} {self.throughput:>8,.0f} "
            f"{self.hardware:<22} {self.kernel_pct_cuda:>8.0f}"
        )


def summary_table(wl: LandauWorkload) -> list[SummaryRow]:
    t_cuda = wl.kernel_time(V100)
    rows: list[SummaryRow] = []

    t2 = summit_cuda_table(wl)
    rows.append(
        SummaryRow(
            "Summit / CUDA",
            t2.best,
            f"{SUMMIT.gpus} V100 + {SUMMIT.total_cores} P9",
            100.0,
        )
    )

    t3 = summit_kokkos_table(wl)
    tk = wl.kernel_time(V100, overhead=1.10)
    rows.append(
        SummaryRow(
            "Summit / Kokkos-CUDA",
            t3.best,
            f"{SUMMIT.gpus} V100 + {SUMMIT.total_cores} P9",
            100.0 * t_cuda / tk,
        )
    )

    t5 = spock_hip_table(wl)
    th = wl.kernel_time(SPOCK.device, overhead=1.10)
    norm = SPOCK.device.peak_fp64_tflops / V100.peak_fp64_tflops
    rows.append(
        SummaryRow(
            "Spock / Kokkos-HIP",
            t5.best,
            f"{SPOCK.gpus} MI100 + {SPOCK.total_cores // 2} EPYC",
            100.0 * (t_cuda / th) / norm,
        )
    )

    t6 = fugaku_table(wl)
    tf = wl.host_kernel_time(FUGAKU.core, 8, FUGAKU.device) / 4.0  # node-level: 4 procs
    normf = FUGAKU.device.peak_fp64_tflops / V100.peak_fp64_tflops
    rows.append(
        SummaryRow(
            "Fugaku / Kokkos-OMP",
            t6.throughput_best,
            "NA + 32 A64FX",
            100.0 * (t_cuda / tf) / normf,
        )
    )
    return rows


def format_summary_table(rows: list[SummaryRow]) -> str:
    head = f"{'Machine / language':<22} {'N/sec':>8} {'hardware':<22} {'% CUDA':>8}"
    return "\n".join([head] + [r.format() for r in rows])
