"""Node models for the paper's three machines.

The CPU-side model is deliberately simple: a core executes the band LU
factor/solve and the Landau metadata at ``effective_gflops`` with an SMT
slowdown curve (running 2-4 hardware threads per core shares its issue
ports; the paper's Tables II/III show a ~25% gain from the second thread
and ~2-3% from the third, which pins the curve).  Effective GFLOP/s values
are calibrated so the single-rank component times reproduce Table VII, and
documented here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import A64FX, MI100, V100, DeviceSpec


@dataclass(frozen=True)
class CoreSpec:
    """One CPU core of the host processor.

    ``effective_gflops`` is the sustained FP64 rate on the small, bandwidth-
    ugly band-LU/solve/metadata work — far below peak by design.
    ``smt_slowdown`` gives the per-thread work inflation when 1..4 hardware
    threads share the core.
    """

    name: str
    effective_gflops: float
    smt_levels: int = 4
    smt_slowdown: tuple[float, ...] = (1.0, 1.7, 2.49, 3.6)

    def slowdown(self, threads_per_core: int) -> float:
        if not (1 <= threads_per_core <= self.smt_levels):
            raise ValueError(
                f"{self.name}: threads/core {threads_per_core} out of 1..{self.smt_levels}"
            )
        return self.smt_slowdown[threads_per_core - 1]


#: IBM POWER9 core (Summit): calibrated so the 10-species band factor over
#: the paper's run reproduces Table VII's 8.4 s.
POWER9 = CoreSpec(name="POWER9", effective_gflops=12.0, smt_levels=4)

#: AMD EPYC 7662 core (Spock): the paper observes the EPYC roughly 1.4-2x
#: faster than the P9 on the factor/solve (Table VII: 5.9 s vs 8.4 s).
EPYC = CoreSpec(name="EPYC-7662", effective_gflops=17.0, smt_levels=2, smt_slowdown=(1.0, 1.7))

#: Fujitsu A64FX core: strong SVE peak but weak scalar/unvectorized rate.
A64FX_CORE = CoreSpec(name="A64FX-core", effective_gflops=6.3, smt_levels=1, smt_slowdown=(1.0,))


@dataclass(frozen=True)
class NodeSpec:
    """One node: GPUs + host cores (+ MPS behaviour).

    Attributes
    ----------
    gpus:
        number of devices (0 for Fugaku).
    cores_per_gpu:
        host cores available to drive each GPU (7 on Summit, 8 on Spock).
    gpu_concurrency:
        how many ranks' kernels the device can genuinely co-schedule
        (MPS + multi-block residency); V100 SMs fit several 256-thread
        blocks so ~6 concurrent 80-block kernels overlap well.
    mps_contention:
        extra per-rank GPU service inflation per rank beyond
        ``gpu_concurrency`` — small under a healthy MPS, large when the
        vendor equivalent "is not functioning well" (Spock, section V-D1:
        throughput rolls over at 16 processes per GPU).
    """

    name: str
    device: DeviceSpec | None
    core: CoreSpec
    gpus: int
    cores_per_gpu: int
    total_cores: int
    gpu_concurrency: int = 6
    mps_contention: float = 0.02


#: Summit node: 2 POWER9 (42 usable cores, 7 per GPU), 6 V100, SMT4, MPS on.
SUMMIT = NodeSpec(
    name="Summit",
    device=V100,
    core=POWER9,
    gpus=6,
    cores_per_gpu=7,
    total_cores=42,
    gpu_concurrency=6,
    mps_contention=0.02,
)

#: Spock node: 64-core EPYC "Rome", 4 MI100, SMT2; the MPS equivalent is
#: not functioning well -> heavy contention beyond the co-schedule limit.
SPOCK = NodeSpec(
    name="Spock",
    device=MI100,
    core=EPYC,
    gpus=4,
    cores_per_gpu=8,
    total_cores=64,
    gpu_concurrency=8,
    mps_contention=0.6,
)

#: Fugaku node: one A64FX, 48 cores (32 used in the paper), no GPU.
FUGAKU = NodeSpec(
    name="Fugaku",
    device=A64FX,
    core=A64FX_CORE,
    gpus=0,
    cores_per_gpu=0,
    total_cores=48,
    gpu_concurrency=0,
    mps_contention=0.0,
)
