"""Optional numba backend: the whole Jacobian build, JIT-compiled.

Guarded import — the container may not ship numba, in which case
:meth:`NumbaBackend.available` is ``False``, construction raises
:class:`BackendUnavailable`, and the equivalence tests/CI leg skip.

``REPRO_BACKEND=numba`` now covers every stage of the Jacobian build,
not just the band solves:

* packed pair-table build and the on-the-fly Algorithm-1 field rows —
  scalar ``nogil`` kernels over the AGM elliptic integrals
  (:mod:`repro.backend.numba_kernels`), block-dispatched through the
  inherited thread pool so rows overlap across cores without the GIL;
* the two batched element-contraction specs of the assembly path
  (``"eq,eqad,xeqdc,eqbc->xeab"`` / ``"eq,eqad,xeqd,qb->xeab"``) and
  the CSR scatter-apply — loop kernels partitioned along the batch
  axis (any other ``contract`` spec falls through to the threaded
  einsum);
* the batched no-pivot banded LU factor/solve stacks (below), exactly
  the recurrence of :func:`repro.sparse.band.band_factor`.

The cached-table field contraction (``matmul``) deliberately stays on
BLAS: dgemm is already compiled and cache-blocked, and a naive njit
triple loop loses to it at every size we serve.  Set
``REPRO_NUMBA_MATMUL=1`` to experiment with the JIT matmul anyway.

First-call compilation is hoisted out of timed paths by
:meth:`warmup`, which runs at construction (disable with
``REPRO_NUMBA_WARMUP=0``) and compiles every kernel on tiny inputs —
the serve tier additionally calls it through the untimed per-worker
warm RPC so batch deadlines never see compile time.
``REPRO_NUMBA_CACHE=1`` enables numba's on-disk cache.
"""

from __future__ import annotations

import os
import time

import numpy as np

from . import numba_kernels as nk
from .base import BackendUnavailable
from .threaded import ThreadedBackend

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    _HAVE_NUMBA = True
except ImportError:
    njit = None
    _HAVE_NUMBA = False

__all__ = ["NumbaBackend"]

_KERNELS: tuple | None = None

#: the two assembly contraction specs lowered to loop kernels
_SPEC_D = "eq,eqad,xeqdc,eqbc->xeab"
_SPEC_K = "eq,eqad,xeqd,qb->xeab"


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "", "false", "off")


def _get_kernels():  # pragma: no cover - requires numba
    """Compile (once) the batched band factor/solve kernels."""
    global _KERNELS
    if _KERNELS is not None:
        return _KERNELS

    @njit(cache=False)
    def factor_stack(W, B):
        # W: (X, n, 2B+1), factored in place; returns 0 or 1-based index
        # of the first zero pivot encountered.
        X, n, _ = W.shape
        for x in range(X):
            for k in range(n - 1):
                piv = W[x, k, B]
                if piv == 0.0:
                    return k + 1
                m = min(B, n - 1 - k)
                for d in range(m):
                    l = W[x, k + 1 + d, B - 1 - d] / piv
                    W[x, k + 1 + d, B - 1 - d] = l
                    for c in range(1, B + 1):
                        W[x, k + 1 + d, B - 1 - d + c] -= l * W[x, k, B + c]
        return 0

    @njit(cache=False)
    def solve_stack(W, B, rhs):
        # W: (X, n, 2B+1) factored; rhs: (X, n) permuted, solved in place.
        X, n, _ = W.shape
        for x in range(X):
            for i in range(1, n):
                j0 = max(0, i - B)
                acc = 0.0
                for j in range(j0, i):
                    acc += W[x, i, B + j - i] * rhs[x, j]
                rhs[x, i] -= acc
            for i in range(n - 1, -1, -1):
                j1 = min(n, i + B + 1)
                acc = rhs[x, i]
                for j in range(i + 1, j1):
                    acc -= W[x, i, B + j - i] * rhs[x, j]
                rhs[x, i] = acc / W[x, i, B]
        return rhs

    @njit(cache=False)
    def matmul_cols(A, B, out, c0, c1):
        # out[:, c0:c1] = A @ B[:, c0:c1] — opt-in (REPRO_NUMBA_MATMUL)
        n, k = A.shape
        for i in range(n):
            for c in range(c0, c1):
                acc = 0.0
                for j in range(k):
                    acc += A[i, j] * B[j, c]
                out[i, c] = acc

    _KERNELS = (factor_stack, solve_stack, matmul_cols)
    return _KERNELS


class NumbaBackend(ThreadedBackend):
    """Fully JIT-compiled Jacobian build + threaded block dispatch."""

    name = "numba"

    def __init__(self, num_threads: int = 0):
        if not _HAVE_NUMBA:
            raise BackendUnavailable(
                "backend 'numba' requires the numba package, which is not "
                "installed in this environment (pick 'numpy' or 'threaded', "
                "or leave REPRO_BACKEND=auto)"
            )
        super().__init__(num_threads)
        self._jit_matmul = _env_flag("REPRO_NUMBA_MATMUL", False)
        if _env_flag("REPRO_NUMBA_WARMUP", True):
            self.warmup()

    @classmethod
    def available(cls) -> bool:
        return _HAVE_NUMBA

    # ------------------------------------------------------------------
    def warmup(self) -> float:  # pragma: no cover - requires numba
        """Compile every kernel on tiny inputs; idempotent.

        Runs at construction by default (``REPRO_NUMBA_WARMUP=0``
        defers back to first call) and records the compile cost in
        :attr:`warmup_seconds` so callers can report it.  The serve
        tier invokes this per worker through the untimed warm RPC —
        per-batch deadlines never include compilation.
        """
        if self.warmed:
            return 0.0
        t0 = time.perf_counter()
        nk.warm_all()
        factor_stack, solve_stack, matmul_cols = _get_kernels()
        W = np.zeros((1, 3, 3))
        W[:, :, 1] = 2.0  # diagonal band column (B = 1)
        factor_stack(W, 1)
        solve_stack(W, 1, np.ones((1, 3)))
        matmul_cols(np.eye(2), np.eye(2), np.zeros((2, 2)), 0, 2)
        self.warmed = True
        self.warmup_seconds = time.perf_counter() - t0
        return self.warmup_seconds

    # ------------------------------------------------------------------
    # Algorithm-1 row-block kernels
    def pair_table_rows(
        self, out, r, z, i0: int, i1: int
    ) -> None:  # pragma: no cover - requires numba
        nk.pair_rows(out, r, z, i0, i1)

    def field_rows(
        self, G_D, G_K, r, z, cTD, cTKr, cTKz, i0: int, i1: int
    ) -> None:  # pragma: no cover - requires numba
        nk.field_rows(G_D, G_K, r, z, cTD, cTKr, cTKz, i0, i1)

    # ------------------------------------------------------------------
    # dense contractions
    def matmul(self, A, B):  # pragma: no cover - requires numba
        if not self._jit_matmul:
            return super().matmul(A, B)
        _, _, matmul_cols = _get_kernels()
        A = np.ascontiguousarray(A, dtype=np.float64)
        B = np.ascontiguousarray(B, dtype=np.float64)
        out = np.empty((A.shape[0], B.shape[1]))
        blocks = self.batch_blocks(B.shape[1])
        self.parallel_for(
            blocks, lambda c0, c1: matmul_cols(A, B, out, c0, c1)
        )
        return out

    def contract(self, spec: str, *ops):  # pragma: no cover - requires numba
        spec_n = spec.replace(" ", "")
        if spec_n == _SPEC_D and len(ops) == 4:
            w, gphys, GD, _ = ops
            return self._element_contract(nk.element_blocks_D, w, gphys, (GD,))
        if spec_n == _SPEC_K and len(ops) == 4:
            w, gphys, GK, Bq = ops
            return self._element_contract(
                nk.element_blocks_K,
                w,
                gphys,
                (GK, np.ascontiguousarray(Bq, dtype=np.float64)),
            )
        return super().contract(spec, *ops)

    def _element_contract(
        self, kernel, w, gphys, tail
    ):  # pragma: no cover - requires numba
        w = np.ascontiguousarray(w, dtype=np.float64)
        gphys = np.ascontiguousarray(gphys, dtype=np.float64)
        field = np.ascontiguousarray(tail[0], dtype=np.float64)
        X = field.shape[0]
        ne, nq = w.shape
        nb = gphys.shape[2]
        out = np.zeros((X, ne, nb, nb))
        args = (w, gphys, field) + tuple(tail[1:]) + (out,)
        self.parallel_for(
            self.batch_blocks(X), lambda x0, x1: kernel(*args, x0, x1)
        )
        return out

    # ------------------------------------------------------------------
    # sparse scatter-apply
    def scatter_apply(self, T, flat):  # pragma: no cover - requires numba
        indptr = getattr(T, "indptr", None)
        if indptr is None:
            return super().scatter_apply(T, flat)
        flat = np.ascontiguousarray(flat, dtype=np.float64)
        X = flat.shape[0]
        out = np.empty((X, T.shape[0]))
        data = np.ascontiguousarray(T.data, dtype=np.float64)
        indices = T.indices
        self.parallel_for(
            self.batch_blocks(X),
            lambda x0, x1: nk.csr_scatter_rows(
                indptr, indices, data, flat, out, x0, x1
            ),
        )
        return out

    # ------------------------------------------------------------------
    def banded_factor_many(
        self, st, n: int, data: np.ndarray, pivot_tol: float = 0.0
    ) -> tuple[str, object]:  # pragma: no cover - requires numba
        factor_stack, _, _ = _get_kernels()
        X = data.shape[0]
        B = st.B
        Wflat = np.zeros((X, n * (2 * B + 1)))
        Wflat[:, st.pos] = data
        W = np.ascontiguousarray(Wflat.reshape(X, n, 2 * B + 1))
        info = factor_stack(W, B)
        if info != 0:
            raise ZeroDivisionError(
                f"zero pivot at step {info - 1} (no pivoting)"
            )
        return "numba", W

    def banded_solve_many(
        self, engine: str, factors, st, rhs_p: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - requires numba
        if engine != "numba":
            return super().banded_solve_many(engine, factors, st, rhs_p)
        _, solve_stack, _ = _get_kernels()
        return solve_stack(factors, st.B, np.ascontiguousarray(rhs_p, dtype=float))

    def banded_solve_one(
        self, engine: str, factor, st, b_p: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - requires numba
        if engine != "numba":
            return super().banded_solve_one(engine, factor, st, b_p)
        _, solve_stack, _ = _get_kernels()
        W = np.ascontiguousarray(factor)[None]
        rhs = np.ascontiguousarray(b_p, dtype=float)[None].copy()
        return solve_stack(W, st.B, rhs)[0]
