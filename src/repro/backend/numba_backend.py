"""Optional numba backend: JIT-compiled banded LU over the W layout.

Guarded import — the container may not ship numba, in which case
:meth:`NumbaBackend.available` is ``False``, construction raises
:class:`BackendUnavailable`, and the equivalence tests/CI leg skip.

The JIT kernels implement exactly the no-pivot outer-product banded LU
recurrence of :func:`repro.sparse.band.band_factor` (sheared window
``V[d, c] = W[k+1+d, B-1-d+c]``) and the forward/backward substitution
of :func:`band_solve`, batched over a contiguous ``(X, n, 2B+1)`` stack.
Dense contractions and scatter reuse the threaded block dispatch.
"""

from __future__ import annotations

import numpy as np

from .base import BackendUnavailable
from .threaded import ThreadedBackend

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    _HAVE_NUMBA = True
except ImportError:
    njit = None
    _HAVE_NUMBA = False

__all__ = ["NumbaBackend"]

_KERNELS: tuple | None = None


def _get_kernels():  # pragma: no cover - requires numba
    """Compile (once) the batched band factor/solve kernels."""
    global _KERNELS
    if _KERNELS is not None:
        return _KERNELS

    @njit(cache=False)
    def factor_stack(W, B):
        # W: (X, n, 2B+1), factored in place; returns 0 or 1-based index
        # of the first zero pivot encountered.
        X, n, _ = W.shape
        for x in range(X):
            for k in range(n - 1):
                piv = W[x, k, B]
                if piv == 0.0:
                    return k + 1
                m = min(B, n - 1 - k)
                for d in range(m):
                    l = W[x, k + 1 + d, B - 1 - d] / piv
                    W[x, k + 1 + d, B - 1 - d] = l
                    for c in range(1, B + 1):
                        W[x, k + 1 + d, B - 1 - d + c] -= l * W[x, k, B + c]
        return 0

    @njit(cache=False)
    def solve_stack(W, B, rhs):
        # W: (X, n, 2B+1) factored; rhs: (X, n) permuted, solved in place.
        X, n, _ = W.shape
        for x in range(X):
            for i in range(1, n):
                j0 = max(0, i - B)
                acc = 0.0
                for j in range(j0, i):
                    acc += W[x, i, B + j - i] * rhs[x, j]
                rhs[x, i] -= acc
            for i in range(n - 1, -1, -1):
                j1 = min(n, i + B + 1)
                acc = rhs[x, i]
                for j in range(i + 1, j1):
                    acc -= W[x, i, B + j - i] * rhs[x, j]
                rhs[x, i] = acc / W[x, i, B]
        return rhs

    _KERNELS = (factor_stack, solve_stack)
    return _KERNELS


class NumbaBackend(ThreadedBackend):
    """JIT banded LU + threaded dense dispatch; requires numba."""

    name = "numba"

    def __init__(self, num_threads: int = 0):
        if not _HAVE_NUMBA:
            raise BackendUnavailable(
                "backend 'numba' requires the numba package, which is not "
                "installed in this environment (pick 'numpy' or 'threaded', "
                "or leave REPRO_BACKEND=auto)"
            )
        super().__init__(num_threads)

    @classmethod
    def available(cls) -> bool:
        return _HAVE_NUMBA

    # ------------------------------------------------------------------
    def banded_factor_many(
        self, st, n: int, data: np.ndarray, pivot_tol: float = 0.0
    ) -> tuple[str, object]:  # pragma: no cover - requires numba
        factor_stack, _ = _get_kernels()
        X = data.shape[0]
        B = st.B
        Wflat = np.zeros((X, n * (2 * B + 1)))
        Wflat[:, st.pos] = data
        W = np.ascontiguousarray(Wflat.reshape(X, n, 2 * B + 1))
        info = factor_stack(W, B)
        if info != 0:
            raise ZeroDivisionError(
                f"zero pivot at step {info - 1} (no pivoting)"
            )
        return "numba", W

    def banded_solve_many(
        self, engine: str, factors, st, rhs_p: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - requires numba
        if engine != "numba":
            return super().banded_solve_many(engine, factors, st, rhs_p)
        _, solve_stack = _get_kernels()
        return solve_stack(factors, st.B, np.ascontiguousarray(rhs_p, dtype=float))

    def banded_solve_one(
        self, engine: str, factor, st, b_p: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - requires numba
        if engine != "numba":
            return super().banded_solve_one(engine, factor, st, b_p)
        _, solve_stack = _get_kernels()
        W = np.ascontiguousarray(factor)[None]
        rhs = np.ascontiguousarray(b_p, dtype=float)[None].copy()
        return solve_stack(W, st.B, rhs)[0]
