"""Shared-memory arena: zero-copy cross-process hot-path state.

The process backend and the serve tier keep warm, long-lived arrays —
packed pair tables, ``ScatterMap`` CSR arrays, band symbolics, per-batch
state stacks — in POSIX shared memory (``multiprocessing.shared_memory``)
so worker processes dispatch over *views* instead of pickled copies.
:class:`SharedArena` owns the create/unlink side; :func:`attach_array` /
:func:`attach_copy` are the worker (attach) side.

Lifecycle rules, enforced here so every caller inherits them:

* every segment has exactly one **owner** process — the one whose arena
  created it.  Attachers map the segment but never unlink it.
* segment names are **generation-tagged** (``rpro-<pid>-g<gen>-<seq>``):
  a restarted arena, or a second arena in the same process, can never
  collide with (or accidentally adopt) a stale segment.
* the owner unlinks on :meth:`free` / :meth:`close` and, as backstops,
  at interpreter exit via ``atexit`` and on SIGTERM via a chaining
  signal handler (the prior handler still runs; with none installed the
  process re-delivers the signal so its exit status stays ``-SIGTERM``).
  All are idempotent, and all are **fork-safe**: a forked child that
  inherits the arena object is not the owner pid and silently refuses to
  unlink.  Owners killed by SIGKILL never reach any backstop, so every new arena sweeps
  ``/dev/shm`` for segments whose owner pid is dead and reclaims them
  (:func:`reclaim_dead_owner_segments`).
* attachers never register with the ``resource_tracker``: on Python
  < 3.13 the tracker treats any attach as ownership, so a worker exiting
  would otherwise unlink segments it merely mapped (and, under ``fork``,
  confuse the tracker shared with the creator).
* a byte **budget** (``REPRO_SHM_BUDGET``, default 1 GiB) caps the
  arena; :meth:`alloc` raises :class:`ShmBudgetExceeded` and callers fall
  back to private memory + pickle-by-value, trading speed for safety.
"""

from __future__ import annotations

import atexit
import glob
import itertools
import os
import re
import signal
import threading
import weakref
from collections import OrderedDict
from contextlib import suppress
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker
except ImportError:  # pragma: no cover
    resource_tracker = None

__all__ = [
    "ShmBudgetExceeded",
    "ShmHandle",
    "SharedArena",
    "attach_array",
    "attach_copy",
    "reclaim_dead_owner_segments",
]

#: default arena byte budget (overridden by ``REPRO_SHM_BUDGET``)
DEFAULT_SHM_BUDGET = 1 << 30

#: distinct tag per arena instance within one process
_ARENA_GENERATION = itertools.count()


class ShmBudgetExceeded(RuntimeError):
    """An allocation would push the arena past its byte budget
    (``REPRO_SHM_BUDGET``); the caller falls back to private memory."""


@dataclass(frozen=True)
class ShmHandle:
    """Pickle-light descriptor of an ndarray inside a shared segment.

    ``offset`` supports views into a larger arena-owned buffer (e.g. one
    component plane of the packed ``(5, N, N)`` pair tables).
    """

    name: str
    shape: tuple
    dtype: str
    offset: int = 0

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


_TRACKER_LOCK = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach without registering ownership with the resource tracker.

    Pre-3.13 ``SharedMemory`` registers every attach as if it created the
    segment; under ``fork`` the tracker is shared with the creator, whose
    registry is a *set* — duplicate registrations collapse, so any
    unregister choreography leaves the tracker complaining at exit.  The
    clean invariant is one register (creator) + one unregister (unlink):
    suppress the attach-side registration entirely (``track=False`` on
    3.13+, a scoped no-op patch before that).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    if resource_tracker is None:  # pragma: no cover
        return shared_memory.SharedMemory(name=name)
    with _TRACKER_LOCK:
        real_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = real_register


_RECLAIM_RE = re.compile(r"^rpro-(\d+)-g\d+-\d+$")


def reclaim_dead_owner_segments() -> int:
    """Unlink ``/dev/shm`` segments whose owner process is gone.

    The atexit backstop never runs when an owner is killed by an
    unhandled signal (SIGKILL, ``timeout``'s SIGTERM), so its segments
    outlive it.  Names carry the owner pid, so any later arena can
    reclaim them; unlink only removes the name — a straggling worker
    still holding a mapping is unaffected.  Returns the count reclaimed.
    """
    reclaimed = 0
    for path in glob.glob("/dev/shm/rpro-*"):
        m = _RECLAIM_RE.match(os.path.basename(path))
        if m is None:
            continue
        pid = int(m.group(1))
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            continue  # owner alive
        except PermissionError:  # pragma: no cover - alive, other user
            continue
        except ProcessLookupError:
            pass
        with suppress(OSError):
            os.unlink(path)
            reclaimed += 1
    return reclaimed


#: arenas owned by this process, cleaned up by the SIGTERM backstop
_LIVE_ARENAS: "weakref.WeakSet[SharedArena]" = weakref.WeakSet()
_SIGTERM_LOCK = threading.Lock()
_SIGTERM_INSTALLED = False
_PREV_SIGTERM = None


def _sigterm_cleanup(signum, frame) -> None:
    """Unlink every live arena's segments, then chain to the previous
    handler (or re-deliver with the default disposition, so the process
    still dies with the SIGTERM exit status its supervisor expects)."""
    for arena in list(_LIVE_ARENAS):
        with suppress(Exception):
            arena.close()
    prev = _PREV_SIGTERM
    if callable(prev):
        prev(signum, frame)
    elif prev != signal.SIG_IGN:
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def _install_sigterm_backstop() -> None:
    """Install the chaining SIGTERM handler once per process.

    The ``atexit`` backstop never runs on an unhandled SIGTERM (the
    interpreter dies in the C handler), which is exactly how service
    managers and ``timeout(1)`` stop a process — so a clean SIGTERM used
    to orphan every live segment until some later arena swept them.
    Signal handlers can only be set from the main thread; elsewhere the
    dead-owner sweep remains the (eventual) safety net.
    """
    global _SIGTERM_INSTALLED, _PREV_SIGTERM
    with _SIGTERM_LOCK:
        if _SIGTERM_INSTALLED:
            return
        if threading.current_thread() is not threading.main_thread():
            return
        try:
            prev = signal.getsignal(signal.SIGTERM)
            signal.signal(signal.SIGTERM, _sigterm_cleanup)
        except (ValueError, OSError):  # pragma: no cover - exotic embeddings
            return
        # never chain to ourselves (a second install attempt after e.g.
        # someone saved+restored handlers around us)
        _PREV_SIGTERM = None if prev is _sigterm_cleanup else prev
        _SIGTERM_INSTALLED = True


def _shm_budget_from_env() -> int:
    raw = os.environ.get("REPRO_SHM_BUDGET")
    if raw is None or not raw.strip():
        return DEFAULT_SHM_BUDGET
    try:
        return int(float(raw))
    except ValueError as err:
        raise ValueError(
            f"REPRO_SHM_BUDGET must be a byte count, got {raw!r}"
        ) from err


class SharedArena:
    """Owner side of the segment lifecycle: alloc / publish / free / close.

    All methods are thread-safe; the arena is also safe to *inherit*
    across ``fork`` — only the owner pid ever unlinks.
    """

    def __init__(self, tag: str = "arena", budget: int | None = None):
        self.budget = _shm_budget_from_env() if budget is None else int(budget)
        if self.budget <= 0:
            raise ValueError(f"shm budget must be positive, got {self.budget}")
        self.tag = tag
        self.generation = next(_ARENA_GENERATION)
        self._owner_pid = os.getpid()
        self._seq = itertools.count()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        #: segment name -> (base address, size) for pointer-range lookups
        self._spans: dict[str, tuple[int, int]] = {}
        self._lock = threading.RLock()
        self.bytes = 0
        self.created_segments = 0
        self.freed_segments = 0
        self._closed = False
        atexit.register(self.close)
        _LIVE_ARENAS.add(self)
        _install_sigterm_backstop()
        reclaim_dead_owner_segments()

    # ------------------------------------------------------------------
    def _new_name(self) -> str:
        return f"rpro-{self._owner_pid}-g{self.generation}-{next(self._seq)}"

    def alloc(self, shape, dtype=np.float64) -> np.ndarray:
        """Allocate a zero-filled C-contiguous array in a fresh segment.

        Returns the owner-side view; recover its handle (for shipping to
        workers) with :meth:`handle_of`.  Raises :class:`ShmBudgetExceeded`
        over budget and ``RuntimeError`` after :meth:`close`.
        """
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedArena is closed")
            if self.bytes + nbytes > self.budget:
                raise ShmBudgetExceeded(
                    f"allocating {nbytes} bytes would exceed the shared-memory "
                    f"budget ({self.bytes}/{self.budget} bytes in use); raise "
                    "REPRO_SHM_BUDGET or let the caller fall back to pickling"
                )
            seg = shared_memory.SharedMemory(
                create=True, name=self._new_name(), size=max(1, nbytes)
            )
            arr = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
            self._segments[seg.name] = seg
            self._spans[seg.name] = (
                arr.__array_interface__["data"][0],
                max(1, nbytes),
            )
            self.bytes += nbytes
            self.created_segments += 1
        return arr

    def handle_of(self, arr: np.ndarray) -> ShmHandle | None:
        """Handle for an array living inside an arena segment, or ``None``.

        Pointer-range based, so contiguous *views* into arena buffers
        (component planes, row slices) resolve without any registration.
        """
        if not isinstance(arr, np.ndarray) or not arr.flags["C_CONTIGUOUS"]:
            return None
        ptr = arr.__array_interface__["data"][0]
        with self._lock:
            for name, (base, size) in self._spans.items():
                if base <= ptr and ptr + arr.nbytes <= base + size:
                    return ShmHandle(
                        name=name,
                        shape=arr.shape,
                        dtype=arr.dtype.str,
                        offset=ptr - base,
                    )
        return None

    def publish(self, arr: np.ndarray) -> ShmHandle:
        """Copy an array into the arena once and return its handle.

        Arrays already backed by an arena segment are returned in place
        (no second copy).  Raises :class:`ShmBudgetExceeded` over budget.
        """
        arr = np.ascontiguousarray(arr)
        handle = self.handle_of(arr)
        if handle is not None:
            return handle
        shared = self.alloc(arr.shape, arr.dtype)
        shared[...] = arr
        handle = self.handle_of(shared)
        assert handle is not None
        return handle

    def free(self, name: str) -> None:
        """Close + unlink one segment; idempotent, owner-pid only.

        ``close`` unmaps immediately — the owner must drop its own views
        first (every internal caller does; attachers in other processes
        are unaffected, their mappings are independent)."""
        if os.getpid() != self._owner_pid:
            return
        with self._lock:
            seg = self._segments.pop(name, None)
            span = self._spans.pop(name, None)
            if seg is None:
                return
            self.bytes -= 0 if span is None else span[1]
            self.freed_segments += 1
        # a still-live owner view keeps the mapping exported; unlink works
        # regardless (POSIX), so the /dev/shm entry is gone either way
        with suppress(BufferError):
            seg.close()
        with suppress(FileNotFoundError):
            seg.unlink()

    def close(self) -> None:
        """Unlink every live segment; idempotent and double-close safe."""
        if os.getpid() != self._owner_pid:
            return
        with self._lock:
            names = list(self._segments)
            self._closed = True
        for name in names:
            self.free(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedArena(tag={self.tag!r}, gen={self.generation}, "
            f"segments={len(self._segments)}, bytes={self.bytes})"
        )


# ----------------------------------------------------------------------
# attach side (worker processes)
#
# Memory-safety invariant: ``SharedMemory.close()`` (which ``__del__``
# also calls) unmaps IMMEDIATELY, even while numpy views of ``seg.buf``
# are alive — numpy keeps only a reference, not a buffer export, so a
# closed attachment turns every outstanding view into a segfault.
# Attached segments are therefore never closed here and every array
# returned by :func:`attach_array` *pins* its segment object until the
# array dies (``weakref.finalize``); cache maintenance only drops cache
# references, and the mapping unmaps when the last pinned array (and
# any derived views, through numpy base chains) is gone.

_ATTACH_LOCK = threading.Lock()
_ATTACH_CACHE: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()
#: soft bound; above it the stale sweep runs and the LRU tail is dropped
_ATTACH_CACHE_MAX = 64

#: pin token -> segment, keeping attached segments alive while any array
#: returned for them is alive (dropped by the arrays' finalizers)
_ATTACH_PINS: dict[int, shared_memory.SharedMemory] = {}
_PIN_TOKEN = itertools.count()

#: callbacks invoked (name) when an attachment is dropped from the
#: cache, so derived caches (worker-side CSR operators, band symbolics)
#: release their views of the same segment and the memory can unmap
ATTACH_DROP_HOOKS: list = []


def _release_fd(seg: shared_memory.SharedMemory) -> None:
    """Close the attach-side file descriptor, keeping the mapping.

    ``mmap`` duplicated the descriptor at construction, so the segment
    stays fully usable; afterwards dropping the ``SharedMemory`` object
    can never leak a descriptor, no matter how many views survive it.
    """
    fd = getattr(seg, "_fd", -1)
    if fd >= 0:
        with suppress(OSError):
            os.close(fd)
        seg._fd = -1


def _drop_attachment(name: str) -> None:
    """Remove one cached attachment + notify derived caches (lock held)."""
    _ATTACH_CACHE.pop(name, None)
    for hook in ATTACH_DROP_HOOKS:
        with suppress(Exception):
            hook(name)


def _segment_file_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


def _pinned_view(seg: shared_memory.SharedMemory, handle: ShmHandle) -> np.ndarray:
    """Array over ``seg.buf`` that keeps ``seg`` alive until it dies."""
    arr = np.ndarray(
        handle.shape,
        dtype=np.dtype(handle.dtype),
        buffer=seg.buf,
        offset=handle.offset,
    )
    token = next(_PIN_TOKEN)
    _ATTACH_PINS[token] = seg
    weakref.finalize(arr, _ATTACH_PINS.pop, token, None)
    return arr


def attach_array(handle: ShmHandle, cache: bool = True) -> np.ndarray:
    """Zero-copy view of a published array in this (worker) process.

    Cached attachments map a published table once across dispatches; pass
    ``cache=False`` for one-shot segments (scratch outputs) so they unmap
    as soon as the returned view dies.  When the cache overflows, entries
    whose backing file the owner already unlinked are dropped first (they
    can never be shipped again), then the LRU tail — both are safe for
    live consumers, whose arrays pin the segment object directly.
    """
    if not cache:
        seg = _attach_segment(handle.name)
        _release_fd(seg)
        return _pinned_view(seg, handle)
    with _ATTACH_LOCK:
        seg = _ATTACH_CACHE.get(handle.name)
        if seg is not None:
            _ATTACH_CACHE.move_to_end(handle.name)
        else:
            seg = _attach_segment(handle.name)
            _release_fd(seg)
            _ATTACH_CACHE[handle.name] = seg
            if len(_ATTACH_CACHE) > _ATTACH_CACHE_MAX and os.path.isdir(
                "/dev/shm"
            ):
                for name in [
                    n
                    for n in _ATTACH_CACHE
                    if n != handle.name and not _segment_file_exists(n)
                ]:
                    _drop_attachment(name)
            while len(_ATTACH_CACHE) > _ATTACH_CACHE_MAX:
                oldest = next(iter(_ATTACH_CACHE))
                if oldest == handle.name:
                    break
                _drop_attachment(oldest)
        return _pinned_view(seg, handle)


def attach_copy(handle: ShmHandle) -> np.ndarray:
    """Private copy of a one-shot segment: attach, copy, detach.

    Used for per-batch payloads (state stacks) whose segment the owner
    frees as soon as the call returns; nothing stays mapped here.
    """
    seg = _attach_segment(handle.name)
    try:
        view = np.ndarray(
            handle.shape,
            dtype=np.dtype(handle.dtype),
            buffer=seg.buf,
            offset=handle.offset,
        )
        out = np.array(view)
        del view
    finally:
        with suppress(BufferError):
            seg.close()
    return out
