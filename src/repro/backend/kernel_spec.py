"""The shared Landau-kernel specification (Algorithm 1 + SoA layout).

The paper expresses the same kernel twice — raw CUDA (§III-B) and Kokkos
league/team/vector (§III-C) — over one shared data layout, and stresses
that this is what makes new architectures cheap.  This module is that
shared part for the simulators: the SoA mesh/state packing
(:class:`KernelData` / :class:`FieldData`), the per-pair instruction-mix
constants, and the full Algorithm-1 element loop
(:func:`element_jacobian`), written once against a small
:class:`KernelMapping` seam.

:mod:`repro.core.kernel_cuda` and :mod:`repro.core.kernel_kokkos` each
provide a mapping — how chunks are staged, how lane partials are
reduced, where barriers fall — so the two "programming models" differ
*only* in their mapping objects, exactly like the paper's two source
files over one ``LandauTensor2D``.  The mapping hooks are also where the
models' counter signatures diverge (CUDA counts explicit warp shuffles
and a pre-transform shared-memory replay; Kokkos allocates variable-
length team scratch and reduces through ``vector_reduce``), so each
model's instruction/byte accounting is preserved bit-for-bit.

This module is deliberately *not* re-exported from
:mod:`repro.backend`'s package root: the execution backends know nothing
about the FEM layers, and the kernel spec imports them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.landau_tensor import landau_tensors_cyl
from ..core.species import SpeciesSet
from ..fem.function_space import FunctionSpace

__all__ = [
    "ACCUM_FMA",
    "ACCUM_MUL",
    "BETA_FMA_PER_SPECIES",
    "TENSOR_ADD",
    "TENSOR_FMA",
    "TENSOR_MUL",
    "TENSOR_SPECIAL",
    "DeviceKernelData",
    "FieldData",
    "KernelData",
    "KernelMapping",
    "element_jacobian",
]

# --- per-pair instruction mix of LandauTensor2D (counted per (i, j) pair) ----
#: FMA instructions: elliptic polynomial evaluations (two 10th-order Horner
#: chains), the I-integral combinations and the tensor component assembly.
TENSOR_FMA = 38
#: plain multiplies (coordinate products, scalings)
TENSOR_MUL = 30
#: plain adds/subtracts
TENSOR_ADD = 20
#: special-function ops: sqrt, log, reciprocals
TENSOR_SPECIAL = 4

#: per (pair, species) cost of the beta-sum accumulation (Alg. 1 lines 5-8):
#: two FMAs for T_K components, one for T_D.
BETA_FMA_PER_SPECIES = 3

#: per-pair G accumulation (lines 9-10): G_K += w U_K.T_K (4 FMA + 2 MUL),
#: G_D += w T_D U_D (3 unique FMA + 1 MUL for w*T_D).
ACCUM_FMA = 7
ACCUM_MUL = 3


@dataclass
class KernelData:
    """Immutable per-mesh data consumed by the kernels (SoA packing)."""

    nq: int
    nb: int
    nelem: int
    N: int
    r: np.ndarray  # (N,)
    z: np.ndarray  # (N,)
    w: np.ndarray  # (N,) combined weights (quad * detJ * r)
    B: np.ndarray  # (nq, nb) basis table
    Dref: np.ndarray  # (nq, nb, 2) reference gradients
    inv_jac: np.ndarray  # (nelem, 2)
    elem_targets: list[np.ndarray]  # per element: free-dof targets
    elem_P: list[np.ndarray]  # per element: (nb, K_e) distribution weights
    charges: np.ndarray  # (S,)
    masses: np.ndarray  # (S,)
    n_free: int

    @classmethod
    def build(cls, fs: FunctionSpace, species: SpeciesSet) -> "KernelData":
        dm = fs.dofmap
        P = dm.P.tocsr()
        elem_targets: list[np.ndarray] = []
        elem_P: list[np.ndarray] = []
        for e in range(fs.nelem):
            nodes = dm.cell_nodes[e]
            sub = P[nodes]  # (nb, n_free) sparse, few nonzero columns
            cols = np.unique(sub.indices)
            dense = np.asarray(sub[:, cols].todense())
            elem_targets.append(cols.astype(np.int64))
            elem_P.append(dense)
        N = fs.n_integration_points
        return cls(
            nq=fs.nq,
            nb=fs.nb,
            nelem=fs.nelem,
            N=N,
            r=fs.qpoints[:, :, 0].reshape(N).copy(),
            z=fs.qpoints[:, :, 1].reshape(N).copy(),
            w=fs.qweights.reshape(N).copy(),
            B=fs.B,
            Dref=fs.Dref,
            inv_jac=fs.inv_jac,
            elem_targets=elem_targets,
            elem_P=elem_P,
            charges=species.charges,
            masses=species.masses,
            n_free=dm.n_free,
        )


@dataclass
class DeviceKernelData:
    """Flat, device-shippable view of :class:`KernelData`.

    The per-element constraint data (``elem_targets`` / ``elem_P``) is
    ragged — element ``e`` scatters into ``K_e`` free dofs — which a
    device kernel cannot index as python lists.  This packs both into
    offset-indexed flat arrays (CSR-style): element ``e`` owns
    ``targets_flat[targets_off[e]:targets_off[e+1]]`` and its ``(nb,
    K_e)`` distribution matrix is ``P_flat[P_off[e]:P_off[e+1]]`` in
    row-major order.  Everything a ``numba.cuda.jit`` kernel touches is
    then a contiguous ndarray.
    """

    targets_flat: np.ndarray  # (sum_e K_e,) int64 free-dof targets
    targets_off: np.ndarray  # (nelem + 1,) int64 offsets into targets_flat
    P_flat: np.ndarray  # (sum_e nb*K_e,) float64 row-major (nb, K_e) blocks
    P_off: np.ndarray  # (nelem + 1,) int64 offsets into P_flat

    @classmethod
    def pack(cls, kd: KernelData) -> "DeviceKernelData":
        counts = np.array([t.size for t in kd.elem_targets], dtype=np.int64)
        targets_off = np.concatenate(([0], np.cumsum(counts)))
        P_off = np.concatenate(([0], np.cumsum(kd.nb * counts)))
        targets_flat = (
            np.concatenate(kd.elem_targets)
            if counts.sum()
            else np.zeros(0, dtype=np.int64)
        ).astype(np.int64)
        P_flat = (
            np.concatenate([np.asarray(P, dtype=np.float64).ravel() for P in kd.elem_P])
            if counts.sum()
            else np.zeros(0)
        )
        return cls(
            targets_flat=targets_flat,
            targets_off=targets_off,
            P_flat=P_flat,
            P_off=P_off,
        )


@dataclass
class FieldData:
    """Per-state data: distribution values/gradients at all IPs (SoA)."""

    f: np.ndarray  # (S, N)
    df: np.ndarray  # (2, S, N)

    @classmethod
    def build(cls, fs: FunctionSpace, fields: list[np.ndarray]) -> "FieldData":
        packed = fs.pack_ip_data(list(fields))
        return cls(f=packed["f"], df=packed["df"])


class KernelMapping:
    """How one programming model maps the shared kernel onto its machine.

    A mapping owns the simulator :class:`~repro.gpu.machine.ThreadBlock`
    (``tb``), the inner-integral ``chunk`` width (block x-dimension /
    vector length), and the model-specific hooks below.  The default
    implementations are no-ops so a mapping only spells out where its
    model actually differs.
    """

    tb = None
    chunk: int = 1

    def stage_prologue(self, S: int, N: int) -> None:
        """Before the chunk loop (e.g. Kokkos' team-scratch allocation)."""

    def barrier(self) -> None:
        """Block-wide barrier after staging / before consuming shared data."""
        raise NotImplementedError

    def reduce_chunk(
        self,
        UK: np.ndarray,
        UD: np.ndarray,
        wj: np.ndarray,
        T_K: np.ndarray,
        T_D: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One chunk's contribution ``(gk (nq, 2), gd (nq, 2, 2))`` to the
        integrals — lane partials reduced the model's way."""
        raise NotImplementedError

    def finalize_integrals(self, nq: int) -> None:
        """After the chunk loop: combine lane partials across the block
        (CUDA's counted warp-shuffle butterfly; Kokkos already reduced
        inside ``vector_reduce`` and only needs its barrier)."""
        raise NotImplementedError

    def pre_transform_reads(self, S: int, nq: int, nb: int) -> None:
        """Shared-memory traffic charged when basis rows re-read the
        staged KK/DD coefficients (the CUDA model's explicit replay)."""


def element_jacobian(
    mapping: KernelMapping,
    e: int,
    kd: KernelData,
    fd: FieldData,
    nu0: float,
    out: np.ndarray,
) -> None:
    """Build one element's Jacobian contribution — Algorithm 1, shared by
    every programming model.

    The structure is the paper's: stage a chunk of SoA source data into
    shared memory (lines 2-3), per-pair Landau tensors in registers
    (line 4), species-summed beta terms (lines 5-8), integral
    accumulation with the model's lane reduction (lines 9-12), per-species
    scaling (lines 13-16), and transform & assemble with constrained-
    vertex interpolation (lines 18-23).  ``out`` is the global
    ``(S, n_free, n_free)`` matrix accumulated with atomic adds.
    """
    tb = mapping.tb
    nq, nb, N = kd.nq, kd.nb, kd.N
    S = kd.charges.size
    chunk = mapping.chunk

    # registers: this element's integration point coordinates and weights
    gi0 = e * nq
    ri = kd.r[gi0 : gi0 + nq]
    zi = kd.z[gi0 : gi0 + nq]
    wi = kd.w[gi0 : gi0 + nq]
    tb.global_read(3 * nq)

    # per-species constant factors (registers)
    z2 = kd.charges**2
    z2om = z2 / kd.masses

    mapping.stage_prologue(S, N)
    # accumulators in registers: G_K (nq, 2), G_D (nq, 2, 2)
    G_K = np.zeros((nq, 2))
    G_D = np.zeros((nq, 2, 2))

    for j0 in range(0, N, chunk):
        j1 = min(j0 + chunk, N)
        m = j1 - j0
        # --- prefetch the chunk's beta terms into shared memory ---------
        rj = kd.r[j0:j1]
        zj = kd.z[j0:j1]
        wj = kd.w[j0:j1]
        fj = fd.f[:, j0:j1]  # (S, m)
        dfj = fd.df[:, :, j0:j1]  # (2, S, m)
        tb.global_read((3 + 3 * S) * m)
        tb.shared_write((3 + 3 * S) * m)
        mapping.barrier()

        # --- per-pair Landau tensors in registers (line 4) --------------
        UD, UK = landau_tensors_cyl(
            ri[:, None], zi[:, None], rj[None, :], zj[None, :]
        )
        tb.count(
            fma=TENSOR_FMA * nq * m,
            mul=TENSOR_MUL * nq * m,
            add=TENSOR_ADD * nq * m,
            special=TENSOR_SPECIAL * nq * m,
        )
        # staged chunk values are consumed as warp broadcasts: one shared
        # transaction per value, served to all integration-point threads
        tb.shared_read((3 + 3 * S) * m)

        # --- beta sums (lines 5-8); shared across i in the simulator ----
        T_D = z2 @ fj  # (m,)
        T_K = np.einsum("s,dsm->dm", z2om, dfj)  # (2, m)
        tb.count(fma=BETA_FMA_PER_SPECIES * S * nq * m)

        # --- accumulate the integrals (lines 9-11) ----------------------
        gk, gd = mapping.reduce_chunk(UK, UD, wj, T_K, T_D)
        G_K += gk
        G_D += gd
        tb.count(fma=ACCUM_FMA * nq * m, mul=ACCUM_MUL * nq * m)

    # --- combine lane partials across the block (line 12) ---------------
    mapping.finalize_integrals(nq)

    # --- per-species scaling (lines 13-16) ------------------------------
    # K_i[a] = nu z_a^2 (m0/m_a) G_K ;  D_i[a] = -nu z_a^2 (m0/m_a)^2 G_D
    fac_k = nu0 * z2om  # (S,)
    fac_d = -nu0 * z2 / kd.masses**2
    KK = fac_k[:, None, None] * G_K[None] * wi[None, :, None]
    DD = fac_d[:, None, None, None] * G_D[None] * wi[None, :, None, None]
    tb.count(mul=2 * S * nq * 6)
    tb.shared_write(S * nq * 6)
    mapping.barrier()

    # --- Transform & Assemble (line 23) ---------------------------------
    # physical gradients of the basis at this element's IPs
    invJ = kd.inv_jac[e]
    gphys = kd.Dref * invJ[None, None, :]  # (nq, nb, 2)
    tb.count(mul=nq * nb * 2)
    mapping.pre_transform_reads(S, nq, nb)
    # C[s, a, b] = sum_i gphys[i,a,:] . DD[s,i] . gphys[i,b,:]
    #            + sum_i gphys[i,a,:] . KK[s,i] B[i,b]
    C = np.einsum("iax,sixy,iby->sab", gphys, DD, gphys, optimize=True)
    C += np.einsum("iax,six,ib->sab", gphys, KK, kd.B, optimize=True)
    tb.count(fma=S * nq * nb * nb * 6, mul=S * nq * nb * nb)
    # basis-table operands stream through L1 for every (i, a, b) term
    tb.shared_read(S * nq * nb * nb * 3)

    # --- global assembly with constrained-vertex interpolation ----------
    Pe = kd.elem_P[e]  # (nb, K_e)
    tgt = kd.elem_targets[e]
    Cfree = np.einsum("ak,sab,bl->skl", Pe, C, Pe, optimize=True)
    # constrained faces inflate the scatter footprint (the paper's source
    # of warp load imbalance in the assembly phase)
    tb.count(fma=2 * S * nb * nb * Pe.shape[1])
    idx = np.ix_(range(S), tgt, tgt)
    tb.atomic_add(out, idx, Cfree)
