"""Process-pool backend: GIL-free block execution over shared memory.

``ProcessPoolBackend`` (``REPRO_BACKEND=process``) keeps a set of
*persistent* worker processes and dispatches the same disjoint output
blocks as :class:`~repro.backend.threaded.ThreadedBackend` — but across
process boundaries, so pure-python portions of the hot path (einsum
planning, CSR scatter, band bookkeeping) scale past the GIL.

The performance contract is **zero-copy warm state**:

* long-lived operands — packed pair tables (allocated through
  :meth:`alloc_shared`), ``ScatterMap`` CSR arrays, band symbolics —
  live once per machine in a :class:`~repro.backend.shm.SharedArena`
  segment; per-call dispatch ships a ~100-byte :class:`ShmHandle`
  instead of re-pickling the array (``ipc_bytes_saved`` counts the
  avoided traffic, ``ipc_bytes_sent`` what actually crossed the pipe);
* per-call operands (batch state columns, CSR data rows) are O(batch)
  and ship by value;
* outputs are written into a scratch shared segment by disjoint blocks,
  so results never ride the pickle channel either.

Worker **affinity**: the backend holds one single-process pool per
worker slot, so block ``k`` of a batch always lands on pool
``k % workers``.  Band LU factors computed by a worker stay resident in
that worker (a module-global factor store keyed by a dispatch token) and
subsequent solves route right-hand sides to the owning process — the
batched-CPU analogue of the paper's persistent per-GPU state.

Determinism: identical block splits and identical per-block numpy
expressions as the threaded backend, disjoint output slices, no racing
accumulation — the ≤ 1e-12 cross-backend equivalence contract holds.

``workers <= 1`` (e.g. ``REPRO_PROCESS_WORKERS=1`` or a 1-CPU host)
degenerates to the serial numpy reference without creating any pools or
segments.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor
from contextlib import suppress
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .numpy_backend import NumpyBackend
from .shm import (
    ATTACH_DROP_HOOKS,
    SharedArena,
    ShmBudgetExceeded,
    ShmHandle,
    attach_array,
)
from .threaded import ThreadedBackend

__all__ = ["ProcessPoolBackend"]


def _default_workers() -> int:
    raw = os.environ.get("REPRO_PROCESS_WORKERS")
    if raw is not None and raw.strip():
        try:
            return max(1, int(float(raw)))
        except ValueError as err:
            raise ValueError(
                f"REPRO_PROCESS_WORKERS must be an integer, got {raw!r}"
            ) from err
    return max(1, min(8, os.cpu_count() or 1))


def _start_method() -> str:
    raw = os.environ.get("REPRO_PROCESS_START", "").strip().lower()
    methods = mp.get_all_start_methods()
    if raw:
        if raw not in methods:
            raise ValueError(
                f"REPRO_PROCESS_START must be one of {methods}, got {raw!r}"
            )
        return raw
    # fork keeps worker spin-up cheap and inherits the import state; the
    # env knob exists for platforms/debuggers that need spawn
    return "fork" if "fork" in methods else methods[0]


# ----------------------------------------------------------------------
# worker-side state and task functions (module-level: picklable by name)

_WORKER_BACKEND = NumpyBackend()

#: band symbolics reconstructed from shared memory, keyed by the perm
#: segment name (unique per publication, immune to id() reuse)
_ST_CACHE: dict[str, object] = {}

#: LU factors resident in this worker: (dispatch token, block id) ->
#: (engine, factors, structure)
_FACTOR_STORE: dict[tuple[int, int], tuple] = {}

#: CSR operators reconstructed over shared arrays, keyed by data segment
_CSR_CACHE: dict[str, object] = {}


def _on_attachment_dropped(name: str) -> None:
    """Attach-cache drop hook: release derived objects holding views of
    the dropped segment so its mapping can actually unmap.  Keyed caches
    use the same segment names as their attachments (CSR -> data segment,
    band structure -> perm segment); sibling segments of the same object
    are dropped by the same sweep, so popping the keyed entry releases
    the whole group."""
    _CSR_CACHE.pop(name, None)
    _ST_CACHE.pop(name, None)


ATTACH_DROP_HOOKS.append(_on_attachment_dropped)


def _resolve_operand(spec):
    """Materialize one shipped operand: attach handles, apply slices."""
    kind, payload, sl = spec
    arr = attach_array(payload) if kind == "h" else payload
    if sl is not None:
        ax, i0, i1 = sl
        key = [slice(None)] * arr.ndim
        key[ax] = slice(i0, i1)
        arr = arr[tuple(key)]
    return arr


def _resolve_csr(csr_spec):
    import scipy.sparse as sp

    data_h, indices_h, indptr_h, shape = csr_spec
    T = _CSR_CACHE.get(data_h.name)
    if T is None:
        T = sp.csr_matrix(
            (
                attach_array(data_h),
                attach_array(indices_h),
                attach_array(indptr_h),
            ),
            shape=shape,
            copy=False,
        )
        _CSR_CACHE[data_h.name] = T
    return T


def _task_matmul(A_spec, B_spec, out_h, c0: int, c1: int) -> None:
    A = _resolve_operand(A_spec)
    Bm = _resolve_operand(B_spec)
    # scratch outputs are one-shot: cache=False unmaps at task end
    out = attach_array(out_h, cache=False)
    np.matmul(A, Bm, out=out[:, c0:c1])


def _task_contract(spec: str, op_specs, out_h, i0: int, i1: int) -> None:
    ops = [_resolve_operand(s) for s in op_specs]
    out = attach_array(out_h, cache=False)
    out[i0:i1] = np.einsum(spec, *ops, optimize=True)


def _task_scatter(csr_spec, flat_spec, out_h, i0: int, i1: int) -> None:
    T = _resolve_csr(csr_spec)
    flat = _resolve_operand(flat_spec)
    out = attach_array(out_h, cache=False)
    out[i0:i1] = (T @ flat.T).T


def _get_structure(st_spec):
    from ..sparse.band import _BandStructure

    key, B, handles = st_spec
    st = _ST_CACHE.get(key)
    if st is None:
        st = _BandStructure(
            perm=attach_array(handles["perm"]),
            iperm=attach_array(handles["iperm"]),
            B=B,
            pos=attach_array(handles["pos"]),
            indptr=attach_array(handles["indptr"]),
            indices=attach_array(handles["indices"]),
            pos_lapack=(
                attach_array(handles["pos_lapack"])
                if handles.get("pos_lapack") is not None
                else None
            ),
        )
        _ST_CACHE[key] = st
    return st


def _task_band_factor(
    st_spec, n: int, data_block: np.ndarray, pivot_tol: float, token: int, block: int
) -> str:
    st = _get_structure(st_spec)
    engine, factors = _WORKER_BACKEND.banded_factor_many(
        st, n, data_block, pivot_tol=pivot_tol
    )
    _FACTOR_STORE[(token, block)] = (engine, factors, st)
    return engine


def _task_band_solve(token: int, block: int, rhs_p: np.ndarray) -> np.ndarray:
    engine, factors, st = _FACTOR_STORE[(token, block)]
    return _WORKER_BACKEND.banded_solve_many(engine, factors, st, rhs_p)


def _task_band_solve_one(
    token: int, block: int, local: int, b_p: np.ndarray
) -> np.ndarray:
    engine, factors, st = _FACTOR_STORE[(token, block)]
    return _WORKER_BACKEND.banded_solve_one(engine, factors[local], st, b_p)


def _task_band_free(token: int, nblocks: int) -> None:
    for b in range(nblocks):
        _FACTOR_STORE.pop((token, b), None)


# ----------------------------------------------------------------------
# remote factor bookkeeping (parent side)


@dataclass
class _RemoteFactors:
    """Opaque ``factors`` state for factors resident in worker processes.

    Supports ``len`` and ``[index]`` so :class:`BatchedBandSolver` can
    treat it like the in-process factor list; indexing returns a
    locator consumed by :meth:`ProcessPoolBackend.banded_solve_one`.
    """

    token: int
    blocks: list = field(default_factory=list)  # [(i0, i1)] per block id

    def __len__(self) -> int:
        return self.blocks[-1][1] if self.blocks else 0

    def __getitem__(self, index: int):
        for block, (i0, i1) in enumerate(self.blocks):
            if i0 <= index < i1:
                return _RemoteFactor(self.token, block, index - i0)
        raise IndexError(index)


@dataclass(frozen=True)
class _RemoteFactor:
    """Locator of one factored matrix inside a worker's factor store."""

    token: int
    block: int
    local: int


def _free_remote_factors(backend_ref, token: int, nblocks: int) -> None:
    """weakref.finalize callback: evict a batch's factors from every
    worker.  Best effort — dead pools / interpreter shutdown are fine."""
    backend = backend_ref()
    if backend is None:
        return
    pools = backend._pools
    if not pools or os.getpid() != backend._pools_pid:
        return
    for pool in pools:
        with suppress(Exception):
            pool.submit(_task_band_free, token, nblocks)


def _drop_published(backend_ref, ref_id: int, names: tuple) -> None:
    """weakref.finalize callback: free the segments backing a published
    array/CSR/structure once the parent-side object dies."""
    backend = backend_ref()
    if backend is None:
        return
    backend._published.pop(ref_id, None)
    backend._published_csr.pop(ref_id, None)
    backend._st_specs.pop(ref_id, None)
    arena = backend._arena
    if arena is not None:
        for name in names:
            with suppress(Exception):
                arena.free(name)


# ----------------------------------------------------------------------


class ProcessPoolBackend(NumpyBackend):
    """Block-parallel execution on persistent worker processes.

    ``num_threads`` follows the :class:`ThreadedBackend` convention:
    values > 1 set the worker count; ``0``/``1`` means "pick for me" —
    ``REPRO_PROCESS_WORKERS`` if set, else ``min(8, cpu_count)``.  A
    resolved worker count of 1 is the serial fallback: no pools, no
    shared memory, bitwise the numpy reference.
    """

    name = "process"

    def __init__(self, num_threads: int = 0):
        self.workers = (
            int(num_threads)
            if num_threads and num_threads > 1
            else _default_workers()
        )
        self._pools: list[ProcessPoolExecutor] | None = None
        self._pools_pid = 0
        self._arena: SharedArena | None = None
        #: thread pool for parallel_for (closures cannot cross process
        #: boundaries; numpy releases the GIL in the table builds)
        self._threads = ThreadedBackend(self.workers) if self.workers > 1 else None
        #: id(array) -> ShmHandle for registered long-lived operands
        self._published: dict[int, ShmHandle] = {}
        #: id(csr) -> (data_h, indices_h, indptr_h, shape)
        self._published_csr: dict[int, tuple] = {}
        #: id(band structure) -> (key, B, handles)
        self._st_specs: dict[int, tuple] = {}
        self._token = itertools.count()
        self._lock = threading.RLock()
        self.ipc_bytes_sent = 0
        self.ipc_bytes_saved = 0
        self.shm_fallbacks = 0
        self.pool_restarts = 0
        self._restart_backoff = None  # built lazily (import cycle)

    # ------------------------------------------------------------------
    @classmethod
    def available(cls) -> bool:
        try:
            from multiprocessing import shared_memory  # noqa: F401
        except ImportError:  # pragma: no cover - no POSIX shm
            return False
        return True

    def _get_arena(self) -> SharedArena:
        if self._arena is None or os.getpid() != self._arena._owner_pid:
            # fresh arena after fork: the inherited one belongs to the
            # parent and must never be unlinked from here
            self._arena = SharedArena(tag="backend")
        return self._arena

    def _get_pools(self) -> list[ProcessPoolExecutor]:
        if self._pools is None or os.getpid() != self._pools_pid:
            ctx = mp.get_context(_start_method())
            self._pools = [
                ProcessPoolExecutor(max_workers=1, mp_context=ctx)
                for _ in range(self.workers)
            ]
            self._pools_pid = os.getpid()
        else:
            self._heal_broken_pools()
        return self._pools

    def _heal_broken_pools(self) -> None:
        """Replace any worker pool whose process died (OOM-kill, crash).

        The in-flight dispatch that hit the dead pool still raises
        ``BrokenProcessPool`` to its caller — the serve tier's supervisor
        owns the batch-level retry — but the *next* dispatch gets a live
        pool instead of an unconditionally broken backend.  Restarts are
        paced by a bounded exponential backoff so a crash-looping worker
        cannot hot-spin fork/exec.
        """
        if self._pools is None:
            return
        # lazy import: repro.resilience pulls in the solver stack, which
        # imports this backend package at module scope
        from ..resilience.supervisor import RestartBackoff

        with self._lock:
            if self._restart_backoff is None:
                self._restart_backoff = RestartBackoff(
                    base_s=0.05, max_s=2.0
                )
            ctx = None
            for slot, pool in enumerate(self._pools):
                if not getattr(pool, "_broken", False):
                    continue
                with suppress(Exception):
                    pool.shutdown(wait=False, cancel_futures=True)
                if ctx is None:
                    ctx = mp.get_context(_start_method())
                self._restart_backoff.sleep()
                self._pools[slot] = ProcessPoolExecutor(
                    max_workers=1, mp_context=ctx
                )
                self.pool_restarts += 1
            if ctx is None:
                self._restart_backoff.reset()

    def close(self) -> None:
        """Shut down worker pools and unlink every owned segment."""
        pools, self._pools = self._pools, None
        if pools and os.getpid() == self._pools_pid:
            for pool in pools:
                with suppress(Exception):
                    pool.shutdown(wait=True, cancel_futures=True)
        arena, self._arena = self._arena, None
        if arena is not None:
            arena.close()
        self._published.clear()
        self._published_csr.clear()
        self._st_specs.clear()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        with suppress(Exception):
            self.close()

    def ipc_counters(self) -> dict:
        """Pickle-traffic accounting for the scaling study."""
        return {
            "ipc_bytes_sent": int(self.ipc_bytes_sent),
            "ipc_bytes_saved": int(self.ipc_bytes_saved),
            "shm_fallbacks": int(self.shm_fallbacks),
            "pool_restarts": int(self.pool_restarts),
        }

    # ------------------------------------------------------------------
    # shared-state publication
    def alloc_shared(self, shape, dtype=np.float64) -> np.ndarray:
        if self.workers <= 1:
            return np.empty(shape, dtype=dtype)
        try:
            arena = self._get_arena()
            arr = arena.alloc(shape, dtype)
        except (ShmBudgetExceeded, OSError):
            self.shm_fallbacks += 1
            return np.empty(shape, dtype=dtype)
        handle = arena.handle_of(arr)
        assert handle is not None
        # tie the segment to the array's lifetime: a PlanCache eviction
        # dropping an operator releases its table segment too
        weakref.finalize(
            arr, _drop_published, weakref.ref(self), id(arr), (handle.name,)
        )
        return arr

    def register_shared(self, *arrays) -> None:
        if self.workers <= 1:
            return
        for arr in arrays:
            if not isinstance(arr, np.ndarray) or not arr.flags["C_CONTIGUOUS"]:
                continue
            with self._lock:
                if id(arr) in self._published:
                    continue
                arena = self._get_arena()
                if arena.handle_of(arr) is not None:
                    # already arena-backed: handle_of resolves it per call
                    continue
                try:
                    handle = arena.publish(arr)
                except (ShmBudgetExceeded, OSError):
                    self.shm_fallbacks += 1
                    continue
                self._published[id(arr)] = handle
                weakref.finalize(
                    arr,
                    _drop_published,
                    weakref.ref(self),
                    id(arr),
                    (handle.name,),
                )

    # ------------------------------------------------------------------
    # operand shipping
    def _handle_for(self, arr: np.ndarray) -> ShmHandle | None:
        handle = self._published.get(id(arr))
        if handle is None and self._arena is not None:
            handle = self._arena.handle_of(arr)
        return handle

    def _ship_full(self, arr: np.ndarray):
        handle = self._handle_for(arr)
        if handle is not None:
            self.ipc_bytes_saved += arr.nbytes
            return ("h", handle, None)
        arr = np.ascontiguousarray(arr)
        self.ipc_bytes_sent += arr.nbytes
        return ("v", arr, None)

    def _ship_block(self, arr: np.ndarray, ax: int, i0: int, i1: int):
        handle = self._handle_for(arr)
        if handle is not None:
            nbytes = arr.nbytes // max(1, arr.shape[ax]) * (i1 - i0)
            self.ipc_bytes_saved += nbytes
            return ("h", handle, (ax, i0, i1))
        key = [slice(None)] * arr.ndim
        key[ax] = slice(i0, i1)
        block = np.ascontiguousarray(arr[tuple(key)])
        self.ipc_bytes_sent += block.nbytes
        return ("v", block, None)

    def _alloc_scratch(self, shape, dtype):
        """Scratch output segment, or ``None`` on budget fallback."""
        try:
            arena = self._get_arena()
            out = arena.alloc(shape, dtype)
        except (ShmBudgetExceeded, OSError):
            self.shm_fallbacks += 1
            return None, None, None
        return arena, out, arena.handle_of(out)

    @staticmethod
    def _gather_scratch(arena, out, out_h, futures):
        """Await the block futures, copy the scratch output out of shared
        memory and free its segment (also on error)."""
        try:
            for fut in futures:
                fut.result()
            result = out.copy()
        finally:
            del out
            arena.free(out_h.name)
        return result

    # ------------------------------------------------------------------
    # parallel-for: closures cannot cross process boundaries, so the
    # block-parallel builds run on the internal thread pool (the tensor
    # kernels release the GIL)
    def parallel_for(
        self, tasks: Sequence[tuple], fn: Callable[..., None]
    ) -> bool:
        if self._threads is not None:
            return self._threads.parallel_for(tasks, fn)
        return super().parallel_for(tasks, fn)

    # ------------------------------------------------------------------
    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        n_cols = B.shape[1]
        blocks = self.batch_blocks(n_cols)
        if self.workers <= 1 or len(blocks) <= 1:
            return super().matmul(A, B)
        arena, out, out_h = self._alloc_scratch(
            (A.shape[0], n_cols), np.result_type(A, B)
        )
        if out is None:
            return super().matmul(A, B)
        A_spec = self._ship_full(A)
        pools = self._get_pools()
        futures = [
            pools[k % self.workers].submit(
                _task_matmul, A_spec, self._ship_block(B, 1, c0, c1), out_h, c0, c1
            )
            for k, (c0, c1) in enumerate(blocks)
        ]
        return self._gather_scratch(arena, out, out_h, futures)

    def contract(self, spec: str, *ops: np.ndarray) -> np.ndarray:
        """Partition along the output's leading axis (same split rule as
        :class:`ThreadedBackend`); the first block runs inline to size
        the output, the rest fan out over the worker pools."""
        if self.workers <= 1:
            return super().contract(spec, *ops)
        inputs, out_sub = spec.replace(" ", "").split("->")
        in_subs = inputs.split(",")
        if not out_sub:
            return super().contract(spec, *ops)
        axis_letter = out_sub[0]
        n = None
        for sub, op in zip(in_subs, ops):
            if axis_letter in sub:
                n = op.shape[sub.index(axis_letter)]
                break
        blocks = self.batch_blocks(n) if n is not None else []
        if len(blocks) <= 1:
            return super().contract(spec, *ops)

        def _sliced(op, sub, i0, i1):
            if axis_letter not in sub:
                return op
            ax = sub.index(axis_letter)
            key = [slice(None)] * op.ndim
            key[ax] = slice(i0, i1)
            return op[tuple(key)]

        i0, i1 = blocks[0]
        first = np.einsum(
            spec,
            *[_sliced(op, sub, i0, i1) for sub, op in zip(in_subs, ops)],
            optimize=True,
        )
        arena, out, out_h = self._alloc_scratch((n,) + first.shape[1:], first.dtype)
        if out is None:
            return super().contract(spec, *ops)
        out[i0:i1] = first
        pools = self._get_pools()
        futures = []
        for k, (j0, j1) in enumerate(blocks[1:], start=1):
            op_specs = [
                (
                    self._ship_block(op, sub.index(axis_letter), j0, j1)
                    if axis_letter in sub
                    else self._ship_full(op)
                )
                for sub, op in zip(in_subs, ops)
            ]
            futures.append(
                pools[k % self.workers].submit(
                    _task_contract, spec, op_specs, out_h, j0, j1
                )
            )
        return self._gather_scratch(arena, out, out_h, futures)

    def scatter_apply(self, T, flat: np.ndarray) -> np.ndarray:
        X = flat.shape[0]
        blocks = self.batch_blocks(X)
        if self.workers <= 1 or len(blocks) <= 1:
            return super().scatter_apply(T, flat)
        csr_spec = self._ship_csr(T)
        if csr_spec is None:
            return super().scatter_apply(T, flat)
        arena, out, out_h = self._alloc_scratch((X, T.shape[0]), float)
        if out is None:
            return super().scatter_apply(T, flat)
        pools = self._get_pools()
        futures = [
            pools[k % self.workers].submit(
                _task_scatter,
                csr_spec,
                self._ship_block(flat, 0, i0, i1),
                out_h,
                i0,
                i1,
            )
            for k, (i0, i1) in enumerate(blocks)
        ]
        return self._gather_scratch(arena, out, out_h, futures)

    def _ship_csr(self, T):
        """Publish a CSR operator's arrays once; ship its spec per call."""
        with self._lock:
            spec = self._published_csr.get(id(T))
            if spec is not None:
                self.ipc_bytes_saved += (
                    T.data.nbytes + T.indices.nbytes + T.indptr.nbytes
                )
                return spec
            arena = self._get_arena()
            try:
                spec = (
                    arena.publish(T.data),
                    arena.publish(T.indices),
                    arena.publish(T.indptr),
                    T.shape,
                )
            except (ShmBudgetExceeded, OSError):
                self.shm_fallbacks += 1
                return None
            self._published_csr[id(T)] = spec
            weakref.finalize(
                T,
                _drop_published,
                weakref.ref(self),
                id(T),
                tuple(h.name for h in spec[:3]),
            )
            return spec

    # ------------------------------------------------------------------
    # banded factor / solve with worker-resident factors
    def _ship_structure(self, st, n: int):
        with self._lock:
            spec = self._st_specs.get(id(st))
            if spec is not None:
                self.ipc_bytes_saved += sum(
                    h.nbytes for h in spec[2].values() if h is not None
                )
                return spec
            from ..sparse.band import _HAVE_GBTRF

            if _HAVE_GBTRF:
                # materialize before publishing so the workers' engine
                # choice sees the same lazy field
                st.lapack_positions(n)
            arena = self._get_arena()
            try:
                handles = {
                    k: arena.publish(getattr(st, k))
                    for k in ("perm", "iperm", "pos", "indptr", "indices")
                }
                handles["pos_lapack"] = (
                    arena.publish(st.pos_lapack)
                    if st.pos_lapack is not None
                    else None
                )
            except (ShmBudgetExceeded, OSError):
                self.shm_fallbacks += 1
                return None
            spec = (handles["perm"].name, st.B, handles)
            self._st_specs[id(st)] = spec
            weakref.finalize(
                st,
                _drop_published,
                weakref.ref(self),
                id(st),
                tuple(h.name for h in handles.values() if h is not None),
            )
            return spec

    def banded_factor_many(
        self, st, n: int, data: np.ndarray, pivot_tol: float = 0.0
    ) -> tuple[str, object]:
        X = data.shape[0]
        blocks = self.batch_blocks(X)
        if self.workers <= 1 or len(blocks) <= 1:
            return super().banded_factor_many(st, n, data, pivot_tol=pivot_tol)
        st_spec = self._ship_structure(st, n)
        if st_spec is None:
            return super().banded_factor_many(st, n, data, pivot_tol=pivot_tol)
        token = next(self._token)
        pools = self._get_pools()
        futures = []
        for k, (i0, i1) in enumerate(blocks):
            block = np.ascontiguousarray(data[i0:i1])
            self.ipc_bytes_sent += block.nbytes
            futures.append(
                pools[k % self.workers].submit(
                    _task_band_factor, st_spec, n, block, pivot_tol, token, k
                )
            )
        engines = [fut.result() for fut in futures]
        factors = _RemoteFactors(token=token, blocks=list(blocks))
        weakref.finalize(
            factors, _free_remote_factors, weakref.ref(self), token, len(blocks)
        )
        return engines[0], factors

    def banded_solve_many(
        self, engine: str, factors, st, rhs_p: np.ndarray
    ) -> np.ndarray:
        if not isinstance(factors, _RemoteFactors):
            return super().banded_solve_many(engine, factors, st, rhs_p)
        out = np.empty_like(rhs_p)
        pools = self._get_pools()
        futures = []
        for k, (i0, i1) in enumerate(factors.blocks):
            block = np.ascontiguousarray(rhs_p[i0:i1])
            self.ipc_bytes_sent += block.nbytes
            futures.append(
                (
                    i0,
                    i1,
                    pools[k % self.workers].submit(
                        _task_band_solve, factors.token, k, block
                    ),
                )
            )
        for i0, i1, fut in futures:
            out[i0:i1] = fut.result()
        return out

    def banded_solve_one(self, engine: str, factor, st, b_p: np.ndarray) -> np.ndarray:
        if not isinstance(factor, _RemoteFactor):
            return super().banded_solve_one(engine, factor, st, b_p)
        pools = self._get_pools()
        self.ipc_bytes_sent += b_p.nbytes
        return pools[factor.block % self.workers].submit(
            _task_band_solve_one,
            factor.token,
            factor.block,
            factor.local,
            np.ascontiguousarray(b_p),
        ).result()
