"""The execution-backend protocol: one kernel spec, pluggable executors.

The paper's engineering claim is performance *portability*: the same
Landau kernel expressed in two programming models (raw CUDA §III-B,
Kokkos league/team/vector §III-C) over one shared data layout, so new
architectures come nearly for free.  This module is the CPU-side
analogue for the reproduction: every hot path — pair-table contractions,
batched einsum assembly, sparse scatter-apply, batched band
factorization/solve, and block-parallel builds — is expressed once
against :class:`ExecutionBackend`, and the backends
(:class:`~repro.backend.numpy_backend.NumpyBackend`,
:class:`~repro.backend.threaded.ThreadedBackend`,
:class:`~repro.backend.numba_backend.NumbaBackend`,
:class:`~repro.backend.process_pool.ProcessPoolBackend`) map those
operations onto serial numpy, chunked thread pools, JIT-compiled
kernels, or persistent worker processes over shared memory.

Guarantees:

* ``NumpyBackend`` is the reference — its dispatch is bitwise identical
  to inlined numpy code (it forwards every operation unchanged).
* Every other backend must match the reference to ``<= 1e-12`` relative
  error (enforced by ``tests/test_execution_backends.py``); they may
  reassociate floating-point sums.
* All backends are deterministic run-to-run: parallel work is split
  into disjoint output blocks, never racing accumulations.

Backends are looked up by name through :mod:`repro.backend.registry`
(``REPRO_BACKEND`` / :attr:`repro.core.options.AssemblyOptions.backend`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["BackendUnavailable", "ExecutionBackend"]


class BackendUnavailable(RuntimeError):
    """Requested backend cannot run in this environment (missing optional
    dependency).  The message names the backend and what is missing."""


class ExecutionBackend:
    """Abstract executor for the operator/assembly/band-solve hot paths.

    Subclasses override the mapping of each operation onto their
    execution resources; the *mathematical* definition of every method is
    fixed here (and implemented exactly by ``NumpyBackend``), so call
    sites never branch on the backend.

    Attributes
    ----------
    name:
        registry name (``"numpy"``, ``"threaded"``, ``"numba"``).
    workers:
        worker count used to size parallel block splits (1 = serial).
    """

    name: str = "abstract"
    workers: int = 1
    #: set by :meth:`warmup`; backends with JIT state flip it after
    #: compiling their kernels, everything else after the first (no-op)
    #: warmup call.
    warmed: bool = False
    #: wall-clock seconds the last non-trivial :meth:`warmup` spent
    #: (JIT compilation); 0.0 for compile-free backends.
    warmup_seconds: float = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run here (optional deps present)."""
        return True

    # ------------------------------------------------------------------
    def warmup(self) -> float:
        """Compile/prime any lazily-built kernels *outside* timed paths.

        Idempotent: the first call pays whatever one-time cost the
        backend has (JIT compilation on the numba backend) and every
        later call returns immediately.  Returns the seconds spent by
        *this* call (0.0 when already warm or there is nothing to
        compile).  Deadline-sensitive callers — the serve tier's
        per-batch supervisor — invoke this before starting any clock so
        first-call compilation can never masquerade as a hung worker.
        """
        self.warmed = True
        return 0.0

    # ------------------------------------------------------------------
    # parallel-for over disjoint blocks
    def parallel_for(
        self, tasks: Sequence[tuple], fn: Callable[..., None]
    ) -> bool:
        """Run ``fn(*task)`` for every task; tasks write disjoint output.

        Returns ``True`` when the tasks were actually dispatched to a
        worker pool (callers use this to account parallel builds), and
        ``False`` for serial execution.
        """
        for task in tasks:
            fn(*task)
        return False

    def batch_blocks(self, n: int) -> list[tuple[int, int]]:
        """Split ``[0, n)`` into contiguous ``(i0, i1)`` worker blocks."""
        if n <= 0:
            return []
        w = max(1, self.workers)
        chunk = -(-n // w)
        return [(i0, min(i0 + chunk, n)) for i0 in range(0, n, chunk)]

    # ------------------------------------------------------------------
    # shared-state hints (no-ops except for process-parallel backends)
    def alloc_shared(self, shape, dtype=np.float64) -> np.ndarray:
        """Allocate a long-lived buffer the backend may place in shared
        memory (pair tables).  The default is a private ``np.empty`` —
        call sites need no branches; a process-parallel backend returns a
        shared-segment view so workers map the data zero-copy."""
        return np.empty(shape, dtype=dtype)

    def register_shared(self, *arrays) -> None:
        """Hint that ``arrays`` are long-lived, read-only hot-path
        operands (quadrature geometry, scatter maps).  Process-parallel
        backends publish them into shared memory once so per-call
        dispatch ships handles instead of pickled copies; everywhere else
        this is a no-op."""

    # ------------------------------------------------------------------
    # Algorithm-1 row-block kernels (pair-table build / on-the-fly fields)
    def pair_table_rows(
        self, out: np.ndarray, r: np.ndarray, z: np.ndarray, i0: int, i1: int
    ) -> None:
        """Fill packed pair-table rows ``[i0, i1)`` of ``out (5, N, N)``
        in ``(Drr, Drz, Dzz, Krr, Kzr)`` order for integration points
        ``(r, z)``.  The default delegates to the numpy reference
        (:func:`repro.core.landau_tensor.packed_pair_rows`); compiled
        backends override with ``nopython`` kernels.  Must be safe to
        call concurrently on disjoint row blocks."""
        from ..core.landau_tensor import packed_pair_rows

        packed_pair_rows(out, r, z, i0, i1)

    def field_rows(
        self,
        G_D: np.ndarray,
        G_K: np.ndarray,
        r: np.ndarray,
        z: np.ndarray,
        cTD: np.ndarray,
        cTKr: np.ndarray,
        cTKz: np.ndarray,
        i0: int,
        i1: int,
    ) -> None:
        """Algorithm-1 on-the-fly inner integral for field rows
        ``[i0, i1)``: evaluate the pair tensors against the ``(N, B)``
        column sources and write ``G_D (B, N, 2, 2)`` / ``G_K (B, N,
        2)`` rows.  Default delegates to
        :func:`repro.core.landau_tensor.field_rows`; must be safe on
        disjoint row blocks."""
        from ..core.landau_tensor import field_rows

        field_rows(G_D, G_K, r, z, cTD, cTKr, cTKz, i0, i1)

    # ------------------------------------------------------------------
    # dense contractions
    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Dense ``A @ B`` (the pair-table field contraction)."""
        raise NotImplementedError

    def contract(self, spec: str, *ops: np.ndarray) -> np.ndarray:
        """Optimized einsum contraction (the batched assembly path).

        Backends may partition the contraction along a leading batch
        axis of the output; the per-item results must match the serial
        contraction to ``<= 1e-12``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # sparse scatter-apply
    def scatter_apply(self, T, flat: np.ndarray) -> np.ndarray:
        """Element→CSR scatter of a batch: ``(T @ flat.T).T`` contiguous.

        ``T`` is the :class:`~repro.fem.assembly.ScatterMap` operator of
        shape ``(nnz, ne*nb*nb)``; ``flat`` is ``(X, ne*nb*nb)``.
        Returns ``(X, nnz)``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # banded factor / solve (batched, one shared symbolic setup)
    def banded_factor_many(
        self, st, n: int, data: np.ndarray, pivot_tol: float = 0.0
    ) -> tuple[str, object]:
        """Factor ``X`` band matrices sharing one symbolic setup ``st``.

        ``st`` is a :class:`repro.sparse.band._BandStructure` (duck-typed:
        needs ``B``, ``pos`` and ``lapack_positions(n)``); ``data`` is
        ``(X, nnz)`` CSR data rows.  Returns ``(engine, factors)`` where
        ``engine`` names the numeric kernel used (``"lapack"``,
        ``"python"`` or ``"numba"``) and ``factors`` is the opaque state
        consumed by :meth:`banded_solve_many` / :meth:`banded_solve_one`.
        """
        raise NotImplementedError

    def banded_solve_many(
        self, engine: str, factors, st, rhs_p: np.ndarray
    ) -> np.ndarray:
        """Solve all factored systems; ``rhs_p`` is ``(X, n)`` already in
        the band (RCM-permuted) ordering.  Returns permuted solutions."""
        raise NotImplementedError

    def banded_solve_one(self, engine: str, factor, st, b_p: np.ndarray) -> np.ndarray:
        """Solve one factored system for one permuted right-hand side."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, workers={self.workers})"


def as_blocks(blocks: Iterable[tuple[int, int]]) -> list[tuple]:
    """Normalize ``(i0, i1)`` pairs into ``parallel_for`` task tuples."""
    return [tuple(b) for b in blocks]
