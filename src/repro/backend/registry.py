"""Backend registry: name validation, ``auto`` resolution, instance cache.

Selection precedence (handled by :class:`repro.core.options.AssemblyOptions`):
explicit ``AssemblyOptions.backend`` > ``REPRO_BACKEND`` env var > ``auto``.
``auto`` keeps today's behavior: serial numpy unless the options request
threads (``num_threads > 1``), in which case the threaded backend absorbs
them.  Unknown names fail fast with the full valid list so a typo in a
deployment env var cannot silently fall back to the slow path.
"""

from __future__ import annotations

from .base import BackendUnavailable, ExecutionBackend
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend
from .process_pool import ProcessPoolBackend
from .threaded import ThreadedBackend

__all__ = [
    "BACKEND_NAMES",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
]

#: registry order is also the documentation order
_BACKENDS: dict[str, type[ExecutionBackend]] = {
    "numpy": NumpyBackend,
    "threaded": ThreadedBackend,
    "numba": NumbaBackend,
    "process": ProcessPoolBackend,
}

BACKEND_NAMES: tuple[str, ...] = tuple(_BACKENDS)


def available_backends() -> list[str]:
    """Names of the backends that can actually run here."""
    return [name for name, cls in _BACKENDS.items() if cls.available()]


def resolve_backend_name(name: str | None, num_threads: int = 1) -> str:
    """Validate a backend name and resolve ``auto``/empty to a concrete one.

    ``auto`` (or ``None``/``""``) resolves to ``"threaded"`` when the
    caller asked for threads (``num_threads > 1``) and ``"numpy"``
    otherwise — exactly the pre-backend behavior.  Raises ``ValueError``
    naming the offender and the valid choices on anything else.
    """
    if name is None or name == "" or name == "auto":
        return "threaded" if num_threads and num_threads > 1 else "numpy"
    name = str(name).strip().lower()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown execution backend {name!r} (REPRO_BACKEND / "
            f"AssemblyOptions.backend): valid names are "
            f"{'auto, ' + ', '.join(BACKEND_NAMES)}"
        )
    return name


_INSTANCES: dict[tuple[str, int], ExecutionBackend] = {}


def get_backend(
    name: str | None = None, num_threads: int = 1
) -> ExecutionBackend:
    """Resolve + instantiate a backend; instances are cached per
    ``(name, threads)`` so thread pools are shared across operators.

    Raises :class:`BackendUnavailable` for a backend whose optional
    dependency is missing (e.g. ``numba`` without the package).
    """
    resolved = resolve_backend_name(name, num_threads)
    cls = _BACKENDS[resolved]
    if not cls.available():
        raise BackendUnavailable(
            f"backend {resolved!r} is not available in this environment "
            f"(available: {', '.join(available_backends())})"
        )
    key = (resolved, int(num_threads) if resolved != "numpy" else 1)
    inst = _INSTANCES.get(key)
    if inst is None:
        inst = cls(num_threads) if resolved != "numpy" else cls()
        _INSTANCES[key] = inst
    return inst
