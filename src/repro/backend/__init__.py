"""Pluggable execution backends (the performance-portability seam).

One kernel spec, many executors: the operator/assembly/band-solve hot
paths dispatch through :class:`ExecutionBackend`, selected by name
(``numpy`` | ``threaded`` | ``numba``, or ``auto``) via
:func:`get_backend` / the ``REPRO_BACKEND`` env knob.

The shared Algorithm-1 kernel specification lives in
``repro.backend.kernel_spec`` and is imported directly by the CUDA and
Kokkos simulators (not re-exported here, to keep this package free of
core/gpu imports).
"""

from .base import BackendUnavailable, ExecutionBackend
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend
from .registry import (
    BACKEND_NAMES,
    available_backends,
    get_backend,
    resolve_backend_name,
)
from .threaded import ThreadedBackend

__all__ = [
    "BACKEND_NAMES",
    "BackendUnavailable",
    "ExecutionBackend",
    "NumbaBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
]
