"""Pluggable execution backends (the performance-portability seam).

One kernel spec, many executors: the operator/assembly/band-solve hot
paths dispatch through :class:`ExecutionBackend`, selected by name
(``numpy`` | ``threaded`` | ``numba`` | ``process``, or ``auto``) via
:func:`get_backend` / the ``REPRO_BACKEND`` env knob.  The ``process``
backend executes blocks on persistent worker processes over a
shared-memory arena (:mod:`repro.backend.shm`), escaping the GIL.

The shared Algorithm-1 kernel specification lives in
``repro.backend.kernel_spec`` and is imported directly by the CUDA and
Kokkos simulators (not re-exported here, to keep this package free of
core/gpu imports).
"""

from .base import BackendUnavailable, ExecutionBackend
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend
from .process_pool import ProcessPoolBackend
from .registry import (
    BACKEND_NAMES,
    available_backends,
    get_backend,
    resolve_backend_name,
)
from .shm import SharedArena, ShmBudgetExceeded, ShmHandle
from .threaded import ThreadedBackend

__all__ = [
    "BACKEND_NAMES",
    "BackendUnavailable",
    "ExecutionBackend",
    "NumbaBackend",
    "NumpyBackend",
    "ProcessPoolBackend",
    "SharedArena",
    "ShmBudgetExceeded",
    "ShmHandle",
    "ThreadedBackend",
    "available_backends",
    "get_backend",
    "resolve_backend_name",
]
