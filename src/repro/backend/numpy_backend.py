"""Reference backend: serial numpy, bitwise-identical to inlined code.

Every method forwards to the exact numpy/scipy expression the call sites
used before the backend seam existed, so running with ``NumpyBackend``
(the default) reproduces pre-refactor results *bitwise* — including the
deterministic serve drain hashes.
"""

from __future__ import annotations

import numpy as np

from .base import ExecutionBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ExecutionBackend):
    """Serial reference execution: plain numpy + scipy LAPACK band LU."""

    name = "numpy"
    workers = 1

    # ------------------------------------------------------------------
    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        return A @ B

    def contract(self, spec: str, *ops: np.ndarray) -> np.ndarray:
        return np.einsum(spec, *ops, optimize=True)

    def scatter_apply(self, T, flat: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray((T @ flat.T).T)

    # ------------------------------------------------------------------
    # banded batch LU: LAPACK dgbtrf/dgbtrs when available, pure-python
    # band_factor/band_solve otherwise — the numeric kernels that lived in
    # CachedBandSolverFactory.factor_many before the backend seam.
    def banded_factor_many(
        self, st, n: int, data: np.ndarray, pivot_tol: float = 0.0
    ) -> tuple[str, object]:
        from ..sparse.band import _HAVE_GBTRF, BandMatrix, band_factor

        X = data.shape[0]
        B = st.B
        factors: list = [None] * X
        if _HAVE_GBTRF:
            from ..sparse.band import _lapack

            pos = st.lapack_positions(n)
            lda = 3 * B + 1

            def factor_block(i0: int, i1: int) -> None:
                for x in range(i0, i1):
                    ab = np.zeros((lda, n))
                    ab.ravel()[pos] = data[x]
                    lub, piv, info = _lapack.dgbtrf(ab, B, B)
                    if info != 0:
                        raise np.linalg.LinAlgError(
                            f"dgbtrf failed on batch entry {x} with info={info}"
                        )
                    factors[x] = (lub, piv)

            self.parallel_for(self.batch_blocks(X), factor_block)
            return "lapack", factors

        def factor_block(i0: int, i1: int) -> None:  # pragma: no cover - no-LAPACK
            for x in range(i0, i1):
                W = np.zeros((n, 2 * B + 1))
                W.ravel()[st.pos] = data[x]
                factors[x] = band_factor(
                    BandMatrix(W=W, B=B), pivot_tol=pivot_tol
                )

        self.parallel_for(self.batch_blocks(X), factor_block)  # pragma: no cover
        return "python", factors  # pragma: no cover

    def banded_solve_many(
        self, engine: str, factors, st, rhs_p: np.ndarray
    ) -> np.ndarray:
        out = np.empty_like(rhs_p)
        X = rhs_p.shape[0]

        def solve_block(i0: int, i1: int) -> None:
            for x in range(i0, i1):
                out[x] = self.banded_solve_one(engine, factors[x], st, rhs_p[x])

        self.parallel_for(self.batch_blocks(X), solve_block)
        return out

    def banded_solve_one(self, engine: str, factor, st, b_p: np.ndarray) -> np.ndarray:
        if engine == "lapack":
            from ..sparse.band import _lapack

            lub, piv = factor
            y, info = _lapack.dgbtrs(lub, st.B, st.B, b_p, piv)
            if info != 0:  # pragma: no cover - dgbtrs never fails post-factor
                raise np.linalg.LinAlgError(f"dgbtrs failed with info={info}")
            return y
        from ..sparse.band import band_solve

        return band_solve(factor, b_p)
