"""``nopython`` kernels for the numba execution backend.

These are scalar-loop translations of the Algorithm-1 hot paths —
the packed pair-table build, the on-the-fly row-block field integral,
the two batched element contractions of the assembly spec, and the CSR
scatter-apply — compiled with ``numba.njit(nogil=True)`` so the
threaded dispatch layer (``ThreadedBackend.parallel_for``) overlaps
row blocks across cores without the GIL.

Elliptic integrals
------------------
``scipy.special.ellipk/ellipe`` are unavailable inside ``nopython``
code, and the usual Abramowitz & Stegun polynomial fits (~2e-8) would
blow the repo's ≤1e-12 cross-backend equivalence bar.  We instead use
the arithmetic-geometric mean (AGM) iteration, which is exact to
rounding in a handful of iterations:

    K(m) = pi / (2 AGM(1, sqrt(1-m)))
    E(m) = K(m) (1 - sum_n 2^{n-1} c_n^2),   c_0 = sqrt(m),
    c_{n+1} = (a_n - b_n)/2

The ``m -> 0`` (on-axis) limit returns exactly ``K = E = pi/2``,
matching the numpy reference's series-free branch; ``m -> 1``
(near-coincident) pairs are masked before the integrals are evaluated,
exactly like the reference (`SINGULAR_REL_TOL`).

Import discipline
-----------------
The module imports cleanly without numba: kernels are then plain
python functions (numerically identical, just slow), which is how the
kernel *math* is unit-tested on hosts without numba.  The
:class:`~repro.backend.numba_backend.NumbaBackend` refuses to
construct in that case, so the slow fallbacks never reach production
paths.  ``REPRO_NUMBA_CACHE=1`` turns on numba's on-disk kernel cache
(point ``NUMBA_CACHE_DIR`` somewhere persistent in CI).
"""

from __future__ import annotations

import math
import os

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common container case
    njit = None
    HAVE_NUMBA = False

__all__ = [
    "HAVE_NUMBA",
    "SINGULAR_REL_TOL",
    "SMALL_M",
    "ellip_ke",
    "pair_components",
    "pair_rows",
    "field_rows",
    "element_blocks_D",
    "element_blocks_K",
    "csr_scatter_rows",
]

#: must match :data:`repro.core.landau_tensor.SINGULAR_REL_TOL`
#: (asserted by tests/test_backend_conformance.py)
SINGULAR_REL_TOL = 1e-14
#: series-switch threshold for the cancellation-prone combinations;
#: must match the ``m < 2.0e-3`` crossover in ``azimuthal_integrals``
SMALL_M = 2.0e-3


def _jit(fn):
    """``njit(nogil=True)`` when numba is present, identity otherwise."""
    if not HAVE_NUMBA:
        return fn
    cache = os.environ.get("REPRO_NUMBA_CACHE", "0").strip().lower() not in (
        "0",
        "",
        "false",
        "off",
    )
    return njit(nogil=True, fastmath=False, cache=cache)(fn)


@_jit
def ellip_ke(m):
    """Complete elliptic integrals ``(K(m), E(m))`` by AGM iteration.

    Valid for ``0 <= m < 1``; exact ``pi/2`` pair at ``m == 0``.
    """
    half_pi = 0.5 * math.pi
    if m <= 0.0:
        return half_pi, half_pi
    a = 1.0
    b = math.sqrt(1.0 - m)
    c = math.sqrt(m)
    csum = 0.5 * c * c  # 2^{-1} c_0^2
    pow2 = 0.5
    for _ in range(64):
        an = 0.5 * (a + b)
        c = 0.5 * (a - b)
        b = math.sqrt(a * b)
        a = an
        pow2 *= 2.0
        csum += pow2 * c * c
        # c stalls at ~1 ulp of a (b = sqrt(a*b) rounding), so the
        # threshold must sit *above* the stall: a tighter cut (say
        # 1e-17 a) never triggers and the doubling pow2 amplifies the
        # stalled c^2 into ~1e-14 of junk over the remaining iterations
        if c <= 2.3e-16 * a:
            break
    K = math.pi / (2.0 * a)
    return K, K * (1.0 - csum)


@_jit
def pair_components(ri, zi, rj, zj):
    """The five packed Landau tensor components for one point pair:
    ``(Drr, Drz, Dzz, Krr, Kzr)`` — a scalar transliteration of
    ``azimuthal_integrals`` + ``landau_tensors_cyl`` including the
    coincident-pair mask and the small-``m`` series switch."""
    dz = zi - zj
    A = ri * ri + rj * rj + dz * dz
    B = 2.0 * ri * rj
    scale = A if A > 1.0 else 1.0
    if (A - B) <= 1e-14 * scale:  # SINGULAR_REL_TOL
        return 0.0, 0.0, 0.0, 0.0, 0.0
    ApB = A + B
    AmB = A - B
    m = 2.0 * B / ApB
    K, E = ellip_ke(m)
    sqrt_ApB = math.sqrt(ApB)
    inv_sqrt = 1.0 / sqrt_ApB
    inv_pow32 = inv_sqrt / ApB
    T0 = E * ApB / AmB
    if m < 2.0e-3:  # SMALL_M: Maclaurin series vs catastrophic cancellation
        hp = 0.5 * math.pi
        T1 = hp * (
            0.5 + m * (9.0 / 16.0 + m * (75.0 / 128.0 + m * 1225.0 / 2048.0))
        )
        T2 = hp * (3.0 / 8.0 + m * (15.0 / 32.0 + m * 525.0 / 1024.0))
        I11c = hp * m * (0.125 + m * (3.0 / 32.0 + m * 75.0 / 1024.0))
    else:
        T1 = (T0 - K) / m
        T2 = (T0 - 2.0 * K + E) / (m * m)
        I11c = 2.0 * (K - E) / m - K
    I10 = 4.0 * K * inv_sqrt
    I11 = 4.0 * I11c * inv_sqrt
    I30 = 4.0 * T0 * inv_pow32
    I31 = 4.0 * (2.0 * T1 - T0) * inv_pow32
    I32 = 4.0 * (4.0 * T2 - 4.0 * T1 + T0) * inv_pow32
    Drr = I10 - (ri * ri * I30 - 2.0 * ri * rj * I31 + rj * rj * I32)
    Drz = -(dz * (ri * I30 - rj * I31))
    Dzz = I10 - dz * dz * I30
    Krr = I11 - ((ri * ri + rj * rj) * I31 - ri * rj * (I30 + I32))
    Kzr = -(dz * (ri * I31 - rj * I30))
    return Drr, Drz, Dzz, Krr, Kzr


@_jit
def pair_rows(out, r, z, i0, i1):
    """Packed pair-table rows ``[i0, i1)`` of ``out (5, N, N)``.

    Disjoint row blocks make concurrent calls safe; ``nogil`` lets the
    threaded dispatcher overlap them.
    """
    N = r.shape[0]
    for i in range(i0, i1):
        ri = r[i]
        zi = z[i]
        for j in range(N):
            Drr, Drz, Dzz, Krr, Kzr = pair_components(ri, zi, r[j], z[j])
            out[0, i, j] = Drr
            out[1, i, j] = Drz
            out[2, i, j] = Dzz
            out[3, i, j] = Krr
            out[4, i, j] = Kzr


@_jit
def field_rows(G_D, G_K, r, z, cTD, cTKr, cTKz, i0, i1):
    """Algorithm-1 on-the-fly inner integral for field rows ``[i0, i1)``:
    tensors are recomputed per pair (never materialized) and contracted
    against the ``(N, B)`` column sources ``cTD``/``cTKr``/``cTKz``,
    accumulating into zero-initialized ``G_D (B, N, 2, 2)`` /
    ``G_K (B, N, 2)`` rows (``Krz``/``Kzz`` alias ``Drz``/``Dzz``)."""
    N = r.shape[0]
    Bk = cTD.shape[1]
    for i in range(i0, i1):
        ri = r[i]
        zi = z[i]
        for j in range(N):
            Drr, Drz, Dzz, Krr, Kzr = pair_components(ri, zi, r[j], z[j])
            for b in range(Bk):
                td = cTD[j, b]
                G_D[b, i, 0, 0] += Drr * td
                G_D[b, i, 0, 1] += Drz * td
                G_D[b, i, 1, 1] += Dzz * td
                tkr = cTKr[j, b]
                tkz = cTKz[j, b]
                G_K[b, i, 0] += Krr * tkr + Drz * tkz
                G_K[b, i, 1] += Kzr * tkr + Dzz * tkz
        for b in range(Bk):
            G_D[b, i, 1, 0] = G_D[b, i, 0, 1]


@_jit
def element_blocks_D(w, gphys, GD, out, x0, x1):
    """Diffusion element blocks for batch rows ``[x0, x1)``:

    ``out[x,e,a,b] += sum_{q,d,c} w[e,q] gphys[e,q,a,d] GD[x,e,q,d,c]
    gphys[e,q,b,c]`` — the ``"eq,eqad,xeqdc,eqbc->xeab"`` assembly spec.
    """
    ne, nq = w.shape
    nb = gphys.shape[2]
    for x in range(x0, x1):
        for e in range(ne):
            for q in range(nq):
                wq = w[e, q]
                d00 = GD[x, e, q, 0, 0]
                d01 = GD[x, e, q, 0, 1]
                d10 = GD[x, e, q, 1, 0]
                d11 = GD[x, e, q, 1, 1]
                for a in range(nb):
                    ga0 = gphys[e, q, a, 0]
                    ga1 = gphys[e, q, a, 1]
                    t0 = wq * (ga0 * d00 + ga1 * d10)
                    t1 = wq * (ga0 * d01 + ga1 * d11)
                    for b in range(nb):
                        out[x, e, a, b] += (
                            t0 * gphys[e, q, b, 0] + t1 * gphys[e, q, b, 1]
                        )


@_jit
def element_blocks_K(w, gphys, GK, Bq, out, x0, x1):
    """Friction element blocks for batch rows ``[x0, x1)``:

    ``out[x,e,a,b] += sum_{q,d} w[e,q] gphys[e,q,a,d] GK[x,e,q,d]
    Bq[q,b]`` — the ``"eq,eqad,xeqd,qb->xeab"`` assembly spec.
    """
    ne, nq = w.shape
    nb = gphys.shape[2]
    for x in range(x0, x1):
        for e in range(ne):
            for q in range(nq):
                wq = w[e, q]
                k0 = GK[x, e, q, 0]
                k1 = GK[x, e, q, 1]
                for a in range(nb):
                    s = wq * (gphys[e, q, a, 0] * k0 + gphys[e, q, a, 1] * k1)
                    for b in range(nb):
                        out[x, e, a, b] += s * Bq[q, b]


@_jit
def csr_scatter_rows(indptr, indices, data, flat, out, x0, x1):
    """CSR scatter-apply for batch rows ``[x0, x1)``:
    ``out[x, i] = sum_p data[p] flat[x, indices[p]]`` over the scatter
    operator's row ``i`` slice ``p in [indptr[i], indptr[i+1])``."""
    nrows = indptr.shape[0] - 1
    for x in range(x0, x1):
        for i in range(nrows):
            acc = 0.0
            for p in range(indptr[i], indptr[i + 1]):
                acc += data[p] * flat[x, indices[p]]
            out[x, i] = acc


def warm_all() -> None:
    """Compile every kernel on tiny inputs (both table dtypes), so the
    first real call never pays compilation.  Harmless (just slow) when
    numba is absent."""
    r = np.array([0.5, 1.0, 1.5])
    z = np.array([-0.25, 0.0, 0.25])
    for dt in (np.float64, np.float32):
        out = np.zeros((5, 3, 3), dtype=dt)
        pair_rows(out, r, z, 0, 3)
    G_D = np.zeros((2, 3, 2, 2))
    G_K = np.zeros((2, 3, 2))
    c = np.ones((3, 2))
    field_rows(G_D, G_K, r, z, c, c, c, 0, 3)
    w = np.ones((2, 2))
    gphys = np.ones((2, 2, 3, 2))
    Bq = np.ones((2, 3))
    Ce = np.zeros((1, 2, 3, 3))
    element_blocks_D(w, gphys, np.ones((1, 2, 2, 2, 2)), Ce, 0, 1)
    element_blocks_K(w, gphys, np.ones((1, 2, 2, 2)), Bq, Ce, 0, 1)
    indptr = np.array([0, 1, 2], dtype=np.int32)
    indices = np.array([0, 1], dtype=np.int32)
    csr_scatter_rows(
        indptr, indices, np.ones(2), np.ones((1, 2)), np.zeros((1, 2)), 0, 1
    )
