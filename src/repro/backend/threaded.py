"""Chunked thread-pool backend.

Absorbs the ad-hoc ``ThreadPoolExecutor`` usage that PR 4 sprinkled
through :class:`~repro.core.operator.LandauOperator` into one place:
every backend operation is split into contiguous, disjoint output blocks
and dispatched to a shared pool.  numpy/scipy release the GIL inside
BLAS/LAPACK kernels, so the blocks genuinely overlap on multi-core
hosts; on a single-core host the backend still runs correctly (the pool
degenerates to near-serial execution).

Determinism: blocks never share output rows, and the per-block compute
is the same numpy expression as :class:`NumpyBackend` applied to a
contiguous slice — results match the reference to well below ``1e-12``
(BLAS may reassociate sums across the block boundary of ``matmul``, the
only operation where the split axis is contracted-adjacent).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from .numpy_backend import NumpyBackend

__all__ = ["ThreadedBackend"]


def _default_workers() -> int:
    return max(1, min(8, os.cpu_count() or 1))


class ThreadedBackend(NumpyBackend):
    """Block-parallel execution on a shared thread pool.

    ``num_threads`` follows :attr:`AssemblyOptions.num_threads` semantics:
    values > 1 set the pool size; ``1`` (the options default) means "pick
    for me" and uses ``min(8, cpu_count)`` so selecting the threaded
    backend is useful without also tuning a thread knob.
    """

    name = "threaded"

    def __init__(self, num_threads: int = 0):
        self.workers = (
            int(num_threads) if num_threads and num_threads > 1 else _default_workers()
        )
        self._pool: ThreadPoolExecutor | None = None

    def _get_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-backend"
            )
        return self._pool

    # ------------------------------------------------------------------
    def parallel_for(
        self, tasks: Sequence[tuple], fn: Callable[..., None]
    ) -> bool:
        tasks = list(tasks)
        if len(tasks) <= 1 or self.workers <= 1:
            for task in tasks:
                fn(*task)
            return False
        pool = self._get_pool()
        futures = [pool.submit(fn, *task) for task in tasks]
        for fut in futures:
            fut.result()
        return True

    # ------------------------------------------------------------------
    def matmul(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        n_cols = B.shape[1]
        blocks = self.batch_blocks(n_cols)
        if len(blocks) <= 1:
            return A @ B
        out = np.empty((A.shape[0], n_cols), dtype=np.result_type(A, B))

        def mm_block(c0: int, c1: int) -> None:
            np.matmul(A, B[:, c0:c1], out=out[:, c0:c1])

        self.parallel_for(blocks, mm_block)
        return out

    def contract(self, spec: str, *ops: np.ndarray) -> np.ndarray:
        """Partition the contraction along the output's leading axis.

        The heavy assembly contractions all carry a batch/element index
        as the first output subscript; each block einsum sees a
        contiguous slice of every operand that shares the index, so block
        results are exactly the serial per-slice results.
        """
        inputs, out_sub = spec.replace(" ", "").split("->")
        in_subs = inputs.split(",")
        if not out_sub:
            return np.einsum(spec, *ops, optimize=True)
        axis_letter = out_sub[0]
        n = None
        for sub, op in zip(in_subs, ops):
            if axis_letter in sub:
                n = op.shape[sub.index(axis_letter)]
                break
        blocks = self.batch_blocks(n) if n is not None else []
        if len(blocks) <= 1:
            return np.einsum(spec, *ops, optimize=True)
        out = None

        def einsum_block(i0: int, i1: int) -> None:
            nonlocal out
            sliced = []
            for sub, op in zip(in_subs, ops):
                if axis_letter in sub:
                    ax = sub.index(axis_letter)
                    key = [slice(None)] * op.ndim
                    key[ax] = slice(i0, i1)
                    sliced.append(op[tuple(key)])
                else:
                    sliced.append(op)
            res = np.einsum(spec, *sliced, optimize=True)
            if out is None:
                shape = (n,) + res.shape[1:]
                out = np.empty(shape, dtype=res.dtype)
            out[i0:i1] = res

        # run the first block inline to size the output, then fan out
        einsum_block(*blocks[0])
        self.parallel_for(blocks[1:], einsum_block)
        return out

    def scatter_apply(self, T, flat: np.ndarray) -> np.ndarray:
        X = flat.shape[0]
        blocks = self.batch_blocks(X)
        if len(blocks) <= 1:
            return np.ascontiguousarray((T @ flat.T).T)
        out = np.empty((X, T.shape[0]), dtype=float)

        def scatter_block(i0: int, i1: int) -> None:
            out[i0:i1] = (T @ flat[i0:i1].T).T

        self.parallel_for(blocks, scatter_block)
        return out

    # banded_factor_many / banded_solve_many need no override: the numpy
    # implementations already dispatch their per-matrix loops through
    # parallel_for over batch_blocks, which this class parallelizes.

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
