"""Algorithm 1 as a real ``numba.cuda.jit`` kernel — the compiled sibling
of the instruction-counting CUDA simulator mapping.

:class:`repro.core.kernel_cuda.CudaLandauJacobian` *models* the paper's
§III-B kernel on a counting simulator; this module *compiles* the same
kernel shape with ``numba.cuda.jit``: one element per block, the y
thread dimension indexing the element's integration points, the x
dimension striding the inner integral over all N source points with
register partials, a shared-memory reduction in place of the warp
shuffle butterfly, per-species scaling staged in shared memory, and a
transform & assemble phase where the flattened thread id strides the
``(s, a, b)`` output triples and scatters through the constrained-vertex
interpolation with ``cuda.atomic.add`` (thread indexing per SNIPPETS.md
Snippet 1: ``pos = tx + ty * bw``).

:class:`CudaJitLandauJacobian` mirrors the simulator driver's launch
geometry exactly — same grid (``nelem``), same ``(block_x, nq)`` block
choice, one launch per Jacobian build — so the conformance suite can
assert *identical launch counters* between the modeled and compiled
paths on top of ≤1e-12 numerical agreement.

Elliptic integrals use the same AGM iteration as
:mod:`repro.backend.numba_kernels`, transliterated as device functions
(``scipy.special`` does not exist on a device).

Runs on a real GPU when one is visible, or under numba's CUDA simulator
(``NUMBA_ENABLE_CUDASIM=1``, set *before* numba is first imported —
this is how CI exercises it).  Guarded like the rest of the numba
backend: :func:`cuda_jit_available` is ``False`` and construction
raises :class:`BackendUnavailable` when neither is usable.
"""

from __future__ import annotations

import math
import os

import numpy as np

from ..core.species import SpeciesSet
from ..fem.function_space import FunctionSpace
from .base import BackendUnavailable
from .kernel_spec import DeviceKernelData, FieldData, KernelData

try:  # pragma: no cover - exercised only where numba is installed
    from numba import cuda

    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common container case
    cuda = None
    _HAVE_NUMBA = False

__all__ = ["CudaJitLandauJacobian", "cuda_jit_available"]

#: shared-memory sizing ceilings (Q3 tensor elements are 16 x 16)
MAX_NQ = 16
MAX_S = 4

_KERNEL = None


def cuda_jit_available() -> bool:
    """True when the kernel can actually run: numba is installed and
    either the CUDA simulator is enabled or a real device is visible."""
    if not _HAVE_NUMBA:
        return False
    if os.environ.get("NUMBA_ENABLE_CUDASIM", "0") not in ("0", ""):
        return True
    try:  # pragma: no cover - requires a GPU
        return bool(cuda.is_available())
    except Exception:  # pragma: no cover - broken driver stacks
        return False


def _get_kernel():  # pragma: no cover - requires numba (sim or device)
    """Compile (once) the device functions + the element-Jacobian kernel."""
    global _KERNEL
    if _KERNEL is not None:
        return _KERNEL

    @cuda.jit(device=True)
    def ellip_ke(m):
        # AGM iteration; exact pi/2 pair at m == 0 (see numba_kernels)
        half_pi = 0.5 * math.pi
        if m <= 0.0:
            return half_pi, half_pi
        a = 1.0
        b = math.sqrt(1.0 - m)
        c = math.sqrt(m)
        csum = 0.5 * c * c
        pow2 = 0.5
        for _ in range(64):
            an = 0.5 * (a + b)
            c = 0.5 * (a - b)
            b = math.sqrt(a * b)
            a = an
            pow2 *= 2.0
            csum += pow2 * c * c
            # threshold above the 1-ulp stall of c (see numba_kernels)
            if c <= 2.3e-16 * a:
                break
        K = math.pi / (2.0 * a)
        return K, K * (1.0 - csum)

    @cuda.jit(device=True)
    def pair_components(ri, zi, rj, zj):
        # the five packed tensor components; mirrors numba_kernels
        dz = zi - zj
        A = ri * ri + rj * rj + dz * dz
        B = 2.0 * ri * rj
        scale = A if A > 1.0 else 1.0
        if (A - B) <= 1e-14 * scale:  # SINGULAR_REL_TOL
            return 0.0, 0.0, 0.0, 0.0, 0.0
        ApB = A + B
        AmB = A - B
        m = 2.0 * B / ApB
        K, E = ellip_ke(m)
        inv_sqrt = 1.0 / math.sqrt(ApB)
        inv_pow32 = inv_sqrt / ApB
        T0 = E * ApB / AmB
        if m < 2.0e-3:  # SMALL_M series switch
            hp = 0.5 * math.pi
            T1 = hp * (
                0.5
                + m * (9.0 / 16.0 + m * (75.0 / 128.0 + m * 1225.0 / 2048.0))
            )
            T2 = hp * (3.0 / 8.0 + m * (15.0 / 32.0 + m * 525.0 / 1024.0))
            I11c = hp * m * (0.125 + m * (3.0 / 32.0 + m * 75.0 / 1024.0))
        else:
            T1 = (T0 - K) / m
            T2 = (T0 - 2.0 * K + E) / (m * m)
            I11c = 2.0 * (K - E) / m - K
        I10 = 4.0 * K * inv_sqrt
        I11 = 4.0 * I11c * inv_sqrt
        I30 = 4.0 * T0 * inv_pow32
        I31 = 4.0 * (2.0 * T1 - T0) * inv_pow32
        I32 = 4.0 * (4.0 * T2 - 4.0 * T1 + T0) * inv_pow32
        Drr = I10 - (ri * ri * I30 - 2.0 * ri * rj * I31 + rj * rj * I32)
        Drz = -(dz * (ri * I30 - rj * I31))
        Dzz = I10 - dz * dz * I30
        Krr = I11 - ((ri * ri + rj * rj) * I31 - ri * rj * (I30 + I32))
        Kzr = -(dz * (ri * I31 - rj * I30))
        return Drr, Drz, Dzz, Krr, Kzr

    @cuda.jit
    def jacobian_kernel(
        r,
        z,
        w,
        f,
        dfr,
        dfz,
        Bq,
        Dref,
        invJ,
        z2,
        z2om,
        fac_k,
        fac_d,
        targets_flat,
        targets_off,
        P_flat,
        P_off,
        out,
    ):
        # Snippet-1 thread indexing: tx lanes stride the inner integral,
        # ty indexes this element's integration points, pos = tx + ty*bw
        # flattens the block for the transform phase.
        e = cuda.blockIdx.x
        tx = cuda.threadIdx.x
        ty = cuda.threadIdx.y
        bw = cuda.blockDim.x
        nq = cuda.blockDim.y
        S = z2.shape[0]
        N = r.shape[0]
        nb = Bq.shape[1]

        # shared: per-IP integrals (5 unique G comps) and staged KK/DD
        sG = cuda.shared.array((MAX_NQ, 5), dtype=np.float64)
        sC = cuda.shared.array((MAX_S, MAX_NQ, 5), dtype=np.float64)

        if tx == 0:
            for c in range(5):
                sG[ty, c] = 0.0
        cuda.syncthreads()

        gi = e * nq + ty
        ri = r[gi]
        zi = z[gi]

        # --- inner integral: lane-strided register partials (lines 4-11)
        gd00 = 0.0
        gd01 = 0.0
        gd11 = 0.0
        gk0 = 0.0
        gk1 = 0.0
        for j in range(tx, N, bw):
            Drr, Drz, Dzz, Krr, Kzr = pair_components(ri, zi, r[j], z[j])
            td = 0.0
            tkr = 0.0
            tkz = 0.0
            for s in range(S):  # beta sums (lines 5-8)
                td += z2[s] * f[s, j]
                tkr += z2om[s] * dfr[s, j]
                tkz += z2om[s] * dfz[s, j]
            wj = w[j]
            gd00 += wj * td * Drr
            gd01 += wj * td * Drz
            gd11 += wj * td * Dzz
            gk0 += wj * (Krr * tkr + Drz * tkz)
            gk1 += wj * (Kzr * tkr + Dzz * tkz)
        # lane combine (line 12): shared-memory reduction stands in for
        # the simulator's counted warp-shuffle butterfly
        cuda.atomic.add(sG, (ty, 0), gd00)
        cuda.atomic.add(sG, (ty, 1), gd01)
        cuda.atomic.add(sG, (ty, 2), gd11)
        cuda.atomic.add(sG, (ty, 3), gk0)
        cuda.atomic.add(sG, (ty, 4), gk1)
        cuda.syncthreads()

        # --- per-species scaling staged in shared memory (lines 13-16)
        if tx == 0:
            wi = w[gi]
            for s in range(S):
                sC[s, ty, 0] = fac_d[s] * sG[ty, 0] * wi  # DD rr
                sC[s, ty, 1] = fac_d[s] * sG[ty, 1] * wi  # DD rz
                sC[s, ty, 2] = fac_d[s] * sG[ty, 2] * wi  # DD zz
                sC[s, ty, 3] = fac_k[s] * sG[ty, 3] * wi  # KK r
                sC[s, ty, 4] = fac_k[s] * sG[ty, 4] * wi  # KK z
        cuda.syncthreads()

        # --- transform & assemble (lines 18-23): flattened threads
        # stride the (s, a, b) triples of this element's dense block
        pos = tx + ty * bw
        nthreads = nq * bw
        k0 = targets_off[e]
        ke = targets_off[e + 1] - k0
        p0 = P_off[e]
        total = S * nb * nb
        for idx in range(pos, total, nthreads):
            s = idx // (nb * nb)
            rem = idx - s * nb * nb
            a = rem // nb
            b = rem - a * nb
            acc = 0.0
            for i in range(nq):
                ga0 = Dref[i, a, 0] * invJ[e, 0]
                ga1 = Dref[i, a, 1] * invJ[e, 1]
                gb0 = Dref[i, b, 0] * invJ[e, 0]
                gb1 = Dref[i, b, 1] * invJ[e, 1]
                d00 = sC[s, i, 0]
                d01 = sC[s, i, 1]
                d11 = sC[s, i, 2]
                acc += ga0 * (d00 * gb0 + d01 * gb1)
                acc += ga1 * (d01 * gb0 + d11 * gb1)
                acc += (ga0 * sC[s, i, 3] + ga1 * sC[s, i, 4]) * Bq[i, b]
            # constrained-vertex interpolation: Cfree = Pe^T C Pe scattered
            for k in range(ke):
                pa = P_flat[p0 + a * ke + k]
                if pa == 0.0:
                    continue
                ta = targets_flat[k0 + k]
                for l in range(ke):
                    pb = P_flat[p0 + b * ke + l]
                    if pb == 0.0:
                        continue
                    cuda.atomic.add(
                        out, (s, ta, targets_flat[k0 + l]), acc * pa * pb
                    )

    _KERNEL = jacobian_kernel
    return _KERNEL


class CudaJitLandauJacobian:
    """Driver for the compiled kernel; launch-geometry-identical to
    :class:`repro.core.kernel_cuda.CudaLandauJacobian`.

    ``counters["kernel_launches"]`` increments once per :meth:`build`,
    and ``grid``/``block`` record the launch shape — the conformance
    suite asserts both against the simulator driver.
    """

    def __init__(
        self,
        fs: FunctionSpace,
        species: SpeciesSet,
        nu0: float = 1.0,
        block_x: int | None = None,
    ):
        if not cuda_jit_available():
            raise BackendUnavailable(
                "the numba.cuda Landau kernel needs numba plus either a "
                "CUDA device or NUMBA_ENABLE_CUDASIM=1 (set before numba "
                "is first imported)"
            )
        self.fs = fs
        self.species = species
        self.nu0 = float(nu0)
        self.kd = KernelData.build(fs, species)
        self.dev = DeviceKernelData.pack(self.kd)
        if self.kd.nq > MAX_NQ or len(species) > MAX_S:
            raise ValueError(
                f"kernel shared-memory ceilings exceeded: nq={self.kd.nq} "
                f"(max {MAX_NQ}), S={len(species)} (max {MAX_S})"
            )
        # identical block choice to the simulator driver:
        # y = integration points; x = power of two with <= 256 total
        if block_x is None:
            block_x = 1
            while block_x * 2 * self.kd.nq <= 256:
                block_x *= 2
        self.block = (block_x, self.kd.nq)
        self.grid = self.kd.nelem
        self.counters = {"kernel_launches": 0}

    def build(
        self, fields: list[np.ndarray]
    ) -> np.ndarray:  # pragma: no cover - requires numba (sim or device)
        """One kernel launch; returns dense ``(S, n_free, n_free)`` blocks."""
        kd = self.kd
        fd = FieldData.build(self.fs, fields)
        S = len(self.species)
        z2 = kd.charges**2
        z2om = z2 / kd.masses
        fac_k = self.nu0 * z2om
        fac_d = -self.nu0 * z2 / kd.masses**2
        out = np.zeros((S, kd.n_free, kd.n_free))
        kernel = _get_kernel()
        kernel[self.grid, self.block](
            kd.r,
            kd.z,
            kd.w,
            np.ascontiguousarray(fd.f),
            np.ascontiguousarray(fd.df[0]),
            np.ascontiguousarray(fd.df[1]),
            kd.B,
            kd.Dref,
            kd.inv_jac,
            z2,
            z2om,
            fac_k,
            fac_d,
            self.dev.targets_flat,
            self.dev.targets_off,
            self.dev.P_flat,
            self.dev.P_off,
            out,
        )
        self.counters["kernel_launches"] += 1
        return out
