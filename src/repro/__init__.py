"""repro — a reproduction of "Landau collision operator in the CUDA
programming model applied to thermal quench plasmas" (Adams, Brennan,
Knepley, Wang — IPDPS 2022).

The package implements, from scratch and in pure NumPy/SciPy Python:

* a conservative high-order finite-element discretization of the Landau
  collision operator in axisymmetric (r, z) velocity space with adaptive
  mesh refinement and hanging-node constraints (:mod:`repro.fem`,
  :mod:`repro.amr`, :mod:`repro.core`),
* the paper's Algorithm 1 expressed against a functional, fully counted
  simulator of the CUDA programming model and a Kokkos-style layer
  (:mod:`repro.gpu`, :mod:`repro.kokkos`),
* the PETSc-style sparse-matrix substrate, including the custom RCM band
  LU solver (:mod:`repro.sparse`),
* the Vlasov-Poisson-Landau thermal quench model with Spitzer-resistivity
  verification (:mod:`repro.quench`),
* the performance models that regenerate the paper's throughput,
  component-time and roofline tables (:mod:`repro.perf`).

Quick start::

    from repro.fem import FunctionSpace
    from repro.amr import landau_mesh
    from repro.core import (SpeciesSet, electron, deuterium,
                            LandauOperator, ImplicitLandauSolver, Moments)
    from repro.core.maxwellian import species_maxwellian

    species = SpeciesSet([electron(), deuterium()])
    mesh = landau_mesh([s.thermal_velocity for s in species])
    fs = FunctionSpace(mesh, order=3)
    op = LandauOperator(fs, species)
    solver = ImplicitLandauSolver(op)
    f = [fs.interpolate(species_maxwellian(s)) for s in species]
    f = solver.integrate(f, dt=0.5, nsteps=10, efield=0.01)
    print(Moments(fs, species).summary(f))
"""

__version__ = "1.0.0"

from . import constants, units  # noqa: F401

__all__ = ["constants", "units", "__version__"]
