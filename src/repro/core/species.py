"""Plasma species and species sets in nondimensional (code) units.

Charge is in units of the elementary charge, mass in units of the reference
mass ``m0`` (electron mass), density in units of ``n0`` and temperature in
units of the reference temperature ``T0`` that anchors ``v0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from .. import constants as c


@dataclass(frozen=True)
class Species:
    """A plasma species in code units.

    Attributes
    ----------
    name:
        label for reports.
    charge:
        signed charge number ``z`` (electron = -1).
    mass:
        mass ratio ``m/m0``.
    density:
        number density in units of ``n0``.
    temperature:
        temperature in units of the reference ``T0``.
    """

    name: str
    charge: float
    mass: float
    density: float = 1.0
    temperature: float = 1.0

    def __post_init__(self) -> None:
        # validate finiteness first: NaN slips through every ordering
        # comparison (NaN <= 0 is False) and would otherwise propagate
        # silently into the operator assembly
        for attr in ("charge", "mass", "density", "temperature"):
            v = getattr(self, attr)
            if not math.isfinite(v):
                raise ValueError(f"{self.name}: {attr} must be finite, got {v}")
        if self.mass <= 0:
            raise ValueError(f"{self.name}: mass must be positive, got {self.mass}")
        if self.density <= 0:
            raise ValueError(
                f"{self.name}: density must be positive, got {self.density}"
            )
        if self.temperature <= 0:
            raise ValueError(
                f"{self.name}: temperature must be positive, got {self.temperature}"
            )

    @property
    def thermal_velocity(self) -> float:
        """``v_th = sqrt(2 k T / m)`` in code (v0) units.

        With ``v0 = sqrt(8 k T0 / (pi m0))``, an electron at ``T = T0`` has
        ``v_th = sqrt(pi)/2 ~= 0.886``.
        """
        vth_e_at_T0 = math.sqrt(math.pi) / 2.0
        return vth_e_at_T0 * math.sqrt(self.temperature / self.mass)

    def with_temperature(self, temperature: float) -> "Species":
        return replace(self, temperature=temperature)

    def with_density(self, density: float) -> "Species":
        return replace(self, density=density)


class SpeciesSet:
    """An ordered collection of species (electrons first by convention)."""

    def __init__(self, species: list[Species]):
        if not species:
            raise ValueError("need at least one species")
        names = [s.name for s in species]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate species names: {names}")
        self.species = list(species)

    def __len__(self) -> int:
        return len(self.species)

    def __iter__(self):
        return iter(self.species)

    def __getitem__(self, i: int) -> Species:
        return self.species[i]

    @property
    def charges(self):
        import numpy as np

        return np.array([s.charge for s in self.species])

    @property
    def masses(self):
        import numpy as np

        return np.array([s.mass for s in self.species])

    @property
    def densities(self):
        import numpy as np

        return np.array([s.density for s in self.species])

    @property
    def thermal_velocities(self):
        import numpy as np

        return np.array([s.thermal_velocity for s in self.species])

    def quasineutral(self) -> bool:
        """True if the total charge density vanishes (to 1e-12)."""
        return abs(sum(s.charge * s.density for s in self.species)) < 1e-12

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SpeciesSet(" + ", ".join(s.name for s in self.species) + ")"


# --- standard species --------------------------------------------------------
def electron(density: float = 1.0, temperature: float = 1.0) -> Species:
    return Species("e", charge=-1.0, mass=1.0, density=density, temperature=temperature)


def deuterium(density: float = 1.0, temperature: float = 1.0) -> Species:
    return Species(
        "D",
        charge=1.0,
        mass=c.DEUTERIUM_MASS_RATIO,
        density=density,
        temperature=temperature,
    )


def hydrogenic(Z: float, density: float = 1.0, temperature: float = 1.0) -> Species:
    """A fully stripped ion of charge Z with mass ``2 Z m_p`` (A ~= 2Z)."""
    return Species(
        f"Z{Z:g}",
        charge=Z,
        mass=2.0 * Z * c.PROTON_MASS_RATIO,
        density=density,
        temperature=temperature,
    )


def tungsten_states(
    charges: list[float] | None = None,
    density_each: float = 0.125,
    temperature: float = 1.0,
) -> list[Species]:
    """Eight effective tungsten ionization states (the paper's impurity mix)."""
    if charges is None:
        charges = [10.0 + 5.0 * k for k in range(8)]
    return [
        Species(
            f"W{int(zc)}",
            charge=zc,
            mass=c.TUNGSTEN_MASS_RATIO,
            density=density_each,
            temperature=temperature,
        )
        for zc in charges
    ]
