"""The conservative finite-element Landau collision operator.

This is the CPU reference implementation of the optimized formulation of
section III-A: the species sum is pulled into the inner integral (eq. 10),
so the O(N^2) work computes the *species-independent* fields

    G_D(x_i) = sum_j w_j T_D(x_j) U^D(x_i, x_j),   T_D = sum_b z_b^2 f_b
    G_K(x_i) = sum_j w_j U^K(x_i, x_j) . T_K(x_j), T_K = sum_b z_b^2 (m0/m_b) grad f_b

after which each species' weak-form coefficients are cheap rescalings
(Algorithm 1 lines 13-16):

    K_q(a) = +nu z_a^2 (m0/m_a)   G_K
    D_q(a) = -nu z_a^2 (m0/m_a)^2 G_D

and a standard finite element assembly produces the (block-diagonal over
species) Jacobian.  The complexity is O(N^2 S) instead of the naive
O(N^2 S^2).

The pair tables U^D/U^K depend only on quadrature geometry, so on the CPU
they are computed once per mesh and cached (7 unique components, each an
``N x N`` matrix); the field computation is then seven dense matvecs.  The
CUDA-model kernel (:mod:`repro.core.kernel_cuda`) instead recomputes the
tensors on the fly exactly as Algorithm 1 does on a GPU — the two paths are
verified against each other in the test suite.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..fem.assembly import assemble_coefficient_operator, assemble_mass
from ..fem.function_space import FunctionSpace
from .landau_tensor import landau_tensors_cyl
from .species import SpeciesSet

#: default cap on cached pair-table memory (bytes); above this the field
#: computation falls back to chunked on-the-fly tensor evaluation.
PAIR_TABLE_MEMORY_LIMIT = 400 * 1024 * 1024


class LandauOperator:
    """Landau collision operator on a single shared velocity grid.

    Parameters
    ----------
    fs:
        the velocity-space function space (one scalar field per species).
    species:
        the species set; charges/masses set the per-species scalings.
    nu0:
        collision prefactor; 1.0 in code units (``nu_ee = 1``).
    cache_pair_tables:
        force (True/False) or auto-decide (None) caching of the O(N^2)
        tensor tables.
    """

    def __init__(
        self,
        fs: FunctionSpace,
        species: SpeciesSet,
        nu0: float = 1.0,
        cache_pair_tables: bool | None = None,
    ):
        self.fs = fs
        self.species = species
        self.nu0 = float(nu0)

        N = fs.n_integration_points
        self.N = N
        self.r = fs.qpoints[:, :, 0].reshape(N)
        self.z = fs.qpoints[:, :, 1].reshape(N)
        self.w = fs.qweights.reshape(N)

        if cache_pair_tables is None:
            cache_pair_tables = 7 * N * N * 8 <= PAIR_TABLE_MEMORY_LIMIT
        self._tables = self._build_pair_tables() if cache_pair_tables else None
        self._mass: sp.csr_matrix | None = None

    # ------------------------------------------------------------------
    def _build_pair_tables(self) -> dict[str, np.ndarray]:
        """Cache the 7 unique components of U^D/U^K over all point pairs."""
        UD, UK = landau_tensors_cyl(
            self.r[:, None], self.z[:, None], self.r[None, :], self.z[None, :]
        )
        return {
            "Drr": UD[..., 0, 0],
            "Drz": UD[..., 0, 1],
            "Dzz": UD[..., 1, 1],
            "Krr": UK[..., 0, 0],
            "Krz": UK[..., 0, 1],
            "Kzr": UK[..., 1, 0],
            "Kzz": UK[..., 1, 1],
        }

    @property
    def pair_tables_cached(self) -> bool:
        return self._tables is not None

    # ------------------------------------------------------------------
    def beta_sums(self, fields: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """The species-summed sources ``T_D (N,)`` and ``T_K (2, N)``.

        ``fields`` holds one free-space coefficient vector per species.
        """
        if len(fields) != len(self.species):
            raise ValueError(
                f"expected {len(self.species)} species fields, got {len(fields)}"
            )
        N = self.N
        T_D = np.zeros(N)
        T_K = np.zeros((2, N))
        for s, x in zip(self.species, fields):
            z2 = s.charge**2
            T_D += z2 * self.fs.eval(x).reshape(N)
            g = self.fs.eval_grad(x)
            T_K[0] += (z2 / s.mass) * g[:, :, 0].reshape(N)
            T_K[1] += (z2 / s.mass) * g[:, :, 1].reshape(N)
        return T_D, T_K

    def fields(
        self, fields: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compute ``G_D (N, 2, 2)`` and ``G_K (N, 2)`` at all IPs."""
        T_D, T_K = self.beta_sums(fields)
        wTD = self.w * T_D
        wTKr = self.w * T_K[0]
        wTKz = self.w * T_K[1]
        N = self.N
        G_D = np.zeros((N, 2, 2))
        G_K = np.zeros((N, 2))
        if self._tables is not None:
            t = self._tables
            G_D[:, 0, 0] = t["Drr"] @ wTD
            G_D[:, 0, 1] = t["Drz"] @ wTD
            G_D[:, 1, 0] = G_D[:, 0, 1]
            G_D[:, 1, 1] = t["Dzz"] @ wTD
            G_K[:, 0] = t["Krr"] @ wTKr + t["Krz"] @ wTKz
            G_K[:, 1] = t["Kzr"] @ wTKr + t["Kzz"] @ wTKz
            return G_D, G_K
        # chunked on-the-fly evaluation (large N)
        chunk = max(1, int(5e7 // max(N, 1)))
        for i0 in range(0, N, chunk):
            i1 = min(i0 + chunk, N)
            UD, UK = landau_tensors_cyl(
                self.r[i0:i1, None],
                self.z[i0:i1, None],
                self.r[None, :],
                self.z[None, :],
            )
            G_D[i0:i1, 0, 0] = UD[..., 0, 0] @ wTD
            G_D[i0:i1, 0, 1] = UD[..., 0, 1] @ wTD
            G_D[i0:i1, 1, 0] = G_D[i0:i1, 0, 1]
            G_D[i0:i1, 1, 1] = UD[..., 1, 1] @ wTD
            G_K[i0:i1, 0] = UK[..., 0, 0] @ wTKr + UK[..., 0, 1] @ wTKz
            G_K[i0:i1, 1] = UK[..., 1, 0] @ wTKr + UK[..., 1, 1] @ wTKz
        return G_D, G_K

    # ------------------------------------------------------------------
    def species_coefficients(
        self, s_index: int, G_D: np.ndarray, G_K: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-species weak-form coefficients (Algorithm 1 lines 13-16)."""
        s = self.species[s_index]
        ne, nq = self.fs.qweights.shape
        fac_k = self.nu0 * s.charge**2 / s.mass
        fac_d = -self.nu0 * s.charge**2 / s.mass**2
        D_q = (fac_d * G_D).reshape(ne, nq, 2, 2)
        K_q = (fac_k * G_K).reshape(ne, nq, 2)
        return D_q, K_q

    def species_matrix(
        self, s_index: int, G_D: np.ndarray, G_K: np.ndarray
    ) -> sp.csr_matrix:
        """The frozen-coefficient collision matrix ``L_a`` for one species,
        such that ``M df_a/dt = L_a f_a`` (plus field/source terms)."""
        D_q, K_q = self.species_coefficients(s_index, G_D, G_K)
        return assemble_coefficient_operator(self.fs, D_q, K_q)

    def jacobian(self, fields: list[np.ndarray]) -> list[sp.csr_matrix]:
        """All species' collision matrices about the state ``fields``.

        The multi-species Jacobian is block diagonal (``I_S (x) A_1``
        pattern); this returns the per-species blocks.
        """
        G_D, G_K = self.fields(fields)
        return [
            self.species_matrix(a, G_D, G_K) for a in range(len(self.species))
        ]

    def apply(self, fields: list[np.ndarray]) -> list[np.ndarray]:
        """The weak-form collision operator applied to the current state:
        ``(psi, C_a(f))`` for each species (nonlinear evaluation)."""
        G_D, G_K = self.fields(fields)
        return [
            self.species_matrix(a, G_D, G_K) @ fields[a]
            for a in range(len(self.species))
        ]

    # ------------------------------------------------------------------
    @property
    def mass_matrix(self) -> sp.csr_matrix:
        """The (r-weighted) mass matrix, cached."""
        if self._mass is None:
            self._mass = assemble_mass(self.fs)
        return self._mass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LandauOperator(S={len(self.species)}, N={self.N}, "
            f"cached={self.pair_tables_cached})"
        )
