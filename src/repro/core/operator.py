"""The conservative finite-element Landau collision operator.

This is the CPU reference implementation of the optimized formulation of
section III-A: the species sum is pulled into the inner integral (eq. 10),
so the O(N^2) work computes the *species-independent* fields

    G_D(x_i) = sum_j w_j T_D(x_j) U^D(x_i, x_j),   T_D = sum_b z_b^2 f_b
    G_K(x_i) = sum_j w_j U^K(x_i, x_j) . T_K(x_j), T_K = sum_b z_b^2 (m0/m_b) grad f_b

after which each species' weak-form coefficients are cheap rescalings
(Algorithm 1 lines 13-16):

    K_q(a) = +nu z_a^2 (m0/m_a)   G_K
    D_q(a) = -nu z_a^2 (m0/m_a)^2 G_D

and a standard finite element assembly produces the (block-diagonal over
species) Jacobian.  The complexity is O(N^2 S) instead of the naive
O(N^2 S^2).

The pair tables U^D/U^K depend only on quadrature geometry, so on the CPU
they are computed once per mesh and cached.  Two exact symmetries of the
axisymmetric tensors — ``U^K_rz == U^D_rz`` and ``U^K_zz == U^D_zz`` —
mean only *five* distinct ``N x N`` components exist; the default packed
layout stores exactly those five, contiguously, so the field computation
is a handful of contiguous BLAS contractions (the legacy layout kept
seven strided views into the full ``(N, N, 2, 2)`` tensors).  The CUDA-
model kernel (:mod:`repro.core.kernel_cuda`) instead recomputes the
tensors on the fly exactly as Algorithm 1 does on a GPU — the two paths
are verified against each other in the test suite
(``tests/test_backend_equivalence.py``).

Assembly behaviour (structure caching, packed tables, thread counts,
table precision, memory budget) is configured by
:class:`repro.core.options.AssemblyOptions`; the operator's ``counters``
dict records structure reuses and parallel builds for
:class:`repro.core.solver.NewtonStats`.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp

from ..fem.assembly import (
    assemble_coefficient_operator,
    assemble_mass,
    element_mass_blocks,
    get_scatter_map,
)
from ..fem.function_space import FunctionSpace
from .landau_tensor import landau_tensors_cyl
from .options import AssemblyOptions, PairTableMemoryError
from .species import SpeciesSet

#: default cap on cached pair-table memory (bytes); kept as a module
#: constant for backwards compatibility — the effective limit is
#: ``AssemblyOptions.memory_budget``.
PAIR_TABLE_MEMORY_LIMIT = 400 * 1024 * 1024

#: packed component order: Drr, Drz, Dzz, Krr, Kzr (Krz/Kzz alias Drz/Dzz)
_PACKED_COMPONENTS = ("Drr", "Drz", "Dzz", "Krr", "Kzr")


class LandauOperator:
    """Landau collision operator on a single shared velocity grid.

    Parameters
    ----------
    fs:
        the velocity-space function space (one scalar field per species).
    species:
        the species set; charges/masses set the per-species scalings.
    nu0:
        collision prefactor; 1.0 in code units (``nu_ee = 1``).
    cache_pair_tables:
        force (True/False) or auto-decide (None) caching of the O(N^2)
        tensor tables; overrides ``options.cache_pair_tables``.
    options:
        assembly configuration; defaults to
        :meth:`AssemblyOptions.from_env`.
    """

    def __init__(
        self,
        fs: FunctionSpace,
        species: SpeciesSet,
        nu0: float = 1.0,
        cache_pair_tables: bool | None = None,
        options: AssemblyOptions | None = None,
    ):
        self.fs = fs
        self.species = species
        self.nu0 = float(nu0)
        self.options = options if options is not None else AssemblyOptions.from_env()
        #: the execution backend every hot path dispatches through; the
        #: default (``auto`` with no threads requested) is the serial
        #: numpy reference, bitwise-identical to inlined numpy code.
        self.backend = self.options.execution_backend()
        #: assembly work accounting consumed by ``NewtonStats``:
        #: ``structure_reuses`` counts matrix builds served by the cached
        #: scatter structure, ``parallel_builds`` counts thread-pool
        #: dispatched table/field builds.
        self.counters = {"structure_reuses": 0, "parallel_builds": 0}

        N = fs.n_integration_points
        self.N = N
        self.r = fs.qpoints[:, :, 0].reshape(N)
        self.z = fs.qpoints[:, :, 1].reshape(N)
        self.w = fs.qweights.reshape(N)

        if cache_pair_tables is None:
            cache_pair_tables = self.options.cache_pair_tables
        table_bytes = self.options.table_bytes(N)
        if cache_pair_tables is None:
            cache_pair_tables = table_bytes <= self.options.memory_budget
        elif cache_pair_tables and table_bytes > self.options.memory_budget:
            raise PairTableMemoryError(
                f"cached pair tables need {table_bytes / 1e6:.2f} MB for "
                f"N={N} integration points, above the assembly memory budget "
                f"of {self.options.memory_budget / 1e6:.2f} MB; raise "
                "AssemblyOptions.memory_budget (REPRO_ASSEMBLY_MEMORY_BUDGET), "
                "use table_dtype='float32', or leave cache_pair_tables=None "
                "to fall back to chunked on-the-fly evaluation"
            )

        self._tables: dict[str, np.ndarray] | None = None  # legacy layout
        self._packed: np.ndarray | None = None  # (5, N, N) packed layout
        if cache_pair_tables:
            if self.options.packed_tables:
                self._packed = self._build_packed_tables()
            else:
                self._tables = self._build_pair_tables()
        self._scatter = get_scatter_map(fs) if self.options.cache_structure else None
        if self._scatter is not None:
            # long-lived read-only assembly state: a process-parallel
            # backend publishes these into shared memory once so the
            # batched contractions ship handles, not pickled copies
            self.backend.register_shared(self._scatter.gphys)
        self._mass: sp.csr_matrix | None = None

    # ------------------------------------------------------------------
    def _build_pair_tables(self) -> dict[str, np.ndarray]:
        """Legacy cache: 7 component views of U^D/U^K over all point pairs."""
        UD, UK = landau_tensors_cyl(
            self.r[:, None], self.z[:, None], self.r[None, :], self.z[None, :]
        )
        return {
            "Drr": UD[..., 0, 0],
            "Drz": UD[..., 0, 1],
            "Dzz": UD[..., 1, 1],
            "Krr": UK[..., 0, 0],
            "Krz": UK[..., 0, 1],
            "Kzr": UK[..., 1, 0],
            "Kzz": UK[..., 1, 1],
        }

    def _fill_packed_rows(self, out: np.ndarray, i0: int, i1: int) -> None:
        """Compute packed-table rows ``[i0, i1)`` through the backend's
        row-block kernel (thread-safe: disjoint output slices; the numpy
        hook releases the GIL in the contractions, the numba hook in the
        whole ``nogil`` kernel)."""
        self.backend.pair_table_rows(out, self.r, self.z, i0, i1)

    def _row_blocks(self, N: int) -> list[tuple[int, int]]:
        """Row blocks for O(N^2) table/field work: sized by the memory
        budget (the scratch tensors dominate the working set), split
        further so a parallel backend's workers all have work."""
        workers = self.backend.workers
        chunk = min(self.options.row_chunk(N), N)
        starts = list(range(0, N, chunk))
        if workers > 1 and len(starts) < workers:
            chunk = max(1, -(-N // workers))
            starts = list(range(0, N, chunk))
        return [(i0, min(i0 + chunk, N)) for i0 in starts]

    def _build_packed_tables(self) -> np.ndarray:
        """Cache the 5 unique components contiguously; row blocks are
        dispatched through the backend (disjoint output slices, numpy
        releases the GIL in the contractions).

        The buffer comes from :meth:`ExecutionBackend.alloc_shared`: a
        private ``np.empty`` on in-process backends, a shared-memory
        segment on the process backend — so the O(N^2) tables live
        exactly once per machine and every worker contracts against the
        same physical pages."""
        N = self.N
        out = self.backend.alloc_shared((5, N, N), dtype=self.options.dtype)

        def fill(i0: int, i1: int) -> None:
            self._fill_packed_rows(out, i0, i1)

        if self.backend.parallel_for(self._row_blocks(N), fill):
            self.counters["parallel_builds"] += 1
        return out

    @property
    def pair_tables_cached(self) -> bool:
        return self._tables is not None or self._packed is not None

    @property
    def packed_table_buffer(self) -> np.ndarray | None:
        """The packed ``(5, N, N)`` pair-table buffer in ``_PACKED``
        component order, or ``None`` (legacy layout / tables not cached).
        On the process backend this is a shared-memory view — the tables
        physically live once per machine."""
        return self._packed

    # ------------------------------------------------------------------
    def beta_sums(self, fields: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """The species-summed sources ``T_D (N,)`` and ``T_K (2, N)``.

        ``fields`` holds one free-space coefficient vector per species.
        """
        if len(fields) != len(self.species):
            raise ValueError(
                f"expected {len(self.species)} species fields, got {len(fields)}"
            )
        N = self.N
        T_D = np.zeros(N)
        T_K = np.zeros((2, N))
        for s, x in zip(self.species, fields):
            z2 = s.charge**2
            T_D += z2 * self.fs.eval(x).reshape(N)
            g = self.fs.eval_grad(x)
            T_K[0] += (z2 / s.mass) * g[:, :, 0].reshape(N)
            T_K[1] += (z2 / s.mass) * g[:, :, 1].reshape(N)
        return T_D, T_K

    # ------------------------------------------------------------------
    def _table_products(
        self, wTD: np.ndarray, wTKr: np.ndarray, wTKz: np.ndarray
    ) -> tuple[np.ndarray, ...]:
        """The seven table contractions for column-stacked sources.

        Inputs have shape ``(N, K)`` (``K`` = 1 for a single state, B for
        a batch).  Returns ``(Drr_TD, Drz_TD, Dzz_TD, Krr_Kr, Kzr_Kr,
        Krz_Kz, Kzz_Kz)``, each ``(N, K)`` float64.  Requires cached
        tables.
        """
        mm = self.backend.matmul
        if self._packed is not None:
            P = self._packed
            dt = P.dtype
            K = wTD.shape[1]
            # Krz == Drz and Kzz == Dzz: evaluate both sources against the
            # shared table in one contraction so each table streams once
            rhs_dk = np.concatenate([wTD, wTKz], axis=1).astype(dt, copy=False)
            rhs_d = rhs_dk[:, :K]
            rhs_k = wTKr.astype(dt, copy=False)
            Y_rz = mm(P[1], rhs_dk)  # (N, 2K): Drz@wTD | Krz@wTKz
            Y_zz = mm(P[2], rhs_dk)  # (N, 2K): Dzz@wTD | Kzz@wTKz
            return (
                mm(P[0], rhs_d).astype(np.float64, copy=False),
                Y_rz[:, :K].astype(np.float64, copy=False),
                Y_zz[:, :K].astype(np.float64, copy=False),
                mm(P[3], rhs_k).astype(np.float64, copy=False),
                mm(P[4], rhs_k).astype(np.float64, copy=False),
                Y_rz[:, K:].astype(np.float64, copy=False),
                Y_zz[:, K:].astype(np.float64, copy=False),
            )
        t = self._tables
        if t is None:
            raise RuntimeError("table products require cached pair tables")
        return (
            mm(t["Drr"], wTD),
            mm(t["Drz"], wTD),
            mm(t["Dzz"], wTD),
            mm(t["Krr"], wTKr),
            mm(t["Kzr"], wTKr),
            mm(t["Krz"], wTKz),
            mm(t["Kzz"], wTKz),
        )

    @staticmethod
    def _fields_from_products(products) -> tuple[np.ndarray, np.ndarray]:
        """Assemble ``G_D (..., N, 2, 2)`` / ``G_K (..., N, 2)`` from the
        seven contractions, each shaped ``(N, K)`` (K batch columns)."""
        Drr, Drz, Dzz, Krr, Kzr, Krz, Kzz = products
        N, K = Drr.shape
        G_D = np.zeros((K, N, 2, 2))
        G_K = np.zeros((K, N, 2))
        G_D[:, :, 0, 0] = Drr.T
        G_D[:, :, 0, 1] = Drz.T
        G_D[:, :, 1, 0] = G_D[:, :, 0, 1]
        G_D[:, :, 1, 1] = Dzz.T
        G_K[:, :, 0] = (Krr + Krz).T
        G_K[:, :, 1] = (Kzr + Kzz).T
        return G_D, G_K

    def fields_batch(
        self, wTD: np.ndarray, wTKr: np.ndarray, wTKz: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``G_D (B, N, 2, 2)`` / ``G_K (B, N, 2)`` for a batch of
        weighted source vectors of shape ``(B, N)``.

        This is *the* field implementation: the per-state
        :meth:`fields` is the ``B = 1`` slice of the same code.  With
        cached tables each tensor component is one contraction over the
        whole batch (the :class:`~repro.core.batch.BatchedVertexSolver`
        hot path); without them the tensors are re-evaluated on the fly
        in backend-dispatched row blocks sized by the memory budget.
        """
        if self.pair_tables_cached:
            return self._fields_from_products(
                self._table_products(
                    np.ascontiguousarray(wTD.T),
                    np.ascontiguousarray(wTKr.T),
                    np.ascontiguousarray(wTKz.T),
                )
            )
        N = self.N
        B = wTD.shape[0]
        G_D = np.zeros((B, N, 2, 2))
        G_K = np.zeros((B, N, 2))
        # (N, B) column sources for the per-block contractions
        cTD = np.ascontiguousarray(wTD.T)
        cTKr = np.ascontiguousarray(wTKr.T)
        cTKz = np.ascontiguousarray(wTKz.T)

        def eval_rows(i0: int, i1: int) -> None:
            self.backend.field_rows(
                G_D, G_K, self.r, self.z, cTD, cTKr, cTKz, i0, i1
            )

        if self.backend.parallel_for(self._row_blocks(N), eval_rows):
            self.counters["parallel_builds"] += 1
        return G_D, G_K

    def fields(
        self, fields: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compute ``G_D (N, 2, 2)`` and ``G_K (N, 2)`` at all IPs."""
        T_D, T_K = self.beta_sums(fields)
        G_D, G_K = self.fields_batch(
            (self.w * T_D)[None],
            (self.w * T_K[0])[None],
            (self.w * T_K[1])[None],
        )
        return G_D[0], G_K[0]

    def batched_fields(
        self, wTD: np.ndarray, wTKr: np.ndarray, wTKz: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deprecated alias of :meth:`fields_batch` (which no longer
        requires cached pair tables)."""
        warnings.warn(
            "LandauOperator.batched_fields is deprecated; use fields_batch",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.fields_batch(wTD, wTKr, wTKz)

    # ------------------------------------------------------------------
    def species_coefficients(
        self, s_index: int, G_D: np.ndarray, G_K: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-species weak-form coefficients (Algorithm 1 lines 13-16)."""
        s = self.species[s_index]
        ne, nq = self.fs.qweights.shape
        fac_k = self.nu0 * s.charge**2 / s.mass
        fac_d = -self.nu0 * s.charge**2 / s.mass**2
        D_q = (fac_d * G_D).reshape(ne, nq, 2, 2)
        K_q = (fac_k * G_K).reshape(ne, nq, 2)
        return D_q, K_q

    def species_matrix(
        self, s_index: int, G_D: np.ndarray, G_K: np.ndarray
    ) -> sp.csr_matrix:
        """The frozen-coefficient collision matrix ``L_a`` for one species,
        such that ``M df_a/dt = L_a f_a`` (plus field/source terms)."""
        D_q, K_q = self.species_coefficients(s_index, G_D, G_K)
        return assemble_coefficient_operator(
            self.fs,
            D_q,
            K_q,
            structure=self._scatter_for_build(),
            backend=self.backend,
        )

    def _scatter_for_build(self):
        if self._scatter is not None:
            self.counters["structure_reuses"] += 1
        return self._scatter

    def species_data_batch(
        self, G_D: np.ndarray, G_K: np.ndarray
    ) -> np.ndarray:
        """Per-species CSR ``data`` rows for a batch of field sets.

        ``G_D (X, N, 2, 2)`` / ``G_K (X, N, 2)`` hold the fields of ``X``
        independent vertex states; the result is ``(S, X, nnz)`` — the
        collision-matrix data of every (species, vertex) pair, all sharing
        the cached scatter structure's sparsity (wrap rows with
        :attr:`scatter_map` ``.matrix``).  This is *the* species-build
        implementation — :meth:`species_matrices` is its ``X = 1`` slice:
        every species' weak form is the same pair of element integrals
        scaled by per-species constants, so the diffusion and friction
        element blocks are contracted once for the whole batch (through
        :meth:`ExecutionBackend.contract`), scattered once each through
        the cached structure, and the S·X data rows are axpy combinations
        sharing one sparsity.  Requires structure caching.
        """
        sm = self._scatter
        if sm is None:
            raise RuntimeError(
                "batched assembly requires AssemblyOptions.cache_structure"
            )
        fs = self.fs
        ne, nq = fs.qweights.shape
        X = G_D.shape[0]
        w = fs.qweights
        gphys = sm.gphys
        CeD = self.backend.contract(
            "eq,eqad,xeqdc,eqbc->xeab",
            w,
            gphys,
            G_D.reshape(X, ne, nq, 2, 2),
            gphys,
        )
        CeK = self.backend.contract(
            "eq,eqad,xeqd,qb->xeab",
            w,
            gphys,
            G_K.reshape(X, ne, nq, 2),
            fs.B,
        )
        dD = self.backend.scatter_apply(
            sm.T, np.ascontiguousarray(CeD).reshape(X, -1)
        )
        dK = self.backend.scatter_apply(
            sm.T, np.ascontiguousarray(CeK).reshape(X, -1)
        )
        S = len(self.species)
        out = np.empty((S, X, dD.shape[1]))
        for s_idx, s in enumerate(self.species):
            fac_k = self.nu0 * s.charge**2 / s.mass
            fac_d = -self.nu0 * s.charge**2 / s.mass**2
            np.multiply(dD, fac_d, out=out[s_idx])
            out[s_idx] += fac_k * dK
        self.counters["structure_reuses"] += S * X
        return out

    def species_matrices(
        self, G_D: np.ndarray, G_K: np.ndarray
    ) -> list[sp.csr_matrix]:
        """All species' collision matrices for given fields — the
        ``X = 1`` slice of :meth:`species_data_batch` wrapped in the
        cached CSR structure (per-element assembly when structure caching
        is off)."""
        if self._scatter is None:
            return [
                self.species_matrix(a, G_D, G_K)
                for a in range(len(self.species))
            ]
        data = self.species_data_batch(G_D[None], G_K[None])
        return [self._scatter.matrix(data[a, 0]) for a in range(len(self.species))]

    def batched_species_data(
        self, G_D: np.ndarray, G_K: np.ndarray
    ) -> np.ndarray:
        """Deprecated alias of :meth:`species_data_batch`."""
        warnings.warn(
            "LandauOperator.batched_species_data is deprecated; use "
            "species_data_batch",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.species_data_batch(G_D, G_K)

    @property
    def scatter_map(self):
        """The cached element→CSR scatter structure (``None`` when
        structure caching is off)."""
        return self._scatter

    def jacobian(self, fields: list[np.ndarray]) -> list[sp.csr_matrix]:
        """All species' collision matrices about the state ``fields``.

        The multi-species Jacobian is block diagonal (``I_S (x) A_1``
        pattern); this returns the per-species blocks.
        """
        G_D, G_K = self.fields(fields)
        return self.species_matrices(G_D, G_K)

    def apply(self, fields: list[np.ndarray]) -> list[np.ndarray]:
        """The weak-form collision operator applied to the current state:
        ``(psi, C_a(f))`` for each species (nonlinear evaluation)."""
        G_D, G_K = self.fields(fields)
        mats = self.species_matrices(G_D, G_K)
        return [mats[a] @ fields[a] for a in range(len(self.species))]

    # ------------------------------------------------------------------
    @property
    def mass_matrix(self) -> sp.csr_matrix:
        """The (r-weighted) mass matrix, cached."""
        if self._mass is None:
            if self._scatter is not None:
                self._mass = self._scatter_for_build().assemble(
                    element_mass_blocks(self.fs)
                )
            else:
                self._mass = assemble_mass(self.fs)
        return self._mass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LandauOperator(S={len(self.species)}, N={self.N}, "
            f"cached={self.pair_tables_cached})"
        )
