"""Batched vertex solves (the paper's §VI "future work", and the batched
LU data in the artifact repository).

In an operator-split kinetic application every configuration-space vertex
advances its own collision problem on the same velocity mesh with the same
species — thousands of independent solves per GPU.  The paper's harness
dispatches them asynchronously from MPI ranks; the conclusion proposes
*batching* them instead, "to reduce the number of kernel launches".

:class:`BatchedVertexSolver` implements that: one quasi-Newton sweep
advances all B vertex states together.  The O(N^2) pair tables are shared
(they depend only on the mesh), the G-field computation becomes a single
dense matrix-matrix product over the batch instead of B matrix-vector
products, and the per-vertex Jacobian assemblies/factorizations amortize
their Python-level "launch" overheads.  The counters expose exactly the
effect the paper predicts: launch-equivalents drop from O(B * iterations)
to O(iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse.linalg as spla

from ..fem.function_space import FunctionSpace
from .operator import LandauOperator
from .options import AssemblyOptions
from .species import SpeciesSet


@dataclass
class BatchStats:
    """Work accounting for the batched advance."""

    vertices: int = 0
    newton_sweeps: int = 0
    field_launches: int = 0  # batched G-field computations
    factorizations: int = 0
    equivalent_unbatched_launches: int = 0

    @property
    def launch_reduction(self) -> float:
        if self.field_launches == 0:
            return 1.0
        return self.equivalent_unbatched_launches / self.field_launches


class BatchedVertexSolver:
    """Advance many independent vertex states through one implicit step.

    Parameters
    ----------
    fs, species:
        shared velocity mesh and species set.
    nu0:
        collision prefactor.
    rtol, max_newton:
        per-vertex quasi-Newton controls; vertices that converge early are
        frozen (masked out of subsequent sweeps), mirroring warp-level
        early exit.
    """

    def __init__(
        self,
        fs: FunctionSpace,
        species: SpeciesSet,
        nu0: float = 1.0,
        rtol: float = 1e-8,
        max_newton: int = 50,
        options: AssemblyOptions | None = None,
    ):
        self.fs = fs
        self.species = species
        self.op = LandauOperator(fs, species, nu0=nu0, options=options)
        self.rtol = float(rtol)
        self.max_newton = int(max_newton)
        self.stats = BatchStats()

    # ------------------------------------------------------------------
    def _batched_fields(self, states: np.ndarray):
        """G_D / G_K for every vertex at once.

        ``states`` has shape (B, S, ndofs).  Returns ``G_D (B, N, 2, 2)``
        and ``G_K (B, N, 2)`` via batched matmuls on the shared tables.
        """
        op = self.op
        if not op.pair_tables_cached:  # pragma: no cover - large-N fallback
            raise RuntimeError("batched solve requires cached pair tables")
        B, S, n = states.shape
        N = op.N
        fs = self.fs
        # evaluate all (vertex, species) fields at quadrature points at once
        flat = states.reshape(B * S, n)
        full = (fs.dofmap.P @ flat.T).T  # (B*S, n_full)
        cd = full[:, fs.dofmap.cell_nodes]  # (B*S, ne, nb)
        vals = np.einsum("qb,xeb->xeq", fs.B, cd).reshape(B, S, N)
        g_ref = np.einsum("qbd,xeb->xeqd", fs.Dref, cd)
        g_phys = g_ref * fs.inv_jac[None, :, None, :]
        gr = g_phys[..., 0].reshape(B, S, N)
        gz = g_phys[..., 1].reshape(B, S, N)

        z2 = self.species.charges**2
        z2om = z2 / self.species.masses
        T_D = np.einsum("s,bsn->bn", z2, vals)
        T_Kr = np.einsum("s,bsn->bn", z2om, gr)
        T_Kz = np.einsum("s,bsn->bn", z2om, gz)

        # one big GEMM per tensor component over the whole batch
        w = op.w
        return op.batched_fields(w * T_D, w * T_Kr, w * T_Kz)

    # ------------------------------------------------------------------
    def step(self, states: np.ndarray, dt: float) -> np.ndarray:
        """One backward-Euler step for every vertex.

        Parameters
        ----------
        states:
            ``(B, S, ndofs)`` batch of per-vertex, per-species coefficients.
        dt:
            time step (shared across the batch, as in a split application).
        """
        states = np.asarray(states, dtype=float)
        if states.ndim != 3 or states.shape[1] != len(self.species):
            raise ValueError(
                f"states must be (B, {len(self.species)}, ndofs); got {states.shape}"
            )
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        B = states.shape[0]
        M = self.op.mass_matrix
        fn = states.copy()
        fk = states.copy()
        active = np.ones(B, dtype=bool)
        norms = np.maximum(np.linalg.norm(fn, axis=(1, 2)), 1e-300)

        self.stats.vertices += B
        sweeps = 0
        for _ in range(self.max_newton):
            sweeps += 1
            G_D, G_K = self._batched_fields(fk)
            self.stats.field_launches += 1
            self.stats.equivalent_unbatched_launches += int(active.sum())
            delta = np.zeros(B)
            for b in np.nonzero(active)[0]:
                mats = self.op.species_matrices(G_D[b], G_K[b])
                for s_idx, L in enumerate(mats):
                    lu = spla.splu((M - dt * L).tocsc())
                    self.stats.factorizations += 1
                    x = lu.solve(M @ fn[b, s_idx])
                    delta[b] = max(
                        delta[b], np.linalg.norm(x - fk[b, s_idx]) / norms[b]
                    )
                    fk[b, s_idx] = x
            active &= delta >= self.rtol
            if not active.any():
                break
        self.stats.newton_sweeps += sweeps
        return fk
