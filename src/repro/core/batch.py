"""Batched vertex solves (the paper's §VI "future work", and the batched
LU data in the artifact repository).

In an operator-split kinetic application every configuration-space vertex
advances its own collision problem on the same velocity mesh with the same
species — thousands of independent solves per GPU.  The paper's harness
dispatches them asynchronously from MPI ranks; the conclusion proposes
*batching* them instead, "to reduce the number of kernel launches".

:class:`BatchedVertexSolver` implements that: one quasi-Newton sweep
advances all B vertex states together.  The O(N^2) pair tables are shared
(they depend only on the mesh), the G-field computation becomes a single
dense matrix-matrix product over the batch instead of B matrix-vector
products, the per-vertex Jacobian assemblies collapse into two batched
einsum contractions plus two sparse matmuls through the cached scatter
structure, and the per-sweep factorizations share one band symbolic setup
(RCM ordering + CSR→band scatter) via
:class:`~repro.sparse.band.CachedBandSolverFactory` — the batched-LU
pattern of the paper follow-up's batched solvers.  Optional per-vertex
Anderson mixing (``accel_m``) accelerates the linearly converging Picard
sweeps toward the same fixed point.  The counters expose exactly the
effect the paper predicts: launch-equivalents drop from O(B * iterations)
to O(iterations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fem.function_space import FunctionSpace
from ..sparse.band import CachedBandSolverFactory
from .operator import LandauOperator
from .options import AssemblyOptions
from .species import SpeciesSet


@dataclass
class BatchStats:
    """Work accounting for the batched advance.

    ``equivalent_unbatched_launches`` counts, per sweep, the *active*
    (not yet converged) vertices a per-vertex dispatcher would have
    launched a field computation for; ``field_launches`` counts the
    batched launches actually issued.  ``symbolic_setups`` /
    ``symbolic_reuses`` record the band solver's symbolic work: one RCM /
    scatter setup serves every (species, vertex, sweep) factorization of
    a step.  ``accelerated_sweeps`` counts sweeps that applied Anderson
    mixing on top of the plain Picard update.
    """

    vertices: int = 0
    newton_sweeps: int = 0
    field_launches: int = 0  # batched G-field computations
    factorizations: int = 0
    equivalent_unbatched_launches: int = 0
    symbolic_setups: int = 0
    symbolic_reuses: int = 0
    accelerated_sweeps: int = 0

    @property
    def launch_reduction(self) -> float:
        # no launches (e.g. a batch fully shed before work started) means
        # no reduction to report, not a 0/0
        if self.field_launches == 0:
            return 0.0
        return self.equivalent_unbatched_launches / self.field_launches


class BatchedVertexSolver:
    """Advance many independent vertex states through one implicit step.

    Parameters
    ----------
    fs, species:
        shared velocity mesh and species set.
    nu0:
        collision prefactor.
    rtol, max_newton:
        per-vertex quasi-Newton controls; vertices that converge early are
        frozen (masked out of subsequent sweeps), mirroring warp-level
        early exit.
    accel_m:
        Anderson mixing depth for the Picard sweeps (``0`` disables; the
        default ``2`` roughly halves the sweep count at identical fixed
        points — each vertex mixes its own flattened ``(S, ndofs)`` state).
    options:
        assembly configuration; the default (structure caching on) enables
        the batched assembly + shared-symbolic band factorization fast
        path.  With ``cache_structure=False`` the solver falls back to
        per-vertex assembly and SuperLU factorizations.

    After each :meth:`step`, ``last_converged`` holds the per-vertex
    convergence mask and ``last_sweeps`` the sweep count at which each
    vertex froze (callers route non-converged vertices through the
    resilience retry path instead of failing the whole batch).
    """

    def __init__(
        self,
        fs: FunctionSpace,
        species: SpeciesSet,
        nu0: float = 1.0,
        rtol: float = 1e-8,
        max_newton: int = 50,
        accel_m: int = 2,
        options: AssemblyOptions | None = None,
    ):
        self.fs = fs
        self.species = species
        self.op = LandauOperator(fs, species, nu0=nu0, options=options)
        self.rtol = float(rtol)
        self.max_newton = int(max_newton)
        if accel_m < 0:
            raise ValueError(f"accel_m must be >= 0, got {accel_m}")
        self.accel_m = int(accel_m)
        # one symbolic band setup serves every (species, vertex, sweep)
        # factorization — the pattern never changes
        self._factory = CachedBandSolverFactory()
        self.stats = BatchStats()
        self.last_converged: np.ndarray | None = None
        self.last_sweeps: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _batched_fields(self, states: np.ndarray):
        """G_D / G_K for every vertex at once.

        ``states`` has shape (B, S, ndofs).  Returns ``G_D (B, N, 2, 2)``
        and ``G_K (B, N, 2)`` via batched matmuls on the shared tables.
        """
        op = self.op
        B, S, n = states.shape
        N = op.N
        fs = self.fs
        # evaluate all (vertex, species) fields at quadrature points at once
        flat = states.reshape(B * S, n)
        full = (fs.dofmap.P @ flat.T).T  # (B*S, n_full)
        cd = full[:, fs.dofmap.cell_nodes]  # (B*S, ne, nb)
        vals = np.einsum("qb,xeb->xeq", fs.B, cd).reshape(B, S, N)
        g_ref = np.einsum("qbd,xeb->xeqd", fs.Dref, cd)
        g_phys = g_ref * fs.inv_jac[None, :, None, :]
        gr = g_phys[..., 0].reshape(B, S, N)
        gz = g_phys[..., 1].reshape(B, S, N)

        z2 = self.species.charges**2
        z2om = z2 / self.species.masses
        T_D = np.einsum("s,bsn->bn", z2, vals)
        T_Kr = np.einsum("s,bsn->bn", z2om, gr)
        T_Kz = np.einsum("s,bsn->bn", z2om, gz)

        # one big GEMM per tensor component over the whole batch
        w = op.w
        return op.fields_batch(w * T_D, w * T_Kr, w * T_Kz)

    # ------------------------------------------------------------------
    def _solve_active(
        self, fk_active: np.ndarray, Mfn_active: np.ndarray, dt: float
    ) -> np.ndarray:
        """One Picard update for the active vertices.  Returns ``g (X, S, n)``.

        With structure caching the whole batch goes through one batched
        assembly (:meth:`LandauOperator.species_data_batch`) and one
        shared-symbolic batched band LU dispatched to the operator's
        execution backend.  Without it, each (vertex, species) system is
        assembled per element and factored through the same cached band
        factory — one implementation, two granularities, no separate
        legacy solver.
        """
        op = self.op
        M = op.mass_matrix
        X = fk_active.shape[0]
        S = len(self.species)
        G_D, G_K = self._batched_fields(fk_active)
        if op.scatter_map is not None:
            data = op.species_data_batch(G_D, G_K)  # (S, X, nnz)
            # shared pattern: lhs data rows are M.data - dt * L.data directly
            lhs = M.data[None, None, :] - dt * data
            solver = self._factory.factor_batch(
                M, lhs.reshape(S * X, -1), backend=op.backend
            )
            self.stats.factorizations += S * X
            rhs = np.ascontiguousarray(
                Mfn_active.transpose(1, 0, 2).reshape(S * X, -1)
            )
            y = solver.solve_many(rhs)
            return np.ascontiguousarray(
                y.reshape(S, X, -1).transpose(1, 0, 2)
            )
        g = np.empty_like(fk_active)
        for x in range(X):
            mats = op.species_matrices(G_D[x], G_K[x])
            for s_idx, L in enumerate(mats):
                solver = self._factory(M - dt * L)
                self.stats.factorizations += 1
                g[x, s_idx] = solver(Mfn_active[x, s_idx])
        return g

    # ------------------------------------------------------------------
    def step(self, states: np.ndarray, dt: float) -> np.ndarray:
        """One backward-Euler step for every vertex.

        Parameters
        ----------
        states:
            ``(B, S, ndofs)`` batch of per-vertex, per-species coefficients.
        dt:
            time step (shared across the batch, as in a split application).
        """
        states = np.asarray(states, dtype=float)
        if states.ndim != 3 or states.shape[1] != len(self.species):
            raise ValueError(
                f"states must be (B, {len(self.species)}, ndofs); got {states.shape}"
            )
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        B, S, n = states.shape
        op = self.op
        M = op.mass_matrix
        fn = states.copy()
        fk = states.copy()
        active = np.ones(B, dtype=bool)
        converged = np.zeros(B, dtype=bool)
        sweeps_at = np.full(B, self.max_newton, dtype=int)
        norms = np.maximum(np.linalg.norm(fn, axis=(1, 2)), 1e-300)
        # the Picard right-hand side M f^n is sweep-invariant: one spmm
        Mfn = np.ascontiguousarray(
            (M @ fn.reshape(B * S, n).T).T.reshape(B, S, n)
        )

        sym0_setups = self._factory.symbolic_setups
        sym0_reuses = self._factory.symbolic_reuses
        self.stats.vertices += B
        # Anderson history: flattened per-vertex states and Picard images
        hist_x: list[np.ndarray] = []
        hist_g: list[np.ndarray] = []
        sweeps = 0
        for _ in range(self.max_newton):
            sweeps += 1
            idx = np.nonzero(active)[0]
            # frozen vertices are sliced out *before* the field launch —
            # the early-exit mask saves their G_D/G_K recomputation too
            g = self._solve_active(fk[idx], Mfn[idx], dt)
            self.stats.field_launches += 1
            self.stats.equivalent_unbatched_launches += int(idx.size)

            delta = (
                np.linalg.norm(g - fk[idx], axis=2).max(axis=1) / norms[idx]
            )
            done = delta < self.rtol
            just = idx[done]
            converged[just] = True
            sweeps_at[just] = sweeps
            active[just] = False
            fk[just] = g[done]

            still = idx[~done]
            if still.size == 0:
                break
            g_still = g[~done]
            if self.accel_m > 0:
                xk_flat = fk.reshape(B, -1).copy()
                g_flat = np.zeros((B, S * n))
                g_flat[idx] = g.reshape(idx.size, -1)
                hist_x.append(xk_flat)
                hist_g.append(g_flat)
                if len(hist_x) > self.accel_m + 1:
                    hist_x.pop(0)
                    hist_g.pop(0)
                mixed = self._anderson_mix(hist_x, hist_g, still)
                if mixed is not None:
                    fk[still] = mixed.reshape(still.size, S, n)
                    self.stats.accelerated_sweeps += 1
                    continue
            fk[still] = g_still
        self.stats.newton_sweeps += sweeps
        self.stats.symbolic_setups += self._factory.symbolic_setups - sym0_setups
        self.stats.symbolic_reuses += self._factory.symbolic_reuses - sym0_reuses
        self.last_converged = converged
        self.last_sweeps = sweeps_at
        return fk

    # ------------------------------------------------------------------
    def _anderson_mix(
        self,
        hist_x: list[np.ndarray],
        hist_g: list[np.ndarray],
        rows: np.ndarray,
    ) -> np.ndarray | None:
        """Per-vertex Anderson(m) mixing of the Picard iteration.

        Each vertex solves its own tiny least-squares problem (normal
        equations over the residual differences) for the mixing weights;
        returns the mixed iterates ``(len(rows), S*n)`` or ``None`` when
        there is no usable history yet (callers then take the plain
        Picard update).  Ill-conditioned or non-finite mixes fall back to
        the plain update row-wise — acceleration never changes the fixed
        point, only the path to it.
        """
        mk = len(hist_x) - 1
        if mk < 1:
            return None
        R = np.stack([hg[rows] - hx[rows] for hx, hg in zip(hist_x, hist_g)])
        dR = R[1:] - R[:-1]  # (mk, X, D)
        dG = np.stack(
            [hist_g[j + 1][rows] - hist_g[j][rows] for j in range(mk)]
        )
        gram = np.einsum("iad,jad->aij", dR, dR)
        rhs = np.einsum("iad,ad->ai", dR, R[-1])
        # Tikhonov guard keeps near-singular Gram matrices solvable
        trace = np.trace(gram, axis1=1, axis2=2)
        reg = 1e-14 * np.maximum(trace, 1e-300)
        gram = gram + reg[:, None, None] * np.eye(mk)
        try:
            theta = np.linalg.solve(gram, rhs[..., None])[..., 0]
        except np.linalg.LinAlgError:
            return None
        g_last = hist_g[-1][rows]
        mixed = g_last - np.einsum("ai,iad->ad", theta, dG)
        bad = ~np.isfinite(mixed).all(axis=1)
        if bad.any():
            mixed[bad] = g_last[bad]
        return mixed
