"""Single grid vs grid-per-species-group (section III-H).

Species whose thermal velocities are within ~2x of each other can share a
velocity grid; widely separated species force a shared grid to refine across
every scale.  This module provides

* :func:`plan_grids` — cluster species into grid groups by thermal velocity,
* :class:`GridSet` — one function space per group, with the cross-grid
  Landau operator (every field grid integrates over every source grid),
* :func:`grid_cost_table` — the Table I cost accounting (integration
  points, Landau tensor count, equation count) for a given grid plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..amr import landau_mesh
from ..fem.assembly import assemble_coefficient_operator
from ..fem.function_space import FunctionSpace
from .landau_tensor import landau_tensors_cyl
from .species import SpeciesSet


def plan_grids(species: SpeciesSet, max_ratio: float = 2.0) -> list[list[int]]:
    """Cluster species indices into grid groups by thermal velocity.

    Species within ``max_ratio`` of the group's fastest member share a grid
    ("species with similar thermal velocities (say within 2x or more) can,
    and should, share a grid").  Returns groups ordered fastest-first.
    """
    if max_ratio < 1.0:
        raise ValueError(f"max_ratio must be >= 1, got {max_ratio}")
    order = np.argsort(-species.thermal_velocities)
    groups: list[list[int]] = []
    current: list[int] = []
    v_head = None
    for idx in order:
        v = species[int(idx)].thermal_velocity
        if v_head is None or v_head / v <= max_ratio:
            current.append(int(idx))
            v_head = v_head if v_head is not None else v
        else:
            groups.append(current)
            current = [int(idx)]
            v_head = v
    if current:
        groups.append(current)
    return groups


@dataclass
class Grid:
    """One velocity grid and the species living on it."""

    fs: FunctionSpace
    species_indices: list[int]


class GridSet:
    """A set of velocity grids covering all species, with the cross-grid
    Landau operator.

    Each field grid's ``G_D``/``G_K`` fields integrate over the quadrature
    points of *all* grids, so the Landau tensor count is
    ``(sum_g N_g)^2`` regardless of the grouping — which is why many small
    grids lose to a few shared ones (Table I).
    """

    def __init__(
        self,
        species: SpeciesSet,
        groups: list[list[int]] | None = None,
        order: int = 3,
        nu0: float = 1.0,
        mesh_kwargs: dict | None = None,
    ):
        self.species = species
        self.nu0 = float(nu0)
        if groups is None:
            groups = plan_grids(species)
        covered = sorted(i for g in groups for i in g)
        if covered != list(range(len(species))):
            raise ValueError(f"groups must cover each species exactly once: {groups}")
        mesh_kwargs = mesh_kwargs or {}
        self.grids: list[Grid] = []
        for g in groups:
            vths = [species[i].thermal_velocity for i in g]
            mesh = landau_mesh(vths, **mesh_kwargs)
            self.grids.append(Grid(FunctionSpace(mesh, order=order), list(g)))
        # flat quadrature data across grids
        self._r = np.concatenate(
            [g.fs.qpoints[:, :, 0].ravel() for g in self.grids]
        )
        self._z = np.concatenate(
            [g.fs.qpoints[:, :, 1].ravel() for g in self.grids]
        )
        self._w = np.concatenate([g.fs.qweights.ravel() for g in self.grids])
        self._offsets = np.cumsum(
            [0] + [g.fs.n_integration_points for g in self.grids]
        )

    # --- bookkeeping -------------------------------------------------------------
    @property
    def ngrids(self) -> int:
        return len(self.grids)

    @property
    def total_integration_points(self) -> int:
        return int(self._offsets[-1])

    @property
    def landau_tensor_count(self) -> int:
        N = self.total_integration_points
        return N * N

    @property
    def equation_count(self) -> int:
        return sum(g.fs.ndofs * len(g.species_indices) for g in self.grids)

    @property
    def cell_count(self) -> int:
        return sum(g.fs.nelem for g in self.grids)

    def grid_of_species(self, s_index: int) -> int:
        for gi, g in enumerate(self.grids):
            if s_index in g.species_indices:
                return gi
        raise KeyError(s_index)

    # --- operator ----------------------------------------------------------------
    def beta_sums(self, fields: dict[int, np.ndarray]):
        """Global ``T_D (N,)``/``T_K (2, N)`` over the concatenated IPs.

        ``fields`` maps species index -> coefficient vector on its grid.
        """
        N = self.total_integration_points
        T_D = np.zeros(N)
        T_K = np.zeros((2, N))
        for gi, g in enumerate(self.grids):
            lo, hi = self._offsets[gi], self._offsets[gi + 1]
            for si in g.species_indices:
                s = self.species[si]
                x = fields[si]
                z2 = s.charge**2
                T_D[lo:hi] += z2 * g.fs.eval(x).ravel()
                grad = g.fs.eval_grad(x)
                T_K[0, lo:hi] += (z2 / s.mass) * grad[:, :, 0].ravel()
                T_K[1, lo:hi] += (z2 / s.mass) * grad[:, :, 1].ravel()
        return T_D, T_K

    def jacobian(self, fields: dict[int, np.ndarray]) -> dict[int, sp.csr_matrix]:
        """Per-species frozen-coefficient collision matrices (cross-grid)."""
        T_D, T_K = self.beta_sums(fields)
        wTD = self._w * T_D
        wTKr = self._w * T_K[0]
        wTKz = self._w * T_K[1]
        out: dict[int, sp.csr_matrix] = {}
        for gi, g in enumerate(self.grids):
            lo, hi = self._offsets[gi], self._offsets[gi + 1]
            rf, zf = self._r[lo:hi], self._z[lo:hi]
            # integrate over ALL grids' source points
            UD, UK = landau_tensors_cyl(
                rf[:, None], zf[:, None], self._r[None, :], self._z[None, :]
            )
            Ng = hi - lo
            G_D = np.zeros((Ng, 2, 2))
            G_K = np.zeros((Ng, 2))
            G_D[:, 0, 0] = UD[..., 0, 0] @ wTD
            G_D[:, 0, 1] = UD[..., 0, 1] @ wTD
            G_D[:, 1, 0] = G_D[:, 0, 1]
            G_D[:, 1, 1] = UD[..., 1, 1] @ wTD
            G_K[:, 0] = UK[..., 0, 0] @ wTKr + UK[..., 0, 1] @ wTKz
            G_K[:, 1] = UK[..., 1, 0] @ wTKr + UK[..., 1, 1] @ wTKz
            ne, nq = g.fs.qweights.shape
            for si in g.species_indices:
                s = self.species[si]
                fac_k = self.nu0 * s.charge**2 / s.mass
                fac_d = -self.nu0 * s.charge**2 / s.mass**2
                D_q = (fac_d * G_D).reshape(ne, nq, 2, 2)
                K_q = (fac_k * G_K).reshape(ne, nq, 2)
                out[si] = assemble_coefficient_operator(g.fs, D_q, K_q)
        return out


class MultiGridImplicitSolver:
    """Quasi-Newton backward Euler over a :class:`GridSet`.

    The paper lists "adding support for multiple grids for groups of
    species with similar thermal velocities" as future work for PETSc; the
    cross-grid operator above makes it available here.  Each species is
    advanced on its own grid; the frozen-coefficient collision matrices
    couple the grids through the global beta sums.
    """

    def __init__(
        self,
        gridset: GridSet,
        rtol: float = 1e-8,
        atol: float = 1e-14,
        max_newton: int = 50,
    ):
        import scipy.sparse.linalg as spla

        from ..fem.assembly import assemble_mass

        self.gs = gridset
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.max_newton = int(max_newton)
        self._spla = spla
        self._mass = [assemble_mass(g.fs) for g in gridset.grids]
        self.newton_iterations = 0

    def step(self, fields: dict[int, np.ndarray], dt: float) -> dict[int, np.ndarray]:
        """One implicit step of all species (no field/source terms)."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        gs = self.gs
        fn = {i: np.asarray(x, dtype=float) for i, x in fields.items()}
        fk = {i: x.copy() for i, x in fn.items()}
        norms = {i: max(np.linalg.norm(x), self.atol) for i, x in fn.items()}
        converged = False
        for _ in range(self.max_newton):
            L = gs.jacobian(fk)
            self.newton_iterations += 1
            delta = 0.0
            nxt = {}
            for i in fk:
                gi = gs.grid_of_species(i)
                M = self._mass[gi]
                lu = self._spla.splu((M - dt * L[i]).tocsc())
                x = lu.solve(M @ fn[i])
                delta = max(delta, np.linalg.norm(x - fk[i]) / norms[i])
                nxt[i] = x
            fk = nxt
            if delta < self.rtol:
                converged = True
                break
        if not converged:
            raise RuntimeError("multi-grid quasi-Newton did not converge")
        return fk

    def integrate(
        self, fields: dict[int, np.ndarray], dt: float, nsteps: int
    ) -> dict[int, np.ndarray]:
        f = dict(fields)
        for _ in range(nsteps):
            f = self.step(f, dt)
        return f


def grid_cost_table(
    species: SpeciesSet,
    plans: list[list[list[int]]],
    order: int = 3,
    mesh_kwargs: dict | None = None,
) -> list[dict[str, int]]:
    """Table I: cost of the Landau operator vs the number of grids.

    For each grid plan, reports the number of grids, total cells, total
    integration points N, Landau tensor count N^2, and equation count n.
    """
    rows = []
    for plan in plans:
        gs = GridSet(species, groups=plan, order=order, mesh_kwargs=mesh_kwargs)
        rows.append(
            {
                "grids": gs.ngrids,
                "cells": gs.cell_count,
                "integration_points": gs.total_integration_points,
                "landau_tensors": gs.landau_tensor_count,
                "equations": gs.equation_count,
            }
        )
    return rows
