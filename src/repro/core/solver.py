"""Implicit time advance of the collision operator with a quasi-Newton solve.

The full linearization of the Landau operator is dense; as in the paper the
practical approximate Jacobian freezes ``D`` and ``K`` at the current state,
making the operator *linear in each species* per iteration (section III):

    (M + dt a_s A - theta dt L_s(f^k)) f_s^{k+1} =
        M f_s^n + (1-theta) dt (L_s(f^k) f_s^n - a_s A f_s^n) + dt b_s

with the z-advection operator ``A`` (E-field acceleration,
``a_s = z_s E~ / m_s``) and source projection ``b_s``.  The iteration is a
quasi-Newton / Picard scheme that converges linearly, is robust, and matches
the production solver in XGC.  The per-species blocks are independent — the
multi-species Jacobian is block diagonal — which the linear solver exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..fem.assembly import assemble_z_advection
from .operator import LandauOperator


@dataclass
class NewtonStats:
    """Work counters — the throughput figure of merit is Newton iterations.

    Besides the raw work counters, the stats record the assembly fast
    path's activity (``structure_reuses`` counts matrix builds served by
    the cached scatter structure, ``parallel_builds`` counts thread-pool
    dispatched table/field builds) and the resilience layer's:
    ``step_rejections``/``dt_backoffs`` count retried steps,
    ``backend_solves`` maps each linear-solver backend name to the number
    of right-hand sides it served (populated by
    :class:`repro.resilience.fallback.FallbackSolverChain`), and
    ``events`` is a log of structured ``{"kind": ..., ...}`` dicts
    (fallbacks, rejections, checkpoints).

    ``events`` and ``residual_history`` are *bounded rings*: long quench
    runs merge thousands of substep stats, so only the most recent
    ``max_events``/``max_residuals`` entries are kept and
    ``events_dropped``/``residuals_dropped`` count the evicted ones.
    """

    time_steps: int = 0
    newton_iterations: int = 0
    jacobian_builds: int = 0
    factorizations: int = 0
    solves: int = 0
    converged_last: bool = True
    residual_history: list = field(default_factory=list)
    step_rejections: int = 0
    dt_backoffs: int = 0
    backend_solves: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    structure_reuses: int = 0
    parallel_builds: int = 0
    max_events: int = 256
    max_residuals: int = 512
    events_dropped: int = 0
    residuals_dropped: int = 0

    def _trim(self) -> None:
        excess = len(self.events) - self.max_events
        if excess > 0:
            del self.events[:excess]
            self.events_dropped += excess
        excess = len(self.residual_history) - self.max_residuals
        if excess > 0:
            del self.residual_history[:excess]
            self.residuals_dropped += excess

    def record_event(self, kind: str, **info) -> None:
        self.events.append({"kind": kind, **info})
        self._trim()

    def record_residual(self, value: float) -> None:
        self.residual_history.append(value)
        self._trim()

    def merge(self, other: "NewtonStats") -> None:
        self.time_steps += other.time_steps
        self.newton_iterations += other.newton_iterations
        self.jacobian_builds += other.jacobian_builds
        self.factorizations += other.factorizations
        self.solves += other.solves
        self.converged_last = self.converged_last and other.converged_last
        self.residual_history.extend(other.residual_history)
        self.step_rejections += other.step_rejections
        self.dt_backoffs += other.dt_backoffs
        self.structure_reuses += other.structure_reuses
        self.parallel_builds += other.parallel_builds
        for name, count in other.backend_solves.items():
            self.backend_solves[name] = self.backend_solves.get(name, 0) + count
        self.events.extend(other.events)
        self.events_dropped += other.events_dropped
        self.residuals_dropped += other.residuals_dropped
        self._trim()


def _splu_factory(A: sp.csr_matrix) -> Callable[[np.ndarray], np.ndarray]:
    lu = spla.splu(A.tocsc())
    return lu.solve


class ImplicitLandauSolver:
    """Backward-Euler / theta-method integrator for eq. (1) on one grid.

    Parameters
    ----------
    operator:
        the Landau collision operator (holds the species and the space).
    theta:
        1.0 = backward Euler (default), 0.5 = Crank-Nicolson.
    linear_solver:
        ``"splu"`` (scipy sparse LU) or ``"band"`` (the custom RCM band
        solver of section III-G), or a callable ``A -> solve``.
    rtol, atol, max_newton:
        quasi-Newton stopping controls.
    """

    def __init__(
        self,
        operator: LandauOperator,
        theta: float = 1.0,
        linear_solver: str | Callable = "splu",
        rtol: float = 1e-9,
        atol: float = 1e-14,
        max_newton: int = 50,
    ):
        if not (0.0 < theta <= 1.0):
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self.op = operator
        self.fs = operator.fs
        self.species = operator.species
        self.theta = float(theta)
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.max_newton = int(max_newton)
        self.stats = NewtonStats()
        self._last_step_newton = 0

        if callable(linear_solver):
            self._factor = linear_solver
            # a FallbackSolverChain built without a stats sink reports
            # backend usage into this solver's stats
            if hasattr(linear_solver, "bind") and getattr(linear_solver, "stats", 0) is None:
                linear_solver.bind(self.stats)
        elif linear_solver == "splu":
            self._factor = _splu_factory
        elif linear_solver == "band":
            if getattr(operator, "options", None) is not None and (
                operator.options.cache_structure
            ):
                # reuse the RCM ordering and band symbolic setup between
                # refactorizations — the Jacobian sparsity is fixed
                from ..sparse.band import CachedBandSolverFactory

                self._factor = CachedBandSolverFactory()
            else:
                from ..sparse.band import band_solver_factory

                self._factor = band_solver_factory
        elif linear_solver == "fallback":
            from ..resilience.fallback import FallbackSolverChain

            self._factor = FallbackSolverChain(stats=self.stats)
        else:
            raise ValueError(f"unknown linear solver {linear_solver!r}")

        self.M = operator.mass_matrix
        self._A_adv: sp.csr_matrix | None = None

    @property
    def advection(self) -> sp.csr_matrix:
        if self._A_adv is None:
            self._A_adv = assemble_z_advection(self.fs)
        return self._A_adv

    # ------------------------------------------------------------------
    def step(
        self,
        fields: list[np.ndarray],
        dt: float,
        efield: float = 0.0,
        sources: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Advance all species by one implicit step of size ``dt``.

        ``sources`` optionally holds per-species weak-form source vectors
        ``b_s = (psi, S_s)`` (already reduced to free dofs).
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        S = len(self.species)
        if len(fields) != S:
            raise ValueError(f"expected {S} fields, got {len(fields)}")
        fn = [np.asarray(x, dtype=float) for x in fields]
        fk = [x.copy() for x in fn]
        theta = self.theta
        M = self.M
        A = self.advection if efield != 0.0 else None

        step_stats = NewtonStats(time_steps=1)
        op_counters0 = dict(getattr(self.op, "counters", {}))
        norms0 = [max(np.linalg.norm(x), self.atol) for x in fn]
        converged = False
        for _it in range(self.max_newton):
            if theta == 1.0:
                f_lin = fk
            else:
                # freeze D/K at the theta-weighted state so the theta method
                # keeps its formal order (coefficients at the midpoint for
                # Crank-Nicolson)
                f_lin = [
                    theta * fk[s] + (1.0 - theta) * fn[s] for s in range(S)
                ]
            L = self.op.jacobian(f_lin)
            step_stats.jacobian_builds += 1
            step_stats.newton_iterations += 1
            delta = 0.0
            fk1 = []
            for s_idx, s in enumerate(self.species):
                lhs = M - theta * dt * L[s_idx]
                rhs = M @ fn[s_idx]
                if theta < 1.0:
                    rhs = rhs + (1.0 - theta) * dt * (L[s_idx] @ fn[s_idx])
                if A is not None:
                    a_s = s.charge * efield / s.mass
                    lhs = lhs + theta * dt * a_s * A
                    if theta < 1.0:
                        rhs = rhs - (1.0 - theta) * dt * a_s * (A @ fn[s_idx])
                if sources is not None and sources[s_idx] is not None:
                    rhs = rhs + dt * sources[s_idx]
                solve = self._factor(lhs.tocsr())
                step_stats.factorizations += 1
                x = solve(rhs)
                step_stats.solves += 1
                delta = max(
                    delta, np.linalg.norm(x - fk[s_idx]) / norms0[s_idx]
                )
                fk1.append(x)
            fk = fk1
            step_stats.record_residual(delta)
            if not np.isfinite(delta):
                # a NaN/Inf residual never recovers under a stationary
                # iteration — stop burning Newton iterations and let the
                # caller's guard/controller handle the rejection
                break
            if delta < self.rtol:
                converged = True
                break
        step_stats.converged_last = converged
        op_counters = getattr(self.op, "counters", {})
        step_stats.structure_reuses = op_counters.get(
            "structure_reuses", 0
        ) - op_counters0.get("structure_reuses", 0)
        step_stats.parallel_builds = op_counters.get(
            "parallel_builds", 0
        ) - op_counters0.get("parallel_builds", 0)
        self.stats.merge(step_stats)
        # the long-lived stats expose the *last* step's convergence state
        # and residual trace (merge ANDs/extends, which is right for
        # combining sibling stats but not for "how did the last step go")
        self.stats.converged_last = converged
        self.stats.residual_history = step_stats.residual_history
        self._last_step_newton = step_stats.newton_iterations
        return fk

    # ------------------------------------------------------------------
    def integrate(
        self,
        fields: list[np.ndarray],
        dt: float,
        nsteps: int,
        efield: float = 0.0,
        sources: list[np.ndarray] | None = None,
        callback: Callable | None = None,
    ) -> list[np.ndarray]:
        """Run ``nsteps`` implicit steps; ``callback(step, t, fields)``."""
        f = [np.asarray(x, dtype=float) for x in fields]
        for k in range(nsteps):
            f = self.step(f, dt, efield=efield, sources=sources)
            if callback is not None:
                callback(k + 1, (k + 1) * dt, f)
        return f

    # ------------------------------------------------------------------
    def advance(
        self,
        fields: list[np.ndarray],
        t_final: float,
        controller,
        *,
        t0: float = 0.0,
        efield: float = 0.0,
        sources: list[np.ndarray] | None = None,
        guard=None,
        callback: Callable | None = None,
    ) -> tuple[list[np.ndarray], float]:
        """Advance from ``t0`` to ``t_final`` with adaptive retry/backoff.

        The resilient replacement for a fixed-``dt`` loop: each substep
        takes the controller's current ``dt`` (clipped to land exactly on
        ``t_final``); on quasi-Newton non-convergence, a tripped
        :class:`~repro.resilience.guards.StepGuard`, or a recoverable
        linear-algebra failure, the pre-step state is restored, the
        controller backs ``dt`` off (``controller.on_reject``, which
        raises :class:`~repro.resilience.exceptions.SolveFailure` once its
        budget is spent) and the substep is retried.  After a streak of
        easy accepts the controller re-grows ``dt``.

        Parameters
        ----------
        controller:
            a :class:`repro.resilience.controller.TimeStepController`.
        guard:
            optional :class:`repro.resilience.guards.StepGuard`; checked
            on every accepted substep.
        callback:
            ``callback(t, fields)`` after each accepted substep.

        Returns the advanced fields and the reached time (``== t_final``).
        """
        from ..resilience.exceptions import RECOVERABLE_ERRORS, StepRejected

        f = [np.asarray(x, dtype=float) for x in fields]
        t = float(t0)
        span = abs(t_final - t0)
        eps = 1e-12 * max(1.0, span, abs(t_final))
        while t < t_final - eps:
            dt = min(controller.dt, t_final - t)
            reference = guard.reference(f) if guard is not None else None
            try:
                f_new = self.step(f, dt, efield=efield, sources=sources)
                if not self.stats.converged_last:
                    raise StepRejected(
                        "quasi-Newton iteration did not converge",
                        diagnostics={
                            "dt": dt,
                            "t": t,
                            "newton_iterations": self._last_step_newton,
                            "residual": (
                                self.stats.residual_history[-1]
                                if self.stats.residual_history
                                else None
                            ),
                        },
                    )
                if guard is not None:
                    guard.check(
                        f_new,
                        reference,
                        dt=dt,
                        efield=efield,
                        has_sources=sources is not None,
                    )
            except RECOVERABLE_ERRORS as err:
                self.stats.step_rejections += 1
                diag = getattr(err, "diagnostics", {})
                self.stats.record_event(
                    "step_rejected",
                    t=t,
                    dt=dt,
                    reason=f"{type(err).__name__}: {err}",
                    **{k: v for k, v in diag.items() if k in ("guard", "species")},
                )
                controller.on_reject(reason=type(err).__name__)
                self.stats.dt_backoffs += 1
                continue
            t += dt
            f = f_new
            controller.on_accept(self._last_step_newton)
            if callback is not None:
                callback(t, f)
        return f, t
