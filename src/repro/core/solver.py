"""Implicit time advance of the collision operator with a quasi-Newton solve.

The full linearization of the Landau operator is dense; as in the paper the
practical approximate Jacobian freezes ``D`` and ``K`` at the current state,
making the operator *linear in each species* per iteration (section III):

    (M + dt a_s A - theta dt L_s(f^k)) f_s^{k+1} =
        M f_s^n + (1-theta) dt (L_s(f^k) f_s^n - a_s A f_s^n) + dt b_s

with the z-advection operator ``A`` (E-field acceleration,
``a_s = z_s E~ / m_s``) and source projection ``b_s``.  The iteration is a
quasi-Newton / Picard scheme that converges linearly, is robust, and matches
the production solver in XGC.  The per-species blocks are independent — the
multi-species Jacobian is block diagonal — which the linear solver exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..fem.assembly import assemble_z_advection
from .operator import LandauOperator


@dataclass
class NewtonStats:
    """Work counters — the throughput figure of merit is Newton iterations."""

    time_steps: int = 0
    newton_iterations: int = 0
    jacobian_builds: int = 0
    factorizations: int = 0
    solves: int = 0
    converged_last: bool = True
    residual_history: list = field(default_factory=list)

    def merge(self, other: "NewtonStats") -> None:
        self.time_steps += other.time_steps
        self.newton_iterations += other.newton_iterations
        self.jacobian_builds += other.jacobian_builds
        self.factorizations += other.factorizations
        self.solves += other.solves


def _splu_factory(A: sp.csr_matrix) -> Callable[[np.ndarray], np.ndarray]:
    lu = spla.splu(A.tocsc())
    return lu.solve


class ImplicitLandauSolver:
    """Backward-Euler / theta-method integrator for eq. (1) on one grid.

    Parameters
    ----------
    operator:
        the Landau collision operator (holds the species and the space).
    theta:
        1.0 = backward Euler (default), 0.5 = Crank-Nicolson.
    linear_solver:
        ``"splu"`` (scipy sparse LU) or ``"band"`` (the custom RCM band
        solver of section III-G), or a callable ``A -> solve``.
    rtol, atol, max_newton:
        quasi-Newton stopping controls.
    """

    def __init__(
        self,
        operator: LandauOperator,
        theta: float = 1.0,
        linear_solver: str | Callable = "splu",
        rtol: float = 1e-9,
        atol: float = 1e-14,
        max_newton: int = 50,
    ):
        if not (0.0 < theta <= 1.0):
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self.op = operator
        self.fs = operator.fs
        self.species = operator.species
        self.theta = float(theta)
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.max_newton = int(max_newton)
        self.stats = NewtonStats()

        if callable(linear_solver):
            self._factor = linear_solver
        elif linear_solver == "splu":
            self._factor = _splu_factory
        elif linear_solver == "band":
            from ..sparse.band import band_solver_factory

            self._factor = band_solver_factory
        else:
            raise ValueError(f"unknown linear solver {linear_solver!r}")

        self.M = operator.mass_matrix
        self._A_adv: sp.csr_matrix | None = None

    @property
    def advection(self) -> sp.csr_matrix:
        if self._A_adv is None:
            self._A_adv = assemble_z_advection(self.fs)
        return self._A_adv

    # ------------------------------------------------------------------
    def step(
        self,
        fields: list[np.ndarray],
        dt: float,
        efield: float = 0.0,
        sources: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Advance all species by one implicit step of size ``dt``.

        ``sources`` optionally holds per-species weak-form source vectors
        ``b_s = (psi, S_s)`` (already reduced to free dofs).
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        S = len(self.species)
        if len(fields) != S:
            raise ValueError(f"expected {S} fields, got {len(fields)}")
        fn = [np.asarray(x, dtype=float) for x in fields]
        fk = [x.copy() for x in fn]
        theta = self.theta
        M = self.M
        A = self.advection if efield != 0.0 else None

        step_stats = NewtonStats(time_steps=1)
        norms0 = [max(np.linalg.norm(x), self.atol) for x in fn]
        converged = False
        for _it in range(self.max_newton):
            if theta == 1.0:
                f_lin = fk
            else:
                # freeze D/K at the theta-weighted state so the theta method
                # keeps its formal order (coefficients at the midpoint for
                # Crank-Nicolson)
                f_lin = [
                    theta * fk[s] + (1.0 - theta) * fn[s] for s in range(S)
                ]
            L = self.op.jacobian(f_lin)
            step_stats.jacobian_builds += 1
            step_stats.newton_iterations += 1
            delta = 0.0
            fk1 = []
            for s_idx, s in enumerate(self.species):
                lhs = M - theta * dt * L[s_idx]
                rhs = M @ fn[s_idx]
                if theta < 1.0:
                    rhs = rhs + (1.0 - theta) * dt * (L[s_idx] @ fn[s_idx])
                if A is not None:
                    a_s = s.charge * efield / s.mass
                    lhs = lhs + theta * dt * a_s * A
                    if theta < 1.0:
                        rhs = rhs - (1.0 - theta) * dt * a_s * (A @ fn[s_idx])
                if sources is not None and sources[s_idx] is not None:
                    rhs = rhs + dt * sources[s_idx]
                solve = self._factor(lhs.tocsr())
                step_stats.factorizations += 1
                x = solve(rhs)
                step_stats.solves += 1
                delta = max(
                    delta, np.linalg.norm(x - fk[s_idx]) / norms0[s_idx]
                )
                fk1.append(x)
            fk = fk1
            step_stats.residual_history.append(delta)
            if delta < self.rtol:
                converged = True
                break
        step_stats.converged_last = converged
        self.stats.merge(step_stats)
        self.stats.converged_last = converged
        self.stats.residual_history = step_stats.residual_history
        return fk

    # ------------------------------------------------------------------
    def integrate(
        self,
        fields: list[np.ndarray],
        dt: float,
        nsteps: int,
        efield: float = 0.0,
        sources: list[np.ndarray] | None = None,
        callback: Callable | None = None,
    ) -> list[np.ndarray]:
        """Run ``nsteps`` implicit steps; ``callback(step, t, fields)``."""
        f = [np.asarray(x, dtype=float) for x in fields]
        for k in range(nsteps):
            f = self.step(f, dt, efield=efield, sources=sources)
            if callback is not None:
                callback(k + 1, (k + 1) * dt, f)
        return f
