"""The Kokkos version of the Landau Jacobian kernel (section III-D).

Same mathematics as :mod:`repro.core.kernel_cuda`, expressed through the
Kokkos hierarchical-parallelism API: one element per league member, the
team dimension over integration points, and the inner integral reduced
over a ThreadVectorRange with ``vector_reduce`` (Kokkos' parallel_reduce on
a small struct of G components) instead of the hand-rolled warp shuffles.
Kokkos' variable-length team scratch replaces the fixed-size CUDA shared
buffers.

Results are identical; the backend's ``kernel_overhead`` (and, for the
OpenMP space, the device's vectorization efficiency) is what separates the
performance of the two versions in the model.
"""

from __future__ import annotations

import numpy as np

from ..fem.function_space import FunctionSpace
from ..kokkos.api import TeamMember, TeamPolicy, parallel_for
from ..kokkos.backends import KokkosBackend, KOKKOS_CUDA
from .kernel_cuda import (
    ACCUM_FMA,
    ACCUM_MUL,
    BETA_FMA_PER_SPECIES,
    TENSOR_ADD,
    TENSOR_FMA,
    TENSOR_MUL,
    TENSOR_SPECIAL,
    FieldData,
    KernelData,
)
from .landau_tensor import landau_tensors_cyl
from .species import SpeciesSet


class KokkosLandauJacobian:
    """Driver for the Kokkos-language Landau Jacobian."""

    def __init__(
        self,
        fs: FunctionSpace,
        species: SpeciesSet,
        backend: KokkosBackend = KOKKOS_CUDA,
        nu0: float = 1.0,
        vector_length: int | None = None,
    ):
        self.fs = fs
        self.species = species
        self.backend = backend
        self.nu0 = float(nu0)
        self.kd = KernelData.build(fs, species)
        if vector_length is None:
            if backend.maps_to_blocks:
                vector_length = 1
                while vector_length * 2 * self.kd.nq <= 256:
                    vector_length *= 2
            else:
                vector_length = backend.device.warp_size  # SIMD lanes
        self.policy = TeamPolicy(
            league_size=self.kd.nelem,
            team_size=self.kd.nq,
            vector_length=vector_length,
        )

    def build(self, fields: list[np.ndarray]) -> np.ndarray:
        """Dispatch the league; returns dense (S, n_free, n_free) blocks."""
        kd = self.kd
        fd = FieldData.build(self.fs, fields)
        S = kd.charges.size
        nu0 = self.nu0
        out = np.zeros((S, kd.n_free, kd.n_free))
        nq, nb, N = kd.nq, kd.nb, kd.N

        def functor(member: TeamMember) -> None:
            e = member.league_rank
            tb = member.tb
            chunk = member.vector_length
            gi0 = e * nq
            ri = kd.r[gi0 : gi0 + nq]
            zi = kd.z[gi0 : gi0 + nq]
            wi = kd.w[gi0 : gi0 + nq]
            tb.global_read(3 * nq)
            z2 = kd.charges**2
            z2om = z2 / kd.masses

            # Kokkos scratch pad for the staged beta terms of each pass
            member.team_scratch(3 + 3 * S, min(chunk, N))
            G_K = np.zeros((nq, 2))
            G_D = np.zeros((nq, 2, 2))
            for j0 in range(0, N, chunk):
                j1 = min(j0 + chunk, N)
                m = j1 - j0
                rj, zj, wj = kd.r[j0:j1], kd.z[j0:j1], kd.w[j0:j1]
                fj = fd.f[:, j0:j1]
                dfj = fd.df[:, :, j0:j1]
                tb.global_read((3 + 3 * S) * m)
                tb.shared_write((3 + 3 * S) * m)
                member.team_barrier()

                UD, UK = landau_tensors_cyl(
                    ri[:, None], zi[:, None], rj[None, :], zj[None, :]
                )
                tb.count(
                    fma=TENSOR_FMA * nq * m,
                    mul=TENSOR_MUL * nq * m,
                    add=TENSOR_ADD * nq * m,
                    special=TENSOR_SPECIAL * nq * m,
                )
                tb.shared_read((3 + 3 * S) * m)

                T_D = z2 @ fj
                T_K = np.einsum("s,dsm->dm", z2om, dfj)
                tb.count(fma=BETA_FMA_PER_SPECIES * S * nq * m)

                # the vector-range reduction: Kokkos' parallel_reduce over a
                # G-struct; the lane sum happens here instead of at the end
                gk_part = np.einsum("imxy,ym->imx", UK, wj * T_K)
                gd_part = np.einsum("imxy,m->imxy", UD, wj * T_D)
                G_K += member.vector_reduce(gk_part, axis=1)
                G_D += member.vector_reduce(gd_part, axis=1)
                tb.count(fma=ACCUM_FMA * nq * m, mul=ACCUM_MUL * nq * m)
            member.team_barrier()

            fac_k = nu0 * z2om
            fac_d = -nu0 * z2 / kd.masses**2
            KK = fac_k[:, None, None] * G_K[None] * wi[None, :, None]
            DD = fac_d[:, None, None, None] * G_D[None] * wi[None, :, None, None]
            tb.count(mul=2 * S * nq * 6)
            tb.shared_write(S * nq * 6)
            member.team_barrier()

            invJ = kd.inv_jac[e]
            gphys = kd.Dref * invJ[None, None, :]
            tb.count(mul=nq * nb * 2)
            C = np.einsum("iax,sixy,iby->sab", gphys, DD, gphys, optimize=True)
            C += np.einsum("iax,six,ib->sab", gphys, KK, kd.B, optimize=True)
            tb.count(fma=S * nq * nb * nb * 6, mul=S * nq * nb * nb)
            tb.shared_read(S * nq * nb * nb * 3)

            Pe = kd.elem_P[e]
            tgt = kd.elem_targets[e]
            Cfree = np.einsum("ak,sab,bl->skl", Pe, C, Pe, optimize=True)
            tb.count(fma=2 * S * nb * nb * Pe.shape[1])
            tb.atomic_add(out, np.ix_(range(S), tgt, tgt), Cfree)

        parallel_for(self.policy, functor, self.backend)
        return out
