"""The Kokkos version of the Landau Jacobian kernel (section III-D).

Same mathematics as :mod:`repro.core.kernel_cuda` — both are mappings of
the single kernel specification in :mod:`repro.backend.kernel_spec` —
expressed through the Kokkos hierarchical-parallelism API: one element per
league member, the team dimension over integration points, and the inner
integral reduced over a ThreadVectorRange with ``vector_reduce`` (Kokkos'
parallel_reduce on a small struct of G components) instead of the
hand-rolled warp shuffles.  Kokkos' variable-length team scratch replaces
the fixed-size CUDA shared buffers.

Results are identical; the backend's ``kernel_overhead`` (and, for the
OpenMP space, the device's vectorization efficiency) is what separates the
performance of the two versions in the model.
"""

from __future__ import annotations

import numpy as np

from ..fem.function_space import FunctionSpace
from ..kokkos.api import TeamMember, TeamPolicy, parallel_for
from ..kokkos.backends import KokkosBackend, KOKKOS_CUDA
from .kernel_cuda import FieldData, KernelData, KernelMapping, element_jacobian
from .species import SpeciesSet


class KokkosTeamMapping(KernelMapping):
    """The Kokkos mapping of the shared kernel spec (section III-C).

    The inner integral strides in chunks of the vector length; a
    variable-length team-scratch pad stages each chunk's beta terms; lane
    partials are combined *inside* the chunk loop by ``vector_reduce``
    (Kokkos' reducer hides the warp-shuffle butterfly), so finalizing the
    integrals needs only a team barrier; no shared-memory replay precedes
    the transform.
    """

    def __init__(self, member: TeamMember):
        self.member = member
        self.tb = member.tb
        self.chunk = member.vector_length

    def stage_prologue(self, S: int, N: int) -> None:
        # Kokkos scratch pad for the staged beta terms of each pass
        self.member.team_scratch(3 + 3 * S, min(self.chunk, N))

    def barrier(self) -> None:
        self.member.team_barrier()

    def reduce_chunk(self, UK, UD, wj, T_K, T_D):
        # the vector-range reduction: Kokkos' parallel_reduce over a
        # G-struct; the lane sum happens here instead of at the end
        gk_part = np.einsum("imxy,ym->imx", UK, wj * T_K)
        gd_part = np.einsum("imxy,m->imxy", UD, wj * T_D)
        gk = self.member.vector_reduce(gk_part, axis=1)
        gd = self.member.vector_reduce(gd_part, axis=1)
        return gk, gd

    def finalize_integrals(self, nq: int) -> None:
        self.member.team_barrier()


class KokkosLandauJacobian:
    """Driver for the Kokkos-language Landau Jacobian."""

    def __init__(
        self,
        fs: FunctionSpace,
        species: SpeciesSet,
        backend: KokkosBackend = KOKKOS_CUDA,
        nu0: float = 1.0,
        vector_length: int | None = None,
    ):
        self.fs = fs
        self.species = species
        self.backend = backend
        self.nu0 = float(nu0)
        self.kd = KernelData.build(fs, species)
        if vector_length is None:
            if backend.maps_to_blocks:
                vector_length = 1
                while vector_length * 2 * self.kd.nq <= 256:
                    vector_length *= 2
            else:
                vector_length = backend.device.warp_size  # SIMD lanes
        self.policy = TeamPolicy(
            league_size=self.kd.nelem,
            team_size=self.kd.nq,
            vector_length=vector_length,
        )

    def build(self, fields: list[np.ndarray]) -> np.ndarray:
        """Dispatch the league; returns dense (S, n_free, n_free) blocks."""
        kd = self.kd
        fd = FieldData.build(self.fs, fields)
        S = kd.charges.size
        nu0 = self.nu0
        out = np.zeros((S, kd.n_free, kd.n_free))

        def functor(member: TeamMember) -> None:
            element_jacobian(
                KokkosTeamMapping(member), member.league_rank, kd, fd, nu0, out
            )

        parallel_for(self.policy, functor, self.backend)
        return out
