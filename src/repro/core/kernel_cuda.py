"""Algorithm 1: the Landau Jacobian kernel in the CUDA programming model.

One element per thread block (SM); the y thread dimension indexes the
element's integration points; the x dimension strides the inner integral
over all N global integration points in chunks, with the chunk's
structure-of-arrays data (r, z, w, f, df) prefetched into shared memory;
per-pair Landau tensors live in registers; partial integrals are combined
with warp-shuffle reductions; all threads then transform to the global
basis and assemble the element matrix with atomic adds — including the
interpolation of constrained (hanging) vertices to their up-to-four target
degrees of freedom.

The kernel body itself — data staging, tensor evaluation, beta sums,
integral accumulation, transform & assemble — is the shared specification
in :mod:`repro.backend.kernel_spec`; this module contributes only the
CUDA *mapping*: x-dimension chunking, ``__syncthreads`` barriers, the
hand-rolled warp-shuffle butterfly that combines lane partials, and the
shared-memory replay of the staged KK/DD coefficients by every basis row.

Execution uses :class:`repro.gpu.machine.CudaMachine` (SIMT with vectorized
lanes), so the result is identical to the CPU reference up to floating-
point reassociation, while every instruction and byte is counted.  The
per-pair instruction mix constants (re-exported from the kernel spec)
describe a production ``LandauTensor2D`` (polynomial elliptic-integral
approximations as in PETSc); they are the simulator's stand-in for
counting the real device instructions and feed the Table IV analysis.
"""

from __future__ import annotations

import numpy as np

from ..backend.kernel_spec import (  # noqa: F401  (compat re-exports)
    ACCUM_FMA,
    ACCUM_MUL,
    BETA_FMA_PER_SPECIES,
    TENSOR_ADD,
    TENSOR_FMA,
    TENSOR_MUL,
    TENSOR_SPECIAL,
    FieldData,
    KernelData,
    KernelMapping,
    element_jacobian,
)
from ..fem.function_space import FunctionSpace
from ..gpu.machine import CudaMachine, ThreadBlock
from .species import SpeciesSet


class CudaWarpMapping(KernelMapping):
    """The raw-CUDA mapping of the shared kernel spec (section III-B).

    The inner integral strides in chunks of the block's x dimension; lane
    partials are accumulated in registers and combined at the end with an
    explicit warp-shuffle butterfly (log2(dim_x) rounds over the 6 unique
    G components); the staged per-species coefficients are re-read from
    shared memory by every basis row during the transform.
    """

    def __init__(self, tb: ThreadBlock):
        self.tb = tb
        self.chunk = tb.dim_x

    def barrier(self) -> None:
        self.tb.syncthreads()

    def reduce_chunk(self, UK, UD, wj, T_K, T_D):
        # lanes are vectorized in the simulator: the einsum sums the chunk
        # axis directly, matching the in-register lane accumulation
        wTD = wj * T_D
        gk = np.einsum("imxy,ym->ix", UK, wj * T_K)
        gd = np.einsum("imxy,m->ixy", UD, wTD)
        return gk, gd

    def finalize_integrals(self, nq: int) -> None:
        # warp-shuffle reduction of the x-partials (Alg. 1 line 12); the
        # simulator accumulated lanes in-line, so only the butterfly
        # rounds are counted
        tb = self.tb
        rounds = max(int(np.ceil(np.log2(tb.dim_x))), 0) if tb.dim_x > 1 else 0
        tb.counters.warp_shuffles += rounds * nq * 6  # 6 unique G components
        tb.counters.add += rounds * nq * 6
        tb.syncthreads()

    def pre_transform_reads(self, S: int, nq: int, nb: int) -> None:
        self.tb.shared_read(S * nq * 6 * nb)  # every basis row consumes KK/DD


def landau_jacobian_kernel(
    tb: ThreadBlock,
    e: int,
    kd: KernelData,
    fd: FieldData,
    nu0: float,
    out: np.ndarray,
) -> None:
    """Build one element's Jacobian contribution (Algorithm 1) on one SM.

    ``out`` is the global (S, n_free, n_free) matrix accumulated with
    atomic adds.
    """
    element_jacobian(CudaWarpMapping(tb), e, kd, fd, nu0, out)


def landau_mass_kernel(
    tb: ThreadBlock,
    e: int,
    kd: KernelData,
    shift: float,
    out: np.ndarray,
) -> None:
    """The scaled mass-matrix kernel: Algorithm 1 reduced to
    ``C <- Transform&Assemble(w[gi]*s, 0, 0, B, 0)`` (section V-A1)."""
    nq, nb = kd.nq, kd.nb
    S = kd.charges.size
    gi0 = e * nq
    wi = kd.w[gi0 : gi0 + nq]
    tb.global_read(nq)
    ws = wi * shift
    tb.count(mul=nq)
    C = np.einsum("i,ia,ib->ab", ws, kd.B, kd.B)
    tb.count(fma=nq * nb * nb, mul=nq * nb)
    # the two basis-table operands stream through L1 per (i, a, b) term
    tb.shared_read(nq * nb * nb * 2)

    Pe = kd.elem_P[e]
    tgt = kd.elem_targets[e]
    Cfree = np.einsum("ak,ab,bl->kl", Pe, C, Pe, optimize=True)
    tb.count(fma=2 * nb * nb * Pe.shape[1])
    # the mass term is identical for every species block
    idx = np.ix_(range(S), tgt, tgt)
    tb.atomic_add(out, idx, np.broadcast_to(Cfree, (S,) + Cfree.shape))


class CudaLandauJacobian:
    """Driver: build the (block-diagonal) Landau Jacobian on the simulator.

    Mirrors the PETSc flow: data is packed into SoA vectors, one kernel
    launch builds all element Jacobians (one element per block, 16x16
    blocks for Q3), a second launch adds the time-integrator's shifted
    mass matrix.
    """

    def __init__(
        self,
        fs: FunctionSpace,
        species: SpeciesSet,
        machine: CudaMachine | None = None,
        nu0: float = 1.0,
        block_x: int | None = None,
    ):
        self.fs = fs
        self.species = species
        self.machine = machine if machine is not None else CudaMachine()
        self.nu0 = float(nu0)
        self.kd = KernelData.build(fs, species)
        # block: y = integration points; x = power of two with <= 256 total
        if block_x is None:
            block_x = 1
            while block_x * 2 * self.kd.nq <= 256:
                block_x *= 2
        self.block = (block_x, self.kd.nq)

    def build(self, fields: list[np.ndarray]) -> np.ndarray:
        """Launch the Jacobian kernel; returns dense (S, n, n) blocks."""
        fd = FieldData.build(self.fs, fields)
        S = len(self.species)
        out = np.zeros((S, self.kd.n_free, self.kd.n_free))
        self.machine.launch(
            landau_jacobian_kernel,
            self.kd.nelem,
            self.block,
            self.kd,
            fd,
            self.nu0,
            out,
        )
        return out

    def build_mass(self, shift: float = 1.0) -> np.ndarray:
        S = len(self.species)
        out = np.zeros((S, self.kd.n_free, self.kd.n_free))
        self.machine.launch(
            landau_mass_kernel, self.kd.nelem, self.block, self.kd, shift, out
        )
        return out
