"""Algorithm 1: the Landau Jacobian kernel in the CUDA programming model.

One element per thread block (SM); the y thread dimension indexes the
element's integration points; the x dimension strides the inner integral
over all N global integration points in chunks, with the chunk's
structure-of-arrays data (r, z, w, f, df) prefetched into shared memory;
per-pair Landau tensors live in registers; partial integrals are combined
with warp-shuffle reductions; all threads then transform to the global
basis and assemble the element matrix with atomic adds — including the
interpolation of constrained (hanging) vertices to their up-to-four target
degrees of freedom.

Execution uses :class:`repro.gpu.machine.CudaMachine` (SIMT with vectorized
lanes), so the result is identical to the CPU reference up to floating-
point reassociation, while every instruction and byte is counted.  The
per-pair instruction mix constants below describe a production
``LandauTensor2D`` (polynomial elliptic-integral approximations as in
PETSc); they are the simulator's stand-in for counting the real device
instructions and feed the Table IV analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fem.function_space import FunctionSpace
from ..gpu.machine import CudaMachine, ThreadBlock
from .landau_tensor import landau_tensors_cyl
from .species import SpeciesSet

# --- per-pair instruction mix of LandauTensor2D (counted per (i, j) pair) ----
#: FMA instructions: elliptic polynomial evaluations (two 10th-order Horner
#: chains), the I-integral combinations and the tensor component assembly.
TENSOR_FMA = 38
#: plain multiplies (coordinate products, scalings)
TENSOR_MUL = 30
#: plain adds/subtracts
TENSOR_ADD = 20
#: special-function ops: sqrt, log, reciprocals
TENSOR_SPECIAL = 4

#: per (pair, species) cost of the beta-sum accumulation (Alg. 1 lines 5-8):
#: two FMAs for T_K components, one for T_D.
BETA_FMA_PER_SPECIES = 3

#: per-pair G accumulation (lines 9-10): G_K += w U_K.T_K (4 FMA + 2 MUL),
#: G_D += w T_D U_D (3 unique FMA + 1 MUL for w*T_D).
ACCUM_FMA = 7
ACCUM_MUL = 3


@dataclass
class KernelData:
    """Immutable per-mesh data consumed by the kernels (SoA packing)."""

    nq: int
    nb: int
    nelem: int
    N: int
    r: np.ndarray  # (N,)
    z: np.ndarray  # (N,)
    w: np.ndarray  # (N,) combined weights (quad * detJ * r)
    B: np.ndarray  # (nq, nb) basis table
    Dref: np.ndarray  # (nq, nb, 2) reference gradients
    inv_jac: np.ndarray  # (nelem, 2)
    elem_targets: list[np.ndarray]  # per element: free-dof targets
    elem_P: list[np.ndarray]  # per element: (nb, K_e) distribution weights
    charges: np.ndarray  # (S,)
    masses: np.ndarray  # (S,)
    n_free: int

    @classmethod
    def build(cls, fs: FunctionSpace, species: SpeciesSet) -> "KernelData":
        dm = fs.dofmap
        P = dm.P.tocsr()
        elem_targets: list[np.ndarray] = []
        elem_P: list[np.ndarray] = []
        for e in range(fs.nelem):
            nodes = dm.cell_nodes[e]
            sub = P[nodes]  # (nb, n_free) sparse, few nonzero columns
            cols = np.unique(sub.indices)
            dense = np.asarray(sub[:, cols].todense())
            elem_targets.append(cols.astype(np.int64))
            elem_P.append(dense)
        N = fs.n_integration_points
        return cls(
            nq=fs.nq,
            nb=fs.nb,
            nelem=fs.nelem,
            N=N,
            r=fs.qpoints[:, :, 0].reshape(N).copy(),
            z=fs.qpoints[:, :, 1].reshape(N).copy(),
            w=fs.qweights.reshape(N).copy(),
            B=fs.B,
            Dref=fs.Dref,
            inv_jac=fs.inv_jac,
            elem_targets=elem_targets,
            elem_P=elem_P,
            charges=species.charges,
            masses=species.masses,
            n_free=dm.n_free,
        )


@dataclass
class FieldData:
    """Per-state data: distribution values/gradients at all IPs (SoA)."""

    f: np.ndarray  # (S, N)
    df: np.ndarray  # (2, S, N)

    @classmethod
    def build(cls, fs: FunctionSpace, fields: list[np.ndarray]) -> "FieldData":
        packed = fs.pack_ip_data(list(fields))
        return cls(f=packed["f"], df=packed["df"])


def landau_jacobian_kernel(
    tb: ThreadBlock,
    e: int,
    kd: KernelData,
    fd: FieldData,
    nu0: float,
    out: np.ndarray,
) -> None:
    """Build one element's Jacobian contribution (Algorithm 1) on one SM.

    ``out`` is the global (S, n_free, n_free) matrix accumulated with
    atomic adds.
    """
    nq, nb, N = kd.nq, kd.nb, kd.N
    S = kd.charges.size
    chunk = tb.dim_x

    # registers: this element's integration point coordinates and weights
    gi0 = e * nq
    ri = kd.r[gi0 : gi0 + nq]
    zi = kd.z[gi0 : gi0 + nq]
    wi = kd.w[gi0 : gi0 + nq]
    tb.global_read(3 * nq)

    # per-species constant factors (registers)
    z2 = kd.charges**2
    z2om = z2 / kd.masses

    # accumulators in registers: G_K (nq, 2), G_D (nq, 2, 2)
    G_K = np.zeros((nq, 2))
    G_D = np.zeros((nq, 2, 2))

    nchunks = 0
    for j0 in range(0, N, chunk):
        j1 = min(j0 + chunk, N)
        m = j1 - j0
        nchunks += 1
        # --- prefetch the chunk's beta terms into shared memory -----------------
        rj = kd.r[j0:j1]
        zj = kd.z[j0:j1]
        wj = kd.w[j0:j1]
        fj = fd.f[:, j0:j1]  # (S, m)
        dfj = fd.df[:, :, j0:j1]  # (2, S, m)
        tb.global_read((3 + 3 * S) * m)
        tb.shared_write((3 + 3 * S) * m)
        tb.syncthreads()

        # --- per-pair Landau tensors in registers (lines 4) ---------------------
        UD, UK = landau_tensors_cyl(
            ri[:, None], zi[:, None], rj[None, :], zj[None, :]
        )
        tb.count(
            fma=TENSOR_FMA * nq * m,
            mul=TENSOR_MUL * nq * m,
            add=TENSOR_ADD * nq * m,
            special=TENSOR_SPECIAL * nq * m,
        )
        # staged chunk values are consumed as warp broadcasts: one shared
        # transaction per value, served to all integration-point threads
        tb.shared_read((3 + 3 * S) * m)

        # --- beta sums (lines 5-8); shared across i in the simulator ------------
        T_D = z2 @ fj  # (m,)
        T_K = np.einsum("s,dsm->dm", z2om, dfj)  # (2, m)
        tb.count(fma=BETA_FMA_PER_SPECIES * S * nq * m)

        # --- accumulate the integrals (lines 9-11) ------------------------------
        wTD = wj * T_D
        G_K += np.einsum("imxy,ym->ix", UK, wj * T_K)
        G_D += np.einsum("imxy,m->ixy", UD, wTD)
        tb.count(fma=ACCUM_FMA * nq * m, mul=ACCUM_MUL * nq * m)

    # --- warp-shuffle reduction of the x-partials (line 12) ---------------------
    # (the simulator accumulated lanes in-line; count the butterfly rounds)
    rounds = max(int(np.ceil(np.log2(tb.dim_x))), 0) if tb.dim_x > 1 else 0
    tb.counters.warp_shuffles += rounds * nq * 6  # 6 unique G components
    tb.counters.add += rounds * nq * 6
    tb.syncthreads()

    # --- per-species scaling (lines 13-16) and transform (lines 18-21) ----------
    # K_i[a] = nu z_a^2 (m0/m_a) G_K ;  D_i[a] = -nu z_a^2 (m0/m_a)^2 G_D
    fac_k = nu0 * z2om  # (S,)
    fac_d = -nu0 * z2 / kd.masses**2
    KK = fac_k[:, None, None] * G_K[None, :, :]  # (S, nq, 2)
    DD = fac_d[:, None, None, None] * G_D[None, :, :, :]  # (S, nq, 2, 2)
    tb.count(mul=S * nq * (2 + 4))
    KK = KK * wi[None, :, None]
    DD = DD * wi[None, :, None, None]
    tb.count(mul=S * nq * (2 + 4))
    tb.shared_write(S * nq * 6)
    tb.syncthreads()

    # --- Transform & Assemble (line 23) -----------------------------------------
    # physical gradients of the basis at this element's IPs
    invJ = kd.inv_jac[e]
    gphys = kd.Dref * invJ[None, None, :]  # (nq, nb, 2)
    tb.count(mul=nq * nb * 2)
    tb.shared_read(S * nq * 6 * nb)  # every basis row consumes KK/DD
    # C[s, a, b] = sum_i gphys[i,a,:] . DD[s,i] . gphys[i,b,:]
    #            + sum_i gphys[i,a,:] . KK[s,i] B[i,b]
    C = np.einsum("iax,sixy,iby->sab", gphys, DD, gphys, optimize=True)
    C += np.einsum("iax,six,ib->sab", gphys, KK, kd.B, optimize=True)
    tb.count(fma=S * kd.nq * nb * nb * 6, mul=S * kd.nq * nb * nb)
    # basis-table operands stream through L1 for every (i, a, b) term
    tb.shared_read(S * kd.nq * nb * nb * 3)

    # --- global assembly with constrained-vertex interpolation -------------------
    Pe = kd.elem_P[e]  # (nb, K_e)
    tgt = kd.elem_targets[e]
    Cfree = np.einsum("ak,sab,bl->skl", Pe, C, Pe, optimize=True)
    # constrained faces inflate the scatter footprint (the paper's source of
    # warp load imbalance in the assembly phase)
    tb.count(fma=2 * S * nb * nb * Pe.shape[1])
    idx = np.ix_(range(S), tgt, tgt)
    tb.atomic_add(out, idx, Cfree)


def landau_mass_kernel(
    tb: ThreadBlock,
    e: int,
    kd: KernelData,
    shift: float,
    out: np.ndarray,
) -> None:
    """The scaled mass-matrix kernel: Algorithm 1 reduced to
    ``C <- Transform&Assemble(w[gi]*s, 0, 0, B, 0)`` (section V-A1)."""
    nq, nb = kd.nq, kd.nb
    S = kd.charges.size
    gi0 = e * nq
    wi = kd.w[gi0 : gi0 + nq]
    tb.global_read(nq)
    ws = wi * shift
    tb.count(mul=nq)
    C = np.einsum("i,ia,ib->ab", ws, kd.B, kd.B)
    tb.count(fma=nq * nb * nb, mul=nq * nb)
    # the two basis-table operands stream through L1 per (i, a, b) term
    tb.shared_read(nq * nb * nb * 2)

    Pe = kd.elem_P[e]
    tgt = kd.elem_targets[e]
    Cfree = np.einsum("ak,ab,bl->kl", Pe, C, Pe, optimize=True)
    tb.count(fma=2 * nb * nb * Pe.shape[1])
    # the mass term is identical for every species block
    idx = np.ix_(range(S), tgt, tgt)
    tb.atomic_add(out, idx, np.broadcast_to(Cfree, (S,) + Cfree.shape))


class CudaLandauJacobian:
    """Driver: build the (block-diagonal) Landau Jacobian on the simulator.

    Mirrors the PETSc flow: data is packed into SoA vectors, one kernel
    launch builds all element Jacobians (one element per block, 16x16
    blocks for Q3), a second launch adds the time-integrator's shifted
    mass matrix.
    """

    def __init__(
        self,
        fs: FunctionSpace,
        species: SpeciesSet,
        machine: CudaMachine | None = None,
        nu0: float = 1.0,
        block_x: int | None = None,
    ):
        self.fs = fs
        self.species = species
        self.machine = machine if machine is not None else CudaMachine()
        self.nu0 = float(nu0)
        self.kd = KernelData.build(fs, species)
        # block: y = integration points; x = power of two with <= 256 total
        if block_x is None:
            block_x = 1
            while block_x * 2 * self.kd.nq <= 256:
                block_x *= 2
        self.block = (block_x, self.kd.nq)

    def build(self, fields: list[np.ndarray]) -> np.ndarray:
        """Launch the Jacobian kernel; returns dense (S, n, n) blocks."""
        fd = FieldData.build(self.fs, fields)
        S = len(self.species)
        out = np.zeros((S, self.kd.n_free, self.kd.n_free))
        self.machine.launch(
            landau_jacobian_kernel,
            self.kd.nelem,
            self.block,
            self.kd,
            fd,
            self.nu0,
            out,
        )
        return out

    def build_mass(self, shift: float = 1.0) -> np.ndarray:
        S = len(self.species)
        out = np.zeros((S, self.kd.n_free, self.kd.n_free))
        self.machine.launch(
            landau_mass_kernel, self.kd.nelem, self.block, self.kd, shift, out
        )
        return out
