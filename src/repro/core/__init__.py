"""The paper's primary contribution: the conservative finite-element Landau
collision operator, its CUDA-programming-model kernel (Algorithm 1), the
quasi-Newton implicit time advance, and the multi-species grid machinery.
"""

from .species import Species, SpeciesSet, electron, deuterium, tungsten_states
from .maxwellian import maxwellian_rz, shifted_maxwellian_rz
from .landau_tensor import (
    landau_tensor_3d,
    landau_tensors_cyl,
    azimuthal_integrals,
)
from .operator import LandauOperator
from .options import AssemblyOptions, PairTableMemoryError
from .moments import Moments
from .solver import ImplicitLandauSolver, NewtonStats
from .grids import GridSet, MultiGridImplicitSolver, plan_grids, grid_cost_table
from .adaptive import AdaptiveLandauIntegrator
from .batch import BatchedVertexSolver
from .projection import conservative_projection, moment_functionals

__all__ = [
    "Species",
    "SpeciesSet",
    "electron",
    "deuterium",
    "tungsten_states",
    "maxwellian_rz",
    "shifted_maxwellian_rz",
    "landau_tensor_3d",
    "landau_tensors_cyl",
    "azimuthal_integrals",
    "LandauOperator",
    "AssemblyOptions",
    "PairTableMemoryError",
    "Moments",
    "ImplicitLandauSolver",
    "NewtonStats",
    "GridSet",
    "MultiGridImplicitSolver",
    "plan_grids",
    "grid_cost_table",
    "AdaptiveLandauIntegrator",
    "BatchedVertexSolver",
    "conservative_projection",
    "moment_functionals",
]
