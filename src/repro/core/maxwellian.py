"""(Shifted) Maxwellian distributions in axisymmetric velocity coordinates.

All in code units: a species with density ``n`` (units of n0), thermal
velocity ``v_th`` (units of v0) has

    f(r, z) = n / (pi^{3/2} v_th^3) exp(-((r^2 + (z - uz)^2) / v_th^2)

normalized so the full 3D velocity integral ``2 pi int r f dr dz = n``.
"""

from __future__ import annotations

import math

import numpy as np

from .species import Species


def maxwellian_rz(r, z, density: float = 1.0, thermal_velocity: float = 1.0):
    """Isotropic Maxwellian at rest; broadcasts over ``r``, ``z``."""
    return shifted_maxwellian_rz(r, z, density, thermal_velocity, 0.0)


def shifted_maxwellian_rz(
    r,
    z,
    density: float = 1.0,
    thermal_velocity: float = 1.0,
    drift_z: float = 0.0,
):
    """Maxwellian drifting along z with velocity ``drift_z``."""
    if thermal_velocity <= 0:
        raise ValueError(f"thermal velocity must be positive, got {thermal_velocity}")
    r = np.asarray(r, dtype=float)
    z = np.asarray(z, dtype=float)
    v2 = (r * r + (z - drift_z) ** 2) / thermal_velocity**2
    norm = density / (math.pi**1.5 * thermal_velocity**3)
    return norm * np.exp(-v2)


def species_maxwellian(species: Species, drift_z: float = 0.0):
    """Closure ``f(r, z)`` for a species' equilibrium distribution."""

    def f(r, z):
        return shifted_maxwellian_rz(
            r, z, species.density, species.thermal_velocity, drift_z
        )

    return f
