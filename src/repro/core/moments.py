"""Velocity-space moments: density, momentum, energy, current, temperature.

Physical moments carry the ``2 pi`` azimuthal factor:
``n = 2 pi int r f dr dz`` etc.  Temperatures are reported in units of the
reference temperature ``T0`` (``k T0 = (pi/8) m0 v0^2`` in code units).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..fem.function_space import FunctionSpace
from .species import SpeciesSet

TWO_PI = 2.0 * math.pi
#: k T0 expressed in code energy units (m0 v0^2): T0 = (pi/8) m0 v0^2
KT0_CODE = math.pi / 8.0


@dataclass
class SpeciesMoments:
    """Moments of a single species distribution (code units)."""

    density: float
    momentum_z: float  # m n <v_z>
    energy: float  # (m/2) <|v|^2> number-weighted (total kinetic energy density)
    drift_z: float  # <v_z>
    temperature: float  # in units of T0

    @property
    def thermal_energy(self) -> float:
        """Energy in the drift frame: ``energy - (1/2) m n u^2``."""
        return self.energy - 0.5 * self.momentum_z * self.drift_z


class Moments:
    """Moment evaluator bound to a function space and species set."""

    def __init__(self, fs: FunctionSpace, species: SpeciesSet):
        self.fs = fs
        self.species = species
        # quadrature-point coordinate arrays
        self.r = fs.qpoints[:, :, 0]
        self.z = fs.qpoints[:, :, 1]
        self.v2 = self.r**2 + self.z**2

    # --- single-species ---------------------------------------------------------
    def species_moments(self, s_index: int, x: np.ndarray) -> SpeciesMoments:
        s = self.species[s_index]
        f = self.fs.eval(x)
        n = TWO_PI * self.fs.integrate(f)
        pz = TWO_PI * s.mass * self.fs.integrate(self.z * f)
        en = TWO_PI * 0.5 * s.mass * self.fs.integrate(self.v2 * f)
        drift = pz / (s.mass * n) if n > 0 else 0.0
        # thermal energy (3/2) n k T = E - (1/2) m n u^2
        eth = en - 0.5 * s.mass * n * drift * drift
        kT_code = (2.0 / 3.0) * eth / n if n > 0 else 0.0
        return SpeciesMoments(
            density=n,
            momentum_z=pz,
            energy=en,
            drift_z=drift,
            temperature=kT_code / KT0_CODE,
        )

    # --- plasma-level -----------------------------------------------------------
    def density(self, fields: list[np.ndarray]) -> np.ndarray:
        return np.array(
            [self.species_moments(a, x).density for a, x in enumerate(fields)]
        )

    def total_momentum_z(self, fields: list[np.ndarray]) -> float:
        return float(
            sum(self.species_moments(a, x).momentum_z for a, x in enumerate(fields))
        )

    def total_energy(self, fields: list[np.ndarray]) -> float:
        return float(
            sum(self.species_moments(a, x).energy for a, x in enumerate(fields))
        )

    def current_z(self, fields: list[np.ndarray]) -> float:
        """``J_z = sum_a q_a 2pi int r v_z f_a`` (code units; section IV-B)."""
        J = 0.0
        for s, x in zip(self.species, fields):
            f = self.fs.eval(x)
            J += s.charge * TWO_PI * self.fs.integrate(self.z * f)
        return float(J)

    def electron_temperature(self, fields: list[np.ndarray]) -> float:
        """T_e in units of T0; electrons are species 0 by convention."""
        return self.species_moments(0, fields[0]).temperature

    def summary(self, fields: list[np.ndarray]) -> dict[str, float]:
        return {
            "n_e": float(self.density(fields)[0]),
            "J_z": self.current_z(fields),
            "T_e": self.electron_temperature(fields),
            "p_z": self.total_momentum_z(fields),
            "energy": self.total_energy(fields),
        }
