"""Moment-preserving (conservative) projection.

Reference [12] of the paper (Mollen et al.) couples the grid-based Landau
operator to particle codes through *conservative* particle-grid
interpolation: the projected distribution must carry exactly the source's
density, momentum and energy, or the split scheme leaks the invariants the
collision operator works hard to preserve.

``conservative_projection`` solves the constrained L2 problem

    min ||f - g||_{M}   s.t.   C f = m

where ``M`` is the cylindrical mass matrix, ``C`` stacks the weak moment
functionals (1, v_z, |v|^2) and ``m`` the target moments — a saddle-point
system solved by the Schur complement on the (3x3) multiplier block.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from ..fem.assembly import assemble_mass
from ..fem.function_space import FunctionSpace


def moment_functionals(fs: FunctionSpace) -> np.ndarray:
    """Rows of C: weak moments ``int r psi_i {1, z, r^2+z^2}`` (3, ndofs).

    ``C @ f`` gives (density, z-momentum-per-mass, 2x energy-per-mass)
    without the 2*pi factor (consistent across both sides of the
    constraint, so the factor cancels).
    """
    w = fs.qweights
    r, z = fs.qpoints[:, :, 0], fs.qpoints[:, :, 1]
    weights = [np.ones_like(z), z, r * r + z * z]
    rows = []
    for wt in weights:
        b_full = np.zeros(fs.dofmap.n_full)
        np.add.at(
            b_full,
            fs.dofmap.cell_nodes,
            np.einsum("eq,qb->eb", w * wt, fs.B),
        )
        rows.append(fs.dofmap.P.T @ b_full)
    return np.stack(rows)


def conservative_projection(
    fs: FunctionSpace,
    g: np.ndarray,
    target_moments: np.ndarray | None = None,
) -> np.ndarray:
    """Project ``g`` onto the space while enforcing the three moments.

    Parameters
    ----------
    g:
        free-dof coefficients of the source field (e.g. a nodal
        interpolant of particle data, whose moments are slightly off).
    target_moments:
        the exact (density, z-moment, energy-moment) values to enforce;
        defaults to ``C @ g`` (useful for testing the identity case) —
        pass the *analytic* moments of the underlying distribution to
        repair interpolation error.

    Returns
    -------
    the corrected coefficients ``f`` with ``C f = m`` exactly and minimal
    M-weighted distance to ``g``.
    """
    g = np.asarray(g, dtype=float)
    if g.shape != (fs.ndofs,):
        raise ValueError(f"g must have shape ({fs.ndofs},), got {g.shape}")
    M = assemble_mass(fs).tocsc()
    C = moment_functionals(fs)
    m = C @ g if target_moments is None else np.asarray(target_moments, float)
    if m.shape != (3,):
        raise ValueError("target_moments must be length 3")
    # saddle point: [M C^T; C 0][f; lam] = [M g; m]
    lu = spla.splu(M)
    MinvCt = np.column_stack([lu.solve(C[i]) for i in range(3)])
    S = C @ MinvCt  # 3x3 Schur complement
    resid = m - C @ g
    lam = np.linalg.solve(S, resid)
    return g + MinvCt @ lam
