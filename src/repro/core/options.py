"""Configuration of the operator-assembly fast path.

:class:`AssemblyOptions` bundles the knobs of the cached/parallel assembly
pipeline introduced for the Algorithm-1 hot loop:

* **structure caching** — precompute the element→CSR scatter map once per
  mesh (:class:`repro.fem.assembly.ScatterMap`) so every subsequent
  Jacobian/mass build is a pure ``data`` update with no sparse-structure
  work, shared across species and Newton iterations; the band solver
  likewise reuses its RCM ordering and band symbolic setup between
  refactorizations (:class:`repro.sparse.band.CachedBandSolverFactory`).
* **packed pair tables** — store the unique components of ``U^D``/``U^K``
  contiguously.  The rz-symmetries ``U^K_rz == U^D_rz`` and
  ``U^K_zz == U^D_zz`` leave only five distinct ``N x N`` tables (instead
  of seven strided views into the ``(N, N, 2, 2)`` tensors), cutting both
  the memory footprint and — because the contractions become contiguous
  BLAS calls — the per-iteration field cost by several times.
* **parallel builds** — dispatch the O(N^2) table build and the chunked
  on-the-fly field path in row blocks over a thread pool (numpy releases
  the GIL inside ``landau_tensors_cyl``).
* **memory budgeting** — a single byte budget replaces the hard-coded
  ``5e7`` chunk constant: it sizes the on-the-fly row chunks and guards
  the cached-table build with a clear error instead of a ``MemoryError``.

Every knob has an environment override (prefix ``REPRO_ASSEMBLY_``) so
runs can be reconfigured without touching driver code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

__all__ = ["AssemblyOptions", "PairTableMemoryError"]

#: default cap on cached pair-table memory (bytes); above this the field
#: computation falls back to chunked on-the-fly tensor evaluation.
DEFAULT_MEMORY_BUDGET = 400 * 1024 * 1024

#: conservative per-pair scratch estimate (bytes) of one on-the-fly
#: ``landau_tensors_cyl`` row block: the 8 tensor components plus the
#: elliptic-integral temporaries, all float64.
ONTHEFLY_BYTES_PER_PAIR = 26 * 8


class PairTableMemoryError(RuntimeError):
    """Raised when a forced pair-table cache would exceed the memory budget.

    Raised *before* any allocation so the caller gets a clear, actionable
    message instead of a ``MemoryError`` mid-build.
    """


def _env_bool(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    val = raw.strip().lower()
    if val in ("1", "true", "yes", "on"):
        return True
    if val in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"{name} must be a boolean flag, got {raw!r}")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(float(raw))
    except ValueError as err:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from err


@dataclass(frozen=True)
class AssemblyOptions:
    """Knobs for the cached/parallel operator-assembly fast path.

    Parameters
    ----------
    cache_structure:
        precompute and reuse the element→CSR scatter map (and the band
        solver's RCM/symbolic setup) across species and Newton iterations.
    packed_tables:
        store the five unique pair-table components contiguously instead
        of the legacy seven strided tensor views.
    num_threads:
        row-block thread count for the table build and the chunked
        on-the-fly field path; ``0`` or ``1`` runs serially.
    table_dtype:
        ``"float64"`` (default) or ``"float32"`` for the cached tables —
        the low-precision mode halves memory traffic for runs that can
        tolerate single-precision field sums.
    memory_budget:
        byte budget for cached tables and on-the-fly chunk sizing.
    cache_pair_tables:
        force (True/False) or auto-decide (None) caching of the O(N^2)
        tables; a forced True that exceeds ``memory_budget`` raises
        :class:`PairTableMemoryError`.
    backend:
        execution backend name (``auto`` | ``numpy`` | ``threaded`` |
        ``numba`` | ``process``) for the operator/assembly/band-solve
        hot paths; see :mod:`repro.backend`.  ``auto`` picks ``threaded``
        when ``num_threads > 1`` and the serial reference otherwise;
        ``process`` dispatches blocks to persistent worker processes
        over shared memory (worker count from ``num_threads`` or
        ``REPRO_PROCESS_WORKERS``, arena cap ``REPRO_SHM_BUDGET``).
    """

    cache_structure: bool = True
    packed_tables: bool = True
    num_threads: int = 0
    table_dtype: str = "float64"
    memory_budget: int = DEFAULT_MEMORY_BUDGET
    cache_pair_tables: bool | None = None
    backend: str = "auto"

    def __post_init__(self):
        if self.table_dtype not in ("float64", "float32"):
            raise ValueError(
                f"table_dtype must be 'float64' or 'float32', got {self.table_dtype!r}"
            )
        if self.num_threads < 0:
            raise ValueError(f"num_threads must be >= 0, got {self.num_threads}")
        if self.memory_budget <= 0:
            raise ValueError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )
        # fail fast on unknown backend names (typo'd REPRO_BACKEND etc.)
        self.resolved_backend()

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, **overrides) -> "AssemblyOptions":
        """Defaults with ``REPRO_ASSEMBLY_*`` environment overrides applied.

        Recognized variables: ``REPRO_ASSEMBLY_CACHE_STRUCTURE``,
        ``REPRO_ASSEMBLY_PACKED_TABLES``, ``REPRO_ASSEMBLY_THREADS``,
        ``REPRO_ASSEMBLY_TABLE_DTYPE``, ``REPRO_ASSEMBLY_MEMORY_BUDGET``,
        ``REPRO_ASSEMBLY_CACHE_TABLES`` (``auto``/``1``/``0``) and
        ``REPRO_BACKEND``
        (``auto``/``numpy``/``threaded``/``numba``/``process``).
        Keyword arguments win over the environment.
        """
        values = {
            "backend": os.environ.get("REPRO_BACKEND", "auto").strip().lower()
            or "auto",
            "cache_structure": _env_bool("REPRO_ASSEMBLY_CACHE_STRUCTURE", True),
            "packed_tables": _env_bool("REPRO_ASSEMBLY_PACKED_TABLES", True),
            "num_threads": _env_int("REPRO_ASSEMBLY_THREADS", 0),
            "table_dtype": os.environ.get(
                "REPRO_ASSEMBLY_TABLE_DTYPE", "float64"
            ).strip(),
            "memory_budget": _env_int(
                "REPRO_ASSEMBLY_MEMORY_BUDGET", DEFAULT_MEMORY_BUDGET
            ),
        }
        raw_cache = os.environ.get("REPRO_ASSEMBLY_CACHE_TABLES", "auto").strip().lower()
        if raw_cache in ("auto", ""):
            values["cache_pair_tables"] = None
        elif raw_cache in ("1", "true", "yes", "on"):
            values["cache_pair_tables"] = True
        elif raw_cache in ("0", "false", "no", "off"):
            values["cache_pair_tables"] = False
        else:
            raise ValueError(
                f"REPRO_ASSEMBLY_CACHE_TABLES must be auto/1/0, got {raw_cache!r}"
            )
        values.update(overrides)
        return cls(**values)

    @classmethod
    def legacy(cls) -> "AssemblyOptions":
        """The seed code path: per-build COO→CSR scatter, seven strided
        table views, serial builds.  Used as the ablation baseline."""
        return cls(
            cache_structure=False,
            packed_tables=False,
            num_threads=0,
            table_dtype="float64",
        )

    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.table_dtype)

    def resolved_threads(self) -> int:
        """Effective worker count (>= 1)."""
        return max(1, int(self.num_threads))

    def resolved_backend(self) -> str:
        """Concrete backend name with ``auto`` resolved; raises
        ``ValueError`` on unknown names (the message lists valid ones)."""
        from ..backend.registry import resolve_backend_name

        return resolve_backend_name(self.backend, self.resolved_threads())

    def execution_backend(self):
        """The resolved :class:`~repro.backend.ExecutionBackend` instance
        (cached per name/thread-count in the registry)."""
        from ..backend.registry import get_backend

        return get_backend(self.backend, self.resolved_threads())

    def table_bytes(self, n_ip: int) -> int:
        """Bytes a cached table set would occupy for ``n_ip`` points."""
        ncomp = 5 if self.packed_tables else 7
        itemsize = self.dtype.itemsize
        # the legacy layout keeps views into the full (N, N, 2, 2) UD/UK
        # tensors, so it actually pins 8 components in memory
        if not self.packed_tables:
            ncomp = 8
        return ncomp * n_ip * n_ip * itemsize

    def row_chunk(self, n_ip: int) -> int:
        """On-the-fly evaluation row-chunk size within the memory budget."""
        per_row = max(1, n_ip) * ONTHEFLY_BYTES_PER_PAIR
        return max(1, int(self.memory_budget // per_row))
