"""Landau tensors: the 3D projection kernel (eq. 3) and its axisymmetric
forms ``U^D`` and ``U^K`` (eqs. 7-8), the analogue of PETSc's
``LandauTensor2D``/``LandauTensor3D``.

Axisymmetric reduction
----------------------
With the field point at ``(r, z)`` (azimuth 0 WLOG) and the source point at
``(rp, zp)`` with azimuth ``phi``, the relative velocity magnitude is

    |u|^2 = A - B cos(phi),   A = r^2 + rp^2 + (z - zp)^2,   B = 2 r rp .

Because the distributions are axisymmetric, the source azimuth is integrated
analytically.  The required integrals

    I1n = int_0^{2pi} cos^n(phi) |u|^-1 dphi      (n = 0, 1)
    I3n = int_0^{2pi} cos^n(phi) |u|^-3 dphi      (n = 0, 1, 2)

reduce to complete elliptic integrals ``K(m)``, ``E(m)`` with parameter
``m = 2B/(A+B)`` (scipy convention: parameter m = k^2):

    I10 = 4 K / sqrt(A+B)
    I11 = (4 / sqrt(A+B)) * (2 (K - E)/m - K)
    I30 = 4 T0 / (A+B)^{3/2},             T0 = E / (1 - m)
    I31 = (4 / (A+B)^{3/2}) * (2 T1 - T0), T1 = (T0 - K)/m
    I32 = (4 / (A+B)^{3/2}) * (4 T2 - 4 T1 + T0), T2 = (T0 - 2K + E)/m^2

(derived with the half-angle substitution; property-tested against direct
numerical quadrature of the 3D tensor in the test suite).

Tensor components
-----------------
In the local (e_r, e_z) frame at the field point, with
``u . e_r(0) = r - rp cos(phi)``, ``u . e_r(phi) = r cos(phi) - rp`` and
``u_z = z - zp = dz``:

    U^D_ij = int dphi [ delta_ij / |u| - (u.e_i(0))(u.e_j(0)) / |u|^3 ]
    U^K_ij = int dphi [ e_i(0).e_j(phi) / |u| - (u.e_i(0))(u.e_j(phi)) / |u|^3 ]

``U^D`` contracts two field-point gradients (the diffusion term, eq. 5);
``U^K`` contracts a field-point gradient with a source-point gradient (the
friction term, eq. 6).
"""

from __future__ import annotations

import numpy as np
from scipy import special as sps

__all__ = [
    "landau_tensor_3d",
    "azimuthal_integrals",
    "landau_tensors_cyl",
    "packed_pair_rows",
    "field_rows",
]

#: relative tolerance below which a pair is considered coincident and masked
#: (the self-interaction term, dropped exactly as PETSc's ``mask`` does).
SINGULAR_REL_TOL = 1e-14


def landau_tensor_3d(v: np.ndarray, vp: np.ndarray) -> np.ndarray:
    """The 3D Landau projection tensor ``U(v, vp)`` of eq. (3).

    ``U = (|u|^2 I - u u^T) / |u|^3`` with ``u = v - vp``.  Inputs are
    broadcastable arrays of 3-vectors; returns ``(..., 3, 3)``.
    """
    v = np.asarray(v, dtype=float)
    vp = np.asarray(vp, dtype=float)
    u = v - vp
    u2 = np.sum(u * u, axis=-1)
    if np.any(u2 == 0.0):
        raise ZeroDivisionError("Landau tensor is singular at v == vp")
    norm = u2**1.5
    eye = np.eye(3)
    return (u2[..., None, None] * eye - u[..., :, None] * u[..., None, :]) / norm[
        ..., None, None
    ]


def azimuthal_integrals(
    A: np.ndarray, B: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(I10, I11, I30, I31, I32)`` for ``|u|^2 = A - B cos(phi)``.

    Requires ``A > B >= 0`` element-wise (guaranteed for distinct points in
    the (r >= 0, z) half-plane).  Uses ``scipy.special.ellipk/ellipe`` with
    parameter ``m = 2B/(A+B)``; the ``m -> 0`` (``B = 0``, on-axis) limit is
    handled by series-free exact values ``K = E = pi/2``.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    ApB = A + B
    AmB = A - B
    m = 2.0 * B / ApB
    # scipy's ellipkm1 gives K(1-m1) accurately near m=1; here simple ellipk
    # suffices because coincident pairs are masked before calling.
    K = sps.ellipk(m)
    E = sps.ellipe(m)
    sqrt_ApB = np.sqrt(ApB)
    inv_sqrt = 1.0 / sqrt_ApB
    inv_pow32 = inv_sqrt / ApB

    T0 = E * ApB / AmB  # E/(1-m), written to avoid forming 1-m
    # The combinations (T0-K)/m, (T0-2K+E)/m^2 and 2(K-E)/m - K suffer
    # catastrophic cancellation as m -> 0 (nearly on-axis pairs), so switch
    # to their Maclaurin series there: with c = pi/2,
    #   T1 = c [ 1/2 + (9/16) m + (75/128) m^2 + (1225/2048) m^3 + ... ]
    #   T2 = c [ 3/8 + (15/32) m + (525/1024) m^2 + ... ]
    #   I11c = c [ m/8 + (3/32) m^2 + (75/1024) m^3 + ... ]
    # (series error O(m^3) ~ cancellation error at the 2e-3 crossover).
    small = m < 2.0e-3
    msafe = np.where(small, 1.0, m)
    with np.errstate(divide="ignore", invalid="ignore"):
        T1 = (T0 - K) / msafe
        T2 = (T0 - 2.0 * K + E) / (msafe * msafe)
        I11_core = 2.0 * (K - E) / msafe - K
    if np.any(small):
        hp = 0.5 * np.pi
        ms = np.where(small, m, 0.0)
        T1 = np.where(
            small,
            hp * (0.5 + ms * (9.0 / 16.0 + ms * (75.0 / 128.0 + ms * 1225.0 / 2048.0))),
            T1,
        )
        T2 = np.where(
            small,
            hp * (3.0 / 8.0 + ms * (15.0 / 32.0 + ms * 525.0 / 1024.0)),
            T2,
        )
        I11_core = np.where(
            small,
            hp * ms * (0.125 + ms * (3.0 / 32.0 + ms * 75.0 / 1024.0)),
            I11_core,
        )
    I10 = 4.0 * K * inv_sqrt
    I11 = 4.0 * I11_core * inv_sqrt
    I30 = 4.0 * T0 * inv_pow32
    I31 = 4.0 * (2.0 * T1 - T0) * inv_pow32
    I32 = 4.0 * (4.0 * T2 - 4.0 * T1 + T0) * inv_pow32
    return I10, I11, I30, I31, I32


def landau_tensors_cyl(
    r: np.ndarray,
    z: np.ndarray,
    rp: np.ndarray,
    zp: np.ndarray,
    mask_singular: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Axisymmetric Landau tensors ``U^D`` and ``U^K`` for point pairs.

    Parameters
    ----------
    r, z:
        field-point coordinates (broadcastable arrays).
    rp, zp:
        source-point coordinates (broadcastable against ``r, z``).
    mask_singular:
        if True (default), coincident pairs contribute zero — the ``mask``
        of PETSc's kernel; if False, coincident pairs raise.

    Returns
    -------
    UD:
        ``(..., 2, 2)`` diffusion tensor (symmetric).
    UK:
        ``(..., 2, 2)`` friction tensor; ``K_i = sum_j UK[i, j] (grad f)_j``.
    """
    r, z, rp, zp = np.broadcast_arrays(
        np.asarray(r, dtype=float),
        np.asarray(z, dtype=float),
        np.asarray(rp, dtype=float),
        np.asarray(zp, dtype=float),
    )
    dz = z - zp
    A = r * r + rp * rp + dz * dz
    B = 2.0 * r * rp

    scale = np.maximum(A, 1.0)
    coincident = (A - B) <= SINGULAR_REL_TOL * scale
    if np.any(coincident):
        if not mask_singular:
            raise ZeroDivisionError("coincident field/source pair in Landau tensor")
        # displace the coincident pairs; their contributions are zeroed below
        A = np.where(coincident, A + 1.0, A)
        B = np.where(coincident, 0.0, B)

    I10, I11, I30, I31, I32 = azimuthal_integrals(A, B)

    shape = r.shape
    UD = np.zeros(shape + (2, 2))
    UK = np.zeros(shape + (2, 2))

    # u . e_r(0)   = r - rp cos(phi)
    # u . e_r(phi) = r cos(phi) - rp
    # u_z          = dz
    # --- U^D: delta_ij I1(0) (for rr, zz) minus second moments of u at field frame
    # (u.e_r(0))^2 = r^2 - 2 r rp cos + rp^2 cos^2
    UD[..., 0, 0] = I10 - (r * r * I30 - 2.0 * r * rp * I31 + rp * rp * I32)
    # (u.e_r(0)) u_z = dz (r - rp cos)
    UD[..., 0, 1] = -(dz * (r * I30 - rp * I31))
    UD[..., 1, 0] = UD[..., 0, 1]
    UD[..., 1, 1] = I10 - dz * dz * I30

    # --- U^K: e_i(0).e_j(phi)/|u| - (u.e_i(0))(u.e_j(phi))/|u|^3
    # rr: cos/|u| - (r - rp cos)(r cos - rp)/|u|^3
    #   (r - rp cos)(r cos - rp) = r^2 cos - r rp - r rp cos^2 + rp^2 cos
    UK[..., 0, 0] = I11 - (
        (r * r + rp * rp) * I31 - r * rp * (I30 + I32)
    )
    # rz: -(u.e_r(0)) u_z / |u|^3 = -dz (r - rp cos)/|u|^3
    UK[..., 0, 1] = -(dz * (r * I30 - rp * I31))
    # zr: -u_z (u.e_r(phi)) / |u|^3 = -dz (r cos - rp)/|u|^3
    UK[..., 1, 0] = -(dz * (r * I31 - rp * I30))
    # zz: 1/|u| - dz^2/|u|^3
    UK[..., 1, 1] = I10 - dz * dz * I30

    if np.any(coincident):
        UD[coincident] = 0.0
        UK[coincident] = 0.0
    return UD, UK


# ----------------------------------------------------------------------
# Row-block reference kernels.
#
# These are the numpy reference implementations of the two Algorithm-1
# hot loops that :class:`repro.backend.base.ExecutionBackend` exposes as
# overridable hooks (``pair_table_rows`` / ``field_rows``): the packed
# pair-table build and the on-the-fly field evaluation.  The numba
# backend replaces them with ``nopython`` kernels; everything else runs
# these exact expressions, so the numpy path stays bitwise-identical to
# the pre-hook code.


def packed_pair_rows(
    out: np.ndarray, r: np.ndarray, z: np.ndarray, i0: int, i1: int
) -> None:
    """Fill packed pair-table rows ``[i0, i1)`` of the ``(5, N, N)``
    buffer ``out`` in ``(Drr, Drz, Dzz, Krr, Kzr)`` component order
    (``Krz``/``Kzz`` alias ``Drz``/``Dzz`` and are not stored).

    Thread-safe over disjoint row blocks: each call writes only its own
    ``out[:, i0:i1]`` slice.
    """
    UD, UK = landau_tensors_cyl(
        r[i0:i1, None], z[i0:i1, None], r[None, :], z[None, :]
    )
    out[0, i0:i1] = UD[..., 0, 0]
    out[1, i0:i1] = UD[..., 0, 1]
    out[2, i0:i1] = UD[..., 1, 1]
    out[3, i0:i1] = UK[..., 0, 0]
    out[4, i0:i1] = UK[..., 1, 0]


def field_rows(
    G_D: np.ndarray,
    G_K: np.ndarray,
    r: np.ndarray,
    z: np.ndarray,
    cTD: np.ndarray,
    cTKr: np.ndarray,
    cTKz: np.ndarray,
    i0: int,
    i1: int,
) -> None:
    """On-the-fly Algorithm-1 inner integral for field-point rows
    ``[i0, i1)``: re-evaluate the pair tensors for the row block and
    contract them against the ``(N, B)`` column sources, accumulating
    into ``G_D (B, N, 2, 2)`` / ``G_K (B, N, 2)``.

    Thread-safe over disjoint row blocks (each call writes only the
    ``[:, i0:i1]`` slices of the outputs).
    """
    UD, UK = landau_tensors_cyl(
        r[i0:i1, None], z[i0:i1, None], r[None, :], z[None, :]
    )
    G_D[:, i0:i1, 0, 0] = (UD[..., 0, 0] @ cTD).T
    G_D[:, i0:i1, 0, 1] = (UD[..., 0, 1] @ cTD).T
    G_D[:, i0:i1, 1, 0] = G_D[:, i0:i1, 0, 1]
    G_D[:, i0:i1, 1, 1] = (UD[..., 1, 1] @ cTD).T
    G_K[:, i0:i1, 0] = (UK[..., 0, 0] @ cTKr + UK[..., 0, 1] @ cTKz).T
    G_K[:, i0:i1, 1] = (UK[..., 1, 0] @ cTKr + UK[..., 1, 1] @ cTKz).T
