"""Adaptive implicit time stepping (the TS layer of the PETSc stack).

The paper's runs use PETSc's TS with fixed steps; production collision
advances want step-size control.  This module provides a standard embedded
error controller for the quasi-Newton theta schemes: each step is taken
once with backward Euler (order 1) and once with the midpoint-linearized
theta = 1/2 scheme (order 2); their difference estimates the local error,
and the step size follows the usual PI-free elementary controller

    dt_new = dt * clip(safety * (tol / err)^(1/2), shrink, grow)

Rejected steps are retried with the shrunken dt.  All Newton work is
accounted through the underlying solvers' stats (throughput accounting
stays consistent with the paper's figure of merit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .operator import LandauOperator
from .solver import ImplicitLandauSolver


@dataclass
class AdaptiveStats:
    steps_accepted: int = 0
    steps_rejected: int = 0
    dt_history: list = field(default_factory=list)
    err_history: list = field(default_factory=list)

    @property
    def newton_iterations(self) -> int:
        return self._newton

    _newton: int = 0


class AdaptiveLandauIntegrator:
    """Error-controlled implicit integrator over a Landau operator.

    Parameters
    ----------
    operator:
        the collision operator.
    tol:
        target local-error tolerance (relative to the state norm).
    dt_min, dt_max:
        step-size clamps.
    safety, shrink, grow:
        controller constants.
    """

    def __init__(
        self,
        operator: LandauOperator,
        tol: float = 1e-4,
        dt_min: float = 1e-4,
        dt_max: float = 4.0,
        safety: float = 0.9,
        shrink: float = 0.2,
        grow: float = 3.0,
        newton_rtol: float = 1e-8,
    ):
        if tol <= 0:
            raise ValueError(f"tol must be positive, got {tol}")
        if not (0 < dt_min < dt_max):
            raise ValueError("need 0 < dt_min < dt_max")
        self.op = operator
        self.tol = float(tol)
        self.dt_min = float(dt_min)
        self.dt_max = float(dt_max)
        self.safety = float(safety)
        self.shrink = float(shrink)
        self.grow = float(grow)
        self._be = ImplicitLandauSolver(operator, theta=1.0, rtol=newton_rtol)
        self._cn = ImplicitLandauSolver(operator, theta=0.5, rtol=newton_rtol)
        self.stats = AdaptiveStats()

    # ------------------------------------------------------------------
    def _error(self, f_be, f_cn, f_old) -> float:
        num = max(
            np.linalg.norm(a - b) for a, b in zip(f_be, f_cn)
        )
        den = max(max(np.linalg.norm(x) for x in f_old), 1e-300)
        return num / den

    def step(
        self, fields: list[np.ndarray], dt: float, efield: float = 0.0
    ) -> tuple[list[np.ndarray], float, float]:
        """One *attempted* step: returns ``(fields, dt_used, dt_next)``.

        Retries internally with smaller dt until the error test passes or
        ``dt_min`` is reached (then the step is accepted regardless, as TS
        does at its floor).
        """
        dt = float(np.clip(dt, self.dt_min, self.dt_max))
        while True:
            f_be = self._be.step(fields, dt, efield=efield)
            f_cn = self._cn.step(fields, dt, efield=efield)
            err = self._error(f_be, f_cn, fields)
            self.stats.err_history.append(err)
            self.stats._newton = (
                self._be.stats.newton_iterations + self._cn.stats.newton_iterations
            )
            if err <= self.tol or dt <= self.dt_min * (1 + 1e-12):
                factor = self.safety * (self.tol / max(err, 1e-300)) ** 0.5
                dt_next = float(
                    np.clip(dt * np.clip(factor, self.shrink, self.grow),
                            self.dt_min, self.dt_max)
                )
                self.stats.steps_accepted += 1
                self.stats.dt_history.append(dt)
                # the order-2 solution is the better one: local extrapolation
                return f_cn, dt, dt_next
            self.stats.steps_rejected += 1
            dt = max(self.dt_min, dt * max(
                self.shrink, self.safety * (self.tol / err) ** 0.5
            ))

    def integrate(
        self,
        fields: list[np.ndarray],
        t_final: float,
        dt0: float = 0.1,
        efield: float = 0.0,
        callback=None,
    ) -> list[np.ndarray]:
        """Advance to ``t_final`` under error control."""
        if t_final <= 0:
            raise ValueError(f"t_final must be positive, got {t_final}")
        t, dt = 0.0, float(dt0)
        f = [np.asarray(x, dtype=float) for x in fields]
        while t < t_final - 1e-12:
            dt = min(dt, t_final - t)
            f, dt_used, dt = self.step(f, dt, efield=efield)
            t += dt_used
            if callback is not None:
                callback(t, dt_used, f)
        return f
