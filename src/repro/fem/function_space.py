"""Finite element function space: tabulation, evaluation and projection.

A :class:`FunctionSpace` bundles a mesh, a Qk element, the matching tensor
Gauss quadrature and the constrained DoF map, and provides the quadrature-
point data (coordinates ``r``/``z``, combined weights ``w`` including the
cylindrical measure, values ``f`` and gradients ``df``) that the Landau
kernels consume — the structure-of-arrays packing of section III-E.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .dofmap import DofMap
from .mesh import Mesh
from .quadrature import TensorQuadrature
from .reference import LagrangeQuad


class FunctionSpace:
    """Scalar Qk space on a (possibly non-conforming) rectangle mesh.

    Parameters
    ----------
    mesh:
        the velocity-space mesh.
    order:
        polynomial order k (Q3 = the paper's default).
    quad_order:
        1D quadrature points per direction; defaults to ``k+1`` so that
        ``N_q = N_b`` ("tensor elements" with 16 IPs for Q3).
    """

    def __init__(self, mesh: Mesh, order: int = 3, quad_order: int | None = None):
        self.mesh = mesh
        self.element = LagrangeQuad(order)
        self.quadrature = TensorQuadrature(quad_order or (order + 1))
        self.dofmap = DofMap(mesh, self.element)

        # reference tabulation: B (nq, nb), Dref (nq, nb, 2)
        self.B, self.Dref = self.element.tabulate(self.quadrature.points)
        self.nq = self.quadrature.npoints
        self.nb = self.element.nnodes

        # geometry at quadrature points
        self.qpoints = mesh.map_to_physical(self.quadrature.points)  # (ne, nq, 2)
        self.inv_jac, self.det_jac = mesh.jacobians()  # (ne, 2), (ne,)
        # combined weight: quadrature weight * |J| * cylindrical r factor
        self.qweights = (
            self.quadrature.weights[None, :]
            * self.det_jac[:, None]
            * self.qpoints[:, :, 0]
        )  # (ne, nq)

    # --- sizes -----------------------------------------------------------------
    @property
    def nelem(self) -> int:
        return self.mesh.nelem

    @property
    def ndofs(self) -> int:
        """Number of free (unconstrained) degrees of freedom."""
        return self.dofmap.n_free

    @property
    def n_integration_points(self) -> int:
        """Global integration point count N = N_e * N_q (paper's N)."""
        return self.nelem * self.nq

    # --- evaluation --------------------------------------------------------------
    def cell_dofs(self, x_free: np.ndarray) -> np.ndarray:
        """Per-element nodal values ``(ne, nb)`` including constrained nodes."""
        x_full = self.dofmap.expand(np.asarray(x_free, dtype=float))
        return x_full[self.dofmap.cell_nodes]

    def eval(self, x_free: np.ndarray) -> np.ndarray:
        """Function values at all quadrature points, shape ``(ne, nq)``."""
        fe = self.cell_dofs(x_free)
        return np.einsum("qb,eb->eq", self.B, fe)

    def eval_grad(self, x_free: np.ndarray) -> np.ndarray:
        """Physical gradients at quadrature points, shape ``(ne, nq, 2)``."""
        fe = self.cell_dofs(x_free)
        g_ref = np.einsum("qbd,eb->eqd", self.Dref, fe)
        return g_ref * self.inv_jac[:, None, :]

    def eval_at(self, x_free: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Evaluate at arbitrary physical points (slow path, used in tests)."""
        points = np.atleast_2d(points)
        x_full = self.dofmap.expand(np.asarray(x_free, dtype=float))
        out = np.empty(points.shape[0])
        for i, p in enumerate(points):
            e = self.mesh.element_containing(p)
            if e < 0:
                raise ValueError(f"point {p} outside mesh")
            ref = 2.0 * (p - self.mesh.lower[e]) / self.mesh.size[e] - 1.0
            B, _ = self.element.tabulate(ref[None, :])
            out[i] = B[0] @ x_full[self.dofmap.cell_nodes[e]]
        return out

    # --- interpolation / projection ------------------------------------------------
    def interpolate(self, func) -> np.ndarray:
        """Nodal interpolant of ``func(r, z)`` as a free-space vector."""
        return self.dofmap.interpolate(func)

    def project(self, func) -> np.ndarray:
        """Cylindrical-weighted L2 projection of ``func(r, z)``.

        Solves ``M x = b`` with ``M`` the (r-weighted) mass matrix and
        ``b_i = int r psi_i func``.
        """
        from .assembly import assemble_mass  # local import to avoid a cycle

        M = assemble_mass(self)
        vals = func(self.qpoints[:, :, 0], self.qpoints[:, :, 1])
        b_full = np.zeros(self.dofmap.n_full)
        contrib = np.einsum("eq,qb->eb", self.qweights * vals, self.B)
        np.add.at(b_full, self.dofmap.cell_nodes, contrib)
        b = self.dofmap.reduce_vector(b_full)
        return sp.linalg.spsolve(M.tocsc(), b)

    def integrate(self, values_at_q: np.ndarray) -> float:
        """Integrate point data ``(ne, nq)`` with the cylindrical measure
        (without the 2*pi azimuthal factor)."""
        return float(np.sum(self.qweights * values_at_q))

    # --- SoA packing for the GPU-model kernels -----------------------------------
    def pack_ip_data(self, fields: list[np.ndarray]) -> dict[str, np.ndarray]:
        """Pack quadrature data into flat structure-of-arrays vectors.

        Parameters
        ----------
        fields:
            one free-space coefficient vector per species.

        Returns
        -------
        dict with ``r``, ``z``, ``w`` of shape ``(N,)``, ``f`` of shape
        ``(S, N)`` and ``df`` of shape ``(2, S, N)`` — the arrays fed to
        Algorithm 1 (``N = ne * nq``, element-major).
        """
        N = self.n_integration_points
        S = len(fields)
        r = self.qpoints[:, :, 0].reshape(N)
        z = self.qpoints[:, :, 1].reshape(N)
        w = self.qweights.reshape(N)
        f = np.empty((S, N))
        df = np.empty((2, S, N))
        for s, x in enumerate(fields):
            f[s] = self.eval(x).reshape(N)
            g = self.eval_grad(x)
            df[0, s] = g[:, :, 0].reshape(N)
            df[1, s] = g[:, :, 1].reshape(N)
        return {"r": r, "z": z, "w": w, "f": f, "df": df}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FunctionSpace(Q{self.element.order}, ne={self.nelem}, "
            f"ndofs={self.ndofs}, N={self.n_integration_points})"
        )
