"""Gauss-Legendre quadrature rules on the reference interval and square.

The Landau solver uses tensor-product Gauss rules matched to the element
order: a Qk element uses (k+1)x(k+1) points, e.g. Q3 has 16 integration
points per element as in the paper (sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GaussLegendre1D:
    """Gauss-Legendre rule with ``npoints`` nodes on ``[-1, 1]``.

    Exact for polynomials of degree ``2*npoints - 1``.
    """

    npoints: int

    def __post_init__(self) -> None:
        if self.npoints < 1:
            raise ValueError(f"need at least one point, got {self.npoints}")

    @property
    def points(self) -> np.ndarray:
        pts, _ = np.polynomial.legendre.leggauss(self.npoints)
        return pts

    @property
    def weights(self) -> np.ndarray:
        _, wts = np.polynomial.legendre.leggauss(self.npoints)
        return wts


class TensorQuadrature:
    """Tensor-product Gauss-Legendre rule on the reference square ``[-1,1]^2``.

    Point ordering is lexicographic with the x (first) coordinate fastest,
    matching the basis tabulation in :mod:`repro.fem.reference`.

    Attributes
    ----------
    points:
        ``(nq, 2)`` reference coordinates.
    weights:
        ``(nq,)`` quadrature weights (sum to 4, the reference-square area).
    """

    def __init__(self, npoints_1d: int):
        if npoints_1d < 1:
            raise ValueError(f"need at least one point per direction, got {npoints_1d}")
        self.npoints_1d = npoints_1d
        rule = GaussLegendre1D(npoints_1d)
        x = rule.points
        w = rule.weights
        # lexicographic: index q = j*n + i -> (x[i], x[j]); x fastest
        X, Y = np.meshgrid(x, x, indexing="xy")
        self.points = np.column_stack([X.ravel(), Y.ravel()])
        self.weights = np.outer(w, w).ravel()

    @property
    def npoints(self) -> int:
        return self.npoints_1d**2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TensorQuadrature({self.npoints_1d}x{self.npoints_1d})"
