"""Global degree-of-freedom numbering with hanging-node constraints.

Non-conforming (2:1 balanced) quadtree meshes have "constrained vertices":
nodes on the fine side of a level jump whose values are interpolated from the
coarse edge, exactly as the paper describes for the GPU assembly ("elements
with constrained faces ... interpolate each matrix value associated with a
constrained degree of freedom to four degrees of freedom in the global matrix
with the Q3 elements used here").

The constraint structure is captured in a sparse prolongation ``P`` of shape
``(n_full, n_free)``: free (unconstrained) nodes map to themselves and each
constrained node row holds the coarse-edge interpolation weights (``k+1``
weights for a Qk edge, i.e. 4 for Q3).  Assembled full-space operators are
reduced as ``P^T A P`` and full-space nodal vectors expand as ``P @ x``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .mesh import Mesh
from .reference import LagrangeQuad, lagrange_basis_1d


def _coord_keys(coords: np.ndarray, tol: float) -> np.ndarray:
    """Integer keys for coordinate deduplication at tolerance ``tol``."""
    return np.round(coords / tol).astype(np.int64)


class DofMap:
    """Global numbering of Qk nodes on a (possibly non-conforming) mesh.

    Attributes
    ----------
    cell_nodes:
        ``(nelem, nb)`` full-space node index per element node.
    node_coords:
        ``(n_full, 2)`` physical coordinates of all unique nodes.
    n_full / n_free:
        counts of all nodes and of unconstrained nodes.
    P:
        ``(n_full, n_free)`` CSR constraint/prolongation matrix.
    free_nodes:
        full-space indices of the free nodes, in free-numbering order.
    """

    def __init__(self, mesh: Mesh, element: LagrangeQuad, tol: float = 1e-9):
        self.mesh = mesh
        self.element = element
        scale = max(abs(b) for b in mesh.bounds) or 1.0
        self._tol = tol * scale

        phys = mesh.map_to_physical(element.nodes)  # (nelem, nb, 2)
        nelem, nb, _ = phys.shape
        flat = phys.reshape(-1, 2)
        keys = _coord_keys(flat, self._tol)
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        self.n_full = uniq.shape[0]
        self.cell_nodes = inverse.reshape(nelem, nb)
        # representative coordinates (first occurrence)
        self.node_coords = np.zeros((self.n_full, 2))
        first = np.full(self.n_full, -1, dtype=np.int64)
        seen_order = np.argsort(inverse, kind="stable")
        prev = -1
        for idx in seen_order:
            g = inverse[idx]
            if g != prev:
                first[g] = idx
                prev = g
        self.node_coords = flat[first]

        constraints = self._find_constraints()
        self._build_prolongation(constraints)

    # ------------------------------------------------------------------
    def _element_edges(self):
        """Yield ``(elem, axis, line, lo, hi, edge_id)`` for all element edges.

        ``axis`` is the coordinate held fixed on the edge (0 = r, 1 = z);
        ``line`` its value; ``[lo, hi]`` the span in the other coordinate.
        """
        mesh = self.mesh
        upper = mesh.lower + mesh.size
        for e in range(mesh.nelem):
            r0, z0 = mesh.lower[e]
            r1, z1 = upper[e]
            yield e, 1, z0, r0, r1, 0  # bottom: z = z0
            yield e, 0, r1, z0, z1, 1  # right:  r = r1
            yield e, 1, z1, r0, r1, 2  # top:    z = z1
            yield e, 0, r0, z0, z1, 3  # left:   r = r0

    def _find_constraints(self) -> dict[int, dict[int, float]]:
        """Detect hanging nodes and their (possibly chained) raw constraints.

        A node hanging on a level interface belongs to the *fine* side; it is
        constrained by the *coarse* edge's nodes.  The discriminator is edge
        length: node ``n`` on line ``l`` is constrained by an edge on ``l``
        only if that edge is strictly longer than every edge on ``l`` of the
        elements that own ``n`` as a node (otherwise ``n`` is a regular node
        of the finest trace space and needs no constraint — e.g. interior
        nodes of the coarse edge itself).  Targets of a constraint may
        themselves be constrained; chains are resolved later.
        """
        elem = self.element
        tol = self._tol
        node_xy = self.node_coords
        elem_node_sets = [set(row.tolist()) for row in self.cell_nodes]

        # index nodes by their rounded r and z coordinates for line lookups
        rkey = np.round(node_xy[:, 0] / tol).astype(np.int64)
        zkey = np.round(node_xy[:, 1] / tol).astype(np.int64)
        by_r: dict[int, list[int]] = {}
        by_z: dict[int, list[int]] = {}
        for n in range(self.n_full):
            by_r.setdefault(int(rkey[n]), []).append(n)
            by_z.setdefault(int(zkey[n]), []).append(n)

        def nodes_on_line(axis: int, line: float) -> list[int]:
            key = int(round(line / tol))
            return (by_r if axis == 0 else by_z).get(key, [])

        # pass 1: longest owning edge per (node, axis, line)
        own_len: dict[tuple[int, int, int], float] = {}
        for e, axis, line, lo, hi, edge_id in self._element_edges():
            local = elem.edge_nodes(edge_id)
            length = hi - lo
            linekey = int(round(line / tol))
            for n in self.cell_nodes[e, local]:
                k = (int(n), axis, linekey)
                if own_len.get(k, 0.0) < length:
                    own_len[k] = length

        # pass 2: constraints from strictly longer foreign edges
        constraints: dict[int, dict[int, float]] = {}
        edge_nodes_1d = elem.nodes_1d
        for e, axis, line, lo, hi, edge_id in self._element_edges():
            cands = nodes_on_line(axis, line)
            if not cands:
                continue
            length = hi - lo
            linekey = int(round(line / tol))
            local = elem.edge_nodes(edge_id)
            targets = self.cell_nodes[e, local]
            for n in cands:
                if n in elem_node_sets[e]:
                    continue
                span_coord = node_xy[n, 1 - axis]
                if span_coord < lo - tol or span_coord > hi + tol:
                    continue
                owned = own_len.get((n, axis, linekey), 0.0)
                if length <= owned * (1.0 + 1e-12):
                    continue  # not a coarser edge than the node's own
                # n hangs on this (coarser) edge: interpolate from its nodes
                t = 2.0 * (span_coord - lo) / (hi - lo) - 1.0
                w = lagrange_basis_1d(edge_nodes_1d, np.array([t]))[0]
                entry = {
                    int(targets[k]): float(w[k])
                    for k in range(len(local))
                    if abs(w[k]) > 1e-14
                }
                prev = constraints.get(n)
                if prev is None or length > max(
                    0.0, *(own_len.get((int(tn), axis, linekey), 0.0) for tn in prev)
                ):
                    constraints[n] = entry
        return constraints

    def _build_prolongation(self, constraints: dict[int, dict[int, float]]) -> None:
        """Resolve constraint chains and assemble ``P``."""
        constrained = set(constraints)
        free_nodes = np.array(
            [n for n in range(self.n_full) if n not in constrained], dtype=np.int64
        )
        self.free_nodes = free_nodes
        self.n_free = len(free_nodes)
        full_to_free = -np.ones(self.n_full, dtype=np.int64)
        full_to_free[free_nodes] = np.arange(self.n_free)
        self.full_to_free = full_to_free

        def resolve(node: int, depth: int = 0) -> dict[int, float]:
            if node not in constraints:
                return {node: 1.0}
            if depth > 32:
                raise RuntimeError(
                    f"constraint chain too deep at node {node}; mesh is not 2:1 balanced"
                )
            out: dict[int, float] = {}
            for tgt, w in constraints[node].items():
                for base, wb in resolve(tgt, depth + 1).items():
                    out[base] = out.get(base, 0.0) + w * wb
            return out

        rows, cols, vals = [], [], []
        for n in range(self.n_full):
            for base, w in resolve(n).items():
                fr = full_to_free[base]
                if fr < 0:  # should not happen after resolution
                    raise RuntimeError(f"unresolved constraint target {base}")
                rows.append(n)
                cols.append(int(fr))
                vals.append(w)
        self.P = sp.csr_matrix(
            (vals, (rows, cols)), shape=(self.n_full, self.n_free)
        )
        self.n_constrained = self.n_full - self.n_free

    # ------------------------------------------------------------------
    def reduce_matrix(self, A_full: sp.spmatrix) -> sp.csr_matrix:
        """``P^T A P`` — fold constrained rows/columns into free dofs."""
        return (self.P.T @ A_full @ self.P).tocsr()

    def reduce_vector(self, b_full: np.ndarray) -> np.ndarray:
        return self.P.T @ b_full

    def expand(self, x_free: np.ndarray) -> np.ndarray:
        """Full-space nodal values (constrained nodes interpolated)."""
        return self.P @ x_free

    def interpolate(self, func) -> np.ndarray:
        """Free-space vector with ``func(r, z)`` evaluated at free nodes."""
        xy = self.node_coords[self.free_nodes]
        return np.asarray(func(xy[:, 0], xy[:, 1]), dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DofMap(Q{self.element.order}, nelem={self.mesh.nelem}, "
            f"n_free={self.n_free}, n_constrained={self.n_constrained})"
        )
