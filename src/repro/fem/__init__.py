"""Finite element substrate: quadrature, tensor-product Lagrange elements,
quadrilateral meshes in (r, z) velocity space, DoF maps with hanging-node
constraints, and generic weak-form assembly.

This subpackage plays the role of PETSc's DMPlex + PetscFE for the purposes
of the reproduction: everything the Landau operator needs from a finite
element library is implemented here from scratch.
"""

from .quadrature import GaussLegendre1D, TensorQuadrature
from .reference import LagrangeQuad
from .mesh import Mesh
from .dofmap import DofMap
from .function_space import FunctionSpace
from .assembly import (
    ScatterMap,
    assemble_mass,
    assemble_weighted_mass,
    assemble_z_advection,
    assemble_coefficient_operator,
    get_scatter_map,
)
from .vtk import mesh_to_vtk, field_to_vtk

__all__ = [
    "GaussLegendre1D",
    "TensorQuadrature",
    "LagrangeQuad",
    "Mesh",
    "DofMap",
    "FunctionSpace",
    "ScatterMap",
    "assemble_mass",
    "assemble_weighted_mass",
    "assemble_z_advection",
    "assemble_coefficient_operator",
    "get_scatter_map",
    "mesh_to_vtk",
    "field_to_vtk",
]
