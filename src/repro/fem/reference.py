"""Tensor-product Lagrange (Qk) reference elements on ``[-1, 1]^2``.

The paper uses "tensor elements" where the number of basis functions equals
the number of integration points (``N_b = N_q``, e.g. 16 for Q3).  The basis
here is nodal Lagrange on Gauss-Lobatto-Legendre (GLL) points, which keeps
the interpolation well conditioned at higher order; node ordering is
lexicographic with the first reference coordinate fastest, matching
:class:`repro.fem.quadrature.TensorQuadrature`.

The ``tabulate`` method produces the ``B`` (values) and ``D`` (reference
gradients) tables passed to the element kernels — the direct analogue of the
finite element "tablatures" fed to Algorithm 1 in the paper.
"""

from __future__ import annotations

import numpy as np


def gauss_lobatto_points(n: int) -> np.ndarray:
    """``n`` Gauss-Lobatto-Legendre points on ``[-1, 1]`` (including endpoints).

    For ``n >= 3`` the interior points are the roots of ``P'_{n-1}``, the
    derivative of the Legendre polynomial of degree ``n-1``.
    """
    if n < 2:
        raise ValueError(f"GLL needs at least 2 points, got {n}")
    if n == 2:
        return np.array([-1.0, 1.0])
    # roots of derivative of Legendre polynomial of degree n-1
    cP = np.zeros(n)
    cP[-1] = 1.0
    dP = np.polynomial.legendre.legder(cP)
    interior = np.polynomial.legendre.legroots(dP)
    return np.concatenate([[-1.0], np.sort(interior), [1.0]])


def lagrange_basis_1d(nodes: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate the 1D Lagrange basis on ``nodes`` at points ``x``.

    Returns ``(len(x), len(nodes))``; row ``i`` holds all basis values at
    ``x[i]`` and sums to 1.
    """
    nodes = np.asarray(nodes, dtype=float)
    x = np.atleast_1d(np.asarray(x, dtype=float))
    n = len(nodes)
    vals = np.ones((len(x), n))
    for j in range(n):
        for m in range(n):
            if m == j:
                continue
            vals[:, j] *= (x - nodes[m]) / (nodes[j] - nodes[m])
    return vals


def lagrange_deriv_1d(nodes: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate first derivatives of the 1D Lagrange basis at ``x``.

    Returns ``(len(x), len(nodes))``.
    """
    nodes = np.asarray(nodes, dtype=float)
    x = np.atleast_1d(np.asarray(x, dtype=float))
    n = len(nodes)
    out = np.zeros((len(x), n))
    for j in range(n):
        # d/dx prod_m (x - x_m)/(x_j - x_m) = sum_k 1/(x_j-x_k) prod_{m!=k} ...
        for k in range(n):
            if k == j:
                continue
            term = np.ones(len(x)) / (nodes[j] - nodes[k])
            for m in range(n):
                if m == j or m == k:
                    continue
                term *= (x - nodes[m]) / (nodes[j] - nodes[m])
            out[:, j] += term
    return out


class LagrangeQuad:
    """Qk nodal Lagrange element on the reference square.

    Attributes
    ----------
    order:
        polynomial degree ``k``.
    nodes_1d:
        the ``k+1`` GLL nodes in each direction.
    nnodes:
        ``(k+1)^2`` basis functions / nodes.
    """

    def __init__(self, order: int):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.order = order
        self.nodes_1d = gauss_lobatto_points(order + 1)
        self.nnodes_1d = order + 1
        self.nnodes = self.nnodes_1d**2
        # lexicographic node coordinates on the reference square
        xi, eta = np.meshgrid(self.nodes_1d, self.nodes_1d, indexing="xy")
        self.nodes = np.column_stack([xi.ravel(), eta.ravel()])

    def tabulate(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Tabulate basis values and reference gradients at ``points``.

        Parameters
        ----------
        points:
            ``(nq, 2)`` reference coordinates.

        Returns
        -------
        B:
            ``(nq, nnodes)`` basis values.
        D:
            ``(nq, nnodes, 2)`` reference-coordinate gradients.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        vx = lagrange_basis_1d(self.nodes_1d, points[:, 0])
        vy = lagrange_basis_1d(self.nodes_1d, points[:, 1])
        dx = lagrange_deriv_1d(self.nodes_1d, points[:, 0])
        dy = lagrange_deriv_1d(self.nodes_1d, points[:, 1])
        nq = points.shape[0]
        B = np.empty((nq, self.nnodes))
        D = np.empty((nq, self.nnodes, 2))
        for j in range(self.nnodes_1d):
            for i in range(self.nnodes_1d):
                a = j * self.nnodes_1d + i
                B[:, a] = vx[:, i] * vy[:, j]
                D[:, a, 0] = dx[:, i] * vy[:, j]
                D[:, a, 1] = vx[:, i] * dy[:, j]
        return B, D

    def edge_nodes(self, edge: int) -> np.ndarray:
        """Local node indices on edge ``edge`` in edge-parameter order.

        Edges: 0 = bottom (eta=-1), 1 = right (xi=+1), 2 = top (eta=+1),
        3 = left (xi=-1).  Edge-parameter order runs with increasing
        xi (bottom/top) or increasing eta (left/right).
        """
        n = self.nnodes_1d
        if edge == 0:
            return np.arange(n)
        if edge == 1:
            return np.arange(n) * n + (n - 1)
        if edge == 2:
            return (n - 1) * n + np.arange(n)
        if edge == 3:
            return np.arange(n) * n
        raise ValueError(f"edge must be 0..3, got {edge}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Q{self.order}"
