"""Axis-aligned quadrilateral meshes of the (r, z) velocity half-plane.

The velocity-space domain is ``[0, r_max] x [z_min, z_max]`` in units of the
reference thermal velocity (the paper uses a typical domain size of five
thermal-velocity units, Fig. 3).  All elements are axis-aligned rectangles —
uniform structured grids and the non-conforming quadtree meshes produced by
:mod:`repro.amr` are both of this form — which keeps the element geometry
affine and the per-element Jacobian diagonal.
"""

from __future__ import annotations

import numpy as np


class Mesh:
    """A collection of axis-aligned rectangular elements.

    Parameters
    ----------
    lower:
        ``(nelem, 2)`` lower-left corner of each element ``(r0, z0)``.
    size:
        ``(nelem, 2)`` widths ``(hr, hz)`` of each element.
    """

    def __init__(self, lower: np.ndarray, size: np.ndarray):
        self.lower = np.atleast_2d(np.asarray(lower, dtype=float))
        self.size = np.atleast_2d(np.asarray(size, dtype=float))
        if self.lower.shape != self.size.shape or self.lower.shape[1] != 2:
            raise ValueError(
                f"lower/size must both be (nelem, 2); got {self.lower.shape} and {self.size.shape}"
            )
        if np.any(self.size <= 0):
            raise ValueError("all element sizes must be positive")
        if np.any(self.lower[:, 0] < -1e-12):
            raise ValueError("elements must lie in the r >= 0 half plane")

    @property
    def nelem(self) -> int:
        return self.lower.shape[0]

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """``(r_min, r_max, z_min, z_max)`` of the mesh hull."""
        upper = self.lower + self.size
        return (
            float(self.lower[:, 0].min()),
            float(upper[:, 0].max()),
            float(self.lower[:, 1].min()),
            float(upper[:, 1].max()),
        )

    # --- geometry -------------------------------------------------------------
    def map_to_physical(self, ref_points: np.ndarray) -> np.ndarray:
        """Map reference-square points to physical coordinates per element.

        Parameters
        ----------
        ref_points:
            ``(np, 2)`` points on ``[-1, 1]^2``.

        Returns
        -------
        ``(nelem, np, 2)`` physical coordinates.
        """
        ref = np.atleast_2d(np.asarray(ref_points, dtype=float))
        # x = lower + (ref + 1)/2 * size, broadcast over elements
        return self.lower[:, None, :] + (ref[None, :, :] + 1.0) * 0.5 * self.size[:, None, :]

    def jacobians(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-element affine geometry factors.

        Returns
        -------
        inv_jac:
            ``(nelem, 2)`` diagonal of the inverse Jacobian ``d(ref)/d(phys)``
            — i.e. ``2/hr`` and ``2/hz``.
        det_jac:
            ``(nelem,)`` determinant ``hr*hz/4`` of ``d(phys)/d(ref)``.
        """
        inv_jac = 2.0 / self.size
        det_jac = self.size[:, 0] * self.size[:, 1] / 4.0
        return inv_jac, det_jac

    def element_containing(self, point: np.ndarray) -> int:
        """Index of an element whose closed extent contains ``point`` (-1 if none)."""
        p = np.asarray(point, dtype=float)
        upper = self.lower + self.size
        inside = np.all((self.lower <= p + 1e-12) & (p - 1e-12 <= upper), axis=1)
        hits = np.nonzero(inside)[0]
        return int(hits[0]) if hits.size else -1

    # --- constructors ----------------------------------------------------------
    @classmethod
    def structured(
        cls,
        nr: int,
        nz: int,
        r_max: float,
        z_min: float,
        z_max: float,
    ) -> "Mesh":
        """Uniform ``nr x nz`` grid on ``[0, r_max] x [z_min, z_max]``."""
        if nr < 1 or nz < 1:
            raise ValueError(f"need at least one cell per direction, got {nr}x{nz}")
        if r_max <= 0 or z_max <= z_min:
            raise ValueError("invalid domain extents")
        hr = r_max / nr
        hz = (z_max - z_min) / nz
        r0 = np.arange(nr) * hr
        z0 = z_min + np.arange(nz) * hz
        R0, Z0 = np.meshgrid(r0, z0, indexing="xy")
        lower = np.column_stack([R0.ravel(), Z0.ravel()])
        size = np.full_like(lower, 0.0)
        size[:, 0] = hr
        size[:, 1] = hz
        return cls(lower, size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        b = self.bounds
        return f"Mesh(nelem={self.nelem}, domain=[{b[0]:.3g},{b[1]:.3g}]x[{b[2]:.3g},{b[3]:.3g}])"
