"""Generic weak-form assembly over a :class:`FunctionSpace`.

All forms carry the cylindrical measure ``r dr dz`` (the azimuthal ``2 pi``
cancels between the two sides of the weak form (4) and is applied only when
taking physical moments).  Assembly produces full-space COO triplets which
are folded through the hanging-node constraints (``P^T A P``) — the CPU
"MatSetValues" path; the GPU-style COO/atomic paths live in
:mod:`repro.sparse`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .function_space import FunctionSpace


def _scatter(fs: FunctionSpace, Ce: np.ndarray) -> sp.csr_matrix:
    """Scatter per-element dense blocks ``(ne, nb, nb)`` into the reduced matrix."""
    nodes = fs.dofmap.cell_nodes
    ne, nb = nodes.shape
    rows = np.repeat(nodes, nb, axis=1).ravel()
    cols = np.tile(nodes, (1, nb)).ravel()
    A_full = sp.coo_matrix(
        (Ce.ravel(), (rows, cols)), shape=(fs.dofmap.n_full, fs.dofmap.n_full)
    ).tocsr()
    return fs.dofmap.reduce_matrix(A_full)


def element_mass_blocks(fs: FunctionSpace, coefficient: np.ndarray | None = None) -> np.ndarray:
    """Per-element mass blocks ``C[e,a,b] = sum_q w r (c) psi_a psi_b``."""
    w = fs.qweights if coefficient is None else fs.qweights * coefficient
    return np.einsum("eq,qa,qb->eab", w, fs.B, fs.B)


def assemble_mass(fs: FunctionSpace) -> sp.csr_matrix:
    """Cylindrically weighted mass matrix ``M_ab = int r psi_a psi_b``."""
    return _scatter(fs, element_mass_blocks(fs))


def assemble_weighted_mass(fs: FunctionSpace, coefficient: np.ndarray) -> sp.csr_matrix:
    """Mass matrix with an extra scalar coefficient given at quadrature points.

    ``coefficient`` has shape ``(ne, nq)``.
    """
    return _scatter(fs, element_mass_blocks(fs, coefficient))


def assemble_z_advection(fs: FunctionSpace) -> sp.csr_matrix:
    """``A_ab = int r psi_a  d(psi_b)/dz`` — the E-field advection operator.

    The acceleration term of eq. (1) contributes ``(z_s m0/m_s) E~ A f`` to
    the left-hand side for species ``s``.
    """
    # physical z-gradient of the trial basis per element
    dz = np.einsum("qb,e->eqb", fs.Dref[:, :, 1], fs.inv_jac[:, 1])
    Ce = np.einsum("eq,qa,eqb->eab", fs.qweights, fs.B, dz)
    return _scatter(fs, Ce)


def assemble_coefficient_operator(
    fs: FunctionSpace,
    D_q: np.ndarray,
    K_q: np.ndarray,
) -> sp.csr_matrix:
    """Assemble the Landau weak form for given point-wise coefficients.

    Implements (5) + (6) with the signs supplied by the caller:

    ``C_ab = sum_q w r [ grad(psi_a) . D_q . grad(psi_b) + grad(psi_a) . K_q psi_b ]``

    Parameters
    ----------
    D_q:
        ``(ne, nq, 2, 2)`` diffusion tensor at quadrature points.
    K_q:
        ``(ne, nq, 2)`` friction vector at quadrature points.
    """
    ne, nq = fs.qweights.shape
    if D_q.shape != (ne, nq, 2, 2) or K_q.shape != (ne, nq, 2):
        raise ValueError(
            f"coefficient shapes must be ({ne},{nq},2,2) and ({ne},{nq},2); "
            f"got {D_q.shape} and {K_q.shape}"
        )
    # physical gradients of basis: (e, q, b, d)
    gphys = np.einsum("qbd,ed->eqbd", fs.Dref, fs.inv_jac)
    w = fs.qweights
    Ce = np.einsum("eq,eqad,eqdc,eqbc->eab", w, gphys, D_q, gphys, optimize=True)
    Ce += np.einsum("eq,eqad,eqd,qb->eab", w, gphys, K_q, fs.B, optimize=True)
    return _scatter(fs, Ce)


def lumped_counts(fs: FunctionSpace) -> dict[str, int]:
    """Bookkeeping used by Table I: IP count, tensor count and equations."""
    N = fs.n_integration_points
    return {
        "integration_points": N,
        "landau_tensors": N * N,
        "equations": fs.ndofs,
        "cells": fs.nelem,
    }
