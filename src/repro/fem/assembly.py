"""Generic weak-form assembly over a :class:`FunctionSpace`.

All forms carry the cylindrical measure ``r dr dz`` (the azimuthal ``2 pi``
cancels between the two sides of the weak form (4) and is applied only when
taking physical moments).  Assembly produces full-space COO triplets which
are folded through the hanging-node constraints (``P^T A P``) — the CPU
"MatSetValues" path; the GPU-style COO/atomic paths live in
:mod:`repro.sparse`.

:class:`ScatterMap` is the amortized version of that pipeline: the COO
pattern, the constraint folding and the COO→CSR deduplication are symbolic
(state-independent), so they are precomputed once per mesh as a sparse
linear map from element-block values straight to reduced-CSR ``data``.
Every subsequent assembly on the same space is then a single sparse
matvec plus a structure-sharing CSR wrap — the "pattern frozen, values
only" reassembly the paper's GPU path relies on.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .function_space import FunctionSpace


def _scatter(fs: FunctionSpace, Ce: np.ndarray) -> sp.csr_matrix:
    """Scatter per-element dense blocks ``(ne, nb, nb)`` into the reduced matrix."""
    nodes = fs.dofmap.cell_nodes
    ne, nb = nodes.shape
    rows = np.repeat(nodes, nb, axis=1).ravel()
    cols = np.tile(nodes, (1, nb)).ravel()
    A_full = sp.coo_matrix(
        (Ce.ravel(), (rows, cols)), shape=(fs.dofmap.n_full, fs.dofmap.n_full)
    ).tocsr()
    return fs.dofmap.reduce_matrix(A_full)


class ScatterMap:
    """Precomputed element→reduced-CSR scatter for one function space.

    The assembled reduced matrix is linear in the element blocks:
    ``A = P^T (scatter Ce) P``, so its CSR ``data`` is ``T @ Ce.ravel()``
    for a fixed sparse ``T`` of shape ``(nnz, ne * nb * nb)`` whose
    entries are products of constraint weights.  ``T``, the reduced CSR
    ``indptr``/``indices`` and the physical basis gradients are computed
    once here; :meth:`assemble` then costs one sparse matvec per build
    and reuses the index arrays across every matrix it returns (species
    blocks share one sparsity, so they all share one structure).

    Returned matrices share ``indptr``/``indices`` with the map — they
    must not be mutated in place (standard scipy operations never do).
    """

    def __init__(self, fs: FunctionSpace):
        dm = fs.dofmap
        nodes = dm.cell_nodes
        ne, nb = nodes.shape
        rows = np.repeat(nodes, nb, axis=1).ravel()
        cols = np.tile(nodes, (1, nb)).ravel()

        P = dm.P.tocsr()
        counts = np.diff(P.indptr)
        cnt_r = counts[rows]
        cnt_c = counts[cols]
        reps = cnt_r * cnt_c  # expansion factor of each COO triplet
        E = int(reps.sum())
        src = np.repeat(np.arange(rows.size, dtype=np.int64), reps)
        first = np.concatenate(([0], np.cumsum(reps)[:-1]))
        t = np.arange(E, dtype=np.int64) - first[src]
        a, b = np.divmod(t, cnt_c[src])
        ridx = P.indptr[rows][src] + a
        cidx = P.indptr[cols][src] + b
        frees_r = P.indices[ridx]
        frees_c = P.indices[cidx]
        weights = P.data[ridx] * P.data[cidx]

        order = np.lexsort((frees_c, frees_r))
        fr = frees_r[order]
        fc = frees_c[order]
        new = np.empty(E, dtype=bool)
        if E:
            new[0] = True
            new[1:] = (fr[1:] != fr[:-1]) | (fc[1:] != fc[:-1])
        pos = np.cumsum(new) - 1  # reduced-CSR data slot of each expansion

        self.n_free = dm.n_free
        self.nnz = int(new.sum())
        self.indices = fc[new].astype(np.int32)
        row_counts = np.bincount(fr[new], minlength=self.n_free)
        self.indptr = np.concatenate(
            ([0], np.cumsum(row_counts))
        ).astype(np.int32)
        self.T = sp.csr_matrix(
            (weights[order], (pos, src[order])),
            shape=(self.nnz, rows.size),
        )
        # geometry caches shared by the coefficient-operator fast path
        self.gphys = np.einsum("qbd,ed->eqbd", fs.Dref, fs.inv_jac)
        self.builds = 0

    # ------------------------------------------------------------------
    def scatter_data(self, Ce: np.ndarray) -> np.ndarray:
        """Reduced-CSR ``data`` for element blocks ``(ne, nb, nb)``."""
        return self.T @ np.ascontiguousarray(Ce).reshape(-1)

    def scatter_data_batch(self, Ce: np.ndarray) -> np.ndarray:
        """Reduced-CSR ``data`` rows for a batch of element-block sets.

        ``Ce`` has shape ``(X, ne, nb, nb)`` (or ``(X, ne*nb*nb)``); the
        scatter is one sparse matmul for the whole batch instead of ``X``
        matvecs.  Returns ``(X, nnz)``.
        """
        X = Ce.shape[0]
        flat = np.ascontiguousarray(Ce).reshape(X, -1)
        return np.ascontiguousarray((self.T @ flat.T).T)

    def matrix(self, data: np.ndarray) -> sp.csr_matrix:
        """Wrap a ``data`` vector with the cached structure (zero copies
        of the index arrays)."""
        A = sp.csr_matrix(
            (data, self.indices, self.indptr),
            shape=(self.n_free, self.n_free),
            copy=False,
        )
        A.has_sorted_indices = True
        A.has_canonical_format = True
        self.builds += 1
        return A

    def assemble(self, Ce: np.ndarray) -> sp.csr_matrix:
        """Structure-reusing equivalent of the COO→CSR ``_scatter`` path."""
        return self.matrix(self.scatter_data(Ce))


def get_scatter_map(fs: FunctionSpace) -> ScatterMap:
    """The (lazily built, per-space cached) :class:`ScatterMap` of ``fs``."""
    sm = getattr(fs, "_scatter_map", None)
    if sm is None:
        sm = ScatterMap(fs)
        fs._scatter_map = sm
    return sm


def element_mass_blocks(fs: FunctionSpace, coefficient: np.ndarray | None = None) -> np.ndarray:
    """Per-element mass blocks ``C[e,a,b] = sum_q w r (c) psi_a psi_b``."""
    w = fs.qweights if coefficient is None else fs.qweights * coefficient
    return np.einsum("eq,qa,qb->eab", w, fs.B, fs.B)


def assemble_mass(fs: FunctionSpace) -> sp.csr_matrix:
    """Cylindrically weighted mass matrix ``M_ab = int r psi_a psi_b``."""
    return _scatter(fs, element_mass_blocks(fs))


def assemble_weighted_mass(fs: FunctionSpace, coefficient: np.ndarray) -> sp.csr_matrix:
    """Mass matrix with an extra scalar coefficient given at quadrature points.

    ``coefficient`` has shape ``(ne, nq)``.
    """
    return _scatter(fs, element_mass_blocks(fs, coefficient))


def assemble_z_advection(fs: FunctionSpace) -> sp.csr_matrix:
    """``A_ab = int r psi_a  d(psi_b)/dz`` — the E-field advection operator.

    The acceleration term of eq. (1) contributes ``(z_s m0/m_s) E~ A f`` to
    the left-hand side for species ``s``.
    """
    # physical z-gradient of the trial basis per element
    dz = np.einsum("qb,e->eqb", fs.Dref[:, :, 1], fs.inv_jac[:, 1])
    Ce = np.einsum("eq,qa,eqb->eab", fs.qweights, fs.B, dz)
    return _scatter(fs, Ce)


def assemble_coefficient_operator(
    fs: FunctionSpace,
    D_q: np.ndarray,
    K_q: np.ndarray,
    structure: "ScatterMap | None" = None,
    backend=None,
) -> sp.csr_matrix:
    """Assemble the Landau weak form for given point-wise coefficients.

    Implements (5) + (6) with the signs supplied by the caller:

    ``C_ab = sum_q w r [ grad(psi_a) . D_q . grad(psi_b) + grad(psi_a) . K_q psi_b ]``

    Parameters
    ----------
    D_q:
        ``(ne, nq, 2, 2)`` diffusion tensor at quadrature points.
    K_q:
        ``(ne, nq, 2)`` friction vector at quadrature points.
    structure:
        optional precomputed :class:`ScatterMap`; when given, the sparse
        structure work (COO build, dedup, constraint folding) is skipped
        and only the ``data`` vector is recomputed.
    backend:
        optional :class:`~repro.backend.base.ExecutionBackend`; when
        given, the two element contractions run through
        ``backend.contract`` (as the ``X = 1`` slice of the batched
        assembly specs, so compiled backends hit their kernels) instead
        of inline ``np.einsum``.
    """
    ne, nq = fs.qweights.shape
    if D_q.shape != (ne, nq, 2, 2) or K_q.shape != (ne, nq, 2):
        raise ValueError(
            f"coefficient shapes must be ({ne},{nq},2,2) and ({ne},{nq},2); "
            f"got {D_q.shape} and {K_q.shape}"
        )
    # physical gradients of basis: (e, q, b, d)
    gphys = (
        structure.gphys
        if structure is not None
        else np.einsum("qbd,ed->eqbd", fs.Dref, fs.inv_jac)
    )
    w = fs.qweights
    if backend is not None:
        Ce = backend.contract(
            "eq,eqad,xeqdc,eqbc->xeab", w, gphys, D_q[None], gphys
        )[0]
        Ce = Ce + backend.contract(
            "eq,eqad,xeqd,qb->xeab", w, gphys, K_q[None], fs.B
        )[0]
    else:
        Ce = np.einsum(
            "eq,eqad,eqdc,eqbc->eab", w, gphys, D_q, gphys, optimize=True
        )
        Ce += np.einsum("eq,eqad,eqd,qb->eab", w, gphys, K_q, fs.B, optimize=True)
    if structure is not None:
        return structure.assemble(Ce)
    return _scatter(fs, Ce)


def lumped_counts(fs: FunctionSpace) -> dict[str, int]:
    """Bookkeeping used by Table I: IP count, tensor count and equations."""
    N = fs.n_integration_points
    return {
        "integration_points": N,
        "landau_tensors": N * N,
        "equations": fs.ndofs,
        "cells": fs.nelem,
    }
