"""Legacy-VTK output of meshes and fields (the Fig. 1/3 visualizations).

The paper renders its meshes/distributions in VisIt; this writer produces
ASCII legacy ``.vtk`` unstructured-grid files (quad cells, point data) that
VisIt/ParaView open directly.  Each element is written with its own four
corners (duplicated points at hanging interfaces — harmless for
visualization and faithful to the non-conforming mesh; the interpolation
artifacts the paper's figure captions mention come from exactly this
linear-per-cell rendering).
"""

from __future__ import annotations

import io

import numpy as np

from .function_space import FunctionSpace
from .mesh import Mesh


def mesh_to_vtk(mesh: Mesh, fields: dict[str, np.ndarray] | None = None) -> str:
    """Serialize a mesh (+ optional per-cell data) to legacy VTK text."""
    out = io.StringIO()
    ne = mesh.nelem
    out.write("# vtk DataFile Version 3.0\n")
    out.write("repro Landau velocity-space mesh\nASCII\n")
    out.write("DATASET UNSTRUCTURED_GRID\n")
    out.write(f"POINTS {4 * ne} double\n")
    upper = mesh.lower + mesh.size
    for e in range(ne):
        r0, z0 = mesh.lower[e]
        r1, z1 = upper[e]
        for (r, z) in ((r0, z0), (r1, z0), (r1, z1), (r0, z1)):
            out.write(f"{r:.16g} {z:.16g} 0\n")
    out.write(f"CELLS {ne} {5 * ne}\n")
    for e in range(ne):
        base = 4 * e
        out.write(f"4 {base} {base + 1} {base + 2} {base + 3}\n")
    out.write(f"CELL_TYPES {ne}\n")
    out.write("9\n" * ne)  # VTK_QUAD
    if fields:
        out.write(f"CELL_DATA {ne}\n")
        for name, data in fields.items():
            data = np.asarray(data, dtype=float)
            if data.shape != (ne,):
                raise ValueError(
                    f"cell field {name!r} must have shape ({ne},), got {data.shape}"
                )
            out.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
            out.write("\n".join(f"{v:.16g}" for v in data) + "\n")
    return out.getvalue()


def field_to_vtk(
    fs: FunctionSpace, fields: dict[str, np.ndarray], refine: int = 1
) -> str:
    """Serialize FE fields sampled on each element's nodal lattice.

    ``fields`` maps names to free-dof coefficient vectors.  Each element is
    emitted as a ``(k*refine)`` x ``(k*refine)`` patch of sub-quads with
    point data — enough to see the high-order structure that the linear
    per-cell rendering of :func:`mesh_to_vtk` flattens.
    """
    if refine < 1:
        raise ValueError(f"refine must be >= 1, got {refine}")
    k = fs.element.order * refine
    # reference lattice
    t = np.linspace(-1.0, 1.0, k + 1)
    X, Y = np.meshgrid(t, t, indexing="xy")
    ref = np.column_stack([X.ravel(), Y.ravel()])
    B, _ = fs.element.tabulate(ref)
    npts = (k + 1) ** 2
    ne = fs.nelem
    phys = fs.mesh.map_to_physical(ref)  # (ne, npts, 2)

    values = {}
    for name, x in fields.items():
        x = np.asarray(x, dtype=float)
        if x.shape != (fs.ndofs,):
            raise ValueError(
                f"field {name!r} must have shape ({fs.ndofs},), got {x.shape}"
            )
        cd = fs.cell_dofs(x)  # (ne, nb)
        values[name] = np.einsum("pb,eb->ep", B, cd)

    out = io.StringIO()
    out.write("# vtk DataFile Version 3.0\n")
    out.write("repro Landau distribution\nASCII\n")
    out.write("DATASET UNSTRUCTURED_GRID\n")
    out.write(f"POINTS {ne * npts} double\n")
    for e in range(ne):
        for p in range(npts):
            out.write(f"{phys[e, p, 0]:.16g} {phys[e, p, 1]:.16g} 0\n")
    ncell = ne * k * k
    out.write(f"CELLS {ncell} {5 * ncell}\n")
    for e in range(ne):
        base = e * npts
        for j in range(k):
            for i in range(k):
                a = base + j * (k + 1) + i
                out.write(f"4 {a} {a + 1} {a + k + 2} {a + k + 1}\n")
    out.write(f"CELL_TYPES {ncell}\n")
    out.write("9\n" * ncell)
    out.write(f"POINT_DATA {ne * npts}\n")
    for name, vals in values.items():
        out.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
        out.write("\n".join(f"{v:.16g}" for v in vals.ravel()) + "\n")
    return out.getvalue()
