"""Linear-solver fallback chain: band LU -> splu -> GMRES.

The paper's custom RCM band LU (section III-G) is the fast path; SuperLU
is the robust general direct solve; preconditioned GMRES
(:mod:`repro.sparse.iterative`) is the last resort that survives band
structure the direct solvers choke on.  The chain presents the standard
``factory(A) -> solve(b)`` plug of
:class:`repro.core.solver.ImplicitLandauSolver` and, per right-hand side,
walks the backends in order until one produces a finite solution —
recording which backend served each solve (and every failure it skipped
over) into the solver's :class:`~repro.core.solver.NewtonStats`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .exceptions import SolveFailure


def _band_backend(A: sp.spmatrix) -> Callable[[np.ndarray], np.ndarray]:
    from ..sparse.band import band_solver_factory

    return band_solver_factory(A)


def _splu_backend(A: sp.spmatrix) -> Callable[[np.ndarray], np.ndarray]:
    return spla.splu(sp.csc_matrix(A)).solve


def _gmres_backend(A: sp.spmatrix) -> Callable[[np.ndarray], np.ndarray]:
    from ..sparse.iterative import landau_iterative_solver_factory

    return landau_iterative_solver_factory()(A)


#: name -> factory, in fallback order
DEFAULT_BACKENDS: tuple = (
    ("band", _band_backend),
    ("splu", _splu_backend),
    ("gmres", _gmres_backend),
)


class FallbackSolverChain:
    """A resilient ``factory(A) -> solve(b)`` linear-solver plug.

    Parameters
    ----------
    backends:
        ordered ``(name, factory)`` pairs; defaults to
        ``band -> splu -> gmres``.
    stats:
        optional stats sink — any object with a ``backend_solves`` dict
        and a ``record_event(kind, **info)`` method (duck-typed so
        :class:`~repro.core.solver.NewtonStats` works directly).  The
        solver binds its own stats when given ``linear_solver="fallback"``.

    A factorization is attempted lazily per backend and cached only on
    success, so a backend that failed transiently (e.g. an injected fault)
    is retried from scratch on the next right-hand side.
    """

    def __init__(
        self,
        backends: Sequence[tuple[str, Callable]] | None = None,
        stats=None,
    ):
        self.backends = list(backends) if backends is not None else list(DEFAULT_BACKENDS)
        if not self.backends:
            raise ValueError("need at least one linear-solver backend")
        self.stats = stats

    def bind(self, stats) -> "FallbackSolverChain":
        """Attach a stats sink after construction (returns self)."""
        self.stats = stats
        return self

    # ------------------------------------------------------------------
    def _record_solve(self, name: str) -> None:
        if self.stats is not None:
            counts = self.stats.backend_solves
            counts[name] = counts.get(name, 0) + 1

    def _record_failure(self, name: str, err: Exception) -> None:
        if self.stats is not None:
            self.stats.record_event(
                "linear_fallback", backend=name, error=f"{type(err).__name__}: {err}"
            )

    def __call__(self, A: sp.spmatrix) -> Callable[[np.ndarray], np.ndarray]:
        A = sp.csr_matrix(A)
        factors: dict[str, Callable] = {}

        def solve(b: np.ndarray) -> np.ndarray:
            errors = []
            for name, factory in self.backends:
                try:
                    if name not in factors:
                        factors[name] = factory(A)
                    x = np.asarray(factors[name](b), dtype=float)
                    if not np.all(np.isfinite(x)):
                        raise FloatingPointError(
                            f"backend {name!r} returned a non-finite solution"
                        )
                except Exception as err:  # noqa: BLE001 - each backend may
                    # fail its own way (LinAlgError, ZeroDivisionError,
                    # RuntimeError, injected faults); record and move on.
                    factors.pop(name, None)
                    errors.append((name, f"{type(err).__name__}: {err}"))
                    self._record_failure(name, err)
                    continue
                self._record_solve(name)
                return x
            raise SolveFailure(
                "all linear-solver backends failed",
                diagnostics={"errors": errors, "n": A.shape[0]},
            )

        return solve
