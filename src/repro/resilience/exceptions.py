"""Structured failure exceptions for the resilience layer.

Every exception carries a ``diagnostics`` dict so the driver that catches
it (the adaptive :class:`~repro.resilience.controller.TimeStepController`
loop, a batch scheduler, a service endpoint) can log *what* tripped —
which guard, which species, which linear-solver backend — without parsing
message strings.
"""

from __future__ import annotations

import numpy as np


class ResilienceError(RuntimeError):
    """Base class: a failure with a structured diagnostic payload."""

    def __init__(self, message: str, diagnostics: dict | None = None):
        super().__init__(message)
        self.diagnostics = dict(diagnostics or {})

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        base = super().__str__()
        if self.diagnostics:
            keys = ", ".join(f"{k}={v!r}" for k, v in self.diagnostics.items())
            return f"{base} [{keys}]"
        return base


class StepRejected(ResilienceError):
    """A completed time step failed a post-step guard (NaN/Inf state,
    negative density, conserved-moment drift) or the quasi-Newton
    iteration did not converge.  Recoverable: the caller still holds the
    pre-step state and can retry with a smaller ``dt``."""


class SolveFailure(ResilienceError):
    """A solve could not be completed at all: every linear-solver backend
    in the fallback chain failed, or the retry/backoff budget of the
    time-step controller is exhausted.  Not recoverable by shrinking
    ``dt`` further."""


class InjectedFault(SolveFailure):
    """A failure deliberately raised by the fault-injection harness
    (:mod:`repro.resilience.faults`).  Subclasses :class:`SolveFailure`
    so every production recovery path treats it as the real thing."""


class ShmAttachFault(InjectedFault):
    """An injected shared-memory attach failure (:mod:`.faultplan`):
    the worker pretends the per-batch state segment is corrupted or
    already unlinked.  The service retries the batch with an inline
    (pickled) payload, exactly as it would for a real attach error."""


class WorkerHang(ResilienceError):
    """A shard worker process missed its per-batch deadline or a
    heartbeat probe (:mod:`.supervisor`).  The supervisor kills the
    process — a hung worker, unlike a crashed one, never raises
    ``BrokenProcessPool`` on its own — and the batch is retried or
    completed in degraded mode."""


class ServiceOverloaded(ResilienceError):
    """Admission control rejected a solve job: the target shard's bounded
    queue is full.  The caller should back off and resubmit — accepting
    the job would only grow tail latency past any useful deadline."""


class CheckpointError(ResilienceError):
    """A checkpoint file is missing, truncated, or belongs to a different
    model configuration than the one trying to resume from it."""


#: Exception types the adaptive stepping loop may catch and convert into a
#: dt-backoff retry.  Linear-algebra breakdowns (singular factorization,
#: zero band pivot, GMRES stall -> RuntimeError, overflow -> FloatingPointError)
#: are recoverable because a smaller dt makes the system more diagonally
#: dominant; anything else (ValueError, programming errors) propagates.
RECOVERABLE_ERRORS = (
    StepRejected,
    SolveFailure,
    FloatingPointError,
    ZeroDivisionError,
    np.linalg.LinAlgError,
    RuntimeError,
)
