"""Declarative, picklable cross-process fault plans.

:class:`~repro.resilience.faults.FaultInjector` lives in one process: it
wraps solver factories with closures and advances seeded counters in
place, so it cannot follow jobs into serve shard *worker processes*.
:class:`FaultPlan` is the cross-process half of the chaos story: a frozen
dataclass of primitives — trivially picklable — that each worker installs
at startup and interprets locally with deterministic counters.

Four fault families:

* **solver faults** — the :class:`FaultInjector` schedule fields
  (``fail_first_solves`` / ``factorization_failures`` /
  ``nan_solve_indices`` / ``nan_probability`` + ``seed``).  Each worker
  builds its *own* injector from them (:meth:`FaultPlan.injector`), so
  the per-worker fault sequence is deterministic for a fixed batch
  order, independent of which process runs it.
* **worker crashes** — ``crash_batches=(i, ...)``: the worker calls
  ``os._exit`` at the start of its ``i``-th dispatched batch, exactly
  like an OOM-kill or a segfault; the parent sees ``BrokenProcessPool``.
* **worker hangs** — ``hang_batches=(i, ...)``: the worker sleeps
  ``hang_s`` at the start of its ``i``-th batch.  Unlike a crash this
  raises nothing — only a batch deadline or heartbeat watchdog
  (:mod:`.supervisor`) can detect it.
* **shm attach failures** — ``shm_attach_failures=(i, ...)``: the
  worker raises :class:`~repro.resilience.exceptions.ShmAttachFault`
  instead of attaching the ``i``-th shared-memory state payload, like a
  segment corrupted or unlinked under it; the service falls back to an
  inline (pickled) payload for that batch.

Batch indices count each worker process's *own* dispatches and reset
when the process is replaced after a crash — ``crash_batches=(0,)``
therefore crashes the shard on *every* batch (the restart-storm
scenario), while ``crash_batches=(1,)`` crashes each incarnation's
second batch.  ``shards`` limits the plan to specific shard ids
(``None`` = all shards).

With ``executor="thread"`` only the solver-fault schedule applies:
crashing or hanging a shard *thread* would take the whole service down,
which is not a recoverable fault but an outage.  The process executor
runs the full plan.

``REPRO_FAULT_PLAN`` carries a plan through the environment — inline
JSON, or ``@/path/to/plan.json`` — so chaos runs need no code changes.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field, fields

from .exceptions import ShmAttachFault
from .faults import FaultInjector

__all__ = ["FaultPlan", "FaultPlanState"]


def _as_int_tuple(value) -> tuple:
    if value is None:
        return ()
    if isinstance(value, (int, float)):
        value = (value,)
    return tuple(int(v) for v in value)


@dataclass(frozen=True)
class FaultPlan:
    """One declarative chaos schedule (see module docstring)."""

    # solver faults (FaultInjector schedule, rebuilt per worker)
    fail_first_solves: int = 0
    factorization_failures: tuple = ()
    nan_solve_indices: tuple = ()
    nan_probability: float = 0.0
    seed: int = 0
    # process-tier faults (batch indices per worker incarnation)
    crash_batches: tuple = ()
    hang_batches: tuple = ()
    hang_s: float = 30.0
    shm_attach_failures: tuple = ()
    #: shard ids the plan applies to; None = every shard
    shards: tuple | None = None

    def __post_init__(self):
        for name in (
            "factorization_failures",
            "nan_solve_indices",
            "crash_batches",
            "hang_batches",
            "shm_attach_failures",
        ):
            object.__setattr__(self, name, _as_int_tuple(getattr(self, name)))
        if self.shards is not None:
            object.__setattr__(self, "shards", _as_int_tuple(self.shards))
        if not (0.0 <= self.nan_probability <= 1.0):
            raise ValueError(
                f"nan_probability must be in [0, 1], got {self.nan_probability}"
            )
        if self.hang_s <= 0:
            raise ValueError(f"hang_s must be positive, got {self.hang_s}")

    # ------------------------------------------------------------------
    def applies_to(self, shard_id: int) -> bool:
        return self.shards is None or shard_id in self.shards

    @property
    def has_solver_faults(self) -> bool:
        return bool(
            self.fail_first_solves
            or self.factorization_failures
            or self.nan_solve_indices
            or self.nan_probability > 0.0
        )

    @property
    def has_process_faults(self) -> bool:
        return bool(
            self.crash_batches or self.hang_batches or self.shm_attach_failures
        )

    def injector(self, shard_id: int | None = None) -> FaultInjector | None:
        """A fresh seeded :class:`FaultInjector` for this plan's solver
        faults (``None`` when the plan has none, or skips the shard)."""
        if not self.has_solver_faults:
            return None
        if shard_id is not None and not self.applies_to(shard_id):
            return None
        return FaultInjector(
            fail_first_solves=self.fail_first_solves,
            factorization_failures=self.factorization_failures,
            nan_solve_indices=self.nan_solve_indices,
            nan_probability=self.nan_probability,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        data = asdict(self)
        for k, v in data.items():
            if isinstance(v, tuple):
                data[k] = list(v)
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(
                f"fault plan JSON must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown fault plan fields {unknown}; known: {sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_env(cls, env_var: str = "REPRO_FAULT_PLAN") -> "FaultPlan | None":
        """Parse ``REPRO_FAULT_PLAN`` (inline JSON or ``@path``/path)."""
        raw = os.environ.get(env_var)
        if raw is None or not raw.strip():
            return None
        raw = raw.strip()
        if raw.startswith("@"):
            path = raw[1:]
        elif not raw.startswith("{") and os.path.exists(raw):
            path = raw
        else:
            path = None
        if path is not None:
            with open(path, "r", encoding="utf-8") as fh:
                raw = fh.read()
        try:
            return cls.from_json(raw)
        except (ValueError, TypeError) as err:
            raise ValueError(f"invalid {env_var}: {err}") from err


@dataclass
class FaultPlanState:
    """Per-worker interpreter of a :class:`FaultPlan`.

    One instance lives in each shard worker process (module global,
    installed by the worker initializer); counters are local to the
    process, so they reset — deterministically — when a crashed worker
    is replaced.
    """

    plan: FaultPlan
    shard_id: int
    dispatches: int = field(default=0, init=False)
    hangs: int = field(default=0, init=False)
    shm_faults: int = field(default=0, init=False)

    def on_dispatch(self, payload_kind: str) -> None:
        """Run the process-tier schedule for one dispatched batch.

        Called at the top of the worker's batch entry point, *before*
        the state payload is attached.  May never return (crash), may
        stall (hang), may raise :class:`ShmAttachFault`.
        """
        if not self.plan.applies_to(self.shard_id):
            return
        index = self.dispatches
        self.dispatches += 1
        if index in self.plan.crash_batches:
            # flush nothing, run no handlers: a real SIGKILL/OOM doesn't
            os._exit(17)
        if index in self.plan.hang_batches:
            self.hangs += 1
            time.sleep(self.plan.hang_s)
        if payload_kind == "shm" and index in self.plan.shm_attach_failures:
            self.shm_faults += 1
            raise ShmAttachFault(
                "injected shared-memory attach failure",
                diagnostics={"shard": self.shard_id, "dispatch": index},
            )
