"""Worker supervision: watchdog, bounded restart backoff, circuit breaker.

The serve tier's process executor gives each shard a single-worker pool.
PR 6 healed *crashed* workers (``BrokenProcessPool`` → recreate the pool,
retry once); this module supplies everything else a production serve
tier needs to survive the failures long quench runs actually hit:

* :class:`RestartBackoff` — bounded exponential delays between pool
  restarts, so a crash-looping worker cannot hot-spin fork/exec.
* :class:`CircuitBreaker` — per-shard closed → open → half-open state:
  after ``threshold`` consecutive worker failures the shard stops
  hammering the process tier and serves batches in a **degraded**
  in-parent (threaded/numpy) mode; after a cooldown it sends *probe*
  batches back to the process tier and closes again on success
  (availability over raw speed).
* :class:`WorkerWatchdog` — a heartbeat thread that pings idle shard
  workers; a worker that stops answering (stuck in a syscall, SIGSTOPped,
  livelocked) is killed and replaced.  Hung workers — unlike crashed
  ones — never raise on their own, which is exactly why PR 6's
  ``BrokenProcessPool`` handling could not see them.
* :class:`ShardSupervisor` — one per shard: the breaker + backoff +
  the failure-taxonomy counters that land in shard snapshots.

Everything here is executor-agnostic plumbing: the serve service wires
it to real pools, and the knobs ride :class:`SupervisorOptions`
(``REPRO_SERVE_HEARTBEAT_S``, ``REPRO_SERVE_BATCH_DEADLINE_S``,
``REPRO_SERVE_BREAKER_*`` — see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "SupervisorOptions",
    "RestartBackoff",
    "CircuitBreaker",
    "ShardSupervisor",
    "WorkerWatchdog",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: taxonomy keys every supervisor tracks (mirrored in ShardMetrics)
FAILURE_KINDS = (
    "worker_crashes",
    "worker_hangs",
    "deadline_timeouts",
    "heartbeat_misses",
    "shm_attach_faults",
    "breaker_trips",
    "degraded_batches",
    "degraded_jobs",
)


@dataclass(frozen=True)
class SupervisorOptions:
    """Supervision knobs (env overrides in :meth:`from_env`)."""

    #: idle-worker heartbeat period in seconds; 0 disables the watchdog
    heartbeat_s: float = 0.0
    #: wall-clock budget for one batch on the process tier; 0 = no deadline.
    #: Cold costs (the O(N^2) pair-table build and, on the numba backend,
    #: JIT compilation) are paid by the separate *warm* call the service
    #: issues before the first timed batch of each plan, so this budget
    #: only has to cover warm execution.
    batch_deadline_s: float = 0.0
    #: wall-clock budget for the untimed-by-default per-plan warm call
    #: (plan build + backend JIT warmup in a fresh worker); 0 = no
    #: deadline.  Kept separate from ``batch_deadline_s`` precisely so
    #: compile/build time never eats the per-batch budget.
    warm_deadline_s: float = 0.0
    #: consecutive worker failures before the shard's breaker opens
    breaker_threshold: int = 3
    #: degraded batches served before an open breaker half-opens a probe
    breaker_cooldown: int = 2
    #: ceiling for the doubled cooldown after failed probes
    breaker_max_cooldown: int = 16
    #: first restart delay; doubles per consecutive restart up to the max
    restart_backoff_s: float = 0.05
    restart_backoff_max_s: float = 2.0

    def __post_init__(self):
        if self.heartbeat_s < 0:
            raise ValueError(f"heartbeat_s must be >= 0, got {self.heartbeat_s}")
        if self.batch_deadline_s < 0:
            raise ValueError(
                f"batch_deadline_s must be >= 0, got {self.batch_deadline_s}"
            )
        if self.warm_deadline_s < 0:
            raise ValueError(
                f"warm_deadline_s must be >= 0, got {self.warm_deadline_s}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown < 1:
            raise ValueError(
                f"breaker_cooldown must be >= 1, got {self.breaker_cooldown}"
            )
        if self.breaker_max_cooldown < self.breaker_cooldown:
            raise ValueError(
                "breaker_max_cooldown must be >= breaker_cooldown, got "
                f"{self.breaker_max_cooldown} < {self.breaker_cooldown}"
            )
        if self.restart_backoff_s < 0 or self.restart_backoff_max_s < 0:
            raise ValueError("restart backoff delays must be >= 0")

    @classmethod
    def from_env(cls, **overrides) -> "SupervisorOptions":
        env = os.environ
        kw = dict(
            heartbeat_s=float(env.get("REPRO_SERVE_HEARTBEAT_S", cls.heartbeat_s)),
            batch_deadline_s=float(
                env.get("REPRO_SERVE_BATCH_DEADLINE_S", cls.batch_deadline_s)
            ),
            warm_deadline_s=float(
                env.get("REPRO_SERVE_WARM_DEADLINE_S", cls.warm_deadline_s)
            ),
            breaker_threshold=int(
                env.get("REPRO_SERVE_BREAKER_THRESHOLD", cls.breaker_threshold)
            ),
            breaker_cooldown=int(
                env.get("REPRO_SERVE_BREAKER_COOLDOWN", cls.breaker_cooldown)
            ),
            breaker_max_cooldown=int(
                env.get(
                    "REPRO_SERVE_BREAKER_MAX_COOLDOWN", cls.breaker_max_cooldown
                )
            ),
            restart_backoff_s=float(
                env.get("REPRO_SERVE_BREAKER_BACKOFF_S", cls.restart_backoff_s)
            ),
            restart_backoff_max_s=float(
                env.get(
                    "REPRO_SERVE_BREAKER_BACKOFF_MAX_S", cls.restart_backoff_max_s
                )
            ),
        )
        kw.update(overrides)
        return cls(**kw)


class RestartBackoff:
    """Bounded exponential restart delays: ``base * 2^k``, capped.

    ``reset()`` after a successful batch, so an isolated crash pays the
    base delay while a crash storm quickly reaches (and holds) the cap.
    """

    def __init__(self, base_s: float, max_s: float):
        self.base_s = float(base_s)
        self.max_s = float(max_s)
        self.consecutive = 0
        self.restarts = 0
        self.total_sleep_s = 0.0

    def next_delay(self) -> float:
        delay = min(self.base_s * (2.0 ** self.consecutive), self.max_s)
        self.consecutive += 1
        self.restarts += 1
        return delay

    def sleep(self) -> float:
        delay = self.next_delay()
        if delay > 0:
            time.sleep(delay)
        self.total_sleep_s += delay
        return delay

    def reset(self) -> None:
        self.consecutive = 0


class CircuitBreaker:
    """Closed → open → half-open breaker, counted in *batches*.

    Batch-counted cooldowns (rather than wall-clock) keep drain-mode
    chaos runs deterministic: the same submission sequence always trips
    and recovers at the same batch indices.

    * **closed** — batches go to the primary (process) tier;
      ``threshold`` *consecutive* failures trip the breaker.
    * **open** — the next ``cooldown`` batches are served degraded
      without touching the primary; then the breaker half-opens.
    * **half-open** — one probe batch rides the primary tier.  Success
      closes the breaker (and resets the cooldown to its base); failure
      re-opens it with a doubled — bounded — cooldown.
    """

    def __init__(self, threshold: int, cooldown: int, max_cooldown: int):
        self.threshold = int(threshold)
        self.base_cooldown = int(cooldown)
        self.max_cooldown = int(max_cooldown)
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.probes = 0
        self._cooldown = self.base_cooldown
        self._cooldown_left = 0

    def admit(self) -> str:
        """Route the next batch: ``"primary"`` | ``"degraded"`` | ``"probe"``."""
        if self.state == BREAKER_CLOSED:
            return "primary"
        if self.state == BREAKER_OPEN:
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                return "degraded"
            self.state = BREAKER_HALF_OPEN
        self.probes += 1
        return "probe"

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != BREAKER_CLOSED:
            self.state = BREAKER_CLOSED
            self._cooldown = self.base_cooldown

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            # failed probe: back off harder, up to the bound
            self._cooldown = min(self._cooldown * 2, self.max_cooldown)
            self._trip()
        elif (
            self.state == BREAKER_CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = BREAKER_OPEN
        self._cooldown_left = self._cooldown
        self.trips += 1

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "trips": self.trips,
            "probes": self.probes,
            "consecutive_failures": self.consecutive_failures,
            "cooldown": self._cooldown,
            "cooldown_left": self._cooldown_left,
        }


class ShardSupervisor:
    """Per-shard supervision state: breaker + backoff + failure taxonomy.

    The lock serializes every touch of the shard's pool (batch dispatch,
    restart, watchdog probe); the watchdog only try-acquires it, so it
    can never stall a running batch.
    """

    def __init__(self, options: SupervisorOptions):
        self.options = options
        self.breaker = CircuitBreaker(
            options.breaker_threshold,
            options.breaker_cooldown,
            options.breaker_max_cooldown,
        )
        self.backoff = RestartBackoff(
            options.restart_backoff_s, options.restart_backoff_max_s
        )
        self.lock = threading.RLock()
        self.counters = {k: 0 for k in FAILURE_KINDS}
        self.recovery_s_total = 0.0
        self.recoveries = 0

    def record_failure(self, kind: str) -> None:
        if kind in self.counters:
            self.counters[kind] += 1
        self.breaker.record_failure()

    def record_success(self) -> None:
        self.breaker.record_success()
        self.backoff.reset()

    def record_recovery(self, seconds: float) -> None:
        self.recovery_s_total += float(seconds)
        self.recoveries += 1

    def snapshot(self) -> dict:
        counters = dict(self.counters)
        # the breaker is authoritative for its own trip count
        counters["breaker_trips"] = self.breaker.trips
        return dict(
            counters,
            breaker=self.breaker.snapshot(),
            worker_restarts=self.backoff.restarts,
            restart_backoff_sleep_s=round(self.backoff.total_sleep_s, 6),
            recovery_s_total=round(self.recovery_s_total, 6),
            recoveries=self.recoveries,
            mean_recovery_s=(
                round(self.recovery_s_total / self.recoveries, 6)
                if self.recoveries
                else 0.0
            ),
        )


class WorkerWatchdog(threading.Thread):
    """Heartbeat prober for idle shard workers.

    Every ``interval_s`` it calls ``probe(shard)`` for each shard;
    the probe (supplied by the service) is expected to try-lock the
    shard's supervisor, ping its worker with a deadline, and kill +
    restart on a miss.  The thread itself holds no pool references, so
    service shutdown only has to ``stop()`` it.
    """

    def __init__(self, num_shards: int, probe, interval_s: float):
        super().__init__(name="serve-watchdog", daemon=True)
        self.num_shards = int(num_shards)
        self.probe = probe
        self.interval_s = float(interval_s)
        # NB: not named _stop — threading.Thread owns a _stop() method
        self._halt = threading.Event()
        self.sweeps = 0

    def stop(self, timeout: float = 10.0) -> None:
        self._halt.set()
        if self.is_alive():
            self.join(timeout=timeout)

    def run(self) -> None:  # pragma: no branch - trivial loop
        while not self._halt.wait(self.interval_s):
            for shard in range(self.num_shards):
                if self._halt.is_set():
                    return
                try:
                    self.probe(shard)
                except Exception:
                    # a probe must never kill the watchdog; the next
                    # sweep (or the batch path) will see the failure
                    pass
            self.sweeps += 1
