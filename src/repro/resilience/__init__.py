"""Resilience layer: guards, adaptive retry/backoff, fallback solves,
checkpoint/restart, and deterministic fault injection.

The quench scenario (Fig. 5) is exactly the regime where implicit Landau
solves fail in production — the cold pulse collapses ``T_e``,
collisionality spikes, and a fixed-``dt`` quasi-Newton loop stalls or
silently produces NaN/negative-density states.  This package makes every
failure mode detectable (:mod:`.guards`), recoverable (:mod:`.controller`,
:mod:`.fallback`), survivable (:mod:`.checkpoint`) and *testable*
(:mod:`.faults`).
"""

from .exceptions import (
    CheckpointError,
    InjectedFault,
    RECOVERABLE_ERRORS,
    ResilienceError,
    ServiceOverloaded,
    ShmAttachFault,
    SolveFailure,
    StepRejected,
    WorkerHang,
)
from .guards import GuardConfig, GuardReference, StepGuard
from .controller import TimeStepController
from .fallback import DEFAULT_BACKENDS, FallbackSolverChain
from .checkpoint import (
    Checkpoint,
    load_checkpoint,
    read_checksummed,
    save_checkpoint,
    write_checksummed,
)
from .faults import FaultInjector
from .faultplan import FaultPlan, FaultPlanState
from .supervisor import (
    CircuitBreaker,
    RestartBackoff,
    ShardSupervisor,
    SupervisorOptions,
    WorkerWatchdog,
)

__all__ = [
    "ResilienceError",
    "StepRejected",
    "SolveFailure",
    "InjectedFault",
    "ShmAttachFault",
    "WorkerHang",
    "ServiceOverloaded",
    "CheckpointError",
    "RECOVERABLE_ERRORS",
    "GuardConfig",
    "GuardReference",
    "StepGuard",
    "TimeStepController",
    "FallbackSolverChain",
    "DEFAULT_BACKENDS",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "write_checksummed",
    "read_checksummed",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanState",
    "SupervisorOptions",
    "CircuitBreaker",
    "RestartBackoff",
    "ShardSupervisor",
    "WorkerWatchdog",
]
