"""Post-step state guards: NaN/Inf, negative density, moment drift.

The implicit Landau solve conserves density, momentum and energy to solver
tolerance (the paper's three discrete conservation laws), so a drift in
the :class:`~repro.core.moments.Moments` of an *accepted* step is a solver
failure even when every number is finite.  The guard compares the post-step
moments against a pre-step reference and raises a structured
:class:`~repro.resilience.exceptions.StepRejected` whose diagnostics name
the tripped check.

Which moments are conserved depends on the drive terms:

* collisions only            -> density, momentum and energy all conserved;
* E-field on (``efield != 0``) -> the field does work and injects momentum,
  only density is conserved;
* particle sources on         -> nothing is conserved; only finiteness and
  positivity are checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .exceptions import StepRejected

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..core.moments import Moments


@dataclass(frozen=True)
class GuardConfig:
    """Tolerances for the step guards (all in code units).

    ``density_rtol``/``energy_rtol`` bound the relative per-step drift;
    ``momentum_atol`` is absolute because the conserved value is often
    exactly zero (symmetric initial states).  ``density_floor`` is the
    smallest admissible per-species density moment; the default ``0`` means
    any non-positive density is rejected.
    """

    density_rtol: float = 1e-6
    momentum_atol: float = 1e-6
    energy_rtol: float = 1e-5
    density_floor: float = 0.0
    check_conservation: bool = True

    def __post_init__(self) -> None:
        for name in ("density_rtol", "momentum_atol", "energy_rtol"):
            v = getattr(self, name)
            if not (np.isfinite(v) and v > 0):
                raise ValueError(f"{name} must be a positive finite number, got {v}")


@dataclass
class GuardReference:
    """Pre-step moment snapshot the post-step state is checked against."""

    densities: np.ndarray
    momentum_z: float
    energy: float
    extras: dict = field(default_factory=dict)


class StepGuard:
    """Checks every accepted Newton step before the driver commits it.

    Parameters
    ----------
    moments:
        a :class:`repro.core.moments.Moments` evaluator bound to the run's
        function space and species set.
    config:
        guard tolerances; defaults to :class:`GuardConfig`.
    """

    def __init__(self, moments: "Moments", config: GuardConfig | None = None):
        self.moments = moments
        self.config = config or GuardConfig()
        self.trips = 0  # total rejections issued (diagnostic counter)

    # ------------------------------------------------------------------
    def reference(self, fields: list[np.ndarray]) -> GuardReference:
        """Snapshot the conserved moments of the pre-step state."""
        return GuardReference(
            densities=self.moments.density(fields),
            momentum_z=self.moments.total_momentum_z(fields),
            energy=self.moments.total_energy(fields),
        )

    # ------------------------------------------------------------------
    def _reject(self, reason: str, **diagnostics) -> None:
        self.trips += 1
        raise StepRejected(reason, diagnostics=diagnostics)

    def check(
        self,
        fields: list[np.ndarray],
        reference: GuardReference | None = None,
        *,
        dt: float | None = None,
        efield: float = 0.0,
        has_sources: bool = False,
    ) -> None:
        """Validate a post-step state; raise :class:`StepRejected` if bad.

        ``reference`` (from :meth:`reference` on the pre-step state)
        enables the conservation checks; without it only finiteness and
        positivity are verified.
        """
        cfg = self.config
        for s_idx, x in enumerate(fields):
            if not np.all(np.isfinite(x)):
                bad = int(np.count_nonzero(~np.isfinite(x)))
                self._reject(
                    "non-finite distribution after step",
                    guard="finite",
                    species=s_idx,
                    bad_dofs=bad,
                    dt=dt,
                )
        densities = self.moments.density(fields)
        for s_idx, n in enumerate(densities):
            if not n > cfg.density_floor:
                self._reject(
                    "non-positive species density after step",
                    guard="positivity",
                    species=s_idx,
                    density=float(n),
                    floor=cfg.density_floor,
                    dt=dt,
                )
        if reference is None or not cfg.check_conservation:
            return
        if not has_sources:
            for s_idx, (n0, n1) in enumerate(zip(reference.densities, densities)):
                drift = abs(n1 - n0) / max(abs(n0), 1e-300)
                if drift > cfg.density_rtol:
                    self._reject(
                        "density drift over step",
                        guard="density",
                        species=s_idx,
                        drift=float(drift),
                        rtol=cfg.density_rtol,
                        dt=dt,
                    )
        if efield == 0.0 and not has_sources:
            pz = self.moments.total_momentum_z(fields)
            dp = abs(pz - reference.momentum_z)
            if dp > cfg.momentum_atol:
                self._reject(
                    "momentum drift over step",
                    guard="momentum",
                    drift=float(dp),
                    atol=cfg.momentum_atol,
                    dt=dt,
                )
            en = self.moments.total_energy(fields)
            de = abs(en - reference.energy) / max(abs(reference.energy), 1e-300)
            if de > cfg.energy_rtol:
                self._reject(
                    "energy drift over step",
                    guard="energy",
                    drift=float(de),
                    rtol=cfg.energy_rtol,
                    dt=dt,
                )
