"""Checkpoint/restart for long quench runs (``.npz`` format).

A checkpoint captures everything a resumed run needs to *bitwise*
reproduce the uninterrupted trajectory: the per-species distribution
vectors, the clock, the (RNG-free) time-step-controller state, the
accumulated :class:`~repro.quench.model.QuenchHistory`, and an ``extra``
dict of driver scalars (phase label, loop indices, the relaxed E field,
...).  Everything lands in one ``np.savez_compressed`` archive; the extra
dict is JSON so drivers can stash arbitrary scalar state without schema
changes.

Format (version 1)::

    __version__   int
    fields        (S, ndofs) float64   stacked species distributions
    t             float                simulation clock
    controller    (5,) float64         TimeStepController.state_vector()
    extra_json    str                  JSON dict of driver state
    hist_t/n_e/J/E/T_e  float64 arrays QuenchHistory columns (optional)
    hist_phase    unicode array        QuenchHistory phase labels

On disk the archive is wrapped in a checksummed envelope
(:func:`write_checksummed` — a magic line carrying the SHA-256 of the
payload, then the payload bytes), written atomically (tmp + fsync +
rename), so a truncated or bit-flipped file is *detected* at load time
instead of resuming a run from silently corrupted state.  Files written
before the envelope existed (bare ``.npz``) still load.  The serve
tier's crash-consistent service checkpoints
(:mod:`repro.serve.checkpoint`) share the same envelope.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from contextlib import suppress
from dataclasses import dataclass, field

import numpy as np

from .exceptions import CheckpointError

CHECKPOINT_VERSION = 1

_HIST_COLS = ("t", "n_e", "J", "E", "T_e")

#: envelope header: magic + sha256 hex digest of the payload + newline
CHECKSUM_MAGIC = b"RPROCKSUM1 "


def write_checksummed(path: str, payload: bytes) -> str:
    """Atomically write ``payload`` with a SHA-256 integrity header.

    tmp + flush + fsync + rename (+ a best-effort directory fsync), so a
    crash mid-write leaves either the previous file or the new one —
    never a torn mix — and any later corruption is caught by
    :func:`read_checksummed`.  Returns ``path``.
    """
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(CHECKSUM_MAGIC + digest + b"\n" + payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    with suppress(OSError):  # rename durability; not available everywhere
        dirfd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
    return path


def read_checksummed(path: str) -> bytes:
    """Read a :func:`write_checksummed` file, verifying the digest.

    Raises :class:`CheckpointError` on a truncated or bit-flipped file.
    Files without the magic header (pre-envelope checkpoints) are
    returned verbatim for backward compatibility.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    if not raw.startswith(CHECKSUM_MAGIC):
        return raw
    header, sep, payload = raw.partition(b"\n")
    stored = header[len(CHECKSUM_MAGIC):]
    if not sep:
        raise CheckpointError(
            "checkpoint truncated inside the checksum header",
            diagnostics={"path": path, "bytes": len(raw)},
        )
    actual = hashlib.sha256(payload).hexdigest().encode("ascii")
    if actual != stored:
        raise CheckpointError(
            "checkpoint checksum mismatch (truncated or corrupted file)",
            diagnostics={
                "path": path,
                "stored_sha256": stored.decode("ascii", "replace")[:64],
                "actual_sha256": actual.decode("ascii"),
                "payload_bytes": len(payload),
            },
        )
    return payload


@dataclass
class Checkpoint:
    """In-memory image of a checkpoint file."""

    fields: list
    t: float
    controller_state: np.ndarray | None = None
    history: object | None = None  # a QuenchHistory when present
    extra: dict = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION


def save_checkpoint(
    path: str,
    *,
    fields: list,
    t: float,
    controller=None,
    history=None,
    extra: dict | None = None,
) -> str:
    """Write a checkpoint; atomic (write to ``path + '.tmp'``, then rename).

    ``controller`` may be a :class:`TimeStepController` (its
    ``state_vector()`` is stored) or a pre-built state vector; ``history``
    a :class:`~repro.quench.model.QuenchHistory` or ``None``.
    Returns ``path``.
    """
    arrays: dict = {
        "__version__": np.array(CHECKPOINT_VERSION),
        "fields": np.stack([np.asarray(x, dtype=float) for x in fields]),
        "t": np.array(float(t)),
        "extra_json": np.array(json.dumps(extra or {})),
    }
    if controller is not None:
        vec = controller.state_vector() if hasattr(controller, "state_vector") else controller
        arrays["controller"] = np.asarray(vec, dtype=float)
    if history is not None:
        for col in _HIST_COLS:
            arrays[f"hist_{col}"] = np.asarray(getattr(history, col), dtype=float)
        arrays["hist_phase"] = np.asarray(history.phase, dtype="U16")
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    return write_checksummed(path, buf.getvalue())


def load_checkpoint(path: str) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    if not os.path.exists(path):
        raise CheckpointError("checkpoint file not found", diagnostics={"path": path})
    payload = read_checksummed(path)
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            version = int(data["__version__"])
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    "unsupported checkpoint version",
                    diagnostics={"path": path, "version": version,
                                 "supported": CHECKPOINT_VERSION},
                )
            fields = [np.array(row) for row in data["fields"]]
            t = float(data["t"])
            controller_state = (
                np.array(data["controller"]) if "controller" in data else None
            )
            extra = json.loads(str(data["extra_json"]))
            history = None
            if "hist_t" in data:
                from ..quench.model import QuenchHistory

                history = QuenchHistory(
                    t=list(map(float, data["hist_t"])),
                    n_e=list(map(float, data["hist_n_e"])),
                    J=list(map(float, data["hist_J"])),
                    E=list(map(float, data["hist_E"])),
                    T_e=list(map(float, data["hist_T_e"])),
                    phase=[str(p) for p in data["hist_phase"]],
                )
    except CheckpointError:
        raise
    except Exception as err:
        raise CheckpointError(
            "failed to read checkpoint",
            diagnostics={"path": path, "error": f"{type(err).__name__}: {err}"},
        ) from err
    return Checkpoint(
        fields=fields,
        t=t,
        controller_state=controller_state,
        history=history,
        extra=extra,
        version=version,
    )
