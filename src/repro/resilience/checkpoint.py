"""Checkpoint/restart for long quench runs (``.npz`` format).

A checkpoint captures everything a resumed run needs to *bitwise*
reproduce the uninterrupted trajectory: the per-species distribution
vectors, the clock, the (RNG-free) time-step-controller state, the
accumulated :class:`~repro.quench.model.QuenchHistory`, and an ``extra``
dict of driver scalars (phase label, loop indices, the relaxed E field,
...).  Everything lands in one ``np.savez_compressed`` archive; the extra
dict is JSON so drivers can stash arbitrary scalar state without schema
changes.

Format (version 1)::

    __version__   int
    fields        (S, ndofs) float64   stacked species distributions
    t             float                simulation clock
    controller    (5,) float64         TimeStepController.state_vector()
    extra_json    str                  JSON dict of driver state
    hist_t/n_e/J/E/T_e  float64 arrays QuenchHistory columns (optional)
    hist_phase    unicode array        QuenchHistory phase labels
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from .exceptions import CheckpointError

CHECKPOINT_VERSION = 1

_HIST_COLS = ("t", "n_e", "J", "E", "T_e")


@dataclass
class Checkpoint:
    """In-memory image of a checkpoint file."""

    fields: list
    t: float
    controller_state: np.ndarray | None = None
    history: object | None = None  # a QuenchHistory when present
    extra: dict = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION


def save_checkpoint(
    path: str,
    *,
    fields: list,
    t: float,
    controller=None,
    history=None,
    extra: dict | None = None,
) -> str:
    """Write a checkpoint; atomic (write to ``path + '.tmp'``, then rename).

    ``controller`` may be a :class:`TimeStepController` (its
    ``state_vector()`` is stored) or a pre-built state vector; ``history``
    a :class:`~repro.quench.model.QuenchHistory` or ``None``.
    Returns ``path``.
    """
    arrays: dict = {
        "__version__": np.array(CHECKPOINT_VERSION),
        "fields": np.stack([np.asarray(x, dtype=float) for x in fields]),
        "t": np.array(float(t)),
        "extra_json": np.array(json.dumps(extra or {})),
    }
    if controller is not None:
        vec = controller.state_vector() if hasattr(controller, "state_vector") else controller
        arrays["controller"] = np.asarray(vec, dtype=float)
    if history is not None:
        for col in _HIST_COLS:
            arrays[f"hist_{col}"] = np.asarray(getattr(history, col), dtype=float)
        arrays["hist_phase"] = np.asarray(history.phase, dtype="U16")
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    if not os.path.exists(path):
        raise CheckpointError("checkpoint file not found", diagnostics={"path": path})
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["__version__"])
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    "unsupported checkpoint version",
                    diagnostics={"path": path, "version": version,
                                 "supported": CHECKPOINT_VERSION},
                )
            fields = [np.array(row) for row in data["fields"]]
            t = float(data["t"])
            controller_state = (
                np.array(data["controller"]) if "controller" in data else None
            )
            extra = json.loads(str(data["extra_json"]))
            history = None
            if "hist_t" in data:
                from ..quench.model import QuenchHistory

                history = QuenchHistory(
                    t=list(map(float, data["hist_t"])),
                    n_e=list(map(float, data["hist_n_e"])),
                    J=list(map(float, data["hist_J"])),
                    E=list(map(float, data["hist_E"])),
                    T_e=list(map(float, data["hist_T_e"])),
                    phase=[str(p) for p in data["hist_phase"]],
                )
    except CheckpointError:
        raise
    except Exception as err:
        raise CheckpointError(
            "failed to read checkpoint",
            diagnostics={"path": path, "error": f"{type(err).__name__}: {err}"},
        ) from err
    return Checkpoint(
        fields=fields,
        t=t,
        controller_state=controller_state,
        history=history,
        extra=extra,
        version=version,
    )
