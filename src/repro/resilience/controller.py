"""Adaptive time-step controller with retry/backoff and re-growth.

The quench drives the solver through a collisionality spike (cold pulse
collapses ``T_e``, the collision frequency scales like ``T^-3/2``) where a
fixed ``dt`` quasi-Newton loop stalls.  The controller implements the
standard production policy:

* on a rejected step (non-convergence, tripped guard, linear-solver
  breakdown) multiply ``dt`` by ``backoff`` (default: halve) and retry,
  down to ``dt_min`` and within a ``max_retries`` per-step budget;
* after ``growth_streak`` consecutive *easy* accepts (quasi-Newton
  converged in at most ``easy_newton`` iterations) multiply ``dt`` by
  ``growth`` back up toward ``dt_max``.

The controller state is a handful of floats/ints — deliberately RNG-free —
so it serializes losslessly into a checkpoint and a resumed run replays
the exact same ``dt`` sequence (the bitwise-restart guarantee).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .exceptions import SolveFailure

#: state_dict fields, in serialization order (see state_vector/load_state)
_STATE_FIELDS = ("dt", "streak", "retries_this_step", "total_accepts", "total_backoffs")


@dataclass
class TimeStepController:
    """Retry/backoff dt controller; mutable state lives on the instance."""

    dt_init: float
    dt_min: float | None = None
    dt_max: float | None = None
    backoff: float = 0.5
    growth: float = 2.0
    growth_streak: int = 3
    easy_newton: int = 8
    max_retries: int = 12

    def __post_init__(self) -> None:
        if not (math.isfinite(self.dt_init) and self.dt_init > 0):
            raise ValueError(f"dt_init must be positive and finite, got {self.dt_init}")
        if self.dt_min is None:
            self.dt_min = self.dt_init / 1024.0
        if self.dt_max is None:
            self.dt_max = self.dt_init
        if not (0 < self.dt_min <= self.dt_init <= self.dt_max):
            raise ValueError(
                f"need 0 < dt_min <= dt_init <= dt_max, got "
                f"({self.dt_min}, {self.dt_init}, {self.dt_max})"
            )
        if not (0.0 < self.backoff < 1.0):
            raise ValueError(f"backoff must be in (0, 1), got {self.backoff}")
        if self.growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {self.growth}")
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries}")
        # mutable state
        self.dt = float(self.dt_init)
        self.streak = 0
        self.retries_this_step = 0
        self.total_accepts = 0
        self.total_backoffs = 0

    # ------------------------------------------------------------------
    def on_reject(self, reason: str = "") -> float:
        """Record a rejected step; shrink ``dt`` and return the new value.

        Raises :class:`SolveFailure` when the per-step retry budget or the
        ``dt_min`` floor is exhausted — at that point retrying cannot help.
        """
        self.streak = 0
        self.retries_this_step += 1
        if self.retries_this_step > self.max_retries:
            raise SolveFailure(
                "time-step retry budget exhausted",
                diagnostics={
                    "retries": self.retries_this_step - 1,
                    "max_retries": self.max_retries,
                    "dt": self.dt,
                    "reason": reason,
                },
            )
        if self.dt <= self.dt_min * (1.0 + 1e-12):
            raise SolveFailure(
                "dt_min reached without an accepted step",
                diagnostics={"dt": self.dt, "dt_min": self.dt_min, "reason": reason},
            )
        self.dt = max(self.dt * self.backoff, self.dt_min)
        self.total_backoffs += 1
        return self.dt

    def on_accept(self, newton_iterations: int = 0) -> float:
        """Record an accepted step; maybe re-grow ``dt``; return it."""
        self.retries_this_step = 0
        self.total_accepts += 1
        if newton_iterations <= self.easy_newton:
            self.streak += 1
        else:
            self.streak = 0
        if self.streak >= self.growth_streak and self.dt < self.dt_max:
            self.dt = min(self.dt * self.growth, self.dt_max)
            self.streak = 0
        return self.dt

    # --- checkpoint support -------------------------------------------------
    def state_dict(self) -> dict:
        return {k: getattr(self, k) for k in _STATE_FIELDS}

    def load_state(self, state: dict) -> None:
        for k in _STATE_FIELDS:
            setattr(self, k, type(getattr(self, k))(state[k]))

    def state_vector(self):
        """The state as a flat float array (for ``.npz`` checkpoints)."""
        import numpy as np

        return np.array([float(getattr(self, k)) for k in _STATE_FIELDS])

    def load_state_vector(self, vec) -> None:
        self.load_state({k: v for k, v in zip(_STATE_FIELDS, vec)})
