"""Deterministic, seeded fault injection for the solver stack.

The recovery paths of the resilience layer are only trustworthy if tests
can make each one fire on demand.  :class:`FaultInjector` wraps a linear
solver factory (a chain backend or the whole ``factory(A) -> solve(b)``
plug) and injects failures at exact, reproducible call indices:

* ``fail_first_solves=k`` — the first ``k`` solve calls raise
  :class:`~repro.resilience.exceptions.InjectedFault` (exercises the
  fallback chain and the retry/backoff loop);
* ``factorization_failures=(i, ...)`` — the ``i``-th factorization calls
  raise (exercises factorization fallback);
* ``nan_solve_indices=(i, ...)`` — the ``i``-th solve calls return a
  NaN-corrupted solution, which poisons the Newton residual (exercises
  the NaN guards);
* ``nan_probability=p`` with ``seed`` — corrupt solves at a seeded random
  rate; deterministic for a fixed seed and call sequence.

Counters are global across wrapped factories, so a retried step sees the
injector's state advance — the first retry after ``fail_first_solves``
faults succeeds, exactly like a transient hardware fault clearing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np
import scipy.sparse as sp

from .exceptions import InjectedFault


@dataclass
class FaultInjector:
    fail_first_solves: int = 0
    factorization_failures: tuple = ()
    nan_solve_indices: tuple = ()
    nan_probability: float = 0.0
    seed: int = 0
    # counters (state)
    factor_calls: int = field(default=0, init=False)
    solve_calls: int = field(default=0, init=False)
    injected: list = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.nan_probability <= 1.0):
            raise ValueError(f"nan_probability must be in [0, 1], got {self.nan_probability}")
        self.factorization_failures = tuple(self.factorization_failures)
        self.nan_solve_indices = tuple(self.nan_solve_indices)
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind all counters and the RNG (same seed -> same faults)."""
        self.factor_calls = 0
        self.solve_calls = 0
        self.injected = []
        self._rng = np.random.default_rng(self.seed)

    @property
    def n_injected(self) -> int:
        return len(self.injected)

    def _fire(self, kind: str, index: int) -> None:
        self.injected.append({"kind": kind, "index": index})

    # ------------------------------------------------------------------
    def wrap_factory(
        self, factory: Callable, name: str = "primary"
    ) -> Callable[[sp.spmatrix], Callable[[np.ndarray], np.ndarray]]:
        """Wrap a ``factory(A) -> solve(b)`` with the configured faults."""

        def faulty_factory(A):
            idx_f = self.factor_calls
            self.factor_calls += 1
            if idx_f in self.factorization_failures:
                self._fire("factorization", idx_f)
                raise InjectedFault(
                    f"injected factorization failure in backend {name!r}",
                    diagnostics={"backend": name, "factorization": idx_f},
                )
            solve = factory(A)

            def faulty_solve(b):
                idx_s = self.solve_calls
                self.solve_calls += 1
                if idx_s < self.fail_first_solves:
                    self._fire("solve", idx_s)
                    raise InjectedFault(
                        f"injected solve failure in backend {name!r}",
                        diagnostics={"backend": name, "solve": idx_s},
                    )
                x = np.asarray(solve(b), dtype=float)
                corrupt = idx_s in self.nan_solve_indices
                if self.nan_probability > 0.0:
                    corrupt = corrupt or bool(self._rng.random() < self.nan_probability)
                if corrupt:
                    self._fire("nan", idx_s)
                    x = x.copy()
                    x[: max(1, x.size // 8)] = np.nan
                return x

            return faulty_solve

        return faulty_factory

    def wrap_backends(
        self, backends: Iterable[tuple[str, Callable]], only: str | None = None
    ) -> list[tuple[str, Callable]]:
        """Wrap (a subset of) ``(name, factory)`` chain backends."""
        out = []
        for bname, bfactory in backends:
            if only is None or bname == only:
                out.append((bname, self.wrap_factory(bfactory, name=bname)))
            else:
                out.append((bname, bfactory))
        return out
