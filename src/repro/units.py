"""Nondimensionalization of the Vlasov-Maxwell-Landau system (Appendix A).

The paper normalizes with:

* reference mass ``m0`` — the electron mass,
* reference velocity ``v0 = sqrt(8 k T_e / (pi m_e))``,
* reference density ``n0`` (``1e20 m^-3`` for a typical fusion plasma),
* reference time ``t0 = 8 pi m0^2 eps0^2 v0^3 / (e^4 ln(Lambda) n0)``,

so that the electron-electron collision frequency ``nu_ee`` is exactly 1 in
code units.  Distribution functions are scaled by ``v0^3 / n0`` and electric
fields by ``E~ = e E t0 / (m0 v0)`` so the acceleration term in eq. (1)
becomes ``(z_a m0/m_a) E~ d f/d x_z``.

All solver code works exclusively in these units; this module is the single
place where SI enters or leaves the system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from . import constants as c


@dataclass(frozen=True)
class UnitSystem:
    """Nondimensional unit system anchored at a reference temperature/density.

    Parameters
    ----------
    T0_ev:
        Reference (electron) temperature in eV; sets ``v0``.
    n0:
        Reference number density in ``m^-3``.
    m0:
        Reference mass in kg (electron mass by default).
    coulomb_log:
        Coulomb logarithm; the paper uses 10 for every pair.
    """

    T0_ev: float = 1000.0
    n0: float = c.DEFAULT_DENSITY
    m0: float = c.ELECTRON_MASS
    coulomb_log: float = c.COULOMB_LOG
    v0: float = field(init=False)
    t0: float = field(init=False)

    def __post_init__(self) -> None:
        v0 = c.thermal_speed(self.T0_ev, self.m0)
        e4 = c.ELECTRON_CHARGE**4
        t0 = (
            8.0
            * math.pi
            * self.m0**2
            * c.VACUUM_PERMITTIVITY**2
            * v0**3
            / (e4 * self.coulomb_log * self.n0)
        )
        object.__setattr__(self, "v0", v0)
        object.__setattr__(self, "t0", t0)

    # --- conversions: SI -> code units --------------------------------------
    def velocity_to_code(self, v_si: float) -> float:
        return v_si / self.v0

    def time_to_code(self, t_si: float) -> float:
        return t_si / self.t0

    def efield_to_code(self, E_si: float) -> float:
        """``E~ = e E t0 / (m0 v0)`` (acceleration in code units per unit charge)."""
        return c.ELECTRON_CHARGE * E_si * self.t0 / (self.m0 * self.v0)

    def distribution_to_code(self, f_si: float) -> float:
        return f_si * self.v0**3 / self.n0

    # --- conversions: code units -> SI --------------------------------------
    def velocity_to_si(self, v_code: float) -> float:
        return v_code * self.v0

    def time_to_si(self, t_code: float) -> float:
        return t_code * self.t0

    def efield_to_si(self, E_code: float) -> float:
        return E_code * self.m0 * self.v0 / (c.ELECTRON_CHARGE * self.t0)

    def resistivity_to_si(self, eta_code: float) -> float:
        """Convert ``eta~ = E~/J~`` to ohm-metres.

        ``J_si = n0 e v0 J~`` and ``E_si`` per :meth:`efield_to_si`, hence
        ``eta_si = eta~ * m0 / (n0 e^2 t0)``.
        """
        return eta_code * self.m0 / (self.n0 * c.ELECTRON_CHARGE**2 * self.t0)

    def resistivity_to_code(self, eta_si: float) -> float:
        return eta_si * self.n0 * c.ELECTRON_CHARGE**2 * self.t0 / self.m0

    # --- derived quantities ---------------------------------------------------
    @property
    def kT0(self) -> float:
        """Reference thermal energy in joules: ``k T0 = (pi/8) m0 v0^2``."""
        return self.T0_ev * c.EV

    @property
    def c_code(self) -> float:
        """Speed of light in code (v0) units — needed for Connor-Hastie E_c."""
        return c.SPEED_OF_LIGHT / self.v0

    def electron_collision_time(self) -> float:
        """The e-e reference collision time is exactly ``t0`` by construction."""
        return self.t0


#: module-level default used by examples and benchmarks (1 keV, 1e20 m^-3)
DEFAULT_UNITS = UnitSystem()
