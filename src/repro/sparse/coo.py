"""GPU-style COO matrix assembly (section III-F).

PETSc's newer GPU assembly path preallocates the coordinate list of every
element contribution once ("the COO interface does not require this CPU
assembly stage"); each subsequent assembly is a pure value scatter followed
by a duplicate reduction — exactly a device-side ``Thrust``/``Kokkos``
sort-reduce.  This class reproduces that: construct with the static
(row, col) pairs of all element blocks, then ``assemble(values)`` any number
of times with new numbers.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


class CooAssembler:
    """Preallocated COO assembly: fixed coordinates, repeated values.

    Parameters
    ----------
    n:
        matrix dimension.
    rows, cols:
        flat global coordinate arrays of *every* scheduled contribution
        (duplicates allowed and expected — they are summed on assemble).
    """

    def __init__(self, n: int, rows: np.ndarray, cols: np.ndarray):
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows/cols must be equal-length 1D arrays")
        if rows.size and (rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= n):
            raise ValueError("coordinates out of range")
        self.n = n
        self.rows = rows
        self.cols = cols
        # precompute the merge: sorted order and unique-slot inverse map,
        # so assemble() is a single scatter-add (the GPU reduce-by-key).
        keys = rows * np.int64(n) + cols
        uniq, inverse = np.unique(keys, return_inverse=True)
        self._inverse = inverse
        self._nnz = uniq.size
        self._out_rows = (uniq // n).astype(np.int64)
        self._out_cols = (uniq % n).astype(np.int64)

    @property
    def ncontrib(self) -> int:
        """Number of scheduled scalar contributions."""
        return self.rows.size

    @property
    def nnz(self) -> int:
        return int(self._nnz)

    def assemble(self, values: np.ndarray) -> sp.csr_matrix:
        """Sum ``values`` (aligned with the preallocated coordinates) into CSR."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size != self.rows.size:
            raise ValueError(
                f"expected {self.rows.size} values, got {values.size}"
            )
        data = np.zeros(self._nnz)
        np.add.at(data, self._inverse, values)
        return sp.csr_matrix(
            (data, (self._out_rows, self._out_cols)), shape=(self.n, self.n)
        )

    @classmethod
    def from_element_blocks(cls, n: int, cell_nodes: np.ndarray) -> "CooAssembler":
        """Plan the assembly of dense per-element blocks.

        ``cell_nodes`` is ``(ne, nb)``; values passed to :meth:`assemble`
        must then be the flattened ``(ne, nb, nb)`` element matrices.
        """
        nodes = np.asarray(cell_nodes, dtype=np.int64)
        ne, nb = nodes.shape
        rows = np.repeat(nodes, nb, axis=1).ravel()
        cols = np.tile(nodes, (1, nb)).ravel()
        return cls(n, rows, cols)
