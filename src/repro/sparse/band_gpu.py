"""The custom CUDA band LU solver on the simulated device (section III-G).

The paper wrote "a custom CUDA LU factorization and solve for this
project": outer-product banded LU where each elimination step's B x B
rank-1 update is spread across threads, with CUDA *group synchronization*
letting several SMs cooperate on each species' factorization (Kokkos lacks
group sync, so no Kokkos version exists — same here).  The conclusion
notes the GPU solver "is no faster than the CPU solver reported here";
the counted work plus the device model reproduce that finding
(`benchmarks/bench_band_gpu.py`).

Functionally this produces exactly the CPU band factorization's result;
the value added is the counted work/synchronization profile:

* per elimination step: one division row (B multipliers), a B x B FMA
  update spread over ``threads`` lanes,
* one grid-wide synchronization per step (the group sync) — n steps of
  *serial dependency* explain why small-n band LU cannot use a GPU well:
  the critical path is n sync latencies regardless of width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from ..gpu.counters import Counters
from ..gpu.device import DeviceSpec, V100
from ..gpu.machine import CudaMachine, FP64, ThreadBlock
from .band import BandMatrix, BandSolver, band_solve, bandwidth, rcm_permutation


def gpu_band_factor_kernel(
    tb: ThreadBlock, block_id: int, bm: BandMatrix
) -> None:
    """Factor one species' band matrix on (a group of) SMs.

    The x dimension lanes sweep the rank-1 update window; each step ends
    with a group synchronization (counted as a syncthreads).  Numerically
    identical to :func:`repro.sparse.band.band_factor`.
    """
    W, B = bm.W, bm.B
    n = W.shape[0]
    s0, s1 = W.strides
    lanes = tb.dim_x * tb.dim_y
    for k in range(n - 1):
        piv = W[k, B]
        if piv == 0.0:
            raise ZeroDivisionError(f"zero pivot at step {k} (no pivoting)")
        m = min(B, n - 1 - k)
        if m:
            V = np.lib.stride_tricks.as_strided(
                W[k + 1 :, B - 1 :], shape=(m, B + 1), strides=(s0 - s1, s1)
            )
            l = V[:, 0] / piv
            V[:, 0] = l
            u = W[k, B + 1 : 2 * B + 1]
            V[:, 1:] -= np.outer(l, u)
            # counted work: m divisions + m*B FMAs, spread over the lanes
            tb.count(special=m, fma=m * B)
            tb.global_read(m + B)  # pivot row + sub-column through L1/L2
            tb.global_write(m * (B + 1))
        # the grid-wide group sync closing this elimination step
        tb.syncthreads()


@dataclass
class GpuBandSolveProfile:
    """Counted profile of one device-side factorization."""

    counters: Counters
    n: int
    B: int
    steps: int

    def predicted_time(self, device: DeviceSpec) -> float:
        """Critical-path model: max(work time, n serial sync latencies).

        The group synchronization costs ~1-2 us on a real device; with
        n ~ 700 steps the sync chain alone is ~1 ms — the reason the GPU
        band solver cannot beat a CPU at Landau sizes.
        """
        sync_latency = 1.5e-6  # grid-wide cooperative-group sync (s)
        work = self.counters.issue_slots / (
            device.peak_issue_slots * device.pipe_utilization
        )
        mem = self.counters.dram_bytes / (
            device.dram_peak_gbs * 1e9 * device.mem_efficiency
        )
        return max(work, mem) + self.steps * sync_latency


class GpuBandSolver:
    """RCM + block-diagonal discovery + device-side band factorization.

    The multi-species Jacobian's independent blocks factor in separate
    "grids" (one launch each, several SMs per species via group sync);
    triangular solves stay on the device too.
    """

    def __init__(
        self,
        A: sp.spmatrix,
        machine: CudaMachine | None = None,
        threads: int = 256,
    ):
        self.machine = machine if machine is not None else CudaMachine(V100)
        A = sp.csr_matrix(A)
        self.n = A.shape[0]
        ncomp, labels = connected_components(A, directed=False)
        self.blocks: list[tuple[np.ndarray, BandMatrix, np.ndarray, np.ndarray]] = []
        total_steps = 0
        snap = self.machine.counters.snapshot()
        for cidx in range(ncomp):
            idx = np.nonzero(labels == cidx)[0]
            sub = sp.csr_matrix(A[idx][:, idx])
            perm = rcm_permutation(sub)
            iperm = np.empty_like(perm)
            iperm[perm] = np.arange(len(perm))
            subp = sub[perm][:, perm]
            bm = BandMatrix.from_sparse(subp, bandwidth(subp))
            self.machine.launch(
                gpu_band_factor_kernel, 1, (min(threads, 256), 1), bm
            )
            total_steps += bm.n - 1
            self.blocks.append((idx, bm, perm, iperm))
        self.profile = GpuBandSolveProfile(
            counters=self.machine.counters.diff(snap),
            n=self.n,
            B=max((b[1].B for b in self.blocks), default=0),
            steps=total_steps,
        )

    @property
    def nblocks(self) -> int:
        return len(self.blocks)

    def solve(self, b: np.ndarray) -> np.ndarray:
        b = np.asarray(b, dtype=float)
        if b.shape[0] != self.n:
            raise ValueError(f"rhs length {b.shape[0]} != {self.n}")
        x = np.empty_like(b)
        for idx, bm, perm, iperm in self.blocks:
            # forward/backward substitution (device-resident in the model;
            # counted as 2n sync steps of the same serial chain)
            y = band_solve(bm, b[idx][perm])
            self.machine.counters.syncthreads += 2 * (bm.n - 1)
            self.machine.counters.fma += 2 * bm.n * (bm.B + 1)
            self.machine.counters.dram_read_bytes += 2 * bm.n * (bm.B + 1) * FP64
            x[idx] = y[iperm]
        return x

    def __call__(self, b: np.ndarray) -> np.ndarray:
        return self.solve(b)
