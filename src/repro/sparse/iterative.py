"""A custom restarted GMRES with block-Jacobi preconditioning.

Section VI: "A custom GPU iterative solver is under development to address
this problem" — the problem being that at high throughput the (direct)
linear solve dominates.  This module provides that solver for the Landau
systems: GMRES(m) (the operator is nonsymmetric because of the friction
term) with a block-Jacobi preconditioner whose blocks are the element
neighbourhoods (or the species blocks themselves, which are exactly
decoupled).

Pure NumPy, no scipy.sparse.linalg.gmres — the point is a self-contained
solver whose work is countable and whose kernels (SpMV, small dense
solves, AXPYs) are the batched vector operations the paper wants to fuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp


@dataclass
class IterativeStats:
    iterations: int = 0
    restarts: int = 0
    matvecs: int = 0
    converged: bool = False
    residual_history: list = field(default_factory=list)


class BlockJacobiPreconditioner:
    """Exact solves on diagonal sub-blocks defined by an index partition."""

    def __init__(self, A: sp.spmatrix, partition: list[np.ndarray]):
        A = sp.csr_matrix(A)
        n = A.shape[0]
        covered = np.concatenate(partition) if partition else np.array([], int)
        if len(np.unique(covered)) != n:
            raise ValueError("partition must cover every index exactly once")
        self.partition = [np.asarray(p, dtype=np.int64) for p in partition]
        # blocks are small (<= ~128); precomputed inverses keep apply() a
        # batch of dense matvecs — exactly the GPU-friendly kernel shape
        self._inv = [
            (idx, np.linalg.inv(A[idx][:, idx].toarray()))
            for idx in self.partition
        ]

    @classmethod
    def from_bandwidth_slices(cls, A: sp.spmatrix, block_size: int = 64):
        """Contiguous index slices (matches RCM-ordered locality)."""
        n = A.shape[0]
        parts = [
            np.arange(i, min(i + block_size, n)) for i in range(0, n, block_size)
        ]
        return cls(A, parts)

    def apply(self, r: np.ndarray) -> np.ndarray:
        z = np.empty_like(r)
        for idx, inv in self._inv:
            z[idx] = inv @ r[idx]
        return z


def gmres(
    A: sp.spmatrix,
    b: np.ndarray,
    M: BlockJacobiPreconditioner | None = None,
    x0: np.ndarray | None = None,
    restart: int = 30,
    rtol: float = 1e-8,
    max_restarts: int = 20,
) -> tuple[np.ndarray, IterativeStats]:
    """Right-preconditioned restarted GMRES.

    Right preconditioning keeps the Krylov residual equal to the *true*
    residual, so convergence claims survive ill-conditioned Landau systems
    (left preconditioning converges in the M-norm, which can differ by
    orders of magnitude here).  Arnoldi with modified Gram-Schmidt; the
    least-squares problem is updated with Givens rotations.
    """
    A = sp.csr_matrix(A)
    n = A.shape[0]
    b = np.asarray(b, dtype=float)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    stats = IterativeStats()

    def prec(v):
        return M.apply(v) if M is not None else v

    bnorm = np.linalg.norm(b)
    if bnorm == 0.0:
        stats.converged = True
        return np.zeros(n), stats

    for _outer in range(max_restarts):
        r = b - A @ x
        stats.matvecs += 1
        beta = np.linalg.norm(r)
        stats.residual_history.append(beta / bnorm)
        if beta / bnorm < rtol:
            stats.converged = True
            return x, stats
        V = np.zeros((restart + 1, n))
        H = np.zeros((restart + 1, restart))
        cs = np.zeros(restart)
        sn = np.zeros(restart)
        g = np.zeros(restart + 1)
        V[0] = r / beta
        g[0] = beta
        k_done = 0
        for k in range(restart):
            w = A @ prec(V[k])
            stats.matvecs += 1
            stats.iterations += 1
            # modified Gram-Schmidt
            for i in range(k + 1):
                H[i, k] = w @ V[i]
                w -= H[i, k] * V[i]
            H[k + 1, k] = np.linalg.norm(w)
            if H[k + 1, k] > 1e-30:
                V[k + 1] = w / H[k + 1, k]
            # apply previous Givens rotations to the new column
            for i in range(k):
                t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                H[i, k] = t
            # new rotation annihilating H[k+1, k]
            denom = np.hypot(H[k, k], H[k + 1, k])
            cs[k] = H[k, k] / denom if denom else 1.0
            sn[k] = H[k + 1, k] / denom if denom else 0.0
            H[k, k] = denom
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_done = k + 1
            stats.residual_history.append(abs(g[k + 1]) / bnorm)
            if abs(g[k + 1]) / bnorm < rtol:
                break
        # solve the small triangular system; x += M V y (right prec)
        y = np.linalg.solve(H[:k_done, :k_done], g[:k_done])
        x = x + prec(V[:k_done].T @ y)
        stats.restarts += 1
        # the Givens estimate drifts when modified Gram-Schmidt loses
        # orthogonality on ill-conditioned systems; convergence is declared
        # only on the recomputed true residual
        r_true = np.linalg.norm(b - A @ x) / bnorm
        stats.matvecs += 1
        stats.residual_history.append(r_true)
        if r_true < rtol:
            stats.converged = True
            return x, stats
    return x, stats


def landau_iterative_solver_factory(
    block_size: int = 64,
    restart: int = 30,
    rtol: float = 1e-10,
    raise_on_stall: bool = True,
):
    """A linear-solver factory for :class:`ImplicitLandauSolver`.

    ``ImplicitLandauSolver(op, linear_solver=landau_iterative_solver_factory())``
    swaps the direct band/LU solve for preconditioned GMRES.

    A stalled solve raises ``RuntimeError`` so a fallback chain (or the
    adaptive time-step controller) can recover; ``raise_on_stall=False``
    returns the best iterate instead.  Either way the returned ``solve``
    exposes the most recent :class:`IterativeStats` as ``solve.last_stats``.
    """

    def factory(A: sp.spmatrix):
        M = BlockJacobiPreconditioner.from_bandwidth_slices(A, block_size)

        def solve(b: np.ndarray) -> np.ndarray:
            x, stats = gmres(A, b, M=M, restart=restart, rtol=rtol)
            solve.last_stats = stats
            if not stats.converged and raise_on_stall:
                raise RuntimeError(
                    f"GMRES stalled at {stats.residual_history[-1]:.2e}"
                )
            return x

        solve.last_stats = None
        return solve

    return factory
