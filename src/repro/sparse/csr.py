"""A PETSc-style CSR matrix with ``MatSetValues`` insertion semantics.

PETSc's traditional interface inserts dense element blocks with global row/
column indices (``ADD_VALUES``).  As described in section III-F, the GPU
version of this interface "currently requires the matrix to be assembled
once on the CPU" — the first assembly discovers the nonzero pattern; after
that the pattern (metadata) is frozen and subsequent assemblies only scatter
values, which is the cheap GPU-friendly path whose cost is amortized over a
transient analysis.  This class reproduces exactly that life cycle.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


class PetscLikeMat:
    """Square sparse matrix with two-phase (CPU then GPU-style) assembly.

    Phase 1 (pattern not frozen): ``set_values`` buffers COO triplets; the
    first ``assemble()`` builds the CSR pattern and freezes it.

    Phase 2 (pattern frozen): ``set_values`` writes straight into the CSR
    value array through a precomputed slot map — no allocation, no index
    merging; this is what a GPU assembly does after the CPU first pass.
    """

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError(f"matrix dimension must be positive, got {n}")
        self.n = n
        self._rows: list[np.ndarray] = []
        self._cols: list[np.ndarray] = []
        self._vals: list[np.ndarray] = []
        self._csr: sp.csr_matrix | None = None
        self._frozen = False
        #: running count of insertion calls (metadata for the perf model)
        self.set_values_calls = 0

    @property
    def frozen(self) -> bool:
        return self._frozen

    def zero_entries(self) -> None:
        """MatZeroEntries: keep the pattern, clear the values."""
        if self._frozen:
            self._csr.data[:] = 0.0
        else:
            self._rows.clear()
            self._cols.clear()
            self._vals.clear()

    def set_values(self, rows, cols, block) -> None:
        """Add a dense block: ``A[rows[i], cols[j]] += block[i, j]``."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        block = np.asarray(block, dtype=float)
        if block.shape != (rows.size, cols.size):
            raise ValueError(
                f"block shape {block.shape} does not match ({rows.size}, {cols.size})"
            )
        self.set_values_calls += 1
        rr = np.repeat(rows, cols.size)
        cc = np.tile(cols, rows.size)
        if self._frozen:
            self._add_frozen(rr, cc, block.ravel())
        else:
            self._rows.append(rr)
            self._cols.append(cc)
            self._vals.append(block.ravel())

    def _add_frozen(self, rr: np.ndarray, cc: np.ndarray, vv: np.ndarray) -> None:
        # The frozen pattern's (row, col) pairs form a globally sorted key
        # array (rows ascending, columns sorted within each row), so slot
        # lookup is a single vectorized binary search.
        keys = rr * self.n + cc
        pos = np.searchsorted(self._keys, keys)
        bad = (pos >= self._keys.size) | (self._keys[np.minimum(pos, self._keys.size - 1)] != keys)
        if np.any(bad):
            r, c = rr[bad][0], cc[bad][0]
            raise KeyError(f"entry ({r}, {c}) is outside the frozen nonzero pattern")
        np.add.at(self._csr.data, pos, vv)

    def assemble(self) -> sp.csr_matrix:
        """MatAssemblyBegin/End: return the CSR matrix, freezing the pattern
        on the first call."""
        if self._frozen:
            return self._csr
        if not self._rows:
            self._csr = sp.csr_matrix((self.n, self.n))
        else:
            rows = np.concatenate(self._rows)
            cols = np.concatenate(self._cols)
            vals = np.concatenate(self._vals)
            coo = sp.coo_matrix((vals, (rows, cols)), shape=(self.n, self.n))
            self._csr = coo.tocsr()
            self._csr.sum_duplicates()
            self._csr.sort_indices()
        rownum = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self._csr.indptr)
        )
        self._keys = rownum * self.n + self._csr.indices.astype(np.int64)
        self._frozen = True
        self._rows.clear()
        self._cols.clear()
        self._vals.clear()
        return self._csr

    @property
    def nnz(self) -> int:
        if not self._frozen:
            raise RuntimeError("matrix not assembled yet")
        return int(self._csr.nnz)

    def to_scipy(self) -> sp.csr_matrix:
        return self.assemble().copy()
