"""Sparse matrix substrate: a PETSc-style CSR matrix with ``MatSetValues``
semantics, a GPU-style COO assembly path, graph-coloring contention-free
assembly, and the custom RCM-ordered band LU solver of section III-G.
"""

from .csr import PetscLikeMat
from .coo import CooAssembler
from .coloring import color_elements, colored_assembly_plan
from .band import (
    BandMatrix,
    BandSolver,
    CachedBandSolverFactory,
    band_factor,
    band_solve,
    band_solver_factory,
    BlockDiagonalBandSolver,
    rcm_permutation,
    bandwidth,
)
from .band_gpu import GpuBandSolver
from .iterative import (
    BlockJacobiPreconditioner,
    gmres,
    landau_iterative_solver_factory,
)

__all__ = [
    "PetscLikeMat",
    "CooAssembler",
    "color_elements",
    "colored_assembly_plan",
    "BandMatrix",
    "BandSolver",
    "CachedBandSolverFactory",
    "band_factor",
    "band_solve",
    "band_solver_factory",
    "BlockDiagonalBandSolver",
    "rcm_permutation",
    "bandwidth",
    "GpuBandSolver",
    "BlockJacobiPreconditioner",
    "gmres",
    "landau_iterative_solver_factory",
]
