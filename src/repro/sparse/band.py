"""Custom band LU solver with RCM ordering (section III-G).

SuperLU/MUMPS target much larger problems than the Landau matrices, so the
paper wrote a custom band solver: reverse Cuthill-McKee ordering minimizes
bandwidth (and "naturally produced a block diagonal matrix in multi-species
problems"); band storage keeps the main diagonal plus ``UBW`` upper and
``LBW`` lower diagonals (structurally symmetric Jacobians give
``B = UBW = LBW``); the factorization is the standard outer-product banded
LU (Golub & Van Loan, Algorithm 4.3.1) — each step ``k`` applies a
``B x B`` rank-1 update ``A[k+1:, k] * A[k, k+1:]``.

Storage is row-major diagonal-ordered: ``W[i, B + (j - i)] = A[i, j]`` for
``|j - i| <= B``, so each row's in-band segment is contiguous and the
rank-1 update is a sheared-window operation (implemented with a strided
view — the vectorized analogue of the paper's CUDA kernel where threads
sweep the update window).

The multi-species block-diagonal structure (``I_S (x) A_1`` pattern) is
exploited by :class:`BlockDiagonalBandSolver`, which factors each species
block independently — the functional analogue of the paper's use of CUDA
group synchronization to put several SMs on each species' factorization,
and of the batched LU in the artifact repository.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from numpy.lib.stride_tricks import as_strided
from scipy.sparse.csgraph import connected_components, reverse_cuthill_mckee


def rcm_permutation(A: sp.spmatrix) -> np.ndarray:
    """Reverse Cuthill-McKee ordering of the symmetrized pattern."""
    return np.asarray(
        reverse_cuthill_mckee(sp.csr_matrix(A), symmetric_mode=False), dtype=np.int64
    )


def bandwidth(A: sp.spmatrix) -> int:
    """Half bandwidth ``max |i - j|`` over the nonzero pattern."""
    coo = sp.coo_matrix(A)
    if coo.nnz == 0:
        return 0
    return int(np.max(np.abs(coo.row - coo.col)))


@dataclass
class BandMatrix:
    """Row-major diagonal-ordered band storage.

    ``W`` has shape ``(n, 2B+1)`` with ``W[i, B + (j-i)] = A[i, j]``.
    """

    W: np.ndarray
    B: int

    @property
    def n(self) -> int:
        return self.W.shape[0]

    @classmethod
    def from_sparse(cls, A: sp.spmatrix, B: int | None = None) -> "BandMatrix":
        A = sp.coo_matrix(A)
        n = A.shape[0]
        if A.shape[0] != A.shape[1]:
            raise ValueError("band storage requires a square matrix")
        if B is None:
            B = bandwidth(A)
        W = np.zeros((n, 2 * B + 1))
        off = A.col - A.row
        if np.any(np.abs(off) > B):
            raise ValueError(f"entries outside half-bandwidth {B}")
        np.add.at(W, (A.row, B + off), A.data)
        return cls(W=W, B=B)

    def to_dense(self) -> np.ndarray:
        n, B = self.n, self.B
        out = np.zeros((n, n))
        for i in range(n):
            j0 = max(0, i - B)
            j1 = min(n, i + B + 1)
            out[i, j0:j1] = self.W[i, B + (j0 - i) : B + (j1 - i)]
        return out


def band_factor(
    bm: BandMatrix, work_counter: dict | None = None, pivot_tol: float = 0.0
) -> BandMatrix:
    """In-place outer-product banded LU (GVL Alg. 4.3.1), no pivoting.

    After return ``W`` holds ``U`` on and above the diagonal and the unit-
    lower-triangular multipliers below it.  ``work_counter`` (optional dict)
    accumulates ``flops`` for the performance model.

    Without pivoting a tiny (not just zero) pivot silently amplifies
    rounding error through the whole factorization; ``pivot_tol > 0``
    raises :class:`numpy.linalg.LinAlgError` when a pivot falls below
    ``pivot_tol`` times the largest in-band magnitude, so a fallback chain
    can hand the system to a pivoted solver instead.
    """
    W, B = bm.W, bm.B
    n = W.shape[0]
    flops = 0
    s0, s1 = W.strides
    amax = float(np.max(np.abs(W))) if W.size else 0.0
    for k in range(n - 1):
        piv = W[k, B]
        if piv == 0.0:
            raise ZeroDivisionError(f"zero pivot at step {k} (no pivoting)")
        if pivot_tol > 0.0 and abs(piv) <= pivot_tol * amax:
            raise np.linalg.LinAlgError(
                f"near-zero pivot {piv:.3e} at step {k} "
                f"(|piv| <= {pivot_tol:g} * {amax:.3e}; needs pivoting)"
            )
        m = min(B, n - 1 - k)  # active sub-column length
        if m == 0:
            continue
        # sheared window: V[d, c] = W[k+1+d, (B-1-d)+c] = A[k+1+d, k+c],
        # d in [0, m), c in [0, B+1) — stays inside the band buffer because
        # B-1-d+c >= B-m >= 0 and <= 2B.
        V = as_strided(
            W[k + 1 :, B - 1 :],
            shape=(m, B + 1),
            strides=(s0 - s1, s1),
        )
        # column below the pivot is V[:, 0]; pivot row segment is W[k, B:2B+1]
        l = V[:, 0] / piv
        V[:, 0] = l
        u = W[k, B + 1 : 2 * B + 1]
        V[:, 1:] -= np.outer(l, u)
        flops += m + 2 * m * B
    if work_counter is not None:
        work_counter["flops"] = work_counter.get("flops", 0) + flops
    return bm


def band_solve(bm: BandMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the factored band matrix."""
    W, B = bm.W, bm.B
    n = W.shape[0]
    x = np.asarray(b, dtype=float).copy()
    if x.shape[0] != n:
        raise ValueError(f"rhs length {x.shape[0]} != {n}")
    # forward: L y = b (unit diagonal; multipliers stored below diagonal)
    for i in range(1, n):
        j0 = max(0, i - B)
        seg = W[i, B + (j0 - i) : B]
        x[i] -= seg @ x[j0:i]
    # backward: U x = y
    for i in range(n - 1, -1, -1):
        j1 = min(n, i + B + 1)
        seg = W[i, B + 1 : B + (j1 - i)]
        x[i] = (x[i] - seg @ x[i + 1 : j1]) / W[i, B]
    return x


class BandSolver:
    """RCM-permuted band LU solver for one sparse matrix."""

    def __init__(
        self,
        A: sp.spmatrix,
        work_counter: dict | None = None,
        pivot_tol: float = 0.0,
    ):
        A = sp.csr_matrix(A)
        self.n = A.shape[0]
        self.perm = rcm_permutation(A)
        Ap = A[self.perm][:, self.perm]
        self.B = bandwidth(Ap)
        self.bm = band_factor(
            BandMatrix.from_sparse(Ap, self.B), work_counter, pivot_tol=pivot_tol
        )
        self.iperm = np.empty_like(self.perm)
        self.iperm[self.perm] = np.arange(self.n)

    def solve(self, b: np.ndarray) -> np.ndarray:
        y = band_solve(self.bm, np.asarray(b, dtype=float)[self.perm])
        return y[self.iperm]

    def __call__(self, b: np.ndarray) -> np.ndarray:
        return self.solve(b)


def band_solver_factory(A: sp.spmatrix, pivot_tol: float = 0.0):
    """Factory with the solver-plug signature used by
    :class:`repro.core.solver.ImplicitLandauSolver`."""
    return BandSolver(A, pivot_tol=pivot_tol)


@dataclass
class _BandStructure:
    """Symbolic band setup for one sparsity pattern: the RCM permutation,
    the half-bandwidth and the flat scatter positions of each CSR entry in
    the band buffer."""

    perm: np.ndarray
    iperm: np.ndarray
    B: int
    pos: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    #: flat scatter positions into LAPACK ``dgbtrf`` storage, built lazily
    #: (``ab`` is ``(2*B + B + 1, n)`` column-banded with ``kl = ku = B``)
    pos_lapack: np.ndarray | None = None

    def lapack_positions(self, n: int) -> np.ndarray:
        if self.pos_lapack is None:
            B = self.B
            # recover permuted (row, col) of each CSR entry from the band
            # scatter: pos = pr * (2B+1) + (B + pc - pr)
            pr, off = np.divmod(self.pos, 2 * B + 1)
            pc = pr + (off - B)
            # LAPACK banded layout: ab[kl + ku + i - j, j] = A[i, j]
            self.pos_lapack = (2 * B + pr - pc) * n + pc
        return self.pos_lapack


class _CachedBandSolver:
    """Solve plug returned by :class:`CachedBandSolverFactory`."""

    def __init__(self, bm: BandMatrix, st: _BandStructure):
        self.bm = bm
        self._st = st

    def solve(self, b: np.ndarray) -> np.ndarray:
        y = band_solve(self.bm, np.asarray(b, dtype=float)[self._st.perm])
        return y[self._st.iperm]

    def __call__(self, b: np.ndarray) -> np.ndarray:
        return self.solve(b)


try:  # pragma: no cover - import probe
    from scipy.linalg import lapack as _lapack

    _HAVE_GBTRF = hasattr(_lapack, "dgbtrf") and hasattr(_lapack, "dgbtrs")
except ImportError:  # pragma: no cover - scipy without lapack wrappers
    _lapack = None
    _HAVE_GBTRF = False


class BatchedBandSolver:
    """LU factors of many same-pattern matrices sharing one band symbolic.

    The serve/batch hot path factors ``X`` matrices per sweep that all come
    from the same :class:`ScatterMap` structure — identical sparsity, hence
    identical RCM ordering, bandwidth and CSR→band scatter.  The numeric
    kernels (LAPACK ``dgbtrf``/``dgbtrs``, pure-python
    :func:`band_factor`/:func:`band_solve`, or numba's JIT variant) live in
    the :class:`~repro.backend.ExecutionBackend` that produced the factors;
    this wrapper owns the shared symbolic state and applies the RCM
    permutation once per solve call.
    """

    def __init__(
        self,
        st: _BandStructure,
        n: int,
        factors,
        engine: str,
        backend=None,
    ):
        if backend is None:
            from ..backend.numpy_backend import NumpyBackend

            backend = NumpyBackend()
        self._st = st
        self.n = n
        self._factors = factors
        self.engine = engine
        self._backend = backend

    @property
    def batch_size(self) -> int:
        return len(self._factors)

    def solve_many(self, rhs: np.ndarray) -> np.ndarray:
        """Solve all systems: ``rhs`` is ``(X, n)``, returns ``(X, n)``."""
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (len(self._factors), self.n):
            raise ValueError(
                f"rhs must be ({len(self._factors)}, {self.n}), got {rhs.shape}"
            )
        st = self._st
        out = self._backend.banded_solve_many(
            self.engine, self._factors, st, np.ascontiguousarray(rhs[:, st.perm])
        )
        return out[:, st.iperm]

    def solve(self, index: int, b: np.ndarray) -> np.ndarray:
        """Solve the ``index``-th system for one right-hand side."""
        st = self._st
        b = np.asarray(b, dtype=float)
        y = self._backend.banded_solve_one(
            self.engine, self._factors[index], st, b[st.perm]
        )
        return y[st.iperm]


class CachedBandSolverFactory:
    """Band-solver factory that reuses the RCM ordering and band symbolic
    setup between refactorizations.

    Newton iterations refactor matrices whose sparsity never changes (and
    the per-species blocks of the multi-species Jacobian share a pattern
    too), so the RCM ordering, the bandwidth and the CSR→band scatter are
    computed once per pattern and only the numeric band fill + LU run per
    call.  A small LRU keyed on the CSR pattern holds the structures;
    results are identical to :class:`BandSolver`.

    :meth:`factor_batch` extends the reuse across a *batch*: ``X`` matrices
    sharing one pattern (the batched-vertex / serve hot path) are factored
    against a single symbolic setup — the batched analogue of the paper
    follow-up's batched band solvers.
    """

    def __init__(self, pivot_tol: float = 0.0, max_patterns: int = 8):
        self.pivot_tol = float(pivot_tol)
        self.max_patterns = int(max_patterns)
        self._cache: dict = {}
        self._order: list = []
        self.symbolic_setups = 0
        self.symbolic_reuses = 0

    def _structure(self, A: sp.csr_matrix) -> _BandStructure:
        key = (A.shape[0], A.nnz, hash(A.indptr.tobytes()) ^ hash(A.indices.tobytes()))
        st = self._cache.get(key)
        if st is not None and np.array_equal(st.indptr, A.indptr) and np.array_equal(
            st.indices, A.indices
        ):
            self.symbolic_reuses += 1
            return st
        n = A.shape[0]
        perm = rcm_permutation(A)
        iperm = np.empty_like(perm)
        iperm[perm] = np.arange(n)
        row = np.repeat(np.arange(n, dtype=np.int64), np.diff(A.indptr))
        pr = iperm[row]
        pc = iperm[A.indices]
        B = int(np.max(np.abs(pr - pc))) if A.nnz else 0
        pos = pr * (2 * B + 1) + (B + pc - pr)
        st = _BandStructure(
            perm=perm,
            iperm=iperm,
            B=B,
            pos=pos,
            indptr=A.indptr.copy(),
            indices=A.indices.copy(),
        )
        self._cache[key] = st
        self._order.append(key)
        if len(self._order) > self.max_patterns:
            self._cache.pop(self._order.pop(0), None)
        self.symbolic_setups += 1
        return st

    def __call__(self, A: sp.spmatrix) -> _CachedBandSolver:
        A = sp.csr_matrix(A)
        A.sum_duplicates()
        A.sort_indices()
        st = self._structure(A)
        n = A.shape[0]
        W = np.zeros((n, 2 * st.B + 1))
        W.ravel()[st.pos] = A.data  # pattern entries are unique: direct fill
        bm = band_factor(BandMatrix(W=W, B=st.B), pivot_tol=self.pivot_tol)
        return _CachedBandSolver(bm, st)

    # ------------------------------------------------------------------
    def factor_batch(
        self, template: sp.csr_matrix, data: np.ndarray, backend=None
    ) -> BatchedBandSolver:
        """Factor ``X`` matrices sharing ``template``'s sparsity pattern.

        ``template`` is any canonical CSR with the shared pattern (its
        values are ignored); ``data`` is ``(X, nnz)``, one CSR ``data`` row
        per matrix, aligned with ``template.indices``.  The symbolic setup
        (RCM ordering, bandwidth, scatter positions) is computed or reused
        *once* for the whole batch; each additional matrix counts as a
        symbolic reuse.  The numeric factorizations are dispatched through
        ``backend`` (:meth:`ExecutionBackend.banded_factor_many`; the
        serial numpy reference when ``None``): LAPACK's partial-pivoting
        band LU when available, the pure-python no-pivot
        :func:`band_factor` or numba's JIT kernel otherwise.
        """
        template = sp.csr_matrix(template)
        data = np.ascontiguousarray(data, dtype=float)
        if data.ndim != 2 or data.shape[1] != template.nnz:
            raise ValueError(
                f"data must be (X, {template.nnz}), got {data.shape}"
            )
        st = self._structure(template)
        self.symbolic_reuses += max(0, data.shape[0] - 1)
        n = template.shape[0]
        if backend is None:
            from ..backend.registry import get_backend

            backend = get_backend("numpy")
        engine, factors = backend.banded_factor_many(
            st, n, data, pivot_tol=self.pivot_tol
        )
        return BatchedBandSolver(st, n, factors, engine, backend=backend)

    def factor_many(
        self, template: sp.csr_matrix, data: np.ndarray
    ) -> BatchedBandSolver:
        """Deprecated alias of :meth:`factor_batch` (serial reference
        backend)."""
        warnings.warn(
            "CachedBandSolverFactory.factor_many is deprecated; use "
            "factor_batch",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.factor_batch(template, data)


class BlockDiagonalBandSolver:
    """Batched band solver for block-diagonal (multi-species) systems.

    RCM on the whole multi-species Jacobian "naturally produced a block
    diagonal matrix"; here the independent diagonal blocks are discovered
    as connected components of the pattern and factored separately —
    species solves are independent, exactly the structure the paper's CUDA
    solver exploits with group synchronization across SMs.
    """

    def __init__(self, A: sp.spmatrix, work_counter: dict | None = None):
        A = sp.csr_matrix(A)
        self.n = A.shape[0]
        ncomp, labels = connected_components(A, directed=False)
        self.blocks: list[tuple[np.ndarray, BandSolver]] = []
        for c in range(ncomp):
            idx = np.nonzero(labels == c)[0]
            sub = A[idx][:, idx]
            self.blocks.append((idx, BandSolver(sub, work_counter)))

    @property
    def nblocks(self) -> int:
        return len(self.blocks)

    def solve(self, b: np.ndarray) -> np.ndarray:
        b = np.asarray(b, dtype=float)
        x = np.empty_like(b)
        for idx, solver in self.blocks:
            x[idx] = solver.solve(b[idx])
        return x

    def __call__(self, b: np.ndarray) -> np.ndarray:
        return self.solve(b)
