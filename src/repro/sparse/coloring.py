"""Graph-coloring element assembly (section III-F).

Of the three contention-resolution strategies for GPU finite element
assembly — atomic fetch-and-add, graph coloring, and domain decomposition —
PETSc released the atomics path; this module implements the coloring
alternative so the two can be compared (bench ``assembly_ablation``).

Two elements conflict if they share a global node (their element matrices
touch common entries).  A greedy coloring of the conflict graph partitions
the elements into batches that can be scattered concurrently without
atomics; one kernel launch (or one pass) per color.
"""

from __future__ import annotations

import numpy as np


def color_elements(cell_nodes: np.ndarray) -> np.ndarray:
    """Greedy color assignment for the element conflict graph.

    Parameters
    ----------
    cell_nodes:
        ``(ne, nb)`` global node indices per element (full space, so that
        constrained-node sharing conflicts are caught too).

    Returns
    -------
    ``(ne,)`` color index per element (0-based).
    """
    nodes = np.asarray(cell_nodes, dtype=np.int64)
    ne = nodes.shape[0]
    # adjacency through shared nodes
    node_to_elems: dict[int, list[int]] = {}
    for e in range(ne):
        for n in set(nodes[e].tolist()):
            node_to_elems.setdefault(n, []).append(e)
    colors = -np.ones(ne, dtype=np.int64)
    # largest-degree-first ordering tends to reduce the color count
    degree = np.zeros(ne, dtype=np.int64)
    for elems in node_to_elems.values():
        for e in elems:
            degree[e] += len(elems) - 1
    for e in np.argsort(-degree):
        used = set()
        for n in set(nodes[e].tolist()):
            for other in node_to_elems[n]:
                if colors[other] >= 0:
                    used.add(int(colors[other]))
        c = 0
        while c in used:
            c += 1
        colors[e] = c
    return colors


def colored_assembly_plan(cell_nodes: np.ndarray) -> list[np.ndarray]:
    """Element batches (one per color) for contention-free scatter."""
    colors = color_elements(cell_nodes)
    return [np.nonzero(colors == c)[0] for c in range(int(colors.max()) + 1)]


def verify_coloring(cell_nodes: np.ndarray, colors: np.ndarray) -> bool:
    """True iff no two same-colored elements share a node."""
    nodes = np.asarray(cell_nodes, dtype=np.int64)
    seen: dict[tuple[int, int], int] = {}
    for e in range(nodes.shape[0]):
        c = int(colors[e])
        for n in set(nodes[e].tolist()):
            key = (c, n)
            if key in seen and seen[key] != e:
                return False
            seen[key] = e
    return True
