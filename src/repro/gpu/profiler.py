"""Nsight-Compute-style kernel analysis from the simulator's counters.

Given the exact work counts of a kernel and a device description, this
module produces the quantities of Table IV — arithmetic intensity, percent
of roofline, the bottleneck resource and its utilization — and the
predicted device time used by the throughput model of Tables II-VIII.

Time model (three-resource bottleneck):

    t_compute = issue_slots / (peak_slots * pipe_utilization)
    t_dram    = dram_bytes  / (dram_peak * mem_efficiency)
    t_l1      = shared+L1 bytes / (l1_peak * l1_efficiency)
    t_atomic  = atomics * atomic_ns            (serialization tail)
    t_kernel  = max(t_compute, t_dram, t_l1) + t_atomic + launch overhead
    t_kernel /= software_efficiency            (toolchain maturity)

Everything on the left of the max comes from counted work; the efficiency
constants are device calibration documented in :mod:`repro.gpu.device`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import Counters
from .device import DeviceSpec


@dataclass
class KernelProfile:
    """The per-kernel analysis record."""

    name: str
    device: DeviceSpec
    counters: Counters
    time_s: float
    t_compute: float
    t_dram: float
    t_l1: float
    t_atomic: float
    bottleneck: str
    bottleneck_utilization: float

    @property
    def arithmetic_intensity(self) -> float:
        return self.counters.arithmetic_intensity

    @property
    def achieved_tflops(self) -> float:
        return self.counters.flops / self.time_s / 1e12 if self.time_s else 0.0

    @property
    def roofline_fraction(self) -> float:
        """Achieved flops over the roofline ceiling at this kernel's AI."""
        ai = self.arithmetic_intensity
        peak = self.device.peak_fp64_flops
        ceiling = min(peak, ai * self.device.dram_peak_gbs * 1e9)
        return self.counters.flops / self.time_s / ceiling if self.time_s else 0.0

    @property
    def fp64_pipe_utilization(self) -> float:
        """Fraction of FP64 issue-slot peak actually sustained."""
        if not self.time_s:
            return 0.0
        return (
            self.counters.issue_slots
            / self.time_s
            / self.device.peak_issue_slots
        )

    @property
    def dram_utilization(self) -> float:
        if not self.time_s:
            return 0.0
        return (
            self.counters.dram_bytes / self.time_s / (self.device.dram_peak_gbs * 1e9)
        )


def profile_kernel(
    name: str, counters: Counters, device: DeviceSpec, launches: int | None = None
) -> KernelProfile:
    """Analyze a kernel's counted work on a device."""
    c = counters
    t_compute = c.issue_slots / (device.peak_issue_slots * device.pipe_utilization)
    t_dram = c.dram_bytes / (device.dram_peak_gbs * 1e9 * device.mem_efficiency)
    t_l1 = c.shared_bytes / (device.l1_peak_gbs * 1e9 * device.l1_efficiency)
    if device.fp64_global_atomics:
        t_atomic = c.atomic_adds * device.atomic_ns * 1e-9 / max(device.sm_count, 1)
    else:
        # software (CAS-loop) atomics serialize much harder
        t_atomic = c.atomic_adds * device.atomic_ns * 1e-9 / max(device.sm_count // 8, 1)
    nl = launches if launches is not None else c.kernel_launches
    t_launch = nl * device.kernel_launch_us * 1e-6
    body = max(t_compute, t_dram, t_l1)
    time_s = (body + t_atomic) / device.software_efficiency + t_launch
    if body == t_compute:
        bottleneck = "FP64 pipe"
        util = device.pipe_utilization
    elif body == t_dram:
        bottleneck = "DRAM"
        util = device.mem_efficiency
    else:
        bottleneck = "L1 cache"
        util = device.l1_efficiency
    return KernelProfile(
        name=name,
        device=device,
        counters=c,
        time_s=time_s,
        t_compute=t_compute,
        t_dram=t_dram,
        t_l1=t_l1,
        t_atomic=t_atomic,
        bottleneck=bottleneck,
        bottleneck_utilization=util,
    )


def roofline_report(profiles: list[KernelProfile]) -> str:
    """Format Table IV: AI, % roofline, bottleneck (utilization)."""
    lines = [
        f"{'kernel':<12} {'AI':>6} {'% roofline':>11} {'bottleneck (utilization)':>28}"
    ]
    for p in profiles:
        lines.append(
            f"{p.name:<12} {p.arithmetic_intensity:>6.1f} "
            f"{100.0 * p.roofline_fraction:>10.0f}% "
            f"{p.bottleneck + f' ({100.0 * p.bottleneck_utilization:.1f}%)':>28}"
        )
    return "\n".join(lines)
