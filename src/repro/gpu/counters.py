"""Work counters for the simulated GPU: the raw material of the roofline
and device-time models.

Floating point work is recorded by instruction class because the roofline
analysis distinguishes them: an FMA is one issue slot but two flops, MUL and
ADD are one slot / one flop, and "special" operations (divide, sqrt, log —
the elliptic-integral polynomial path has several) occupy multiple slots.
The paper reports that only 64% of the Jacobian kernel's FP64 instructions
were DFMA, which is why 66.4% pipe utilization yields only 53% of the DFMA
roofline — the same arithmetic falls out of these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: issue-slot cost of one special-function op relative to an FMA slot
SPECIAL_SLOT_COST = 4.0


@dataclass
class Counters:
    """Accumulated work counts (all doubles; bytes are bytes)."""

    fma: int = 0
    mul: int = 0
    add: int = 0
    special: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    shared_read_bytes: int = 0
    shared_write_bytes: int = 0
    atomic_adds: int = 0
    warp_shuffles: int = 0
    syncthreads: int = 0
    kernel_launches: int = 0
    blocks_executed: int = 0

    # --- arithmetic --------------------------------------------------------------
    @property
    def flops(self) -> int:
        """Total FP64 flops (FMA = 2)."""
        return 2 * self.fma + self.mul + self.add + self.special

    @property
    def fp64_instructions(self) -> int:
        return self.fma + self.mul + self.add + self.special

    @property
    def dfma_fraction(self) -> float:
        n = self.fp64_instructions
        return self.fma / n if n else 0.0

    @property
    def issue_slots(self) -> float:
        """FP64 pipe issue slots, weighting special ops by their latency."""
        return self.fma + self.mul + self.add + SPECIAL_SLOT_COST * self.special

    @property
    def dram_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def shared_bytes(self) -> int:
        return self.shared_read_bytes + self.shared_write_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per DRAM byte — the roofline x-coordinate."""
        b = self.dram_bytes
        return self.flops / b if b else float("inf")

    # --- algebra -----------------------------------------------------------------
    def snapshot(self) -> "Counters":
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, earlier: "Counters") -> "Counters":
        return Counters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def merge(self, other: "Counters") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)
