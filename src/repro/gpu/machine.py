"""The functional SIMT executor: grid/block launch, shared memory, barriers.

Kernels are Python callables ``kernel(tb, block_id, *args)`` where ``tb`` is
the :class:`ThreadBlock` handle.  Execution is SIMT with numpy-vectorized
lanes: the x thread dimension is materialized as array axes inside the
kernel, blocks run sequentially (the simulator models one device), and all
work is recorded in :class:`repro.gpu.counters.Counters` by the kernel via
the ``tb.count*`` API — the simulated analogue of reading Nsight hardware
counters.
"""

from __future__ import annotations

import numpy as np

from .counters import Counters
from .device import DeviceSpec, V100

FP64 = 8  # bytes per double


class ThreadBlock:
    """Execution handle for one thread block on one SM.

    Provides the CUDA vocabulary used by Algorithm 1: block/thread geometry,
    shared memory allocation, ``syncthreads``, warp-shuffle reductions and
    global atomics — each call also records the corresponding work.
    """

    def __init__(
        self,
        block_id: int,
        dim_x: int,
        dim_y: int,
        counters: Counters,
        device: DeviceSpec,
    ):
        if dim_x * dim_y > device.max_threads_per_block:
            raise ValueError(
                f"block {dim_x}x{dim_y} exceeds {device.max_threads_per_block} threads"
            )
        self.block_id = block_id
        self.dim_x = dim_x
        self.dim_y = dim_y
        self.counters = counters
        self.device = device
        self._shared_allocated = 0

    # --- memory -----------------------------------------------------------------
    def shared(self, *shape: int) -> np.ndarray:
        """Allocate a zeroed shared-memory array (counts the footprint)."""
        arr = np.zeros(shape)
        self._shared_allocated += arr.nbytes
        return arr

    @property
    def shared_bytes_allocated(self) -> int:
        return self._shared_allocated

    def global_read(self, count: int) -> None:
        """Record ``count`` doubles read from global memory (coalesced)."""
        self.counters.dram_read_bytes += count * FP64

    def global_write(self, count: int) -> None:
        self.counters.dram_write_bytes += count * FP64

    def shared_read(self, count: int) -> None:
        self.counters.shared_read_bytes += count * FP64

    def shared_write(self, count: int) -> None:
        self.counters.shared_write_bytes += count * FP64

    # --- compute ----------------------------------------------------------------
    def count(self, fma: int = 0, mul: int = 0, add: int = 0, special: int = 0) -> None:
        """Record FP64 instructions (per-thread totals, i.e. whole-block)."""
        c = self.counters
        c.fma += fma
        c.mul += mul
        c.add += add
        c.special += special

    # --- synchronization -----------------------------------------------------------
    def syncthreads(self) -> None:
        self.counters.syncthreads += 1

    def warp_shuffle_reduce(self, values: np.ndarray, axis: int = -1) -> np.ndarray:
        """Sum-reduce across the lane axis using warp shuffles.

        Records ``log2(width)`` shuffle rounds over the participating
        values (each round also an FP64 add per element), exactly the
        butterfly of the CUDA kernel's manual reduction.
        """
        values = np.asarray(values)
        width = values.shape[axis]
        out = values.sum(axis=axis)
        rounds = max(int(np.ceil(np.log2(width))), 0) if width > 1 else 0
        n_items = int(np.prod(out.shape)) if out.shape else 1
        self.counters.warp_shuffles += rounds * n_items
        self.counters.add += rounds * n_items
        return out

    def atomic_add(self, target: np.ndarray, index, values) -> None:
        """Global-memory atomic fetch-and-add scatter.

        Each atomic moves the 8-byte datum through DRAM (read-modify-write)
        and touches the L1 for the address/index metadata of the sparse
        pattern lookup (16 bytes) — the traffic that makes the assembly
        phase cache-latency bound in the paper's analysis.
        """
        values = np.asarray(values, dtype=float)
        np.add.at(target, index, values)
        n = int(np.prod(values.shape)) if values.shape else 1
        hit = self.device.atomic_l1_hit
        self.counters.atomic_adds += n
        # read-modify-write: the L1/L2 hierarchy absorbs `hit` of the traffic
        self.counters.dram_write_bytes += int(n * FP64 * (1.0 - hit)) + n  # write-back tail
        self.counters.dram_read_bytes += int(n * FP64 * (1.0 - hit))
        self.counters.shared_read_bytes += int(n * 2 * FP64 * hit)
        self.counters.shared_write_bytes += int(n * FP64 * hit)
        self.counters.shared_read_bytes += n * 2 * FP64  # index metadata via L1


class CudaMachine:
    """One simulated device executing kernels block by block."""

    def __init__(self, device: DeviceSpec = V100, counters: Counters | None = None):
        self.device = device
        self.counters = counters if counters is not None else Counters()

    def launch(
        self,
        kernel,
        grid_x: int,
        block_dim: tuple[int, int],
        *args,
        **kwargs,
    ) -> None:
        """Launch ``kernel`` on a 1D grid of ``grid_x`` blocks.

        ``block_dim = (dim_x, dim_y)``; the x dimension is the reduction/
        vector dimension, y indexes integration points (Algorithm 1).
        """
        if grid_x <= 0:
            raise ValueError(f"grid size must be positive, got {grid_x}")
        dim_x, dim_y = block_dim
        self.counters.kernel_launches += 1
        for b in range(grid_x):
            tb = ThreadBlock(b, dim_x, dim_y, self.counters, self.device)
            kernel(tb, b, *args, **kwargs)
            self.counters.blocks_executed += 1
