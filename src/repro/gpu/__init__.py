"""A functional simulator of the CUDA programming model, instrumented with
exact work counters, plus device descriptions and an Nsight-Compute-style
profiler.

The paper's Algorithm 1 is expressed against this model exactly as it is
against CUDA: a kernel launches over a grid of thread blocks (one element
per block / SM), each block has an (x, y) thread layout, shared memory,
barriers, warp-shuffle reductions and atomic adds.  Execution here is SIMT
with numpy-vectorized lanes, so results are bit-identical (up to fp
reassociation) to the CPU reference, while the counters record every FP64
instruction (FMA/MUL/ADD/special), every byte of DRAM and shared-memory
traffic, every atomic, shuffle and barrier — the inputs to the roofline
analysis of Table IV and the device time model behind Tables II-VIII.
"""

from .counters import Counters
from .device import DeviceSpec, V100, MI100, A64FX
from .machine import CudaMachine, ThreadBlock
from .profiler import KernelProfile, profile_kernel, roofline_report

__all__ = [
    "Counters",
    "DeviceSpec",
    "V100",
    "MI100",
    "A64FX",
    "CudaMachine",
    "ThreadBlock",
    "KernelProfile",
    "profile_kernel",
    "roofline_report",
]
