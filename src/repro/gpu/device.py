"""Device descriptions for the performance model.

Peak numbers come from vendor specifications quoted in the paper (section
V-A1 and V-D1); the behavioural parameters (achievable pipe utilization,
memory efficiency, atomics penalty, launch overhead) are calibrated to the
paper's own measurements and documented field by field — the *model*
derives every table entry from work counters and these constants, no table
value is hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """One accelerator (or manycore vector processor treated as one).

    Attributes
    ----------
    name:
        device name.
    sm_count:
        streaming multiprocessors (V100) / compute units (MI100) / cores.
    warp_size:
        threads per warp (64 on AMD wavefronts, 8 vector lanes on A64FX).
    peak_fp64_tflops:
        DFMA peak in TFlop/s.
    dram_peak_gbs:
        DRAM bandwidth peak in GB/s.
    max_threads_per_block:
        CUDA limit (the Landau kernel uses <= 256).
    pipe_utilization:
        achievable fraction of the FP64 issue-slot peak for a well-tuned
        compute-bound kernel (V100 measured 66.4% in the paper).
    mem_efficiency:
        achievable fraction of DRAM peak for streaming access.
    l1_peak_gbs:
        aggregate L1/shared throughput peak.
    l1_efficiency:
        achievable L1 fraction for the imbalanced assembly kernels (the
        paper measured 27% on the mass kernel due to constrained-face load
        imbalance and early-exit threads).
    fp64_global_atomics:
        hardware FP64 atomic add in global memory (V100 yes, MI100 no —
        a significant source of MI100 under-performance, section V-D1).
    atomic_ns:
        effective cost of one FP64 global atomic add (ns); much larger when
        emulated via CAS loops.
    kernel_launch_us:
        per-launch overhead in microseconds.
    atomic_l1_hit:
        fraction of atomic read-modify-write traffic served by the cache
        hierarchy rather than DRAM (the paper measured a 77% L1 hit rate on
        the assembly-dominated mass kernel).
    software_efficiency:
        residual multiplier for toolchain maturity (ROCm on early Spock,
        GNU auto-vectorization of Kokkos on A64FX).
    """

    name: str
    sm_count: int
    warp_size: int
    peak_fp64_tflops: float
    dram_peak_gbs: float
    max_threads_per_block: int = 1024
    pipe_utilization: float = 0.66
    mem_efficiency: float = 0.80
    l1_peak_gbs: float = 10_000.0
    l1_efficiency: float = 0.27
    fp64_global_atomics: bool = True
    atomic_ns: float = 8.0
    atomic_l1_hit: float = 0.77
    kernel_launch_us: float = 6.0
    software_efficiency: float = 1.0

    @property
    def peak_fp64_flops(self) -> float:
        return self.peak_fp64_tflops * 1e12

    @property
    def peak_issue_slots(self) -> float:
        """FP64 issue slots per second (each slot could be a 2-flop FMA)."""
        return self.peak_fp64_flops / 2.0

    @property
    def roofline_knee(self) -> float:
        """AI (flop/byte) where the roofline turns over: peak/bandwidth.

        V100: 7.8e12 / 890e9 = 8.8, as quoted in section V-A1.
        """
        return self.peak_fp64_flops / (self.dram_peak_gbs * 1e9)


# --- the paper's three devices -------------------------------------------------

#: NVIDIA V100 (Summit): 80 SMs, 7.8 DP TFlop/s, 890 GB/s; the paper
#: measured 66.4% FP64 pipe utilization on the Jacobian kernel.
V100 = DeviceSpec(
    name="V100",
    sm_count=80,
    warp_size=32,
    peak_fp64_tflops=7.8,
    dram_peak_gbs=890.0,
    pipe_utilization=0.664,
    mem_efficiency=0.80,
    l1_peak_gbs=14_000.0,
    l1_efficiency=0.27,
    fp64_global_atomics=True,
    atomic_ns=8.0,
    kernel_launch_us=6.0,
    software_efficiency=1.0,
)

#: AMD MI100 (Spock): 120 CUs, 11.5 DP TFlop/s peak, 1230 GB/s — but no
#: hardware FP64 global atomics, more CUs to fill, and an immature ROCm at
#: measurement time; the paper found the kernel ~5x slower than V100 after
#: normalizing by peak (section V-D1), which these parameters reproduce.
MI100 = DeviceSpec(
    name="MI100",
    sm_count=120,
    warp_size=64,
    peak_fp64_tflops=11.5,
    dram_peak_gbs=1230.0,
    pipe_utilization=0.30,
    mem_efficiency=0.60,
    l1_peak_gbs=12_000.0,
    l1_efficiency=0.20,
    fp64_global_atomics=False,
    atomic_ns=60.0,
    kernel_launch_us=10.0,
    software_efficiency=0.55,
)

#: Fujitsu A64FX (Fugaku): 48 cores x 2 x 512-bit SVE, ~3.4 DP TFlop/s,
#: 1024 GB/s HBM2.  Kokkos-OpenMP maps vector ranges to SVE lanes, but the
#: GNU 8.2 auto-vectorization of Kokkos v3.4 was ineffective — the paper
#: infers ~8.5x under-performance, captured in software_efficiency.
A64FX = DeviceSpec(
    name="A64FX",
    sm_count=48,
    warp_size=8,
    peak_fp64_tflops=3.38,
    dram_peak_gbs=1024.0,
    pipe_utilization=0.70,
    mem_efficiency=0.75,
    l1_peak_gbs=8_000.0,
    l1_efficiency=0.35,
    fp64_global_atomics=True,
    atomic_ns=25.0,
    kernel_launch_us=1.0,  # OpenMP parallel region, not a device launch
    software_efficiency=1.0 / 8.5,
)
