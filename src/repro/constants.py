"""Physical constants and plasma parameters (SI units).

The solver itself works in the nondimensional units of Appendix A of the
paper (see :mod:`repro.units`); this module provides the SI anchors used to
convert back and forth and the species data (electron, deuterium, tungsten
ionization states) used throughout the experiments.
"""

from __future__ import annotations

import math

# --- fundamental constants (CODATA 2018, SI) -------------------------------
ELECTRON_CHARGE = 1.602176634e-19  # C
ELECTRON_MASS = 9.1093837015e-31  # kg
PROTON_MASS = 1.67262192369e-27  # kg
ATOMIC_MASS_UNIT = 1.66053906660e-27  # kg
VACUUM_PERMITTIVITY = 8.8541878128e-12  # F/m
BOLTZMANN = 1.380649e-23  # J/K
SPEED_OF_LIGHT = 2.99792458e8  # m/s

# electron-volt in joules and kelvin
EV = ELECTRON_CHARGE  # J
EV_IN_KELVIN = EV / BOLTZMANN

# --- paper defaults ---------------------------------------------------------
#: Coulomb logarithm used for every species pair in the paper ("=10 herein").
COULOMB_LOG = 10.0

#: Reference number density for a typical fusion plasma (Appendix A).
DEFAULT_DENSITY = 1.0e20  # m^-3

#: mass ratios relative to the electron
DEUTERIUM_MASS_RATIO = 2.0141017778 * ATOMIC_MASS_UNIT / ELECTRON_MASS
TUNGSTEN_MASS_RATIO = 183.84 * ATOMIC_MASS_UNIT / ELECTRON_MASS
PROTON_MASS_RATIO = PROTON_MASS / ELECTRON_MASS


def thermal_speed(temperature_ev: float, mass_kg: float) -> float:
    """Most-probable-ish reference speed ``v0 = sqrt(8 kT / (pi m))``.

    This is the reference velocity of Appendix A (the mean speed of a
    Maxwellian), evaluated in SI units for a temperature given in eV.
    """
    if temperature_ev <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_ev}")
    if mass_kg <= 0.0:
        raise ValueError(f"mass must be positive, got {mass_kg}")
    return math.sqrt(8.0 * temperature_ev * EV / (math.pi * mass_kg))


def collision_frequency_prefactor(m0: float = ELECTRON_MASS) -> float:
    """``nu = ln(Lambda) e^4 / (8 pi m0^2 eps0^2)`` with unit effective charges.

    The per-pair collision frequency of eq. (2) is
    ``nu_ab = e_a^2 e_b^2 ln(Lambda) / (8 pi m0^2 eps0^2)``; this returns the
    value for ``e_a = e_b = e`` (elementary charge), i.e. the electron-electron
    value, so that ``nu_ab = prefactor * z_a^2 * z_b^2``.
    """
    e4 = ELECTRON_CHARGE**4
    return COULOMB_LOG * e4 / (8.0 * math.pi * m0**2 * VACUUM_PERMITTIVITY**2)
