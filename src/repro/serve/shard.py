"""Shard workers: warm per-plan runtimes, batch execution and the retry path.

Each shard owns a bounded job queue, a :class:`~repro.serve.plan.PlanCache`
of warm runtimes (one ``LandauOperator`` + ``CachedBandSolverFactory`` per
plan — consistent hashing keeps a plan's jobs on one shard so its pair
tables and band symbolics are built once), and the execution pipeline:

1. deadline-expired jobs are shed before any compute;
2. the surviving jobs are stacked and advanced by one
   :meth:`BatchedVertexSolver.step`;
3. an optional fault-injection shim (``repro.resilience.faults``) corrupts
   or rejects per-job results, exactly like a transient hardware fault;
4. jobs whose vertex did not converge — or came back non-finite — are
   routed through the PR-1 retry/backoff path
   (:meth:`ImplicitLandauSolver.advance` under a
   :class:`TimeStepController`) *individually*, so one hard vertex cannot
   poison the batch;
5. every admitted job gets exactly one :class:`JobResult`.

With ``executor="process"`` the same pipeline runs inside a
``concurrent.futures.ProcessPoolExecutor`` worker (one per shard), with a
module-global plan cache warmed per process.  Plans are **published**
once per worker (:func:`_process_publish_plan`) so per-batch dispatch
ships only the plan key, job metadata and the state stack — the states
ride a shared-memory segment (:mod:`repro.backend.shm`), and the warm
``PlanRuntime`` tensors never cross the pipe at all.  A worker that has
lost its plans (fresh or restarted process) raises
:class:`PlanNotPublished` and the service republishes and retries.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..resilience.controller import TimeStepController
from ..resilience.exceptions import InjectedFault, SolveFailure, StepRejected
from .jobs import STATUS_FAILED, STATUS_OK, STATUS_SHED, JobResult, SolveJob
from .metrics import ShardMetrics
from .plan import PlanCache, PlanRuntime

__all__ = ["ShardWorker", "execute_jobs"]


def _retry_job(runtime: PlanRuntime, job: SolveJob) -> tuple[np.ndarray, int]:
    """Re-solve one job from its original state through the adaptive
    retry/backoff path: substep to ``dt`` with a halving controller.

    Returns ``(final state, substeps taken)``; raises
    :class:`SolveFailure` when the backoff budget is exhausted.
    """
    plan = runtime.plan
    solver = runtime.retry_solver()
    controller = TimeStepController(
        dt_init=plan.dt / 2.0,
        dt_min=plan.dt / 1024.0,
        dt_max=plan.dt,
        max_retries=10,
    )
    fields = [job.state[s].copy() for s in range(len(plan.species))]
    accepts0 = controller.total_accepts
    out, _t = solver.advance(fields, t_final=plan.dt, controller=controller)
    return np.stack(out), controller.total_accepts - accepts0


def execute_jobs(
    runtime: PlanRuntime,
    jobs: list[SolveJob],
    fault_shim=None,
) -> list[tuple[SolveJob, JobResult]]:
    """Run one micro-batch through the warm runtime (steps 2-5 above).

    ``fault_shim(job_index, state) -> state`` may raise
    :class:`InjectedFault` or return a corrupted state; both route the job
    to the retry path.  Returns ``(job, result)`` pairs in input order.
    """
    plan = runtime.plan
    solver = runtime.solver
    states = np.stack([j.state for j in jobs])
    t0 = time.monotonic()
    out = solver.step(states, plan.dt)
    converged = solver.last_converged
    sweeps = solver.last_sweeps
    batch_seconds = time.monotonic() - t0

    results: list[tuple[SolveJob, JobResult]] = []
    for b, job in enumerate(jobs):
        state_b = out[b]
        err: str | None = None
        needs_retry = not bool(converged[b])
        if fault_shim is not None and not needs_retry:
            try:
                state_b = fault_shim(b, state_b)
            except InjectedFault as exc:
                err = f"{type(exc).__name__}: {exc}"
                needs_retry = True
        if not needs_retry and not np.all(np.isfinite(state_b)):
            err = "non-finite state from batched solve"
            needs_retry = True
        retried = False
        substeps = int(sweeps[b])
        if needs_retry:
            retried = True
            try:
                state_b, substeps = _retry_job(runtime, job)
            except (SolveFailure, StepRejected) as exc:
                results.append(
                    (
                        job,
                        JobResult(
                            job_id=job.job_id,
                            status=STATUS_FAILED,
                            error=err or f"{type(exc).__name__}: {exc}",
                            batch_size=len(jobs),
                            retried=True,
                            latency_s=time.monotonic() - job.submitted,
                        ),
                    )
                )
                continue
        results.append(
            (
                job,
                JobResult(
                    job_id=job.job_id,
                    status=STATUS_OK,
                    state=state_b,
                    error=err,
                    batch_size=len(jobs),
                    sweeps=substeps,
                    retried=retried,
                    latency_s=time.monotonic() - job.submitted,
                ),
            )
        )
    # spread the shared batch compute into per-job latency accounting is
    # deliberate: each job's latency is submit -> its result, and the
    # batch finished at the same instant for all members
    del batch_seconds
    return results


class ShardWorker:
    """One shard: metrics + plan cache + the batch pipeline.

    The service's dispatcher (thread mode) or the process-pool worker
    calls :meth:`execute_batch` with micro-batches of same-plan jobs.
    """

    def __init__(
        self,
        shard_id: int,
        plan_budget: int | None = None,
        fault_injector=None,
        degraded: bool = False,
    ):
        self.shard_id = shard_id
        self.metrics = ShardMetrics(shard=shard_id)
        # a degraded worker is the in-parent fallback tier standing in
        # for a broken process pool: clamp backend "process" so it never
        # builds the pools it is replacing
        self.degraded = bool(degraded)
        self.plans = PlanCache(budget=plan_budget, clamp_process=degraded)
        #: untimed warm calls served (plan build + backend JIT warmup)
        self.warm_calls = 0
        self.warm_seconds = 0.0
        self._injector = fault_injector
        self._fault_shim = None
        if fault_injector is not None:
            # adapt FaultInjector's factory(A)->solve(b) wrapping to a
            # per-job result shim: each delivered state passes through a
            # wrapped identity "solve", advancing the injector's seeded
            # counters exactly once per job
            faulty_identity = fault_injector.wrap_factory(
                lambda A: (lambda x: x), name=f"shard-{shard_id}"
            )

            def shim(_index: int, state: np.ndarray) -> np.ndarray:
                flat = faulty_identity(None)(state.ravel())
                return np.asarray(flat, dtype=float).reshape(state.shape)

            self._fault_shim = shim

    def warm_plan(self, plan) -> float:
        """Build (or touch) the plan's runtime and warm its backend, so
        the first *timed* batch never pays the O(N^2) pair-table build
        or JIT compile cost.  Returns the seconds this call spent."""
        t0 = time.monotonic()
        runtime = self.plans.get(plan)
        runtime.warmup()
        spent = time.monotonic() - t0
        self.warm_calls += 1
        self.warm_seconds += spent
        return spent

    def execute_batch(self, jobs: list[SolveJob]) -> list[tuple[SolveJob, JobResult]]:
        now = time.monotonic()
        live: list[SolveJob] = []
        results: list[tuple[SolveJob, JobResult]] = []
        for job in jobs:
            if job.expired(now):
                self.metrics.jobs_shed += 1
                results.append(
                    (
                        job,
                        JobResult(
                            job_id=job.job_id,
                            status=STATUS_SHED,
                            error="deadline passed while queued",
                            shard=self.shard_id,
                            latency_s=now - job.submitted,
                        ),
                    )
                )
            else:
                live.append(job)
        if live:
            runtime = self.plans.get(live[0].plan)
            self.metrics.record_batch(len(live))
            executed = execute_jobs(runtime, live, fault_shim=self._fault_shim)
            for job, res in executed:
                res.shard = self.shard_id
                if res.status == STATUS_OK:
                    self.metrics.jobs_ok += 1
                else:
                    self.metrics.jobs_failed += 1
                if res.retried:
                    self.metrics.jobs_retried += 1
                self.metrics.latency.add(res.latency_s)
                results.append((job, res))
        if self._injector is not None:
            self.metrics.injected_faults = self._injector.n_injected
        return results

    # ------------------------------------------------------------------
    def solver_counters(self) -> dict:
        """Aggregate BatchStats + retry stats over the warm runtimes."""
        agg = {
            "field_launches": 0,
            "equivalent_unbatched_launches": 0,
            "factorizations": 0,
            "newton_sweeps": 0,
            "symbolic_setups": 0,
            "symbolic_reuses": 0,
            "accelerated_sweeps": 0,
            "retry_steps": 0,
            "retry_backoffs": 0,
        }
        for rt in self.plans.runtimes():
            st = rt.solver.stats
            agg["field_launches"] += st.field_launches
            agg["equivalent_unbatched_launches"] += st.equivalent_unbatched_launches
            agg["factorizations"] += st.factorizations
            agg["newton_sweeps"] += st.newton_sweeps
            agg["symbolic_setups"] += st.symbolic_setups
            agg["symbolic_reuses"] += st.symbolic_reuses
            agg["accelerated_sweeps"] += st.accelerated_sweeps
            if rt._retry_solver is not None:
                agg["retry_steps"] += rt._retry_solver.stats.time_steps
                agg["retry_backoffs"] += rt._retry_solver.stats.dt_backoffs
        launches = agg["field_launches"]
        # 0.0, not 1.0: a shard whose batches all shed before launching
        # did no batched work and reports no reduction
        agg["launch_reduction"] = (
            agg["equivalent_unbatched_launches"] / launches if launches else 0.0
        )
        return agg

    def snapshot(self) -> dict:
        return self.metrics.snapshot() | {
            "plan_cache": self.plans.counters(),
            "solver": self.solver_counters(),
            "warm_calls": self.warm_calls,
            "warm_seconds": round(self.warm_seconds, 6),
        }


# ----------------------------------------------------------------------
# process-executor support: one warm ShardWorker per worker process.
#
# Publication protocol: the service ships each SolvePlan to a shard's
# worker exactly once (_process_publish_plan); per-batch calls carry only
# (plan key, job metadata, state payload).  The state stack travels in a
# shared-memory segment owned by the service's arena — the worker copies
# it out and the service frees the segment when the call returns — so the
# per-batch pickle traffic is O(job ids), not O(plan runtime).

_PROCESS_WORKER: ShardWorker | None = None

#: plans published into this worker process, keyed by SolvePlan.key
_PLAN_STORE: dict[str, "SolvePlan"] = {}

#: the installed FaultPlanState (chaos runs only); counters reset with
#: the process, so a replaced worker replays its schedule from index 0
_FAULT_STATE = None


class PlanNotPublished(RuntimeError):
    """This worker has no published plan for the requested key (it is
    fresh, or was restarted after a crash); the service republishes the
    plan and retries the batch."""


def _process_init(
    shard_id: int, plan_budget: int | None, fault_payload=None
) -> None:
    """Worker initializer: warm shard state + optional chaos install.

    ``fault_payload`` is either a picklable
    :class:`~repro.resilience.faultplan.FaultPlan` (full schedule:
    solver faults interpreted by a worker-local injector, crash/hang/
    shm-attach faults interpreted per dispatch) or a picklable ad-hoc
    :class:`~repro.resilience.faults.FaultInjector` (solver faults
    only).  Each worker owns its own copy — deterministic for a fixed
    batch order, exactly like PR 1's in-process chaos tests.
    """
    global _PROCESS_WORKER, _FAULT_STATE
    from . import plan as plan_mod
    from ..resilience.faultplan import FaultPlan, FaultPlanState

    # runtimes built in this worker clamp backend "process" -> "threaded"
    # (nested process pools deadlock worker shutdown; see plan.py)
    plan_mod.IN_PROCESS_WORKER = True
    injector = None
    _FAULT_STATE = None
    if isinstance(fault_payload, FaultPlan):
        _FAULT_STATE = FaultPlanState(fault_payload, shard_id)
        injector = fault_payload.injector(shard_id)
    elif fault_payload is not None:
        injector = fault_payload
    _PROCESS_WORKER = ShardWorker(
        shard_id, plan_budget=plan_budget, fault_injector=injector
    )
    _PLAN_STORE.clear()


def _process_heartbeat() -> int:
    """Liveness probe for the watchdog; a hung worker never answers."""
    return os.getpid()


def _process_publish_plan(plan) -> str:
    """Install one plan in this worker's store (idempotent)."""
    assert _PROCESS_WORKER is not None, "process worker not initialized"
    _PLAN_STORE[plan.key] = plan
    return plan.key


def _process_warm(plan_key: str) -> float:
    """Warm one published plan in this worker, **outside** any batch
    deadline: builds the PlanRuntime (pair tables, band symbolics) and
    runs the backend's :meth:`warmup` (numba JIT compilation).  The
    service calls this once per (worker incarnation, plan) before the
    first timed ``_process_execute``, so batch deadlines measure warm
    execution only."""
    assert _PROCESS_WORKER is not None, "process worker not initialized"
    plan = _PLAN_STORE.get(plan_key)
    if plan is None:
        raise PlanNotPublished(plan_key)
    return _PROCESS_WORKER.warm_plan(plan)


def _process_execute(
    plan_key: str, meta: list[tuple], payload
) -> list[tuple[str, JobResult]]:
    """Run one micro-batch against a previously published plan.

    ``meta`` is ``[(job_id, deadline, submitted), ...]``; ``payload`` is
    ``("shm", ShmHandle)`` for a shared-memory ``(B, S, n)`` state stack
    or ``("inline", ndarray)`` when the arena declined the segment.
    """
    assert _PROCESS_WORKER is not None, "process worker not initialized"
    plan = _PLAN_STORE.get(plan_key)
    if plan is None:
        raise PlanNotPublished(plan_key)
    kind, data = payload
    if _FAULT_STATE is not None:
        # chaos schedule runs before the payload is touched: a crash or
        # hang here models a worker dying/stalling with the batch state
        # still owned by the service (which must retry or degrade)
        _FAULT_STATE.on_dispatch(kind)
    if kind == "shm":
        from ..backend.shm import attach_copy

        states = attach_copy(data)
    else:
        states = np.asarray(data)
    jobs = [
        SolveJob(
            plan=plan,
            state=states[i],
            job_id=job_id,
            deadline=deadline,
            submitted=submitted,
        )
        for i, (job_id, deadline, submitted) in enumerate(meta)
    ]
    return [
        (job.job_id, res) for job, res in _PROCESS_WORKER.execute_batch(jobs)
    ]


def _process_snapshot() -> dict:
    assert _PROCESS_WORKER is not None, "process worker not initialized"
    return _PROCESS_WORKER.snapshot()
