"""Crash-consistent service checkpoints for the collision solve service.

A service checkpoint captures the *admission ledger* — every accepted
job that has not yet been answered (queued or mid-batch), its original
state vector, the :class:`~repro.serve.plan.SolvePlan` objects those
jobs reference, and the ids of jobs already answered — so a service
killed mid-run (SIGKILL, OOM, node loss) can be rebuilt and finish
**only the unfinished work**.  Semantics are at-least-once: a job whose
batch completed after the last checkpoint but whose service died before
the next one is re-run; a collision solve is a pure function of
``(plan, state)``, so re-running is safe and bitwise-reproducible.

The on-disk format is a pickled payload inside the resilience layer's
checksummed atomic envelope (:func:`repro.resilience.checkpoint
.write_checksummed`: tmp + fsync + rename + SHA-256), so a torn or
bit-flipped file raises :class:`CheckpointError` instead of silently
resurrecting garbage jobs.  Deadlines are stored as *remaining* seconds
(monotonic clocks don't survive a process) and re-anchored on restore.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field

import numpy as np

from ..resilience.checkpoint import read_checksummed, write_checksummed
from ..resilience.exceptions import CheckpointError

__all__ = [
    "SERVICE_CHECKPOINT_VERSION",
    "PendingJob",
    "ServiceCheckpoint",
    "save_service_checkpoint",
    "load_service_checkpoint",
    "checkpoint_path",
]

SERVICE_CHECKPOINT_VERSION = 1

#: file name inside the checkpoint directory (one live file, replaced
#: atomically on every write)
CHECKPOINT_FILENAME = "service.ckpt"


def checkpoint_path(directory: str) -> str:
    return os.path.join(directory, CHECKPOINT_FILENAME)


@dataclass(frozen=True)
class PendingJob:
    """One accepted-but-unanswered job, detached from live queue state."""

    plan_key: str
    job_id: str
    state: np.ndarray
    #: seconds of deadline budget left at checkpoint time (None = no deadline)
    remaining_s: float | None = None


@dataclass
class ServiceCheckpoint:
    """In-memory image of a service checkpoint file."""

    pending: list = field(default_factory=list)  # of PendingJob
    plans: dict = field(default_factory=dict)  # plan_key -> SolvePlan
    completed: tuple = ()  # job ids answered since service start/resume
    version: int = SERVICE_CHECKPOINT_VERSION

    @property
    def pending_ids(self) -> set:
        return {p.job_id for p in self.pending}


def save_service_checkpoint(
    path: str, *, pending, plans, completed
) -> str:
    """Atomically write the admission ledger; returns ``path``.

    ``pending`` is an iterable of :class:`PendingJob`, ``plans`` maps
    plan keys to the (picklable) :class:`SolvePlan` objects the pending
    jobs reference, ``completed`` is the answered-job-id sequence.
    """
    pending = list(pending)
    referenced = {p.plan_key for p in pending}
    missing = referenced - set(plans)
    if missing:
        raise CheckpointError(
            "pending jobs reference plans absent from the checkpoint",
            diagnostics={"missing_plan_keys": sorted(k[:12] for k in missing)},
        )
    payload = pickle.dumps(
        {
            "version": SERVICE_CHECKPOINT_VERSION,
            "wall_time": time.time(),
            "pending": [
                (p.plan_key, p.job_id, np.asarray(p.state), p.remaining_s)
                for p in pending
            ],
            "plans": {k: plans[k] for k in referenced},
            "completed": tuple(completed),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return write_checksummed(path, payload)


def load_service_checkpoint(path: str) -> ServiceCheckpoint:
    """Read a service checkpoint; raises :class:`CheckpointError` on a
    missing, truncated, corrupted, or wrong-version file."""
    if not os.path.exists(path):
        raise CheckpointError(
            "service checkpoint not found", diagnostics={"path": path}
        )
    payload = read_checksummed(path)  # CheckpointError on corruption
    try:
        data = pickle.loads(payload)
        version = int(data["version"])
        if version != SERVICE_CHECKPOINT_VERSION:
            raise CheckpointError(
                "unsupported service checkpoint version",
                diagnostics={
                    "path": path,
                    "version": version,
                    "supported": SERVICE_CHECKPOINT_VERSION,
                },
            )
        pending = [
            PendingJob(
                plan_key=plan_key,
                job_id=job_id,
                state=np.asarray(state),
                remaining_s=remaining,
            )
            for plan_key, job_id, state, remaining in data["pending"]
        ]
        checkpoint = ServiceCheckpoint(
            pending=pending,
            plans=dict(data["plans"]),
            completed=tuple(data["completed"]),
            version=version,
        )
    except CheckpointError:
        raise
    except Exception as err:
        raise CheckpointError(
            "failed to read service checkpoint",
            diagnostics={"path": path, "error": f"{type(err).__name__}: {err}"},
        ) from err
    return checkpoint
