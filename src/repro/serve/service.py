"""The collision solve service: admission control, consistent-hash
routing, and the dynamic micro-batcher.

``CollisionSolveService`` accepts per-vertex solve jobs
(:class:`~repro.serve.jobs.SolveJob`: state + dt + mesh/species/options
key) and executes them at high throughput:

* **Routing** — a consistent-hash ring maps each plan key to one shard,
  so a plan's pair tables and band symbolics are built once and stay
  warm; adding a shard remaps only ``~1/num_shards`` of the key space.
* **Micro-batching** — each shard's dispatcher pops the queue head and
  coalesces jobs sharing its plan, waiting up to ``max_wait_ms`` for the
  batch to fill to ``max_batch``, then advances the whole batch with one
  :meth:`BatchedVertexSolver.step` (one field launch and one batched
  factorization per sweep instead of one per job).
* **Backpressure** — each shard's queue is bounded; :meth:`submit`
  raises :class:`~repro.resilience.ServiceOverloaded` when it is full,
  and jobs whose deadline lapses while queued are shed before compute.
* **Determinism** — :meth:`drain` processes queues synchronously in
  submission order, giving identical batch composition (hence bitwise
  identical floating-point results) across reruns; dispatcher threads
  (:meth:`start`) trade that for latency.

``executor="process"`` moves each shard into its own
``ProcessPoolExecutor`` worker (one warm worker per shard).  Plans are
published to a shard's worker once; each batch then ships only job
metadata plus the state stack through a shared-memory segment
(:mod:`repro.backend.shm`), so the warm ``PlanRuntime`` tensors live
exactly once per machine.  A worker killed mid-flight
(``BrokenProcessPool``) is re-initialized and the batch retried once —
``drain()`` never crashes on a dead worker — with the restart surfaced
as ``worker_restarts`` in shard snapshots.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import pickle
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import suppress
from dataclasses import dataclass, field

import numpy as np

from ..backend.shm import (
    SharedArena,
    ShmBudgetExceeded,
    reclaim_dead_owner_segments,
)
from ..resilience.exceptions import ServiceOverloaded, ShmAttachFault, WorkerHang
from ..resilience.faultplan import FaultPlan
from ..resilience.supervisor import ShardSupervisor, SupervisorOptions, WorkerWatchdog
from .checkpoint import (
    PendingJob,
    checkpoint_path,
    load_service_checkpoint,
    save_service_checkpoint,
)
from .jobs import STATUS_FAILED, JobHandle, JobResult, SolveJob
from .metrics import merge_histograms
from .plan import SolvePlan
from .shard import (
    PlanNotPublished,
    ShardWorker,
    _process_execute,
    _process_heartbeat,
    _process_init,
    _process_publish_plan,
    _process_snapshot,
    _process_warm,
)

__all__ = ["ServeOptions", "HashRing", "CollisionSolveService"]

_EXECUTORS = ("thread", "process")

#: parent-side exceptions meaning "the worker process is gone or stuck"
_WORKER_FAILURES = (BrokenProcessPool, WorkerHang)

#: taxonomy keys merged additively from supervisors into shard snapshots
_SUPERVISION_KEYS = (
    "worker_crashes",
    "worker_hangs",
    "deadline_timeouts",
    "breaker_trips",
    "degraded_batches",
    "shm_attach_faults",
)


@dataclass(frozen=True)
class ServeOptions:
    """Service sizing knobs (see EXPERIMENTS.md for the env overrides)."""

    num_shards: int = 2
    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_bound: int = 256
    executor: str = "thread"
    plan_budget: int | None = None  # bytes per shard's PlanCache; None = env
    vnodes: int = 32
    #: watchdog / circuit-breaker / backoff knobs (REPRO_SERVE_HEARTBEAT_S,
    #: REPRO_SERVE_BATCH_DEADLINE_S, REPRO_SERVE_BREAKER_*)
    supervision: SupervisorOptions = field(default_factory=SupervisorOptions.from_env)
    #: directory for crash-consistent service checkpoints; None disables
    checkpoint_dir: str | None = None
    #: minimum seconds between automatic post-batch checkpoints
    #: (0 = checkpoint after every executed batch)
    checkpoint_interval_s: float = 0.0

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {self.queue_bound}")
        if self.executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )
        if self.checkpoint_interval_s < 0:
            raise ValueError(
                f"checkpoint_interval_s must be >= 0, got "
                f"{self.checkpoint_interval_s}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "ServeOptions":
        """Read ``REPRO_SERVE_*`` overrides (explicit kwargs win)."""
        env = os.environ
        kw = dict(
            num_shards=int(env.get("REPRO_SERVE_SHARDS", cls.num_shards)),
            max_batch=int(env.get("REPRO_SERVE_MAX_BATCH", cls.max_batch)),
            max_wait_ms=float(env.get("REPRO_SERVE_MAX_WAIT_MS", cls.max_wait_ms)),
            queue_bound=int(env.get("REPRO_SERVE_QUEUE_BOUND", cls.queue_bound)),
            executor=env.get("REPRO_SERVE_EXECUTOR", cls.executor),
            supervision=SupervisorOptions.from_env(),
            checkpoint_dir=env.get("REPRO_SERVE_CHECKPOINT_DIR") or None,
            checkpoint_interval_s=float(
                env.get(
                    "REPRO_SERVE_CHECKPOINT_INTERVAL_S", cls.checkpoint_interval_s
                )
            ),
        )
        kw.update(overrides)
        return cls(**kw)


def _hash64(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over shards with virtual nodes.

    Plan keys land on the first vnode clockwise of their hash; vnodes
    smooth the load split and keep remapping ``~1/num_shards`` of the key
    space when a shard is added or removed.
    """

    def __init__(self, num_shards: int, vnodes: int = 32):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        points = sorted(
            (_hash64(f"shard-{s}-vnode-{v}"), s)
            for s in range(num_shards)
            for v in range(vnodes)
        )
        self.num_shards = num_shards
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def route(self, key: str) -> int:
        i = bisect.bisect_right(self._hashes, _hash64(key)) % len(self._hashes)
        return self._shards[i]


class CollisionSolveService:
    """Accepts per-vertex collision solve jobs; batches, shards, caches.

    Two execution styles:

    * ``start()`` + ``submit()``: dispatcher threads micro-batch each
      shard's queue with the ``max_wait_ms`` coalescing window.
    * ``submit()`` + ``drain()``: synchronous, deterministic — queues are
      processed in submission order with reproducible batch composition
      (the mode the chaos tests rerun for bitwise stability).

    Fault injection takes two forms.  ``fault_injector`` (a
    :class:`repro.resilience.FaultInjector`) is the ad-hoc path — its
    seeded counters live in the submitting process, so on
    ``executor="process"`` it must be picklable (no bound callbacks) to
    ship to the shard workers.  ``fault_plan`` (a
    :class:`repro.resilience.FaultPlan`, or ``REPRO_FAULT_PLAN`` in the
    environment) is the declarative path: a frozen, picklable schedule of
    solver faults, worker crashes, hangs, and shm-attach failures that
    every worker installs deterministically at startup — the supported
    way to run chaos scenarios across process boundaries.
    """

    def __init__(
        self,
        options: ServeOptions | None = None,
        fault_injector=None,
        fault_plan: FaultPlan | None = None,
    ):
        self.options = options or ServeOptions.from_env()
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        if fault_injector is not None and fault_plan is not None:
            raise ValueError(
                "pass either fault_injector or fault_plan, not both "
                "(is REPRO_FAULT_PLAN set in the environment?)"
            )
        self._fault_plan = fault_plan
        self._fault_payload = None
        if self.options.executor == "process":
            payload = fault_plan if fault_plan is not None else fault_injector
            if payload is not None:
                try:
                    pickle.dumps(payload)
                except Exception as err:
                    raise ValueError(
                        "fault injection on executor='process' requires a "
                        "picklable fault source: shard workers install it at "
                        "startup in their own process. This injector cannot "
                        "be pickled "
                        f"({type(err).__name__}: {err}). Use a declarative "
                        "FaultPlan (or the REPRO_FAULT_PLAN env var), or "
                        "unset REPRO_SERVE_EXECUTOR=process (pass "
                        "ServeOptions(executor='thread')) to keep ad-hoc "
                        "injector state in this process."
                    ) from err
            self._fault_payload = payload
        n = self.options.num_shards
        self.ring = HashRing(n, vnodes=self.options.vnodes)
        self._queues: list[deque] = [deque() for _ in range(n)]
        self._conds = [threading.Condition() for _ in range(n)]
        self._rejected = [0] * n
        self._max_depth = [0] * n
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._workers: list[ShardWorker] | None = None
        self._pools: list[ProcessPoolExecutor] | None = None
        #: per shard: plan keys already published to its worker process
        self._published_plans: list[set] = [set() for _ in range(n)]
        #: per shard: plan keys already *warmed* in its worker process
        #: (runtime built + backend JIT compiled, outside batch deadlines)
        self._warmed_plans: list[set] = [set() for _ in range(n)]
        #: per shard: times its worker process died and was re-initialized
        self._restarts = [0] * n
        self._arena: SharedArena | None = None
        #: per shard: watchdog/breaker/failure-taxonomy state (process mode)
        self._supervisors: list[ShardSupervisor] | None = None
        #: per shard: lazily built in-parent workers for the degraded tier
        self._degraded_workers: dict[int, ShardWorker] = {}
        self._watchdog: WorkerWatchdog | None = None
        # ---- crash-consistent checkpoint state ---------------------------
        self._ckpt_lock = threading.Lock()
        self._last_ckpt = None  # monotonic time of last checkpoint write
        self._completed_ids: list[str] = []
        #: per shard: jobs popped from the queue but not yet answered
        self._inflight: list[list] = [[] for _ in range(n)]
        self._resume: dict | None = None
        #: per job tag: outcome counters (campaign-aware accounting);
        #: guarded by _tag_lock — _execute runs on every dispatcher thread
        self._tag_lock = threading.Lock()
        self._tag_counts: dict[str, dict[str, int]] = {}
        if self.options.executor == "process":
            self._supervisors = [
                ShardSupervisor(self.options.supervision) for _ in range(n)
            ]
            self._pools = [self._make_pool(s) for s in range(n)]
            self._arena = SharedArena(tag="serve")
        else:
            self._workers = [
                ShardWorker(
                    s,
                    plan_budget=self.options.plan_budget,
                    fault_injector=(
                        fault_injector
                        if fault_injector is not None
                        else (
                            fault_plan.injector(s)
                            if fault_plan is not None
                            else None
                        )
                    ),
                )
                for s in range(n)
            ]

    def _make_pool(self, shard: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            initializer=_process_init,
            initargs=(shard, self.options.plan_budget, self._fault_payload),
        )

    def _restart_worker(self, shard: int) -> None:
        """Replace a dead shard worker process (satellite of the paper's
        resilience story: one crashed rank must not take down the drain).

        Restarts back off exponentially (bounded) when they come in a
        storm, so a crash-looping worker cannot hot-spin fork().
        """
        assert self._pools is not None
        t0 = time.monotonic()
        sup = self._supervisors[shard] if self._supervisors else None
        if sup is not None:
            sup.backoff.sleep()
        old = self._pools[shard]
        with suppress(Exception):
            old.shutdown(wait=False, cancel_futures=True)
        self._pools[shard] = self._make_pool(shard)
        self._published_plans[shard].clear()
        self._warmed_plans[shard].clear()
        self._restarts[shard] += 1
        if sup is not None:
            sup.record_recovery(time.monotonic() - t0)

    def _kill_worker(self, shard: int) -> None:
        """Forcibly terminate a (presumed hung) shard worker process; the
        next :meth:`_restart_worker` rebuilds the pool."""
        assert self._pools is not None
        pool = self._pools[shard]
        procs = getattr(pool, "_processes", None) or {}
        for p in list(procs.values()):
            with suppress(Exception):
                p.kill()

    # ------------------------------------------------------------------
    # admission
    def submit(
        self,
        plan: SolvePlan,
        state: np.ndarray,
        *,
        deadline_ms: float | None = None,
        job_id: str = "",
        tag: str = "",
    ) -> JobHandle:
        """Admit one job; raises :class:`ServiceOverloaded` if the target
        shard's queue is full (callers should back off and retry).

        ``tag`` is a caller-defined grouping label (an ensemble campaign
        or member id): per-tag outcome counters appear in
        ``snapshot()["jobs"]["by_tag"]``."""
        if deadline_ms is None:
            job = SolveJob(plan=plan, state=state, job_id=job_id, tag=tag)
        else:
            job = SolveJob.with_deadline_ms(
                plan, state, deadline_ms, job_id=job_id, tag=tag
            )
        shard = self.ring.route(plan.key)
        handle = JobHandle(job)
        cond = self._conds[shard]
        with cond:
            q = self._queues[shard]
            if len(q) >= self.options.queue_bound:
                self._rejected[shard] += 1
                if self._workers is not None:
                    self._workers[shard].metrics.rejected_submissions += 1
                raise ServiceOverloaded(
                    f"shard {shard} queue full "
                    f"({len(q)}/{self.options.queue_bound} jobs)"
                )
            q.append((job, handle))
            depth = len(q)
            if depth > self._max_depth[shard]:
                self._max_depth[shard] = depth
            if self._workers is not None:
                self._workers[shard].metrics.record_queue_depth(depth)
            cond.notify()
        return handle

    def solve_many(
        self,
        plan: SolvePlan,
        states,
        *,
        deadline_ms: float | None = None,
        timeout: float | None = 120.0,
    ) -> list[JobResult]:
        """Submit a batch of same-plan jobs and wait for all results.

        When the service is not started, the queues are drained
        synchronously (deterministic mode)."""
        handles = [
            self.submit(plan, s, deadline_ms=deadline_ms) for s in states
        ]
        if not self._started:
            self.drain()
        return [h.result(timeout) for h in handles]

    # ------------------------------------------------------------------
    # batching + execution
    def _take_batch(self, shard: int, head: tuple) -> list[tuple]:
        """Coalesce queued jobs sharing the head job's plan (caller holds
        the shard condition lock)."""
        batch = [head]
        key = head[0].plan.key
        q = self._queues[shard]
        i = 0
        while i < len(q) and len(batch) < self.options.max_batch:
            if q[i][0].plan.key == key:
                batch.append(q[i])
                del q[i]
            else:
                i += 1
        return batch

    def _execute(self, shard: int, batch: list[tuple]) -> None:
        jobs = [job for job, _ in batch]
        handles = {job.job_id: handle for job, handle in batch}
        tags = {job.job_id: job.tag for job in jobs}
        self._inflight[shard] = list(jobs)
        try:
            if self._pools is not None:
                results = self._execute_process(shard, jobs)
            else:
                assert self._workers is not None
                results = [
                    (job.job_id, res)
                    for job, res in self._workers[shard].execute_batch(jobs)
                ]
            for job_id, res in results:
                handles[job_id].set_result(res)
                self._completed_ids.append(job_id)
                self._count_tag(tags.get(job_id, ""), res)
        finally:
            self._inflight[shard] = []
        self._maybe_checkpoint()

    def _count_tag(self, tag: str, res: JobResult) -> None:
        """Parent-side per-tag outcome accounting (tags never ship to
        workers, so the process protocol is unchanged)."""
        if not tag:
            return
        with self._tag_lock:
            c = self._tag_counts.setdefault(
                tag, {"ok": 0, "failed": 0, "shed": 0, "retried": 0}
            )
            c[res.status] = c.get(res.status, 0) + 1
            if res.retried:
                c["retried"] += 1

    # ------------------------------------------------------------------
    # process-executor dispatch: publish-once plans, shm state shipping,
    # BrokenProcessPool self-healing
    def _publish_plan(self, shard: int, plan: SolvePlan) -> None:
        assert self._pools is not None
        if plan.key not in self._published_plans[shard]:
            self._pools[shard].submit(_process_publish_plan, plan).result()
            self._published_plans[shard].add(plan.key)

    def _warm_worker(self, shard: int, plan: SolvePlan) -> None:
        """Warm a published plan in the shard worker *before* its first
        timed batch: the worker builds the PlanRuntime (O(N^2) pair
        tables) and JIT-compiles the backend under the separate —
        untimed by default — ``warm_deadline_s`` budget, so
        ``batch_deadline_s`` only ever measures warm execution.  Once
        per (worker incarnation, plan); a worker restart clears the
        warmed set along with the published set."""
        assert self._pools is not None
        if plan.key in self._warmed_plans[shard]:
            return
        deadline = self.options.supervision.warm_deadline_s
        future = self._pools[shard].submit(_process_warm, plan.key)
        try:
            future.result(deadline if deadline > 0 else None)
        except FuturesTimeout:
            self._kill_worker(shard)
            with suppress(Exception):
                future.cancel()
            raise WorkerHang(
                f"shard {shard} worker missed the {deadline:.3g}s warm "
                "deadline; the process was killed"
            ) from None
        self._warmed_plans[shard].add(plan.key)

    def _await_worker(self, shard: int, future) -> list[tuple]:
        """Wait for a worker-side result under the batch deadline; a
        deadline miss kills the worker (hung processes never return) and
        surfaces as :class:`WorkerHang` for the supervisor to classify."""
        deadline = self.options.supervision.batch_deadline_s
        try:
            return future.result(deadline if deadline > 0 else None)
        except FuturesTimeout:
            sup = self._supervisors[shard] if self._supervisors else None
            if sup is not None:
                # taxonomy only — the breaker sees this once, as the
                # WorkerHang the caller records
                with sup.lock:
                    sup.counters["deadline_timeouts"] += 1
            self._kill_worker(shard)
            with suppress(Exception):
                future.cancel()
            raise WorkerHang(
                f"shard {shard} worker missed the {deadline:.3g}s batch "
                "deadline; the process was killed"
            ) from None

    def _process_round(self, shard: int, jobs: list[SolveJob]) -> list[tuple]:
        """One publish-if-needed + execute round against a shard worker."""
        assert self._pools is not None and self._arena is not None
        plan = jobs[0].plan
        self._publish_plan(shard, plan)
        self._warm_worker(shard, plan)
        states = np.stack([j.state for j in jobs])
        meta = [(j.job_id, j.deadline, j.submitted) for j in jobs]
        seg = handle = None
        try:
            seg = self._arena.alloc(states.shape, states.dtype)
            seg[...] = states
            handle = self._arena.handle_of(seg)
            payload = ("shm", handle)
        except (ShmBudgetExceeded, OSError):
            payload = ("inline", states)
        try:
            pool = self._pools[shard]
            try:
                return self._await_worker(
                    shard,
                    pool.submit(_process_execute, plan.key, meta, payload),
                )
            except PlanNotPublished:
                # defensive: the worker lost its store without breaking
                # the pool — republish and retry once
                self._published_plans[shard].discard(plan.key)
                self._warmed_plans[shard].discard(plan.key)
                self._publish_plan(shard, plan)
                self._warm_worker(shard, plan)
                return self._await_worker(
                    shard,
                    pool.submit(_process_execute, plan.key, meta, payload),
                )
            except (ShmAttachFault, FileNotFoundError):
                # the worker could not map the segment (injected fault or
                # a genuinely vanished /dev/shm entry): the states are
                # still in hand, so retry once with an inline payload
                if payload[0] != "shm":
                    raise
                sup = self._supervisors[shard] if self._supervisors else None
                if sup is not None:
                    # taxonomy only: the batch is re-sent inline and (if
                    # that succeeds) the worker is healthy — no breaker
                    with sup.lock:
                        sup.counters["shm_attach_faults"] += 1
                return self._await_worker(
                    shard,
                    pool.submit(
                        _process_execute, plan.key, meta, ("inline", states)
                    ),
                )
        finally:
            if handle is not None:
                del seg
                self._arena.free(handle.name)

    def _execute_degraded(self, shard: int, jobs: list[SolveJob]) -> list[tuple]:
        """Serve a batch on the in-parent degraded tier.

        The degraded worker is a plain :class:`ShardWorker` living in the
        service process with its plan options clamped ``process`` →
        ``threaded`` (it must not spin up the pools it is standing in
        for).  Numerics are bitwise-identical to the primary tier — both
        run the same batched kernels on the same batch composition —
        only throughput degrades.  Availability over speed.
        """
        worker = self._degraded_workers.get(shard)
        if worker is None:
            worker = ShardWorker(
                shard, plan_budget=self.options.plan_budget, degraded=True
            )
            self._degraded_workers[shard] = worker
        sup = self._supervisors[shard] if self._supervisors else None
        if sup is not None:
            with sup.lock:
                sup.counters["degraded_batches"] += 1
                sup.counters["degraded_jobs"] += len(jobs)
        return [
            (job.job_id, res) for job, res in worker.execute_batch(jobs)
        ]

    def _execute_process(self, shard: int, jobs: list[SolveJob]) -> list[tuple]:
        """Supervised process-tier execution.

        The shard's circuit breaker routes each batch: ``primary`` runs
        against the worker process with one crash/hang retry (counting
        failures), ``probe`` (half-open) gives the worker one chance with
        no retry, and ``degraded`` — or any batch whose retries are
        exhausted — falls back to the in-parent tier, so jobs never fail
        because a worker died.
        """
        assert self._supervisors is not None
        sup = self._supervisors[shard]
        with sup.lock:  # the watchdog try-locks this before probing
            route = sup.breaker.admit()
            if route == "degraded":
                return self._execute_degraded(shard, jobs)
            attempts = 1 if route == "probe" else 2
            for _ in range(attempts):
                try:
                    results = self._process_round(shard, jobs)
                except _WORKER_FAILURES as err:
                    kind = (
                        "worker_hangs"
                        if isinstance(err, WorkerHang)
                        else "worker_crashes"
                    )
                    sup.record_failure(kind)
                    self._restart_worker(shard)
                    continue
                sup.record_success()
                return results
            # crash/hang on every attempt this batch: serve it degraded
            return self._execute_degraded(shard, jobs)

    def _dispatch_loop(self, shard: int) -> None:
        cond = self._conds[shard]
        q = self._queues[shard]
        wait_s = self.options.max_wait_ms / 1e3
        while True:
            with cond:
                while not q and not self._stop.is_set():
                    cond.wait(0.05)
                if not q and self._stop.is_set():
                    return
                batch = self._take_batch(shard, q.popleft())
                # hold the coalescing window open while the batch fills
                deadline = time.monotonic() + wait_s
                while len(batch) < self.options.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    cond.wait(remaining)
                    key = batch[0][0].plan.key
                    i = 0
                    while i < len(q) and len(batch) < self.options.max_batch:
                        if q[i][0].plan.key == key:
                            batch.append(q[i])
                            del q[i]
                        else:
                            i += 1
            self._execute(shard, batch)

    # ------------------------------------------------------------------
    # heartbeat watchdog (process executor)
    def _heartbeat_probe(self, shard: int) -> None:
        """One watchdog ping of an idle shard worker.

        Try-locks the shard's supervisor so a running batch is never
        stalled; a worker that cannot answer a trivial heartbeat within
        ``heartbeat_s`` is declared hung, killed, and replaced.
        """
        assert self._pools is not None and self._supervisors is not None
        sup = self._supervisors[shard]
        if not sup.lock.acquire(blocking=False):
            return  # a batch (or restart) owns the pool: it supervises itself
        try:
            pool = self._pools[shard]
            if not getattr(pool, "_processes", None):
                return  # no worker spawned yet — nothing to probe
            try:
                fut = pool.submit(_process_heartbeat)
                fut.result(self.options.supervision.heartbeat_s)
            except FuturesTimeout:
                with sup.lock:
                    sup.counters["heartbeat_misses"] += 1
                sup.record_failure("worker_hangs")
                self._kill_worker(shard)
                self._restart_worker(shard)
            except BrokenProcessPool:
                sup.record_failure("worker_crashes")
                self._restart_worker(shard)
        finally:
            sup.lock.release()

    # ------------------------------------------------------------------
    # lifecycle
    def start(self) -> "CollisionSolveService":
        if self._started:
            return self
        self._stop.clear()
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(s,),
                name=f"serve-shard-{s}",
                daemon=True,
            )
            for s in range(self.options.num_shards)
        ]
        for t in self._threads:
            t.start()
        hb = self.options.supervision.heartbeat_s
        if self._pools is not None and hb > 0 and self._watchdog is None:
            self._watchdog = WorkerWatchdog(
                self.options.num_shards, self._heartbeat_probe, hb
            )
            self._watchdog.start()
        self._started = True
        return self

    def stop(self) -> None:
        """Stop dispatchers after their queues empty; keeps warm runtimes."""
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        if self._started:
            self._stop.set()
            for cond in self._conds:
                with cond:
                    cond.notify_all()
            for t in self._threads:
                t.join(timeout=60.0)
            self._threads = []
            self._started = False

    def close(self) -> None:
        self.stop()
        if self._pools is not None:
            for pool in self._pools:
                with suppress(Exception):
                    pool.shutdown(wait=True)
            self._pools = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "CollisionSolveService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def drain(self, max_batches: int | None = None) -> int:
        """Synchronously execute every queued job, in submission order.

        Deterministic by construction: batch composition depends only on
        the submission sequence, so reruns with the same jobs produce
        bitwise-identical results.  Only valid while dispatchers are not
        running.  ``max_batches`` bounds the number of batches executed
        (the crash/resume tests use it to stop a service at a known
        point); ``None`` drains everything.  Returns the number of jobs
        executed."""
        if self._started:
            raise RuntimeError("drain() requires a stopped service")
        done = 0
        batches = 0
        for shard in range(self.options.num_shards):
            q = self._queues[shard]
            while q:
                if max_batches is not None and batches >= max_batches:
                    return done
                with self._conds[shard]:
                    batch = self._take_batch(shard, q.popleft())
                self._execute(shard, batch)
                done += len(batch)
                batches += 1
        return done

    # ------------------------------------------------------------------
    # crash-consistent checkpoints
    def _pending_jobs(self) -> tuple[list, dict]:
        """Detach every accepted-but-unanswered job (queued or mid-batch)
        into :class:`PendingJob` records plus the plans they reference."""
        now = time.monotonic()
        pending: list[PendingJob] = []
        plans: dict = {}
        for shard in range(self.options.num_shards):
            with self._conds[shard]:
                jobs = [j for j, _ in self._queues[shard]]
                jobs += list(self._inflight[shard])
            for job in jobs:
                plans[job.plan.key] = job.plan
                remaining = (
                    None if job.deadline is None else job.deadline - now
                )
                pending.append(
                    PendingJob(
                        plan_key=job.plan.key,
                        job_id=job.job_id,
                        state=np.asarray(job.state),
                        remaining_s=remaining,
                    )
                )
        return pending, plans

    def checkpoint(self, path: str | None = None) -> str | None:
        """Atomically write the admission ledger (see serve.checkpoint).

        Uses ``options.checkpoint_dir`` when ``path`` is None; returns
        the path written, or None when checkpointing is not configured.
        """
        if path is None:
            directory = self.options.checkpoint_dir
            if directory is None:
                return None
            os.makedirs(directory, exist_ok=True)
            path = checkpoint_path(directory)
        with self._ckpt_lock:
            pending, plans = self._pending_jobs()
            save_service_checkpoint(
                path,
                pending=pending,
                plans=plans,
                completed=list(self._completed_ids),
            )
            self._last_ckpt = time.monotonic()
        return path

    def _maybe_checkpoint(self) -> None:
        """Post-batch checkpoint hook (no-op without a checkpoint_dir)."""
        if self.options.checkpoint_dir is None:
            return
        interval = self.options.checkpoint_interval_s
        if (
            interval > 0
            and self._last_ckpt is not None
            and time.monotonic() - self._last_ckpt < interval
        ):
            return
        self.checkpoint()

    def restore(self, path: str | None = None) -> list[JobHandle]:
        """Resubmit the unfinished work recorded in a service checkpoint.

        Intended for a *fresh* service standing in for one that was
        killed (SIGKILL, OOM, node loss): dead-owner ``/dev/shm``
        segments the old service leaked are swept first, then every
        pending job is re-admitted under its original job id with its
        deadline re-anchored from the stored remaining seconds.  Jobs
        the checkpoint records as completed are **not** re-run
        (at-least-once semantics — see the module docstring of
        :mod:`repro.serve.checkpoint`).  Returns the new handles; raises
        :class:`~repro.resilience.CheckpointError` on a missing or
        corrupt checkpoint.
        """
        if path is None:
            directory = self.options.checkpoint_dir
            if directory is None:
                raise ValueError(
                    "restore() needs a path or ServeOptions.checkpoint_dir "
                    "(REPRO_SERVE_CHECKPOINT_DIR)"
                )
            path = checkpoint_path(directory)
        swept = reclaim_dead_owner_segments()
        ckpt = load_service_checkpoint(path)
        handles = []
        for p in ckpt.pending:
            plan = ckpt.plans[p.plan_key]
            deadline_ms = (
                None
                if p.remaining_s is None
                else max(p.remaining_s, 0.0) * 1e3
            )
            handles.append(
                self.submit(
                    plan, p.state, deadline_ms=deadline_ms, job_id=p.job_id
                )
            )
        self._resume = {
            "path": path,
            "resumed_jobs": len(handles),
            "skipped_completed": len(ckpt.completed),
            "swept_shm_segments": swept,
        }
        return handles

    # ------------------------------------------------------------------
    # observability
    def _merge_degraded(self, shard: int, snap: dict) -> None:
        """Fold the degraded tier's work into the shard's snapshot: jobs
        served while the breaker was open must not vanish from the books."""
        worker = self._degraded_workers.get(shard)
        if worker is None:
            return
        dsnap = worker.snapshot()
        for k in ("jobs_ok", "jobs_failed", "jobs_shed", "jobs_retried",
                  "batches"):
            snap[k] = snap.get(k, 0) + dsnap[k]
        snap["batch_size_hist"] = merge_histograms(
            [snap.get("batch_size_hist", {}), dsnap["batch_size_hist"]]
        )
        for section in ("plan_cache", "solver"):
            base = snap.setdefault(section, {})
            for k, v in dsnap[section].items():
                if isinstance(v, bool) or not isinstance(v, int):
                    continue  # derived rates are recomputed below
                base[k] = base.get(k, 0) + v
        pc = snap["plan_cache"]
        pc["hit_rate"] = pc["hits"] / max(1, pc["hits"] + pc["misses"])
        sv = snap["solver"]
        launches = sv.get("field_launches", 0)
        sv["launch_reduction"] = (
            sv.get("equivalent_unbatched_launches", 0) / launches
            if launches
            else 0.0
        )

    def shard_snapshots(self) -> list[dict]:
        if self._pools is not None:
            snaps = []
            for s, pool in enumerate(self._pools):
                try:
                    snaps.append(pool.submit(_process_snapshot).result())
                except BrokenProcessPool:
                    self._restart_worker(s)
                    snaps.append(
                        self._pools[s].submit(_process_snapshot).result()
                    )
        else:
            assert self._workers is not None
            snaps = [w.snapshot() for w in self._workers]
        for s, snap in enumerate(snaps):
            snap["rejected_submissions"] = self._rejected[s]
            snap["max_queue_depth"] = max(
                snap.get("max_queue_depth", 0), self._max_depth[s]
            )
            # worker-side counters reset with the process; the parent's
            # restart count is authoritative and additive
            snap["worker_restarts"] = (
                snap.get("worker_restarts", 0) + self._restarts[s]
            )
            if self._supervisors is not None:
                self._merge_degraded(s, snap)
                sup_snap = self._supervisors[s].snapshot()
                for k in _SUPERVISION_KEYS:
                    snap[k] = snap.get(k, 0) + sup_snap.get(k, 0)
                for k in (
                    "heartbeat_misses",
                    "degraded_jobs",
                    "restart_backoff_sleep_s",
                    "recoveries",
                    "mean_recovery_s",
                ):
                    snap[k] = sup_snap.get(k, 0)
                snap["breaker"] = sup_snap["breaker"]
        return snaps

    def snapshot(self) -> dict:
        """Service-level rollup (JSON-able; see report.serve_summary)."""
        shards = self.shard_snapshots()
        total_jobs = sum(
            s["jobs_ok"] + s["jobs_failed"] + s["jobs_shed"] for s in shards
        )
        caches = [s["plan_cache"] for s in shards]
        hits = sum(c["hits"] for c in caches)
        misses = sum(c["misses"] for c in caches)
        solver_keys = shards[0]["solver"].keys() if shards else ()
        solver_tot = {
            k: sum(s["solver"][k] for s in shards)
            for k in solver_keys
            if k != "launch_reduction"
        }
        launches = solver_tot.get("field_launches", 0)
        solver_tot["launch_reduction"] = (
            solver_tot.get("equivalent_unbatched_launches", 0) / launches
            if launches
            else 0.0
        )
        return {
            "options": {
                "num_shards": self.options.num_shards,
                "max_batch": self.options.max_batch,
                "max_wait_ms": self.options.max_wait_ms,
                "queue_bound": self.options.queue_bound,
                "executor": self.options.executor,
            },
            "jobs": {
                "total": total_jobs,
                "ok": sum(s["jobs_ok"] for s in shards),
                "failed": sum(s["jobs_failed"] for s in shards),
                "shed": sum(s["jobs_shed"] for s in shards),
                "retried": sum(s["jobs_retried"] for s in shards),
                "rejected_submissions": sum(
                    s["rejected_submissions"] for s in shards
                ),
                "worker_restarts": sum(
                    s.get("worker_restarts", 0) for s in shards
                ),
                "by_tag": {
                    tag: dict(c)
                    for tag, c in sorted(self._tag_counts.items())
                },
            },
            "failures": {
                "injected_faults": sum(
                    s.get("injected_faults", 0) for s in shards
                ),
                **{
                    k: sum(s.get(k, 0) for s in shards)
                    for k in _SUPERVISION_KEYS
                },
                "heartbeat_misses": sum(
                    s.get("heartbeat_misses", 0) for s in shards
                ),
                "degraded_jobs": sum(
                    s.get("degraded_jobs", 0) for s in shards
                ),
            },
            "checkpoint": {
                "dir": self.options.checkpoint_dir,
                "completed_jobs": len(self._completed_ids),
                "resume": self._resume,
            },
            "batch_size_hist": merge_histograms(
                [s["batch_size_hist"] for s in shards]
            ),
            "plan_cache": {
                "plans": sum(c["plans"] for c in caches),
                "bytes": sum(c["bytes"] for c in caches),
                "hits": hits,
                "misses": misses,
                "evictions": sum(c["evictions"] for c in caches),
                "hit_rate": hits / max(1, hits + misses),
            },
            "solver": solver_tot,
            "shards": shards,
        }
